// Package dspaddr is the public facade of the register-constrained
// address computation library, a reproduction of Basu, Leupers,
// Marwedel: "Register-Constrained Address Computation in DSP Programs"
// (DATE 1998).
//
// The library allocates the array accesses of a DSP program loop to a
// fixed number K of AGU address registers so that as many address
// updates as possible ride along as free post-modify operations
// (|distance| <= M); every remaining update costs one extra
// instruction. Allocation follows the paper's two phases: a minimum
// zero-cost path cover of the access pattern's distance graph, then
// cost-minimal pairwise path merging down to the register constraint.
//
// Quick start:
//
//	pat := dspaddr.PaperExample()
//	res, err := dspaddr.Allocate(pat, dspaddr.Config{
//	    AGU: dspaddr.AGUSpec{Registers: 1, ModifyRange: 1},
//	})
//	if err != nil { ... }
//	fmt.Print(res.Report())
//
// Loops with several arrays, written in the mini-C loop language, go
// through ParseLoop and AllocateLoop; GenerateOptimized and
// GenerateNaive lower allocations to runnable programs for the bundled
// DSP simulator.
package dspaddr

import (
	"context"
	"errors"
	"fmt"

	"dspaddr/internal/codegen"
	"dspaddr/internal/core"
	"dspaddr/internal/distgraph"
	"dspaddr/internal/dspsim"
	"dspaddr/internal/engine"
	"dspaddr/internal/frontend"
	"dspaddr/internal/indexreg"
	"dspaddr/internal/jobs"
	"dspaddr/internal/model"
	"dspaddr/internal/offsetassign"
	"dspaddr/internal/workload"
)

// Core data types, re-exported from the model package.
type (
	// Pattern is one array's ordered access offsets within a loop
	// iteration.
	Pattern = model.Pattern
	// Access is one array reference of a loop body.
	Access = model.Access
	// LoopSpec is a counted loop with its body's array accesses.
	LoopSpec = model.LoopSpec
	// AGUSpec describes the address generation unit (K registers,
	// modify range M).
	AGUSpec = model.AGUSpec
	// Path is the access subsequence served by one address register.
	Path = model.Path
	// Assignment maps every access to an address register.
	Assignment = model.Assignment
)

// Allocator types, re-exported from the core package.
type (
	// Config controls an allocation (AGU, objective, merge strategy).
	Config = core.Config
	// Result is a single-pattern allocation outcome.
	Result = core.Result
	// LoopResult is a whole-loop (multi-array) allocation outcome.
	LoopResult = core.LoopResult
)

// Codegen types.
type (
	// Program is generated DSP code with verification metadata.
	Program = codegen.Program
	// Machine is the bundled DSP simulator.
	Machine = dspsim.Machine
	// Kernel is a library DSP kernel.
	Kernel = workload.Kernel
	// ParsedProgram is the frontend's parse result.
	ParsedProgram = frontend.Program
)

// NewPattern builds a stride-1 pattern over the given offsets.
func NewPattern(offsets ...int) Pattern { return model.NewPattern(offsets...) }

// PaperExample returns the seven-access example of the paper's
// Section 2.
func PaperExample() Pattern { return model.PaperExample() }

// Allocate runs the two-phase allocator on one access pattern.
func Allocate(pat Pattern, cfg Config) (*Result, error) { return core.Allocate(pat, cfg) }

// AllocateLoop allocates every array of a loop, distributing the K
// registers over the arrays by marginal cost.
func AllocateLoop(loop LoopSpec, cfg Config) (*LoopResult, error) {
	return core.AllocateLoop(loop, cfg)
}

// ParseLoop parses a mini-C loop (see package frontend for the
// grammar); bindings resolve symbolic bounds such as N.
func ParseLoop(src string, bindings map[string]int) (*ParsedProgram, error) {
	return frontend.Parse(src, bindings)
}

// DistanceGraphDOT renders the pattern's distance graph (the paper's
// Figure 1 for the example pattern with M=1) in Graphviz DOT syntax.
func DistanceGraphDOT(pat Pattern, modifyRange int, name string) (string, error) {
	dg, err := distgraph.Build(pat, modifyRange)
	if err != nil {
		return "", err
	}
	return dg.DOT(name), nil
}

// AutoBases lays a loop's arrays out in simulator data memory and
// returns the base map plus the memory size needed.
func AutoBases(loop LoopSpec) (map[string]int, int) { return codegen.AutoBases(loop) }

// GenerateOptimized lowers a loop allocation to simulator code using
// free post-modify addressing wherever the allocation permits.
func GenerateOptimized(alloc *LoopResult, bases map[string]int) (*Program, error) {
	return codegen.GenerateOptimized(alloc, bases, dspsim.ADD)
}

// GenerateNaive emits the "regular C compiler" baseline: explicit
// pointer arithmetic before every access, no free post-modify.
func GenerateNaive(loop LoopSpec, bases map[string]int, modifyRange int) (*Program, error) {
	return codegen.GenerateNaive(loop, bases, modifyRange, dspsim.ADD)
}

// Kernels lists the bundled DSP kernel library (FIR, IIR, convolution,
// correlation, LMS, FFT butterfly, DCT, stencil, dot product, moving
// average).
func Kernels() []*Kernel { return workload.AllKernels() }

// KernelByName fetches one bundled kernel.
func KernelByName(name string) (*Kernel, error) { return workload.KernelByName(name) }

// Batch allocation engine types, re-exported from the engine package.
type (
	// Engine is the concurrent batch allocation engine: a bounded
	// worker pool with a canonicalized-pattern result cache and
	// aggregate serving statistics.
	Engine = engine.Engine
	// EngineOptions configures an Engine (workers, per-job timeout,
	// cache size).
	EngineOptions = engine.Options
	// BatchJob is one (pattern, configuration) allocation job.
	BatchJob = engine.Request
	// BatchResult is one job's outcome: result or error, cache-hit
	// flag and latency.
	BatchResult = engine.JobResult
	// BatchLoopJob is one whole-loop allocation job for Engine.RunLoop:
	// the K registers are shared across the loop's arrays as in
	// AllocateLoop.
	BatchLoopJob = engine.LoopRequest
	// BatchLoopResult is a whole-loop job's outcome.
	BatchLoopResult = engine.LoopJobResult
	// EngineStats is a snapshot of an engine's aggregate statistics.
	EngineStats = engine.Stats
)

// NewEngine starts a batch allocation engine. The caller must Close it
// when done; for one-shot batches AllocateBatch is simpler.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// AllocateBatch runs many allocation jobs across a bounded worker pool
// and returns their results in job order. Identical (up to
// translation) patterns are solved once and served from cache. It
// spins up a temporary engine; services that allocate continuously
// should hold a NewEngine instead to keep the cache warm.
func AllocateBatch(ctx context.Context, jobs []BatchJob, opts EngineOptions) []BatchResult {
	e := engine.New(opts)
	defer e.Close()
	return e.RunBatch(ctx, jobs)
}

// Asynchronous job queue types, re-exported from the jobs package.
type (
	// Jobs is the asynchronous job manager: an admission-controlled
	// priority queue feeding an executor, with per-job status
	// tracking and a TTL'd result store for polling.
	Jobs = jobs.Manager
	// JobsOptions configures a Jobs manager (queue/store capacity,
	// result TTL, concurrent runners).
	JobsOptions = jobs.Options
	// JobStatus is a point-in-time snapshot of one async job.
	JobStatus = jobs.Status
	// JobState is a job's lifecycle state.
	JobState = jobs.State
	// JobsMetrics is a snapshot of a manager's aggregate counters.
	JobsMetrics = jobs.Metrics
)

// The async job lifecycle states: queued and running are transient,
// the rest terminal.
const (
	JobQueued   = jobs.StateQueued
	JobRunning  = jobs.StateRunning
	JobDone     = jobs.StateDone
	JobFailed   = jobs.StateFailed
	JobTimeout  = jobs.StateTimeout
	JobCanceled = jobs.StateCanceled
)

// NewJobs starts an asynchronous job manager in front of the engine:
// SubmitJob a BatchJob or BatchLoopJob, poll the returned ID with
// JobStatus (a done job's Status.Result is the matching BatchResult
// or BatchLoopResult), cancel with Jobs.Cancel, and Close both when
// done. Engine timeouts surface as the JobTimeout state. Supplying
// opts.Run overrides the executor entirely — the engine is then only
// used by jobs the custom runner forwards to it.
func NewJobs(e *Engine, opts JobsOptions) *Jobs {
	if opts.Run == nil {
		opts.Run = func(ctx context.Context, payload any) (any, error) {
			switch req := payload.(type) {
			case engine.Request:
				r := e.Run(ctx, req)
				if r.Err != nil {
					return nil, r.Err
				}
				return r, nil
			case engine.LoopRequest:
				r := e.RunLoop(ctx, req)
				if r.Err != nil {
					return nil, r.Err
				}
				return r, nil
			default:
				return nil, fmt.Errorf("dspaddr: unsupported job payload %T (want BatchJob or BatchLoopJob)", payload)
			}
		}
	}
	if opts.FailState == nil {
		// Applies to custom runners too: any executor that forwards
		// to the engine gets its timeouts classified correctly.
		opts.FailState = func(err error) jobs.State {
			if errors.Is(err, engine.ErrTimeout) {
				return jobs.StateTimeout
			}
			return ""
		}
	}
	return jobs.New(opts)
}

// SubmitJob submits one allocation job to an async manager at the
// given priority (higher dispatches first) and returns its ID.
func SubmitJob(j *Jobs, job BatchJob, priority int) (string, error) {
	return j.Submit(job, priority)
}

// JobStatusByID polls one async job; see Jobs.Get for the error
// contract (not-found vs evicted).
func JobStatusByID(j *Jobs, id string) (JobStatus, error) { return j.Get(id) }

// Index-register extension (beyond the paper's base AGU model).
type (
	// IndexedOptions tunes the indexed allocator.
	IndexedOptions = indexreg.Options
	// IndexedResult is an allocation plus chosen index-register
	// values.
	IndexedResult = indexreg.Result
)

// AllocateIndexed allocates a pattern on an AGU extended with index
// (modify) registers: updates matching ±(a chosen value) are free in
// addition to the immediate modify range. With zero index registers it
// degenerates to the paper's model; the result never costs more than
// the base allocation.
func AllocateIndexed(pat Pattern, spec AGUSpec, opts IndexedOptions) (*IndexedResult, error) {
	return indexreg.Optimize(pat, spec, opts)
}

// GenerateIndexedCode lowers an indexed allocation of a single-array
// loop to simulator code using index-register post-modifies.
func GenerateIndexedCode(loop LoopSpec, res *IndexedResult, modifyRange int) (*Program, error) {
	return codegen.GenerateIndexed(loop, res, modifyRange, dspsim.ADD)
}

// ScalarLayout is a memory order of scalar variables produced by the
// complementary offset-assignment optimizer ([4,5] of the paper).
type ScalarLayout = offsetassign.Layout

// AssignScalarOffsets lays out the scalar variables of a body's access
// sequence (e.g. ParsedProgram.Scalars) so that as many consecutive
// accesses as possible become free ±1 post-modifies, using the
// Leupers/Marwedel tie-break SOA heuristic. It returns the layout and
// its cost in unit-cost address computations per pass.
func AssignScalarOffsets(scalars []frontend.ScalarAccess) (ScalarLayout, int) {
	seq := make([]string, len(scalars))
	for i, s := range scalars {
		seq[i] = s.Name
	}
	l := offsetassign.TieBreakSOA(seq)
	return l, l.Cost(seq)
}
