// indexed demonstrates the index-register extension of the AGU model:
// a block-strided loop whose recurring large jumps defeat the paper's
// base model (every jump costs an instruction) but become free once an
// index register holds the jump distance — the classic use of TI AR0-
// indexed or Motorola Nx addressing.
package main

import (
	"fmt"
	"log"

	"dspaddr"
)

func main() {
	// A block transpose walk: within each iteration the pointer hops
	// by the row pitch (8), then rewinds.
	src := `
for (i = 0; i <= 15; i++) {
    A[i]; A[i+8]; A[i+16]; A[i+24];
}`
	prog, err := dspaddr.ParseLoop(src, nil)
	if err != nil {
		log.Fatal(err)
	}
	pats, _ := prog.Loop.Patterns()
	pat := pats[0]
	spec := dspaddr.AGUSpec{Registers: 1, ModifyRange: 1}

	base, err := dspaddr.AllocateIndexed(pat, spec, dspaddr.IndexedOptions{IndexRegisters: 0, Wrap: true})
	if err != nil {
		log.Fatal(err)
	}
	idx, err := dspaddr.AllocateIndexed(pat, spec, dspaddr.IndexedOptions{IndexRegisters: 1, Wrap: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base AGU model:    %d unit-cost computations/iteration\n", base.Cost)
	fmt.Printf("with 1 index reg:  %d unit-cost computations/iteration (IR values %v)\n", idx.Cost, idx.Values)

	for label, res := range map[string]*dspaddr.IndexedResult{"base": base, "indexed": idx} {
		code, err := dspaddr.GenerateIndexedCode(prog.Loop, res, spec.ModifyRange)
		if err != nil {
			log.Fatal(err)
		}
		_, words := dspaddr.AutoBases(prog.Loop)
		if err := code.Verify(words); err != nil {
			log.Fatalf("%s code failed verification: %v", label, err)
		}
		m, err := code.Run(words)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %2d code words, %4d cycles\n", label+":", code.CodeWords(), m.Cycles)
	}
}
