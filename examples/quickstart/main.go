// Quickstart: allocate address registers for the paper's example loop
// and print the allocation report plus the Figure 1 distance graph.
package main

import (
	"fmt"
	"log"

	"dspaddr"
)

func main() {
	pat := dspaddr.PaperExample()

	// A two-register AGU with modify range 1 admits the zero-cost
	// allocation of the paper's Section 2.
	res, err := dspaddr.Allocate(pat, dspaddr.Config{
		AGU: dspaddr.AGUSpec{Registers: 2, ModifyRange: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	// Tighten the constraint to one register: phase 2 merges the two
	// zero-cost paths and unit costs appear.
	res1, err := dspaddr.Allocate(pat, dspaddr.Config{
		AGU: dspaddr.AGUSpec{Registers: 1, ModifyRange: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res1.Report())

	dot, err := dspaddr.DistanceGraphDOT(pat, 1, "figure1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 1 (pipe into `dot -Tpng`):")
	fmt.Print(dot)
}
