// multiarray parses a three-array filter loop from mini-C source,
// allocates registers under a sweep of register budgets, and shows how
// the marginal-cost distribution spends each extra register.
package main

import (
	"fmt"
	"log"

	"dspaddr"
)

const src = `
// complex mixing kernel: two inputs, one output
for (i = 0; i <= N; i++) {
    y[i] = a[i]*b[i+4] + a[i+1]*b[i+5] - a[i-1]*b[i+3];
    y[i+1] = y[i] + a[i+2]*b[i];
}`

func main() {
	prog, err := dspaddr.ParseLoop(src, map[string]int{"N": 63})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arrays: %v, %d accesses/iteration\n\n", prog.Loop.Arrays(), len(prog.Loop.Accesses))

	fmt.Println("K   registers-used   unit-cost/iteration   per-array (cost@registers)")
	for k := 3; k <= 8; k++ {
		alloc, err := dspaddr.AllocateLoop(prog.Loop, dspaddr.Config{
			AGU: dspaddr.AGUSpec{Registers: k, ModifyRange: 1},
		})
		if err != nil {
			log.Fatal(err)
		}
		detail := ""
		for _, aa := range alloc.Arrays {
			detail += fmt.Sprintf("  %s:%d@%d", aa.Result.Pattern.Array,
				aa.Result.Cost, len(aa.GlobalRegisters))
		}
		fmt.Printf("%-4d%-17d%-22d%s\n", k, alloc.RegistersUsed, alloc.TotalCost, detail)
	}

	// Generate and verify code at the sweet spot.
	alloc, err := dspaddr.AllocateLoop(prog.Loop, dspaddr.Config{
		AGU: dspaddr.AGUSpec{Registers: 5, ModifyRange: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	bases, words := dspaddr.AutoBases(prog.Loop)
	code, err := dspaddr.GenerateOptimized(alloc, bases)
	if err != nil {
		log.Fatal(err)
	}
	if err := code.Verify(words); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nK=5 code verified on the simulator: %d words\n", code.CodeWords())
}
