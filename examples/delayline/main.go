// delayline runs the modulo-addressing demonstration: a 16-tap FIR
// filter implemented once with a circular delay buffer (one modulo
// register, free wrapping post-modifies) and once with the window
// shifting that code without modulo addressing must perform. Both
// programs run on the bundled simulator and are verified
// sample-by-sample against a pure-Go reference before the cycle counts
// are compared.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"reflect"

	"dspaddr/internal/circular"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	taps := make([]int, 16)
	for i := range taps {
		taps[i] = rng.Intn(9) - 4
	}
	input := make([]int, 64)
	for i := range input {
		input[i] = rng.Intn(41) - 20
	}
	want := circular.Reference(taps, input)

	circ, err := circular.BuildCircularFIR(taps, len(input))
	if err != nil {
		log.Fatal(err)
	}
	shift, err := circular.BuildShiftFIR(taps, len(input))
	if err != nil {
		log.Fatal(err)
	}
	mc, yc, err := circ.Run(input)
	if err != nil {
		log.Fatal(err)
	}
	ms, ys, err := shift.Run(input)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(yc, want) || !reflect.DeepEqual(ys, want) {
		log.Fatal("filter outputs diverge from the reference")
	}
	fmt.Printf("16-tap FIR over %d samples, outputs verified against the reference\n\n", len(input))
	fmt.Printf("window shifting:    %3d code words, %5d cycles (%.1f/sample)\n",
		len(shift.Code), ms.Cycles, float64(ms.Cycles)/float64(len(input)))
	fmt.Printf("circular (modulo):  %3d code words, %5d cycles (%.1f/sample)\n",
		len(circ.Code), mc.Cycles, float64(mc.Cycles)/float64(len(input)))
	fmt.Printf("\nmodulo addressing saves %.1f%% cycles and %.1f%% code\n",
		100*float64(ms.Cycles-mc.Cycles)/float64(ms.Cycles),
		100*float64(len(shift.Code)-len(circ.Code))/float64(len(shift.Code)))
}
