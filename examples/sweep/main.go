// sweep reruns a compact version of the paper's statistical analysis
// (Results ¶1): random access patterns over a (N, M, K) grid, greedy
// path merging versus the naive arbitrary-pair baseline. The full-size
// sweep lives in `rcabench -exp e2`.
package main

import (
	"fmt"
	"log"

	"dspaddr/internal/experiments"
)

func main() {
	p := experiments.DefaultE2Params()
	p.Trials = 40 // compact run; the paper's claim is ~40% on average
	res, err := experiments.RunE2(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	fmt.Printf("\npaper: \"about 40%% on the average\" — measured grand average: %.1f%%\n",
		res.GrandReduction)
}
