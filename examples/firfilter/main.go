// firfilter runs the bundled 8-tap FIR kernel end to end: allocate
// address registers, generate optimized and naive DSP code, verify both
// against the source-level address trace on the simulator, and report
// the code-size and speed effect of optimized array index computation.
package main

import (
	"fmt"
	"log"

	"dspaddr"
)

func main() {
	kernel, err := dspaddr.KernelByName("fir8")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s: %s\n%s\n", kernel.Name, kernel.Description, kernel.Source)

	alloc, err := dspaddr.AllocateLoop(kernel.Loop, dspaddr.Config{
		AGU:            dspaddr.AGUSpec{Registers: 3, ModifyRange: 1},
		InterIteration: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, aa := range alloc.Arrays {
		fmt.Printf("array %s -> registers %v, cost %d\n",
			aa.Result.Pattern.Array, aa.GlobalRegisters, aa.Result.Cost)
	}

	bases, words := dspaddr.AutoBases(kernel.Loop)
	opt, err := dspaddr.GenerateOptimized(alloc, bases)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := dspaddr.GenerateNaive(kernel.Loop, bases, 1)
	if err != nil {
		log.Fatal(err)
	}
	for name, prog := range map[string]*dspaddr.Program{"optimized": opt, "naive": naive} {
		if err := prog.Verify(words); err != nil {
			log.Fatalf("%s code failed address-trace verification: %v", name, err)
		}
	}

	mo, err := opt.Run(words)
	if err != nil {
		log.Fatal(err)
	}
	mn, err := naive.Run(words)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncode size: %d words optimized vs %d naive (%.1f%% smaller)\n",
		opt.CodeWords(), naive.CodeWords(),
		100*float64(naive.CodeWords()-opt.CodeWords())/float64(naive.CodeWords()))
	fmt.Printf("speed:     %d cycles optimized vs %d naive (%.1f%% faster)\n",
		mo.Cycles, mn.Cycles,
		100*float64(mn.Cycles-mo.Cycles)/float64(mn.Cycles))
}
