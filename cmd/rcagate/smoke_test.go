//go:build cluster_smoke

// The out-of-process cluster smoke: build the real rcaserve and
// rcagate binaries, stand up a two-node fleet behind the gateway and
// script the full client surface through it — sync allocate, batch,
// async submit/poll/cancel, merged listing, aggregated stats — plus
// the routing property the subsystem exists for: identical campaigns
// land on ONE node's cache. Gated behind the cluster_smoke build tag
// because it compiles two binaries and runs real processes:
//
//	go test -tags cluster_smoke -run TestClusterSmoke ./cmd/rcagate
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

const smokeAllocBody = `{"pattern":{"offsets":[1,0,2,-1,1,0,-2]},"agu":{"registers":1,"modifyRange":1}}`

func TestClusterSmoke(t *testing.T) {
	dir := t.TempDir()
	serveBin := filepath.Join(dir, "rcaserve")
	gateBin := filepath.Join(dir, "rcagate")
	for bin, pkg := range map[string]string{serveBin: "dspaddr/cmd/rcaserve", gateBin: "dspaddr/cmd/rcagate"} {
		out, err := exec.Command("go", "build", "-race", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	ports := freePorts(t, 3)
	nodeA := fmt.Sprintf("127.0.0.1:%d", ports[0])
	nodeB := fmt.Sprintf("127.0.0.1:%d", ports[1])
	gateAddr := fmt.Sprintf("127.0.0.1:%d", ports[2])

	start := func(bin string, args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", bin, err)
		}
		t.Cleanup(func() {
			cmd.Process.Signal(syscall.SIGTERM)
			cmd.Wait()
		})
		return cmd
	}
	start(serveBin, "-addr", nodeA, "-node-id", "a")
	start(serveBin, "-addr", nodeB, "-node-id", "b")
	waitHealthy(t, "http://"+nodeA)
	waitHealthy(t, "http://"+nodeB)
	start(gateBin, "-addr", gateAddr,
		"-nodes", fmt.Sprintf("a=http://%s,b=http://%s", nodeA, nodeB),
		"-probe-interval", "250ms")
	gate := "http://" + gateAddr
	waitHealthy(t, gate)

	// --- stickiness: 10 identical allocates land on one node --------
	beforeA, beforeB := nodeLookups(t, "http://"+nodeA), nodeLookups(t, "http://"+nodeB)
	for i := 0; i < 10; i++ {
		status, _ := post(t, gate+"/v1/allocate", smokeAllocBody)
		if status != http.StatusOK {
			t.Fatalf("allocate %d: status %d", i, status)
		}
	}
	deltaA := nodeLookups(t, "http://"+nodeA) - beforeA
	deltaB := nodeLookups(t, "http://"+nodeB) - beforeB
	if deltaA+deltaB != 10 || (deltaA != 0 && deltaB != 0) {
		t.Fatalf("identical campaign split across nodes: a=%d b=%d", deltaA, deltaB)
	}

	// --- batch through the gateway ---------------------------------
	jobs := make([]string, 8)
	for i := range jobs {
		jobs[i] = fmt.Sprintf(`{"pattern":{"offsets":[%d,0,1]},"agu":{"registers":1,"modifyRange":1}}`, i)
	}
	status, body := post(t, gate+"/v1/batch", `{"jobs":[`+strings.Join(jobs, ",")+`]}`)
	if status != http.StatusOK {
		t.Fatalf("batch: status %d body %s", status, body)
	}
	var batchOut struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &batchOut); err != nil || len(batchOut.Results) != len(jobs) {
		t.Fatalf("batch results: err=%v n=%d body=%s", err, len(batchOut.Results), body)
	}

	// --- async submit, tag-routed poll, cancel, list ----------------
	status, body = post(t, gate+"/v1/jobs", smokeAllocBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", status, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body: %v %s", err, body)
	}
	if !strings.HasPrefix(sub.ID, "j-a-") && !strings.HasPrefix(sub.ID, "j-b-") {
		t.Fatalf("job ID %q carries no node tag", sub.ID)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		status, body = get(t, gate+"/v1/jobs/"+sub.ID)
		if status != http.StatusOK {
			t.Fatalf("poll %s: status %d body %s", sub.ID, status, body)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("job ended %s: %s", st.State, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not done before deadline (last: %s)", sub.ID, body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Cancel a fresh job through the gateway; by the time the DELETE
	// lands it may already be done, so 200 and 409 are both in
	// contract — anything else is a routing failure.
	status, body = post(t, gate+"/v1/jobs", smokeAllocBody)
	if status != http.StatusAccepted {
		t.Fatalf("second submit: status %d body %s", status, body)
	}
	if err := json.Unmarshal([]byte(body), &sub); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, gate+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel: status %d body %s", resp.StatusCode, raw)
	}

	status, body = get(t, gate+"/v1/jobs?limit=10")
	if status != http.StatusOK {
		t.Fatalf("list: status %d body %s", status, body)
	}
	var list struct {
		Jobs  []json.RawMessage `json:"jobs"`
		Total int               `json:"total"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil || list.Total < 2 {
		t.Fatalf("list merge: err=%v body=%s", err, body)
	}

	// --- aggregated stats sanity ------------------------------------
	status, body = get(t, gate+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	var stats struct {
		Fleet struct {
			Nodes          int    `json:"nodes"`
			UpNodes        int    `json:"upNodes"`
			Jobs           uint64 `json:"jobs"`
			AsyncSubmitted uint64 `json:"asyncSubmitted"`
		} `json:"fleet"`
		Nodes map[string]json.RawMessage `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("stats body: %v\n%s", err, body)
	}
	if stats.Fleet.Nodes != 2 || stats.Fleet.UpNodes != 2 || len(stats.Nodes) != 2 {
		t.Fatalf("fleet shape: %s", body)
	}
	// 10 allocates + 8 batch jobs + 2 async = at least 20 engine jobs
	// and 2 async submissions fleet-wide.
	if stats.Fleet.Jobs < 20 || stats.Fleet.AsyncSubmitted < 2 {
		t.Fatalf("fleet sums too small: %s", body)
	}
	// The summed view must equal the per-node parts it nests.
	var perNodeSubmitted uint64
	for name, raw := range stats.Nodes {
		var n struct {
			AsyncJobs struct {
				Submitted uint64 `json:"submitted"`
			} `json:"asyncJobs"`
		}
		if err := json.Unmarshal(raw, &n); err != nil {
			t.Fatalf("node %s stats: %v", name, err)
		}
		perNodeSubmitted += n.AsyncJobs.Submitted
	}
	if perNodeSubmitted != stats.Fleet.AsyncSubmitted {
		t.Fatalf("stats aggregation mismatch: fleet=%d sum(nodes)=%d",
			stats.Fleet.AsyncSubmitted, perNodeSubmitted)
	}

	// --- aggregated metrics carry both layers ------------------------
	status, body = get(t, gate+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	for _, fam := range []string{"rcagate_nodes_up 2", "rcaserve_http_requests_total"} {
		if !strings.Contains(body, fam) {
			t.Fatalf("metrics missing %q", fam)
		}
	}
}

// freePorts reserves n distinct loopback ports.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	out := make([]int, n)
	for i := range out {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		out[i] = l.Addr().(*net.TCPAddr).Port
		l.Close()
	}
	return out
}

// waitHealthy polls /healthz until 200 or a 10s deadline.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became healthy: %v", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// nodeLookups reads a node's cache lookup count (hits + misses) — one
// per synchronous allocate, whichever way it resolves.
func nodeLookups(t *testing.T, base string) uint64 {
	t.Helper()
	_, body := get(t, base+"/v1/stats")
	var s struct {
		CacheHits   uint64 `json:"cacheHits"`
		CacheMisses uint64 `json:"cacheMisses"`
	}
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("node stats: %v", err)
	}
	return s.CacheHits + s.CacheMisses
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(raw)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(raw)
}
