package main

import (
	"runtime/debug"
	"strings"
)

// buildVersion derives a human-usable version string from the
// binary's embedded build info. A module-aware build already carries
// a (pseudo-)version with the revision baked in; only a plain
// "(devel)" build needs the VCS revision (and dirty marker) appended
// by hand.
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	var b strings.Builder
	b.WriteString("devel+")
	b.WriteString(rev)
	if dirty {
		b.WriteString("+dirty")
	}
	return b.String()
}
