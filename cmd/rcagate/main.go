// Command rcagate is the cluster-mode gateway: a thin stateless
// router that terminates the full rcaserve /v1 API at one address and
// spreads the work over a fleet of rcaserve nodes on a consistent-
// hash ring (package cluster).
//
// Synchronous jobs route by the engine's canonical routing digest, so
// identical campaigns — including translated twins the result cache
// folds together — always land on the same node and reuse its warm
// cache. Async job IDs carry the admitting node's -node-id tag, so
// GET/DELETE /v1/jobs/{id} route back to the owner regardless of
// later ring movements. /v1/stats and /metrics aggregate across the
// fleet; /healthz answers 200 while any node is up.
//
// Nodes must run with -node-id matching their name in -nodes.
//
// Usage:
//
//	rcagate -nodes n1=http://127.0.0.1:8081,n2=http://127.0.0.1:8082 [flags]
//
// Flags:
//
//	-addr string              listen address (default ":8090")
//	-nodes string             fleet members as name=url pairs, comma separated (required)
//	-vnodes int               virtual nodes per member on the ring (default 128)
//	-probe-interval duration  health-check cadence (default 500ms)
//	-probe-timeout duration   per-probe timeout (default 1s)
//	-fail-threshold int       consecutive failures before mark-down (default 2)
//	-forward-timeout duration per-hop forwarding timeout (default 30s)
//	-log-format string        structured log encoding: text or json (default "text")
//	-version                  print the build version and exit
//
// Example:
//
//	rcaserve -addr :8081 -node-id n1 &
//	rcaserve -addr :8082 -node-id n2 &
//	rcagate -addr :8090 -nodes n1=http://127.0.0.1:8081,n2=http://127.0.0.1:8082 &
//	curl -s localhost:8090/v1/allocate -d '{
//	    "pattern": {"offsets": [1, 0, 2, -1, 1, 0, -2]},
//	    "agu": {"registers": 1, "modifyRange": 1}
//	}'
//
// The gateway shuts down gracefully on SIGINT/SIGTERM: the listener
// stops, in-flight forwards get a drain window, then the health
// checker and connection pools are released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dspaddr/internal/cluster"
)

// shutdownGrace is how long in-flight requests get to finish after a
// termination signal.
const shutdownGrace = 10 * time.Second

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcagate:", err)
		os.Exit(1)
	}
}

// run parses flags, builds the fleet and serves until a termination
// signal arrives.
func run(args []string) error {
	fs := flag.NewFlagSet("rcagate", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	nodes := fs.String("nodes", "", "fleet members as name=url pairs, comma separated (names must match the nodes' -node-id)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = 128 default)")
	probeInterval := fs.Duration("probe-interval", 0, "health-check cadence (0 = 500ms default)")
	probeTimeout := fs.Duration("probe-timeout", 0, "per-probe timeout (0 = 1s default)")
	failThreshold := fs.Int("fail-threshold", 0, "consecutive failures before a node is marked down (0 = 2 default)")
	forwardTimeout := fs.Duration("forward-timeout", 0, "per-hop forwarding timeout (0 = 30s default)")
	logFormat := fs.String("log-format", "text", "structured log encoding: text or json")
	version := fs.Bool("version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("rcagate", buildVersion())
		return nil
	}

	logger, err := newLogger(*logFormat)
	if err != nil {
		return err
	}

	members, err := cluster.ParseMembers(*nodes)
	if err != nil {
		return fmt.Errorf("%w (set -nodes)", err)
	}
	fleet, err := cluster.NewFleet(members, cluster.FleetOptions{
		VirtualNodes:  *vnodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailThreshold: *failThreshold,
	})
	if err != nil {
		return err
	}
	gw, err := cluster.New(cluster.Options{
		Fleet:          fleet,
		Version:        buildVersion(),
		ForwardTimeout: *forwardTimeout,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		names := make([]string, len(members))
		for i := range members {
			names[i] = members[i].Name
		}
		logger.Info("gateway listening",
			"version", buildVersion(), "addr", *addr,
			"nodes", names, "ringPoints", fleet.Ring().Size())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	logger.Info("shutting down", "grace", shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// newLogger builds the process logger from the -log-format flag.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}
