// Command rcagate is the cluster-mode gateway: a thin stateless
// router that terminates the full rcaserve /v1 API at one address and
// spreads the work over a fleet of rcaserve nodes on a consistent-
// hash ring (package cluster).
//
// Synchronous jobs route by the engine's canonical routing digest, so
// identical campaigns — including translated twins the result cache
// folds together — always land on the same node and reuse its warm
// cache. Async job IDs carry the admitting node's -node-id tag, so
// GET/DELETE /v1/jobs/{id} route back to the owner regardless of
// later ring movements. /v1/stats and /metrics aggregate across the
// fleet; /healthz answers 200 while any node is up.
//
// Nodes must run with -node-id matching their name in -nodes.
//
// Usage:
//
//	rcagate -nodes n1=http://127.0.0.1:8081,n2=http://127.0.0.1:8082 [flags]
//
// Flags:
//
//	-addr string              listen address (default ":8090")
//	-nodes string             fleet members as name=url pairs, comma separated (required)
//	-vnodes int               virtual nodes per member on the ring (default 128)
//	-probe-interval duration  health-check cadence (default 500ms)
//	-probe-timeout duration   per-probe timeout (default 1s)
//	-fail-threshold int       consecutive failures before mark-down (default 2)
//	-forward-timeout duration per-hop forwarding timeout (default 30s)
//	-breaker-disable          turn per-node circuit breakers off
//	-breaker-window int       breaker rolling outcome window per node (default 32)
//	-breaker-min-samples int  minimum outcomes before a breaker may trip (default 8)
//	-breaker-error-rate float window failure fraction that trips a breaker (default 0.5)
//	-breaker-latency-quantile float  window latency quantile the slow trip
//	                          evaluates (default 0.9)
//	-breaker-latency-threshold duration  latency at the quantile that trips a
//	                          breaker (default 250ms; negative disables the slow trip)
//	-breaker-open-for duration  open-state hold before half-opening (default 2s)
//	-breaker-half-open-every duration  half-open trickle interval (default 250ms)
//	-breaker-close-after int  consecutive fast successes that close a
//	                          half-open breaker (default 3)
//	-hedge-disable            turn hedged reads off
//	-hedge-quantile float     forward-latency quantile arming the hedge timer (default 0.95)
//	-hedge-min-delay duration lower clamp on the derived hedge delay (default 10ms)
//	-hedge-max-delay duration upper clamp, and the delay while the latency
//	                          window is empty (default 1s)
//	-hedge-fixed-delay duration  fixed hedge delay bypassing the quantile
//	-log-format string        structured log encoding: text or json (default "text")
//	-version                  print the build version and exit
//
// Example:
//
//	rcaserve -addr :8081 -node-id n1 &
//	rcaserve -addr :8082 -node-id n2 &
//	rcagate -addr :8090 -nodes n1=http://127.0.0.1:8081,n2=http://127.0.0.1:8082 &
//	curl -s localhost:8090/v1/allocate -d '{
//	    "pattern": {"offsets": [1, 0, 2, -1, 1, 0, -2]},
//	    "agu": {"registers": 1, "modifyRange": 1}
//	}'
//
// The gateway shuts down gracefully on SIGINT/SIGTERM: the listener
// stops, in-flight forwards get a drain window, then the health
// checker and connection pools are released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dspaddr/internal/cluster"
)

// shutdownGrace is how long in-flight requests get to finish after a
// termination signal.
const shutdownGrace = 10 * time.Second

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcagate:", err)
		os.Exit(1)
	}
}

// run parses flags, builds the fleet and serves until a termination
// signal arrives.
func run(args []string) error {
	fs := flag.NewFlagSet("rcagate", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	nodes := fs.String("nodes", "", "fleet members as name=url pairs, comma separated (names must match the nodes' -node-id)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = 128 default)")
	probeInterval := fs.Duration("probe-interval", 0, "health-check cadence (0 = 500ms default)")
	probeTimeout := fs.Duration("probe-timeout", 0, "per-probe timeout (0 = 1s default)")
	failThreshold := fs.Int("fail-threshold", 0, "consecutive failures before a node is marked down (0 = 2 default)")
	forwardTimeout := fs.Duration("forward-timeout", 0, "per-hop forwarding timeout (0 = 30s default)")
	breakerDisable := fs.Bool("breaker-disable", false, "turn per-node circuit breakers off")
	breakerWindow := fs.Int("breaker-window", 0, "breaker rolling outcome window per node (0 = 32 default)")
	breakerMinSamples := fs.Int("breaker-min-samples", 0, "minimum outcomes in the window before a breaker may trip (0 = 8 default)")
	breakerErrRate := fs.Float64("breaker-error-rate", 0, "window failure fraction that trips a breaker (0 = 0.5 default)")
	breakerLatencyQuantile := fs.Float64("breaker-latency-quantile", 0, "window latency quantile the slow trip evaluates (0 = 0.9 default)")
	breakerLatencyThreshold := fs.Duration("breaker-latency-threshold", 0, "latency at the quantile that trips a breaker (0 = 250ms default, negative disables the slow trip)")
	breakerOpenFor := fs.Duration("breaker-open-for", 0, "how long an open breaker refuses before half-opening (0 = 2s default)")
	breakerHalfOpenEvery := fs.Duration("breaker-half-open-every", 0, "half-open trickle: at most one admission per interval (0 = 250ms default)")
	breakerCloseAfter := fs.Int("breaker-close-after", 0, "consecutive fast successes that close a half-open breaker (0 = 3 default)")
	hedgeDisable := fs.Bool("hedge-disable", false, "turn hedged reads off (idempotent GETs degrade to single requests)")
	hedgeQuantile := fs.Float64("hedge-quantile", 0, "forward-latency quantile that arms the hedge timer (0 = 0.95 default)")
	hedgeMinDelay := fs.Duration("hedge-min-delay", 0, "lower clamp on the derived hedge delay (0 = 10ms default)")
	hedgeMaxDelay := fs.Duration("hedge-max-delay", 0, "upper clamp on the derived hedge delay; also the delay with an empty latency window (0 = 1s default)")
	hedgeFixedDelay := fs.Duration("hedge-fixed-delay", 0, "fixed hedge delay bypassing the quantile (0 = derive from latency)")
	logFormat := fs.String("log-format", "text", "structured log encoding: text or json")
	version := fs.Bool("version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("rcagate", buildVersion())
		return nil
	}

	logger, err := newLogger(*logFormat)
	if err != nil {
		return err
	}

	members, err := cluster.ParseMembers(*nodes)
	if err != nil {
		return fmt.Errorf("%w (set -nodes)", err)
	}
	fleet, err := cluster.NewFleet(members, cluster.FleetOptions{
		VirtualNodes:  *vnodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailThreshold: *failThreshold,
		Breaker: cluster.BreakerOptions{
			Disabled:         *breakerDisable,
			Window:           *breakerWindow,
			MinSamples:       *breakerMinSamples,
			ErrRate:          *breakerErrRate,
			LatencyQuantile:  *breakerLatencyQuantile,
			LatencyThreshold: *breakerLatencyThreshold,
			OpenFor:          *breakerOpenFor,
			HalfOpenEvery:    *breakerHalfOpenEvery,
			CloseAfter:       *breakerCloseAfter,
		},
	})
	if err != nil {
		return err
	}
	gw, err := cluster.New(cluster.Options{
		Fleet:          fleet,
		Version:        buildVersion(),
		ForwardTimeout: *forwardTimeout,
		Logger:         logger,
		Hedge: cluster.HedgeOptions{
			Disabled:   *hedgeDisable,
			Quantile:   *hedgeQuantile,
			MinDelay:   *hedgeMinDelay,
			MaxDelay:   *hedgeMaxDelay,
			FixedDelay: *hedgeFixedDelay,
		},
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		names := make([]string, len(members))
		for i := range members {
			names[i] = members[i].Name
		}
		logger.Info("gateway listening",
			"version", buildVersion(), "addr", *addr,
			"nodes", names, "ringPoints", fleet.Ring().Size())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	logger.Info("shutting down", "grace", shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// newLogger builds the process logger from the -log-format flag.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}
