// Command rcabench regenerates the paper's evaluation artifacts and
// the repository's ablation tables. Each experiment is named in
// DESIGN.md's per-experiment index:
//
//	e1  Figure 1 — distance graph of the example loop
//	e2  Results ¶1 — random patterns, greedy vs naive merging (~40%)
//	e3  Results ¶2 — DSP kernels, code size & speed vs naive compiler
//	a1  ablation — phase-1 bound quality
//	a2  ablation — merge strategies
//	a3  ablation — inter-iteration modelling
//	a4  ablation — scalar offset assignment (SOA/GOA)
//	a5  extension — AGU index (modify) registers
//	a6  extension — modulo (circular-buffer) addressing
//	all everything above
//
// A separate tooling mode, not part of "all":
//
//	bench  machine-readable hot-path baseline (see bench.go); with
//	       -bench-out it writes BENCH_*.json, with -bench-against it
//	       fails when a gated engine scenario regresses >25% against a
//	       committed baseline
//
// Usage:
//
//	rcabench -exp e2 -trials 100 -seed 1998
//	rcabench -exp bench -bench-out BENCH_5.json -bench-against BENCH_5.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dspaddr/internal/experiments"
	"dspaddr/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcabench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rcabench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: e1|e2|e3|a1|a2|a3|a4|a5|a6|all, or bench (hot-path baseline)")
	trials := fs.Int("trials", 100, "trials per sweep cell")
	seed := fs.Int64("seed", 1998, "random seed")
	k := fs.Int("k", 4, "register count for e3/a2/a3")
	m := fs.Int("m", 1, "modify range for e3/a2/a3")
	dist := fs.String("dist", "uniform", "random pattern distribution for e2: uniform|clustered|walk")
	markdown := fs.Bool("md", false, "emit markdown tables")
	benchOut := fs.String("bench-out", "", "with -exp bench: write the baseline JSON to this file")
	benchAgainst := fs.String("bench-against", "", "with -exp bench: fail if a gated engine benchmark regresses >25% against this baseline file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *exp == "bench" {
		return runBench(out, *benchOut, *benchAgainst)
	}

	render := func(t interface {
		String() string
		Markdown() string
	}) {
		if *markdown {
			fmt.Fprintln(out, t.Markdown())
		} else {
			fmt.Fprintln(out, t.String())
		}
	}

	want := func(name string) bool { return *exp == name || *exp == "all" }
	ran := false

	if want("e1") {
		ran = true
		r, err := experiments.RunFig1()
		if err != nil {
			return err
		}
		render(r.Table())
		fmt.Fprintf(out, "minimal zero-cost cover: %v\n\n%s\n", r.Cover, r.DOT)
	}
	if want("e2") {
		ran = true
		p := experiments.DefaultE2Params()
		p.Trials = *trials
		p.Seed = *seed
		d, err := workload.ParseDistribution(*dist)
		if err != nil {
			return err
		}
		p.Dist = d
		r, err := experiments.RunE2(p)
		if err != nil {
			return err
		}
		render(r.Table())
	}
	if want("e3") {
		ran = true
		p := experiments.DefaultE3Params()
		p.Registers = *k
		p.ModifyRange = *m
		r, err := experiments.RunE3(p)
		if err != nil {
			return err
		}
		render(r.Table())
	}
	if want("a1") {
		ran = true
		rows, err := experiments.RunA1([]int{8, 12, 16}, []int{1, 2}, *trials, *seed)
		if err != nil {
			return err
		}
		render(experiments.A1Table(rows))
	}
	if want("a2") {
		ran = true
		rows, err := experiments.RunA2([]int{8, 12, 20, 30}, *k/2+1, *m, *trials, *seed)
		if err != nil {
			return err
		}
		render(experiments.A2Table(rows, *k/2+1, *m))
	}
	if want("a3") {
		ran = true
		rows, err := experiments.RunA3(*k, *m, *trials, *seed)
		if err != nil {
			return err
		}
		render(experiments.A3Table(rows, *k, *m))
	}
	if want("a4") {
		ran = true
		rows, err := experiments.RunA4([]int{12, 24, 48}, 7, *trials, *seed)
		if err != nil {
			return err
		}
		render(experiments.A4Table(rows))
	}
	if want("a5") {
		ran = true
		rows, err := experiments.RunA5([]int{10, 20, 30}, *k/2, *m, *trials, *seed)
		if err != nil {
			return err
		}
		render(experiments.A5Table(rows, *k/2, *m))
	}
	if want("a6") {
		ran = true
		rows, err := experiments.RunA6([]int{4, 8, 16, 32}, 64, *seed)
		if err != nil {
			return err
		}
		render(experiments.A6Table(rows, 64))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
