package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testBaseline(ns float64) benchBaseline {
	return benchBaseline{
		Schema:    benchSchema,
		GoVersion: "go-test",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Benchmarks: map[string]benchEntry{
			"cover/dag/N=50": {NsPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 100},
			batchBenchKey:    {NsPerOp: ns, AllocsPerOp: 500, BytesPerOp: 5000},
			parallelBenchKey: {NsPerOp: 1000, AllocsPerOp: 400, BytesPerOp: 4000},
			batchObsBenchKey: {NsPerOp: ns, AllocsPerOp: 501, BytesPerOp: 5050},
		},
	}
}

func writeBaselineFile(t *testing.T, base benchBaseline) string {
	t.Helper()
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBaselinesGate(t *testing.T) {
	committed := testBaseline(1000)
	var out strings.Builder

	// Within tolerance: 25% slower exactly still passes.
	if err := compareBaselines(&out, testBaseline(1250), committed); err != nil {
		t.Fatalf("25%% regression should be within tolerance: %v", err)
	}
	// Beyond tolerance fails.
	if err := compareBaselines(&out, testBaseline(1300), committed); err == nil {
		t.Fatal("30% regression passed the gate")
	}
	// Improvements pass.
	if err := compareBaselines(&out, testBaseline(500), committed); err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}
	// A committed baseline missing a gated entry is an error, not a
	// silent pass — for either gated scenario.
	for _, key := range gatedBenchKeys {
		broken := testBaseline(1000)
		delete(broken.Benchmarks, key)
		if err := compareBaselines(&out, testBaseline(1000), broken); err == nil {
			t.Fatalf("missing gated benchmark %q passed the gate", key)
		}
	}

	// The parallel scenario is gated independently of the batch one.
	slowPar := testBaseline(1000)
	e := slowPar.Benchmarks[parallelBenchKey]
	e.NsPerOp = 1300
	slowPar.Benchmarks[parallelBenchKey] = e
	if err := compareBaselines(&out, slowPar, committed); err == nil {
		t.Fatal("30% parallel regression passed the gate")
	}

	// Tracing overhead is a same-run ratio: an instrumented batch more
	// than obsOverheadTolerance slower than the fresh untraced batch
	// fails even when both are within the vs-committed tolerance.
	slowObs := testBaseline(1000)
	e = slowObs.Benchmarks[batchObsBenchKey]
	e.NsPerOp = 1000 * (1 + obsOverheadTolerance + 0.05)
	slowObs.Benchmarks[batchObsBenchKey] = e
	if err := compareBaselines(&out, slowObs, committed); err == nil {
		t.Fatal("excess tracing overhead passed the gate")
	}

	// The untraced batch may not gain allocations beyond allocSlack —
	// the hooks-disabled path must stay allocation-free.
	leaky := testBaseline(1000)
	e = leaky.Benchmarks[batchBenchKey]
	e.AllocsPerOp = committed.Benchmarks[batchBenchKey].AllocsPerOp + allocSlack + 1
	leaky.Benchmarks[batchBenchKey] = e
	if err := compareBaselines(&out, leaky, committed); err == nil {
		t.Fatal("alloc growth on the untraced batch passed the gate")
	}
	e.AllocsPerOp = committed.Benchmarks[batchBenchKey].AllocsPerOp + allocSlack
	leaky.Benchmarks[batchBenchKey] = e
	if err := compareBaselines(&out, leaky, committed); err != nil {
		t.Fatalf("alloc drift within slack failed the gate: %v", err)
	}

	// The durability gate reads the within-run statistic carried on
	// the fresh WAL scenario entry — the median paired-round p99
	// overhead — and fails past walOverheadTolerance.
	walFresh := func(pct float64) benchBaseline {
		b := testBaseline(1000)
		b.Benchmarks[submitWALBenchKey] = benchEntry{
			NsPerOp: 1100, P99NsPerOp: 2000, P99OverheadPct: pct,
		}
		return b
	}
	if err := compareBaselines(&out, walFresh(100*walOverheadTolerance), committed); err != nil {
		t.Fatalf("wal overhead at tolerance failed the gate: %v", err)
	}
	if err := compareBaselines(&out, walFresh(100*walOverheadTolerance+0.1), committed); err == nil {
		t.Fatal("excess wal submit p99 overhead passed the gate")
	}

	// The gateway-hop gate reads the within-run statistic on the fresh
	// gateway/forward entry — the median paired-round p99 delta — and
	// fails past the absolute 1ms ceiling.
	hopFresh := func(deltaNs float64) benchBaseline {
		b := testBaseline(1000)
		b.Benchmarks[fwdDirectBenchKey] = benchEntry{NsPerOp: 300, P99NsPerOp: 900}
		b.Benchmarks[fwdGatewayBenchKey] = benchEntry{
			NsPerOp: 600, P99NsPerOp: 900 + deltaNs, P99HopDeltaNs: deltaNs,
		}
		return b
	}
	if err := compareBaselines(&out, hopFresh(gatewayHopCeilingNs), committed); err != nil {
		t.Fatalf("hop delta at the ceiling failed the gate: %v", err)
	}
	if err := compareBaselines(&out, hopFresh(gatewayHopCeilingNs+1), committed); err == nil {
		t.Fatal("excess gateway hop p99 delta passed the gate")
	}
}

func TestLoadBaseline(t *testing.T) {
	path := writeBaselineFile(t, testBaseline(1000))
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.Benchmarks[batchBenchKey].NsPerOp != 1000 {
		t.Fatalf("round-trip lost data: %+v", base)
	}
	if _, err := loadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := testBaseline(1)
	bad.Schema = benchSchema + 1
	if _, err := loadBaseline(writeBaselineFile(t, bad)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestCommittedBaselineParses guards the repo's committed baselines
// against drift: each must parse and contain every benchmark the gate
// and the README table rely on. BENCH_9.json — the one CI gates
// against — additionally carries the durable-submit and gateway-hop
// scenarios, and the within-run statistics it records must themselves
// be inside the gates they document.
func TestCommittedBaselineParses(t *testing.T) {
	core := []string{"cover/dag/N=50", "cover/bb/N=20", "merge/greedy/R=48",
		"engine/hit/N20", batchBenchKey, parallelBenchKey}
	for _, tc := range []struct {
		file string
		keys []string
	}{
		{"BENCH_5.json", core},
		{"BENCH_8.json", append(append([]string{}, core...),
			submitNoWALBenchKey, submitWALBenchKey, submitWALAlwaysBenchKey)},
		{"BENCH_9.json", append(append([]string{}, core...),
			submitNoWALBenchKey, submitWALBenchKey, submitWALAlwaysBenchKey,
			fwdDirectBenchKey, fwdGatewayBenchKey)},
	} {
		base, err := loadBaseline(filepath.Join("..", "..", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range tc.keys {
			e, ok := base.Benchmarks[name]
			if !ok {
				t.Errorf("%s missing %q", tc.file, name)
			} else if e.NsPerOp <= 0 {
				t.Errorf("%s %q has ns/op %v", tc.file, name, e.NsPerOp)
			}
		}
		if tc.file == "BENCH_8.json" || tc.file == "BENCH_9.json" {
			wal := base.Benchmarks[submitWALBenchKey]
			if wal.P99NsPerOp <= 0 || wal.P99OverheadPct > 100*walOverheadTolerance {
				t.Errorf("%s wal scenario outside its own gate: %+v", tc.file, wal)
			}
		}
		if tc.file == "BENCH_9.json" {
			fwd := base.Benchmarks[fwdGatewayBenchKey]
			if fwd.P99NsPerOp <= 0 || fwd.P99HopDeltaNs > gatewayHopCeilingNs {
				t.Errorf("%s gateway scenario outside its own gate: %+v", tc.file, fwd)
			}
		}
	}
}
