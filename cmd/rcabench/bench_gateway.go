// Gateway hop baseline (-exp bench, the gateway/* scenarios): what
// rcagate adds to a request compared with hitting the owning node
// directly. Two minimal node servers sit on loopback listeners; an
// in-process cluster.Gateway fronts them; the same /v1/allocate body
// is fired at a node and at the gateway in strictly alternating
// rounds, and each adjacent pair of rounds contributes one p99 DELTA
// (gateway minus direct) to the gate's median. The ceiling is
// absolute — the forwarded hop may cost at most 1ms extra at p99 —
// because the hop's price (one loopback round trip, a routing-key
// hash, header copies) does not scale with the node's own work, so a
// ratio against a near-zero denominator would gate noise.
//
// The node handlers do trivial work on purpose: any real solve time
// appears identically on both sides of every pair and would only
// dilute the statistic being gated.

package main

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"time"

	"dspaddr/internal/cluster"
)

const (
	fwdDirectBenchKey  = "gateway/direct/http4"
	fwdGatewayBenchKey = "gateway/forward/http4"
)

// gatewayHopCeilingNs is the absolute p99 ceiling on the forwarded
// hop: median paired-round (gateway p99 - direct p99) must stay under
// one millisecond.
const gatewayHopCeilingNs = 1e6

// gatewayRounds alternating round pairs; each contributes one p99
// delta to the gate's median.
const gatewayRounds = 40

// gatewayBenchBody is a fixed allocate request, so every round routes
// to the same ring owner and the comparison holds the path constant.
var gatewayBenchBody = []byte(`{"pattern":{"offsets":[1,0,2,-1,1,0,-2]},"agu":{"registers":2,"modifyRange":1}}`)

// benchNode is one minimal fleet node: healthz plus an allocate route
// that answers immediately (the hop, not the solve, is under test).
func benchNode() (*http.Server, string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/v1/allocate", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"results":[{"array":"A","offsets":[1,0,2,-1,1,0,-2],"cost":3}]}`)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // reported via requests failing
	return srv, "http://" + ln.Addr().String(), nil
}

// measureGatewayScenarios runs the interleaved direct/forwarded
// comparison and records both entries; the forwarded entry carries
// the gated median paired-round p99 delta in P99HopDeltaNs.
func measureGatewayScenarios(record func(string, benchEntry)) error {
	nodeA, urlA, err := benchNode()
	if err != nil {
		return err
	}
	defer nodeA.Close()
	nodeB, urlB, err := benchNode()
	if err != nil {
		return err
	}
	defer nodeB.Close()

	fleet, err := cluster.NewFleet([]cluster.Member{
		{Name: "a", URL: urlA},
		{Name: "b", URL: urlB},
	}, cluster.FleetOptions{ProbeInterval: time.Hour})
	if err != nil {
		return err
	}
	gw, err := cluster.New(cluster.Options{Fleet: fleet, Version: "bench"})
	if err != nil {
		return err
	}
	defer gw.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	gwSrv := &http.Server{Handler: gw.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go gwSrv.Serve(ln) //nolint:errcheck // reported via requests failing
	defer gwSrv.Close()
	gwURL := "http://" + ln.Addr().String()

	directURL := urlA + "/v1/allocate"
	forwardURL := gwURL + "/v1/allocate"

	// One warm round each (connection pools on every hop), then the
	// alternating measured pairs.
	if _, err := benchRound(directURL, gatewayBenchBody, http.StatusOK); err != nil {
		return err
	}
	if _, err := benchRound(forwardURL, gatewayBenchBody, http.StatusOK); err != nil {
		return err
	}
	var deltas []float64
	var directP99s, fwdP99s []time.Duration
	var directAll, fwdAll []time.Duration
	for r := 0; r < gatewayRounds; r++ {
		a, err := benchRound(directURL, gatewayBenchBody, http.StatusOK)
		if err != nil {
			return err
		}
		b, err := benchRound(forwardURL, gatewayBenchBody, http.StatusOK)
		if err != nil {
			return err
		}
		pa, pb := p99(a), p99(b)
		directP99s, fwdP99s = append(directP99s, pa), append(fwdP99s, pb)
		directAll, fwdAll = append(directAll, a...), append(fwdAll, b...)
		deltas = append(deltas, float64(pb-pa))
	}
	sort.Float64s(deltas)
	record(fwdDirectBenchKey, submitEntry(directP99s, directAll))
	fwdEntry := submitEntry(fwdP99s, fwdAll)
	fwdEntry.P99HopDeltaNs = deltas[len(deltas)/2]
	record(fwdGatewayBenchKey, fwdEntry)
	return nil
}
