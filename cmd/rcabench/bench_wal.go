// Durable-submit baseline (-exp bench, the jobs/submit-* scenarios):
// the cost of the write-ahead log on the async submit path, measured
// where users feel it — a loopback HTTP submit route over
// jobs.Manager, hit by concurrent clients — rather than as a raw
// in-memory SubmitAll, whose sub-microsecond denominator would make
// any durable write look like a multiple instead of a tax.
//
// Tail latency at millisecond scale is scheduler- and GC-noise
// dominated, so the gate statistic is built to cancel environment
// drift twice over: the no-WAL and WAL servers run simultaneously and
// are measured in strictly alternating rounds, each adjacent pair of
// rounds yields one p99 ratio, and the gate takes the MEDIAN of those
// per-pair ratios. A stall that fattens one round's tail lands inside
// its own pair; a drifting machine moves both sides of every pair.
// Pooled p99s across the whole run — one bad burst away from a 50%
// swing — are recorded for the trajectory but deliberately not gated.
//
// The gated pair keeps its WAL on RAM-backed storage (/dev/shm when
// present): a regression gate guards the implementation's CPU,
// allocation and syscall cost, not the benchmark device's writeback
// tails. The fsync=always scenario runs on the real temp filesystem
// and is recorded ungated — an fsync per submit costs whatever the
// disk charges, which is a policy choice, not a code property.

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"dspaddr/internal/jobs"
	"dspaddr/internal/wal"
)

const (
	submitNoWALBenchKey     = "jobs/submit-nowal/http4"
	submitWALBenchKey       = "jobs/submit-wal/http4"
	submitWALAlwaysBenchKey = "jobs/submit-wal-always/http4"
)

// walOverheadTolerance bounds the durable (fsync=interval) submit p99
// against the in-memory submit p99, as the median of paired
// interleaved-round ratios from the same run.
const walOverheadTolerance = 0.15

const (
	// submitClients concurrent request loops per server (the /http4 in
	// the scenario keys).
	submitClients = 4
	// submitPerRound requests each client fires per measurement round.
	submitPerRound = 50
	// submitRounds alternating round pairs; each pair contributes one
	// p99 ratio to the gate's median.
	submitRounds = 60
	// submitAlwaysRounds for the informational fsync=always scenario,
	// kept short because every request pays a real fsync.
	submitAlwaysRounds = 4
)

// submitBenchBody is the request every client posts: a realistic
// pattern-shaped payload so the WAL'd side serializes real bytes.
var submitBenchBody = []byte(`{"payload": {"pattern": {"offsets": [1, 0, 2, -1, 1, 0, -2]}, "agu": {"registers": 2, "modifyRange": 1}}, "priority": 3}`)

// submitServer is one side of the comparison: a jobs.Manager with a
// no-op runner behind a minimal replica of rcaserve's submit route on
// a loopback listener.
type submitServer struct {
	mgr *jobs.Manager
	srv *http.Server
	url string
}

// newSubmitServer builds and starts one side. dir == "" means no WAL.
func newSubmitServer(dir string, policy wal.FsyncPolicy) (*submitServer, error) {
	opts := jobs.Options{
		QueueCapacity: 1 << 15,
		StoreCapacity: 1 << 15,
		Runners:       2,
		Run:           func(context.Context, any) (any, error) { return nil, nil },
	}
	if dir != "" {
		wlog, _, err := wal.Open(dir, wal.Options{Fsync: policy})
		if err != nil {
			return nil, err
		}
		opts.WAL = wlog
		opts.EncodePayload = func(v any) ([]byte, error) { return json.Marshal(v) }
		opts.DecodePayload = func(b []byte) (any, error) { return json.RawMessage(b), nil }
		opts.EncodeResult = func(v any) ([]byte, error) { return json.Marshal(v) }
		opts.DecodeResult = func(b []byte) (any, error) { return json.RawMessage(b), nil }
	}
	m := jobs.New(opts)

	type submitReq struct {
		Payload  json.RawMessage `json:"payload"`
		Priority int             `json:"priority"`
	}
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var in submitReq
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ids, err := m.SubmitAll([]any{in.Payload}, in.Priority)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(struct { //nolint:errcheck // loopback
			ID string `json:"id"`
		}{ids[0]})
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		m.Close()
		return nil, err
	}
	s := &submitServer{
		mgr: m,
		srv: &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second},
		url: "http://" + ln.Addr().String(),
	}
	go s.srv.Serve(ln) //nolint:errcheck // reported via requests failing
	return s, nil
}

func (s *submitServer) close() {
	s.srv.Close()
	s.mgr.Close()
}

// submitRound fires submitPerRound requests from submitClients
// concurrent loops and returns every request's latency.
func submitRound(url string) ([]time.Duration, error) {
	return benchRound(url, submitBenchBody, http.StatusAccepted)
}

// benchRound is the shared measured round: submitPerRound POSTs from
// submitClients concurrent loops, every request's latency returned.
func benchRound(url string, body []byte, wantStatus int) ([]time.Duration, error) {
	var mu sync.Mutex
	var durs []time.Duration
	var firstErr error
	var wg sync.WaitGroup
	for c := 0; c < submitClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			local := make([]time.Duration, 0, submitPerRound)
			for i := 0; i < submitPerRound; i++ {
				start := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err == nil {
					_, err = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if err == nil && resp.StatusCode != wantStatus {
						err = fmt.Errorf("status %d, want %d", resp.StatusCode, wantStatus)
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(start))
			}
			mu.Lock()
			durs = append(durs, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return durs, firstErr
}

// p99 returns the 99th-percentile sample; durs is sorted in place.
func p99(durs []time.Duration) time.Duration {
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[len(durs)*99/100]
}

// submitEntry folds one side's samples into a benchEntry: NsPerOp the
// overall mean, P99NsPerOp the median of the per-round p99s (a level
// estimate robust to single-round stalls, matching the gate's pairing
// logic).
func submitEntry(roundP99s []time.Duration, all []time.Duration) benchEntry {
	var total time.Duration
	for _, d := range all {
		total += d
	}
	sorted := append([]time.Duration(nil), roundP99s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return benchEntry{
		NsPerOp:    float64(total.Nanoseconds()) / float64(len(all)),
		P99NsPerOp: float64(sorted[len(sorted)/2].Nanoseconds()),
	}
}

// walBenchDir picks where the gated scenarios keep their log:
// RAM-backed when the host has /dev/shm, the regular temp dir
// otherwise (see the file comment for why).
func walBenchDir() (string, error) {
	parent := ""
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		parent = "/dev/shm"
	}
	return os.MkdirTemp(parent, "rcabench-wal-*")
}

// measureSubmitScenarios runs the interleaved no-WAL/WAL comparison
// plus the informational fsync=always pass and records the three
// entries; the gated WAL entry carries the median paired-round p99
// overhead in P99OverheadPct.
func measureSubmitScenarios(record func(string, benchEntry)) error {
	noSrv, err := newSubmitServer("", 0)
	if err != nil {
		return err
	}
	defer noSrv.close()
	dir, err := walBenchDir()
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	walSrv, err := newSubmitServer(dir, wal.FsyncInterval)
	if err != nil {
		return err
	}
	defer walSrv.close()

	// One warm round each (connection pools, allocator, JIT-warm
	// inlining of the route), then the alternating measured pairs.
	if _, err := submitRound(noSrv.url); err != nil {
		return err
	}
	if _, err := submitRound(walSrv.url); err != nil {
		return err
	}
	var ratios []float64
	var noP99s, walP99s []time.Duration
	var noAll, walAll []time.Duration
	for r := 0; r < submitRounds; r++ {
		a, err := submitRound(noSrv.url)
		if err != nil {
			return err
		}
		b, err := submitRound(walSrv.url)
		if err != nil {
			return err
		}
		pa, pb := p99(a), p99(b)
		noP99s, walP99s = append(noP99s, pa), append(walP99s, pb)
		noAll, walAll = append(noAll, a...), append(walAll, b...)
		ratios = append(ratios, float64(pb)/float64(pa))
	}
	sort.Float64s(ratios)
	record(submitNoWALBenchKey, submitEntry(noP99s, noAll))
	walEntry := submitEntry(walP99s, walAll)
	walEntry.P99OverheadPct = (ratios[len(ratios)/2] - 1) * 100
	record(submitWALBenchKey, walEntry)

	// fsync=always, on the real temp filesystem, ungated.
	alwaysDir, err := os.MkdirTemp("", "rcabench-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(alwaysDir)
	alwaysSrv, err := newSubmitServer(alwaysDir, wal.FsyncAlways)
	if err != nil {
		return err
	}
	defer alwaysSrv.close()
	var aP99s, aAll []time.Duration
	for r := 0; r < submitAlwaysRounds; r++ {
		a, err := submitRound(alwaysSrv.url)
		if err != nil {
			return err
		}
		aP99s, aAll = append(aP99s, p99(a)), append(aAll, a...)
	}
	record(submitWALAlwaysBenchKey, submitEntry(aP99s, aAll))
	return nil
}
