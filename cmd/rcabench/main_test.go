package main

import (
	"strings"
	"testing"
)

func runToString(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestEachExperimentRuns(t *testing.T) {
	wants := map[string]string{
		"e1": "Figure 1",
		"e2": "grand average reduction",
		"e3": "DSP kernels",
		"a1": "bound quality",
		"a2": "merge strategies",
		"a3": "inter-iteration modelling",
		"a4": "scalar offset assignment",
		"a5": "index-register extension",
		"a6": "modulo addressing",
	}
	for exp, want := range wants {
		out, err := runToString(t, "-exp", exp, "-trials", "3")
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("%s output missing %q:\n%s", exp, want, out)
		}
	}
}

func TestAllRunsEverything(t *testing.T) {
	out, err := runToString(t, "-exp", "all", "-trials", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "grand average", "DSP kernels", "A1", "A2", "A3", "A4", "A5", "A6"} {
		if !strings.Contains(out, want) {
			t.Errorf("all output missing %q", want)
		}
	}
}

func TestMarkdownMode(t *testing.T) {
	out, err := runToString(t, "-exp", "e3", "-md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "| kernel |") {
		t.Errorf("markdown table missing:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := runToString(t, "-exp", "e9"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestE2DistributionFlag(t *testing.T) {
	for _, dist := range []string{"uniform", "clustered", "walk"} {
		if _, err := runToString(t, "-exp", "e2", "-trials", "2", "-dist", dist); err != nil {
			t.Errorf("dist %s: %v", dist, err)
		}
	}
	if _, err := runToString(t, "-exp", "e2", "-dist", "bogus"); err == nil {
		t.Error("unknown distribution accepted")
	}
}
