// Machine-readable performance baseline (-exp bench): measures the
// allocator hot paths with testing.Benchmark and emits a JSON document
// (BENCH_5.json at the repo root is the committed baseline) so future
// changes have a recorded trajectory to beat. With -bench-against the
// fresh numbers are compared to a committed baseline and the run fails
// when a gated scenario — the end-to-end cold batch or the warm
// parallel engine path — regresses beyond the tolerance: the CI
// regression gate.
//
// The bench mode is deliberately not part of "-exp all": it spends
// several seconds of wall-clock measurement, which the paper tables do
// not need.

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/engine"
	"dspaddr/internal/merge"
	"dspaddr/internal/model"
	"dspaddr/internal/obs"
	"dspaddr/internal/pathcover"
	"dspaddr/internal/workload"
)

// benchSchema versions the baseline file format.
const benchSchema = 1

// batchBenchKey and parallelBenchKey are the entries the regression
// gate checks: the end-to-end cold-cache batch throughput of the
// serving engine, and the warm hit-dominated parallel path across the
// sharded cache. batchObsBenchKey is the same cold batch run under a
// per-request trace with the solve histogram attached — the
// instrumented request path.
const (
	batchBenchKey    = "engine/batch/64xN20"
	parallelBenchKey = "engine/parallel/8x64xN20"
	batchObsBenchKey = "engine/batch-obs/64xN20"
)

// gatedBenchKeys lists every scenario -bench-against fails on.
var gatedBenchKeys = []string{batchBenchKey, parallelBenchKey, batchObsBenchKey}

// regressionTolerance is how much slower (fractionally) a gated
// benchmark may get before -bench-against fails the run.
const regressionTolerance = 0.25

// obsOverheadTolerance bounds the instrumented batch against the
// SAME run's untraced batch (a within-run ratio, so machine speed
// cancels out): tracing every phase of 64 jobs may cost at most this
// fraction extra.
const obsOverheadTolerance = 0.10

// allocSlack is how many allocs/op the untraced batch may drift above
// the committed baseline before the gate fails — the "observability
// hooks disabled = zero extra allocations" guarantee, with a little
// room for scheduler-dependent map growth.
const allocSlack = 8

// benchEntry is one benchmark's measured costs. P99NsPerOp is only
// populated by the hand-timed jobs/submit-* scenarios (bench_wal.go);
// testing.Benchmark reports means only. P99OverheadPct appears on the
// gated WAL scenario alone: the median paired-round p99 overhead
// against the no-WAL twin from the same run, which is the statistic
// the durability gate enforces.
type benchEntry struct {
	NsPerOp        float64 `json:"nsPerOp"`
	AllocsPerOp    int64   `json:"allocsPerOp"`
	BytesPerOp     int64   `json:"bytesPerOp"`
	P99NsPerOp     float64 `json:"p99NsPerOp,omitempty"`
	P99OverheadPct float64 `json:"p99OverheadPct,omitempty"`
	// P99HopDeltaNs appears on the gated gateway/forward scenario
	// alone: the median paired-round p99 delta (forwarded minus
	// direct, nanoseconds) the cluster-hop gate enforces
	// (bench_gateway.go).
	P99HopDeltaNs float64 `json:"p99HopDeltaNs,omitempty"`
}

// benchBaseline is the BENCH_*.json document.
type benchBaseline struct {
	Schema     int                   `json:"schema"`
	GoVersion  string                `json:"goVersion"`
	GOOS       string                `json:"goos"`
	GOARCH     string                `json:"goarch"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

// wideMergeInput builds the ~48-singleton-path phase-2 workload of
// BenchmarkGreedyMergeLarge (workload.WideMergePattern, shared with
// the in-package benchmarks so every surface measures the same
// input).
func wideMergeInput() ([]model.Path, model.Pattern, error) {
	pat := workload.WideMergePattern()
	dg, err := distgraph.Build(pat, 1)
	if err != nil {
		return nil, model.Pattern{}, err
	}
	return pathcover.MinCoverDAG(dg), pat, nil
}

// measureBaseline runs every baseline benchmark and collects the
// results. Each case takes ~1s of measurement (testing.Benchmark's
// default budget).
func measureBaseline() (benchBaseline, error) {
	base := benchBaseline{
		Schema:     benchSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]benchEntry{},
	}

	record := func(name string, r testing.BenchmarkResult) {
		base.Benchmarks[name] = benchEntry{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	// Phase 1, intra-iteration objective: polynomial matching cover.
	dagPat := workload.BenchPattern(rand.New(rand.NewSource(50)), 50)
	dagGraph, err := distgraph.Build(dagPat, 1)
	if err != nil {
		return base, err
	}
	record("cover/dag/N=50", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pathcover.MinCoverDAG(dagGraph)
		}
	}))

	// Phase 1, wrap objective: branch-and-bound search.
	bbPat := workload.BenchPattern(rand.New(rand.NewSource(20)), 20)
	bbGraph, err := distgraph.Build(bbPat, 1)
	if err != nil {
		return base, err
	}
	record("cover/bb/N=20", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pathcover.MinCover(bbGraph, true, nil)
		}
	}))

	// Phase 2: incremental greedy merge of ~48 paths down to 4.
	mergePaths, mergePat, err := wideMergeInput()
	if err != nil {
		return base, err
	}
	record("merge/greedy/R=48", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := merge.Reduce(merge.Greedy{}, mergePaths, mergePat, 1, false, 4); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// End to end: a 64-job batch of distinct patterns through the
	// worker pool, cache disabled so every job solves.
	rng := rand.New(rand.NewSource(11))
	jobs := make([]engine.Request, 64)
	for i := range jobs {
		jobs[i] = engine.Request{
			Pattern: workload.BenchPattern(rng, 20),
			AGU:     model.AGUSpec{Registers: 2, ModifyRange: 1},
		}
	}
	eng := engine.New(engine.Options{Workers: 8, CacheSize: -1})
	defer eng.Close()
	record(batchBenchKey, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, res := range eng.RunBatch(context.Background(), jobs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	}))

	// The same cold batch with full observability on: every iteration
	// runs under a request trace (phase spans record throughout the
	// engine and solver) and the solve histogram observes each miss.
	// compareBaselines holds this within obsOverheadTolerance of the
	// untraced batch above.
	obsEng := engine.New(engine.Options{
		Workers:   8,
		CacheSize: -1,
		SolveHist: obs.NewHistogram("bench_solve_seconds", "bench-only sink", nil),
	})
	defer obsEng.Close()
	record(batchObsBenchKey, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := obs.NewTrace("bench")
			ctx := obs.NewContext(context.Background(), tr)
			for _, res := range obsEng.RunBatch(ctx, jobs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
			tr.Release()
		}
	}))

	// Hit path: one request served from the warm canonical cache —
	// key build, one shard-local lookup and the result rewrite.
	warm := engine.New(engine.Options{Workers: 8})
	defer warm.Close()
	if res := warm.Run(context.Background(), jobs[0]); res.Err != nil {
		return base, res.Err
	}
	record("engine/hit/N20", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := warm.Run(context.Background(), jobs[0])
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if !res.CacheHit {
				b.Fatal("expected a cache hit")
			}
		}
	}))

	// Parallel engine: 8 goroutines push the full 64-pattern batch
	// through the pool concurrently, hit-dominated after warmup. This
	// is the scenario that serialized on the old single cache mutex;
	// it is gated alongside the cold batch.
	par := engine.New(engine.Options{Workers: 8})
	defer par.Close()
	for _, res := range par.RunBatch(context.Background(), jobs) {
		if res.Err != nil {
			return base, res.Err
		}
	}
	record(parallelBenchKey, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for _, res := range par.RunBatch(context.Background(), jobs) {
						if res.Err != nil {
							b.Error(res.Err)
							return
						}
					}
				}()
			}
			wg.Wait()
		}
	}))

	// Async admission with and without the write-ahead log — the
	// durability tax on the submit path, gated at p99 (bench_wal.go).
	if err := measureSubmitScenarios(func(name string, e benchEntry) {
		base.Benchmarks[name] = e
	}); err != nil {
		return base, err
	}

	// The cluster gateway hop against a direct node hit — the fleet
	// tax on the request path, gated at an absolute p99 delta
	// (bench_gateway.go).
	if err := measureGatewayScenarios(func(name string, e benchEntry) {
		base.Benchmarks[name] = e
	}); err != nil {
		return base, err
	}

	return base, nil
}

// renderBaseline prints the baseline as an aligned text table.
func renderBaseline(out io.Writer, base benchBaseline) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "baseline (%s %s/%s)\n", base.GoVersion, base.GOOS, base.GOARCH)
	for _, name := range names {
		e := base.Benchmarks[name]
		fmt.Fprintf(out, "  %-26s %14.0f ns/op %8d allocs/op %10d B/op",
			name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
		if e.P99NsPerOp > 0 {
			fmt.Fprintf(out, " %14.0f p99 ns/op", e.P99NsPerOp)
		}
		if e.P99OverheadPct != 0 {
			fmt.Fprintf(out, " %+6.1f%% p99 paired", e.P99OverheadPct)
		}
		if e.P99HopDeltaNs != 0 {
			fmt.Fprintf(out, " %+9.0f ns p99 hop", e.P99HopDeltaNs)
		}
		fmt.Fprintln(out)
	}
}

// loadBaseline reads a committed BENCH_*.json.
func loadBaseline(path string) (benchBaseline, error) {
	var base benchBaseline
	data, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return base, fmt.Errorf("parse %s: %w", path, err)
	}
	if base.Schema != benchSchema {
		return base, fmt.Errorf("%s: schema %d, this binary speaks %d", path, base.Schema, benchSchema)
	}
	return base, nil
}

// compareBaselines reports per-benchmark deltas and fails when any
// gated benchmark regressed beyond the tolerance.
func compareBaselines(out io.Writer, fresh, committed benchBaseline) error {
	names := make([]string, 0, len(fresh.Benchmarks))
	for name := range fresh.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got := fresh.Benchmarks[name]
		was, ok := committed.Benchmarks[name]
		if !ok || was.NsPerOp <= 0 {
			fmt.Fprintf(out, "  %-24s %14.0f ns/op (no committed baseline)\n", name, got.NsPerOp)
			continue
		}
		fmt.Fprintf(out, "  %-24s %14.0f ns/op vs %14.0f committed (%+.1f%%)\n",
			name, got.NsPerOp, was.NsPerOp, 100*(got.NsPerOp-was.NsPerOp)/was.NsPerOp)
	}
	for _, key := range gatedBenchKeys {
		got, ok := fresh.Benchmarks[key]
		was, wasOK := committed.Benchmarks[key]
		if !ok || !wasOK || was.NsPerOp <= 0 {
			return fmt.Errorf("baseline gate: %q missing from fresh or committed baseline", key)
		}
		if got.NsPerOp > was.NsPerOp*(1+regressionTolerance) {
			return fmt.Errorf("baseline gate: %s regressed %.1f%% (%.0f -> %.0f ns/op, tolerance %.0f%%)",
				key, 100*(got.NsPerOp-was.NsPerOp)/was.NsPerOp,
				was.NsPerOp, got.NsPerOp, 100*regressionTolerance)
		}
	}

	// Instrumented-path overhead: traced vs untraced batch within the
	// SAME fresh run, so the bound is machine-independent.
	plain, obsRun := fresh.Benchmarks[batchBenchKey], fresh.Benchmarks[batchObsBenchKey]
	if plain.NsPerOp > 0 && obsRun.NsPerOp > 0 {
		overhead := (obsRun.NsPerOp - plain.NsPerOp) / plain.NsPerOp
		fmt.Fprintf(out, "  tracing overhead: %+.1f%% (%s vs %s, tolerance %.0f%%)\n",
			100*overhead, batchObsBenchKey, batchBenchKey, 100*obsOverheadTolerance)
		if overhead > obsOverheadTolerance {
			return fmt.Errorf("baseline gate: tracing overhead %.1f%% exceeds %.0f%% (%s %.0f ns/op vs %s %.0f ns/op)",
				100*overhead, 100*obsOverheadTolerance,
				batchObsBenchKey, obsRun.NsPerOp, batchBenchKey, plain.NsPerOp)
		}
	}

	// Untraced path must not pick up allocations from the hooks.
	if was, ok := committed.Benchmarks[batchBenchKey]; ok && was.AllocsPerOp > 0 {
		if plain.AllocsPerOp > was.AllocsPerOp+allocSlack {
			return fmt.Errorf("baseline gate: %s allocates %d/op vs committed %d/op — the disabled-hook path must stay allocation-free",
				batchBenchKey, plain.AllocsPerOp, was.AllocsPerOp)
		}
	}

	// Durability tax: the WAL'd submit path (production fsync=interval
	// policy) against the same fresh run's in-memory submit path, at
	// the 99th percentile. The statistic is the median of paired
	// interleaved-round p99 ratios computed by measureSubmitScenarios —
	// a within-run ratio, so disk and CPU speed cancel out, and a
	// paired one, so environment drift mid-run cancels too.
	if durable, ok := fresh.Benchmarks[submitWALBenchKey]; ok && durable.P99NsPerOp > 0 {
		fmt.Fprintf(out, "  wal submit p99 overhead: %+.1f%% (median paired-round ratio, %s vs %s, tolerance %.0f%%)\n",
			durable.P99OverheadPct, submitWALBenchKey, submitNoWALBenchKey, 100*walOverheadTolerance)
		if durable.P99OverheadPct > 100*walOverheadTolerance {
			return fmt.Errorf("baseline gate: wal submit p99 overhead %+.1f%% exceeds %.0f%% — fsync=interval durability must stay within %.0f%% of the in-memory submit path",
				durable.P99OverheadPct, 100*walOverheadTolerance, 100*walOverheadTolerance)
		}
	}

	// Fleet tax: the gateway hop against the same fresh run's direct
	// node hit, gated as an ABSOLUTE median paired-round p99 delta —
	// the hop's price does not scale with solve time, so a fixed
	// ceiling is the honest bound (bench_gateway.go).
	if fwd, ok := fresh.Benchmarks[fwdGatewayBenchKey]; ok && fwd.P99NsPerOp > 0 {
		fmt.Fprintf(out, "  gateway hop p99 delta: %+.0f ns (median paired-round, %s vs %s, ceiling %.0f ns)\n",
			fwd.P99HopDeltaNs, fwdGatewayBenchKey, fwdDirectBenchKey, gatewayHopCeilingNs)
		if fwd.P99HopDeltaNs > gatewayHopCeilingNs {
			return fmt.Errorf("baseline gate: gateway hop p99 delta %.0f ns exceeds %.0f ns — the forwarded hop must stay within 1ms of a direct node hit",
				fwd.P99HopDeltaNs, gatewayHopCeilingNs)
		}
	}
	return nil
}

// runBench is the -exp bench entry point: measure, optionally persist
// to -bench-out, optionally gate against -bench-against.
func runBench(out io.Writer, outPath, againstPath string) error {
	base, err := measureBaseline()
	if err != nil {
		return err
	}
	renderBaseline(out, base)
	if outPath != "" {
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "baseline written to %s\n", outPath)
	}
	if againstPath != "" {
		committed, err := loadBaseline(againstPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "against %s:\n", againstPath)
		if err := compareBaselines(out, base, committed); err != nil {
			return err
		}
		fmt.Fprintln(out, "baseline gate passed")
	}
	return nil
}
