package main

import (
	"strings"
	"testing"
	"time"

	"dspaddr/internal/workload"
)

func TestParseScenario(t *testing.T) {
	text := `
# a comment
phase warmup 5s rate=40 mix=sync:3,async:5
phase overload 10s rate=120 mix=async:2,burst:3 fresh=1000 faults=delay=60ms
restart
phase chaos 20s rate=60 mix=sync:3,async:4,cancel:2,bign:1 restart
kill
phase crash 5s rate=30 mix=async:5 kill
`
	sc, err := parseScenario("t", text)
	if err != nil {
		t.Fatal(err)
	}
	phases := sc.phases()
	if len(phases) != 4 || len(sc.Steps) != 6 {
		t.Fatalf("parsed %d phases / %d steps", len(phases), len(sc.Steps))
	}
	if phases[0].Name != "warmup" || phases[0].Duration != 5*time.Second || phases[0].Rate != 40 {
		t.Fatalf("warmup parsed as %+v", phases[0])
	}
	if phases[1].FreshPermil != 1000 || phases[1].Faults != "delay=60ms" {
		t.Fatalf("overload parsed as %+v", phases[1])
	}
	if !phases[2].RestartMid {
		t.Fatal("chaos restart flag lost")
	}
	if phases[2].KillMid || !phases[3].KillMid {
		t.Fatalf("kill flags wrong: chaos %v crash %v", phases[2].KillMid, phases[3].KillMid)
	}
	if got := sc.totalDuration(); got != 40*time.Second {
		t.Fatalf("total duration %v", got)
	}

	exp := sc.expect()
	if !exp.Expect429 {
		t.Error("burst weight present but Expect429 false")
	}
	if exp.Restarts != 2 {
		t.Errorf("restarts %d, want 2 (one standalone + one mid-phase)", exp.Restarts)
	}
	if exp.Kills != 2 {
		t.Errorf("kills %d, want 2 (one standalone + one mid-phase)", exp.Kills)
	}
	want := map[workload.OpKind]bool{
		workload.OpSync: true, workload.OpAsync: true, workload.OpAsyncBurst: true,
		workload.OpCancel: true, workload.OpBigN: true,
	}
	if len(exp.Classes) != len(want) {
		t.Fatalf("expected classes %v", exp.Classes)
	}
	for _, c := range exp.Classes {
		if !want[c] {
			t.Errorf("unexpected class %s", c)
		}
	}
}

func TestParseScenarioCluster(t *testing.T) {
	text := `
cluster 3
phase warmup 5s rate=40 mix=sync:3,async:5
phase chaos 10s rate=60 mix=sync:2,async:5,cancel:1 killnode
phase degraded 10s rate=60 mix=sync:3,async:4
`
	sc, err := parseScenario("c", text)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cluster != 3 {
		t.Fatalf("cluster size %d, want 3", sc.Cluster)
	}
	phases := sc.phases()
	if !phases[1].KillNodeMid || phases[0].KillNodeMid {
		t.Fatalf("killnode flags wrong: %+v", phases)
	}
	if exp := sc.expect(); exp.NodeKills != 1 {
		t.Fatalf("expectations %+v, want 1 node kill", exp)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	for _, bad := range []string{
		"",                                                           // no phases
		"restart",                                                    // restarts only
		"phase p 5s mix=sync:1",                                      // missing rate
		"phase p 5s rate=10",                                         // missing mix
		"phase p 0s rate=10 mix=sync:1",                              // zero duration
		"phase p 5s rate=10 mix=warp:1",                              // bad mix class
		"phase p 5s rate=10 mix=sync:1 x=1",                          // unknown option
		"phase p 5s rate=10 mix=sync:1 junk",                         // non-option token
		"phase p 5s rate=10 mix=sync:1 faults=zzz=1",                 // bad faults spec
		"teleport now",                                               // unknown directive
		"restart please",                                             // restart with args
		"kill -9",                                                    // kill with args
		"phase p 5s rate=10 mix=sync:1 fresh=2000",                   // permil out of range
		"phase p 5s rate=10 mix=sync:1 restart kill",                 // midpoint conflict
		"cluster 1\nphase p 5s rate=10 mix=sync:1",                   // fleet of one
		"cluster 99\nphase p 5s rate=10 mix=sync:1",                  // fleet too large
		"cluster",                                                    // missing node count
		"phase p 5s rate=10 mix=sync:1 killnode",                     // killnode without a cluster
		"cluster 2\nrestart\nphase p 5s rate=10 mix=sync:1",          // restart is single-server
		"cluster 2\nphase p 5s rate=10 mix=sync:1 kill",              // kill is single-server
		"phase p 5s rate=10 mix=sync:1 kill killnode",                // midpoint conflict
		"phase p 5s rate=10 mix=sync:1 grayslow",                     // grayslow without a cluster
		"cluster 2\nphase p 5s rate=10 mix=sync:1 killnode grayslow", // midpoint conflict
		"cluster 2\nphase a 5s rate=10 mix=async:1 killnode\nphase b 5s rate=10 mix=async:1 killnode", // would empty the fleet
	} {
		if _, err := parseScenario("bad", bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestBuiltinMixedScales(t *testing.T) {
	sc := builtinMixed(60 * time.Second)
	if len(sc.phases()) != 5 {
		t.Fatalf("builtin has %d phases", len(sc.phases()))
	}
	total := sc.totalDuration()
	if total < 55*time.Second || total > 65*time.Second {
		t.Fatalf("builtin at 60s scales to %v", total)
	}
	exp := sc.expect()
	if !exp.Expect429 || exp.Restarts != 1 {
		t.Fatalf("builtin expectations %+v", exp)
	}
	// The overload wave must defeat the cache (all-fresh traffic) and
	// slow the solver, or the 429 coverage obligation is unmeetable.
	var overload *phaseSpec
	for _, p := range sc.phases() {
		if p.Name == "overload" {
			overload = p
		}
	}
	if overload == nil || overload.FreshPermil != 1000 || overload.Faults == "" {
		t.Fatalf("overload phase not cache-defeating: %+v", overload)
	}

	// Very short totals must not degenerate below 1s phases.
	for _, p := range builtinMixed(3 * time.Second).phases() {
		if p.Duration < time.Second {
			t.Fatalf("phase %s shrank to %v", p.Name, p.Duration)
		}
	}
}

// TestBuiltinCrash pins the durability scenario's shape: three
// mid-phase SIGKILLs, no SIGTERM restarts, no burst weight (a replay
// wave makes 429 timing non-deterministic), and every kill landing in
// an async-carrying phase so there is state to lose.
func TestBuiltinCrash(t *testing.T) {
	sc := builtinCrash(60 * time.Second)
	total := sc.totalDuration()
	if total < 55*time.Second || total > 65*time.Second {
		t.Fatalf("crash at 60s scales to %v", total)
	}
	exp := sc.expect()
	if exp.Kills != 3 || exp.Restarts != 0 {
		t.Fatalf("crash expectations %+v, want 3 kills and no restarts", exp)
	}
	if exp.Expect429 {
		t.Fatal("crash scenario must not owe the oracle a 429")
	}
	for _, p := range sc.phases() {
		if p.KillMid && p.Mix.Async == 0 {
			t.Errorf("phase %s kills without async load in flight", p.Name)
		}
	}
	for _, p := range builtinCrash(3 * time.Second).phases() {
		if p.Duration < time.Second {
			t.Fatalf("phase %s shrank to %v", p.Name, p.Duration)
		}
	}
}

// TestBuiltinCluster pins the fleet scenario's shape: three nodes, one
// killnode landing in an async-carrying phase (so the dead node owns
// in-flight jobs), and load continuing after the kill so the oracle's
// keeps-serving check has material.
func TestBuiltinCluster(t *testing.T) {
	sc := builtinCluster(60 * time.Second)
	if sc.Cluster != 3 {
		t.Fatalf("cluster size %d, want 3", sc.Cluster)
	}
	total := sc.totalDuration()
	if total < 55*time.Second || total > 65*time.Second {
		t.Fatalf("cluster at 60s scales to %v", total)
	}
	exp := sc.expect()
	if exp.NodeKills != 1 || exp.Kills != 0 || exp.Restarts != 0 {
		t.Fatalf("cluster expectations %+v, want exactly one node kill", exp)
	}
	phases := sc.phases()
	killIdx := -1
	for i, p := range phases {
		if p.KillNodeMid {
			killIdx = i
			if p.Mix.Async == 0 {
				t.Errorf("phase %s kills a node without async load in flight", p.Name)
			}
		}
	}
	if killIdx < 0 || killIdx == len(phases)-1 {
		t.Fatalf("node kill at phase %d of %d: need post-kill load", killIdx, len(phases))
	}
	for _, p := range builtinCluster(3 * time.Second).phases() {
		if p.Duration < time.Second {
			t.Fatalf("phase %s shrank to %v", p.Name, p.Duration)
		}
	}
}

// TestParseScenarioGraySlow: the grayslow midpoint token parses into
// the phase flag, requires a cluster, and counts toward expectations.
func TestParseScenarioGraySlow(t *testing.T) {
	sc, err := parseScenario("g", `
cluster 3
phase warmup 5s rate=40 mix=sync:3,async:5
phase gray 10s rate=60 mix=sync:2,async:5 grayslow
phase after 5s rate=40 mix=sync:3,async:4
`)
	if err != nil {
		t.Fatal(err)
	}
	phases := sc.phases()
	if !phases[1].GraySlowMid || phases[0].GraySlowMid || phases[2].GraySlowMid {
		t.Fatalf("grayslow flags wrong: %+v", phases)
	}
	exp := sc.expect()
	if exp.GraySlows != 1 || exp.NodeKills != 0 || exp.Kills != 0 {
		t.Fatalf("expectations %+v, want exactly one gray slow", exp)
	}
}

// TestBuiltinGrayfail pins the gray-failure scenario's shape: a fleet
// of three, exactly one grayslow window, no process deaths of any
// kind (the whole point is a node that stays alive), and load
// continuing after the fault clears so the breaker can demonstrably
// re-close under traffic.
func TestBuiltinGrayfail(t *testing.T) {
	sc := builtinGrayfail(60 * time.Second)
	if sc.Cluster != 3 {
		t.Fatalf("cluster size %d, want 3", sc.Cluster)
	}
	total := sc.totalDuration()
	if total < 55*time.Second || total > 65*time.Second {
		t.Fatalf("grayfail at 60s scales to %v", total)
	}
	exp := sc.expect()
	if exp.GraySlows != 1 || exp.Kills != 0 || exp.Restarts != 0 || exp.NodeKills != 0 {
		t.Fatalf("grayfail expectations %+v, want one gray slow and no deaths", exp)
	}
	phases := sc.phases()
	grayIdx := -1
	for i, p := range phases {
		if p.GraySlowMid {
			grayIdx = i
			if p.Mix.Async == 0 {
				t.Errorf("phase %s gray-slows without async load in flight", p.Name)
			}
		}
	}
	if grayIdx < 0 || grayIdx == len(phases)-1 {
		t.Fatalf("gray slow at phase %d of %d: need post-recovery load", grayIdx, len(phases))
	}
	for _, p := range builtinGrayfail(3 * time.Second).phases() {
		if p.Duration < time.Second {
			t.Fatalf("phase %s shrank to %v", p.Name, p.Duration)
		}
	}
}

func TestScenarioCommentsAndBlanks(t *testing.T) {
	sc, err := parseScenario("c", "\n\n# only\nphase p 1s rate=1 mix=sync:1 # trailing\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Steps) != 1 {
		t.Fatalf("steps %d", len(sc.Steps))
	}
	if strings.Contains(sc.phases()[0].Name, "#") {
		t.Fatal("comment leaked into phase name")
	}
}
