// The client driver: rcasoak re-execs itself with -driver to get an
// out-of-process load client, so the server is exercised across a real
// process and socket boundary by several independent OS processes —
// not by goroutines sharing the harness's runtime. Each driver paces a
// seeded traffic stream against the server for one phase, performs
// every op's reference solve locally with the same core allocator the
// server uses, and emits a JSON ledger on stdout for the parent's
// invariant oracle: op/outcome counts, HTTP round-trip latencies, and
// one record per async job with its observed terminal state and
// result-vs-reference verdict.
//
// Drivers are deliberately tolerant of server death: during a restart
// window requests fail with connection errors, which are counted and
// retried (polls) or abandoned (submissions) — the parent knows the
// restart windows and the oracle decides which unresolved jobs they
// excuse.

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"dspaddr/internal/core"
	"dspaddr/internal/frontend"
	"dspaddr/internal/merge"
	"dspaddr/internal/workload"
)

// refSolveTimeout bounds one local reference solve; a reference that
// cannot finish in this window (pathological large-N) is recorded as
// unchecked rather than blocking the driver.
const refSolveTimeout = 3 * time.Second

// inFlightPerDriver caps concurrent ops per driver process so a slow
// server degrades pacing instead of ballooning goroutines.
const inFlightPerDriver = 16

// driverConfig is the -driver mode configuration (parent-supplied).
type driverConfig struct {
	base        string        // server base URL
	index       int           // driver ordinal (report labeling)
	seed        int64         // traffic seed
	rate        int           // target ops/second for this driver
	mix         workload.Mix  // op class weights
	freshPermil int           // unique-pattern fraction override
	burst       int           // jobs per burst submission
	runFor      time.Duration // issuing window
	grace       time.Duration // post-window polling grace
}

// jobRecord is one async job's lifecycle as this driver observed it.
type jobRecord struct {
	ID    string `json:"id"`
	Class string `json:"class"`
	// SubmitMs and ResolveMs are unix milliseconds bracketing the
	// job's observation interval; the oracle intersects them with
	// restart windows to excuse state lost to a process replacement.
	SubmitMs  int64 `json:"submitMs"`
	ResolveMs int64 `json:"resolveMs"`
	// State is the final observation: done|failed|timeout|canceled
	// (terminal states), evicted (410: finished, result expired),
	// lost (404 or still pending at deadline — oracle decides).
	State string `json:"state"`
	// RefChecked reports that a done result was compared against the
	// local reference solve; RefOK and EchoOK are the verdicts.
	RefChecked bool   `json:"refChecked"`
	RefOK      bool   `json:"refOK"`
	EchoOK     bool   `json:"echoOK"`
	Err        string `json:"err,omitempty"`
}

// ledger is the driver's stdout document.
type ledger struct {
	Driver        int                `json:"driver"`
	Seed          int64              `json:"seed"`
	Ops           map[string]int     `json:"ops"`
	Outcomes      map[string]int     `json:"outcomes"`
	LatencyMicros map[string][]int64 `json:"latencyMicros"`
	Jobs          []jobRecord        `json:"jobs"`
	Violations    []string           `json:"violations"`
}

// refVerdict is a cached local reference solve.
type refVerdict struct {
	cost int
	ok   bool // false: reference errored or timed out — skip the check
}

type driver struct {
	cfg    driverConfig
	client *http.Client

	mu  sync.Mutex
	led ledger

	refMu sync.Mutex
	refs  map[string]refVerdict
}

// runDriver is the -driver entry point; its exit code reports harness
// errors only (invariant verdicts belong to the parent's oracle).
func runDriver(cfg driverConfig) error {
	d := &driver{
		cfg:    cfg,
		client: &http.Client{Timeout: 15 * time.Second},
		led: ledger{
			Driver:        cfg.index,
			Seed:          cfg.seed,
			Ops:           map[string]int{},
			Outcomes:      map[string]int{},
			LatencyMicros: map[string][]int64{},
			Violations:    []string{},
			Jobs:          []jobRecord{},
		},
		refs: map[string]refVerdict{},
	}
	gen := workload.NewTrafficGen(cfg.seed, workload.TrafficOptions{
		Mix:           cfg.mix,
		BurstSize:     cfg.burst,
		FreshFraction: cfg.freshPermil,
	})

	deadline := time.Now().Add(cfg.runFor)
	pollDeadline := deadline.Add(cfg.grace)
	interval := time.Second / time.Duration(maxInt(1, cfg.rate))
	sem := make(chan struct{}, inFlightPerDriver)
	var wg sync.WaitGroup
	for time.Now().Before(deadline) {
		op := gen.Next()
		sem <- struct{}{}
		wg.Add(1)
		go func(op workload.Op) {
			defer func() { <-sem; wg.Done() }()
			d.dispatch(op, pollDeadline)
		}(op)
		time.Sleep(interval)
	}
	wg.Wait()

	d.client.CloseIdleConnections()
	enc := json.NewEncoder(os.Stdout)
	return enc.Encode(&d.led)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// dispatch runs one op to completion (including async polling).
func (d *driver) dispatch(op workload.Op, pollDeadline time.Time) {
	d.count("ops", op.Kind.String())
	switch op.Kind {
	case workload.OpSync:
		d.doSync(op.Jobs[0])
	case workload.OpBatch:
		d.doBatch(op.Jobs)
	case workload.OpAsync, workload.OpBigN:
		d.doAsync(op, false, pollDeadline)
	case workload.OpAsyncBurst:
		d.doAsync(op, false, pollDeadline)
	case workload.OpCancel:
		d.doAsync(op, true, pollDeadline)
	}
}

// ---- ledger accounting (mutex-guarded; drivers are concurrent inside) ----

func (d *driver) count(table, key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch table {
	case "ops":
		d.led.Ops[key]++
	default:
		d.led.Outcomes[key]++
	}
}

func (d *driver) outcome(class, what string) { d.count("outcomes", class+"."+what) }

func (d *driver) latency(class string, elapsed time.Duration) {
	d.mu.Lock()
	d.led.LatencyMicros[class] = append(d.led.LatencyMicros[class], elapsed.Microseconds())
	d.mu.Unlock()
}

func (d *driver) violate(format string, args ...any) {
	d.mu.Lock()
	d.led.Violations = append(d.led.Violations, fmt.Sprintf(format, args...))
	d.mu.Unlock()
}

func (d *driver) record(rec jobRecord) {
	d.mu.Lock()
	d.led.Jobs = append(d.led.Jobs, rec)
	d.mu.Unlock()
}

// ---- wire types (mirror cmd/rcaserve; the server decoder is strict,
// so only fields it knows may appear) ----

type wireAGU struct {
	Registers   int `json:"registers"`
	ModifyRange int `json:"modifyRange"`
}

type wirePattern struct {
	Stride  int   `json:"stride,omitempty"`
	Offsets []int `json:"offsets"`
}

type wireJob struct {
	Pattern  *wirePattern   `json:"pattern,omitempty"`
	Loop     string         `json:"loop,omitempty"`
	Bindings map[string]int `json:"bindings,omitempty"`
	AGU      wireAGU        `json:"agu"`
	Wrap     bool           `json:"wrap,omitempty"`
	Strategy string         `json:"strategy,omitempty"`
}

type wireSubmitSingle struct {
	wireJob
	Priority int `json:"priority,omitempty"`
}

type wireSubmitBatch struct {
	Jobs     []wireJob `json:"jobs"`
	Priority int       `json:"priority,omitempty"`
}

type wireAlloc struct {
	Array   string `json:"array"`
	Offsets []int  `json:"offsets"`
	Cost    int    `json:"cost"`
}

type wireJobResp struct {
	Error   string      `json:"error"`
	Results []wireAlloc `json:"results"`
}

type wireBatchResp struct {
	Results []wireJobResp `json:"results"`
}

type wireSubmitResp struct {
	ID  string   `json:"id"`
	IDs []string `json:"ids"`
}

type wireStatus struct {
	ID     string       `json:"id"`
	State  string       `json:"state"`
	Error  string       `json:"error"`
	Result *wireJobResp `json:"result"`
}

func toWireJob(s workload.JobSpec) wireJob {
	j := wireJob{
		AGU:      wireAGU{Registers: s.AGU.Registers, ModifyRange: s.AGU.ModifyRange},
		Wrap:     s.Wrap,
		Strategy: s.Strategy,
	}
	if s.IsLoop() {
		j.Loop, j.Bindings = s.Loop, s.Bindings
	} else {
		j.Pattern = &wirePattern{Stride: s.Pattern.Stride, Offsets: s.Pattern.Offsets}
	}
	return j
}

// ---- HTTP helpers ----

// postJSON POSTs v and decodes the response body into out (ignored
// when nil or undecodable — callers branch on status first). A nil
// error with status 0 never happens; transport failures return the
// error.
func (d *driver) postJSON(url string, v any, out any) (int, time.Duration, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	resp, err := d.client.Post(url, "application/json", bytes.NewReader(body))
	elapsed := time.Since(start)
	if err != nil {
		return 0, elapsed, err
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out) //nolint:errcheck // status drives handling
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return resp.StatusCode, elapsed, nil
}

func (d *driver) getJSON(url string, out any) (int, error) {
	resp, err := d.client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out) //nolint:errcheck
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return resp.StatusCode, nil
}

func (d *driver) deleteJSON(url string, out any) (int, error) {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out) //nolint:errcheck
	}
	return resp.StatusCode, nil
}

// ---- reference solves ----

// reference computes (and caches) the local ground-truth cost for a
// spec using the same two-phase allocator the server runs.
func (d *driver) reference(s workload.JobSpec) refVerdict {
	key := s.Key()
	d.refMu.Lock()
	if v, ok := d.refs[key]; ok {
		d.refMu.Unlock()
		return v
	}
	d.refMu.Unlock()

	v := d.solveReference(s)

	d.refMu.Lock()
	d.refs[key] = v
	d.refMu.Unlock()
	return v
}

func (d *driver) solveReference(s workload.JobSpec) refVerdict {
	ctx, cancel := context.WithTimeout(context.Background(), refSolveTimeout)
	defer cancel()
	cfg := core.Config{AGU: s.AGU, InterIteration: s.Wrap, Strategy: strategyByName(s.Strategy)}
	if s.IsLoop() {
		prog, err := frontend.Parse(s.Loop, s.Bindings)
		if err != nil {
			return refVerdict{}
		}
		res, err := core.AllocateLoopContext(ctx, prog.Loop, cfg)
		if err != nil {
			return refVerdict{}
		}
		return refVerdict{cost: res.TotalCost, ok: true}
	}
	res, err := core.AllocateContext(ctx, s.Pattern, cfg)
	if err != nil {
		return refVerdict{}
	}
	return refVerdict{cost: res.Cost, ok: true}
}

// strategyByName mirrors the server's resolution (unknown = greedy;
// the generator only emits known names).
func strategyByName(name string) merge.Strategy {
	switch name {
	case "naive":
		return merge.Naive{}
	case "smallest":
		return merge.SmallestTwo{}
	case "optimal":
		return merge.Optimal{}
	default:
		return merge.Greedy{}
	}
}

// checkResults compares a successful server answer against the local
// reference: the echoed offsets must be the submitted offsets (the
// aliasing oracle — a cache or single-flight bug hands back someone
// else's pattern) and the summed cost must match the reference solve.
func (d *driver) checkResults(class string, s workload.JobSpec, results []wireAlloc) (refChecked, refOK, echoOK bool) {
	echoOK = true
	if !s.IsLoop() {
		if len(results) != 1 || !equalInts(results[0].Offsets, s.Pattern.Offsets) {
			echoOK = false
		}
	}
	ref := d.reference(s)
	if !ref.ok {
		return false, false, echoOK
	}
	total := 0
	for _, r := range results {
		total += r.Cost
	}
	return true, total == ref.cost, echoOK
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- op handlers ----

// classifyFailure decides whether a 422 is benign: injected faults
// announce themselves, and failures the reference allocator reproduces
// are the workload's fault, not the server's.
func (d *driver) classifyFailure(class string, s workload.JobSpec, msg string) {
	if strings.Contains(msg, "injected") {
		d.outcome(class, "injected")
		return
	}
	if ref := d.reference(s); ref.ok {
		d.violate("%s: server failed a job the reference solves: %s (spec %s)", class, msg, s.Key())
		d.outcome(class, "failed-divergent")
		return
	}
	d.outcome(class, "failed-benign")
}

func (d *driver) doSync(s workload.JobSpec) {
	var resp wireJobResp
	status, elapsed, err := d.postJSON(d.cfg.base+"/v1/allocate", toWireJob(s), &resp)
	if err != nil {
		d.outcome("sync", "conn")
		return
	}
	d.latency("sync", elapsed)
	switch status {
	case http.StatusOK:
		refChecked, refOK, echoOK := d.checkResults("sync", s, resp.Results)
		if !echoOK {
			d.violate("sync: response echoes foreign offsets (aliasing) for spec %s", s.Key())
		}
		if refChecked && !refOK {
			d.violate("sync: cost diverges from reference for spec %s", s.Key())
		}
		d.outcome("sync", "ok")
	case http.StatusUnprocessableEntity:
		d.classifyFailure("sync", s, resp.Error)
	case http.StatusGatewayTimeout:
		d.outcome("sync", "timeout")
	case http.StatusServiceUnavailable:
		// Draining server, or a cluster gateway with every replica for
		// the key momentarily down: capacity loss, not wrongness.
		d.outcome("sync", "unavail")
	default:
		if status >= 500 {
			d.violate("sync: /v1/allocate answered %d", status)
		}
		d.outcome("sync", fmt.Sprintf("http%d", status))
	}
}

func (d *driver) doBatch(specs []workload.JobSpec) {
	body := wireSubmitBatch{Jobs: make([]wireJob, len(specs))}
	for i, s := range specs {
		body.Jobs[i] = toWireJob(s)
	}
	var resp wireBatchResp
	status, elapsed, err := d.postJSON(d.cfg.base+"/v1/batch",
		struct {
			Jobs []wireJob `json:"jobs"`
		}{body.Jobs}, &resp)
	if err != nil {
		d.outcome("batch", "conn")
		return
	}
	d.latency("batch", elapsed)
	if status != http.StatusOK {
		if status == http.StatusServiceUnavailable {
			d.outcome("batch", "unavail")
			return
		}
		if status >= 500 {
			d.violate("batch: /v1/batch answered %d", status)
		}
		d.outcome("batch", fmt.Sprintf("http%d", status))
		return
	}
	if len(resp.Results) != len(specs) {
		d.violate("batch: %d jobs in, %d results out", len(specs), len(resp.Results))
		d.outcome("batch", "shape")
		return
	}
	for i, r := range resp.Results {
		if r.Error != "" {
			d.classifyFailure("batch", specs[i], r.Error)
			continue
		}
		refChecked, refOK, echoOK := d.checkResults("batch", specs[i], r.Results)
		if !echoOK {
			d.violate("batch: job %d echoes foreign offsets (aliasing) for spec %s", i, specs[i].Key())
		}
		if refChecked && !refOK {
			d.violate("batch: job %d cost diverges from reference for spec %s", i, specs[i].Key())
		}
	}
	d.outcome("batch", "ok")
}

// doAsync submits op.Jobs (single or burst), optionally cancels, and
// polls every accepted ID to a terminal observation.
func (d *driver) doAsync(op workload.Op, cancel bool, pollDeadline time.Time) {
	class := op.Kind.String()
	var body any
	if len(op.Jobs) == 1 {
		body = wireSubmitSingle{wireJob: toWireJob(op.Jobs[0]), Priority: op.Priority}
	} else {
		jobs := make([]wireJob, len(op.Jobs))
		for i, s := range op.Jobs {
			jobs[i] = toWireJob(s)
		}
		body = wireSubmitBatch{Jobs: jobs, Priority: op.Priority}
	}
	var resp wireSubmitResp
	submitAt := time.Now()
	status, elapsed, err := d.postJSON(d.cfg.base+"/v1/jobs", body, &resp)
	if err != nil {
		d.outcome(class, "conn")
		return
	}
	d.latency("submit", elapsed)
	switch status {
	case http.StatusAccepted:
		// fall through to polling
	case http.StatusTooManyRequests:
		d.outcome(class, "429")
		return
	case http.StatusServiceUnavailable:
		// A draining server refuses new submissions with 503 +
		// Retry-After instead of accepting work it will never run; no
		// 202 was issued, so nothing is owed. Benign during restarts.
		d.outcome(class, "draining")
		return
	default:
		if status >= 500 {
			d.violate("%s: /v1/jobs answered %d", class, status)
		}
		d.outcome(class, fmt.Sprintf("http%d", status))
		return
	}
	if len(resp.IDs) != len(op.Jobs) {
		d.violate("%s: submitted %d jobs, got %d IDs", class, len(op.Jobs), len(resp.IDs))
		d.outcome(class, "shape")
		return
	}
	d.outcome(class, "accepted")

	if cancel {
		// A deterministic short stagger races the cancel against
		// dispatch: sometimes the job is still queued, sometimes
		// running, sometimes already done (409 — fine).
		time.Sleep(time.Duration(len(resp.IDs[0])%4) * 8 * time.Millisecond)
		st, err := d.deleteJSON(d.cfg.base+"/v1/jobs/"+resp.IDs[0], nil)
		switch {
		case err != nil:
			d.outcome(class, "cancel-conn")
		case st == http.StatusOK:
			d.outcome(class, "cancel-ok")
		case st == http.StatusConflict:
			d.outcome(class, "cancel-late")
		case st == http.StatusNotFound || st == http.StatusGone:
			d.outcome(class, "cancel-gone")
		case st == http.StatusServiceUnavailable:
			// Owning node unreachable right now (cluster mark-down or
			// drain); the job simply runs to completion uncanceled.
			d.outcome(class, "cancel-unavail")
		default:
			if st >= 500 {
				d.violate("%s: DELETE answered %d", class, st)
			}
			d.outcome(class, fmt.Sprintf("cancel-http%d", st))
		}
	}

	for i, id := range resp.IDs {
		d.record(d.pollJob(id, class, op.Jobs[i], submitAt, pollDeadline))
	}
}

// pollJob polls one accepted job until a terminal observation or the
// deadline. Connection errors are retried — the server may be mid
// restart — and a 404 for an ID we hold a 202 for is recorded as lost
// (the oracle excuses it if a restart window explains it).
func (d *driver) pollJob(id, class string, s workload.JobSpec, submitAt, deadline time.Time) jobRecord {
	rec := jobRecord{ID: id, Class: class, SubmitMs: submitAt.UnixMilli()}
	interval := 25 * time.Millisecond
	for {
		if time.Now().After(deadline) {
			rec.State, rec.ResolveMs = "lost", time.Now().UnixMilli()
			rec.Err = "pending at poll deadline"
			return rec
		}
		var st wireStatus
		status, err := d.getJSON(d.cfg.base+"/v1/jobs/"+id, &st)
		now := time.Now()
		switch {
		case err != nil:
			d.outcome(class, "poll-conn")
		case status == http.StatusOK:
			switch st.State {
			case "done":
				rec.State, rec.ResolveMs = "done", now.UnixMilli()
				if st.Result != nil {
					rec.RefChecked, rec.RefOK, rec.EchoOK = d.checkResults(class, s, st.Result.Results)
				}
				return rec
			case "failed":
				rec.State, rec.ResolveMs, rec.Err = "failed", now.UnixMilli(), st.Error
				d.classifyFailure(class, s, st.Error)
				return rec
			case "timeout":
				rec.State, rec.ResolveMs = "timeout", now.UnixMilli()
				return rec
			case "canceled":
				rec.State, rec.ResolveMs, rec.Err = "canceled", now.UnixMilli(), st.Error
				return rec
			}
			// queued or running: keep polling
		case status == http.StatusGone:
			// The job finished and its result expired before we read it
			// (TTL acceleration makes this common): resolved, unverifiable.
			rec.State, rec.ResolveMs = "evicted", now.UnixMilli()
			return rec
		case status == http.StatusNotFound:
			// We hold a 202 for this ID: the server forgot it. Legal only
			// across a restart; the oracle checks.
			rec.State, rec.ResolveMs = "lost", now.UnixMilli()
			rec.Err = "404 for an accepted ID"
			return rec
		case status == http.StatusServiceUnavailable:
			// The owning node is momentarily unreachable (draining, or a
			// cluster gateway has it marked down). Keep polling: the
			// state may come back; if it never does, the deadline
			// records the job as lost and the oracle rules on it.
			d.outcome(class, "poll-unavail")
		default:
			if status >= 500 {
				d.violate("%s: poll answered %d for %s", class, status, id)
				rec.State, rec.ResolveMs = "lost", now.UnixMilli()
				rec.Err = fmt.Sprintf("poll http %d", status)
				return rec
			}
		}
		time.Sleep(interval)
		if interval < 200*time.Millisecond {
			interval += 25 * time.Millisecond
		}
	}
}
