// Command rcasoak is the soak & chaos harness for rcaserve. It builds
// the real server binary, execs it, drives an hours-compressed mixed
// workload against it from independent client driver processes
// (rcasoak re-execs itself with -driver), injects faults through the
// server's -faults hook, SIGTERMs and restarts — or SIGKILLs, when
// the scenario says kill — the server mid-load, and finally runs an
// invariant oracle over everything observed: zero lost or duplicated
// jobs, results matching local reference solves, p99 latency and RSS
// under their ceilings, no goroutine or fd leaks, and clean
// signal-initiated exits. With -wal-dir the server runs its
// write-ahead log and the oracle hardens: no loss is excused by any
// restart or kill window — every accepted job must resurface after
// replay. The verdict is a machine-readable JSON report plus the
// process exit code (0 pass, 1 invariant violations, 2 harness
// error).
//
// Usage:
//
//	rcasoak [flags]
//
// Flags:
//
//	-duration duration   total load duration for the builtin scenario (default 60s)
//	-clients int         driver processes per phase (default 8)
//	-seed int            base seed for the deterministic traffic streams (default 1)
//	-scenario string     "mixed", "crash", "cluster" or "grayfail" (builtin,
//	                     scaled to -duration) or a scenario file path
//	-report string       JSON report path (default "soak-report.json")
//	-server-bin string   prebuilt rcaserve binary (default: go build it)
//	-wal-dir string      server WAL directory: durability on, loss never excused (default off)
//	-faults string       base fault spec armed at server start (default "delay=20ms:4,error=128")
//	-queue int           server async queue capacity (default 128; small → real 429 waves)
//	-timeout duration    server per-job solve deadline (default 2s)
//	-grace duration      post-phase polling grace for async jobs (default 10s)
//	-p99 duration        per-class p99 HTTP round-trip ceiling (default 5s)
//	-rss int             server peak RSS ceiling in MiB (default 512)
//	-keep                keep the work directory (server logs) even on success
//
// Example:
//
//	go run ./cmd/rcasoak -duration 60s -clients 8 -seed 1
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dspaddr/internal/obs"
	"dspaddr/internal/workload"
)

func main() { os.Exit(realMain(os.Args[1:])) }

func realMain(args []string) int {
	fs := flag.NewFlagSet("rcasoak", flag.ContinueOnError)
	duration := fs.Duration("duration", 60*time.Second, "total load duration (builtin scenario)")
	clients := fs.Int("clients", 8, "driver processes per phase")
	seed := fs.Int64("seed", 1, "base traffic seed")
	scenarioFlag := fs.String("scenario", "mixed", `"mixed", "crash", "cluster", "grayfail" or a scenario file path`)
	reportPath := fs.String("report", "soak-report.json", "JSON report path")
	serverBin := fs.String("server-bin", "", "prebuilt rcaserve binary (default: go build)")
	walDir := fs.String("wal-dir", "",
		"server WAL directory (durability on; the oracle then excuses no lost jobs; removed on a clean pass unless it pre-existed)")
	faultsSpec := fs.String("faults", "delay=20ms:4,error=128", "base fault spec for the server")
	queueCap := fs.Int("queue", 128, "server async queue capacity")
	solveTimeout := fs.Duration("timeout", 2*time.Second, "server per-job solve deadline")
	grace := fs.Duration("grace", 10*time.Second, "post-phase async polling grace")
	p99Ceiling := fs.Duration("p99", 5*time.Second, "p99 round-trip ceiling per class")
	rssCeilingMiB := fs.Int64("rss", 512, "server peak RSS ceiling (MiB)")
	race := fs.Bool("race", false, "build the server with the race detector")
	keep := fs.Bool("keep", false, "keep the work directory on success")

	// -driver mode flags (internal; the parent passes them).
	driverMode := fs.Bool("driver", false, "run as a client driver (internal)")
	dBase := fs.String("base", "", "server base URL (driver mode)")
	dIndex := fs.Int("index", 0, "driver ordinal (driver mode)")
	dRate := fs.Int("rate", 10, "ops/second (driver mode)")
	dMix := fs.String("mix", "sync:1", "traffic mix (driver mode)")
	dFresh := fs.Int("fresh", 0, "unique-pattern permil (driver mode)")
	dBurst := fs.Int("burst", 32, "jobs per burst (driver mode)")
	dRunFor := fs.Duration("run-for", time.Second, "issuing window (driver mode)")

	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *driverMode {
		mix, err := workload.ParseMix(*dMix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rcasoak driver:", err)
			return 2
		}
		err = runDriver(driverConfig{
			base:        *dBase,
			index:       *dIndex,
			seed:        *seed,
			rate:        *dRate,
			mix:         mix,
			freshPermil: *dFresh,
			burst:       *dBurst,
			runFor:      *dRunFor,
			grace:       *grace,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rcasoak driver:", err)
			return 2
		}
		return 0
	}

	h := &harness{
		clients:    *clients,
		seed:       *seed,
		baseFaults: *faultsSpec,
		queueCap:   *queueCap,
		timeout:    *solveTimeout,
		grace:      *grace,
		keep:       *keep,
		bin:        *serverBin,
		race:       *race,
		walDir:     *walDir,
	}
	sc, err := loadScenario(*scenarioFlag, *duration)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcasoak:", err)
		return 2
	}
	rep, err := h.run(sc, *p99Ceiling, *rssCeilingMiB<<20)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcasoak:", err)
		return 2
	}
	if err := writeReport(rep, *reportPath); err != nil {
		fmt.Fprintln(os.Stderr, "rcasoak:", err)
		return 2
	}
	if !rep.Passed {
		return 1
	}
	return 0
}

// loadScenario resolves the -scenario flag.
func loadScenario(name string, total time.Duration) (*scenario, error) {
	switch name {
	case "mixed":
		return builtinMixed(total), nil
	case "crash":
		return builtinCrash(total), nil
	case "cluster":
		return builtinCluster(total), nil
	case "grayfail":
		return builtinGrayfail(total), nil
	}
	text, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return parseScenario(filepath.Base(name), string(text))
}

// harness owns the server process and the run-wide observations.
type harness struct {
	clients    int
	seed       int64
	baseFaults string
	queueCap   int
	timeout    time.Duration
	grace      time.Duration
	keep       bool
	race       bool
	// walDir, when set, is passed to every server start as -wal-dir
	// (fsync=interval); it persists across restarts AND kills — replay
	// continuity is the whole point.
	walDir        string
	walDirCreated bool

	workDir string
	bin     string
	port    int
	base    string // http://127.0.0.1:port (the gateway in cluster mode)
	client  *http.Client

	// Cluster topology (scenario.Cluster > 0): N rcaserve nodes behind
	// one rcagate gateway; drivers target the gateway. nodeProcs slots
	// go nil when killnode removes a node permanently.
	cluster   int
	gateBin   string
	nodeBases []string
	nodePorts []int

	mu         sync.Mutex
	srv        *serverProc
	nodeProcs  []*serverProc
	gateway    *serverProc
	exits      []int
	restarts   []restartWindow
	kills      []restartWindow
	nodeKills  []nodeKill
	grayEvents []grayEvent
	maxRSS     atomic.Int64

	collected  []ledger // driver ledgers across all phases
	serverLogs int      // serial for log file names
}

// serverProc is one exec'd rcaserve.
type serverProc struct {
	cmd  *exec.Cmd
	done chan struct{} // closed when Wait returns
	code int
}

// run executes the scenario end to end and returns the oracle report.
func (h *harness) run(sc *scenario, p99Ceiling time.Duration, rssCeiling int64) (rep *soakReport, err error) {
	start := time.Now()
	h.client = &http.Client{Timeout: 5 * time.Second}

	h.workDir, err = os.MkdirTemp("", "rcasoak-*")
	if err != nil {
		return nil, err
	}
	if h.walDir != "" {
		if _, statErr := os.Stat(h.walDir); os.IsNotExist(statErr) {
			h.walDirCreated = true
		}
		if err := os.MkdirAll(h.walDir, 0o755); err != nil {
			return nil, fmt.Errorf("creating WAL directory: %w", err)
		}
	}
	defer func() {
		if err == nil && rep != nil && rep.Passed && !h.keep {
			os.RemoveAll(h.workDir)
			// The WAL dir is evidence on failure (CI uploads it); on a
			// clean pass remove it if this run created it.
			if h.walDirCreated {
				os.RemoveAll(h.walDir)
			}
		} else {
			fmt.Fprintf(os.Stderr, "rcasoak: work directory kept at %s\n", h.workDir)
			if h.walDir != "" {
				fmt.Fprintf(os.Stderr, "rcasoak: WAL directory kept at %s\n", h.walDir)
			}
		}
	}()

	h.cluster = sc.Cluster
	if err := h.buildServer(); err != nil {
		return nil, err
	}
	if h.cluster > 0 {
		if err := h.buildGateway(); err != nil {
			return nil, err
		}
		if err := h.startCluster(); err != nil {
			return nil, err
		}
	} else {
		if h.port, err = pickPort(); err != nil {
			return nil, err
		}
		h.base = fmt.Sprintf("http://127.0.0.1:%d", h.port)
		if err := h.startServer(); err != nil {
			return nil, err
		}
	}
	defer h.killAll() // belt and braces; normally already exited

	// RSS sampler follows the current server process across restarts.
	samplerStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case <-t.C:
				h.sampleRSS()
			}
		}
	}()
	defer func() { close(samplerStop); samplerWG.Wait() }()

	time.Sleep(300 * time.Millisecond) // settle before the baseline
	baseline, _ := h.debugSnapshot()
	metricsBaseline, _ := h.scrapeMetrics()

	for i, st := range sc.Steps {
		switch {
		case st.Restart:
			fmt.Fprintf(os.Stderr, "rcasoak: restart (between phases)\n")
			if err := h.restartServer(); err != nil {
				return nil, err
			}
		case st.Kill:
			fmt.Fprintf(os.Stderr, "rcasoak: SIGKILL (between phases)\n")
			if err := h.crashServer(); err != nil {
				return nil, err
			}
		case st.Phase != nil:
			fmt.Fprintf(os.Stderr, "rcasoak: phase %q (%v, rate %d, mix %s)\n",
				st.Phase.Name, st.Phase.Duration, st.Phase.Rate, st.Phase.Mix)
			if err := h.runPhase(st.Phase, i); err != nil {
				return nil, err
			}
		}
	}

	// Load has stopped; settle, close our own keepalive conns and take
	// the final leak snapshot from the surviving server process.
	time.Sleep(500 * time.Millisecond)
	h.client.CloseIdleConnections()
	time.Sleep(200 * time.Millisecond)
	final, _ := h.debugSnapshot()
	stats, statsOK := h.finalStats()
	metricsFinal, metricsOK := h.scrapeMetrics()
	slowTraces, slowOK := h.scrapeSlowTraces()
	breakerTransitions, breakerStates, breakersOK := h.scrapeGatewayBreakers()

	if err := h.stopAll(); err != nil {
		return nil, err
	}

	in := oracleInput{
		scenario:           sc,
		seed:               h.seed,
		clients:            h.clients,
		elapsed:            time.Since(start),
		ledgers:            h.collected,
		restarts:           h.restarts,
		kills:              h.kills,
		clusterNodes:       h.cluster,
		nodeKills:          h.nodeKills,
		grayEvents:         h.grayEvents,
		breakerTransitions: breakerTransitions,
		breakerStates:      breakerStates,
		breakersFetched:    breakersOK,
		walEnabled:         h.walDir != "",
		serverExits:        h.exits,
		maxRSS:             h.maxRSS.Load(),
		baselineGoroutines: baseline.Goroutines,
		finalGoroutines:    final.Goroutines,
		baselineFDs:        baseline.OpenFDs,
		finalFDs:           final.OpenFDs,
		statsFetched:       statsOK,
		p99Ceiling:         p99Ceiling,
		rssCeiling:         rssCeiling,
		metricsBaseline:    metricsBaseline,
		metricsFinal:       metricsFinal,
		metricsFetched:     metricsOK,
		slowTraces:         slowTraces,
		slowTracesFetched:  slowOK,
		delayFaultsArmed:   scenarioArmsDelay(h.baseFaults, sc),
	}
	if statsOK {
		in.statsSubmitted = stats.AsyncJobs.Submitted
		in.statsTerminalPlusLive = stats.AsyncJobs.Done + stats.AsyncJobs.Failed +
			stats.AsyncJobs.TimedOut + stats.AsyncJobs.Canceled +
			uint64(stats.AsyncJobs.QueueDepth) + uint64(stats.AsyncJobs.Running)
		in.statsRecovered = stats.AsyncJobs.Recovered
	}
	return runOracle(in), nil
}

// buildServer compiles cmd/rcaserve unless a prebuilt binary was given.
func (h *harness) buildServer() error {
	if h.bin != "" {
		return nil
	}
	if prebuilt := os.Getenv("RCASOAK_SERVER_BIN"); prebuilt != "" {
		h.bin = prebuilt
		return nil
	}
	h.bin = filepath.Join(h.workDir, "rcaserve")
	buildArgs := []string{"build"}
	if h.race {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", h.bin, "dspaddr/cmd/rcaserve")
	cmd := exec.Command("go", buildArgs...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("building rcaserve: %v\n%s", err, out)
	}
	return nil
}

// buildGateway compiles cmd/rcagate for cluster scenarios.
func (h *harness) buildGateway() error {
	if prebuilt := os.Getenv("RCASOAK_GATEWAY_BIN"); prebuilt != "" {
		h.gateBin = prebuilt
		return nil
	}
	h.gateBin = filepath.Join(h.workDir, "rcagate")
	buildArgs := []string{"build"}
	if h.race {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", h.gateBin, "dspaddr/cmd/rcagate")
	cmd := exec.Command("go", buildArgs...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("building rcagate: %v\n%s", err, out)
	}
	return nil
}

// pickPort grabs a free localhost port.
func pickPort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// spawn execs one binary with its output in a fresh work-dir log and
// a goroutine collecting the exit code.
func (h *harness) spawn(logName, bin string, args []string) (*serverProc, string, error) {
	h.serverLogs++
	logPath := filepath.Join(h.workDir, fmt.Sprintf("%s-%d.log", logName, h.serverLogs))
	logFile, err := os.Create(logPath)
	if err != nil {
		return nil, "", err
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return nil, "", fmt.Errorf("starting %s: %w", logName, err)
	}
	p := &serverProc{cmd: cmd, done: make(chan struct{})}
	go func() {
		defer close(p.done)
		defer logFile.Close()
		err := cmd.Wait()
		p.code = cmd.ProcessState.ExitCode()
		_ = err
	}()
	return p, logPath, nil
}

// awaitHealthy polls a process's /healthz until 200, early process
// death, or a 10s deadline.
func (h *harness) awaitHealthy(p *serverProc, base, logPath string) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := h.client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-p.done:
			return fmt.Errorf("process exited during startup (code %d); log: %s", p.code, logPath)
		default:
		}
		if time.Now().After(deadline) {
			p.cmd.Process.Kill() //nolint:errcheck
			return fmt.Errorf("process never became healthy; log: %s", logPath)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// serverArgs builds one rcaserve invocation. nodeID and walSub are
// empty in the single-server topology; cluster nodes each get their
// own identity and WAL subdirectory.
func (h *harness) serverArgs(port int, nodeID string) []string {
	args := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-faults", h.baseFaults,
		"-queue", strconv.Itoa(h.queueCap),
		"-timeout", h.timeout.String(),
		"-ttl", "2m",
	}
	if nodeID != "" {
		args = append(args, "-node-id", nodeID)
	}
	if h.walDir != "" {
		dir := h.walDir
		if nodeID != "" {
			dir = filepath.Join(h.walDir, nodeID)
		}
		args = append(args, "-wal-dir", dir, "-wal-fsync", "interval")
	}
	return args
}

// startServer execs rcaserve and waits for /healthz (single-server
// topology).
func (h *harness) startServer() error {
	p, logPath, err := h.spawn("server", h.bin, h.serverArgs(h.port, ""))
	if err != nil {
		return err
	}
	if err := h.awaitHealthy(p, h.base, logPath); err != nil {
		return err
	}
	h.mu.Lock()
	h.srv = p
	h.mu.Unlock()
	return nil
}

// nodeHealthWindow bounds how long the gateway may take to notice a
// SIGKILLed node and rehash its keys: the harness arms 250ms probes
// with the default fail threshold of 2, so mark-down lands well
// inside this window; the oracle rejects any job the fleet routed to
// the dead node after it closes.
const nodeHealthWindow = 3 * time.Second

// startCluster stands up the fleet: h.cluster rcaserve nodes (named
// n1..nN, each with its own WAL subdirectory when durability is on)
// and one rcagate gateway in front; drivers then target the gateway.
func (h *harness) startCluster() error {
	ports := make([]int, h.cluster+1)
	for i := range ports {
		p, err := pickPort()
		if err != nil {
			return err
		}
		ports[i] = p
	}
	h.nodePorts = ports[:h.cluster]
	h.nodeBases = make([]string, h.cluster)
	h.nodeProcs = make([]*serverProc, h.cluster)
	var nodesSpec []string
	for i := 0; i < h.cluster; i++ {
		name := fmt.Sprintf("n%d", i+1)
		h.nodeBases[i] = fmt.Sprintf("http://127.0.0.1:%d", h.nodePorts[i])
		p, logPath, err := h.spawn("node-"+name, h.bin, h.serverArgs(h.nodePorts[i], name))
		if err != nil {
			return err
		}
		h.nodeProcs[i] = p
		if err := h.awaitHealthy(p, h.nodeBases[i], logPath); err != nil {
			return err
		}
		nodesSpec = append(nodesSpec, fmt.Sprintf("%s=%s", name, h.nodeBases[i]))
	}
	gatePort := ports[h.cluster]
	h.base = fmt.Sprintf("http://127.0.0.1:%d", gatePort)
	gw, logPath, err := h.spawn("gateway", h.gateBin, []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", gatePort),
		"-nodes", strings.Join(nodesSpec, ","),
		"-probe-interval", "250ms",
	})
	if err != nil {
		return err
	}
	if err := h.awaitHealthy(gw, h.base, logPath); err != nil {
		return err
	}
	h.mu.Lock()
	h.gateway = gw
	h.mu.Unlock()
	return nil
}

// graySlowSpec is the response-delay fault the grayslow directive
// arms: 300ms per response is an order of magnitude over a healthy
// hop yet comfortably inside the gateway's 1s probe timeout, so the
// health checker keeps the node "up" the whole time — only the
// breakers' latency-quantile trip can eject it.
const graySlowSpec = "resp-delay=300ms"

// graySlowNode arms the gray-failure fault on the highest-indexed
// live node, holds it for d, then restores the base spec, recording
// the window for the oracle's breaker assertions. The node is never
// stopped: the failure mode under test is slow-but-alive.
func (h *harness) graySlowNode(d time.Duration) error {
	h.mu.Lock()
	idx := -1
	for i := len(h.nodeProcs) - 1; i >= 0; i-- {
		if h.nodeProcs[i] != nil {
			idx = i
			break
		}
	}
	h.mu.Unlock()
	if idx < 0 {
		return fmt.Errorf("no live node to slow")
	}
	name := fmt.Sprintf("n%d", idx+1)
	start := time.Now()
	if err := h.rearmAt(h.nodeBases[idx], composeFaults(h.baseFaults, graySlowSpec)); err != nil {
		return fmt.Errorf("arming gray-slow fault on %s: %w", name, err)
	}
	time.Sleep(d)
	if err := h.rearmAt(h.nodeBases[idx], h.baseFaults); err != nil {
		return fmt.Errorf("clearing gray-slow fault on %s: %w", name, err)
	}
	h.mu.Lock()
	h.grayEvents = append(h.grayEvents, grayEvent{
		Node:   name,
		Window: restartWindow{Start: start, End: time.Now()},
	})
	h.mu.Unlock()
	return nil
}

// composeFaults appends an extra clause to a base spec, treating
// ""/"none" as empty.
func composeFaults(base, extra string) string {
	if base == "" || base == "none" {
		return extra
	}
	return base + "," + extra
}

// killNodeMid SIGKILLs the highest-indexed live node and leaves it
// dead: no drain, no replacement, no replay — the fleet must absorb
// the loss. The recorded window ends after the gateway's health-check
// machinery is guaranteed to have rehashed the node's key range.
func (h *harness) killNodeMid() error {
	h.mu.Lock()
	idx := -1
	for i := len(h.nodeProcs) - 1; i >= 0; i-- {
		if h.nodeProcs[i] != nil {
			idx = i
			break
		}
	}
	var p *serverProc
	if idx >= 0 {
		p = h.nodeProcs[idx]
		h.nodeProcs[idx] = nil
	}
	h.mu.Unlock()
	if p == nil {
		return fmt.Errorf("no live node to kill")
	}
	name := fmt.Sprintf("n%d", idx+1)
	now := time.Now()
	if err := p.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL node %s: %w", name, err)
	}
	<-p.done
	h.mu.Lock()
	h.nodeKills = append(h.nodeKills, nodeKill{
		Node:   name,
		Window: restartWindow{Start: now, End: now.Add(nodeHealthWindow)},
	})
	h.mu.Unlock()
	return nil
}

// stopAll SIGTERMs every process the scenario left alive — the single
// server, or the gateway plus surviving nodes — and records the exit
// codes the clean-shutdown invariant checks.
func (h *harness) stopAll() error {
	if h.cluster == 0 {
		code, err := h.stopServer()
		if err != nil {
			return err
		}
		h.mu.Lock()
		h.exits = append(h.exits, code)
		h.mu.Unlock()
		return nil
	}
	h.mu.Lock()
	gw := h.gateway
	h.gateway = nil
	nodes := append([]*serverProc(nil), h.nodeProcs...)
	for i := range h.nodeProcs {
		h.nodeProcs[i] = nil
	}
	h.mu.Unlock()
	if gw != nil {
		code, err := stopProc(gw)
		if err != nil {
			return fmt.Errorf("gateway: %w", err)
		}
		h.exits = append(h.exits, code)
	}
	for i, p := range nodes {
		if p == nil {
			continue // killed by the scenario
		}
		code, err := stopProc(p)
		if err != nil {
			return fmt.Errorf("node n%d: %w", i+1, err)
		}
		h.exits = append(h.exits, code)
	}
	return nil
}

// stopServer SIGTERMs the current server and waits for a clean exit.
func (h *harness) stopServer() (int, error) {
	h.mu.Lock()
	p := h.srv
	h.srv = nil
	h.mu.Unlock()
	if p == nil {
		return -1, fmt.Errorf("no server to stop")
	}
	return stopProc(p)
}

// stopProc SIGTERMs one process and waits for a clean exit, escalating
// to SIGKILL after 20s.
func stopProc(p *serverProc) (int, error) {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return -1, fmt.Errorf("SIGTERM: %w", err)
	}
	select {
	case <-p.done:
		return p.code, nil
	case <-time.After(20 * time.Second):
		p.cmd.Process.Kill() //nolint:errcheck
		<-p.done
		return p.code, fmt.Errorf("process ignored SIGTERM for 20s (exit %d after SIGKILL)", p.code)
	}
}

// killAll force-stops every leftover process (cleanup path only).
func (h *harness) killAll() {
	h.mu.Lock()
	procs := []*serverProc{h.srv, h.gateway}
	procs = append(procs, h.nodeProcs...)
	h.srv, h.gateway = nil, nil
	for i := range h.nodeProcs {
		h.nodeProcs[i] = nil
	}
	h.mu.Unlock()
	for _, p := range procs {
		if p != nil {
			p.cmd.Process.Kill() //nolint:errcheck
			<-p.done
		}
	}
}

// restartServer performs one SIGTERM + re-exec cycle and records the
// window during which job state could legitimately be lost.
func (h *harness) restartServer() error {
	w := restartWindow{Start: time.Now()}
	code, err := h.stopServer()
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.exits = append(h.exits, code)
	h.mu.Unlock()
	if err := h.startServer(); err != nil {
		return err
	}
	w.End = time.Now()
	h.mu.Lock()
	h.restarts = append(h.restarts, w)
	h.mu.Unlock()
	return nil
}

// crashServer SIGKILLs the current server — no drain, no WAL flush,
// the exit code is the signal's and deliberately kept out of the
// clean-exit ledger — then starts a replacement against the same WAL
// directory and records the outage window. With durability on the
// oracle ignores these windows: a kill is exactly the crash the WAL
// must survive.
func (h *harness) crashServer() error {
	w := restartWindow{Start: time.Now()}
	h.mu.Lock()
	p := h.srv
	h.srv = nil
	h.mu.Unlock()
	if p == nil {
		return fmt.Errorf("no server to crash")
	}
	if err := p.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	<-p.done
	if err := h.startServer(); err != nil {
		return err
	}
	w.End = time.Now()
	h.mu.Lock()
	h.kills = append(h.kills, w)
	h.mu.Unlock()
	return nil
}

// sampleRSS reads /proc/<pid>/statm for every live process and tracks
// the largest single-process peak (the per-process ceiling is what the
// oracle gates; cluster nodes are independent servers).
func (h *harness) sampleRSS() {
	h.mu.Lock()
	procs := []*serverProc{h.srv, h.gateway}
	procs = append(procs, h.nodeProcs...)
	h.mu.Unlock()
	for _, p := range procs {
		if p == nil || p.cmd.Process == nil {
			continue
		}
		raw, err := os.ReadFile(fmt.Sprintf("/proc/%d/statm", p.cmd.Process.Pid))
		if err != nil {
			continue
		}
		fields := strings.Fields(string(raw))
		if len(fields) < 2 {
			continue
		}
		pages, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rss := pages * int64(os.Getpagesize())
		for {
			cur := h.maxRSS.Load()
			if rss <= cur || h.maxRSS.CompareAndSwap(cur, rss) {
				break
			}
		}
	}
}

// diagBase is where the node-level debug endpoints live: the server
// itself, or node n1 in cluster mode (the gateway exposes neither
// /debug/soak nor /debug/requests, and killnode takes the
// highest-indexed node, so n1 always survives).
func (h *harness) diagBase() string {
	if h.cluster > 0 {
		return h.nodeBases[0]
	}
	return h.base
}

// debugSnapshot reads /debug/soak (zero snapshot on failure — the
// oracle skips leak checks it has no baseline for).
type debugSnapshot struct {
	Goroutines int `json:"goroutines"`
	OpenFDs    int `json:"openFDs"`
}

func (h *harness) debugSnapshot() (debugSnapshot, bool) {
	var snap debugSnapshot
	resp, err := h.client.Get(h.diagBase() + "/debug/soak")
	if err != nil {
		return snap, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, false
	}
	return snap, true
}

// metricsFamilies are the exposition families the harness records at
// baseline and at the end of the run (counters and histogram _count
// sums; restarts reset them, so deltas are per-final-process).
var metricsFamilies = []string{
	"rcaserve_http_requests_total",
	"rcaserve_jobs_submitted_total",
	"rcaserve_engine_jobs_total",
	"rcaserve_engine_cache_hits_total",
	"rcaserve_http_request_duration_seconds",
	"rcaserve_engine_solve_duration_seconds",
	"rcaserve_job_queue_wait_duration_seconds",
	"rcaserve_job_run_duration_seconds",
	"rcaserve_goroutines",
	"rcaserve_heap_bytes",
}

// scrapeMetrics fetches /metrics and folds the tracked families into
// scalars (counter sums; histogram families contribute their _count).
func (h *harness) scrapeMetrics() (map[string]float64, bool) {
	resp, err := h.client.Get(h.base + "/metrics")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, false
	}
	out := make(map[string]float64, len(metricsFamilies))
	for _, name := range metricsFamilies {
		if fams[name] != nil {
			out[name] = obs.SumFamily(fams, name)
		}
	}
	return out, true
}

// scrapeSlowTraces pulls the slow/error traces the server retained,
// phase breakdowns included, capped so the report stays readable.
func (h *harness) scrapeSlowTraces() ([]obs.TraceSnapshot, bool) {
	resp, err := h.client.Get(h.diagBase() + "/debug/requests?min_ms=1&limit=8")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var body struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, false
	}
	return body.Traces, true
}

// scrapeGatewayBreakers reads the gateway's breaker families: the
// transition counter folded by destination state (summed across
// nodes) and the final per-node state gauge. Cluster mode only.
func (h *harness) scrapeGatewayBreakers() (transitions, states map[string]float64, ok bool) {
	if h.cluster == 0 {
		return nil, nil, false
	}
	resp, err := h.client.Get(h.base + "/metrics")
	if err != nil {
		return nil, nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, false
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, nil, false
	}
	transitions = map[string]float64{}
	if f := fams["rcagate_breaker_transitions_total"]; f != nil {
		for _, s := range f.Samples {
			transitions[s.Labels["to"]] += s.Value
		}
	}
	states = map[string]float64{}
	if f := fams["rcagate_breaker_state"]; f != nil {
		for _, s := range f.Samples {
			states[s.Labels["node"]] = s.Value
		}
	}
	return transitions, states, true
}

// scenarioArmsDelay reports whether any fault spec in play injects
// solve delays — the precondition for expecting slow traces.
func scenarioArmsDelay(baseFaults string, sc *scenario) bool {
	if strings.Contains(baseFaults, "delay=") {
		return true
	}
	for _, st := range sc.Steps {
		if st.Phase != nil && strings.Contains(st.Phase.Faults, "delay=") {
			return true
		}
	}
	return false
}

// rearm POSTs a new fault spec to /debug/soak — on every surviving
// node in cluster mode, since faults are per-process state.
func (h *harness) rearm(spec string) error {
	for _, base := range h.rearmTargets() {
		if err := h.rearmAt(base, spec); err != nil {
			return err
		}
	}
	return nil
}

// rearmAt re-arms one process's fault injector.
func (h *harness) rearmAt(base, spec string) error {
	body, _ := json.Marshal(map[string]string{"faults": spec})
	resp, err := h.client.Post(base+"/debug/soak", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("re-arming faults at %s: %w", base, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("re-arming faults at %s: status %d", base, resp.StatusCode)
	}
	return nil
}

// rearmTargets lists the node base URLs that hold fault state.
func (h *harness) rearmTargets() []string {
	if h.cluster == 0 {
		return []string{h.base}
	}
	var out []string
	h.mu.Lock()
	for i, p := range h.nodeProcs {
		if p != nil {
			out = append(out, h.nodeBases[i])
		}
	}
	h.mu.Unlock()
	return out
}

// finalStats fetches /v1/stats for the accounting identity.
type finalStatsJSON struct {
	AsyncJobs struct {
		QueueDepth int    `json:"queueDepth"`
		Running    int    `json:"running"`
		Submitted  uint64 `json:"submitted"`
		Done       uint64 `json:"done"`
		Failed     uint64 `json:"failed"`
		TimedOut   uint64 `json:"timedOut"`
		Canceled   uint64 `json:"canceled"`
		Recovered  uint64 `json:"recovered"`
	} `json:"asyncJobs"`
}

func (h *harness) finalStats() (finalStatsJSON, bool) {
	if h.cluster == 0 {
		return fetchStats(h.client, h.base)
	}
	// Cluster: sum the per-node stats across survivors. Each node's
	// accounting identity holds independently, so the sums do too; a
	// node that won't answer voids the check rather than skewing it.
	var sum finalStatsJSON
	for _, base := range h.rearmTargets() {
		st, ok := fetchStats(h.client, base)
		if !ok {
			return sum, false
		}
		sum.AsyncJobs.QueueDepth += st.AsyncJobs.QueueDepth
		sum.AsyncJobs.Running += st.AsyncJobs.Running
		sum.AsyncJobs.Submitted += st.AsyncJobs.Submitted
		sum.AsyncJobs.Done += st.AsyncJobs.Done
		sum.AsyncJobs.Failed += st.AsyncJobs.Failed
		sum.AsyncJobs.TimedOut += st.AsyncJobs.TimedOut
		sum.AsyncJobs.Canceled += st.AsyncJobs.Canceled
		sum.AsyncJobs.Recovered += st.AsyncJobs.Recovered
	}
	return sum, true
}

func fetchStats(client *http.Client, base string) (finalStatsJSON, bool) {
	var st finalStatsJSON
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, false
	}
	return st, true
}

// runPhase spawns the phase's driver wave (and the mid-phase restart,
// when scheduled) and collects the ledgers.
func (h *harness) runPhase(p *phaseSpec, phaseIdx int) error {
	if p.Faults != "" {
		if err := h.rearm(p.Faults); err != nil {
			return err
		}
		defer func() {
			if err := h.rearm(h.baseFaults); err != nil {
				fmt.Fprintf(os.Stderr, "rcasoak: restoring base faults: %v\n", err)
			}
		}()
	}

	perDriver := p.Rate / h.clients
	if perDriver < 1 {
		perDriver = 1
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}

	type driverRun struct {
		cmd *exec.Cmd
		out *bytes.Buffer
	}
	runs := make([]driverRun, h.clients)
	for c := 0; c < h.clients; c++ {
		args := []string{
			"-driver",
			"-base", h.base,
			"-index", strconv.Itoa(phaseIdx*1000 + c),
			"-seed", strconv.FormatInt(h.seed*1_000_003+int64(phaseIdx)*1009+int64(c), 10),
			"-rate", strconv.Itoa(perDriver),
			"-mix", p.Mix.String(),
			"-burst", "32",
			"-run-for", p.Duration.String(),
			"-grace", h.grace.String(),
		}
		if p.FreshPermil > 0 {
			args = append(args, "-fresh", strconv.Itoa(p.FreshPermil))
		}
		cmd := exec.Command(self, args...)
		out := &bytes.Buffer{}
		cmd.Stdout = out
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("starting driver %d: %w", c, err)
		}
		runs[c] = driverRun{cmd: cmd, out: out}
	}

	// Mid-phase restart or SIGKILL under load.
	restartErr := make(chan error, 1)
	switch {
	case p.RestartMid:
		go func() {
			time.Sleep(p.Duration / 2)
			fmt.Fprintf(os.Stderr, "rcasoak: restart (mid-phase, under load)\n")
			restartErr <- h.restartServer()
		}()
	case p.KillMid:
		go func() {
			time.Sleep(p.Duration / 2)
			fmt.Fprintf(os.Stderr, "rcasoak: SIGKILL (mid-phase, under load)\n")
			restartErr <- h.crashServer()
		}()
	case p.KillNodeMid:
		go func() {
			time.Sleep(p.Duration / 2)
			fmt.Fprintf(os.Stderr, "rcasoak: SIGKILL fleet node (mid-phase, under load)\n")
			restartErr <- h.killNodeMid()
		}()
	case p.GraySlowMid:
		go func() {
			time.Sleep(p.Duration / 2)
			fmt.Fprintf(os.Stderr, "rcasoak: gray-slowing fleet node (resp-delay, mid-phase, under load)\n")
			restartErr <- h.graySlowNode(p.Duration / 4)
		}()
	default:
		restartErr <- nil
	}

	for c, r := range runs {
		if err := r.cmd.Wait(); err != nil {
			return fmt.Errorf("driver %d (phase %s) failed: %v\nstdout: %s",
				c, p.Name, err, r.out.String())
		}
		var led ledger
		if err := json.Unmarshal(r.out.Bytes(), &led); err != nil {
			return fmt.Errorf("driver %d (phase %s): bad ledger: %v", c, p.Name, err)
		}
		h.collected = append(h.collected, led)
	}
	if err := <-restartErr; err != nil {
		return fmt.Errorf("mid-phase restart: %w", err)
	}
	return nil
}
