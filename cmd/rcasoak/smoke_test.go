//go:build soak_smoke

// The out-of-process integration smoke: run the whole harness — which
// builds and execs the real rcaserve binary, drives one short mixed
// burst from real driver subprocesses, SIGTERMs the server — and
// assert the machine-readable verdict: exit 0, clean server exits,
// zero lost or duplicated jobs, final /v1/stats consistent. Gated
// behind the soak_smoke build tag because it compiles two binaries
// and runs ~10s of wall clock:
//
//	go test -tags soak_smoke -run TestSoakSmoke ./cmd/rcasoak

package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestSoakSmoke(t *testing.T) {
	dir := t.TempDir()
	scenarioPath := filepath.Join(dir, "smoke.scenario")
	// One mixed burst: sync, async and cancel traffic with faults armed
	// (delay + forced errors), no overload wave (a 6s run cannot
	// guarantee a 429, and the oracle would hold us to it).
	scenario := "phase smoke 6s rate=40 mix=sync:3,async:5,cancel:1 faults=delay=10ms:2,error=64\n"
	if err := os.WriteFile(scenarioPath, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	reportPath := filepath.Join(dir, "report.json")

	// The driver subprocesses re-exec the harness binary itself, so the
	// harness must run as a real process — `go run`, not an in-test
	// call (the test binary's main is the test runner).
	cmd := exec.Command("go", "run", "dspaddr/cmd/rcasoak",
		"-scenario", scenarioPath,
		"-clients", "2",
		"-seed", "7",
		"-grace", "5s",
		"-report", reportPath,
	)
	out, err := cmd.CombinedOutput()
	t.Logf("rcasoak output:\n%s", out)
	if err != nil {
		t.Fatalf("rcasoak exited non-zero: %v", err)
	}

	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep soakReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("parsing report: %v", err)
	}

	if !rep.Passed {
		t.Fatalf("report failed: %v", rep.Violations)
	}
	if rep.JobsLost != 0 {
		t.Fatalf("%d jobs lost", rep.JobsLost)
	}
	if rep.JobsAccepted == 0 || rep.JobsResolved != rep.JobsAccepted {
		t.Fatalf("job accounting: accepted %d resolved %d", rep.JobsAccepted, rep.JobsResolved)
	}
	for _, class := range []string{"sync", "async", "cancel"} {
		if rep.Ops[class] == 0 {
			t.Errorf("op class %s never ran", class)
		}
	}
	// The SIGTERM shutdown must have been clean (exit 0) and the final
	// /v1/stats identity must have held.
	if len(rep.ServerExits) == 0 {
		t.Fatal("no server exits recorded")
	}
	for i, code := range rep.ServerExits {
		if code != 0 {
			t.Errorf("server exit %d: code %d", i, code)
		}
	}
	if !rep.StatsIdentityOK {
		t.Error("final /v1/stats accounting identity broken")
	}
}

// TestSoakSmokeCrashWAL is the durable crash smoke: one mid-phase
// SIGKILL under async load with -wal-dir set. The oracle excuses
// nothing in this mode, so a pass means every accepted job survived
// the kill via WAL replay. (The full three-kill scenario is CI's
// `-scenario crash` run; this keeps the contract checked in ~10s.)
func TestSoakSmokeCrashWAL(t *testing.T) {
	dir := t.TempDir()
	scenarioPath := filepath.Join(dir, "crash.scenario")
	// Async-heavy so jobs are queued and running when the kill lands;
	// no cancel class (nothing extra proven in 6s) and gentle faults.
	scenario := "phase crash 6s rate=40 mix=sync:1,async:6 faults=delay=10ms:2 kill\n"
	if err := os.WriteFile(scenarioPath, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	reportPath := filepath.Join(dir, "report.json")
	walDir := filepath.Join(dir, "wal")

	cmd := exec.Command("go", "run", "dspaddr/cmd/rcasoak",
		"-scenario", scenarioPath,
		"-clients", "2",
		"-seed", "11",
		"-grace", "8s",
		"-wal-dir", walDir,
		"-report", reportPath,
	)
	out, err := cmd.CombinedOutput()
	t.Logf("rcasoak output:\n%s", out)
	if err != nil {
		t.Fatalf("rcasoak exited non-zero: %v", err)
	}

	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep soakReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("parsing report: %v", err)
	}

	if !rep.Passed {
		t.Fatalf("report failed: %v", rep.Violations)
	}
	if !rep.WALEnabled || rep.Kills != 1 {
		t.Fatalf("crash coverage: walEnabled=%v kills=%d", rep.WALEnabled, rep.Kills)
	}
	if rep.JobsLost != 0 || rep.JobsExcused != 0 {
		t.Fatalf("durable run leaked jobs: %d lost, %d excused", rep.JobsLost, rep.JobsExcused)
	}
	if rep.JobsAccepted == 0 || rep.JobsResolved != rep.JobsAccepted {
		t.Fatalf("job accounting: accepted %d resolved %d", rep.JobsAccepted, rep.JobsResolved)
	}
	if !rep.StatsIdentityOK {
		t.Error("final /v1/stats accounting identity broken across the crash")
	}
}
