package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dspaddr/internal/obs"
)

// testInput builds a clean-run oracle input the individual tests then
// perturb: one driver, all jobs resolved, everything within ceilings.
func testInput(t *testing.T) oracleInput {
	t.Helper()
	sc, err := parseScenario("t", "phase p 1s rate=10 mix=sync:1,async:1")
	if err != nil {
		t.Fatal(err)
	}
	return oracleInput{
		scenario: sc,
		seed:     1,
		clients:  1,
		elapsed:  time.Second,
		ledgers: []ledger{{
			Driver: 0,
			Ops:    map[string]int{"sync": 10, "async": 5},
			Outcomes: map[string]int{
				"sync.ok": 10, "async.accepted": 5,
			},
			LatencyMicros: map[string][]int64{"sync": {100, 200, 300}},
			Jobs: []jobRecord{
				{ID: "a", Class: "async", State: "done", SubmitMs: 1000, ResolveMs: 1100,
					RefChecked: true, RefOK: true, EchoOK: true},
				{ID: "b", Class: "async", State: "failed", SubmitMs: 1000, ResolveMs: 1200},
				{ID: "c", Class: "async", State: "canceled", SubmitMs: 1100, ResolveMs: 1300},
				{ID: "d", Class: "async", State: "timeout", SubmitMs: 1100, ResolveMs: 1400},
				{ID: "e", Class: "async", State: "evicted", SubmitMs: 1200, ResolveMs: 1500},
			},
			Violations: []string{},
		}},
		serverExits:           []int{0},
		maxRSS:                100 << 20,
		baselineGoroutines:    40,
		finalGoroutines:       45,
		baselineFDs:           12,
		finalFDs:              13,
		statsFetched:          true,
		statsSubmitted:        5,
		statsTerminalPlusLive: 5,
		p99Ceiling:            time.Second,
		rssCeiling:            512 << 20,
		metricsFetched:        true,
		metricsBaseline: map[string]float64{
			"rcaserve_http_requests_total":           3,
			"rcaserve_http_request_duration_seconds": 3,
		},
		metricsFinal: map[string]float64{
			"rcaserve_http_requests_total":           40,
			"rcaserve_http_request_duration_seconds": 40,
		},
		slowTracesFetched: true,
	}
}

func TestOracleCleanRunPasses(t *testing.T) {
	rep := runOracle(testInput(t))
	if !rep.Passed {
		t.Fatalf("clean run failed: %v", rep.Violations)
	}
	if rep.JobsAccepted != 5 || rep.JobsResolved != 5 || rep.JobsLost != 0 {
		t.Fatalf("job accounting: %+v", rep)
	}
}

func violationMatching(rep *soakReport, substr string) bool {
	for _, v := range rep.Violations {
		if strings.Contains(v, substr) {
			return true
		}
	}
	return false
}

func TestOracleFlagsLostJob(t *testing.T) {
	in := testInput(t)
	in.ledgers[0].Jobs = append(in.ledgers[0].Jobs,
		jobRecord{ID: "x", Class: "async", State: "lost", SubmitMs: 2000, ResolveMs: 2500,
			Err: "404 for an accepted ID"})
	rep := runOracle(in)
	if rep.Passed || rep.JobsLost != 1 || !violationMatching(rep, "lost") {
		t.Fatalf("lost job not flagged: %+v", rep.Violations)
	}
}

func TestOracleExcusesRestartLoss(t *testing.T) {
	in := testInput(t)
	in.ledgers[0].Jobs = append(in.ledgers[0].Jobs,
		jobRecord{ID: "x", Class: "async", State: "lost", SubmitMs: 2000, ResolveMs: 2500})
	in.restarts = []restartWindow{{
		Start: time.UnixMilli(2200), End: time.UnixMilli(2400),
	}}
	// A restart obligates coverage; declare it in the scenario.
	sc, err := parseScenario("t", "phase p 1s rate=10 mix=sync:1,async:1 restart")
	if err != nil {
		t.Fatal(err)
	}
	in.scenario = sc
	rep := runOracle(in)
	if !rep.Passed {
		t.Fatalf("restart-overlapped loss not excused: %v", rep.Violations)
	}
	if rep.JobsExcused != 1 || rep.JobsLost != 0 {
		t.Fatalf("excuse accounting: %+v", rep)
	}

	// A window that does NOT overlap the job's interval excuses nothing.
	in.restarts = []restartWindow{{
		Start: time.UnixMilli(3000), End: time.UnixMilli(3100),
	}}
	if rep := runOracle(in); rep.Passed {
		t.Fatal("non-overlapping restart excused a lost job")
	}
}

// TestOracleKillWindowExcuses: without a WAL, a SIGKILL window excuses
// overlapped losses exactly like a restart window does.
func TestOracleKillWindowExcuses(t *testing.T) {
	in := testInput(t)
	in.ledgers[0].Jobs = append(in.ledgers[0].Jobs,
		jobRecord{ID: "x", Class: "async", State: "lost", SubmitMs: 2000, ResolveMs: 2500})
	in.kills = []restartWindow{{
		Start: time.UnixMilli(2200), End: time.UnixMilli(2400),
	}}
	sc, err := parseScenario("t", "phase p 1s rate=10 mix=sync:1,async:1 kill")
	if err != nil {
		t.Fatal(err)
	}
	in.scenario = sc
	rep := runOracle(in)
	if !rep.Passed || rep.JobsExcused != 1 {
		t.Fatalf("kill-overlapped loss not excused: %+v %v", rep, rep.Violations)
	}
}

// TestOracleWALForbidsExcusal is the acceptance rule: with -wal-dir
// set, a lost job fails the run even when restart AND kill windows
// overlap its whole observation interval.
func TestOracleWALForbidsExcusal(t *testing.T) {
	in := testInput(t)
	in.walEnabled = true
	in.ledgers[0].Jobs = append(in.ledgers[0].Jobs,
		jobRecord{ID: "x", Class: "async", State: "lost", SubmitMs: 2000, ResolveMs: 2500,
			Err: "404 for an accepted ID"})
	in.restarts = []restartWindow{{Start: time.UnixMilli(2100), End: time.UnixMilli(2200)}}
	in.kills = []restartWindow{{Start: time.UnixMilli(2300), End: time.UnixMilli(2400)}}
	sc, err := parseScenario("t", "phase p 1s rate=10 mix=sync:1,async:1 restart\nkill")
	if err != nil {
		t.Fatal(err)
	}
	in.scenario = sc
	rep := runOracle(in)
	if rep.Passed || rep.JobsLost != 1 || rep.JobsExcused != 0 {
		t.Fatalf("WAL run excused a lost job: %+v %v", rep, rep.Violations)
	}
	if !violationMatching(rep, "despite the WAL") {
		t.Fatalf("wrong violation wording: %v", rep.Violations)
	}
	if !rep.WALEnabled {
		t.Fatal("report does not record durable mode")
	}

	// The same durable run with every job resolved passes — the rule
	// forbids excusals, not kills.
	in = testInput(t)
	in.walEnabled = true
	in.kills = []restartWindow{{Start: time.UnixMilli(2300), End: time.UnixMilli(2400)}}
	in.statsRecovered = 3
	sc, err = parseScenario("t", "phase p 1s rate=10 mix=sync:1,async:1 kill")
	if err != nil {
		t.Fatal(err)
	}
	in.scenario = sc
	rep = runOracle(in)
	if !rep.Passed {
		t.Fatalf("clean durable crash run failed: %v", rep.Violations)
	}
	if rep.Kills != 1 || rep.JobsRecovered != 3 {
		t.Fatalf("kill/recovery accounting: %+v", rep)
	}
}

// TestOracleClusterNodeKill covers the fleet invariants: a lost job
// tagged with the SIGKILLed node is excused even in durable mode (its
// WAL has no process left to replay it), a survivor-owned loss still
// violates, a job accepted for the dead node after its health window
// is a rehash failure, and a fleet that falls silent after the kill
// trips the keeps-serving check.
func TestOracleClusterNodeKill(t *testing.T) {
	base := func(t *testing.T) oracleInput {
		t.Helper()
		in := testInput(t)
		sc, err := parseScenario("c",
			"cluster 3\nphase p 1s rate=10 mix=sync:1,async:1 killnode\nphase q 1s rate=10 mix=sync:1,async:1")
		if err != nil {
			t.Fatal(err)
		}
		in.scenario = sc
		in.clusterNodes = 3
		in.walEnabled = true
		in.nodeKills = []nodeKill{{Node: "n3",
			Window: restartWindow{Start: time.UnixMilli(2000), End: time.UnixMilli(5000)}}}
		// Survivors keep accepting after the health window closes.
		in.ledgers[0].Jobs = append(in.ledgers[0].Jobs,
			jobRecord{ID: "j-n1-abcd0123-00000009", Class: "async", State: "done",
				SubmitMs: 6000, ResolveMs: 6100, RefChecked: true, RefOK: true, EchoOK: true})
		return in
	}

	t.Run("killed-node loss excused despite WAL", func(t *testing.T) {
		in := base(t)
		in.ledgers[0].Jobs = append(in.ledgers[0].Jobs,
			jobRecord{ID: "j-n3-abcd0123-00000001", Class: "async", State: "lost",
				SubmitMs: 1500, ResolveMs: 2500, Err: "pending at poll deadline"})
		rep := runOracle(in)
		if !rep.Passed || rep.JobsExcused != 1 {
			t.Fatalf("killed-node loss not excused: %+v %v", rep, rep.Violations)
		}
		if rep.ClusterNodes != 3 || len(rep.NodeKills) != 1 {
			t.Fatalf("cluster accounting: %+v", rep)
		}
	})

	t.Run("survivor loss still violates", func(t *testing.T) {
		in := base(t)
		in.ledgers[0].Jobs = append(in.ledgers[0].Jobs,
			jobRecord{ID: "j-n1-abcd0123-00000002", Class: "async", State: "lost",
				SubmitMs: 1500, ResolveMs: 2500})
		rep := runOracle(in)
		if rep.Passed || !violationMatching(rep, "despite the WAL") {
			t.Fatalf("survivor loss slipped through: %v", rep.Violations)
		}
	})

	t.Run("post-window acceptance by the dead node", func(t *testing.T) {
		in := base(t)
		in.ledgers[0].Jobs = append(in.ledgers[0].Jobs,
			jobRecord{ID: "j-n3-abcd0123-00000003", Class: "async", State: "done",
				SubmitMs: 6000, ResolveMs: 6100, RefChecked: true, RefOK: true, EchoOK: true})
		rep := runOracle(in)
		if rep.Passed || !violationMatching(rep, "rehash") {
			t.Fatalf("rehash failure not flagged: %v", rep.Violations)
		}
	})

	t.Run("fleet must keep accepting after the kill", func(t *testing.T) {
		in := base(t)
		var kept []jobRecord
		for _, j := range in.ledgers[0].Jobs {
			if j.SubmitMs <= 5000 {
				kept = append(kept, j)
			}
		}
		in.ledgers[0].Jobs = kept
		rep := runOracle(in)
		if rep.Passed || !violationMatching(rep, "stopped accepting") {
			t.Fatalf("silent fleet not flagged: %v", rep.Violations)
		}
	})

	t.Run("node-kill coverage", func(t *testing.T) {
		in := base(t)
		in.nodeKills = nil
		rep := runOracle(in)
		if rep.Passed || !violationMatching(rep, "node kills scheduled") {
			t.Fatalf("missing node kill not flagged: %v", rep.Violations)
		}
	})
}

// TestOracleGrayFailure covers the gray-failure invariants: the run
// passes only when the gateway's breaker demonstrably opened during
// the slow window, re-closed afterward, and every breaker ended the
// run closed; a missing scrape or a coverage mismatch fails it.
func TestOracleGrayFailure(t *testing.T) {
	base := func(t *testing.T) oracleInput {
		t.Helper()
		in := testInput(t)
		sc, err := parseScenario("g",
			"cluster 3\nphase p 1s rate=10 mix=sync:1,async:1 grayslow\nphase q 1s rate=10 mix=sync:1,async:1")
		if err != nil {
			t.Fatal(err)
		}
		in.scenario = sc
		in.clusterNodes = 3
		in.grayEvents = []grayEvent{{Node: "n3",
			Window: restartWindow{Start: time.UnixMilli(2000), End: time.UnixMilli(4000)}}}
		in.breakersFetched = true
		in.breakerTransitions = map[string]float64{"open": 1, "half-open": 2, "closed": 1}
		in.breakerStates = map[string]float64{"n1": 0, "n2": 0, "n3": 0}
		return in
	}

	t.Run("clean gray run passes", func(t *testing.T) {
		rep := runOracle(base(t))
		if !rep.Passed {
			t.Fatalf("clean gray run failed: %v", rep.Violations)
		}
		if len(rep.GrayEvents) != 1 || rep.BreakerTransitions["open"] != 1 {
			t.Fatalf("gray accounting not carried into the report: %+v", rep)
		}
	})

	t.Run("missing breaker scrape violates", func(t *testing.T) {
		in := base(t)
		in.breakersFetched = false
		rep := runOracle(in)
		if rep.Passed || !violationMatching(rep, "could not be scraped") {
			t.Fatalf("missing scrape not flagged: %v", rep.Violations)
		}
	})

	t.Run("breaker that never opened violates", func(t *testing.T) {
		in := base(t)
		in.breakerTransitions = map[string]float64{}
		rep := runOracle(in)
		if rep.Passed || !violationMatching(rep, "never opened") {
			t.Fatalf("missed ejection not flagged: %v", rep.Violations)
		}
	})

	t.Run("breaker that never re-closed violates", func(t *testing.T) {
		in := base(t)
		in.breakerTransitions = map[string]float64{"open": 1}
		in.breakerStates["n3"] = 1
		rep := runOracle(in)
		if rep.Passed || !violationMatching(rep, "never re-closed") {
			t.Fatalf("stuck-open breaker not flagged: %v", rep.Violations)
		}
		if !violationMatching(rep, "ended the run in state") {
			t.Fatalf("non-closed final state not flagged: %v", rep.Violations)
		}
	})

	t.Run("gray-slow coverage", func(t *testing.T) {
		in := base(t)
		in.grayEvents = nil
		rep := runOracle(in)
		if rep.Passed || !violationMatching(rep, "gray-slow windows scheduled") {
			t.Fatalf("missing gray slow not flagged: %v", rep.Violations)
		}
	})
}

// TestOracleKillCoverage: a scheduled kill that never happened (or an
// unscheduled one that did) is a coverage violation.
func TestOracleKillCoverage(t *testing.T) {
	in := testInput(t)
	sc, err := parseScenario("t", "phase p 1s rate=10 mix=sync:1,async:1 kill")
	if err != nil {
		t.Fatal(err)
	}
	in.scenario = sc
	rep := runOracle(in)
	if rep.Passed || !violationMatching(rep, "kills scheduled") {
		t.Fatalf("missing kill not flagged: %v", rep.Violations)
	}

	in = testInput(t)
	in.kills = []restartWindow{{Start: time.UnixMilli(2300), End: time.UnixMilli(2400)}}
	rep = runOracle(in)
	if rep.Passed || !violationMatching(rep, "kills scheduled") {
		t.Fatalf("unscheduled kill not flagged: %v", rep.Violations)
	}
}

func TestOracleFlagsDuplicateIDs(t *testing.T) {
	in := testInput(t)
	in.ledgers[0].Jobs = append(in.ledgers[0].Jobs,
		jobRecord{ID: "a", Class: "async", State: "done", SubmitMs: 1000, ResolveMs: 1100,
			EchoOK: true})
	rep := runOracle(in)
	if rep.Passed || !violationMatching(rep, "duplication") {
		t.Fatalf("duplicate ID not flagged: %v", rep.Violations)
	}
}

func TestOracleFlagsReferenceDivergence(t *testing.T) {
	in := testInput(t)
	in.ledgers[0].Jobs[0].RefOK = false
	rep := runOracle(in)
	if rep.Passed || !violationMatching(rep, "diverges") {
		t.Fatalf("reference divergence not flagged: %v", rep.Violations)
	}
}

func TestOracleFlagsAliasing(t *testing.T) {
	in := testInput(t)
	in.ledgers[0].Jobs[0].EchoOK = false
	rep := runOracle(in)
	if rep.Passed || !violationMatching(rep, "aliasing") {
		t.Fatalf("aliasing not flagged: %v", rep.Violations)
	}
}

func TestOracleCeilings(t *testing.T) {
	in := testInput(t)
	in.ledgers[0].LatencyMicros["sync"] = []int64{100, 200, 5_000_000}
	rep := runOracle(in)
	if rep.Passed || !violationMatching(rep, "p99") {
		t.Fatalf("p99 breach not flagged: %v", rep.Violations)
	}

	in = testInput(t)
	in.maxRSS = 1 << 30
	rep = runOracle(in)
	if rep.Passed || !violationMatching(rep, "RSS") {
		t.Fatalf("RSS breach not flagged: %v", rep.Violations)
	}
}

func TestOracleLeaksAndExits(t *testing.T) {
	in := testInput(t)
	in.finalGoroutines = in.baselineGoroutines + goroutineSlack + 1
	rep := runOracle(in)
	if rep.Passed || !violationMatching(rep, "goroutines") {
		t.Fatalf("goroutine leak not flagged: %v", rep.Violations)
	}

	in = testInput(t)
	in.serverExits = []int{0, 137}
	rep = runOracle(in)
	if rep.Passed || !violationMatching(rep, "code 137") {
		t.Fatalf("dirty exit not flagged: %v", rep.Violations)
	}
}

func TestOracleStatsIdentity(t *testing.T) {
	in := testInput(t)
	in.statsSubmitted = 7 // != terminal+live 5
	rep := runOracle(in)
	if rep.Passed || !violationMatching(rep, "identity") {
		t.Fatalf("broken identity not flagged: %v", rep.Violations)
	}
}

func TestOracleCoverage(t *testing.T) {
	in := testInput(t)
	delete(in.ledgers[0].Ops, "async") // scheduled class never ran
	rep := runOracle(in)
	if rep.Passed || !violationMatching(rep, "never ran") {
		t.Fatalf("missing class not flagged: %v", rep.Violations)
	}

	// Burst weight obligates at least one observed 429.
	sc, err := parseScenario("t", "phase p 1s rate=10 mix=sync:1,async:1,burst:1")
	if err != nil {
		t.Fatal(err)
	}
	in = testInput(t)
	in.scenario = sc
	in.ledgers[0].Ops["burst"] = 3
	rep = runOracle(in)
	if rep.Passed || !violationMatching(rep, "429") {
		t.Fatalf("missing 429 coverage not flagged: %v", rep.Violations)
	}
	in.ledgers[0].Outcomes["burst.429"] = 2
	if rep := runOracle(in); !rep.Passed {
		t.Fatalf("429 coverage satisfied but still failing: %v", rep.Violations)
	}
}

func TestP99(t *testing.T) {
	if got := p99(nil); got != 0 {
		t.Fatalf("p99(nil) = %d", got)
	}
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	if got := p99(vals); got != 100 {
		t.Fatalf("p99(1..100) = %d", got)
	}
	if got := p99([]int64{5}); got != 5 {
		t.Fatalf("p99([5]) = %d", got)
	}
}

func TestWriteReport(t *testing.T) {
	rep := runOracle(testInput(t))
	path := filepath.Join(t.TempDir(), "report.json")
	if err := writeReport(rep, path); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(path); err != nil {
		t.Fatal(err)
	}
}

// TestOpKindNamesCoverEnum pins the report keys to the workload enum.
func TestOpKindNamesCoverEnum(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range opKindNames {
		name := k.String()
		if strings.HasPrefix(name, "OpKind(") {
			t.Fatalf("enum value %d has no name", int(k))
		}
		if seen[name] {
			t.Fatalf("duplicate op kind name %q", name)
		}
		seen[name] = true
	}
}

// TestOracleObservability covers invariant 10: a failed scrape is a
// violation, armed delay faults demand a retained slow trace with a
// phase breakdown, and a trace with spans satisfies the check.
func TestOracleObservability(t *testing.T) {
	in := testInput(t)
	in.metricsFetched = false
	if rep := runOracle(in); rep.Passed {
		t.Fatal("missing /metrics scrape should fail the run")
	}

	in = testInput(t)
	in.delayFaultsArmed = true
	if rep := runOracle(in); rep.Passed {
		t.Fatal("delay faults with no slow trace should fail the run")
	}

	in = testInput(t)
	in.delayFaultsArmed = true
	in.slowTraces = []obs.TraceSnapshot{{
		ID: "t1", Route: "/v1/allocate", DurationMicros: 25_000,
		Spans: []obs.SpanSnapshot{{Name: "solve", DurMicros: 20_000}},
	}}
	rep := runOracle(in)
	if !rep.Passed {
		t.Fatalf("slow trace with spans should pass: %v", rep.Violations)
	}
	if len(rep.SlowTraces) != 1 || rep.SlowTraces[0].ID != "t1" {
		t.Fatalf("slow traces not carried into the report: %+v", rep.SlowTraces)
	}
	if rep.MetricsDelta["rcaserve_http_requests_total"] != 37 {
		t.Fatalf("metrics delta off: %+v", rep.MetricsDelta)
	}
}
