// The scenario DSL: a soak run is a sequence of timed phases, each
// with a target op rate and a traffic mix, interleaved with server
// restart and kill directives. Scenarios come from a file or from the
// builtin "mixed" or "crash" scenarios scaled to the -duration flag.
//
// Grammar (line-oriented; '#' starts a comment):
//
//	cluster <nodes>
//	phase <name> <duration> rate=<ops/s> mix=<class:w,...> \
//	      [fresh=<permil>] [faults=<spec>] [restart|kill|killnode|grayslow]
//	restart
//	kill
//
// A trailing `restart` on a phase line restarts the server at the
// phase midpoint while the drivers keep hammering — the chaos case. A
// standalone `restart` line restarts between phases — the orderly
// case. `kill` is the violent variant: SIGKILL instead of SIGTERM, no
// drain, no flush — the crash a WAL exists to survive. `faults=`
// re-arms the server's fault injector for the phase (via POST
// /debug/soak) and restores the base spec afterwards; `fresh=` sets
// the permil of unique (cache-cold) patterns, which is how an
// overload phase defeats the result cache to provoke 429s.
//
// A `cluster N` directive switches the topology: N rcaserve nodes
// behind one rcagate gateway, drivers aimed at the gateway. Cluster
// scenarios replace restart/kill with `killnode`, which SIGKILLs one
// fleet node at the phase midpoint and leaves it dead — the gateway
// must mark it down, rehash its key range and keep serving — or
// `grayslow`, which arms a response-delay fault on one node at the
// midpoint and clears it at the three-quarter mark: the node stays
// health-probe-green while slow, so ejecting and readmitting it is
// the circuit breakers' job, not the prober's.

package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dspaddr/internal/faults"
	"dspaddr/internal/workload"
)

// maxClusterNodes bounds the `cluster` directive: the harness starts
// one OS process per node plus a gateway.
const maxClusterNodes = 16

// phaseSpec is one timed load phase.
type phaseSpec struct {
	Name     string
	Duration time.Duration
	// Rate is the target op rate across all clients (ops/second).
	Rate int
	Mix  workload.Mix
	// FreshPermil overrides the generator's unique-pattern fraction
	// (0 = generator default).
	FreshPermil int
	// Faults re-arms the injector for this phase ("" = leave as is).
	Faults string
	// RestartMid restarts the server at the phase midpoint, under load.
	RestartMid bool
	// KillMid SIGKILLs the server at the phase midpoint, under load —
	// no drain, no WAL flush; recovery is the replay path's problem.
	KillMid bool
	// KillNodeMid (cluster scenarios only) SIGKILLs one fleet node at
	// the phase midpoint and leaves it dead: the gateway must mark it
	// down, rehash its keys to the ring successor and keep serving on
	// the survivors.
	KillNodeMid bool
	// GraySlowMid (cluster scenarios only) arms a response-delay fault
	// on one fleet node at the phase midpoint and clears it at the
	// three-quarter mark: the node stays alive and keeps passing
	// health probes, but every response is an order of magnitude
	// slower — the gray failure the gateway's circuit breakers (not
	// its prober) must eject and, once the fault clears, readmit.
	GraySlowMid bool
}

// step is one scenario element: a phase, a between-phase restart, or
// a between-phase SIGKILL.
type step struct {
	Phase   *phaseSpec
	Restart bool
	Kill    bool
}

// scenario is a full soak run description.
type scenario struct {
	Name  string
	Steps []step
	// Cluster > 0 runs the scenario against that many rcaserve nodes
	// behind an rcagate gateway instead of one directly-driven server;
	// drivers then target the gateway. Restart/kill directives are for
	// the single-server topology; cluster scenarios use killnode.
	Cluster int
}

// phases lists the scenario's phases in order.
func (s *scenario) phases() []*phaseSpec {
	var out []*phaseSpec
	for _, st := range s.Steps {
		if st.Phase != nil {
			out = append(out, st.Phase)
		}
	}
	return out
}

// totalDuration sums the phase durations.
func (s *scenario) totalDuration() time.Duration {
	var d time.Duration
	for _, p := range s.phases() {
		d += p.Duration
	}
	return d
}

// expectations derives what the oracle must see from what the
// scenario promises to generate.
type expectations struct {
	// Classes that must appear in the op counts.
	Classes []workload.OpKind
	// Expect429 when any phase carries burst weight: the overload wave
	// must actually bounce off admission at least once.
	Expect429 bool
	// Restarts is the number of restart directives (mid-phase and
	// between-phase); the harness must observe that many clean exits
	// before the final one.
	Restarts int
	// Kills is the number of kill directives; the harness must have
	// SIGKILLed and replaced the server that many times.
	Kills int
	// NodeKills is the number of killnode directives (cluster mode);
	// each permanently removes one fleet node under load.
	NodeKills int
	// GraySlows is the number of grayslow directives (cluster mode);
	// each slows one node mid-phase and clears the fault before the
	// phase ends — the breaker must open and then re-close.
	GraySlows int
}

// expect derives the oracle's coverage obligations.
func (s *scenario) expect() expectations {
	var e expectations
	var mix workload.Mix
	for _, st := range s.Steps {
		if st.Restart {
			e.Restarts++
		}
		if st.Kill {
			e.Kills++
		}
		if st.Phase == nil {
			continue
		}
		if st.Phase.RestartMid {
			e.Restarts++
		}
		if st.Phase.KillMid {
			e.Kills++
		}
		if st.Phase.KillNodeMid {
			e.NodeKills++
		}
		if st.Phase.GraySlowMid {
			e.GraySlows++
		}
		m := st.Phase.Mix
		mix.Sync += m.Sync
		mix.Batch += m.Batch
		mix.Async += m.Async
		mix.Burst += m.Burst
		mix.Cancel += m.Cancel
		mix.BigN += m.BigN
	}
	add := func(k workload.OpKind, w int) {
		if w > 0 {
			e.Classes = append(e.Classes, k)
		}
	}
	add(workload.OpSync, mix.Sync)
	add(workload.OpBatch, mix.Batch)
	add(workload.OpAsync, mix.Async)
	add(workload.OpAsyncBurst, mix.Burst)
	add(workload.OpCancel, mix.Cancel)
	add(workload.OpBigN, mix.BigN)
	e.Expect429 = mix.Burst > 0
	return e
}

// parseScenario reads the DSL.
func parseScenario(name, text string) (*scenario, error) {
	sc := &scenario{Name: name}
	for lineno, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "cluster":
			if len(fields) != 2 {
				return nil, fmt.Errorf("scenario line %d: cluster takes a node count", lineno+1)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 2 || n > maxClusterNodes {
				return nil, fmt.Errorf("scenario line %d: bad cluster size %q (want 2..%d)",
					lineno+1, fields[1], maxClusterNodes)
			}
			sc.Cluster = n
		case "restart":
			if len(fields) != 1 {
				return nil, fmt.Errorf("scenario line %d: restart takes no arguments", lineno+1)
			}
			sc.Steps = append(sc.Steps, step{Restart: true})
		case "kill":
			if len(fields) != 1 {
				return nil, fmt.Errorf("scenario line %d: kill takes no arguments", lineno+1)
			}
			sc.Steps = append(sc.Steps, step{Kill: true})
		case "phase":
			p, err := parsePhase(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("scenario line %d: %w", lineno+1, err)
			}
			sc.Steps = append(sc.Steps, step{Phase: p})
		default:
			return nil, fmt.Errorf("scenario line %d: unknown directive %q", lineno+1, fields[0])
		}
	}
	if len(sc.phases()) == 0 {
		return nil, fmt.Errorf("scenario %q has no phases", name)
	}
	if err := validateTopology(sc); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", name, err)
	}
	return sc, nil
}

// validateTopology keeps directives on the topology they exercise:
// restart/kill replace THE server (single-node), killnode removes ONE
// node of a fleet — and a fleet must keep at least one node alive.
func validateTopology(sc *scenario) error {
	nodeKills := 0
	for _, st := range sc.Steps {
		if sc.Cluster > 0 && (st.Restart || st.Kill) {
			return fmt.Errorf("restart/kill directives are single-server; use killnode in cluster scenarios")
		}
		if st.Phase == nil {
			continue
		}
		if sc.Cluster > 0 && (st.Phase.RestartMid || st.Phase.KillMid) {
			return fmt.Errorf("phase %q: restart/kill are single-server; use killnode in cluster scenarios", st.Phase.Name)
		}
		if st.Phase.KillNodeMid {
			if sc.Cluster == 0 {
				return fmt.Errorf("phase %q: killnode needs a cluster directive", st.Phase.Name)
			}
			nodeKills++
		}
		if st.Phase.GraySlowMid && sc.Cluster == 0 {
			return fmt.Errorf("phase %q: grayslow needs a cluster directive", st.Phase.Name)
		}
	}
	if sc.Cluster > 0 && nodeKills >= sc.Cluster {
		return fmt.Errorf("%d killnode directives would empty a %d-node fleet", nodeKills, sc.Cluster)
	}
	return nil
}

// parsePhase reads the fields after the "phase" keyword.
func parsePhase(fields []string) (*phaseSpec, error) {
	if len(fields) < 2 {
		return nil, fmt.Errorf("phase needs a name and a duration")
	}
	p := &phaseSpec{Name: fields[0]}
	dur, err := time.ParseDuration(fields[1])
	if err != nil || dur <= 0 {
		return nil, fmt.Errorf("bad phase duration %q", fields[1])
	}
	p.Duration = dur
	sawMix, sawRate := false, false
	for _, f := range fields[2:] {
		if f == "restart" {
			p.RestartMid = true
			continue
		}
		if f == "kill" {
			p.KillMid = true
			continue
		}
		if f == "killnode" {
			p.KillNodeMid = true
			continue
		}
		if f == "grayslow" {
			p.GraySlowMid = true
			continue
		}
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("bad phase option %q (want key=value, restart, kill, killnode or grayslow)", f)
		}
		switch key {
		case "rate":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad rate %q", val)
			}
			p.Rate, sawRate = n, true
		case "mix":
			m, err := workload.ParseMix(val)
			if err != nil {
				return nil, err
			}
			p.Mix, sawMix = m, true
		case "fresh":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 || n > 1000 {
				return nil, fmt.Errorf("bad fresh permil %q (want 1..1000)", val)
			}
			p.FreshPermil = n
		case "faults":
			if _, err := faults.Parse(val); err != nil {
				return nil, fmt.Errorf("bad phase faults spec: %w", err)
			}
			p.Faults = val
		default:
			return nil, fmt.Errorf("unknown phase option %q", key)
		}
	}
	if !sawRate || !sawMix {
		return nil, fmt.Errorf("phase %q needs rate= and mix=", p.Name)
	}
	disruptions := 0
	for _, on := range []bool{p.RestartMid, p.KillMid, p.KillNodeMid, p.GraySlowMid} {
		if on {
			disruptions++
		}
	}
	if disruptions > 1 {
		return nil, fmt.Errorf("phase %q: restart, kill, killnode and grayslow share the midpoint; pick one", p.Name)
	}
	return p, nil
}

// builtinMixed is the default scenario scaled to a total duration: a
// warmup, a deliberate 429 overload wave (cache-cold traffic against
// slowed solves), a chaos phase with a mid-phase restart under load, a
// steady full mix with cancels and pathological large-N jobs, and a
// cooldown.
func builtinMixed(total time.Duration) *scenario {
	slice, mustMix := scenarioHelpers(total)
	return &scenario{
		Name: "mixed",
		Steps: []step{
			{Phase: &phaseSpec{Name: "warmup", Duration: slice(150), Rate: 40,
				Mix: mustMix("sync:3,async:5")}},
			{Phase: &phaseSpec{Name: "overload", Duration: slice(200), Rate: 120,
				Mix: mustMix("async:2,burst:3"), FreshPermil: 1000,
				Faults: "delay=60ms"}},
			{Phase: &phaseSpec{Name: "chaos", Duration: slice(300), Rate: 60,
				Mix: mustMix("sync:3,async:4,cancel:2,bign:1"), RestartMid: true}},
			{Phase: &phaseSpec{Name: "steady", Duration: slice(250), Rate: 60,
				Mix: mustMix("sync:3,batch:1,async:4,cancel:1,bign:1")}},
			{Phase: &phaseSpec{Name: "cooldown", Duration: slice(100), Rate: 20,
				Mix: mustMix("sync:1")}},
		},
	}
}

// builtinCrash is the durability scenario scaled to a total duration:
// async-heavy waves SIGKILLed three times at phase midpoints, so every
// kill lands with accepted jobs queued, running, finishing and being
// canceled. Run with -wal-dir it is the ISSUE's acceptance case — the
// oracle excuses nothing, so every 202 must survive the crash via WAL
// replay; without -wal-dir the kill windows excuse the inevitable
// losses and the scenario degrades to a restart-robustness check. No
// burst weight: a replay wave refilling the queue makes 429 timing
// non-deterministic, and overload coverage belongs to "mixed".
func builtinCrash(total time.Duration) *scenario {
	slice, mustMix := scenarioHelpers(total)
	crashMix := mustMix("sync:1,async:6,cancel:2,bign:1")
	return &scenario{
		Name: "crash",
		Steps: []step{
			{Phase: &phaseSpec{Name: "warmup", Duration: slice(120), Rate: 40,
				Mix: mustMix("sync:2,async:6")}},
			{Phase: &phaseSpec{Name: "crash1", Duration: slice(200), Rate: 60,
				Mix: crashMix, KillMid: true}},
			{Phase: &phaseSpec{Name: "crash2", Duration: slice(200), Rate: 60,
				Mix: mustMix("async:6,batch:1,cancel:1"), KillMid: true}},
			{Phase: &phaseSpec{Name: "crash3", Duration: slice(200), Rate: 60,
				Mix: crashMix, KillMid: true}},
			{Phase: &phaseSpec{Name: "steady", Duration: slice(180), Rate: 40,
				Mix: mustMix("sync:2,batch:1,async:4,cancel:1")}},
			{Phase: &phaseSpec{Name: "cooldown", Duration: slice(100), Rate: 20,
				Mix: mustMix("sync:1")}},
		},
	}
}

// builtinCluster is the fleet-robustness scenario scaled to a total
// duration: a 3-node fleet behind the rcagate gateway, warmed up,
// then one node SIGKILLed at a phase midpoint and never replaced.
// Run with -wal-dir (the acceptance configuration) the oracle then
// asserts the fleet keeps serving, no job owned by a surviving node
// is lost (the killed node's in-flight jobs are the only excusable
// casualties — their WAL has no process left to replay it), and the
// downed node's key range rehashes to its ring successor within the
// gateway's health-check window.
func builtinCluster(total time.Duration) *scenario {
	slice, mustMix := scenarioHelpers(total)
	return &scenario{
		Name:    "cluster",
		Cluster: 3,
		Steps: []step{
			{Phase: &phaseSpec{Name: "warmup", Duration: slice(200), Rate: 40,
				Mix: mustMix("sync:3,async:5")}},
			{Phase: &phaseSpec{Name: "nodekill", Duration: slice(300), Rate: 60,
				Mix: mustMix("sync:2,async:5,cancel:1"), KillNodeMid: true}},
			{Phase: &phaseSpec{Name: "degraded", Duration: slice(350), Rate: 60,
				Mix: mustMix("sync:3,batch:1,async:4,cancel:1")}},
			{Phase: &phaseSpec{Name: "cooldown", Duration: slice(150), Rate: 20,
				Mix: mustMix("sync:1")}},
		},
	}
}

// builtinGrayfail is the gray-failure scenario scaled to a total
// duration: a 3-node fleet behind the gateway, then one node slowed
// 10x mid-phase by a response-delay fault that stays comfortably
// inside the health-probe timeout — the prober keeps the node "up"
// while every response through it drags. The gateway's per-node
// circuit breaker must open on the latency quantile, route the slow
// node's key range around it, trickle half-open probes, and close
// again after the fault clears at the phase's three-quarter mark; the
// oracle asserts the open and re-close transitions from the gateway's
// breaker metrics, fleet p99 under the ceiling throughout, and the
// usual zero lost/duplicated jobs — hedged reads included.
func builtinGrayfail(total time.Duration) *scenario {
	slice, mustMix := scenarioHelpers(total)
	return &scenario{
		Name:    "grayfail",
		Cluster: 3,
		Steps: []step{
			{Phase: &phaseSpec{Name: "warmup", Duration: slice(250), Rate: 40,
				Mix: mustMix("sync:3,async:5")}},
			{Phase: &phaseSpec{Name: "grayslow", Duration: slice(450), Rate: 60,
				Mix: mustMix("sync:3,async:4,cancel:1"), GraySlowMid: true}},
			{Phase: &phaseSpec{Name: "recovered", Duration: slice(200), Rate: 40,
				Mix: mustMix("sync:3,async:4")}},
			{Phase: &phaseSpec{Name: "cooldown", Duration: slice(100), Rate: 20,
				Mix: mustMix("sync:1")}},
		},
	}
}

// scenarioHelpers builds the builtin scenarios' shared scaling and
// mix-parsing closures. Phases never shrink below one second, so very
// short total durations stretch slightly rather than degenerate.
func scenarioHelpers(total time.Duration) (func(int) time.Duration, func(string) workload.Mix) {
	slice := func(permil int) time.Duration {
		d := total * time.Duration(permil) / 1000
		if d < time.Second {
			d = time.Second
		}
		return d.Round(10 * time.Millisecond)
	}
	mustMix := func(s string) workload.Mix {
		m, err := workload.ParseMix(s)
		if err != nil {
			panic(err) // fixture specs
		}
		return m
	}
	return slice, mustMix
}
