// The invariant oracle: after the scenario completes, every claim the
// harness makes is checked here, over the union of the driver ledgers
// and the parent's own observations (restart windows, server exit
// codes, RSS samples, /debug/soak snapshots, final /v1/stats).
//
// Invariants:
//
//  1. No lost jobs — every 202-accepted job reaches exactly one
//     terminal observation; a job that vanished (404 / still pending)
//     is excused only if a restart or kill window overlaps its
//     observation interval (a server without a durable job log
//     legitimately forgets in-flight work across a process
//     replacement). When the run has a WAL (-wal-dir) there are NO
//     excusals of any kind: the log's contract is that every
//     acknowledged submission survives any crash, SIGKILL included,
//     so a lost job is a violation no window can explain away.
//  2. No duplicated jobs — job IDs are globally unique across every
//     accepted submission of every driver.
//  3. No aliased or wrong results — drivers compare each result's
//     echoed offsets and cost against a local reference solve; any
//     divergence was recorded as a driver violation.
//  4. Latency — the p99 HTTP round trip per op class stays under the
//     ceiling.
//  5. Memory — the server's peak RSS stays under the ceiling.
//  6. No leaks — goroutine and fd counts from /debug/soak return to
//     near their post-warmup baseline once load stops.
//  7. Clean shutdown — every server exit (mid-scenario restarts and
//     the final stop) is signal-initiated and exits 0. Deliberate
//     SIGKILLs are excluded by construction: the harness keeps their
//     exit codes out of this ledger and accounts them under kills.
//  8. Accounting — final /v1/stats obeys
//     submitted == done+failed+timedOut+canceled+queueDepth+running
//     (WAL recovery seeds both sides, so the identity survives
//     crash-replay cycles too).
//  9. Coverage — every op class the scenario weights actually ran,
//     429s appeared if an overload wave was scheduled, restarts,
//     kills and node-kills happened if scheduled.
// 10. Observability — the final /metrics scrape parses and shows the
//     serving-path counters moving, and when solve-delay faults were
//     armed, /debug/requests retained at least one slow trace with a
//     phase breakdown.
//
// Cluster scenarios add two fleet invariants on top. A job whose ID
// carries a SIGKILLed node's tag is the one loss the WAL cannot
// answer for — the process that owns that log is never restarted — so
// such losses are excused even in durable mode; any other lost job
// still violates. And the ring must rehash: once a killed node's
// health-check window closes, no newly accepted job may carry its
// tag, and the fleet must demonstrably keep accepting work.

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"dspaddr/internal/jobs"
	"dspaddr/internal/obs"
	"dspaddr/internal/workload"
)

// restartWindow brackets one server replacement: state submitted
// before End and unresolved by Start may have died with the process.
type restartWindow struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// overlaps reports whether a job observed over [submit, resolve]
// (unix millis) could have lost state to this window.
func (w restartWindow) overlaps(submitMs, resolveMs int64) bool {
	return submitMs <= w.End.UnixMilli() && resolveMs >= w.Start.UnixMilli()
}

// nodeKill records one permanent fleet-node SIGKILL: the node name
// (which is also its job-ID ownership tag) and the window within
// which the gateway's health checks must have rehashed its key range
// to the ring successor.
type nodeKill struct {
	Node   string        `json:"node"`
	Window restartWindow `json:"window"`
}

// grayEvent records one gray-failure injection: a node slowed by a
// response-delay fault over Window while staying alive and
// health-probe-green. The gateway's circuit breaker must have opened
// during the window and re-closed after it.
type grayEvent struct {
	Node   string        `json:"node"`
	Window restartWindow `json:"window"`
}

// soakReport is the machine-readable run outcome (-report file).
type soakReport struct {
	Scenario        string         `json:"scenario"`
	Seed            int64          `json:"seed"`
	Clients         int            `json:"clients"`
	DurationSeconds float64        `json:"durationSeconds"`
	Ops             map[string]int `json:"ops"`
	Outcomes        map[string]int `json:"outcomes"`

	JobsAccepted int `json:"jobsAccepted"`
	JobsResolved int `json:"jobsResolved"`
	JobsExcused  int `json:"jobsExcused"`
	JobsLost     int `json:"jobsLost"`

	P99Micros   map[string]int64 `json:"p99Micros"`
	MaxRSSBytes int64            `json:"maxRSSBytes"`

	Restarts    int   `json:"restarts"`
	Kills       int   `json:"kills"`
	ServerExits []int `json:"serverExits"`

	// ClusterNodes is the fleet size (0 = single-server topology);
	// NodeKills are the permanent node SIGKILLs the scenario performed.
	ClusterNodes int        `json:"clusterNodes,omitempty"`
	NodeKills    []nodeKill `json:"nodeKills,omitempty"`
	// GrayEvents are the gray-failure injections (node slowed, then
	// restored); BreakerTransitions folds the gateway's transition
	// counter by destination state and BreakerFinalStates is the
	// per-node state gauge at shutdown (0 = closed).
	GrayEvents         []grayEvent        `json:"grayEvents,omitempty"`
	BreakerTransitions map[string]float64 `json:"breakerTransitions,omitempty"`
	BreakerFinalStates map[string]float64 `json:"breakerFinalStates,omitempty"`

	// WALEnabled records that the servers ran with -wal-dir — the mode
	// in which JobsExcused must be 0 by rule; JobsRecovered is the
	// final process's boot-replay count from /v1/stats.
	WALEnabled    bool   `json:"walEnabled"`
	JobsRecovered uint64 `json:"jobsRecovered"`

	GoroutinesBaseline int `json:"goroutinesBaseline"`
	GoroutinesFinal    int `json:"goroutinesFinal"`
	FDsBaseline        int `json:"fdsBaseline"`
	FDsFinal           int `json:"fdsFinal"`

	StatsIdentityOK bool `json:"statsIdentityOK"`

	// MetricsBaseline/Final are the tracked /metrics families folded
	// to scalars at warm startup and just before shutdown; Delta is
	// final minus baseline (per final process — restarts reset it).
	MetricsBaseline map[string]float64 `json:"metricsBaseline,omitempty"`
	MetricsFinal    map[string]float64 `json:"metricsFinal,omitempty"`
	MetricsDelta    map[string]float64 `json:"metricsDelta,omitempty"`
	// SlowTraces are the retained slow/error traces scraped from
	// /debug/requests before shutdown, phase spans included.
	SlowTraces []obs.TraceSnapshot `json:"slowTraces,omitempty"`

	Violations []string `json:"violations"`
	Passed     bool     `json:"passed"`
}

// oracleInput is everything the checks consume.
type oracleInput struct {
	scenario *scenario
	seed     int64
	clients  int
	elapsed  time.Duration

	ledgers  []ledger
	restarts []restartWindow
	// kills brackets the scenario's deliberate SIGKILL cycles; their
	// windows excuse losses only when the run had no WAL.
	kills []restartWindow
	// clusterNodes / nodeKills describe the fleet topology: node kills
	// are permanent (no replacement process ever replays that WAL), so
	// losses tagged with a killed node are excused even in durable mode.
	clusterNodes int
	nodeKills    []nodeKill
	// grayEvents are the gray-failure injections; breakerTransitions /
	// breakerStates are the gateway's breaker families at shutdown
	// (transition counts folded by destination state; per-node final
	// state gauge, 0 = closed).
	grayEvents         []grayEvent
	breakerTransitions map[string]float64
	breakerStates      map[string]float64
	breakersFetched    bool
	// walEnabled: the servers ran with -wal-dir, so no loss — restart,
	// kill or otherwise — is excusable.
	walEnabled bool
	// serverExits collects the exit codes of every server process the
	// harness stopped gracefully (restarts + final shutdown); SIGKILLed
	// processes are deliberately absent.
	serverExits []int

	maxRSS int64

	// baseline/final are /debug/soak snapshots taken after warm
	// startup and after load stopped (final server process only).
	baselineGoroutines, finalGoroutines int
	baselineFDs, finalFDs               int

	// stats identity inputs from the final /v1/stats.
	statsSubmitted, statsTerminalPlusLive uint64
	statsRecovered                        uint64
	statsFetched                          bool

	p99Ceiling time.Duration
	rssCeiling int64

	// observability scrapes: tracked /metrics scalars at baseline and
	// end of run, and the slow traces retained by /debug/requests.
	metricsBaseline, metricsFinal map[string]float64
	metricsFetched                bool
	slowTraces                    []obs.TraceSnapshot
	slowTracesFetched             bool
	// delayFaultsArmed gates the slow-trace coverage check: only a
	// run that injected solve delays is guaranteed slow requests.
	delayFaultsArmed bool
}

// leak-check slack: the final snapshot may legitimately sit a little
// above baseline (keepalive readers, timer goroutines mid-sweep).
const (
	goroutineSlack = 64
	fdSlack        = 32
)

// runOracle evaluates every invariant and builds the report.
func runOracle(in oracleInput) *soakReport {
	rep := &soakReport{
		Scenario:           in.scenario.Name,
		Seed:               in.seed,
		Clients:            in.clients,
		DurationSeconds:    in.elapsed.Seconds(),
		Ops:                map[string]int{},
		Outcomes:           map[string]int{},
		P99Micros:          map[string]int64{},
		MaxRSSBytes:        in.maxRSS,
		Restarts:           len(in.restarts),
		Kills:              len(in.kills),
		ClusterNodes:       in.clusterNodes,
		NodeKills:          in.nodeKills,
		GrayEvents:         in.grayEvents,
		BreakerTransitions: in.breakerTransitions,
		BreakerFinalStates: in.breakerStates,
		ServerExits:        in.serverExits,
		WALEnabled:         in.walEnabled,
		JobsRecovered:      in.statsRecovered,
		GoroutinesBaseline: in.baselineGoroutines,
		GoroutinesFinal:    in.finalGoroutines,
		FDsBaseline:        in.baselineFDs,
		FDsFinal:           in.finalFDs,
		Violations:         []string{},
	}
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	// Excusal windows for lost jobs: restarts and kills when the run
	// had no durable log; nothing at all when it did (invariant 1).
	var excusals []restartWindow
	if !in.walEnabled {
		excusals = append(append(excusals, in.restarts...), in.kills...)
	}

	// Merge ledgers; driver-side violations (aliasing, reference
	// divergence, 5xx) carry over verbatim.
	latencies := map[string][]int64{}
	seenIDs := map[string]int{}
	for _, led := range in.ledgers {
		for k, v := range led.Ops {
			rep.Ops[k] += v
		}
		for k, v := range led.Outcomes {
			rep.Outcomes[k] += v
		}
		for k, v := range led.LatencyMicros {
			latencies[k] = append(latencies[k], v...)
		}
		rep.Violations = append(rep.Violations, led.Violations...)

		for _, j := range led.Jobs {
			rep.JobsAccepted++
			seenIDs[j.ID]++
			switch j.State {
			case "done", "failed", "timeout", "canceled", "evicted":
				rep.JobsResolved++
				if j.RefChecked && !j.RefOK {
					violate("job %s (%s): cost diverges from reference", j.ID, j.Class)
				}
				if j.State == "done" && !j.EchoOK {
					violate("job %s (%s): result echoes foreign offsets (aliasing)", j.ID, j.Class)
				}
			case "lost":
				switch {
				case excusedByRestart(excusals, j):
					rep.JobsExcused++
				case killedNodeTag(in.nodeKills, j.ID) != "":
					// The job died with its node; no process survives to
					// replay that node's WAL. Only jobs owned by
					// surviving nodes are held to the no-loss contract.
					rep.JobsExcused++
				case in.walEnabled:
					rep.JobsLost++
					violate("job %s (%s) lost despite the WAL (no window excuses a durable job): %s",
						j.ID, j.Class, j.Err)
				default:
					rep.JobsLost++
					violate("job %s (%s) lost with no restart to blame: %s", j.ID, j.Class, j.Err)
				}
			default:
				violate("job %s (%s): unknown ledger state %q", j.ID, j.Class, j.State)
			}
		}
	}

	// Fleet invariants (cluster scenarios with node kills).
	if len(in.nodeKills) > 0 {
		// Rehash: after a killed node's health-check window closes, the
		// gateway must route its key range elsewhere — an accepted job
		// carrying the dead node's tag past the window means it didn't.
		lastWindowEnd := int64(0)
		for _, nk := range in.nodeKills {
			if end := nk.Window.End.UnixMilli(); end > lastWindowEnd {
				lastWindowEnd = end
			}
		}
		acceptedAfter := 0
		for _, led := range in.ledgers {
			for _, j := range led.Jobs {
				if j.SubmitMs > lastWindowEnd {
					acceptedAfter++
				}
				tag := jobs.NodeOf(j.ID)
				for _, nk := range in.nodeKills {
					if tag == nk.Node && j.SubmitMs > nk.Window.End.UnixMilli() {
						violate("rehash: job %s accepted by killed node %s %.1fs after its health window closed",
							j.ID, nk.Node, float64(j.SubmitMs-nk.Window.End.UnixMilli())/1000)
					}
				}
			}
		}
		// Fleet keeps serving: the survivors must still be accepting
		// async work after the last kill settles.
		if acceptedAfter == 0 {
			violate("fleet stopped accepting jobs after the node kill (no submissions past the health window)")
		}
	}

	// Gray-failure invariants: the breaker must have caught the slow
	// node (opened during the window) and the fleet must have healed
	// (re-closed after the fault cleared, every breaker closed at
	// shutdown). The slowed node never dies, so the usual no-loss /
	// no-duplication checks hold for it with no excusals.
	if len(in.grayEvents) > 0 {
		if !in.breakersFetched {
			violate("gray failure injected but the gateway breaker metrics could not be scraped")
		} else {
			if in.breakerTransitions["open"] < 1 {
				violate("gray failure: breaker never opened while node %s was slowed", in.grayEvents[0].Node)
			}
			if in.breakerTransitions["closed"] < 1 {
				violate("gray failure: breaker never re-closed after the slow fault cleared")
			}
			for node, state := range in.breakerStates {
				if state != 0 {
					violate("gray failure: breaker for node %s ended the run in state %v (want 0 = closed)", node, state)
				}
			}
		}
	}

	// 2. Duplicated IDs.
	for id, n := range seenIDs {
		if n > 1 {
			violate("job ID %s issued %d times (duplication)", id, n)
		}
	}

	// 4. p99 ceilings per class.
	for class, vals := range latencies {
		p := p99(vals)
		rep.P99Micros[class] = p
		if time.Duration(p)*time.Microsecond > in.p99Ceiling {
			violate("%s p99 %.1fms exceeds ceiling %v", class,
				float64(p)/1000, in.p99Ceiling)
		}
	}

	// 5. RSS ceiling.
	if in.maxRSS > in.rssCeiling {
		violate("server peak RSS %d MiB exceeds ceiling %d MiB",
			in.maxRSS>>20, in.rssCeiling>>20)
	}

	// 6. Leak checks (skipped where the snapshot was unavailable).
	if in.baselineGoroutines > 0 && in.finalGoroutines > in.baselineGoroutines+goroutineSlack {
		violate("goroutines grew %d → %d (leak)", in.baselineGoroutines, in.finalGoroutines)
	}
	if in.baselineFDs > 0 && in.finalFDs > in.baselineFDs+fdSlack {
		violate("open fds grew %d → %d (leak)", in.baselineFDs, in.finalFDs)
	}

	// 7. Clean shutdowns.
	for i, code := range in.serverExits {
		if code != 0 {
			violate("server exit %d of %d: code %d (want 0)", i+1, len(in.serverExits), code)
		}
	}

	// 8. Stats accounting identity.
	rep.StatsIdentityOK = in.statsFetched && in.statsSubmitted == in.statsTerminalPlusLive
	if in.statsFetched && !rep.StatsIdentityOK {
		violate("final stats identity broken: submitted %d != terminal+live %d",
			in.statsSubmitted, in.statsTerminalPlusLive)
	}
	if !in.statsFetched {
		violate("final /v1/stats unavailable")
	}

	// 9. Coverage.
	exp := in.scenario.expect()
	for _, class := range exp.Classes {
		if rep.Ops[class.String()] == 0 {
			violate("coverage: op class %s never ran", class)
		}
	}
	if exp.Expect429 && count429(rep.Outcomes) == 0 {
		violate("coverage: overload wave scheduled but no 429 observed")
	}
	if exp.Restarts != len(in.restarts) {
		violate("coverage: %d restarts scheduled, %d performed", exp.Restarts, len(in.restarts))
	}
	if exp.Kills != len(in.kills) {
		violate("coverage: %d kills scheduled, %d performed", exp.Kills, len(in.kills))
	}
	if exp.NodeKills != len(in.nodeKills) {
		violate("coverage: %d node kills scheduled, %d performed", exp.NodeKills, len(in.nodeKills))
	}
	if exp.GraySlows != len(in.grayEvents) {
		violate("coverage: %d gray-slow windows scheduled, %d performed", exp.GraySlows, len(in.grayEvents))
	}

	// 10. Observability.
	rep.MetricsBaseline = in.metricsBaseline
	rep.MetricsFinal = in.metricsFinal
	rep.SlowTraces = in.slowTraces
	if !in.metricsFetched {
		violate("final /metrics scrape unavailable or unparseable")
	} else {
		rep.MetricsDelta = map[string]float64{}
		for k, v := range in.metricsFinal {
			rep.MetricsDelta[k] = v - in.metricsBaseline[k]
		}
		if in.metricsFinal["rcaserve_http_requests_total"] <= 0 {
			violate("observability: rcaserve_http_requests_total never moved")
		}
		if in.metricsFinal["rcaserve_http_request_duration_seconds"] <= 0 {
			violate("observability: HTTP latency histogram observed nothing")
		}
	}
	if !in.slowTracesFetched {
		violate("final /debug/requests scrape unavailable")
	} else if in.delayFaultsArmed {
		withPhases := 0
		for _, tr := range in.slowTraces {
			if len(tr.Spans) > 0 {
				withPhases++
			}
		}
		if withPhases == 0 {
			violate("observability: delay faults armed but no slow trace with a phase breakdown was retained")
		}
	}

	rep.Passed = len(rep.Violations) == 0
	return rep
}

// killedNodeTag returns the killed node's name when the job ID's
// ownership tag names one, else "".
func killedNodeTag(kills []nodeKill, id string) string {
	tag := jobs.NodeOf(id)
	if tag == "" {
		return ""
	}
	for _, nk := range kills {
		if nk.Node == tag {
			return nk.Node
		}
	}
	return ""
}

// excusedByRestart reports whether any of the given replacement
// windows (restarts, plus kills on non-durable runs) overlaps the
// job's observation interval.
func excusedByRestart(windows []restartWindow, j jobRecord) bool {
	for _, w := range windows {
		if w.overlaps(j.SubmitMs, j.ResolveMs) {
			return true
		}
	}
	return false
}

// count429 sums the 429 outcomes across classes.
func count429(outcomes map[string]int) int {
	n := 0
	for k, v := range outcomes {
		if len(k) > 4 && k[len(k)-4:] == ".429" {
			n += v
		}
	}
	return n
}

// p99 computes the 99th percentile of a latency sample (0 for empty).
func p99(vals []int64) int64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := make([]int64, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// writeReport writes the JSON report and prints the human summary.
func writeReport(rep *soakReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("rcasoak: scenario %q seed %d clients %d ran %.1fs\n",
		rep.Scenario, rep.Seed, rep.Clients, rep.DurationSeconds)
	classes := make([]string, 0, len(rep.Ops))
	for k := range rep.Ops {
		classes = append(classes, k)
	}
	sort.Strings(classes)
	for _, k := range classes {
		fmt.Printf("  ops %-7s %6d\n", k, rep.Ops[k])
	}
	fmt.Printf("  jobs: %d accepted, %d resolved, %d excused by restart, %d lost\n",
		rep.JobsAccepted, rep.JobsResolved, rep.JobsExcused, rep.JobsLost)
	fmt.Printf("  429s: %d   restarts: %d   kills: %d   peak RSS: %d MiB\n",
		count429(rep.Outcomes), rep.Restarts, rep.Kills, rep.MaxRSSBytes>>20)
	if rep.ClusterNodes > 0 {
		fmt.Printf("  cluster: %d node(s) behind the gateway", rep.ClusterNodes)
		for _, nk := range rep.NodeKills {
			fmt.Printf("; %s SIGKILLed and left dead", nk.Node)
		}
		fmt.Println()
	}
	for _, ge := range rep.GrayEvents {
		fmt.Printf("  gray failure: %s slowed %.1fs; breaker opens %.0f, closes %.0f\n",
			ge.Node, ge.Window.End.Sub(ge.Window.Start).Seconds(),
			rep.BreakerTransitions["open"], rep.BreakerTransitions["closed"])
	}
	if rep.WALEnabled {
		fmt.Printf("  wal: durable mode — no loss excusals; final process replayed %d job(s) at boot\n",
			rep.JobsRecovered)
	}
	fmt.Printf("  scraped: %d metric families, %d slow trace(s)",
		len(rep.MetricsFinal), len(rep.SlowTraces))
	if len(rep.SlowTraces) > 0 {
		tr := rep.SlowTraces[0]
		fmt.Printf(" — slowest retained %s %.1fms, %d phase span(s)",
			tr.Route, float64(tr.DurationMicros)/1000, len(tr.Spans))
	}
	fmt.Println()
	for _, v := range rep.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}
	if rep.Passed {
		fmt.Printf("  PASS — zero lost or duplicated jobs, report at %s\n", path)
	} else {
		fmt.Printf("  FAIL — %d violation(s), report at %s\n", len(rep.Violations), path)
	}
	return nil
}

// opKindNames is referenced by tests to keep the report keys and the
// workload enum in sync.
var opKindNames = []workload.OpKind{
	workload.OpSync, workload.OpBatch, workload.OpAsync,
	workload.OpAsyncBurst, workload.OpCancel, workload.OpBigN,
}
