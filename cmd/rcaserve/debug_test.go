package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dspaddr/internal/engine"
	"dspaddr/internal/faults"
	"dspaddr/internal/jobs"
)

// TestDebugSoakHiddenByDefault: without -faults the endpoint does not
// exist — chaos introspection is never part of a production surface.
func TestDebugSoakHiddenByDefault(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 2})
	resp, err := http.Get(ts.URL + "/debug/soak")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/soak without faults: status %d, want 404", resp.StatusCode)
	}
}

// TestDebugSoakReportsAndRearms: with an armed injector the endpoint
// reports process observables and accepts a live re-arm.
func TestDebugSoakReportsAndRearms(t *testing.T) {
	inj, err := faults.Parse("none")
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerWith(t, engine.Options{Workers: 2, Faults: inj},
		serverOptions{version: "test", faults: inj})

	var dbg debugSoakJSON
	if status := get(t, ts.URL+"/debug/soak", &dbg); status != http.StatusOK {
		t.Fatalf("GET /debug/soak: %d", status)
	}
	if dbg.Goroutines < 1 {
		t.Errorf("goroutines %d", dbg.Goroutines)
	}
	if dbg.Faults.Spec != "none" {
		t.Errorf("spec %q, want none", dbg.Faults.Spec)
	}

	var st faults.Stats
	if status := do(t, ts.URL+"/debug/soak", `{"faults":"error=1"}`, &st); status != http.StatusOK {
		t.Fatalf("POST /debug/soak: %d", status)
	}
	if st.Spec != "error=1" {
		t.Errorf("rearmed spec %q", st.Spec)
	}
	// The engine shares the injector: the next solve must fail injected.
	var resp jobResponseJSON
	status := do(t, ts.URL+"/v1/allocate", `{
		"pattern": {"offsets": [5, 3, 4]},
		"agu": {"registers": 1, "modifyRange": 1}
	}`, &resp)
	if status != http.StatusUnprocessableEntity || !strings.Contains(resp.Error, "injected") {
		t.Fatalf("status %d error %q, want injected 422", status, resp.Error)
	}
	if status := do(t, ts.URL+"/debug/soak", `{"faults":"garbage"}`, nil); status != http.StatusBadRequest {
		t.Fatalf("bad spec accepted: %d", status)
	}
}

// TestServerDrainResolvesJobs: the satellite fix end to end at the
// server layer — after drain, every submitted async job is terminal
// (never stuck queued/running) and the aborted ones carry a reason.
func TestServerDrainResolvesJobs(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	gate := func(ctx context.Context, payload any) (any, error) {
		select {
		case <-release:
			return payload, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	eng := engine.New(engine.Options{Workers: 2})
	s := newServer(eng, serverOptions{version: "test", run: gate, runners: 1})
	t.Cleanup(func() {
		once.Do(func() { close(release) })
		s.close()
		eng.Close()
	})

	var ids []string
	for i := 0; i < 3; i++ {
		id, err := s.jobs.Submit(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s.drain(ctx) // gate never released inside the window: jobs abort

	for _, id := range ids {
		st, err := s.jobs.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if !st.State.Terminal() {
			t.Fatalf("job %s stuck in %s after drain", id, st.State)
		}
		if st.State == jobs.StateCanceled && st.Err == nil {
			t.Errorf("job %s aborted without a reason", id)
		}
	}
}

// get GETs a URL and decodes the JSON response into out.
func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}
