// Command rcaserve is a long-running HTTP/JSON service for
// register-constrained address computation. It fronts the concurrent
// batch allocation engine (package engine): requests fan out over a
// bounded worker pool, identical access patterns are answered from a
// canonicalized-pattern cache, and aggregate statistics are exported.
// Long-running work goes through the asynchronous job queue (package
// jobs): submissions are admission-controlled, dispatched by
// priority, tracked per job and retained in a TTL'd result store for
// polling.
//
// Endpoints:
//
//	POST   /v1/allocate    one job, synchronous (inline pattern or mini-C loop source)
//	POST   /v1/batch       many jobs in one request, synchronous
//	POST   /v1/jobs        submit async job(s): 202 + IDs, 429 when the queue is full
//	GET    /v1/jobs        paginated job listing (?state=&offset=&limit=)
//	GET    /v1/jobs/{id}   job status and result (404 unknown, 410 evicted)
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/stats       engine + async-job + HTTP statistics
//	GET    /metrics        Prometheus text exposition
//	GET    /healthz        liveness probe (GET/HEAD)
//
// Usage:
//
//	rcaserve [flags]
//
// Flags:
//
//	-addr string        listen address (default ":8080")
//	-workers int        solver worker pool size (default max(8, NumCPU))
//	-timeout duration   per-job solve deadline (default 5s, 0 disables)
//	-cache int          result cache entries (default 4096, negative disables)
//	-queue int          async job queue capacity (default 1024)
//	-store int          async results retained before eviction (default 16384)
//	-ttl duration       async result retention after completion (default 15m)
//	-faults string      arm chaos fault injection + /debug/soak (soak builds only)
//	-version            print the build version and exit
//
// Example:
//
//	rcaserve -addr :8080 &
//	curl -s localhost:8080/v1/jobs -d '{
//	    "pattern": {"offsets": [1, 0, 2, -1, 1, 0, -2]},
//	    "agu": {"registers": 1, "modifyRange": 1}
//	}'
//	curl -s localhost:8080/v1/jobs/<id>   # poll until "state": "done"
//
// The service shuts down gracefully on SIGINT/SIGTERM: the listener
// stops, in-flight requests get a drain window, then the job manager
// and engine pool are released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dspaddr/internal/engine"
	"dspaddr/internal/faults"
	"dspaddr/internal/jobs"
)

// shutdownGrace is how long in-flight requests get to finish after a
// termination signal.
const shutdownGrace = 10 * time.Second

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcaserve:", err)
		os.Exit(1)
	}
}

// run parses flags, starts the engine and serves until a termination
// signal arrives.
func run(args []string) error {
	fs := flag.NewFlagSet("rcaserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "solver worker pool size (0 = max(8, NumCPU))")
	timeout := fs.Duration("timeout", 5*time.Second, "per-job solve deadline (0 disables)")
	cacheSize := fs.Int("cache", 0, "result cache entries (0 = default 4096, negative disables)")
	queueCap := fs.Int("queue", jobs.DefaultQueueCapacity, "async job queue capacity")
	storeCap := fs.Int("store", jobs.DefaultStoreCapacity, "async results retained before eviction")
	ttl := fs.Duration("ttl", jobs.DefaultTTL, "async result retention after completion")
	faultSpec := fs.String("faults", "", "arm chaos fault injection and /debug/soak (e.g. \"delay=20ms:4,error=128\"; \"none\" = endpoint only); soak builds only")
	version := fs.Bool("version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("rcaserve", buildVersion())
		return nil
	}

	var injector *faults.Injector
	if *faultSpec != "" {
		var err error
		if injector, err = faults.Parse(*faultSpec); err != nil {
			return err
		}
		log.Printf("rcaserve: FAULT INJECTION ARMED (%s) — this is a soak/chaos build, not a production configuration", injector)
	}

	eng := engine.New(engine.Options{
		Workers:    *workers,
		JobTimeout: *timeout,
		CacheSize:  *cacheSize,
		Faults:     injector,
	})
	defer eng.Close()

	s := newServer(eng, serverOptions{
		queueCapacity: *queueCap,
		storeCapacity: *storeCap,
		ttl:           *ttl,
		version:       buildVersion(),
		faults:        injector,
	})
	defer s.close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("rcaserve %s: listening on %s (workers=%d, timeout=%v, queue=%d, ttl=%v)",
			buildVersion(), *addr, eng.Stats().Workers, *timeout, *queueCap, *ttl)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	log.Printf("rcaserve: shutting down (%v grace)", shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// Drain the async backlog inside the same grace window: in-flight
	// jobs finish (or are aborted with ErrShutdown as their recorded
	// reason) before the manager closes, so an exiting process never
	// strands a job in a non-terminal state — the property the soak
	// harness's restart cycles assert from outside.
	s.drain(shutdownCtx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
