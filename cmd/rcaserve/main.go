// Command rcaserve is a long-running HTTP/JSON service for
// register-constrained address computation. It fronts the concurrent
// batch allocation engine (package engine): requests fan out over a
// bounded worker pool, identical access patterns are answered from a
// canonicalized-pattern cache, and aggregate statistics are exported.
// Long-running work goes through the asynchronous job queue (package
// jobs): submissions are admission-controlled, dispatched by
// priority, tracked per job and retained in a TTL'd result store for
// polling.
//
// Endpoints:
//
//	POST   /v1/allocate    one job, synchronous (inline pattern or mini-C loop source)
//	POST   /v1/batch       many jobs in one request, synchronous
//	POST   /v1/jobs        submit async job(s): 202 + IDs, 429 when the queue is full
//	GET    /v1/jobs        paginated job listing (?state=&offset=&limit=)
//	GET    /v1/jobs/{id}   job status and result (404 unknown, 410 evicted)
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/stats       engine + async-job + HTTP statistics
//	GET    /metrics        Prometheus text exposition
//	GET    /healthz        liveness probe (GET/HEAD)
//	GET    /debug/requests retained slow/error traces with phase breakdowns (?min_ms=&limit=)
//
// Every request carries a trace ID: a well-formed client-supplied
// X-Request-Id is honored, anything else gets a generated one; the ID
// is echoed in the X-Request-Id response header, attached to async
// job records, threaded through the engine's phase spans and reported
// by /debug/requests for requests that were slow or failed.
//
// Usage:
//
//	rcaserve [flags]
//
// Flags:
//
//	-addr string        listen address (default ":8080")
//	-workers int        solver worker pool size (default max(8, NumCPU))
//	-timeout duration   per-job solve deadline (default 5s, 0 disables)
//	-cache int          result cache entries (default 4096, negative disables)
//	-queue int          async job queue capacity (default 1024)
//	-store int          async results retained before eviction (default 16384)
//	-ttl duration       async result retention after completion (default 15m)
//	-node-id string     cluster node identity: tags async job IDs so the
//	                    rcagate gateway can route GET/DELETE /v1/jobs/{id}
//	                    back to this node (alphanumeric, empty = single-node)
//	-wal-dir string     write-ahead log directory for durable async jobs
//	                    (empty disables durability; on boot the log is
//	                    replayed: finished jobs restore their results,
//	                    unfinished ones re-enter the queue)
//	-wal-fsync string   WAL fsync policy: always, interval or off (default "interval")
//	-wal-fsync-interval duration  background fsync cadence under interval (default 100ms)
//	-wal-segment-bytes int        WAL segment rotation threshold (default 4MiB)
//	-shed-target duration  adaptive load-shedding queue-wait target: while
//	                    the minimum queue wait over a full window stays
//	                    above it, sync paths reject with 503 + Retry-After
//	                    (default 50ms; negative disables)
//	-shed-window duration  load-shedding evaluation window (default 100ms)
//	-log-format string  structured log encoding: text or json (default "text")
//	-trace-min duration slow-trace capture threshold for /debug/requests
//	                    (default 10ms; negative captures every request)
//	-debug-addr string  optional second listener with net/http/pprof and
//	                    /debug/runtime (off by default; bind loopback only)
//	-faults string      arm chaos fault injection + /debug/soak (soak builds only)
//	-version            print the build version and exit
//
// Example:
//
//	rcaserve -addr :8080 &
//	curl -s localhost:8080/v1/jobs -d '{
//	    "pattern": {"offsets": [1, 0, 2, -1, 1, 0, -2]},
//	    "agu": {"registers": 1, "modifyRange": 1}
//	}'
//	curl -s localhost:8080/v1/jobs/<id>   # poll until "state": "done"
//
// The service shuts down gracefully on SIGINT/SIGTERM: the listener
// stops, in-flight requests get a drain window, then the job manager
// and engine pool are released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dspaddr/internal/engine"
	"dspaddr/internal/faults"
	"dspaddr/internal/jobs"
	"dspaddr/internal/wal"
)

// shutdownGrace is how long in-flight requests get to finish after a
// termination signal.
const shutdownGrace = 10 * time.Second

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcaserve:", err)
		os.Exit(1)
	}
}

// run parses flags, starts the engine and serves until a termination
// signal arrives.
func run(args []string) error {
	fs := flag.NewFlagSet("rcaserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "solver worker pool size (0 = max(8, NumCPU))")
	timeout := fs.Duration("timeout", 5*time.Second, "per-job solve deadline (0 disables)")
	cacheSize := fs.Int("cache", 0, "result cache entries (0 = default 4096, negative disables)")
	queueCap := fs.Int("queue", jobs.DefaultQueueCapacity, "async job queue capacity")
	storeCap := fs.Int("store", jobs.DefaultStoreCapacity, "async results retained before eviction")
	ttl := fs.Duration("ttl", jobs.DefaultTTL, "async result retention after completion")
	walDir := fs.String("wal-dir", "", "write-ahead log directory for durable async jobs (empty = durability off)")
	walFsync := fs.String("wal-fsync", "interval", "WAL fsync policy: always, interval or off")
	walFsyncInterval := fs.Duration("wal-fsync-interval", 0, "background fsync cadence under -wal-fsync interval (0 = 100ms default)")
	walSegmentBytes := fs.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = 4MiB default)")
	nodeID := fs.String("node-id", "", "cluster node identity: tags async job IDs so a gateway can route them back (alphanumeric, max 32 chars; empty = single-node)")
	logFormat := fs.String("log-format", "text", "structured log encoding: text or json")
	traceMin := fs.Duration("trace-min", 0, "slow-trace capture threshold for /debug/requests (0 = 10ms default, negative captures everything)")
	debugAddr := fs.String("debug-addr", "", "optional second listener exposing net/http/pprof and /debug/runtime (bind loopback only)")
	shedTarget := fs.Duration("shed-target", 0, "adaptive load-shedding queue-wait target (0 = 50ms default, negative disables shedding)")
	shedWindow := fs.Duration("shed-window", 0, "adaptive load-shedding evaluation window (0 = 100ms default)")
	faultSpec := fs.String("faults", "", "arm chaos fault injection and /debug/soak (e.g. \"delay=20ms:4,error=128\"; \"none\" = endpoint only); soak builds only")
	version := fs.Bool("version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("rcaserve", buildVersion())
		return nil
	}

	if err := validateNodeID(*nodeID); err != nil {
		return err
	}

	logger, err := newLogger(*logFormat)
	if err != nil {
		return err
	}

	var injector *faults.Injector
	if *faultSpec != "" {
		var err error
		if injector, err = faults.Parse(*faultSpec); err != nil {
			return err
		}
		logger.Warn("FAULT INJECTION ARMED — this is a soak/chaos build, not a production configuration",
			"faults", injector.String())
	}

	// The bundle exists before the engine so the solve-latency
	// histogram can be observed from inside the worker pool.
	ob := newObservability(logger, *traceMin, 0)

	eng := engine.New(engine.Options{
		Workers:    *workers,
		JobTimeout: *timeout,
		CacheSize:  *cacheSize,
		ShedTarget: *shedTarget,
		ShedWindow: *shedWindow,
		Faults:     injector,
		SolveHist:  ob.solveHist,
	})
	defer eng.Close()

	// The WAL opens (and replays) before the server exists: recovered
	// jobs must be queued ahead of the listener accepting new ones.
	var walLog *wal.Log
	var recovered []wal.JobState
	if *walDir != "" {
		policy, err := wal.ParseFsyncPolicy(*walFsync)
		if err != nil {
			return err
		}
		var rep *wal.Replay
		walLog, rep, err = wal.Open(*walDir, wal.Options{
			SegmentBytes:  *walSegmentBytes,
			Fsync:         policy,
			FsyncInterval: *walFsyncInterval,
			Retention:     *ttl,
			Faults:        injector,
			AppendHist:    ob.walAppendHist,
			FsyncHist:     ob.walFsyncHist,
			ReplayHist:    ob.walReplayHist,
		})
		if err != nil {
			return fmt.Errorf("wal: open %s: %w", *walDir, err)
		}
		recovered = rep.Jobs
		logger.Info("wal replayed",
			"dir", *walDir, "fsync", policy.String(),
			"segments", rep.Segments, "records", rep.Records,
			"requeued", rep.JobsRequeued, "terminal", rep.JobsTerminal,
			"tornBytes", rep.TornBytes, "segmentsDropped", rep.SegmentsDropped,
			"elapsedMicros", rep.ElapsedMicros)
		if rep.TornBytes > 0 || rep.SegmentsDropped > 0 {
			logger.Warn("wal recovered from damage by truncation",
				"tornBytes", rep.TornBytes, "segmentsDropped", rep.SegmentsDropped)
		}
	}

	s := newServer(eng, serverOptions{
		queueCapacity: *queueCap,
		storeCapacity: *storeCap,
		ttl:           *ttl,
		version:       buildVersion(),
		nodeID:        *nodeID,
		faults:        injector,
		obs:           ob,
		wal:           walLog,
		recovered:     recovered,
	})
	defer s.close()

	if *debugAddr != "" {
		startDebugListener(*debugAddr, logger)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening",
			"version", buildVersion(), "addr", *addr,
			"workers", eng.Stats().Workers, "timeout", *timeout,
			"queue", *queueCap, "ttl", *ttl)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	logger.Info("shutting down", "grace", shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// Drain the async backlog inside the same grace window: in-flight
	// jobs finish (or are aborted with ErrShutdown as their recorded
	// reason) before the manager closes, so an exiting process never
	// strands a job in a non-terminal state — the property the soak
	// harness's restart cycles assert from outside.
	s.drain(shutdownCtx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// validateNodeID enforces the -node-id grammar: job IDs embed the tag
// between '-' separators, so it must be non-empty alphanumeric and
// short enough to keep IDs readable.
func validateNodeID(id string) error {
	if id == "" {
		return nil
	}
	if len(id) > 32 {
		return fmt.Errorf("-node-id %q too long (max 32 chars)", id)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		default:
			return fmt.Errorf("-node-id %q must be alphanumeric", id)
		}
	}
	return nil
}

// newLogger builds the process logger from the -log-format flag.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// startDebugListener serves net/http/pprof plus a runtime snapshot on
// a second address, kept off the serving listener so profiling can be
// firewalled separately. Routes are registered explicitly rather than
// importing pprof for its DefaultServeMux side effect.
func startDebugListener(addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", func(w http.ResponseWriter, r *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		writeJSON(w, http.StatusOK, map[string]any{
			"goroutines":        runtime.NumGoroutine(),
			"heapAllocBytes":    ms.HeapAlloc,
			"heapSysBytes":      ms.HeapSys,
			"gcPauseTotalNanos": ms.PauseTotalNs,
			"numGC":             ms.NumGC,
			"openFDs":           countOpenFDs(),
			"rssBytes":          readRSSBytes(),
		})
	})
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		logger.Info("debug listener on", "addr", addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("debug listener failed", "err", err)
		}
	}()
}
