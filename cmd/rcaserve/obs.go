// The serving layer's observability bundle: per-request trace IDs and
// span recording (internal/obs), native latency histograms, the
// slow/error trace ring behind GET /debug/requests and the structured
// request log. One middleware wraps the whole routing table, so
// request counting, latency observation and trace capture happen in
// exactly one place — per-handler counters (which used to tick before
// method validation) are gone.

package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dspaddr/internal/deadline"
	"dspaddr/internal/obs"
)

// defaultTraceMin is the slow-trace capture threshold when the
// -trace-min flag (or test option) leaves it zero: requests and async
// jobs at least this slow are retained in the debug ring. Error
// responses are retained regardless of duration.
const defaultTraceMin = 10 * time.Millisecond

// observability bundles the obs surfaces one server instance owns.
// Construct it before the engine so the solve histogram can be handed
// to engine.Options.SolveHist.
type observability struct {
	logger   *slog.Logger
	ring     *obs.TraceRing
	traceMin time.Duration // <0 captures everything, 0 = defaultTraceMin

	httpReqs      *obs.CounterVec
	httpHist      *obs.HistogramVec
	queueWaitHist *obs.Histogram
	runHist       *obs.Histogram
	solveHist     *obs.Histogram

	// WAL durability timings; populated only when -wal-dir is set but
	// constructed unconditionally so the bundle exists before the log.
	walAppendHist *obs.Histogram
	walFsyncHist  *obs.Histogram
	walReplayHist *obs.Histogram
}

// newObservability builds the bundle. A nil logger discards (tests);
// ringSize <= 0 selects obs.DefaultRingSize.
func newObservability(logger *slog.Logger, traceMin time.Duration, ringSize int) *observability {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &observability{
		logger:   logger,
		ring:     obs.NewTraceRing(ringSize),
		traceMin: traceMin,
		httpReqs: obs.NewCounterVec("rcaserve_http_route_requests_total",
			"HTTP requests served, by route and status.", []string{"route", "status"}),
		httpHist: obs.NewHistogramVec("rcaserve_http_request_duration_seconds",
			"HTTP handler latency, by route and status.", []string{"route", "status"}, nil),
		queueWaitHist: obs.NewHistogram("rcaserve_job_queue_wait_duration_seconds",
			"Async job queue wait (submission to dispatch).", nil),
		runHist: obs.NewHistogram("rcaserve_job_run_duration_seconds",
			"Async job run time (dispatch to completion).", nil),
		solveHist: obs.NewHistogram("rcaserve_engine_solve_duration_seconds",
			"Engine solve latency (cache misses only).", nil),
		walAppendHist: obs.NewHistogram("rcaserve_wal_append_duration_seconds",
			"WAL record append latency (build + write + inline fsync under the always policy).", nil),
		walFsyncHist: obs.NewHistogram("rcaserve_wal_fsync_duration_seconds",
			"WAL segment fsync latency.", nil),
		walReplayHist: obs.NewHistogram("rcaserve_wal_replay_duration_seconds",
			"WAL boot replay duration.", nil),
	}
}

// threshold resolves the effective slow-trace capture bound.
func (ob *observability) threshold() time.Duration {
	switch {
	case ob.traceMin < 0:
		return 0
	case ob.traceMin == 0:
		return defaultTraceMin
	default:
		return ob.traceMin
	}
}

// statusWriter captures the response status for labeling.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// instrument is the single request wrapper: it assigns (or accepts)
// the trace ID, threads a span recorder through the request context,
// honors the propagated deadline budget (X-Deadline-Ms becomes a
// context deadline; a budget already spent on arrival is a counted
// 504 without touching the handler), applies armed response faults,
// counts the request by route+status after the handler ran, observes
// the latency histogram, retains slow and failed traces in the debug
// ring and logs failures with their trace ID.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := requestID(r)
		tr := obs.NewTrace(id)
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		ctx := obs.NewContext(r.Context(), tr)
		budget, hasBudget := deadline.FromHeader(r.Header)
		if hasBudget && budget <= 0 {
			s.deadlineExpired.Add(1)
			writeError(sw, http.StatusGatewayTimeout, "deadline budget spent before arrival")
		} else {
			if hasBudget {
				var cancel context.CancelFunc
				ctx, cancel = deadline.With(ctx, budget)
				defer cancel()
			}
			if s.faults != nil {
				if err := s.faults.BeforeResponse(ctx); err != nil {
					// Blackhole: drop the connection without writing a
					// response — the peer sees a transport error, never
					// a synthesized status.
					panic(http.ErrAbortHandler)
				}
			}
			next.ServeHTTP(sw, r.WithContext(ctx))
		}
		dur := time.Since(start)

		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		route := routeOf(r.URL.Path)
		statusText := strconv.Itoa(status)
		s.requests.Add(1)
		s.obs.httpReqs.Add(1, route, statusText)
		s.obs.httpHist.Observe(dur, route, statusText)

		// A canceled request (client gone OR deadline budget expired)
		// may have abandoned a solve that is still unwinding on a
		// worker recording spans into this trace — so neither snapshot
		// its span storage nor recycle it; retain a span-free record
		// from what the middleware itself knows and leak the trace to
		// the GC.
		abandoned := ctx.Err() != nil
		if captureTrace(status, dur, s.obs.threshold()) {
			if abandoned {
				s.obs.ring.Add(&obs.TraceSnapshot{
					ID: id, Route: route, Status: status,
					Error:          ctx.Err().Error(),
					StartedAt:      start,
					DurationMicros: dur.Microseconds(),
				})
			} else {
				s.obs.ring.Add(tr.Snapshot(route, status, "", dur))
			}
		}
		if status >= http.StatusInternalServerError {
			s.obs.logger.Warn("request failed",
				"traceId", id, "route", route, "status", status, "durMs", dur.Milliseconds())
		}
		if !abandoned {
			tr.Release()
		}
	})
}

// captureTrace decides retention: server errors always, solve-level
// failures (422/504) always, anything at or above the slow threshold.
func captureTrace(status int, dur, min time.Duration) bool {
	return status >= http.StatusInternalServerError ||
		status == http.StatusUnprocessableEntity ||
		status == http.StatusGatewayTimeout ||
		dur >= min
}

// requestID accepts a well-formed client-supplied X-Request-Id or
// generates one.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); validRequestID(id) {
		return id
	}
	return fmt.Sprintf("r-%016x", rand.Uint64())
}

// validRequestID bounds what we echo back into headers, logs and
// JSON: non-empty, at most 128 bytes, printable ASCII without quotes.
func validRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= ' ' || c > '~' || c == '"' {
			return false
		}
	}
	return true
}

// routeOf normalizes a request path to a bounded label set, so the
// by-route families can't grow cardinality from scanner traffic.
func routeOf(path string) string {
	switch path {
	case "/v1/allocate", "/v1/batch", "/v1/jobs", "/v1/stats",
		"/metrics", "/healthz", "/debug/soak", "/debug/requests":
		return path
	}
	if strings.HasPrefix(path, "/v1/jobs/") {
		return "/v1/jobs/{id}"
	}
	return "other"
}

// debugRequestsJSON is the GET /debug/requests body.
type debugRequestsJSON struct {
	// Count is the number of traces returned after filtering.
	Count int `json:"count"`
	// Traces are the retained slow/error traces, newest first, each
	// with its phase breakdown.
	Traces []*obs.TraceSnapshot `json:"traces"`
}

// handleDebugRequests serves GET /debug/requests?min_ms=&limit=: the
// retained slow/error traces, newest first.
func (s *server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	minMS := 0.0
	if raw := q.Get("min_ms"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad min_ms")
			return
		}
		minMS = v
	}
	limit, err := queryInt(q.Get("limit"), 0)
	if err != nil || limit < 0 {
		writeError(w, http.StatusBadRequest, "bad limit")
		return
	}
	all := s.obs.ring.Snapshots()
	out := make([]*obs.TraceSnapshot, 0, len(all))
	for _, snap := range all {
		if float64(snap.DurationMicros) >= minMS*1000 {
			out = append(out, snap)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	writeJSON(w, http.StatusOK, debugRequestsJSON{Count: len(out), Traces: out})
}
