package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"dspaddr/internal/engine"
	"dspaddr/internal/jobs"
)

// doMethod issues a bodyless request and decodes the JSON response.
func doMethod(t *testing.T, method, url string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// waitJobDone polls a job to a terminal state.
func waitJobDone(t *testing.T, base, id string) jobStatusJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st jobStatusJSON
		if status := doMethod(t, http.MethodGet, base+"/v1/jobs/"+id, &st); status != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, status)
		}
		if jobs.State(st.State).Terminal() {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobStatusJSON{}
}

// TestAsyncSingleJobLifecycle submits one pattern job, polls it done
// and checks the result matches the synchronous answer.
func TestAsyncSingleJobLifecycle(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 2})
	body := `{
		"pattern": {"offsets": [1, 0, 2, -1, 1, 0, -2]},
		"agu": {"registers": 2, "modifyRange": 1}
	}`
	var sub submitResponseJSON
	if status := do(t, ts.URL+"/v1/jobs", body, &sub); status != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", status)
	}
	if sub.ID == "" || len(sub.IDs) != 1 || sub.IDs[0] != sub.ID {
		t.Fatalf("submit response off: %+v", sub)
	}
	st := waitJobDone(t, ts.URL, sub.ID)
	if st.State != string(jobs.StateDone) {
		t.Fatalf("state %s: %+v", st.State, st)
	}
	if st.Result == nil || len(st.Result.Results) != 1 {
		t.Fatalf("missing result: %+v", st)
	}
	if st.StartedAt == nil || st.FinishedAt == nil || st.QueueWaitMicros < 0 {
		t.Fatalf("lifecycle fields off: %+v", st)
	}
	var sync jobResponseJSON
	if status := do(t, ts.URL+"/v1/allocate", body, &sync); status != http.StatusOK {
		t.Fatalf("sync status %d", status)
	}
	if got, want := st.Result.Results[0], sync.Results[0]; got.Cost != want.Cost ||
		got.RegistersUsed != want.RegistersUsed || got.VirtualRegisters != want.VirtualRegisters {
		t.Fatalf("async result %+v differs from sync %+v", got, want)
	}
}

// TestAsyncBatchMatchesSync is the end-to-end acceptance check:
// submit a 1,000-job batch via POST /v1/jobs, poll every job to
// completion and verify each allocation matches the synchronous
// /v1/batch answer for the same payload.
func TestAsyncBatchMatchesSync(t *testing.T) {
	const n = 1000
	ts := newTestServerWith(t, engine.Options{Workers: 8},
		serverOptions{queueCapacity: 2 * n, version: "test"})

	// ~40 distinct shapes repeated across the batch: realistic (DSP
	// programs reuse access shapes) and it exercises the cache.
	rng := rand.New(rand.NewSource(42))
	entries := make([]string, n)
	for i := range entries {
		shape := rng.Intn(40)
		offs := make([]string, 3+shape%5)
		for j := range offs {
			offs[j] = fmt.Sprint((j*7+shape*3)%11 - 5)
		}
		entries[i] = fmt.Sprintf(`{"pattern": {"offsets": [%s]}, "agu": {"registers": 2, "modifyRange": 1}}`,
			strings.Join(offs, ","))
	}
	batch := `{"jobs": [` + strings.Join(entries, ",") + `]}`

	var sync batchResponseJSON
	if status := do(t, ts.URL+"/v1/batch", batch, &sync); status != http.StatusOK {
		t.Fatalf("sync batch status %d", status)
	}

	var sub submitResponseJSON
	if status := do(t, ts.URL+"/v1/jobs", batch, &sub); status != http.StatusAccepted {
		t.Fatalf("async submit status %d, want 202", status)
	}
	if len(sub.IDs) != n {
		t.Fatalf("got %d ids, want %d", len(sub.IDs), n)
	}
	for i, id := range sub.IDs {
		st := waitJobDone(t, ts.URL, id)
		if st.State != string(jobs.StateDone) {
			t.Fatalf("job %d state %s (%s)", i, st.State, st.Error)
		}
		got, want := st.Result.Results[0], sync.Results[i].Results[0]
		if got.Cost != want.Cost || got.RegistersUsed != want.RegistersUsed ||
			got.VirtualRegisters != want.VirtualRegisters || got.Report != want.Report {
			t.Fatalf("job %d async %+v differs from sync %+v", i, got, want)
		}
	}

	// The listing pages over everything we just ran.
	var list listResponseJSON
	if status := doMethod(t, http.MethodGet, ts.URL+"/v1/jobs?state=done&limit=10", &list); status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	if list.Total != n || len(list.Jobs) != 10 {
		t.Fatalf("list: %d jobs, total %d", len(list.Jobs), list.Total)
	}
}

// TestAsyncQueueFull submits a batch larger than the queue and checks
// the atomic 429 + Retry-After rejection.
func TestAsyncQueueFull(t *testing.T) {
	ts := newTestServerWith(t, engine.Options{Workers: 1},
		serverOptions{queueCapacity: 4, version: "test"})
	entries := make([]string, 8)
	for i := range entries {
		entries[i] = `{"pattern": {"offsets": [1, 0, 2]}, "agu": {"registers": 1, "modifyRange": 1}}`
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"jobs": [`+strings.Join(entries, ",")+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Nothing of the rejected batch is tracked.
	var list listResponseJSON
	doMethod(t, http.MethodGet, ts.URL+"/v1/jobs", &list)
	if list.Total != 0 {
		t.Fatalf("rejected batch left %d jobs behind", list.Total)
	}
}

// TestAsyncCancelQueued parks the executor, queues a second job and
// cancels it before it runs.
func TestAsyncCancelQueued(t *testing.T) {
	release := make(chan struct{})
	gated := func(ctx context.Context, payload any) (any, error) {
		select {
		case <-release:
			return jobResponseJSON{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	defer close(release)
	ts := newTestServerWith(t, engine.Options{Workers: 1},
		serverOptions{runners: 1, run: gated, version: "test"})

	job := `{"pattern": {"offsets": [1, 0]}, "agu": {"registers": 1, "modifyRange": 1}}`
	var blocker, queued submitResponseJSON
	do(t, ts.URL+"/v1/jobs", job, &blocker)
	deadline := time.Now().Add(10 * time.Second)
	for { // wait until the blocker occupies the only runner
		var st jobStatusJSON
		doMethod(t, http.MethodGet, ts.URL+"/v1/jobs/"+blocker.ID, &st)
		if st.State == string(jobs.StateRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	do(t, ts.URL+"/v1/jobs", job, &queued)

	var st jobStatusJSON
	if status := doMethod(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, &st); status != http.StatusOK {
		t.Fatalf("cancel status %d", status)
	}
	if st.State != string(jobs.StateCanceled) {
		t.Fatalf("state %s, want canceled", st.State)
	}
	// A second DELETE conflicts with the terminal state.
	if status := doMethod(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil); status != http.StatusConflict {
		t.Fatalf("re-cancel status %d, want 409", status)
	}
}

// TestAsyncEvictionGone finishes a job with a tiny TTL and checks the
// poll degrades to 410 Gone — distinguishable from the 404 an unknown
// ID gets.
func TestAsyncEvictionGone(t *testing.T) {
	ts := newTestServerWith(t, engine.Options{Workers: 1},
		serverOptions{ttl: 20 * time.Millisecond, version: "test"})
	var sub submitResponseJSON
	do(t, ts.URL+"/v1/jobs", `{"pattern": {"offsets": [1, 0]}, "agu": {"registers": 1, "modifyRange": 1}}`, &sub)
	waitJobDone(t, ts.URL, sub.ID)
	time.Sleep(60 * time.Millisecond)
	if status := doMethod(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID, nil); status != http.StatusGone {
		t.Fatalf("evicted job status %d, want 410", status)
	}
	if status := doMethod(t, http.MethodGet, ts.URL+"/v1/jobs/j-00000000-deadbeef", nil); status != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", status)
	}
}

// TestAsyncSubmitValidation covers the submission-time 400 paths.
func TestAsyncSubmitValidation(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"empty submission", `{}`},
		{"empty jobs array", `{"jobs": []}`},
		{"inline and array", `{"pattern": {"offsets": [1]}, "agu": {"registers": 1, "modifyRange": 1}, "jobs": [{"loop": "x", "agu": {"registers": 1, "modifyRange": 1}}]}`},
		{"entry with both", `{"jobs": [{"pattern": {"offsets": [1]}, "loop": "for", "agu": {"registers": 1, "modifyRange": 1}}]}`},
		{"entry with neither", `{"jobs": [{"agu": {"registers": 1, "modifyRange": 1}}]}`},
		{"unknown field", `{"priroity": 3}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if status := do(t, ts.URL+"/v1/jobs", tc.body, nil); status != http.StatusBadRequest {
				t.Errorf("status %d, want 400", status)
			}
		})
	}
	// Semantic failures are per-job, reported on the job itself.
	var sub submitResponseJSON
	if status := do(t, ts.URL+"/v1/jobs", `{"loop": "while (1) {}", "agu": {"registers": 1, "modifyRange": 1}}`, &sub); status != http.StatusAccepted {
		t.Fatalf("bad-loop submit status %d, want 202 (fails async)", status)
	}
	st := waitJobDone(t, ts.URL, sub.ID)
	if st.State != string(jobs.StateFailed) || st.Error == "" {
		t.Fatalf("bad loop job: %+v", st)
	}
}

// TestAsyncPriorityOverturn parks the single executor, submits a bulk
// job then an urgent one, and checks the urgent job runs first.
func TestAsyncPriorityOverturn(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	gated := func(ctx context.Context, payload any) (any, error) {
		started <- payload.(jobJSON).Pattern.Array
		select {
		case <-release:
			return jobResponseJSON{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	defer close(release)
	ts := newTestServerWith(t, engine.Options{Workers: 1},
		serverOptions{runners: 1, run: gated, version: "test"})

	submit := func(array string, prio int) {
		body := fmt.Sprintf(`{"pattern": {"array": %q, "offsets": [1, 0]}, "agu": {"registers": 1, "modifyRange": 1}, "priority": %d}`, array, prio)
		if status := do(t, ts.URL+"/v1/jobs", body, nil); status != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", array, status)
		}
	}
	submit("blocker", 0)
	if got := <-started; got != "blocker" {
		t.Fatalf("first started %q", got)
	}
	submit("bulk", 0)
	submit("urgent", 9)
	release <- struct{}{} // let the blocker finish; next pop decides
	if got := <-started; got != "urgent" {
		t.Fatalf("after blocker, %q started; want urgent to overtake bulk", got)
	}
	release <- struct{}{}
	<-started // bulk
}

// promLine matches one Prometheus text-format sample.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [-+0-9.eE]+(e[-+][0-9]+)?$`)

// TestMetricsEndpoint runs a small workload and checks /metrics is
// well-formed Prometheus text whose counters reflect the run.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 2})
	var sub submitResponseJSON
	do(t, ts.URL+"/v1/jobs", `{"jobs": [
		{"pattern": {"offsets": [1, 0, 2]}, "agu": {"registers": 1, "modifyRange": 1}},
		{"pattern": {"offsets": [1, 0, 2]}, "agu": {"registers": 1, "modifyRange": 1}},
		{"loop": "bad source", "agu": {"registers": 1, "modifyRange": 1}}
	]}`, &sub)
	for _, id := range sub.IDs {
		waitJobDone(t, ts.URL, id)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples := map[string]float64{}
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed metrics line: %q", line)
		}
		// No exported label value contains a space, so the last field
		// is the value and the rest is the sample name.
		cut := strings.LastIndex(line, " ")
		var value float64
		fmt.Sscanf(line[cut+1:], "%g", &value)
		samples[line[:cut]] = value
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}

	checks := map[string]float64{
		"rcaserve_jobs_submitted_total":                3,
		`rcaserve_jobs_finished_total{state="done"}`:   2,
		`rcaserve_jobs_finished_total{state="failed"}`: 1,
		"rcaserve_queue_depth":                         0,
		"rcaserve_jobs_running":                        0,
		"rcaserve_store_size":                          3,
	}
	for name, want := range checks {
		got, ok := samples[name]
		if !ok {
			t.Errorf("metric %s missing", name)
		} else if got != want {
			t.Errorf("metric %s = %g, want %g", name, got, want)
		}
	}
	for _, name := range []string{
		"rcaserve_engine_cache_hits_total", "rcaserve_engine_cache_misses_total",
		"rcaserve_engine_deduped_total", "rcaserve_engine_cache_entries",
		"rcaserve_engine_cache_capacity", "rcaserve_engine_cache_shards",
		`rcaserve_job_run_seconds{quantile="0.5"}`, `rcaserve_job_queue_wait_seconds{quantile="0.99"}`,
		"rcaserve_store_evictions_total", "rcaserve_jobs_rejected_total",
		"rcaserve_http_requests_total", "rcaserve_uptime_seconds",
		`rcaserve_build_info{version="test"}`,
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("metric %s missing", name)
		}
	}
	if samples["rcaserve_engine_cache_hits_total"] < 1 {
		t.Error("repeated pattern produced no engine cache hit")
	}
	if samples["rcaserve_engine_cache_capacity"] <= 0 {
		t.Error("cache capacity gauge not positive")
	}
	if n := samples["rcaserve_engine_cache_shards"]; n < 1 || float64(int(n)) != n || int(n)&(int(n)-1) != 0 {
		t.Errorf("cache shard gauge %g is not a positive power of two", n)
	}
}

// TestJobsMethodNotAllowed checks verb enforcement on the async
// endpoints.
func TestJobsMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 1})
	if status := doMethod(t, http.MethodDelete, ts.URL+"/v1/jobs", nil); status != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /v1/jobs: status %d", status)
	}
	if status := do(t, ts.URL+"/v1/jobs/some-id", `{}`, nil); status != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/jobs/{id}: status %d", status)
	}
	if status := do(t, ts.URL+"/metrics", `{}`, nil); status != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status %d", status)
	}
}
