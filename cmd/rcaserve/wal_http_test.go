// HTTP-level durability tests: the WAL threaded end to end through
// the serving layer — restart recovery, the stats/metrics surfaces
// and the deterministic 503 during drain.

package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dspaddr/internal/engine"
	"dspaddr/internal/jobs"
	"dspaddr/internal/wal"
)

// newWALServer opens (or reopens) a WAL in dir and builds a test
// server over it, returning the httptest server and the *server so
// tests can drive drain/close ordering directly.
func newWALServer(t *testing.T, dir string, sopts serverOptions) (*httptest.Server, *server) {
	t.Helper()
	log, rep, err := wal.Open(dir, wal.Options{Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	sopts.wal = log
	sopts.recovered = rep.Jobs
	if sopts.obs == nil {
		sopts.obs = newObservability(nil, -1, 0)
	}
	if sopts.version == "" {
		sopts.version = "test"
	}
	eng := engine.New(engine.Options{Workers: 2, SolveHist: sopts.obs.solveHist})
	s := newServer(eng, sopts)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.close()
		eng.Close()
	})
	return ts, s
}

const walSubmitBody = `{
	"pattern": {"offsets": [1, 0, 2, -1, 1, 0, -2]},
	"agu": {"registers": 2, "modifyRange": 1}
}`

// TestWALRestartPreservesResults is the HTTP durability loop: submit
// against one server instance, let it finish, shut that instance
// down, then boot a second one over the same WAL directory — the same
// job ID must answer with the identical result, served from replay.
func TestWALRestartPreservesResults(t *testing.T) {
	dir := t.TempDir()
	ts1, s1 := newWALServer(t, dir, serverOptions{})

	var sub submitResponseJSON
	if code := do(t, ts1.URL+"/v1/jobs", walSubmitBody, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	first := waitJobDone(t, ts1.URL, sub.ID)
	if first.State != string(jobs.StateDone) || first.Result == nil || len(first.Result.Results) != 1 {
		t.Fatalf("first instance outcome malformed: %+v", first)
	}

	// Clean shutdown: the manager closes (and syncs) the log.
	ts1.Close()
	s1.close()

	ts2, _ := newWALServer(t, dir, serverOptions{})
	var second jobStatusJSON
	if code := doMethod(t, http.MethodGet, ts2.URL+"/v1/jobs/"+sub.ID, &second); code != http.StatusOK {
		t.Fatalf("recovered job lookup: status %d", code)
	}
	if second.State != string(jobs.StateDone) || second.Result == nil || len(second.Result.Results) != 1 {
		t.Fatalf("recovered job not done with a result: %+v", second)
	}
	a, b := first.Result.Results[0], second.Result.Results[0]
	if a.Cost != b.Cost || a.RegistersUsed != b.RegistersUsed || a.Report != b.Report {
		t.Errorf("recovered result drifted:\n first: %+v\nsecond: %+v", a, b)
	}
	if second.Priority != first.Priority || second.TraceID != first.TraceID {
		t.Errorf("recovered metadata drifted: %+v vs %+v", second, first)
	}

	stats := getStats(t, ts2)
	if stats.WAL == nil {
		t.Fatal("stats missing wal block with durability on")
	}
	if stats.WAL.Replay.JobsTerminal != 1 || stats.WAL.Replay.JobsRequeued != 0 {
		t.Errorf("replay stats %+v, want exactly 1 terminal job", stats.WAL.Replay)
	}
	if stats.AsyncJobs.Recovered != 1 {
		t.Errorf("recovered counter = %d, want 1", stats.AsyncJobs.Recovered)
	}
	if stats.WAL.Replay.TornBytes != 0 || stats.WAL.Replay.SegmentsDropped != 0 {
		t.Errorf("clean shutdown reported damage: %+v", stats.WAL.Replay)
	}
}

// TestWALMetricsExposed: the rcaserve_wal_* families appear exactly
// when durability is on, and never on a plain server.
func TestWALMetricsExposed(t *testing.T) {
	ts, _ := newWALServer(t, t.TempDir(), serverOptions{})
	var sub submitResponseJSON
	if code := do(t, ts.URL+"/v1/jobs", walSubmitBody, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitJobDone(t, ts.URL, sub.ID)

	// The finish record is coalesced in user space until the flusher
	// tick (~100ms) lands it, so poll for both records to be appended.
	deadline := time.Now().Add(10 * time.Second)
	body := getBody(t, ts.URL+"/metrics")
	for !strings.Contains(body, "rcaserve_wal_records_appended_total 2\n") && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		body = getBody(t, ts.URL+"/metrics")
	}
	for _, family := range []string{
		"rcaserve_wal_segments ",
		"rcaserve_wal_size_bytes",
		"rcaserve_wal_fsyncs_total",
		"rcaserve_jobs_recovered_total",
		"rcaserve_wal_append_duration_seconds_bucket",
		"rcaserve_wal_replay_duration_seconds_count",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("metrics missing %q", family)
		}
	}
	// Exactly the submit and finish records have been appended.
	if !strings.Contains(body, "rcaserve_wal_records_appended_total 2\n") {
		t.Errorf("expected 2 appended records, metrics line: %q",
			metricLine(body, "rcaserve_wal_records_appended_total"))
	}

	ts2 := newTestServer(t, engine.Options{Workers: 1})
	if body2 := getBody(t, ts2.URL+"/metrics"); strings.Contains(body2, "rcaserve_wal_") {
		t.Error("wal metric families leaked into a non-durable server")
	}
}

// TestSubmitDuringDrainHTTP: once the manager starts draining, job
// submission answers 503 with a Retry-After header — a deterministic
// refusal, not a race with shutdown internals.
func TestSubmitDuringDrainHTTP(t *testing.T) {
	release := make(chan struct{})
	ts, s := newWALServer(t, t.TempDir(), serverOptions{
		runners: 1,
		run: func(ctx context.Context, payload any) (any, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return jobResponseJSON{}, nil
		},
	})

	var sub submitResponseJSON
	if code := do(t, ts.URL+"/v1/jobs", walSubmitBody, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	// Wait until the job occupies the single runner, so drain cannot
	// complete before we probe it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st jobStatusJSON
		doMethod(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID, &st)
		if st.State == string(jobs.StateRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.drain(context.Background())
	}()

	got503 := false
	for !got503 && time.Now().Before(deadline) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(walSubmitBody))
		if err != nil {
			t.Fatal(err)
		}
		code, retry := resp.StatusCode, resp.Header.Get("Retry-After")
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		switch code {
		case http.StatusAccepted:
			time.Sleep(time.Millisecond) // drain not engaged yet
		case http.StatusServiceUnavailable:
			got503 = true
			if retry != "1" {
				t.Errorf("503 without Retry-After: %q", retry)
			}
		default:
			t.Fatalf("submit during drain: status %d", code)
		}
	}
	if !got503 {
		t.Fatal("never observed a 503 while draining")
	}

	close(release)
	wg.Wait()
}

// getBody fetches a URL and returns the response body as a string.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricLine extracts one sample line from exposition text.
func metricLine(body, name string) string {
	for _, l := range strings.Split(body, "\n") {
		if strings.HasPrefix(l, name) {
			return l
		}
	}
	return ""
}
