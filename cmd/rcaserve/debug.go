// GET/POST /debug/soak: process introspection for the soak & chaos
// harness. The endpoint exists only when the process was started with
// -faults — it is a testing surface, not part of the serving API —
// and reports exactly the observables the harness's invariant oracle
// needs from outside the process boundary: goroutine count, open file
// descriptors, resident set size and the fault injector's schedule
// and firing counters. POST re-arms the solve-side fault schedule on
// a live process, so a scenario can turn chaos on and off mid-run
// without a restart.

package main

import (
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dspaddr/internal/faults"
)

// debugSoakJSON is the GET /debug/soak body.
type debugSoakJSON struct {
	// Goroutines and OpenFDs are the leak-check observables: the soak
	// harness samples them after warmup and before shutdown and
	// asserts the delta stays within a slack bound.
	Goroutines int `json:"goroutines"`
	OpenFDs    int `json:"openFDs"`
	// RSSBytes is the resident set size from /proc/self/statm
	// (0 where procfs is unavailable).
	RSSBytes int64 `json:"rssBytes"`
	// Faults is the injector's live schedule and firing counters.
	Faults faults.Stats `json:"faults"`
	// UptimeSeconds mirrors /v1/stats for convenience.
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// rearmJSON is the POST /debug/soak body.
type rearmJSON struct {
	// Faults is the new injection spec (see internal/faults.Parse);
	// "none" disarms without removing the endpoint. A ttl-div change
	// is recorded but cannot retroactively change the store's TTL.
	Faults string `json:"faults"`
}

// handleDebugSoak serves the soak introspection endpoint.
func (s *server) handleDebugSoak(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, debugSoakJSON{
			Goroutines:    runtime.NumGoroutine(),
			OpenFDs:       countOpenFDs(),
			RSSBytes:      readRSSBytes(),
			Faults:        s.faults.Snapshot(),
			UptimeSeconds: time.Since(s.started).Seconds(),
		})
	case http.MethodPost:
		var req rearmJSON
		if err := decodeBody(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if err := s.faults.Rearm(req.Faults); err != nil {
			writeError(w, http.StatusBadRequest, "bad faults spec: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, s.faults.Snapshot())
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// countOpenFDs counts /proc/self/fd entries; -1 where procfs is
// unavailable (non-Linux), which the harness treats as "skip the fd
// leak check".
func countOpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// readRSSBytes parses the resident field of /proc/self/statm.
func readRSSBytes() int64 {
	raw, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(raw))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
