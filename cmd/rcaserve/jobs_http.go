// The asynchronous job lifecycle API over internal/jobs.
//
// Where /v1/allocate and /v1/batch hold the connection for the whole
// solve, /v1/jobs accepts the same payloads, answers 202 with job IDs
// immediately and lets clients poll — the shape long-running compile
// campaigns need. Admission is bounded: a submission that does not
// fit the queue is refused with 429 + Retry-After instead of building
// an invisible backlog.
//
//	POST   /v1/jobs       submit one job or a batch (202, 429 when full)
//	GET    /v1/jobs       paginated listing (?state=&offset=&limit=)
//	GET    /v1/jobs/{id}  status + result (404 unknown, 410 evicted)
//	DELETE /v1/jobs/{id}  cancel queued or running work (409 if done)

package main

import (
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dspaddr/internal/jobs"
	"dspaddr/internal/obs"
)

// submitJSON is the POST /v1/jobs request body: either one inline job
// (the jobJSON fields) or a batch under "jobs" — the same payloads
// the synchronous endpoints take — plus a scheduling priority.
type submitJSON struct {
	jobJSON
	// Jobs is the batch form; mutually exclusive with the inline
	// single-job fields.
	Jobs []jobJSON `json:"jobs,omitempty"`
	// Priority orders dispatch: higher runs first, equal priorities
	// stay FIFO. The whole submission shares one priority.
	Priority int `json:"priority,omitempty"`
}

// submitResponseJSON is the 202 body: one ID per submitted job, in
// payload order; ID duplicates the single entry for one-job
// submissions.
type submitResponseJSON struct {
	ID  string   `json:"id,omitempty"`
	IDs []string `json:"ids"`
}

// jobStatusJSON is the wire form of one job's status snapshot.
type jobStatusJSON struct {
	ID              string           `json:"id"`
	State           string           `json:"state"`
	Priority        int              `json:"priority"`
	SubmittedAt     time.Time        `json:"submittedAt"`
	StartedAt       *time.Time       `json:"startedAt,omitempty"`
	FinishedAt      *time.Time       `json:"finishedAt,omitempty"`
	QueueWaitMicros int64            `json:"queueWaitMicros"`
	RunMicros       int64            `json:"runMicros"`
	Error           string           `json:"error,omitempty"`
	Result          *jobResponseJSON `json:"result,omitempty"`
	// TraceID links the job back to the submitting request (and to
	// its own slow-trace entry under /debug/requests).
	TraceID string `json:"traceId,omitempty"`
}

// listResponseJSON is the GET /v1/jobs body.
type listResponseJSON struct {
	Jobs   []jobStatusJSON `json:"jobs"`
	Total  int             `json:"total"`
	Offset int             `json:"offset"`
	Limit  int             `json:"limit"`
}

// toStatusJSON renders a jobs.Status for the wire.
func toStatusJSON(st jobs.Status) jobStatusJSON {
	out := jobStatusJSON{
		ID:              st.ID,
		State:           string(st.State),
		Priority:        st.Priority,
		SubmittedAt:     st.SubmittedAt,
		QueueWaitMicros: st.QueueWait.Microseconds(),
		RunMicros:       st.RunTime.Microseconds(),
		TraceID:         st.TraceID,
	}
	if !st.StartedAt.IsZero() {
		t := st.StartedAt
		out.StartedAt = &t
	}
	if !st.FinishedAt.IsZero() {
		t := st.FinishedAt
		out.FinishedAt = &t
	}
	if st.Err != nil {
		out.Error = st.Err.Error()
	}
	if resp, ok := st.Result.(jobResponseJSON); ok {
		out.Result = &resp
	}
	return out
}

// handleJobsCollection routes /v1/jobs: POST submits, GET lists.
func (s *server) handleJobsCollection(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		s.handleJobList(w, r)
	default:
		writeError(w, http.StatusMethodNotAllowed, "POST or GET only")
	}
}

// handleJobSubmit serves POST /v1/jobs: validate the payload shape
// up front (cheap), admit atomically, answer 202 with the IDs — or
// 429 with Retry-After when the queue cannot take the submission.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var sub submitJSON
	if err := decodeBody(r, &sub); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	single := sub.Pattern != nil || sub.Loop != ""
	if single && len(sub.Jobs) > 0 {
		writeError(w, http.StatusBadRequest, "body mixes an inline job with a jobs array; pick one form")
		return
	}
	entries := sub.Jobs
	if single {
		entries = []jobJSON{sub.jobJSON}
	}
	if len(entries) == 0 {
		writeError(w, http.StatusBadRequest, "submission has no jobs")
		return
	}
	payloads := make([]any, len(entries))
	for i, job := range entries {
		// Shape errors are caught at admission; semantic errors
		// (bad loop source, infeasible AGU) surface on the job
		// itself, exactly as the sync endpoints report them per job.
		if job.Pattern != nil && job.Loop != "" {
			writeError(w, http.StatusBadRequest, "job %d sets both pattern and loop; pick one", i)
			return
		}
		if job.Pattern == nil && job.Loop == "" {
			writeError(w, http.StatusBadRequest, "job %d needs a pattern or a loop", i)
			return
		}
		payloads[i] = job
	}
	ids, err := s.jobs.SubmitTraced(r.Context(), payloads, sub.Priority, obs.FromContext(r.Context()).ID())
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		// Retry-After tracks the observed drain rate (median run time ×
		// depth / runners) instead of a constant, so clients back off
		// proportionally to the actual backlog.
		w.Header().Set("Retry-After", strconv.Itoa(s.jobs.RetryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "job queue full (%d jobs submitted against capacity %d); retry later or shrink the batch",
			len(payloads), s.jobs.QueueCapacity())
		return
	case errors.Is(err, jobs.ErrShuttingDown):
		// A graceful drain (or a restart) is in progress: deterministic
		// 503 with a short Retry-After, so well-behaved clients resubmit
		// against the replacement process instead of erroring out.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "server is draining; retry shortly")
		return
	case err != nil:
		writeError(w, http.StatusServiceUnavailable, "submission failed: %v", err)
		return
	}
	resp := submitResponseJSON{IDs: ids}
	if len(ids) == 1 {
		resp.ID = ids[0]
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// listLimits bound GET /v1/jobs pages.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// handleJobList serves GET /v1/jobs?state=&offset=&limit=.
func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := jobs.State(q.Get("state"))
	if state != "" && !jobs.ValidState(state) {
		writeError(w, http.StatusBadRequest, "unknown state %q", state)
		return
	}
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil || offset < 0 {
		writeError(w, http.StatusBadRequest, "bad offset")
		return
	}
	limit, err := queryInt(q.Get("limit"), defaultListLimit)
	if err != nil || limit <= 0 {
		writeError(w, http.StatusBadRequest, "bad limit")
		return
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}
	statuses, total := s.jobs.List(state, offset, limit)
	resp := listResponseJSON{
		Jobs:   make([]jobStatusJSON, len(statuses)),
		Total:  total,
		Offset: offset,
		Limit:  limit,
	}
	for i, st := range statuses {
		resp.Jobs[i] = toStatusJSON(st)
	}
	writeJSON(w, http.StatusOK, resp)
}

func queryInt(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}

// handleJobByID routes /v1/jobs/{id}: GET polls, DELETE cancels.
func (s *server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "no such resource")
		return
	}
	switch r.Method {
	case http.MethodGet:
		st, err := s.jobs.Get(id)
		if err != nil {
			writeJobLookupError(w, id, err)
			return
		}
		writeJSON(w, http.StatusOK, toStatusJSON(st))
	case http.MethodDelete:
		st, err := s.jobs.Cancel(id)
		switch {
		case errors.Is(err, jobs.ErrFinished):
			writeError(w, http.StatusConflict, "job %s already finished (%s)", id, st.State)
		case err != nil:
			writeJobLookupError(w, id, err)
		default:
			writeJSON(w, http.StatusOK, toStatusJSON(st))
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or DELETE only")
	}
}

// writeJobLookupError maps store lookup failures: unknown IDs are
// 404s, evicted results are 410s (the job existed; its result is
// gone for good).
func writeJobLookupError(w http.ResponseWriter, id string, err error) {
	if errors.Is(err, jobs.ErrEvicted) {
		writeError(w, http.StatusGone, "job %s: result evicted (TTL or capacity)", id)
		return
	}
	writeError(w, http.StatusNotFound, "job %s not found", id)
}
