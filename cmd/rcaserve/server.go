package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dspaddr/internal/core"
	"dspaddr/internal/engine"
	"dspaddr/internal/faults"
	"dspaddr/internal/frontend"
	"dspaddr/internal/jobs"
	"dspaddr/internal/model"
	"dspaddr/internal/obs"
	"dspaddr/internal/wal"
)

// maxBodyBytes caps request bodies; allocation requests are tiny, so
// anything bigger is abuse.
const maxBodyBytes = 1 << 20

// serverOptions configures the service pieces that sit above the
// engine: the async job queue, result store and build identity.
type serverOptions struct {
	// queueCapacity bounds admitted-but-not-started async jobs
	// (0 = jobs.DefaultQueueCapacity).
	queueCapacity int
	// storeCapacity bounds retained async results
	// (0 = jobs.DefaultStoreCapacity).
	storeCapacity int
	// ttl is how long finished async results stay fetchable
	// (0 = jobs.DefaultTTL).
	ttl time.Duration
	// runners caps concurrently executing async jobs; 0 means the
	// engine's worker count, so the async path alone can saturate
	// the solver pool.
	runners int
	// run overrides the async executor; tests use it to gate job
	// completion deterministically. nil means the real engine path.
	run jobs.Runner
	// version is the build identity reported by /healthz, /v1/stats
	// and /metrics.
	version string
	// nodeID, when non-empty, names this node in a cluster: async job
	// IDs carry it as their routing tag (jobs.NodeOf) and /v1/stats
	// and /healthz report it. Alphanumeric only — '-' is the ID
	// separator (validated at the flag).
	nodeID string
	// faults, when non-nil, is the armed chaos injector shared with
	// the engine; it turns on the /debug/soak endpoint (process
	// introspection + live re-arming) and accelerates the job store
	// TTL if the spec says so. Production runs leave it nil.
	faults *faults.Injector
	// obs is the observability bundle (trace ring, histograms,
	// logger). Build it before the engine so Options.SolveHist can
	// point at the same bundle; nil gets a silent default.
	obs *observability
	// wal, when non-nil, is the opened write-ahead log making the
	// async job lifecycle crash-safe; recovered is its boot replay.
	// The job manager takes ownership and closes the log.
	wal       *wal.Log
	recovered []wal.JobState
}

// server wires the batch allocation engine and the async job manager
// to the HTTP API.
type server struct {
	engine   *engine.Engine
	jobs     *jobs.Manager
	version  string
	nodeID   string // "" outside cluster mode
	started  time.Time
	requests atomic.Uint64
	// sheds counts synchronous requests rejected by adaptive load
	// shedding; deadlineExpired counts requests whose propagated
	// X-Deadline-Ms budget was already spent on arrival.
	sheds           atomic.Uint64
	deadlineExpired atomic.Uint64
	faults          *faults.Injector // nil outside soak builds
	obs             *observability
	wal             *wal.Log // nil when durability is off
}

// newServer builds a server around a running engine and starts its
// async job manager; the caller must close() it when done.
func newServer(e *engine.Engine, opts serverOptions) *server {
	s := &server{engine: e, version: opts.version, nodeID: opts.nodeID, started: time.Now(), faults: opts.faults, obs: opts.obs, wal: opts.wal}
	if s.obs == nil {
		s.obs = newObservability(nil, 0, 0)
	}
	if s.version == "" {
		s.version = "unknown"
	}
	runners := opts.runners
	if runners <= 0 {
		runners = e.Stats().Workers
	}
	run := opts.run
	if run == nil {
		run = s.runPayload
	}
	jo := jobs.Options{
		QueueCapacity: opts.queueCapacity,
		StoreCapacity: opts.storeCapacity,
		TTL:           opts.ttl,
		Runners:       runners,
		Run:           run,
		FailState:     jobFailState,
		Faults:        opts.faults,
		QueueWaitHist: s.obs.queueWaitHist,
		RunHist:       s.obs.runHist,
		NodeTag:       opts.nodeID,
	}
	if opts.wal != nil {
		jo.WAL = opts.wal
		jo.Recovered = opts.recovered
		jo.EncodePayload = encodeJobPayload
		jo.DecodePayload = decodeJobPayload
		jo.EncodeResult = encodeJobResult
		jo.DecodeResult = decodeJobResult
	}
	s.jobs = jobs.New(jo)
	return s
}

// The WAL codecs: payloads and results travel as their wire JSON, so
// a replayed job is byte-for-byte the job the client submitted and a
// recovered result renders exactly as it would have before the crash.
func encodeJobPayload(v any) ([]byte, error) { return json.Marshal(v) }

func decodeJobPayload(b []byte) (any, error) {
	var job jobJSON
	if err := json.Unmarshal(b, &job); err != nil {
		return nil, err
	}
	return job, nil
}

func encodeJobResult(v any) ([]byte, error) { return json.Marshal(v) }

func decodeJobResult(b []byte) (any, error) {
	var resp jobResponseJSON
	if err := json.Unmarshal(b, &resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// close releases the async job manager (the engine is owned by the
// caller).
func (s *server) close() { s.jobs.Close() }

// drain gracefully winds down the async job manager: admission stops
// immediately, queued and running jobs get until ctx expires to reach
// a terminal state, and whatever is left is aborted with a recorded
// reason — so a process that drains before exit never leaves a job
// observable as queued or running.
func (s *server) drain(ctx context.Context) { s.jobs.Shutdown(ctx) }

// jobFailState maps engine timeouts to the jobs subsystem's timeout
// state; everything else falls through to the default classification.
func jobFailState(err error) jobs.State {
	if errors.Is(err, engine.ErrTimeout) {
		return jobs.StateTimeout
	}
	return ""
}

// handler returns the service's routing table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/allocate", s.handleAllocate)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/jobs", s.handleJobsCollection)
	mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	if s.faults != nil {
		mux.HandleFunc("/debug/soak", s.handleDebugSoak)
	}
	return s.instrument(mux)
}

// aguJSON is the wire form of model.AGUSpec.
type aguJSON struct {
	// Registers is K, the number of AGU address registers.
	Registers int `json:"registers"`
	// ModifyRange is M, the free post-modify range.
	ModifyRange int `json:"modifyRange"`
}

// patternJSON is the wire form of model.Pattern.
type patternJSON struct {
	// Array names the accessed array (informational).
	Array string `json:"array,omitempty"`
	// Stride is the loop increment per iteration; 0 means 1.
	Stride int `json:"stride,omitempty"`
	// Offsets is the access offset sequence in program order.
	Offsets []int `json:"offsets"`
}

// jobJSON is one allocation job of an /v1/allocate or /v1/batch
// request. Exactly one of Pattern and Loop must be set: Pattern names
// the access pattern directly, Loop is mini-C loop source parsed by
// the frontend. A loop is allocated as a whole — the K registers are
// distributed over its arrays by marginal cost, exactly as
// dspaddr.AllocateLoop does — and yields one result per array.
type jobJSON struct {
	Pattern  *patternJSON   `json:"pattern,omitempty"`
	Loop     string         `json:"loop,omitempty"`
	Bindings map[string]int `json:"bindings,omitempty"`
	AGU      aguJSON        `json:"agu"`
	// Wrap includes inter-iteration updates in the objective.
	Wrap bool `json:"wrap,omitempty"`
	// Strategy selects the phase-2 merge heuristic
	// (greedy|naive|smallest|optimal); empty means greedy.
	Strategy string `json:"strategy,omitempty"`
}

// allocJSON is the wire form of one array's allocation result.
type allocJSON struct {
	Array            string  `json:"array"`
	Offsets          []int   `json:"offsets"`
	Cost             int     `json:"cost"`
	VirtualRegisters int     `json:"virtualRegisters"`
	RegistersUsed    int     `json:"registersUsed"`
	Merged           bool    `json:"merged"`
	CoverExact       bool    `json:"coverExact"`
	Registers        [][]int `json:"registers"`
	// GlobalRegisters maps this array's register indices to loop-wide
	// physical registers (loop jobs only).
	GlobalRegisters []int  `json:"globalRegisters,omitempty"`
	CacheHit        bool   `json:"cacheHit"`
	ElapsedMicros   int64  `json:"elapsedMicros"`
	Report          string `json:"report"`
}

// jobResponseJSON is the outcome of one job: per-array results, or an
// error string.
type jobResponseJSON struct {
	Error   string      `json:"error,omitempty"`
	Results []allocJSON `json:"results,omitempty"`
}

// batchRequestJSON is the /v1/batch request body.
type batchRequestJSON struct {
	Jobs []jobJSON `json:"jobs"`
}

// batchResponseJSON is the /v1/batch response body.
type batchResponseJSON struct {
	Results       []jobResponseJSON `json:"results"`
	ElapsedMicros int64             `json:"elapsedMicros"`
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

// writeJSON marshals v with the given status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone — nothing left to do
}

// writeError sends the uniform error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes the request body into v: unknown fields,
// trailing garbage and oversize bodies are errors.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(any)); !errors.Is(err, io.EOF) {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// toAllocJSON renders one single-pattern allocation for the wire.
func toAllocJSON(res *core.Result, cacheHit bool, elapsedMicros int64) allocJSON {
	out := allocJSON{
		Array:         res.Pattern.Array,
		Offsets:       res.Pattern.Offsets,
		CacheHit:      cacheHit,
		ElapsedMicros: elapsedMicros,
	}
	out.Cost = res.Cost
	out.VirtualRegisters = res.VirtualRegisters
	out.RegistersUsed = res.Assignment.Registers()
	out.Merged = res.Merged
	out.CoverExact = res.CoverExact
	out.Registers = make([][]int, len(res.Assignment.Paths))
	for i, p := range res.Assignment.Paths {
		out.Registers[i] = []int(p)
	}
	out.Report = res.Report()
	return out
}

// runPayload is the async executor: the jobs.Manager hands back the
// submitted wire job and this runs it on the engine exactly like the
// synchronous path, so polled results match /v1/batch answers. When
// the job record carries the submitting request's trace ID, the run
// gets its own span recorder under that ID, and slow or failed runs
// land in the same debug ring as slow HTTP requests (route "job").
func (s *server) runPayload(ctx context.Context, payload any) (any, error) {
	var tr *obs.Trace
	if tid := jobs.ContextTraceID(ctx); tid != "" {
		tr = obs.NewTrace(tid)
		ctx = obs.NewContext(ctx, tr)
	}
	resp, err := s.runJob(ctx, payload.(jobJSON))
	if tr != nil {
		dur := tr.Elapsed()
		if err != nil || dur >= s.obs.threshold() {
			errText := ""
			if err != nil {
				errText = err.Error()
			}
			s.obs.ring.Add(tr.Snapshot("job", 0, errText, dur))
		}
		// Same rule as the HTTP middleware: a canceled run may leave a
		// worker still recording into this trace, so only recycle it
		// when the context is intact.
		if ctx.Err() == nil {
			tr.Release()
		}
	}
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// runJob resolves one wire job and runs it on the engine: a pattern
// job is a single engine request, a loop job is a whole-loop request
// whose response carries one entry per array. The second return value
// is the failure (nil on success), so callers can map error kinds to
// HTTP status codes.
func (s *server) runJob(ctx context.Context, job jobJSON) (jobResponseJSON, error) {
	agu := model.AGUSpec{Registers: job.AGU.Registers, ModifyRange: job.AGU.ModifyRange}
	switch {
	case job.Pattern != nil && job.Loop != "":
		err := errors.New("job sets both pattern and loop; pick one")
		return jobResponseJSON{Error: err.Error()}, err

	case job.Pattern != nil:
		stride := job.Pattern.Stride
		if stride == 0 {
			stride = 1
		}
		res := s.engine.Run(ctx, engine.Request{
			Pattern:        model.Pattern{Array: job.Pattern.Array, Stride: stride, Offsets: job.Pattern.Offsets},
			AGU:            agu,
			InterIteration: job.Wrap,
			Strategy:       job.Strategy,
		})
		if res.Err != nil {
			return jobResponseJSON{Error: res.Err.Error()}, res.Err
		}
		return jobResponseJSON{Results: []allocJSON{
			toAllocJSON(res.Result, res.CacheHit, res.Elapsed.Microseconds()),
		}}, nil

	case job.Loop != "":
		prog, err := frontend.Parse(job.Loop, job.Bindings)
		if err != nil {
			return jobResponseJSON{Error: err.Error()}, err
		}
		res := s.engine.RunLoop(ctx, engine.LoopRequest{
			Loop:           prog.Loop,
			AGU:            agu,
			InterIteration: job.Wrap,
			Strategy:       job.Strategy,
		})
		if res.Err != nil {
			return jobResponseJSON{Error: res.Err.Error()}, res.Err
		}
		resp := jobResponseJSON{Results: make([]allocJSON, 0, len(res.Result.Arrays))}
		for _, aa := range res.Result.Arrays {
			a := toAllocJSON(aa.Result, res.CacheHit, res.Elapsed.Microseconds())
			a.GlobalRegisters = aa.GlobalRegisters
			resp.Results = append(resp.Results, a)
		}
		return resp, nil

	default:
		err := errors.New("job needs a pattern or a loop")
		return jobResponseJSON{Error: err.Error()}, err
	}
}

// shedIfOverloaded applies the adaptive load-shedding policy to a
// synchronous solve path: while the engine's windowed-minimum queue
// wait stands above the shed target, reject with 503 + Retry-After
// instead of joining a queue that guarantees a slow answer. Async
// submissions are never shed — they are queue-depth-bounded already
// and their callers asked to wait.
func (s *server) shedIfOverloaded(w http.ResponseWriter) bool {
	if !s.engine.Overloaded() {
		return false
	}
	s.sheds.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(engine.ShedRetryAfterSeconds()))
	writeError(w, http.StatusServiceUnavailable, "overloaded: queue wait above shed target; retry shortly")
	return true
}

// handleAllocate serves POST /v1/allocate: one job, one response.
// Allocator-level failures map to 422, per-job timeouts to 504.
func (s *server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.shedIfOverloaded(w) {
		return
	}
	var job jobJSON
	if err := decodeBody(r, &job); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp, err := s.runJob(r.Context(), job)
	if err != nil {
		writeJSON(w, statusForJobError(err), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch serves POST /v1/batch: many jobs fanned out over the
// engine's worker pool, results in job order. Per-job failures are
// reported inline; the batch response itself is always 200 once the
// body parses.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.shedIfOverloaded(w) {
		return
	}
	var batch batchRequestJSON
	if err := decodeBody(r, &batch); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(batch.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	start := time.Now()
	resp := batchResponseJSON{Results: make([]jobResponseJSON, len(batch.Jobs))}
	var wg sync.WaitGroup
	for i, job := range batch.Jobs {
		wg.Add(1)
		go func(i int, job jobJSON) {
			defer wg.Done()
			resp.Results[i], _ = s.runJob(r.Context(), job)
		}(i, job)
	}
	wg.Wait()
	resp.ElapsedMicros = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

// statsJSON is the /v1/stats response: engine statistics plus async
// job metrics, build version, process uptime and HTTP request count.
type statsJSON struct {
	engine.Stats
	AsyncJobs jobs.Metrics `json:"asyncJobs"`
	// WAL reports write-ahead log health (segments, appends, fsyncs,
	// compaction, boot replay); absent when durability is off.
	WAL *wal.Stats `json:"wal,omitempty"`
	// NodeID is the cluster identity from -node-id; absent single-node.
	NodeID        string  `json:"nodeId,omitempty"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	HTTPRequests  uint64  `json:"httpRequests"`
	// Sheds counts synchronous requests rejected by adaptive load
	// shedding; DeadlineExpired counts requests whose propagated
	// deadline budget was spent before arrival.
	Sheds           uint64 `json:"sheds"`
	DeadlineExpired uint64 `json:"deadlineExpired"`
}

// handleStats serves GET /v1/stats.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	out := statsJSON{
		Stats:           s.engine.Stats(),
		AsyncJobs:       s.jobs.Metrics(),
		NodeID:          s.nodeID,
		Version:         s.version,
		UptimeSeconds:   time.Since(s.started).Seconds(),
		HTTPRequests:    s.requests.Load(),
		Sheds:           s.sheds.Load(),
		DeadlineExpired: s.deadlineExpired.Load(),
	}
	if s.wal != nil {
		ws := s.wal.Stats()
		out.WAL = &ws
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz serves GET/HEAD /healthz for load-balancer probes.
// The first line is the literal "ok"; the second names the build so
// a probe log identifies what is running.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "GET or HEAD only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok\nrcaserve %s\n", s.version)
	if s.nodeID != "" {
		fmt.Fprintf(w, "node %s\n", s.nodeID)
	}
}

// statusForJobError distinguishes timeout failures (504) — per-job
// solve deadlines and exhausted propagated deadline budgets alike —
// from validation and allocation failures (422) on the single-job
// endpoint.
func statusForJobError(err error) int {
	if errors.Is(err, engine.ErrTimeout) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}
