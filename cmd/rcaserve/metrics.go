// GET /metrics: the service's operational state in Prometheus text
// exposition format (version 0.0.4), hand-rendered — the repo takes
// no client-library dependency for what is a dozen Fprintf calls.
//
// Exported families cover the async pipeline stage by stage (queue
// depth and rejections, running jobs, store size and evictions,
// queue-wait/run latency quantiles AND native histograms), the engine
// underneath (cache hits/misses, solve latency quantiles and
// histogram, terminal outcome counters), HTTP serving (total plus
// by-route/status counts and latency histograms) and the process
// (uptime, build info, goroutines, GC pause, heap, open fds).

package main

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"
)

// handleMetrics serves GET /metrics.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	jm := s.jobs.Metrics()
	es := s.engine.Stats()

	gauge := func(name, help string, v float64) {
		writeMetric(w, name, help, "gauge", v)
	}
	counter := func(name, help string, v float64) {
		writeMetric(w, name, help, "counter", v)
	}

	gauge("rcaserve_queue_depth", "Async jobs admitted but not yet running.", float64(jm.QueueDepth))
	gauge("rcaserve_queue_capacity", "Async job admission bound.", float64(jm.QueueCapacity))
	gauge("rcaserve_jobs_running", "Async jobs currently executing.", float64(jm.Running))
	gauge("rcaserve_job_runners", "Concurrent async job executor cap.", float64(jm.Runners))
	gauge("rcaserve_store_size", "Tracked async jobs (live and finished).", float64(jm.StoreSize))
	gauge("rcaserve_store_capacity", "Retained finished async job bound.", float64(jm.StoreCapacity))
	counter("rcaserve_jobs_submitted_total", "Async jobs admitted.", float64(jm.Submitted))
	counter("rcaserve_jobs_rejected_total", "Async submissions refused by admission control.", float64(jm.Rejected))
	counter("rcaserve_store_evictions_total", "Finished async jobs dropped by TTL or capacity.", float64(jm.Evicted))

	writeHeader(w, "rcaserve_jobs_finished_total", "Async jobs finished, by terminal state.", "counter")
	for _, st := range []struct {
		label string
		v     uint64
	}{
		{"done", jm.Done}, {"failed", jm.Failed},
		{"timeout", jm.TimedOut}, {"canceled", jm.Canceled},
	} {
		fmt.Fprintf(w, "rcaserve_jobs_finished_total{state=%q} %v\n", st.label, st.v)
	}

	if s.wal != nil {
		counter("rcaserve_jobs_recovered_total", "Jobs restored from the write-ahead log at boot.", float64(jm.Recovered))
		counter("rcaserve_jobs_wal_append_errors_total", "WAL appends that failed after the job was admitted (durability degraded).", float64(jm.WALAppendErrors))
		ws := s.wal.Stats()
		gauge("rcaserve_wal_segments", "Write-ahead log segment files on disk.", float64(ws.Segments))
		gauge("rcaserve_wal_size_bytes", "Write-ahead log bytes on disk across segments.", float64(ws.SizeBytes))
		counter("rcaserve_wal_records_appended_total", "Records appended to the write-ahead log.", float64(ws.Appends))
		counter("rcaserve_wal_append_errors_total", "Write-ahead log append failures (rolled back; the submission was rejected).", float64(ws.AppendErrors))
		counter("rcaserve_wal_fsyncs_total", "Write-ahead log fsync calls.", float64(ws.Fsyncs))
		counter("rcaserve_wal_fsync_errors_total", "Write-ahead log fsync failures.", float64(ws.FsyncErrors))
		counter("rcaserve_wal_compact_runs_total", "Checkpoint/compaction passes over the write-ahead log.", float64(ws.CompactRuns))
		counter("rcaserve_wal_segments_rewritten_total", "Sealed segments rewritten by compaction.", float64(ws.SegmentsRewritten))
		counter("rcaserve_wal_segments_deleted_total", "Fully expired segments deleted by compaction.", float64(ws.SegmentsDeleted))
		counter("rcaserve_wal_records_dropped_total", "Expired records dropped by compaction.", float64(ws.RecordsDropped))
		counter("rcaserve_wal_replay_torn_bytes", "Bytes truncated off damaged segments at boot replay.", float64(ws.Replay.TornBytes))
		counter("rcaserve_wal_replay_segments_dropped", "Whole segments discarded at boot replay (prefix semantics).", float64(ws.Replay.SegmentsDropped))
		s.obs.walAppendHist.Expose(w)
		s.obs.walFsyncHist.Expose(w)
		s.obs.walReplayHist.Expose(w)
	}

	writeQuantiles(w, "rcaserve_job_queue_wait_seconds",
		"Recent async job queue wait (submission to dispatch).",
		jm.QueueWaitP50Micros, jm.QueueWaitP90Micros, jm.QueueWaitP99Micros)
	writeQuantiles(w, "rcaserve_job_run_seconds",
		"Recent async job run time (dispatch to completion).",
		jm.RunP50Micros, jm.RunP90Micros, jm.RunP99Micros)
	s.obs.queueWaitHist.Expose(w)
	s.obs.runHist.Expose(w)

	gauge("rcaserve_engine_workers", "Solver worker pool size.", float64(es.Workers))
	counter("rcaserve_engine_jobs_total", "Engine jobs completed, any outcome.", float64(es.Jobs))
	counter("rcaserve_engine_cache_hits_total", "Engine jobs answered from the canonical-pattern cache.", float64(es.CacheHits))
	counter("rcaserve_engine_cache_misses_total", "Engine jobs that ran the solver.", float64(es.CacheMisses))
	counter("rcaserve_engine_deduped_total", "Engine jobs that missed the cache but shared a concurrent identical solve (single-flight).", float64(es.Deduped))
	counter("rcaserve_engine_errors_total", "Engine jobs failed by the allocator or a bad request.", float64(es.Errors))
	counter("rcaserve_engine_timeouts_total", "Engine jobs abandoned past the per-job deadline.", float64(es.Timeouts))
	counter("rcaserve_engine_canceled_total", "Engine jobs whose submitting context was canceled.", float64(es.Canceled))
	gauge("rcaserve_engine_cache_entries", "Cached canonical results across all shards.", float64(es.CacheEntries))
	gauge("rcaserve_engine_cache_capacity", "Total canonical result cache bound (0 when caching is disabled).", float64(es.CacheCapacity))
	gauge("rcaserve_engine_cache_shards", "Result cache lock domains (power of two).", float64(es.CacheShards))
	writeQuantiles(w, "rcaserve_engine_solve_seconds",
		"Recent solve latency (cache misses only).",
		es.SolveP50Micros, es.SolveP90Micros, es.SolveP99Micros)
	s.obs.solveHist.Expose(w)

	shedding := 0.0
	if es.Shedding {
		shedding = 1
	}
	gauge("rcaserve_shedding", "Adaptive load-shedding verdict: 1 while the sync paths reject with 503.", shedding)
	counter("rcaserve_shed_flips_total", "Load-shedding verdict transitions, both directions.", float64(es.ShedFlips))
	counter("rcaserve_shed_total", "Synchronous requests rejected by adaptive load shedding.", float64(s.sheds.Load()))
	counter("rcaserve_deadline_expired_total", "Requests whose propagated deadline budget was spent on arrival.", float64(s.deadlineExpired.Load()))

	counter("rcaserve_http_requests_total", "HTTP requests served.", float64(s.requests.Load()))
	s.obs.httpReqs.Expose(w)
	s.obs.httpHist.Expose(w)

	gauge("rcaserve_uptime_seconds", "Seconds since process start.", time.Since(s.started).Seconds())
	writeHeader(w, "rcaserve_build_info", "Build identity; the value is always 1.", "gauge")
	fmt.Fprintf(w, "rcaserve_build_info{version=%q} 1\n", s.version)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("rcaserve_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	counter("rcaserve_gc_pause_seconds_total", "Cumulative stop-the-world GC pause.", float64(ms.PauseTotalNs)/1e9)
	gauge("rcaserve_heap_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	if fds := countOpenFDs(); fds >= 0 {
		gauge("rcaserve_open_fds", "Open file descriptors (procfs; absent elsewhere).", float64(fds))
	}
}

// writeHeader emits one family's HELP/TYPE preamble.
func writeHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, strings.ReplaceAll(help, "\n", " "), name, typ)
}

// writeMetric emits a single-sample family.
func writeMetric(w io.Writer, name, help, typ string, v float64) {
	writeHeader(w, name, help, typ)
	fmt.Fprintf(w, "%s %v\n", name, v)
}

// writeQuantiles emits a summary-style family from microsecond
// percentile estimates.
func writeQuantiles(w io.Writer, name, help string, p50, p90, p99 float64) {
	writeHeader(w, name, help, "gauge")
	for _, q := range []struct {
		q string
		v float64
	}{{"0.5", p50}, {"0.9", p90}, {"0.99", p99}} {
		fmt.Fprintf(w, "%s{quantile=%q} %v\n", name, q.q, q.v/1e6)
	}
}
