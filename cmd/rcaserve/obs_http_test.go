// Tests for the observability surfaces: /metrics exposition hygiene
// (every family documented and typed, histogram invariants hold),
// trace ID propagation through sync requests and async jobs, and the
// /debug/requests slow-trace ring.

package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"dspaddr/internal/engine"
	"dspaddr/internal/obs"
)

// scrapeFamilies fetches and parses /metrics.
func scrapeFamilies(t *testing.T, ts *httptest.Server) map[string]*obs.Family {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("parsing exposition: %v", err)
	}
	return fams
}

// TestMetricsExpositionHygiene drives a few requests through the
// server, scrapes /metrics and checks structural invariants over the
// whole exposition: every family carries HELP and TYPE, histogram
// buckets are cumulative and monotone, the +Inf bucket equals _count,
// and the families this PR added are present.
func TestMetricsExpositionHygiene(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 2})

	okJob := `{"pattern": {"offsets": [1, 0, 2, -1]}, "agu": {"registers": 2, "modifyRange": 1}}`
	if status := do(t, ts.URL+"/v1/allocate", okJob, nil); status != http.StatusOK {
		t.Fatalf("allocate status %d", status)
	}
	// A failing job exercises a second status label.
	if status := do(t, ts.URL+"/v1/allocate", `{"agu": {"registers": 1, "modifyRange": 1}}`, nil); status != http.StatusUnprocessableEntity {
		t.Fatalf("bad allocate status %d", status)
	}
	// An async round trip populates the queue-wait and run histograms.
	var sub submitResponseJSON
	if status := do(t, ts.URL+"/v1/jobs", okJob, &sub); status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	waitForJobDone(t, ts, sub.ID)

	fams := scrapeFamilies(t, ts)
	for name, fam := range fams {
		if fam.Help == "" {
			t.Errorf("family %s has no HELP", name)
		}
		if fam.Type == "" {
			t.Errorf("family %s has no TYPE", name)
		}
		if len(fam.Samples) == 0 {
			t.Errorf("family %s has no samples", name)
		}
		if fam.Type == "histogram" {
			checkHistogramFamily(t, fam)
		}
	}

	for _, want := range []string{
		"rcaserve_http_requests_total",
		"rcaserve_http_route_requests_total",
		"rcaserve_http_request_duration_seconds",
		"rcaserve_job_queue_wait_duration_seconds",
		"rcaserve_job_run_duration_seconds",
		"rcaserve_engine_solve_duration_seconds",
		"rcaserve_goroutines",
		"rcaserve_gc_pause_seconds_total",
		"rcaserve_heap_bytes",
	} {
		if fams[want] == nil {
			t.Errorf("family %s missing from /metrics", want)
		}
	}

	// The by-route counter saw both outcomes of /v1/allocate.
	routes := map[string]bool{}
	if fam := fams["rcaserve_http_route_requests_total"]; fam != nil {
		for _, s := range fam.Samples {
			routes[s.Labels["route"]+" "+s.Labels["status"]] = true
		}
	}
	for _, want := range []string{"/v1/allocate 200", "/v1/allocate 422", "/v1/jobs 202"} {
		if !routes[want] {
			t.Errorf("no route counter sample for %q (got %v)", want, routes)
		}
	}

	// The solve histogram observed the cache-miss solves.
	if n := obs.SumFamily(fams, "rcaserve_engine_solve_duration_seconds"); n < 1 {
		t.Errorf("solve histogram count %v, want >= 1", n)
	}
}

// checkHistogramFamily asserts bucket monotonicity and +Inf == _count
// for every label combination of one histogram family.
func checkHistogramFamily(t *testing.T, fam *obs.Family) {
	t.Helper()
	type bucket struct {
		le string
		v  float64
	}
	buckets := map[string][]bucket{} // non-le label signature -> buckets
	counts := map[string]float64{}
	sums := map[string]bool{}
	for _, s := range fam.Samples {
		sig := labelSignature(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			buckets[sig] = append(buckets[sig], bucket{le: s.Labels["le"], v: s.Value})
		case strings.HasSuffix(s.Name, "_count"):
			counts[sig] = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			if s.Value < 0 {
				t.Errorf("%s%v _sum negative: %v", fam.Name, s.Labels, s.Value)
			}
			sums[sig] = true
		}
	}
	for sig, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return leValue(t, bs[i].le) < leValue(t, bs[j].le) })
		prev := -1.0
		for _, b := range bs {
			if b.v < prev {
				t.Errorf("%s{%s}: bucket le=%s value %v below previous %v (not cumulative)", fam.Name, sig, b.le, b.v, prev)
			}
			prev = b.v
		}
		last := bs[len(bs)-1]
		if last.le != "+Inf" {
			t.Errorf("%s{%s}: last bucket le=%s, want +Inf", fam.Name, sig, last.le)
		}
		if c, ok := counts[sig]; !ok || c != last.v {
			t.Errorf("%s{%s}: +Inf bucket %v != _count %v", fam.Name, sig, last.v, c)
		}
		if !sums[sig] {
			t.Errorf("%s{%s}: no _sum sample", fam.Name, sig)
		}
	}
	if len(buckets) == 0 {
		t.Errorf("%s: histogram family has no _bucket samples", fam.Name)
	}
}

// labelSignature renders labels minus le, sorted, for grouping.
func labelSignature(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

func leValue(t *testing.T, le string) float64 {
	t.Helper()
	if le == "+Inf" {
		return 1e308
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("bad le %q: %v", le, err)
	}
	return v
}

// TestRequestIDPropagation checks the trace ID contract on the sync
// path: a valid client X-Request-Id is echoed back, an invalid one is
// replaced with a generated ID.
func TestRequestIDPropagation(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 2})

	body := `{"pattern": {"offsets": [3, 1, 4, 1]}, "agu": {"registers": 2, "modifyRange": 1}}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/allocate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-sync-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-sync-42" {
		t.Errorf("echoed trace ID %q, want trace-sync-42", got)
	}

	req, err = http.NewRequest(http.MethodPost, ts.URL+"/v1/allocate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "has spaces\tand control")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-Id")
	if !strings.HasPrefix(got, "r-") {
		t.Errorf("invalid client ID should be replaced with a generated r-… ID, got %q", got)
	}
}

// TestDebugRequestsRoundTrip drives a traced request through the full
// engine path and reads its phase breakdown back from
// /debug/requests: the trace ID matches the response header, the
// expected engine phases are present and every span nests within the
// request duration.
func TestDebugRequestsRoundTrip(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 2})

	// K=1 against a 2-virtual-register pattern forces the merge phase
	// into the trace; K=2 would satisfy the budget without merging.
	body := `{"pattern": {"offsets": [1, 0, 2, -1, 1, 0, -2]}, "agu": {"registers": 1, "modifyRange": 1}}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/allocate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-debug-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("allocate status %d", resp.StatusCode)
	}

	var dbg debugRequestsJSON
	getJSON(t, ts.URL+"/debug/requests?min_ms=0", &dbg)
	if dbg.Count != len(dbg.Traces) {
		t.Fatalf("count %d != %d traces", dbg.Count, len(dbg.Traces))
	}
	var tr *obs.TraceSnapshot
	for _, s := range dbg.Traces {
		if s.ID == "trace-debug-1" {
			tr = s
			break
		}
	}
	if tr == nil {
		t.Fatalf("trace-debug-1 not in ring (%d traces)", len(dbg.Traces))
	}
	if tr.Route != "/v1/allocate" || tr.Status != http.StatusOK {
		t.Errorf("trace labeled %s/%d, want /v1/allocate/200", tr.Route, tr.Status)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	seen := map[string]bool{}
	for _, sp := range tr.Spans {
		seen[sp.Name] = true
		if sp.StartMicros < 0 || sp.DurMicros < 0 {
			t.Errorf("span %s has negative timing: start=%d dur=%d", sp.Name, sp.StartMicros, sp.DurMicros)
		}
		// 1ms slack: span ends are recorded before the middleware
		// takes the trace-level end timestamp, so this should hold
		// exactly, but scheduling noise gets a margin.
		if sp.StartMicros+sp.DurMicros > tr.DurationMicros+1000 {
			t.Errorf("span %s [%d+%d] overruns trace duration %dµs", sp.Name, sp.StartMicros, sp.DurMicros, tr.DurationMicros)
		}
	}
	// A cold-cache pattern solve passes through these phases.
	for _, want := range []string{"key.build", "cache.lookup", "solve", "cover", "merge", "result.rewrite"} {
		if !seen[want] {
			t.Errorf("phase %s missing from trace (got %v)", want, seen)
		}
	}

	// The min_ms filter hides everything at an absurd threshold.
	getJSON(t, ts.URL+"/debug/requests?min_ms=60000", &dbg)
	if dbg.Count != 0 {
		t.Errorf("min_ms=60000 returned %d traces", dbg.Count)
	}

	// Verb and parameter validation.
	if status := do(t, ts.URL+"/debug/requests", `{}`, nil); status != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/requests: status %d", status)
	}
	resp, err = http.Get(ts.URL + "/debug/requests?min_ms=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min_ms: status %d", resp.StatusCode)
	}
}

// TestAsyncJobTraceID checks trace propagation across the async
// boundary: the submitting request's trace ID lands on the job
// record, and the job's own execution trace (route "job") reaches the
// debug ring under the same ID.
func TestAsyncJobTraceID(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 2})

	body := `{"pattern": {"offsets": [5, 0, 3, -2]}, "agu": {"registers": 2, "modifyRange": 1}}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-async-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponseJSON
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	st := waitForJobDone(t, ts, sub.ID)
	if st.TraceID != "trace-async-7" {
		t.Errorf("job record trace ID %q, want trace-async-7", st.TraceID)
	}

	var dbg debugRequestsJSON
	getJSON(t, ts.URL+"/debug/requests?min_ms=0", &dbg)
	found := false
	for _, s := range dbg.Traces {
		if s.ID == "trace-async-7" && s.Route == "job" {
			found = true
			if len(s.Spans) == 0 {
				t.Error("async job trace has no spans")
			}
		}
	}
	if !found {
		t.Errorf("no route=job trace for trace-async-7 in ring (%d traces)", len(dbg.Traces))
	}
}

// waitForJobDone polls an async job to a terminal state.
func waitForJobDone(t *testing.T, ts *httptest.Server, id string) jobStatusJSON {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var st jobStatusJSON
		getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		switch st.State {
		case "done", "failed", "timeout", "canceled":
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobStatusJSON{}
}

// getJSON GETs a URL and decodes the body.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestRouteNormalization pins the bounded label set.
func TestRouteNormalization(t *testing.T) {
	cases := map[string]string{
		"/v1/allocate":       "/v1/allocate",
		"/v1/jobs":           "/v1/jobs",
		"/v1/jobs/abc123":    "/v1/jobs/{id}",
		"/v1/jobs/a/b":       "/v1/jobs/{id}",
		"/metrics":           "/metrics",
		"/debug/requests":    "/debug/requests",
		"/nonexistent":       "other",
		"/v1/jobsandstorage": "other",
	}
	for path, want := range cases {
		if got := routeOf(path); got != want {
			t.Errorf("routeOf(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestMethodRejectionsCounted pins the satellite fix: a rejected verb
// is counted under its real status (405), which the old per-handler
// pre-validation counters could not see.
func TestMethodRejectionsCounted(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/allocate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
	fams := scrapeFamilies(t, ts)
	fam := fams["rcaserve_http_route_requests_total"]
	if fam == nil {
		t.Fatal("no route counter family")
	}
	found := false
	for _, s := range fam.Samples {
		if s.Labels["route"] == "/v1/allocate" && s.Labels["status"] == "405" && s.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("405 on /v1/allocate not counted by route+status")
	}
}
