package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dspaddr/internal/engine"
)

// newTestServer spins up the handler over a fresh engine; the cleanup
// closes the pool.
func newTestServer(t *testing.T, opts engine.Options) *httptest.Server {
	t.Helper()
	return newTestServerWith(t, opts, serverOptions{version: "test"})
}

// newTestServerWith also takes server options, for tests that tune
// the async queue, store or executor.
func newTestServerWith(t *testing.T, opts engine.Options, sopts serverOptions) *httptest.Server {
	t.Helper()
	// Tests get a capture-everything trace ring (traceMin < 0) so any
	// request's phase breakdown can be asserted via /debug/requests.
	if sopts.obs == nil {
		sopts.obs = newObservability(nil, -1, 0)
	}
	if opts.SolveHist == nil {
		opts.SolveHist = sopts.obs.solveHist
	}
	eng := engine.New(opts)
	s := newServer(eng, sopts)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.close()
		eng.Close()
	})
	return ts
}

// do posts a body and decodes the JSON response into out, returning
// the status code.
func do(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

// TestAllocatePattern exercises the happy path: the paper's example
// pattern needs K~ = 2 virtual registers and is zero-cost at K=2, M=1
// (Section 2 of the paper).
func TestAllocatePattern(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 2})
	var resp jobResponseJSON
	status := do(t, ts.URL+"/v1/allocate", `{
		"pattern": {"offsets": [1, 0, 2, -1, 1, 0, -2]},
		"agu": {"registers": 2, "modifyRange": 1}
	}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(resp.Results))
	}
	r := resp.Results[0]
	if r.Cost != 0 || r.VirtualRegisters != 2 || r.Merged || r.RegistersUsed != 2 {
		t.Fatalf("paper example allocation off: %+v", r)
	}
}

// TestAllocateLoopDSL feeds mini-C loop source through the frontend:
// one result per referenced array, with the K registers shared across
// arrays exactly as dspaddr.AllocateLoop distributes them.
func TestAllocateLoopDSL(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 2})
	var resp jobResponseJSON
	status := do(t, ts.URL+"/v1/allocate", `{
		"loop": "for (i = 0; i <= N; i++) { C[i] = A[i+1] + B[i]; B[i+2]; }",
		"bindings": {"N": 100},
		"agu": {"registers": 4, "modifyRange": 1}
	}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %+v", status, resp)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3 (arrays A, B, C)", len(resp.Results))
	}
	arrays := map[string]bool{}
	total := 0
	globals := map[int]bool{}
	for _, r := range resp.Results {
		arrays[r.Array] = true
		total += r.RegistersUsed
		if len(r.GlobalRegisters) != r.RegistersUsed {
			t.Errorf("array %s: %d global registers for %d used", r.Array, len(r.GlobalRegisters), r.RegistersUsed)
		}
		for _, g := range r.GlobalRegisters {
			if globals[g] {
				t.Errorf("global register %d assigned to two arrays", g)
			}
			globals[g] = true
		}
	}
	for _, want := range []string{"A", "B", "C"} {
		if !arrays[want] {
			t.Errorf("missing result for array %s (got %v)", want, arrays)
		}
	}
	if total > 4 {
		t.Errorf("arrays use %d registers in total, budget is 4", total)
	}
}

// TestAllocateLoopBudgetShared pins the fix for per-array
// full-budget expansion: a 3-array loop on a 2-register AGU must be
// rejected (each array needs a private register), not allocated with
// 2 registers per array.
func TestAllocateLoopBudgetShared(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 2})
	var resp jobResponseJSON
	status := do(t, ts.URL+"/v1/allocate", `{
		"loop": "for (i = 0; i <= 9; i++) { A[i]; B[i]; C[i]; }",
		"agu": {"registers": 2, "modifyRange": 1}
	}`, &resp)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (3 arrays cannot share 2 registers)", status)
	}
	if !strings.Contains(resp.Error, "3 arrays") {
		t.Errorf("error %q does not explain the register shortfall", resp.Error)
	}
}

// TestMalformedRequests covers the 400 paths: invalid JSON, unknown
// fields, trailing garbage, empty job, both pattern and loop set.
func TestMalformedRequests(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 1})
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"invalid JSON", `{"pattern": [`, http.StatusBadRequest},
		{"unknown field", `{"patern": {"offsets": [1]}, "agu": {"registers": 1}}`, http.StatusBadRequest},
		{"trailing garbage", `{"pattern": {"offsets": [1]}, "agu": {"registers": 1, "modifyRange": 1}} extra`, http.StatusBadRequest},
		{"neither pattern nor loop", `{"agu": {"registers": 1, "modifyRange": 1}}`, http.StatusUnprocessableEntity},
		{"both pattern and loop", `{"pattern": {"offsets": [1]}, "loop": "for", "agu": {"registers": 1, "modifyRange": 1}}`, http.StatusUnprocessableEntity},
		{"bad loop source", `{"loop": "while (1) {}", "agu": {"registers": 1, "modifyRange": 1}}`, http.StatusUnprocessableEntity},
		{"zero registers", `{"pattern": {"offsets": [1, 2]}, "agu": {"registers": 0, "modifyRange": 1}}`, http.StatusUnprocessableEntity},
		{"bad strategy", `{"pattern": {"offsets": [1, 2]}, "agu": {"registers": 1, "modifyRange": 1}, "strategy": "quantum"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if status := do(t, ts.URL+"/v1/allocate", tc.body, nil); status != tc.wantStatus {
				t.Errorf("status %d, want %d", status, tc.wantStatus)
			}
		})
	}
}

// TestMethodNotAllowed checks verbs are enforced per endpoint.
func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/allocate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/allocate: status %d", resp.StatusCode)
	}
	if status := do(t, ts.URL+"/v1/stats", `{}`, nil); status != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/stats: status %d", status)
	}
}

// TestAllocateTimeout configures a vanishing job deadline and checks
// the 504 path.
func TestAllocateTimeout(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 1, JobTimeout: time.Nanosecond})
	var resp jobResponseJSON
	status := do(t, ts.URL+"/v1/allocate", `{
		"pattern": {"offsets": [1, 0, 2, -1, 1, 0, -2]},
		"agu": {"registers": 1, "modifyRange": 1}
	}`, &resp)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", status)
	}
	if !strings.Contains(resp.Error, "timed out") {
		t.Fatalf("error %q does not mention the timeout", resp.Error)
	}
}

// TestBatchWithCacheHits posts a batch of repeated patterns and checks
// both the per-result cacheHit flags and the /v1/stats counters.
func TestBatchWithCacheHits(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 8})

	job := `{"pattern": {"offsets": [1, 0, 2, -1]}, "agu": {"registers": 2, "modifyRange": 1}}`
	jobs := make([]string, 12)
	for i := range jobs {
		jobs[i] = job
	}
	var resp batchResponseJSON
	status := do(t, ts.URL+"/v1/batch", `{"jobs": [`+strings.Join(jobs, ",")+`]}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(resp.Results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(jobs))
	}
	hits := 0
	for i, jr := range resp.Results {
		if jr.Error != "" {
			t.Fatalf("job %d failed: %s", i, jr.Error)
		}
		if len(jr.Results) != 1 {
			t.Fatalf("job %d: %d results", i, len(jr.Results))
		}
		if jr.Results[0].CacheHit {
			hits++
		}
		if jr.Results[0].Cost != resp.Results[0].Results[0].Cost {
			t.Fatalf("job %d cost differs from job 0", i)
		}
	}
	if hits == 0 {
		t.Fatal("identical batch jobs produced no cache hits")
	}

	stats := getStats(t, ts)
	if stats.CacheHits == 0 {
		t.Fatalf("stats report no cache hits: %+v", stats)
	}
	if stats.CacheMisses == 0 || stats.Jobs != uint64(len(jobs)) {
		t.Fatalf("stats off: %+v", stats)
	}
	if stats.Workers < 8 {
		t.Fatalf("stats.Workers = %d, want >= 8", stats.Workers)
	}
	if stats.CacheEntries < 1 || stats.CacheCapacity < stats.CacheEntries {
		t.Fatalf("cache occupancy/capacity off: entries=%d capacity=%d", stats.CacheEntries, stats.CacheCapacity)
	}
	if stats.CacheShards < 1 || stats.CacheShards&(stats.CacheShards-1) != 0 {
		t.Fatalf("cache shard count %d is not a positive power of two", stats.CacheShards)
	}
}

// TestBatchMixedJobs mixes good, bad and loop jobs in one batch and
// checks failures stay per-job.
func TestBatchMixedJobs(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 4})
	var resp batchResponseJSON
	status := do(t, ts.URL+"/v1/batch", `{"jobs": [
		{"pattern": {"offsets": [1, 0, 2]}, "agu": {"registers": 1, "modifyRange": 1}},
		{"agu": {"registers": 1, "modifyRange": 1}},
		{"loop": "for (i = 0; i <= 9; i++) { A[i]; A[i+1]; }", "agu": {"registers": 1, "modifyRange": 1}}
	]}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if resp.Results[0].Error != "" || len(resp.Results[0].Results) != 1 {
		t.Errorf("job 0 should succeed: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Error("job 1 (no pattern) should fail")
	}
	if resp.Results[2].Error != "" || len(resp.Results[2].Results) != 1 {
		t.Errorf("job 2 (loop) should succeed with one array: %+v", resp.Results[2])
	}
}

// TestEmptyBatch checks the explicit 400 for a no-job batch.
func TestEmptyBatch(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 1})
	if status := do(t, ts.URL+"/v1/batch", `{"jobs": []}`, nil); status != http.StatusBadRequest {
		t.Errorf("status %d, want 400", status)
	}
}

// TestHealthz checks the liveness probe: GET and HEAD succeed, the
// body leads with "ok" and names the build, and every other method is
// rejected — the probe endpoint enforces verbs like the rest of the
// API.
func TestHealthz(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(string(body), "ok\n") {
		t.Fatalf("body %q does not lead with ok", body)
	}
	if !strings.Contains(string(body), "rcaserve test") {
		t.Fatalf("body %q does not name the build", body)
	}

	resp, err = http.Head(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status %d", resp.StatusCode)
	}

	for _, method := range []string{http.MethodPost, http.MethodDelete, http.MethodPut} {
		req, err := http.NewRequest(method, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s /healthz: status %d, want 405", method, resp.StatusCode)
		}
	}
}

// TestVersionSurfaced checks the build identity reaches /v1/stats
// and that buildVersion always produces something.
func TestVersionSurfaced(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 1})
	stats := getStats(t, ts)
	if stats.Version != "test" {
		t.Fatalf("stats version %q", stats.Version)
	}
	if v := buildVersion(); v == "" {
		t.Fatal("buildVersion returned empty")
	}
}

func getStats(t *testing.T, ts *httptest.Server) statsJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var out statsJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}
