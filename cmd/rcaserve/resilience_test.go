package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dspaddr/internal/engine"
	"dspaddr/internal/faults"
)

// Node-side resilience behavior: the propagated deadline budget, the
// adaptive load-shedding policy on the synchronous paths, and the
// gray-failure response faults the soak harness arms.

func postWithDeadline(t *testing.T, url, budgetMS, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Deadline-Ms", budgetMS)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func statsOf(t *testing.T, baseURL string) statsJSON {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out statsJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDeadlineSpentOnArrivalIs504: a request whose propagated budget
// is already exhausted is refused at the middleware with a counted
// 504 — the handler (and the engine) never see it.
func TestDeadlineSpentOnArrivalIs504(t *testing.T) {
	ts := newTestServer(t, engine.Options{Workers: 2})
	resp := postWithDeadline(t, ts.URL+"/v1/allocate", "0", `{
		"pattern": {"offsets": [1, 0, 2]},
		"agu": {"registers": 2, "modifyRange": 1}
	}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("spent budget: status %d, want 504", resp.StatusCode)
	}
	st := statsOf(t, ts.URL)
	if st.DeadlineExpired != 1 {
		t.Fatalf("deadlineExpired = %d, want 1", st.DeadlineExpired)
	}
	if st.Stats.Jobs != 0 {
		t.Fatalf("engine ran %d jobs for a spent-budget request", st.Stats.Jobs)
	}
}

// TestDeadlineBudgetCancelsSolve: a live budget becomes a context
// deadline, so a solve that outlasts it is abandoned — the caller
// gets a 504 in roughly the budget, not the solve's full latency.
func TestDeadlineBudgetCancelsSolve(t *testing.T) {
	inj, err := faults.Parse("delay=300ms")
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerWith(t, engine.Options{Workers: 1, CacheSize: -1, Faults: inj},
		serverOptions{version: "test"})
	start := time.Now()
	resp := postWithDeadline(t, ts.URL+"/v1/allocate", "40", `{
		"pattern": {"offsets": [1, 0, 2, -1]},
		"agu": {"registers": 2, "modifyRange": 1}
	}`)
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired budget: status %d, want 504", resp.StatusCode)
	}
	if elapsed >= 300*time.Millisecond {
		t.Fatalf("answer took %v — the budget deadline did not cancel the solve", elapsed)
	}
}

// TestSyncPathsShedWhenOverloaded floods a one-worker engine with
// slow solves until the windowed-minimum queue wait stands above the
// shed target, then asserts the synchronous path rejects with 503 +
// Retry-After and counts the shed.
func TestSyncPathsShedWhenOverloaded(t *testing.T) {
	inj, err := faults.Parse("delay=15ms")
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerWith(t, engine.Options{
		Workers:    1,
		CacheSize:  -1,
		ShedTarget: 5 * time.Millisecond,
		ShedWindow: 20 * time.Millisecond,
		Faults:     inj,
	}, serverOptions{version: "test"})

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{
				"pattern": {"offsets": [1, 0, 2, %d]},
				"agu": {"registers": 2, "modifyRange": 1}
			}`, i+3)
			resp, err := http.Post(ts.URL+"/v1/allocate", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	resp, err := http.Post(ts.URL+"/v1/allocate", "application/json", strings.NewReader(`{
		"pattern": {"offsets": [2, 0, 1]},
		"agu": {"registers": 2, "modifyRange": 1}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded sync path: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if st := statsOf(t, ts.URL); st.Sheds == 0 {
		t.Fatal("sheds counter never ticked")
	}
}

// TestRespDelayFaultStretchesEveryRoute: the armed gray-failure fault
// delays responses on all routes — including /healthz, which is what
// makes the failure gray: probes still pass while latency is up.
func TestRespDelayFaultStretchesEveryRoute(t *testing.T) {
	inj, err := faults.Parse("resp-delay=60ms")
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerWith(t, engine.Options{Workers: 1},
		serverOptions{version: "test", faults: inj})
	start := time.Now()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delayed healthz: status %d, want 200", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("healthz answered in %v — resp-delay fault did not fire", elapsed)
	}
	if got := inj.Snapshot().RespDelays; got != 1 {
		t.Fatalf("RespDelays = %d, want 1", got)
	}
}

// TestBlackholeFaultDropsConnection: a blackholed request is held
// until its context dies and then the connection is aborted — the
// client sees a transport error, never a synthesized status.
func TestBlackholeFaultDropsConnection(t *testing.T) {
	inj, err := faults.Parse("blackhole=1")
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerWith(t, engine.Options{Workers: 1},
		serverOptions{version: "test", faults: inj})
	client := &http.Client{Timeout: 200 * time.Millisecond}
	resp, err := client.Get(ts.URL + "/healthz")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("blackholed request got an answer: status %d", resp.StatusCode)
	}
	if got := inj.Snapshot().Blackholes; got != 1 {
		t.Fatalf("Blackholes = %d, want 1", got)
	}
}
