// Fuzzing the HTTP request decoders end to end through the handlers:
// arbitrary bytes POSTed at /v1/allocate and /v1/jobs — including the
// loop-DSL frontend payloads — must produce an orderly HTTP answer.
// Malformed input yields a 4xx; semantically valid input may succeed,
// fail allocation (422), time out (504) or bounce off admission
// (429); nothing may panic, and the generic 5xx failures (500/502/503)
// that would signal an unhandled decoder or handler error must never
// appear.

package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dspaddr/internal/engine"
)

// decoderSeeds is the shared corpus: valid shapes, near-valid shapes
// and hostile junk for both endpoints.
var decoderSeeds = []string{
	// Valid single-pattern job.
	`{"pattern":{"offsets":[1,0,2,-1,1,0,-2]},"agu":{"registers":2,"modifyRange":1}}`,
	// Valid loop-DSL job.
	`{"loop":"for (i = 0; i <= N; i++) { y[i] = x[i] + x[i-1]; }","bindings":{"N":10},"agu":{"registers":2,"modifyRange":1}}`,
	// Valid batch submission.
	`{"jobs":[{"pattern":{"offsets":[1,2]},"agu":{"registers":1,"modifyRange":1}}],"priority":3}`,
	// Shape errors.
	`{}`,
	`{"pattern":{"offsets":[]},"agu":{"registers":0,"modifyRange":0}}`,
	`{"pattern":{"offsets":[1]},"loop":"for(;;){}","agu":{"registers":1,"modifyRange":1}}`,
	`{"jobs":[],"priority":1}`,
	`{"jobs":[{}]}`,
	// Unknown fields, trailing garbage, truncation, wrong types.
	`{"pattern":{"offsets":[1,2]},"agu":{"registers":1,"modifyRange":1},"zzz":true}`,
	`{"pattern":{"offsets":[1,2]},"agu":{"registers":1,"modifyRange":1}} trailing`,
	`{"pattern":{"offsets":[1,2]`,
	`{"pattern":{"offsets":"not-an-array"},"agu":{"registers":1}}`,
	`{"pattern":{"offsets":[1,2]},"agu":"nope"}`,
	// Hostile values: huge numbers, deep nesting, control bytes.
	`{"pattern":{"offsets":[9999999999999999999999]},"agu":{"registers":1,"modifyRange":1}}`,
	`{"pattern":{"offsets":[1e308,-1e308]},"agu":{"registers":2147483647,"modifyRange":-2147483648}}`,
	`[[[[[[[[[[[[[[[[[[[[]]]]]]]]]]]]]]]]]]]]`,
	"{\"loop\":\"for (i = 0; i <= N; i++) { y\x00[i]; }\",\"agu\":{\"registers\":1,\"modifyRange\":1}}`",
	`null`, `true`, `42`, `"str"`, ``, `   `, "\xff\xfe\xfd",
	strings.Repeat("[", 4096),
	`{"loop":"` + strings.Repeat("x+", 512) + `","agu":{"registers":1,"modifyRange":1}}`,
}

// newFuzzServer builds a small real server. The tight per-job timeout
// bounds adversarial solve blowups (large-N patterns from the fuzzer)
// so iterations stay fast; 504 is an accepted outcome.
func newFuzzServer(f *testing.F) *httptest.Server {
	f.Helper()
	eng := engine.New(engine.Options{Workers: 2, JobTimeout: 250 * time.Millisecond})
	s := newServer(eng, serverOptions{version: "fuzz", queueCapacity: 64, storeCapacity: 256})
	ts := httptest.NewServer(s.handler())
	f.Cleanup(func() {
		ts.Close()
		s.close()
		eng.Close()
	})
	return ts
}

// postRaw POSTs body bytes and returns the status; transport-level
// failures fail the test (the server must always answer).
func postRaw(t *testing.T, url string, body []byte) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// assertOrderly is the shared oracle: no generic 5xx, i.e. nothing
// escaped the decoders or handlers as an internal error. (504 is the
// deliberate per-job-timeout answer; everything else 5xx is a bug. A
// handler panic would kill the test process outright.)
func assertOrderly(t *testing.T, endpoint string, body []byte, status int) {
	t.Helper()
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway, http.StatusServiceUnavailable:
		t.Fatalf("%s answered %d for body %q", endpoint, status, body)
	}
}

func FuzzAllocateDecoder(f *testing.F) {
	for _, s := range decoderSeeds {
		f.Add([]byte(s))
	}
	ts := newFuzzServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		status := postRaw(t, ts.URL+"/v1/allocate", body)
		assertOrderly(t, "/v1/allocate", body, status)
	})
}

func FuzzJobsSubmitDecoder(f *testing.F) {
	for _, s := range decoderSeeds {
		f.Add([]byte(s))
	}
	ts := newFuzzServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		status := postRaw(t, ts.URL+"/v1/jobs", body)
		assertOrderly(t, "/v1/jobs", body, status)
		// The async path must never accept a job it cannot route: a
		// 202 here is only legal for bodies that parsed into at least
		// one pattern/loop job, which is exactly what the decoder
		// promises. Spot-check the complement: non-JSON bytes never 202.
		if status == http.StatusAccepted && len(body) > 0 && (body[0] != '{') {
			t.Fatalf("/v1/jobs accepted non-object body %q", body)
		}
	})
}
