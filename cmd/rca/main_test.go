package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runToString(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestRunExample(t *testing.T) {
	out, err := runToString(t, "-example", "-k", "1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"K~ = 2", "merged down to 1", "total: 4 unit-cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExampleAsmAndSim(t *testing.T) {
	out, err := runToString(t, "-example", "-k", "2", "-asm", "-run")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"optimized assembly", "naive assembly", "DBNZ", "simulated:", "faster"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "loop.c")
	src := `for (i = 0; i <= N; i++) { y[i] = x[i] + x[i-1]; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runToString(t, "-k", "3", "-bind", "N=31", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "32 iterations") {
		t.Errorf("binding not applied:\n%s", out)
	}
	if !strings.Contains(out, "arrays [x y]") {
		t.Errorf("arrays missing:\n%s", out)
	}
}

func TestRunStrategies(t *testing.T) {
	for _, s := range []string{"greedy", "naive", "smallest", "optimal"} {
		if _, err := runToString(t, "-example", "-k", "1", "-strategy", s); err != nil {
			t.Errorf("strategy %s: %v", s, err)
		}
	}
	if _, err := runToString(t, "-example", "-strategy", "bogus"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunWrapObjective(t *testing.T) {
	out, err := runToString(t, "-example", "-k", "4", "-wrap")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrap included") {
		t.Errorf("wrap objective not reported:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := runToString(t); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := runToString(t, "/nonexistent/loop.c"); err == nil {
		t.Error("unreadable file accepted")
	}
	if _, err := runToString(t, "-example", "-bind", "garbage"); err == nil {
		t.Error("bad binding accepted")
	}
	if _, err := runToString(t, "-example", "-bind", "N=xyz"); err == nil {
		t.Error("bad binding value accepted")
	}
	if _, err := runToString(t, "-example", "-k", "0"); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestParseBindings(t *testing.T) {
	got, err := parseBindings("N=5, M=7")
	if err != nil {
		t.Fatal(err)
	}
	if got["N"] != 5 || got["M"] != 7 {
		t.Fatalf("bindings = %v", got)
	}
	if empty, err := parseBindings("  "); err != nil || len(empty) != 0 {
		t.Fatalf("blank bindings = %v, %v", empty, err)
	}
}

func TestRunReportsScalarLayout(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "loop.c")
	src := `for (i = 0; i <= 9; i++) { y[i] = c0*x[i] + c1*x[i-1] + c0*x[i-2]; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runToString(t, "-k", "3", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "scalars: layout") || !strings.Contains(out, "SOA cost") {
		t.Errorf("scalar SOA report missing:\n%s", out)
	}
}
