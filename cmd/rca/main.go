// Command rca allocates AGU address registers for a DSP loop written
// in the mini-C loop language, reports the allocation and optionally
// prints the generated DSP assembly next to the naive-compiler
// baseline.
//
// Usage:
//
//	rca [flags] loop.c
//	rca -example            # the paper's Section 2 loop
//
// Flags:
//
//	-k int      number of AGU address registers (default 4)
//	-m int      AGU modify range M (default 1)
//	-wrap       include inter-iteration updates in the objective
//	-strategy   phase-2 merge strategy: greedy|naive|smallest|optimal (default greedy)
//	-bind a=1,b=2   bindings for symbolic loop bounds
//	-asm        print generated assembly (optimized and naive)
//	-run        execute both programs on the simulator and report cycles
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dspaddr/internal/codegen"
	"dspaddr/internal/core"
	"dspaddr/internal/dspsim"
	"dspaddr/internal/frontend"
	"dspaddr/internal/merge"
	"dspaddr/internal/model"
	"dspaddr/internal/offsetassign"
)

const exampleLoop = `
for (i = 2; i <= N; i++) {
    A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
}`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rca:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rca", flag.ContinueOnError)
	k := fs.Int("k", 4, "number of AGU address registers")
	m := fs.Int("m", 1, "AGU modify range M")
	wrap := fs.Bool("wrap", false, "include inter-iteration updates in the objective")
	strategy := fs.String("strategy", "greedy", "merge strategy: greedy|naive|smallest|optimal")
	bind := fs.String("bind", "N=100", "comma-separated bindings for symbolic bounds, e.g. N=100")
	asm := fs.Bool("asm", false, "print generated assembly")
	exec := fs.Bool("run", false, "execute on the simulator and report cycles")
	example := fs.Bool("example", false, "use the paper's example loop")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := exampleLoop
	if !*example {
		if fs.NArg() != 1 {
			return fmt.Errorf("expected one loop file (or -example)")
		}
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	}
	bindings, err := parseBindings(*bind)
	if err != nil {
		return err
	}
	prog, err := frontend.Parse(src, bindings)
	if err != nil {
		return err
	}

	var strat merge.Strategy
	switch *strategy {
	case "greedy":
		strat = merge.Greedy{}
	case "naive":
		strat = merge.Naive{}
	case "smallest":
		strat = merge.SmallestTwo{}
	case "optimal":
		strat = merge.Optimal{}
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	cfg := core.Config{
		AGU:            model.AGUSpec{Registers: *k, ModifyRange: *m},
		InterIteration: *wrap,
		Strategy:       strat,
	}
	alloc, err := core.AllocateLoop(prog.Loop, cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "loop: %d iterations, %d array accesses, arrays %v\n",
		prog.Loop.Iterations(), len(prog.Loop.Accesses), prog.Loop.Arrays())
	for _, aa := range alloc.Arrays {
		fmt.Fprintf(out, "\n--- array %s (registers %v) ---\n%s",
			aa.Result.Pattern.Array, aa.GlobalRegisters, aa.Result.Report())
	}
	fmt.Fprintf(out, "\ntotal: %d unit-cost address computation(s)/iteration on %d register(s)\n",
		alloc.TotalCost, alloc.RegistersUsed)

	if len(prog.Scalars) > 0 {
		seq := make([]string, len(prog.Scalars))
		for i, s := range prog.Scalars {
			seq[i] = s.Name
		}
		layout := offsetassign.TieBreakSOA(seq)
		naiveLayout := offsetassign.FirstUse(seq)
		fmt.Fprintf(out, "\nscalars: layout %v — SOA cost %d/iteration (first-use order would cost %d)\n",
			layout.Order, layout.Cost(seq), naiveLayout.Cost(seq))
	}

	if !*asm && !*exec {
		return nil
	}
	bases, words := codegen.AutoBases(prog.Loop)
	opt, err := codegen.GenerateOptimized(alloc, bases, dspsim.ADD)
	if err != nil {
		return err
	}
	naive, err := codegen.GenerateNaive(prog.Loop, bases, *m, dspsim.ADD)
	if err != nil {
		return err
	}
	if err := opt.Verify(words); err != nil {
		return fmt.Errorf("generated code failed verification: %w", err)
	}
	if err := naive.Verify(words); err != nil {
		return fmt.Errorf("naive code failed verification: %w", err)
	}
	if *asm {
		fmt.Fprintf(out, "\n=== optimized assembly (%d words) ===\n%s", opt.CodeWords(), dspsim.Disassemble(opt.Code))
		fmt.Fprintf(out, "\n=== naive assembly (%d words) ===\n%s", naive.CodeWords(), dspsim.Disassemble(naive.Code))
	}
	if *exec {
		mo, err := opt.Run(words)
		if err != nil {
			return err
		}
		mn, err := naive.Run(words)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nsimulated: optimized %d cycles, naive %d cycles (%.1f%% faster); code %d vs %d words (%.1f%% smaller)\n",
			mo.Cycles, mn.Cycles, 100*float64(mn.Cycles-mo.Cycles)/float64(mn.Cycles),
			opt.CodeWords(), naive.CodeWords(),
			100*float64(naive.CodeWords()-opt.CodeWords())/float64(naive.CodeWords()))
	}
	return nil
}

func parseBindings(s string) (map[string]int, error) {
	out := map[string]int{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad binding %q", kv)
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad binding value %q", kv)
		}
		out[parts[0]] = v
	}
	return out, nil
}
