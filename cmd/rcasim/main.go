// Command rcasim assembles a DSP assembly file (the dialect the code
// generator emits and Disassemble prints) and executes it on the
// bundled simulator, reporting cycles and, on request, the memory
// access trace. It turns the simulator into a standalone tool for
// experimenting with hand-written addressing code.
//
// Usage:
//
//	rcasim [-ar 4] [-ir 2] [-m 1] [-mem 256] [-cycles 100000] [-trace] prog.asm
//
// Example program:
//
//	LDAR AR0, #0
//	LDMOD AR0, #0, #4   ; circular buffer of 4 words
//	LDCTR #8
//	ADD *(AR0)+1        ; body
//	DBNZ 3
//	HALT
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dspaddr/internal/dspsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcasim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rcasim", flag.ContinueOnError)
	ar := fs.Int("ar", 4, "address register file size")
	ir := fs.Int("ir", 2, "index register file size")
	m := fs.Int("m", 1, "modify range M")
	mem := fs.Int("mem", 256, "data memory words")
	cycles := fs.Int("cycles", 100000, "cycle budget")
	trace := fs.Bool("trace", false, "print the memory access trace")
	list := fs.Bool("list", false, "print the assembled listing before running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected one assembly file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := dspsim.Assemble(string(src))
	if err != nil {
		return err
	}
	if *list {
		fmt.Fprint(out, dspsim.Disassemble(prog))
	}
	machine, err := dspsim.New(dspsim.Config{
		AddressRegisters: *ar,
		IndexRegisters:   *ir,
		ModifyRange:      *m,
		MemWords:         *mem,
	})
	if err != nil {
		return err
	}
	if err := machine.Run(prog, *cycles); err != nil {
		return err
	}
	fmt.Fprintf(out, "halted after %d cycles, %d memory accesses, ACC=%d\n",
		machine.Cycles, len(machine.Trace), machine.Acc)
	if *trace {
		for i, e := range machine.Trace {
			dir := "R"
			if e.Write {
				dir = "W"
			}
			fmt.Fprintf(out, "%4d  %s %d\n", i, dir, e.Addr)
		}
	}
	return nil
}
