package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runToString(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.asm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSimpleProgram(t *testing.T) {
	path := writeProg(t, `
LDAR AR0, #0
LDCTR #4
ADD *(AR0)+1
DBNZ 2
HALT
`)
	out, err := runToString(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4 memory accesses") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunModuloAndTrace(t *testing.T) {
	path := writeProg(t, `
LDAR AR0, #0
LDMOD AR0, #0, #2
LDCTR #3
ADD *(AR0)+1
DBNZ 3
HALT
`)
	out, err := runToString(t, "-trace", "-list", path)
	if err != nil {
		t.Fatal(err)
	}
	// Addresses wrap: 0, 1, 0.
	for _, want := range []string{"LDMOD AR0, #0, #2", "0  R 0", "1  R 1", "2  R 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := runToString(t); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := runToString(t, "/nonexistent.asm"); err == nil {
		t.Error("unreadable file accepted")
	}
	bad := writeProg(t, "BOGUS OPCODE")
	if _, err := runToString(t, bad); err == nil {
		t.Error("unassemblable program accepted")
	}
	runaway := writeProg(t, "LDCTR #100000\nNOP\nDBNZ 1\nHALT")
	if _, err := runToString(t, "-cycles", "50", runaway); err == nil {
		t.Error("runaway program not caught by the budget")
	}
	tooBig := writeProg(t, "LDAR AR9, #0\nHALT")
	if _, err := runToString(t, tooBig); err == nil {
		t.Error("register outside the configured file accepted")
	}
}
