package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runToString(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestExampleEmitsFigure1(t *testing.T) {
	out, err := runToString(t, "-example")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph G", "a1: A[i+1]", "a7: A[i-2]", "n0 -> n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Figure 1 has 11 edges.
	if got := strings.Count(out, "->"); got != 11 {
		t.Errorf("edge count = %d, want 11", got)
	}
}

func TestGraphFromFileAndArraySelection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "loop.c")
	src := `for (i = 0; i <= N; i++) { y[i] = x[i] + x[i-1]; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runToString(t, "-bind", "N=9", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "x[i]") {
		t.Errorf("default array should be x:\n%s", out)
	}
	out, err = runToString(t, "-bind", "N=9", "-array", "y", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "y[i]") {
		t.Errorf("array selection failed:\n%s", out)
	}
	if _, err := runToString(t, "-bind", "N=9", "-array", "z", path); err == nil {
		t.Error("unknown array accepted")
	}
}

func TestGraphErrors(t *testing.T) {
	if _, err := runToString(t); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := runToString(t, "/nonexistent.c"); err == nil {
		t.Error("unreadable file accepted")
	}
	if _, err := runToString(t, "-example", "-m", "-1"); err == nil {
		t.Error("negative M accepted")
	}
}
