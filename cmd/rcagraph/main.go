// Command rcagraph emits the distance-graph model of a loop's access
// pattern in Graphviz DOT syntax. With -example it reproduces the
// paper's Figure 1.
//
// Usage:
//
//	rcagraph -example                 # Figure 1
//	rcagraph -m 2 loop.c              # custom loop, M=2
//	rcagraph -example | dot -Tpng -o fig1.png
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/frontend"
	"dspaddr/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcagraph:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rcagraph", flag.ContinueOnError)
	m := fs.Int("m", 1, "AGU modify range M")
	example := fs.Bool("example", false, "use the paper's example pattern (Figure 1)")
	bind := fs.String("bind", "N=100", "bindings for symbolic bounds")
	array := fs.String("array", "", "emit the graph of this array only (default: first)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pat model.Pattern
	if *example {
		pat = model.PaperExample()
	} else {
		if fs.NArg() != 1 {
			return fmt.Errorf("expected one loop file (or -example)")
		}
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		bindings := map[string]int{}
		for _, kv := range strings.Split(*bind, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) == 2 {
				if v, err := strconv.Atoi(parts[1]); err == nil {
					bindings[parts[0]] = v
				}
			}
		}
		prog, err := frontend.Parse(string(data), bindings)
		if err != nil {
			return err
		}
		pats, _ := prog.Loop.Patterns()
		pat = pats[0]
		if *array != "" {
			found := false
			for _, p := range pats {
				if p.Array == *array {
					pat, found = p, true
					break
				}
			}
			if !found {
				return fmt.Errorf("array %q not referenced by the loop", *array)
			}
		}
	}

	dg, err := distgraph.Build(pat, *m)
	if err != nil {
		return err
	}
	fmt.Fprint(out, dg.DOT("G"))
	return nil
}
