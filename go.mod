module dspaddr

go 1.24
