// Seeded traffic-mix generation for the soak & chaos harness
// (cmd/rcasoak) and any other load driver that needs a reproducible
// stream of realistic server requests. A TrafficGen draws operations
// — synchronous solves, batches, async submissions, cancel targets,
// pathological large-N jobs — from weighted classes over a seeded
// RNG, so two generators built with the same seed and mix emit
// byte-identical op streams: the property that makes a soak failure
// replayable and a fault schedule deterministic.
//
// Ops mostly reuse specs from a per-generator pool (realistic
// programs resubmit the same kernels, and reuse is what exercises the
// engine's canonical cache and single-flight paths), with a fresh
// unique pattern mixed in to keep cold solves flowing.

package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dspaddr/internal/model"
)

// OpKind classifies one generated operation.
type OpKind int

const (
	// OpSync is one synchronous solve (POST /v1/allocate).
	OpSync OpKind = iota
	// OpBatch is a synchronous multi-job request (POST /v1/batch).
	OpBatch
	// OpAsync is an async submission to poll to completion
	// (POST /v1/jobs, then GET /v1/jobs/{id}).
	OpAsync
	// OpAsyncBurst is a large multi-job async submission — the
	// overload shape that fills the admission queue and provokes 429s.
	OpAsyncBurst
	// OpCancel is an async submission the driver cancels mid-flight
	// (DELETE /v1/jobs/{id} racing the solve).
	OpCancel
	// OpBigN is a pathological large-N solve submitted async; it may
	// legitimately resolve as timeout under the server's job deadline.
	OpBigN
)

// String names the op class (report keys, latency buckets).
func (k OpKind) String() string {
	switch k {
	case OpSync:
		return "sync"
	case OpBatch:
		return "batch"
	case OpAsync:
		return "async"
	case OpAsyncBurst:
		return "burst"
	case OpCancel:
		return "cancel"
	case OpBigN:
		return "bign"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// JobSpec is one allocation job in generator form — exactly the
// information a driver needs to build a wire request and to run the
// same job through the in-process reference allocator.
type JobSpec struct {
	// Pattern is the inline access pattern; empty Offsets means the
	// job is a loop job instead.
	Pattern model.Pattern
	// Loop is mini-C loop source (loop jobs only) with Bindings
	// resolving its symbolic constants.
	Loop     string
	Bindings map[string]int
	// AGU is the register constraint and modify range.
	AGU model.AGUSpec
	// Wrap includes inter-iteration updates in the objective.
	Wrap bool
	// Strategy names the merge heuristic ("" = greedy).
	Strategy string
}

// IsLoop reports whether the spec is a loop-DSL job.
func (j JobSpec) IsLoop() bool { return j.Loop != "" }

// Key is a stable identity for reference-solve caching: two specs
// with equal keys allocate identically.
func (j JobSpec) Key() string {
	var b strings.Builder
	if j.IsLoop() {
		fmt.Fprintf(&b, "L|%s|", j.Loop)
		// Bindings in sorted order for stability.
		keys := make([]string, 0, len(j.Bindings))
		for k := range j.Bindings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%d;", k, j.Bindings[k])
		}
	} else {
		fmt.Fprintf(&b, "P|%d|%v|", j.Pattern.Stride, j.Pattern.Offsets)
	}
	fmt.Fprintf(&b, "|K%d|M%d|w%v|%s", j.AGU.Registers, j.AGU.ModifyRange, j.Wrap, j.Strategy)
	return b.String()
}

// Op is one generated operation.
type Op struct {
	// Kind selects the driver behavior.
	Kind OpKind
	// Jobs carries one spec for sync/async/cancel/bign ops and
	// several for batch/burst ops.
	Jobs []JobSpec
	// Priority is the async submission priority.
	Priority int
}

// Mix weighs the op classes; zero-weight classes never fire. The zero
// Mix is invalid — use DefaultMix for a balanced stream.
type Mix struct {
	Sync, Batch, Async, Burst, Cancel, BigN int
}

// DefaultMix is a balanced steady-state stream: mostly small sync and
// async traffic, periodic batches, a trickle of cancels and large-N
// jobs, no overload bursts.
func DefaultMix() Mix { return Mix{Sync: 3, Batch: 1, Async: 5, Cancel: 1, BigN: 1} }

// total returns the weight sum (0 for an all-zero mix).
func (m Mix) total() int { return m.Sync + m.Batch + m.Async + m.Burst + m.Cancel + m.BigN }

// ParseMix reads the compact "class:weight,..." form used by scenario
// files, e.g. "sync:3,async:5,cancel:1". Unknown classes are errors;
// omitted classes weigh zero.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, ":")
		if !ok {
			return Mix{}, fmt.Errorf("workload: bad mix term %q (want class:weight)", part)
		}
		var w int
		if _, err := fmt.Sscanf(wstr, "%d", &w); err != nil || w < 0 {
			return Mix{}, fmt.Errorf("workload: bad mix weight %q", wstr)
		}
		switch name {
		case "sync":
			m.Sync = w
		case "batch":
			m.Batch = w
		case "async":
			m.Async = w
		case "burst":
			m.Burst = w
		case "cancel":
			m.Cancel = w
		case "bign":
			m.BigN = w
		default:
			return Mix{}, fmt.Errorf("workload: unknown mix class %q", name)
		}
	}
	if m.total() == 0 {
		return Mix{}, fmt.Errorf("workload: mix %q has zero total weight", s)
	}
	return m, nil
}

// String renders the mix back in ParseMix form.
func (m Mix) String() string {
	var parts []string
	add := func(name string, w int) {
		if w > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", name, w))
		}
	}
	add("sync", m.Sync)
	add("batch", m.Batch)
	add("async", m.Async)
	add("burst", m.Burst)
	add("cancel", m.Cancel)
	add("bign", m.BigN)
	return strings.Join(parts, ",")
}

// TrafficGen emits a deterministic op stream. Not safe for concurrent
// use; give each driver goroutine its own generator (distinct seeds
// keep their streams distinct).
type TrafficGen struct {
	rng  *rand.Rand
	mix  Mix
	pool []JobSpec // recurring specs: cache hits, single-flight, dedup
	// burstSize is the job count of one OpAsyncBurst submission; sized
	// against the server's queue capacity by the caller.
	burstSize int
	// freshFraction permils of single-job draws that are unique
	// patterns rather than pool reuse.
	freshFraction int
	fresh         int // serial for unique fresh patterns
}

// TrafficOptions tunes a generator.
type TrafficOptions struct {
	// Mix weighs the op classes; zero means DefaultMix.
	Mix Mix
	// PoolSize is the recurring-spec pool (0 = 48).
	PoolSize int
	// BurstSize is the jobs per OpAsyncBurst (0 = 32).
	BurstSize int
	// FreshFraction permils (0-1000) of single-job ops drawn as fresh
	// unique patterns instead of pool reuse (0 = 150, i.e. 15%).
	FreshFraction int
}

// NewTrafficGen builds a generator; equal (seed, opts) pairs yield
// identical streams.
func NewTrafficGen(seed int64, opts TrafficOptions) *TrafficGen {
	if opts.Mix.total() == 0 {
		opts.Mix = DefaultMix()
	}
	if opts.PoolSize <= 0 {
		opts.PoolSize = 48
	}
	if opts.BurstSize <= 0 {
		opts.BurstSize = 32
	}
	if opts.FreshFraction <= 0 {
		opts.FreshFraction = 150
	}
	g := &TrafficGen{
		rng:           rand.New(rand.NewSource(seed)),
		mix:           opts.Mix,
		burstSize:     opts.BurstSize,
		freshFraction: opts.FreshFraction,
	}
	g.pool = make([]JobSpec, 0, opts.PoolSize)
	names := KernelNames()
	for i := 0; i < opts.PoolSize; i++ {
		// Every 4th pool entry is a real DSP kernel through the loop
		// DSL; the rest are small random patterns.
		if i%4 == 3 {
			k := kernels()[names[g.rng.Intn(len(names))]]
			g.pool = append(g.pool, JobSpec{
				Loop:     k.Source,
				Bindings: k.Bindings,
				AGU:      g.randomAGU(),
				Wrap:     g.rng.Intn(4) == 0,
			})
			continue
		}
		g.pool = append(g.pool, g.freshPattern(4+g.rng.Intn(20), opts.FreshFraction))
	}
	return g
}

// randomAGU draws a plausible AGU shape: K in [1,4], M in [0,2].
func (g *TrafficGen) randomAGU() model.AGUSpec {
	return model.AGUSpec{Registers: 1 + g.rng.Intn(4), ModifyRange: g.rng.Intn(3)}
}

// freshPattern draws a unique random-pattern spec of about n accesses.
func (g *TrafficGen) freshPattern(n, _ int) JobSpec {
	dist := Distribution(g.rng.Intn(3))
	pat, err := RandomPattern(g.rng, RandomParams{
		N:           n,
		OffsetRange: 4 + g.rng.Intn(8),
		Dist:        dist,
	})
	if err != nil {
		panic(err) // parameters are in-range by construction
	}
	g.fresh++
	pat.Array = fmt.Sprintf("A%d", g.fresh) // informational only
	strategy := ""
	switch g.rng.Intn(8) {
	case 0:
		strategy = "smallest"
	case 1:
		strategy = "naive"
	}
	return JobSpec{Pattern: pat, AGU: g.randomAGU(), Wrap: g.rng.Intn(5) == 0, Strategy: strategy}
}

// jobSpec draws one job: pool reuse most of the time, fresh otherwise.
func (g *TrafficGen) jobSpec() JobSpec {
	if g.rng.Intn(1000) < g.freshFraction {
		return g.freshPattern(4+g.rng.Intn(20), g.freshFraction)
	}
	return g.pool[g.rng.Intn(len(g.pool))]
}

// bigNSpec draws a pathological large-N pattern job. These are cold
// (unique) by construction and may time out server-side — that is the
// point.
func (g *TrafficGen) bigNSpec() JobSpec {
	spec := g.freshPattern(28+g.rng.Intn(8), g.freshFraction)
	spec.AGU = model.AGUSpec{Registers: 2 + g.rng.Intn(3), ModifyRange: 1 + g.rng.Intn(2)}
	spec.Strategy = "" // greedy merge; phase-1 cover is the load
	return spec
}

// Next draws the next operation.
func (g *TrafficGen) Next() Op {
	w := g.rng.Intn(g.mix.total())
	switch {
	case w < g.mix.Sync:
		return Op{Kind: OpSync, Jobs: []JobSpec{g.jobSpec()}}
	case w < g.mix.Sync+g.mix.Batch:
		n := 2 + g.rng.Intn(7)
		jobs := make([]JobSpec, n)
		for i := range jobs {
			jobs[i] = g.jobSpec()
		}
		return Op{Kind: OpBatch, Jobs: jobs}
	case w < g.mix.Sync+g.mix.Batch+g.mix.Async:
		return Op{Kind: OpAsync, Jobs: []JobSpec{g.jobSpec()}, Priority: g.rng.Intn(3)}
	case w < g.mix.Sync+g.mix.Batch+g.mix.Async+g.mix.Burst:
		jobs := make([]JobSpec, g.burstSize)
		for i := range jobs {
			jobs[i] = g.jobSpec()
		}
		return Op{Kind: OpAsyncBurst, Jobs: jobs, Priority: g.rng.Intn(3)}
	case w < g.mix.Sync+g.mix.Batch+g.mix.Async+g.mix.Burst+g.mix.Cancel:
		return Op{Kind: OpCancel, Jobs: []JobSpec{g.jobSpec()}, Priority: g.rng.Intn(3)}
	default:
		return Op{Kind: OpBigN, Jobs: []JobSpec{g.bigNSpec()}, Priority: g.rng.Intn(3)}
	}
}
