package workload

import (
	"math/rand"
	"testing"

	"dspaddr/internal/codegen"
	"dspaddr/internal/core"
	"dspaddr/internal/dspsim"
	"dspaddr/internal/model"
)

func TestRandomPatternUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pat, err := RandomPattern(rng, RandomParams{N: 50, OffsetRange: 6})
	if err != nil {
		t.Fatal(err)
	}
	if pat.N() != 50 || pat.Stride != 1 {
		t.Fatalf("pattern = %v", pat)
	}
	for _, d := range pat.Offsets {
		if d < -6 || d > 6 {
			t.Fatalf("offset %d outside range", d)
		}
	}
}

func TestRandomPatternDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, dist := range []Distribution{Uniform, Clustered, Walk} {
		pat, err := RandomPattern(rng, RandomParams{N: 100, OffsetRange: 5, Dist: dist, Stride: 2})
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		if pat.N() != 100 || pat.Stride != 2 {
			t.Fatalf("%v: pattern %v", dist, pat)
		}
		for _, d := range pat.Offsets {
			if d < -5 || d > 5 {
				t.Fatalf("%v: offset %d outside range", dist, d)
			}
		}
	}
}

func TestRandomPatternWalkIsLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	pat, err := RandomPattern(rng, RandomParams{N: 200, OffsetRange: 10, Dist: Walk})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < pat.N(); k++ {
		if d := pat.Distance(k-1, k); d < -2 || d > 2 {
			t.Fatalf("walk step %d too large", d)
		}
	}
}

func TestRandomPatternDeterministic(t *testing.T) {
	p1, _ := RandomPattern(rand.New(rand.NewSource(9)), RandomParams{N: 20, OffsetRange: 4})
	p2, _ := RandomPattern(rand.New(rand.NewSource(9)), RandomParams{N: 20, OffsetRange: 4})
	for i := range p1.Offsets {
		if p1.Offsets[i] != p2.Offsets[i] {
			t.Fatal("same seed must give same pattern")
		}
	}
}

func TestRandomPatternValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomPattern(rng, RandomParams{N: 0, OffsetRange: 1}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := RandomPattern(rng, RandomParams{N: 1, OffsetRange: -1}); err == nil {
		t.Fatal("negative range accepted")
	}
	if _, err := RandomPattern(rng, RandomParams{N: 1, OffsetRange: 1, Stride: -2}); err == nil {
		t.Fatal("negative stride accepted")
	}
	if _, err := RandomPattern(rng, RandomParams{N: 1, OffsetRange: 1, Dist: Distribution(9)}); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Clustered.String() != "clustered" || Walk.String() != "walk" {
		t.Fatal("distribution names wrong")
	}
	if Distribution(7).String() != "Distribution(7)" {
		t.Fatal("unknown distribution name wrong")
	}
}

func TestKernelLibraryLoads(t *testing.T) {
	names := KernelNames()
	if len(names) < 8 {
		t.Fatalf("kernel library too small: %v", names)
	}
	for _, n := range names {
		k, err := KernelByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Loop.Validate(); err != nil {
			t.Fatalf("kernel %s: %v", n, err)
		}
		if k.Loop.Iterations() < 1 {
			t.Fatalf("kernel %s runs no iterations", n)
		}
		if k.Description == "" {
			t.Fatalf("kernel %s lacks a description", n)
		}
	}
	if _, err := KernelByName("nope"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestAllKernelsOrdered(t *testing.T) {
	ks := AllKernels()
	names := KernelNames()
	if len(ks) != len(names) {
		t.Fatal("AllKernels/KernelNames mismatch")
	}
	for i, k := range ks {
		if k.Name != names[i] {
			t.Fatalf("order mismatch at %d: %s vs %s", i, k.Name, names[i])
		}
	}
}

func TestFIRKernelShape(t *testing.T) {
	k, err := KernelByName("fir8")
	if err != nil {
		t.Fatal(err)
	}
	pats, _ := k.Loop.Patterns()
	byName := map[string]model.Pattern{}
	for _, p := range pats {
		byName[p.Array] = p
	}
	x, ok := byName["x"]
	if !ok || x.N() != 8 {
		t.Fatalf("fir8 x accesses = %v", x)
	}
	for j, d := range x.Offsets {
		if d != -j {
			t.Fatalf("fir8 x offsets = %v", x.Offsets)
		}
	}
	if y := byName["y"]; y.N() != 1 || y.Offsets[0] != 0 {
		t.Fatalf("fir8 y accesses = %v", y)
	}
	if len(k.Scalars) == 0 {
		t.Fatal("fir8 should reference coefficient scalars")
	}
}

// Every kernel must be allocatable and its generated code must
// reproduce the exact source address trace on the simulator.
func TestKernelsEndToEnd(t *testing.T) {
	for _, k := range AllKernels() {
		pats, _ := k.Loop.Patterns()
		kReg := len(pats) + 2
		alloc, err := core.AllocateLoop(k.Loop, core.Config{
			AGU: model.AGUSpec{Registers: kReg, ModifyRange: 1},
		})
		if err != nil {
			t.Fatalf("kernel %s: %v", k.Name, err)
		}
		bases, words := codegen.AutoBases(k.Loop)
		prog, err := codegen.GenerateOptimized(alloc, bases, dspsim.ADD)
		if err != nil {
			t.Fatalf("kernel %s: %v", k.Name, err)
		}
		if err := prog.Verify(words); err != nil {
			t.Fatalf("kernel %s: %v", k.Name, err)
		}
		naive, err := codegen.GenerateNaive(k.Loop, bases, 1, dspsim.ADD)
		if err != nil {
			t.Fatalf("kernel %s: %v", k.Name, err)
		}
		if err := naive.Verify(words); err != nil {
			t.Fatalf("kernel %s naive: %v", k.Name, err)
		}
	}
}

func TestParseDistribution(t *testing.T) {
	for name, want := range map[string]Distribution{
		"uniform": Uniform, "clustered": Clustered, "walk": Walk,
	} {
		got, err := ParseDistribution(name)
		if err != nil || got != want {
			t.Errorf("ParseDistribution(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseDistribution("bogus"); err == nil {
		t.Error("unknown name accepted")
	}
}
