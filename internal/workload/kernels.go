package workload

import (
	"fmt"
	"sort"

	"dspaddr/internal/frontend"
	"dspaddr/internal/model"
)

// Kernel is one realistic DSP loop, written in the mini-C language and
// lowered through the frontend — the kernels stand in for the paper's
// "realistic DSP programs" (DSPstone-era benchmarks).
type Kernel struct {
	// Name identifies the kernel in tables.
	Name string
	// Description says what the loop computes.
	Description string
	// Source is the mini-C text.
	Source string
	// Bindings resolves the source's symbolic constants.
	Bindings map[string]int
	// Loop is the lowered loop.
	Loop model.LoopSpec
	// Scalars is the body's scalar access sequence (input to the
	// complementary offset-assignment optimizer).
	Scalars []frontend.ScalarAccess
}

// kernelSources lists the library; every entry is parsed and validated
// at first use.
var kernelSources = []struct {
	name, desc, src string
	bindings        map[string]int
}{
	{
		name: "fir8",
		desc: "8-tap FIR filter, taps unrolled",
		src: `
for (i = 7; i <= N; i++) {
    y[i] = c0*x[i] + c1*x[i-1] + c2*x[i-2] + c3*x[i-3]
         + c4*x[i-4] + c5*x[i-5] + c6*x[i-6] + c7*x[i-7];
}`,
		bindings: map[string]int{"N": 127},
	},
	{
		name: "iir-biquad",
		desc: "direct-form-I IIR biquad section",
		src: `
for (i = 2; i <= N; i++) {
    y[i] = b0*x[i] + b1*x[i-1] + b2*x[i-2] - a1*y[i-1] - a2*y[i-2];
}`,
		bindings: map[string]int{"N": 127},
	},
	{
		name: "conv5",
		desc: "5-point convolution window",
		src: `
for (i = 2; i <= N; i++) {
    y[i] = k0*x[i-2] + k1*x[i-1] + k2*x[i] + k3*x[i+1] + k4*x[i+2];
}`,
		bindings: map[string]int{"N": 125},
	},
	{
		name: "xcorr4",
		desc: "cross-correlation of two signals, lag window 4",
		src: `
for (i = 0; i <= N; i++) {
    r[i] = a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3];
}`,
		bindings: map[string]int{"N": 123},
	},
	{
		name: "moving-avg",
		desc: "recursive moving average (window 8)",
		src: `
for (i = 8; i <= N; i++) {
    y[i] = y[i-1] + x[i] - x[i-8];
}`,
		bindings: map[string]int{"N": 127},
	},
	{
		name: "stencil3",
		desc: "three-point Laplacian stencil",
		src: `
for (i = 1; i <= N; i++) {
    b[i] = a[i-1] - 2*a[i] + a[i+1];
}`,
		bindings: map[string]int{"N": 126},
	},
	{
		name: "lms4",
		desc: "LMS adaptive filter tap update, 4 taps unrolled",
		src: `
for (i = 0; i <= N; i += 4) {
    w[i]   += mu*x[i];
    w[i+1] += mu*x[i+1];
    w[i+2] += mu*x[i+2];
    w[i+3] += mu*x[i+3];
}`,
		bindings: map[string]int{"N": 124},
	},
	{
		name: "fft-bfly",
		desc: "radix-2 FFT butterfly pass (half = 8), real/imag interleaved in two arrays",
		src: `
for (i = 0; i <= N; i++) {
    tr = re[i+8] * wr - im[i+8] * wi;
    ti = re[i+8] * wi + im[i+8] * wr;
    re[i+8] = re[i] - tr;
    im[i+8] = im[i] - ti;
    re[i] = re[i] + tr;
    im[i] = im[i] + ti;
}`,
		bindings: map[string]int{"N": 7},
	},
	{
		name: "dct8-col",
		desc: "8-point DCT column pass, block-strided",
		src: `
for (i = 0; i <= N; i += 8) {
    s0 = x[i]   + x[i+7];
    s1 = x[i+1] + x[i+6];
    s2 = x[i+2] + x[i+5];
    s3 = x[i+3] + x[i+4];
    y[i]   = s0 + s1 + s2 + s3;
    y[i+4] = s0 - s1 - s2 + s3;
}`,
		bindings: map[string]int{"N": 120},
	},
	{
		name: "vec-dot",
		desc: "vector dot product, 4-way unrolled",
		src: `
for (i = 0; i <= N; i += 4) {
    acc += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3];
}`,
		bindings: map[string]int{"N": 124},
	},
	{
		name: "fir16",
		desc: "16-tap FIR filter, taps unrolled",
		src: `
for (i = 15; i <= N; i++) {
    y[i] = c0*x[i]     + c1*x[i-1]  + c2*x[i-2]   + c3*x[i-3]
         + c4*x[i-4]   + c5*x[i-5]  + c6*x[i-6]   + c7*x[i-7]
         + c8*x[i-8]   + c9*x[i-9]  + c10*x[i-10] + c11*x[i-11]
         + c12*x[i-12] + c13*x[i-13] + c14*x[i-14] + c15*x[i-15];
}`,
		bindings: map[string]int{"N": 127},
	},
	{
		name: "lattice2",
		desc: "two-stage lattice filter update",
		src: `
for (i = 1; i <= N; i++) {
    f[i] = f[i-1] + k1*g[i-1];
    g[i] = g[i-1] + k1*f[i-1];
}`,
		bindings: map[string]int{"N": 126},
	},
	{
		name: "cplx-mult",
		desc: "complex vector multiply, split real/imaginary arrays",
		src: `
for (i = 0; i <= N; i++) {
    cr[i] = ar[i]*br[i] - ai[i]*bi[i];
    ci[i] = ar[i]*bi[i] + ai[i]*br[i];
}`,
		bindings: map[string]int{"N": 126},
	},
	{
		name: "interp4",
		desc: "4-point interpolation window",
		src: `
for (i = 1; i <= N; i++) {
    y[i] = w0*x[i-1] + w1*x[i] + w2*x[i+1] + w3*x[i+2];
}`,
		bindings: map[string]int{"N": 125},
	},
}

var kernelCache map[string]*Kernel

func buildKernels() (map[string]*Kernel, error) {
	out := make(map[string]*Kernel, len(kernelSources))
	for _, ks := range kernelSources {
		prog, err := frontend.Parse(ks.src, ks.bindings)
		if err != nil {
			return nil, fmt.Errorf("workload: kernel %q: %w", ks.name, err)
		}
		out[ks.name] = &Kernel{
			Name:        ks.name,
			Description: ks.desc,
			Source:      ks.src,
			Bindings:    ks.bindings,
			Loop:        prog.Loop,
			Scalars:     prog.Scalars,
		}
	}
	return out, nil
}

func kernels() map[string]*Kernel {
	if kernelCache == nil {
		m, err := buildKernels()
		if err != nil {
			panic(err) // library sources are fixtures; failure is a bug
		}
		kernelCache = m
	}
	return kernelCache
}

// KernelNames lists the library alphabetically.
func KernelNames() []string {
	m := kernels()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// KernelByName fetches one kernel.
func KernelByName(name string) (*Kernel, error) {
	if k, ok := kernels()[name]; ok {
		return k, nil
	}
	return nil, fmt.Errorf("workload: unknown kernel %q (have %v)", name, KernelNames())
}

// AllKernels returns the library in name order.
func AllKernels() []*Kernel {
	var out []*Kernel
	for _, n := range KernelNames() {
		out = append(out, kernels()[n])
	}
	return out
}
