// Package workload supplies the inputs of the paper's experiments:
// seeded random access patterns (the Results section's statistical
// analysis sweeps N, M and K over such patterns) and a library of
// realistic DSP kernels expressed in the mini-C loop language (the
// Results section's "realistic DSP programs").
package workload

import (
	"fmt"
	"math/rand"

	"dspaddr/internal/model"
)

// Distribution selects the shape of random offset sequences.
type Distribution int

const (
	// Uniform draws each offset independently from
	// [-OffsetRange, +OffsetRange].
	Uniform Distribution = iota
	// Clustered draws offsets near a few cluster centres, mimicking
	// kernels that work on a handful of window positions.
	Clustered
	// Walk draws each offset as a bounded random step from the
	// previous one, mimicking sliding-window access.
	Walk
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Clustered:
		return "clustered"
	case Walk:
		return "walk"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution resolves a distribution name ("uniform",
// "clustered", "walk").
func ParseDistribution(name string) (Distribution, error) {
	switch name {
	case "uniform":
		return Uniform, nil
	case "clustered":
		return Clustered, nil
	case "walk":
		return Walk, nil
	default:
		return 0, fmt.Errorf("workload: unknown distribution %q (want uniform|clustered|walk)", name)
	}
}

// RandomParams configures RandomPattern.
type RandomParams struct {
	// N is the number of accesses per iteration.
	N int
	// OffsetRange bounds the absolute offset values.
	OffsetRange int
	// Stride is the loop stride (default 1).
	Stride int
	// Dist selects the offset distribution.
	Dist Distribution
	// Clusters is the number of centres for the Clustered
	// distribution (default 3).
	Clusters int
}

// RandomPattern draws an access pattern from the given distribution
// using the caller's RNG (experiments pass fixed seeds).
func RandomPattern(rng *rand.Rand, p RandomParams) (model.Pattern, error) {
	if p.N < 1 {
		return model.Pattern{}, fmt.Errorf("workload: N must be positive, got %d", p.N)
	}
	if p.OffsetRange < 0 {
		return model.Pattern{}, fmt.Errorf("workload: offset range must be non-negative, got %d", p.OffsetRange)
	}
	stride := p.Stride
	if stride == 0 {
		stride = 1
	}
	if stride < 0 {
		return model.Pattern{}, fmt.Errorf("workload: stride must be positive, got %d", stride)
	}
	offs := make([]int, p.N)
	switch p.Dist {
	case Uniform:
		for i := range offs {
			offs[i] = rng.Intn(2*p.OffsetRange+1) - p.OffsetRange
		}
	case Clustered:
		nc := p.Clusters
		if nc < 1 {
			nc = 3
		}
		centres := make([]int, nc)
		for i := range centres {
			centres[i] = rng.Intn(2*p.OffsetRange+1) - p.OffsetRange
		}
		for i := range offs {
			c := centres[rng.Intn(nc)]
			off := c + rng.Intn(3) - 1
			offs[i] = clamp(off, -p.OffsetRange, p.OffsetRange)
		}
	case Walk:
		cur := rng.Intn(2*p.OffsetRange+1) - p.OffsetRange
		for i := range offs {
			offs[i] = cur
			cur = clamp(cur+rng.Intn(5)-2, -p.OffsetRange, p.OffsetRange)
		}
	default:
		return model.Pattern{}, fmt.Errorf("workload: unknown distribution %v", p.Dist)
	}
	return model.Pattern{Array: "A", Stride: stride, Offsets: offs}, nil
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
