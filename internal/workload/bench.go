// Deterministic benchmark workloads shared by the top-level
// micro-benchmarks, the in-package merge/pathcover benchmarks and the
// rcabench baseline mode (BENCH_*.json). Keeping the generators here
// guarantees all three measure byte-identical inputs — the README
// table, the reference-vs-incremental comparisons and the CI
// regression gate stay comparable by construction.

package workload

import (
	"math/rand"

	"dspaddr/internal/model"
)

// BenchPattern draws the micro-benchmark pattern shape: n offsets
// uniform in [-8, +8], stride 1. Callers pass a seeded rng so
// multi-pattern benchmarks (e.g. a 64-job batch) can draw a
// deterministic sequence.
func BenchPattern(rng *rand.Rand, n int) model.Pattern {
	offs := make([]int, n)
	for i := range offs {
		offs[i] = rng.Intn(17) - 8
	}
	return model.Pattern{Array: "A", Stride: 1, Offsets: offs}
}

// WideMergePattern is the phase-2 stress workload: 48 offsets spread
// far beyond modify range 1, so the zero-cost cover degenerates to
// ~48 singleton paths and a merge down to few registers does maximal
// pairwise work (BenchmarkGreedyMergeLarge and the merge/greedy/R=48
// baseline entry).
func WideMergePattern() model.Pattern {
	rng := rand.New(rand.NewSource(48))
	offs := make([]int, 48)
	for i := range offs {
		offs[i] = rng.Intn(2001) - 1000
	}
	return model.Pattern{Array: "A", Stride: 1, Offsets: offs}
}
