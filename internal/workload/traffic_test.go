package workload

import (
	"reflect"
	"testing"
)

// TestTrafficDeterminism: same (seed, options) ⇒ byte-identical op
// streams — the property that makes soak runs replayable.
func TestTrafficDeterminism(t *testing.T) {
	opts := TrafficOptions{Mix: Mix{Sync: 3, Batch: 1, Async: 5, Burst: 1, Cancel: 1, BigN: 1}}
	a := NewTrafficGen(42, opts)
	b := NewTrafficGen(42, opts)
	for i := 0; i < 500; i++ {
		oa, ob := a.Next(), b.Next()
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("op %d diverged:\n a=%+v\n b=%+v", i, oa, ob)
		}
	}
	// A different seed must diverge quickly (sanity, not a guarantee
	// for any single op).
	c := NewTrafficGen(43, opts)
	diverged := false
	for i := 0; i < 50; i++ {
		if !reflect.DeepEqual(a.Next(), c.Next()) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical 50-op streams")
	}
}

// TestTrafficSpecsValid: every generated job spec is well-formed
// (exactly one of pattern/loop, sane AGU) and every weighted class
// eventually fires.
func TestTrafficSpecsValid(t *testing.T) {
	g := NewTrafficGen(7, TrafficOptions{
		Mix:       Mix{Sync: 2, Batch: 2, Async: 2, Burst: 1, Cancel: 2, BigN: 2},
		BurstSize: 8,
	})
	seen := map[OpKind]int{}
	for i := 0; i < 2000; i++ {
		op := g.Next()
		seen[op.Kind]++
		if len(op.Jobs) == 0 {
			t.Fatalf("op %d (%s) has no jobs", i, op.Kind)
		}
		if op.Kind == OpAsyncBurst && len(op.Jobs) != 8 {
			t.Fatalf("burst carries %d jobs, want 8", len(op.Jobs))
		}
		if op.Priority < 0 {
			t.Fatalf("negative priority %d", op.Priority)
		}
		for _, j := range op.Jobs {
			hasPattern := len(j.Pattern.Offsets) > 0
			if hasPattern == j.IsLoop() {
				t.Fatalf("op %d (%s): spec is neither pattern nor loop (or both): %+v", i, op.Kind, j)
			}
			if j.AGU.Registers < 1 || j.AGU.ModifyRange < 0 {
				t.Fatalf("op %d: bad AGU %+v", i, j.AGU)
			}
			if j.Key() == "" {
				t.Fatalf("op %d: empty spec key", i)
			}
		}
	}
	for _, k := range []OpKind{OpSync, OpBatch, OpAsync, OpAsyncBurst, OpCancel, OpBigN} {
		if seen[k] == 0 {
			t.Errorf("class %s never fired in 2000 ops (mix broken)", k)
		}
	}
}

// TestTrafficPoolReuse: the default stream revisits pool specs — the
// repetition that exercises the engine cache and job-dedup paths.
func TestTrafficPoolReuse(t *testing.T) {
	g := NewTrafficGen(1, TrafficOptions{Mix: Mix{Sync: 1}})
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		counts[g.Next().Jobs[0].Key()]++
	}
	reused := 0
	for _, n := range counts {
		if n > 1 {
			reused++
		}
	}
	if reused < 10 {
		t.Fatalf("only %d spec keys repeated across 400 sync ops — pool reuse broken", reused)
	}
}

// TestParseMix round-trips and rejects junk.
func TestParseMix(t *testing.T) {
	m, err := ParseMix("sync:3,async:5,cancel:1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Sync: 3, Async: 5, Cancel: 1}) {
		t.Fatalf("parsed %+v", m)
	}
	if got := m.String(); got != "sync:3,async:5,cancel:1" {
		t.Fatalf("String() = %q", got)
	}
	for _, bad := range []string{"", "sync", "sync:x", "warp:1", "sync:-2", "sync:0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}
