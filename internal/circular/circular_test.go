package circular

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomInput(rng *rand.Rand, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(21) - 10
	}
	return out
}

func TestReferenceKnownValues(t *testing.T) {
	// Moving sum of width 2: y[i] = x[i] + x[i-1].
	got := Reference([]int{1, 1}, []int{1, 2, 3, 4})
	want := []int{1, 3, 5, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Reference = %v, want %v", got, want)
	}
	// Weighted: y[i] = 2*x[i] - x[i-1].
	got = Reference([]int{2, -1}, []int{5, 0, 7})
	want = []int{10, -5, 14}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Reference = %v, want %v", got, want)
	}
}

func TestCircularMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 30; trial++ {
		taps := randomInput(rng, 1+rng.Intn(8))
		input := randomInput(rng, 4+rng.Intn(24))
		plan, err := BuildCircularFIR(taps, len(input))
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := plan.Run(input)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := Reference(taps, input); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: circular output %v, want %v (taps %v input %v)", trial, got, want, taps, input)
		}
	}
}

func TestShiftMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	for trial := 0; trial < 30; trial++ {
		taps := randomInput(rng, 1+rng.Intn(8))
		input := randomInput(rng, 4+rng.Intn(24))
		plan, err := BuildShiftFIR(taps, len(input))
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := plan.Run(input)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := Reference(taps, input); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: shift output %v, want %v (taps %v input %v)", trial, got, want, taps, input)
		}
	}
}

func TestCircularFasterAndSmallerThanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	for _, tapsN := range []int{4, 8, 16} {
		taps := randomInput(rng, tapsN)
		input := randomInput(rng, 32)
		circ, err := BuildCircularFIR(taps, len(input))
		if err != nil {
			t.Fatal(err)
		}
		shift, err := BuildShiftFIR(taps, len(input))
		if err != nil {
			t.Fatal(err)
		}
		mc, yc, err := circ.Run(input)
		if err != nil {
			t.Fatal(err)
		}
		ms, ys, err := shift.Run(input)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(yc, ys) {
			t.Fatalf("T=%d: implementations disagree", tapsN)
		}
		if mc.Cycles >= ms.Cycles {
			t.Fatalf("T=%d: circular %d cycles not faster than shift %d", tapsN, mc.Cycles, ms.Cycles)
		}
		if len(circ.Code) >= len(shift.Code) {
			t.Fatalf("T=%d: circular code %d words not smaller than shift %d", tapsN, len(circ.Code), len(shift.Code))
		}
	}
}

func TestSingleTapDegenerates(t *testing.T) {
	input := []int{3, -1, 4}
	for _, build := range []func([]int, int) (*Plan, error){BuildCircularFIR, BuildShiftFIR} {
		plan, err := build([]int{5}, len(input))
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := plan.Run(input)
		if err != nil {
			t.Fatal(err)
		}
		if want := []int{15, -5, 20}; !reflect.DeepEqual(got, want) {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := BuildCircularFIR(nil, 4); err == nil {
		t.Fatal("no taps accepted")
	}
	if _, err := BuildShiftFIR([]int{1}, 0); err == nil {
		t.Fatal("zero samples accepted")
	}
	plan, err := BuildCircularFIR([]int{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := plan.Run([]int{1, 2}); err == nil {
		t.Fatal("wrong input length accepted")
	}
}
