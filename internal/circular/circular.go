// Package circular demonstrates the AGU's modulo (circular-buffer)
// addressing on the classic delay-line FIR filter. Two functionally
// identical programs are generated:
//
//   - BuildCircularFIR keeps the last T samples in a circular delay
//     buffer addressed by a modulo register — inserting a sample is one
//     store and the tap walk wraps for free.
//   - BuildShiftFIR is what code without modulo addressing must do:
//     physically shift the window by one slot (2(T-1) memory moves)
//     before every sample.
//
// Both are executed on the dspsim machine and verified sample-by-sample
// against a pure-Go reference, so the speedup numbers of experiment A6
// come from provably equivalent programs.
package circular

import (
	"fmt"

	"dspaddr/internal/dspsim"
)

// Plan is a generated FIR program plus its memory map.
type Plan struct {
	// Code is the program.
	Code []dspsim.Instruction
	// Taps are the filter coefficients (c0 applies to the newest
	// sample).
	Taps []int
	// NSamples is the number of processed input samples.
	NSamples int
	// XBase, YBase, DBase, Scratch locate the input, output, delay
	// buffer and scratch accumulator in data memory.
	XBase, YBase, DBase, Scratch int
	// MemWords is the data memory size required.
	MemWords int
	// Registers is the AR-file size required.
	Registers int
}

// validate checks the common constructor arguments.
func validate(taps []int, nSamples int) error {
	if len(taps) < 1 {
		return fmt.Errorf("circular: need at least one tap")
	}
	if nSamples < 1 {
		return fmt.Errorf("circular: need at least one sample")
	}
	return nil
}

// BuildCircularFIR generates the modulo-addressed implementation.
// AR0 walks the input, AR1 the output, AR2 the delay buffer under
// modulo [DBase, DBase+T).
func BuildCircularFIR(taps []int, nSamples int) (*Plan, error) {
	if err := validate(taps, nSamples); err != nil {
		return nil, err
	}
	t := len(taps)
	p := &Plan{
		Taps: append([]int(nil), taps...), NSamples: nSamples,
		XBase: 0, YBase: nSamples, DBase: 2 * nSamples,
		Scratch: 2*nSamples + t, MemWords: 2*nSamples + t + 1,
		Registers: 3,
	}
	emit := func(in dspsim.Instruction) { p.Code = append(p.Code, in) }

	emit(dspsim.Instruction{Op: dspsim.LDAR, Reg: 0, Imm: p.XBase})
	emit(dspsim.Instruction{Op: dspsim.LDAR, Reg: 1, Imm: p.YBase})
	emit(dspsim.Instruction{Op: dspsim.LDAR, Reg: 2, Imm: p.DBase})
	emit(dspsim.Instruction{Op: dspsim.LDMOD, Reg: 2, Imm: p.DBase, Mod: t})
	emit(dspsim.Instruction{Op: dspsim.LDCTR, Imm: nSamples})
	body := len(p.Code)

	// Insert the newest sample; the modulo post-increment leaves AR2
	// at the oldest entry, which is exactly where the tap walk starts.
	emit(dspsim.Instruction{Op: dspsim.LD, Reg: 0, Mod: 1})  // ACC = x[i]
	emit(dspsim.Instruction{Op: dspsim.ST, Reg: 2, Mod: 1})  // D[head] = x[i]
	emit(dspsim.Instruction{Op: dspsim.LDACC, Imm: 0})       // ACC = 0
	emit(dspsim.Instruction{Op: dspsim.STD, Imm: p.Scratch}) // scratch = 0
	// Walk the T entries oldest -> newest; entry j from the end gets
	// tap c_j (c_0 is the newest).
	for j := 0; j < t; j++ {
		emit(dspsim.Instruction{Op: dspsim.LD, Reg: 2, Mod: 1})
		emit(dspsim.Instruction{Op: dspsim.MULI, Imm: taps[t-1-j]})
		emit(dspsim.Instruction{Op: dspsim.ADDD, Imm: p.Scratch})
		emit(dspsim.Instruction{Op: dspsim.STD, Imm: p.Scratch})
	}
	emit(dspsim.Instruction{Op: dspsim.LDD, Imm: p.Scratch})
	emit(dspsim.Instruction{Op: dspsim.ST, Reg: 1, Mod: 1}) // y[i] = ACC
	emit(dspsim.Instruction{Op: dspsim.DBNZ, Imm: body})
	emit(dspsim.Instruction{Op: dspsim.HALT})
	return p, nil
}

// BuildShiftFIR generates the window-shifting implementation used when
// modulo addressing is unavailable: before each sample, D[j] = D[j-1]
// for j = T-1 .. 1, then D[0] = x[i]. AR2 reads the shift source, AR3
// writes the destination.
func BuildShiftFIR(taps []int, nSamples int) (*Plan, error) {
	if err := validate(taps, nSamples); err != nil {
		return nil, err
	}
	t := len(taps)
	p := &Plan{
		Taps: append([]int(nil), taps...), NSamples: nSamples,
		XBase: 0, YBase: nSamples, DBase: 2 * nSamples,
		Scratch: 2*nSamples + t, MemWords: 2*nSamples + t + 1,
		Registers: 4,
	}
	emit := func(in dspsim.Instruction) { p.Code = append(p.Code, in) }

	emit(dspsim.Instruction{Op: dspsim.LDAR, Reg: 0, Imm: p.XBase})
	emit(dspsim.Instruction{Op: dspsim.LDAR, Reg: 1, Imm: p.YBase})
	emit(dspsim.Instruction{Op: dspsim.LDAR, Reg: 2, Imm: p.DBase + t - 2}) // shift source D[T-2]
	emit(dspsim.Instruction{Op: dspsim.LDAR, Reg: 3, Imm: p.DBase + t - 1}) // shift dest D[T-1]
	emit(dspsim.Instruction{Op: dspsim.LDCTR, Imm: nSamples})
	body := len(p.Code)

	// Shift the window: D[j] = D[j-1], j = T-1 .. 1 (skipped for T=1).
	for j := t - 1; j >= 1; j-- {
		emit(dspsim.Instruction{Op: dspsim.LD, Reg: 2, Mod: -1})
		emit(dspsim.Instruction{Op: dspsim.ST, Reg: 3, Mod: -1})
	}
	// D[0] = x[i]; AR3 sits at D[0] after the shifts (or at its
	// preamble position for T=1).
	emit(dspsim.Instruction{Op: dspsim.LD, Reg: 0, Mod: 1})
	emit(dspsim.Instruction{Op: dspsim.ST, Reg: 3})
	emit(dspsim.Instruction{Op: dspsim.LDACC, Imm: 0})
	emit(dspsim.Instruction{Op: dspsim.STD, Imm: p.Scratch})
	// Tap walk newest -> oldest: D[j] carries x[i-j], tap c_j.
	for j := 0; j < t; j++ {
		emit(dspsim.Instruction{Op: dspsim.LD, Reg: 3, Mod: 1})
		emit(dspsim.Instruction{Op: dspsim.MULI, Imm: taps[j]})
		emit(dspsim.Instruction{Op: dspsim.ADDD, Imm: p.Scratch})
		emit(dspsim.Instruction{Op: dspsim.STD, Imm: p.Scratch})
	}
	emit(dspsim.Instruction{Op: dspsim.LDD, Imm: p.Scratch})
	emit(dspsim.Instruction{Op: dspsim.ST, Reg: 1, Mod: 1}) // y[i] = ACC
	// Reposition the shift registers for the next sample: AR2 walked
	// from D[T-2] down to D[-1], AR3 from D[T-1] down to D[0] and then
	// up to D[T].
	emit(dspsim.Instruction{Op: dspsim.ADAR, Reg: 2, Imm: t - 1})
	emit(dspsim.Instruction{Op: dspsim.ADAR, Reg: 3, Imm: -1})
	emit(dspsim.Instruction{Op: dspsim.DBNZ, Imm: body})
	emit(dspsim.Instruction{Op: dspsim.HALT})
	return p, nil
}

// Run loads the input samples, executes the plan and returns the
// machine (for cycle counts) plus the produced output samples.
func (p *Plan) Run(input []int) (*dspsim.Machine, []int, error) {
	if len(input) != p.NSamples {
		return nil, nil, fmt.Errorf("circular: plan expects %d samples, got %d", p.NSamples, len(input))
	}
	// The shift walk uses immediate post-modifies of +-1 only; modulo
	// wraps are free regardless of M.
	m, err := dspsim.New(dspsim.Config{
		AddressRegisters: p.Registers,
		ModifyRange:      1,
		MemWords:         p.MemWords,
	})
	if err != nil {
		return nil, nil, err
	}
	copy(m.Mem[p.XBase:], input)
	budget := 64 + len(p.Code)*p.NSamples*4
	if err := m.Run(p.Code, budget); err != nil {
		return nil, nil, err
	}
	out := make([]int, p.NSamples)
	copy(out, m.Mem[p.YBase:p.YBase+p.NSamples])
	return m, out, nil
}

// Reference computes the FIR output in plain Go:
// y[i] = sum_j taps[j] * x[i-j], with x[<0] = 0.
func Reference(taps, input []int) []int {
	out := make([]int, len(input))
	for i := range input {
		acc := 0
		for j, c := range taps {
			if i-j >= 0 {
				acc += c * input[i-j]
			}
		}
		out[i] = acc
	}
	return out
}
