package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// echoRunner completes instantly, echoing its payload.
func echoRunner(ctx context.Context, payload any) (any, error) {
	return payload, nil
}

// gatedRunner blocks every job until release is closed (or its
// context is canceled), recording execution order.
type gatedRunner struct {
	release chan struct{}
	mu      sync.Mutex
	order   []any
}

func newGatedRunner() *gatedRunner { return &gatedRunner{release: make(chan struct{})} }

func (g *gatedRunner) run(ctx context.Context, payload any) (any, error) {
	g.mu.Lock()
	g.order = append(g.order, payload)
	g.mu.Unlock()
	select {
	case <-g.release:
		return payload, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// waitState polls until the job reaches a terminal state or the
// deadline passes; it fails the test on lookup errors.
func waitState(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return Status{}
}

func TestSubmitRunDone(t *testing.T) {
	m := New(Options{Run: echoRunner, Runners: 2})
	defer m.Close()
	id, err := m.Submit("hello", 0)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, id)
	if st.State != StateDone {
		t.Fatalf("state %s, want done", st.State)
	}
	if st.Result != "hello" {
		t.Fatalf("result %v", st.Result)
	}
	if st.StartedAt.IsZero() || st.FinishedAt.IsZero() || st.SubmittedAt.IsZero() {
		t.Fatalf("missing timestamps: %+v", st)
	}
	if st.QueueWait < 0 || st.RunTime < 0 {
		t.Fatalf("negative latency: %+v", st)
	}
	mt := m.Metrics()
	if mt.Submitted != 1 || mt.Done != 1 || mt.QueueDepth != 0 || mt.Running != 0 {
		t.Fatalf("metrics off: %+v", mt)
	}
}

// TestPriorityOrder parks one job on the single runner, queues a
// low- and a high-priority job, and checks the high one runs first
// (FIFO would run the low one).
func TestPriorityOrder(t *testing.T) {
	g := newGatedRunner()
	m := New(Options{Run: g.run, Runners: 1})
	defer m.Close()

	blocker, err := m.Submit("blocker", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, blocker)
	if _, err := m.Submit("low", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("high", 10); err != nil {
		t.Fatal(err)
	}
	close(g.release)
	for _, id := range ids(t, m) {
		waitState(t, m, id)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.order) != 3 || g.order[0] != "blocker" || g.order[1] != "high" || g.order[2] != "low" {
		t.Fatalf("execution order %v, want [blocker high low]", g.order)
	}
}

// ids lists every tracked job ID.
func ids(t *testing.T, m *Manager) []string {
	t.Helper()
	sts, _ := m.List("", 0, 0)
	out := make([]string, len(sts))
	for i, st := range sts {
		out[i] = st.ID
	}
	return out
}

func waitRunning(t *testing.T, m *Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

// TestQueueFull fills the queue behind a parked runner and checks the
// overflow submission is rejected and counted.
func TestQueueFull(t *testing.T) {
	g := newGatedRunner()
	m := New(Options{Run: g.run, Runners: 1, QueueCapacity: 2})
	defer m.Close()

	blocker, err := m.Submit("blocker", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, blocker)
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(i, 0); err != nil {
			t.Fatalf("job %d rejected with capacity free: %v", i, err)
		}
	}
	if _, err := m.Submit("overflow", 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	if mt := m.Metrics(); mt.Rejected != 1 || mt.QueueDepth != 2 {
		t.Fatalf("metrics off: %+v", mt)
	}
	close(g.release)
}

// TestSubmitAllAtomic checks a batch larger than the remaining
// capacity is rejected whole: no job of it is admitted or tracked.
func TestSubmitAllAtomic(t *testing.T) {
	m := New(Options{Run: echoRunner, QueueCapacity: 4})
	defer m.Close()
	batch := []any{1, 2, 3, 4, 5}
	if _, err := m.SubmitAll(batch, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized batch: %v, want ErrQueueFull", err)
	}
	if _, total := m.List("", 0, 0); total != 0 {
		t.Fatalf("rejected batch left %d records behind", total)
	}
	if _, err := m.SubmitAll([]any{}, 0); err == nil {
		t.Fatal("empty submission should fail")
	}
}

func TestCancelQueued(t *testing.T) {
	g := newGatedRunner()
	m := New(Options{Run: g.run, Runners: 1})
	defer m.Close()
	blocker, err := m.Submit("blocker", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, blocker)
	queued, err := m.Submit("queued", 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(queued)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
	if st.RunTime != 0 || !st.StartedAt.IsZero() {
		t.Fatalf("queue-canceled job claims run time: %+v", st)
	}
	// Canceling again reports the terminal state.
	if _, err := m.Cancel(queued); !errors.Is(err, ErrFinished) {
		t.Fatalf("second cancel: %v, want ErrFinished", err)
	}
	close(g.release)
	if st := waitState(t, m, blocker); st.State != StateDone {
		t.Fatalf("blocker state %s", st.State)
	}
	if mt := m.Metrics(); mt.Canceled != 1 || mt.Done != 1 {
		t.Fatalf("metrics off: %+v", mt)
	}
}

func TestCancelRunning(t *testing.T) {
	g := newGatedRunner()
	m := New(Options{Run: g.run, Runners: 1})
	defer m.Close()
	id, err := m.Submit("victim", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, id)
	if _, err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, id)
	if st.State != StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
	if !errors.Is(st.Err, context.Canceled) {
		t.Fatalf("err %v", st.Err)
	}
}

// TestFailStateClassifier maps a sentinel error to StateTimeout via
// the pluggable classifier and checks the fallback chain.
func TestFailStateClassifier(t *testing.T) {
	sentinel := errors.New("solver deadline")
	m := New(Options{
		Run: func(ctx context.Context, payload any) (any, error) {
			switch payload {
			case "timeout":
				return nil, fmt.Errorf("wrapped: %w", sentinel)
			case "plain":
				return nil, errors.New("boom")
			}
			return payload, nil
		},
		FailState: func(err error) State {
			if errors.Is(err, sentinel) {
				return StateTimeout
			}
			return ""
		},
	})
	defer m.Close()
	idT, _ := m.Submit("timeout", 0)
	idP, _ := m.Submit("plain", 0)
	if st := waitState(t, m, idT); st.State != StateTimeout {
		t.Fatalf("classified state %s, want timeout", st.State)
	}
	if st := waitState(t, m, idP); st.State != StateFailed {
		t.Fatalf("fallback state %s, want failed", st.State)
	}
	if mt := m.Metrics(); mt.TimedOut != 1 || mt.Failed != 1 {
		t.Fatalf("metrics off: %+v", mt)
	}
}

// TestTTLEviction finishes a job with a tiny TTL and checks the
// result degrades to ErrEvicted — via the lazy check on Get even
// before the janitor sweeps.
func TestTTLEviction(t *testing.T) {
	m := New(Options{Run: echoRunner, TTL: 20 * time.Millisecond})
	defer m.Close()
	id, _ := m.Submit("x", 0)
	waitState(t, m, id)
	time.Sleep(50 * time.Millisecond)
	if _, err := m.Get(id); !errors.Is(err, ErrEvicted) {
		t.Fatalf("expired Get: %v, want ErrEvicted", err)
	}
	if mt := m.Metrics(); mt.Evicted == 0 || mt.StoreSize != 0 {
		t.Fatalf("metrics off: %+v", mt)
	}
	// And a genuinely unknown ID stays a not-found.
	if _, err := m.Get("j-feedbeef-00000001"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown Get: %v, want ErrNotFound", err)
	}
}

// TestCapacityEviction overflows a tiny store and checks old finished
// jobs are dropped with tombstones while the newest survive.
func TestCapacityEviction(t *testing.T) {
	const n = 80
	m := New(Options{Run: echoRunner, StoreCapacity: 16}) // one record per shard
	defer m.Close()
	allIDs := make([]string, n)
	for i := range allIDs {
		id, err := m.Submit(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		allIDs[i] = id
		waitState(t, m, id)
	}
	evicted := 0
	for _, id := range allIDs {
		if _, err := m.Get(id); errors.Is(err, ErrEvicted) {
			evicted++
		}
	}
	if evicted < n-16 {
		t.Fatalf("%d of %d evicted, want >= %d", evicted, n, n-16)
	}
	mt := m.Metrics()
	if mt.StoreSize > 16 {
		t.Fatalf("store holds %d records past capacity", mt.StoreSize)
	}
	if mt.Evicted != uint64(evicted) {
		t.Fatalf("eviction counter %d, saw %d", mt.Evicted, evicted)
	}
}

func TestListPagination(t *testing.T) {
	g := newGatedRunner()
	m := New(Options{Run: g.run, Runners: 1})
	defer m.Close()
	var last string
	for i := 0; i < 5; i++ {
		id, err := m.Submit(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		last = id
	}
	all, total := m.List("", 0, 0)
	if total != 5 || len(all) != 5 {
		t.Fatalf("List all: %d/%d", len(all), total)
	}
	if all[0].ID != last {
		t.Fatalf("listing not newest-first: %s first, want %s", all[0].ID, last)
	}
	page, total := m.List("", 1, 2)
	if total != 5 || len(page) != 2 {
		t.Fatalf("page: %d items, total %d", len(page), total)
	}
	if page[0].ID != all[1].ID || page[1].ID != all[2].ID {
		t.Fatal("page window misaligned with full listing")
	}
	if beyond, _ := m.List("", 99, 10); beyond != nil {
		t.Fatalf("offset past end returned %v", beyond)
	}
	queued, _ := m.List(StateQueued, 0, 0)
	running, _ := m.List(StateRunning, 0, 0)
	if len(queued)+len(running) != 5 {
		t.Fatalf("state filters miss jobs: %d queued + %d running", len(queued), len(running))
	}
	close(g.release)
}

// TestCloseCancelsOutstanding checks Close marks queued jobs canceled
// and unblocks running ones via their context.
func TestCloseCancelsOutstanding(t *testing.T) {
	g := newGatedRunner()
	m := New(Options{Run: g.run, Runners: 1})
	runningID, err := m.Submit("running", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, runningID)
	queuedID, err := m.Submit("queued", 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Close() // must not hang on the gated runner
	for _, id := range []string{runningID, queuedID} {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCanceled {
			t.Fatalf("job %s state %s after Close, want canceled", id, st.State)
		}
	}
	if _, err := m.Submit("late", 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close submit: %v, want ErrClosed", err)
	}
}

// TestConcurrentSubmitPoll hammers the manager from many goroutines
// to give the race detector surface area.
func TestConcurrentSubmitPoll(t *testing.T) {
	m := New(Options{Run: echoRunner, Runners: 4})
	defer m.Close()
	const per, workers = 50, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id, err := m.Submit(fmt.Sprintf("%d-%d", w, i), w%3)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				for {
					st, err := m.Get(id)
					if err != nil {
						t.Errorf("get: %v", err)
						return
					}
					if st.State.Terminal() {
						if st.State != StateDone {
							t.Errorf("job %s: %s", id, st.State)
						}
						break
					}
					time.Sleep(100 * time.Microsecond)
				}
				m.Metrics()
				m.List("", 0, 10)
			}
		}(w)
	}
	wg.Wait()
	mt := m.Metrics()
	if mt.Done != per*workers {
		t.Fatalf("done %d, want %d", mt.Done, per*workers)
	}
}

func TestNodeTagIDs(t *testing.T) {
	m := New(Options{Run: echoRunner, NodeTag: "n1"})
	defer m.Close()
	id, err := m.Submit("p", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := NodeOf(id); got != "n1" {
		t.Fatalf("NodeOf(%q) = %q, want n1", id, got)
	}
	// Tagged IDs must stay fetchable like untagged ones.
	if _, err := m.Get(id); err != nil {
		t.Fatalf("Get(%s): %v", id, err)
	}

	plain := New(Options{Run: echoRunner})
	defer plain.Close()
	pid, err := plain.Submit("p", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := NodeOf(pid); got != "" {
		t.Fatalf("NodeOf(%q) = %q, want empty for untagged ID", pid, got)
	}
}

func TestNodeOfParsing(t *testing.T) {
	cases := map[string]string{
		"j-n1-abcd1234-00000001": "n1",
		"j-abcd1234-00000001":    "",
		"":                       "",
		"x-n1-abcd1234-00000001": "",
		"j--abcd1234-00000001":   "",
		"not-a-job-id-at-all":    "",
	}
	for id, want := range cases {
		if got := NodeOf(id); got != want {
			t.Errorf("NodeOf(%q) = %q, want %q", id, got, want)
		}
	}
}

func TestNodeTagRejectsDash(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a NodeTag containing '-'")
		}
	}()
	New(Options{Run: echoRunner, NodeTag: "bad-tag"})
}
