package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dspaddr/internal/faults"
	"dspaddr/internal/wal"
)

// String codecs: the tests use string payloads/results throughout.
func walCodecs(o *Options) {
	o.EncodePayload = func(v any) ([]byte, error) {
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("not a string: %T", v)
		}
		return []byte(s), nil
	}
	o.DecodePayload = func(b []byte) (any, error) { return string(b), nil }
	o.EncodeResult = func(v any) ([]byte, error) { return []byte(v.(string)), nil }
	o.DecodeResult = func(b []byte) (any, error) { return string(b), nil }
}

func openWAL(t *testing.T, dir string) (*wal.Log, *wal.Replay) {
	t.Helper()
	l, rep, err := wal.Open(dir, wal.Options{Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	return l, rep
}

// TestWALRecoveryEndToEnd is the full durability loop: a manager
// logs submissions and finishes, the process "crashes" (the manager
// is abandoned without Close, so nothing is flushed or aborted), and
// a second manager built from the replay picks up exactly where the
// first stopped — terminal results intact under their original IDs,
// unfinished jobs re-run.
func TestWALRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	log1, rep := openWAL(t, dir)
	if len(rep.Jobs) != 0 {
		t.Fatalf("fresh WAL replayed %d jobs", len(rep.Jobs))
	}

	block := make(chan struct{})
	opts1 := Options{
		Runners: 2,
		WAL:     log1,
		Run: func(ctx context.Context, payload any) (any, error) {
			p := payload.(string)
			if p == "fast" {
				return "result:" + p, nil
			}
			select { // "slow" jobs outlive the crash
			case <-block:
				return "late", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
	walCodecs(&opts1)
	m1 := New(opts1)
	defer close(block)

	fastID, err := m1.Submit("fast", 5)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m1, fastID)
	slowIDs, err := m1.SubmitAll([]any{"slow-a", "slow-b", "slow-c"}, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Crash: no m1.Close(), no WAL close. Replay sees whatever hit the
	// files — the submits and the fast job's finish.
	log2, rep2 := openWAL(t, dir)
	if rep2.JobsTerminal != 1 || rep2.JobsRequeued != 3 {
		t.Fatalf("replay = %d terminal + %d requeued, want 1 + 3", rep2.JobsTerminal, rep2.JobsRequeued)
	}

	var mu sync.Mutex
	ran := map[string]int{}
	opts2 := Options{
		Runners:   2,
		WAL:       log2,
		Recovered: rep2.Jobs,
		Run: func(ctx context.Context, payload any) (any, error) {
			mu.Lock()
			ran[payload.(string)]++
			mu.Unlock()
			return "rerun:" + payload.(string), nil
		},
	}
	walCodecs(&opts2)
	m2 := New(opts2)
	defer m2.Close()

	// The fast job's result survived the crash, same ID.
	st, err := m2.Get(fastID)
	if err != nil {
		t.Fatalf("recovered job lookup: %v", err)
	}
	if st.State != StateDone || st.Result != "result:fast" || st.Priority != 5 {
		t.Errorf("recovered terminal job mismatch: %+v", st)
	}
	// The unfinished jobs re-ran to completion under their old IDs.
	for _, id := range slowIDs {
		waitDone(t, m2, id)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, p := range []string{"slow-a", "slow-b", "slow-c"} {
		if ran[p] != 1 {
			t.Errorf("recovered payload %q ran %d times, want 1", p, ran[p])
		}
	}
	if ran["fast"] != 0 {
		t.Error("terminal job was re-run after recovery")
	}
	mt := m2.Metrics()
	if mt.Recovered != 4 || mt.Submitted != 4 {
		t.Errorf("recovery counters: recovered=%d submitted=%d, want 4/4", mt.Recovered, mt.Submitted)
	}
	if mt.Done != 4 { // 1 restored + 3 re-run
		t.Errorf("done = %d, want 4", mt.Done)
	}
}

// TestWALRecoverySyntheticStates covers the recovery edge cases
// without a first manager: expired terminals are skipped, zero-expiry
// cancels get a fresh TTL, undecodable payloads fail visibly, and the
// shutdown sentinel survives the text round-trip.
func TestWALRecoverySyntheticStates(t *testing.T) {
	now := time.Now()
	log, _ := openWAL(t, t.TempDir())
	opts := Options{
		Runners: 1,
		TTL:     time.Minute,
		WAL:     log,
		Recovered: []wal.JobState{
			{ID: "j-expired", State: wal.StateDone, FinishedAt: now.Add(-2 * time.Hour), ExpireAt: now.Add(-time.Hour), Result: []byte("gone")},
			{ID: "j-cancel-noexp", State: wal.StateCanceled}, // cancel record without finish: zero expiry
			{ID: "j-shutdown", State: wal.StateCanceled, FinishedAt: now, ExpireAt: now.Add(time.Hour), Err: ErrShutdown.Error()},
			{ID: "j-badpayload", State: wal.StateQueued, Payload: []byte("poison")},
		},
		Run: func(ctx context.Context, payload any) (any, error) { return payload, nil },
	}
	walCodecs(&opts)
	opts.DecodePayload = func(b []byte) (any, error) {
		if string(b) == "poison" {
			return nil, errors.New("poisoned")
		}
		return string(b), nil
	}
	m := New(opts)
	defer m.Close()

	if _, err := m.Get("j-expired"); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired terminal job: %v, want ErrNotFound", err)
	}
	if st, err := m.Get("j-cancel-noexp"); err != nil || st.State != StateCanceled {
		t.Errorf("cancel-without-finish: %+v, %v", st, err)
	}
	st, err := m.Get("j-shutdown")
	if err != nil || !errors.Is(st.Err, ErrShutdown) {
		t.Errorf("shutdown sentinel lost in round-trip: %+v, %v", st, err)
	}
	if st, err := m.Get("j-badpayload"); err != nil || st.State != StateFailed {
		t.Errorf("undecodable payload: %+v, %v — want a visible failure", st, err)
	}
}

// TestSubmitDuringDrain pins the Close-vs-Submit race resolution: a
// submitter racing a graceful drain gets a deterministic
// ErrShuttingDown (which still matches ErrClosed for old callers),
// never a job silently dropped into a dispatcherless queue.
func TestSubmitDuringDrain(t *testing.T) {
	started := make(chan struct{})
	var startedOnce sync.Once
	release := make(chan struct{})
	m := New(Options{
		Runners: 1,
		Run: func(ctx context.Context, payload any) (any, error) {
			startedOnce.Do(func() { close(started) })
			<-release
			return "ok", nil
		},
	})
	id, err := m.Submit("work", 0)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Shutdown(context.Background())
	}()
	// Admission closes promptly even though the drain is still waiting
	// on the running job.
	deadline := time.Now().Add(2 * time.Second)
	var serr error
	for {
		_, serr = m.Submit("late", 0)
		if errors.Is(serr, ErrQueueFull) { // backlog filled before the drain engaged
			serr = nil
			time.Sleep(time.Millisecond)
		}
		if serr != nil || time.Now().After(deadline) {
			break
		}
	}
	if !errors.Is(serr, ErrShuttingDown) {
		t.Errorf("submit during drain = %v, want ErrShuttingDown", serr)
	}
	if !errors.Is(serr, ErrClosed) {
		t.Errorf("ErrShuttingDown must wrap ErrClosed, got %v", serr)
	}
	close(release)
	<-done
	// The drained job finished normally.
	if st, err := m.Get(id); err != nil || st.State != StateDone {
		t.Errorf("drained job: %+v, %v", st, err)
	}
	if _, err := m.Submit("after", 0); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
}

// TestWALAppendFailureRejectsSubmit: an injected WAL write error must
// bounce the submission atomically — no ghost job, no leaked queue
// slot.
func TestWALAppendFailureRejectsSubmit(t *testing.T) {
	inj, err := faults.Parse("wal-write-error=2")
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := wal.Open(t.TempDir(), wal.Options{Fsync: wal.FsyncOff, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Runners:       1,
		QueueCapacity: 2,
		WAL:           log,
		Run: func(ctx context.Context, payload any) (any, error) {
			<-ctx.Done() // hold jobs queued/running so capacity stays observable
			return nil, ctx.Err()
		},
	}
	walCodecs(&opts)
	m := New(opts)
	defer m.Close()

	if _, err := m.Submit("first", 0); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	ids, err := m.SubmitAll([]any{"second"}, 0)
	if err == nil {
		t.Fatalf("second submit survived an injected WAL error: %v", ids)
	}
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) {
		t.Errorf("WAL failure misreported as %v", err)
	}
	// The failed batch released its reservation: the queue still has
	// room for one more (capacity 2, one admitted, one runner holding).
	if _, err := m.Submit("third", 0); err != nil {
		t.Errorf("slot leaked by failed submission: %v", err)
	}
	mt := m.Metrics()
	if mt.WALAppendErrors != 1 || mt.Rejected != 1 {
		t.Errorf("walAppendErrors=%d rejected=%d, want 1/1", mt.WALAppendErrors, mt.Rejected)
	}
	if mt.Submitted != 2 {
		t.Errorf("submitted = %d, want 2", mt.Submitted)
	}
}

// TestWALShutdownAbortsDurably: Close aborts the backlog with one
// batched finish append, and the aborts replay as canceled (no
// requeue) in the next process.
func TestWALShutdownAbortsDurably(t *testing.T) {
	dir := t.TempDir()
	log1, _ := openWAL(t, dir)
	block := make(chan struct{})
	defer close(block)
	opts := Options{
		Runners: 1,
		WAL:     log1,
		Run: func(ctx context.Context, payload any) (any, error) {
			select {
			case <-block:
				return "ok", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
	walCodecs(&opts)
	m := New(opts)
	ids, err := m.SubmitAll([]any{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Close() // one job canceled mid-run, three aborted in queue

	log2, rep := openWAL(t, dir)
	defer log2.Close()
	if rep.JobsRequeued != 0 {
		t.Fatalf("%d jobs requeued after a durable shutdown, want 0: %+v", rep.JobsRequeued, rep.Jobs)
	}
	if rep.JobsTerminal != len(ids) {
		t.Errorf("%d terminal jobs, want %d", rep.JobsTerminal, len(ids))
	}
	aborted := 0
	for _, j := range rep.Jobs {
		if j.State == wal.StateCanceled && j.Err == ErrShutdown.Error() {
			aborted++
		}
	}
	if aborted < 3 {
		t.Errorf("only %d jobs recorded the shutdown reason, want >= 3", aborted)
	}
}

// waitDone polls via the shared waitState helper and asserts the
// terminal state reached is StateDone.
func waitDone(t *testing.T, m *Manager, id string) {
	t.Helper()
	if st := waitState(t, m, id); st.State != StateDone {
		t.Fatalf("job %s finished as %s, want done (%+v)", id, st.State, st)
	}
}
