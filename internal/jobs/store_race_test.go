// Expiry/tombstone races in the result store, exercised under -race
// with accelerated clocks. The store takes explicit `now` values, so
// these tests drive it with a synthetic clock running arbitrarily
// faster than real time: lookups, finishes, janitor sweeps and
// capacity evictions interleave across goroutines while the clock
// leaps past TTL horizons. The invariants:
//
//   - expiry is terminal: once an ID has answered ErrEvicted, it
//     never resurrects to a live record or to ErrNotFound-then-found;
//   - an expired record answers ErrEvicted (the HTTP 410), not
//     ErrNotFound, while its tombstone lives;
//   - a canceled job's ID behaves identically — cancellation plus
//     expiry never revives it.

package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// syntheticClock hands out monotonically increasing times, advancing
// a configurable stride per reading — hours of TTL traffic in
// milliseconds of wall time, shared race-safely across goroutines.
type syntheticClock struct {
	base   time.Time
	nanos  atomic.Int64
	stride int64
}

func newSyntheticClock(stride time.Duration) *syntheticClock {
	return &syntheticClock{base: time.Now(), stride: int64(stride)}
}

func (c *syntheticClock) now() time.Time {
	return c.base.Add(time.Duration(c.nanos.Add(c.stride)))
}

// TestStoreExpiryRaceAcceleratedClock hammers one store from writer,
// reader and sweeper goroutines on a fast synthetic clock and asserts
// eviction is irreversible and always distinguishable from
// never-existed while tombstoned.
func TestStoreExpiryRaceAcceleratedClock(t *testing.T) {
	const (
		writers   = 4
		perWriter = 300
		ttl       = 50 * time.Millisecond // synthetic; crossed every few readings
		storeCap  = 64
	)
	s := newStore(storeCap, ttl)
	clock := newSyntheticClock(time.Millisecond)

	// evicted flips exactly once per ID; a get that succeeds after the
	// flip is a resurrection.
	var evicted sync.Map // id -> struct{}

	ids := make(chan string, writers*perWriter)
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("j-%d-%d", w, i)
				rec := &record{id: id, state: StateDone}
				s.put(rec)
				now := clock.now()
				s.finish(rec, now.Add(ttl))
				ids <- id
			}
		}(w)
	}

	var readErr atomic.Value
	fail := func(format string, args ...any) {
		readErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	var readerWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for id := range ids {
				// Poll each ID a few times across an expiry horizon.
				for k := 0; k < 6; k++ {
					now := clock.now()
					rec, err := s.get(id, now)
					switch {
					case err == nil:
						if _, dead := evicted.Load(id); dead {
							fail("id %s resurrected after eviction", id)
							return
						}
						if rec.id != id {
							fail("get(%s) returned record %s (aliasing)", id, rec.id)
							return
						}
					case errors.Is(err, ErrEvicted):
						evicted.Store(id, struct{}{})
					case errors.Is(err, ErrNotFound):
						// Legal only once the tombstone ring recycled the
						// ID — which also means it was evicted first.
						evicted.Store(id, struct{}{})
					default:
						fail("get(%s): unexpected error %v", id, err)
						return
					}
				}
			}
		}()
	}
	// Janitor stand-in: sweep concurrently on the same fast clock.
	sweepCtx, stopSweep := context.WithCancel(context.Background())
	var sweepWG sync.WaitGroup
	sweepWG.Add(1)
	go func() {
		defer sweepWG.Done()
		for sweepCtx.Err() == nil {
			s.sweep(clock.now())
		}
	}()

	writerWG.Wait()
	close(ids) // readers drain the backlog and exit
	readerWG.Wait()
	stopSweep()
	sweepWG.Wait()
	if msg := readErr.Load(); msg != nil {
		t.Fatal(msg)
	}

	// Every record is now long past its TTL on the synthetic clock:
	// one final sweep must leave the store empty, and recent IDs must
	// answer ErrEvicted (410), not ErrNotFound.
	far := clock.now().Add(time.Hour)
	s.sweep(far)
	if n := s.size.Load(); n != 0 {
		t.Fatalf("store holds %d records after full expiry", n)
	}
	recent := fmt.Sprintf("j-%d-%d", writers-1, perWriter-1)
	if _, err := s.get(recent, far); !errors.Is(err, ErrEvicted) {
		t.Fatalf("get(%s) after expiry = %v, want ErrEvicted", recent, err)
	}
}

// TestManagerExpiryLifecycleAccelerated runs the full manager with a
// fault-accelerated TTL: finished and canceled jobs must answer 410
// (ErrEvicted) after expiry and never resurrect — the canceled-ID
// case guards the cancel/expire interleaving the soak cancel storms
// exercise.
func TestManagerExpiryLifecycleAccelerated(t *testing.T) {
	g := newGatedRunner()
	m := New(Options{Run: g.run, Runners: 1, TTL: 20 * time.Millisecond})
	defer m.Close()

	// One job runs (gated), one sits queued behind it and is canceled.
	runID, err := m.Submit("run", 0)
	if err != nil {
		t.Fatal(err)
	}
	cancelID, err := m.Submit("cancel-me", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first job is actually running so the second is
	// genuinely canceled-from-queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := m.Get(runID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Cancel(cancelID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	close(g.release)
	if st := waitState(t, m, runID); st.State != StateDone {
		t.Fatalf("run job state %s", st.State)
	}

	// Both IDs expire; polls race the janitor. Every post-expiry
	// answer must be ErrEvicted, and once evicted an ID stays evicted.
	for _, id := range []string{runID, cancelID} {
		sawEvicted := false
		pollDeadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(pollDeadline) {
			_, err := m.Get(id)
			switch {
			case err == nil:
				if sawEvicted {
					t.Fatalf("id %s resurrected after 410", id)
				}
			case errors.Is(err, ErrEvicted):
				sawEvicted = true
			default:
				t.Fatalf("Get(%s): %v", id, err)
			}
			if sawEvicted {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if !sawEvicted {
			t.Fatalf("id %s never expired to 410", id)
		}
		// Cancel on an expired ID must also answer evicted, not revive.
		if _, err := m.Cancel(id); !errors.Is(err, ErrEvicted) {
			t.Fatalf("Cancel(%s) after expiry = %v, want ErrEvicted", id, err)
		}
	}
}
