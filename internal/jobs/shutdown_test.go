// Graceful-drain semantics: Shutdown must leave every admitted job in
// a terminal state — finished naturally inside the grace window, or
// aborted with a recorded reason — so a restarting process never
// strands a job observable as queued or running. These are the
// invariants the soak harness's SIGTERM/restart cycles assert from
// outside the process boundary.

package jobs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestShutdownDrainsBacklog: jobs that can finish inside the grace
// window do, with their results intact — Shutdown is not Close.
func TestShutdownDrainsBacklog(t *testing.T) {
	slowEcho := func(ctx context.Context, payload any) (any, error) {
		select {
		case <-time.After(5 * time.Millisecond):
			return payload, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	m := New(Options{Run: slowEcho, Runners: 2})
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		id, err := m.Submit(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m.Shutdown(ctx)

	for i, id := range ids {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s) after drain: %v", id, err)
		}
		if st.State != StateDone {
			t.Errorf("job %d: state %s after graceful drain, want done", i, st.State)
		}
		if st.Result != i {
			t.Errorf("job %d: result %v", i, st.Result)
		}
	}
	if mt := m.Metrics(); mt.QueueDepth != 0 || mt.Running != 0 || mt.Done != 8 {
		t.Errorf("metrics after drain: %+v", mt)
	}
}

// TestShutdownAbortsWithReason: work that cannot finish inside the
// grace window is aborted, and both queued and running victims carry
// a shutdown reason — never a silent cancel, never a non-terminal
// state.
func TestShutdownAbortsWithReason(t *testing.T) {
	g := newGatedRunner() // never released: jobs block until canceled
	m := New(Options{Run: g.run, Runners: 1})
	var ids []string
	for i := 0; i < 4; i++ { // 1 will be running, 3 queued
		id, err := m.Submit(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	m.Shutdown(ctx)

	for i, id := range ids {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s) after shutdown: %v", id, err)
		}
		if !st.State.Terminal() {
			t.Fatalf("job %d stuck in %s after Shutdown", i, st.State)
		}
		if st.State != StateCanceled {
			t.Errorf("job %d: state %s, want canceled", i, st.State)
		}
		if st.Err == nil {
			t.Errorf("job %d: aborted without a recorded reason", i)
		} else if !errors.Is(st.Err, ErrShutdown) && !errors.Is(st.Err, context.Canceled) {
			t.Errorf("job %d: reason %v, want ErrShutdown or context.Canceled", i, st.Err)
		}
	}
}

// TestShutdownStopsAdmission: the first effect of Shutdown is
// ErrClosed for new submitters, even while the backlog is still
// draining.
func TestShutdownStopsAdmission(t *testing.T) {
	g := newGatedRunner()
	m := New(Options{Run: g.run, Runners: 1})
	if _, err := m.Submit("held", 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	// Admission must close promptly, long before the drain completes.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := m.Submit("late", 0); errors.Is(err, ErrClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Submit still admitted during drain")
		}
		time.Sleep(time.Millisecond)
	}
	close(g.release)
	<-done
}

// TestShutdownThenCloseIdempotent: the shutdown paths can overlap —
// rcaserve calls drain then its deferred close — without panics or
// deadlocks.
func TestShutdownThenCloseIdempotent(t *testing.T) {
	m := New(Options{Run: echoRunner, Runners: 2})
	if _, err := m.Submit("x", 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	m.Shutdown(ctx)
	m.Close()
	m.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	m.Shutdown(ctx2)
}
