// Aggregate queue/store metrics: cheap atomic counters on the hot
// path, stage-latency percentiles from bounded rings of recent
// observations (stats.LatencyRing, shared with the engine's
// collector) — covering the two stages the engine cannot see: queue
// wait (submission to dispatch) and run time (dispatch to
// completion).

package jobs

import "math"

// Metrics is a point-in-time snapshot of a Manager's counters; every
// field maps onto a Prometheus sample in the serving layer.
type Metrics struct {
	// QueueDepth is the number of queued (admitted, not yet started)
	// jobs; QueueCapacity is the admission bound.
	QueueDepth    int `json:"queueDepth"`
	QueueCapacity int `json:"queueCapacity"`
	// Running is the number of jobs currently executing; Runners is
	// its cap.
	Running int `json:"running"`
	Runners int `json:"runners"`
	// StoreSize is the number of tracked jobs (live and finished);
	// StoreCapacity bounds the finished ones.
	StoreSize     int `json:"storeSize"`
	StoreCapacity int `json:"storeCapacity"`
	// Submitted counts admitted jobs; Rejected counts submissions
	// (not jobs) refused by admission control; Evicted counts
	// finished jobs dropped by TTL or capacity.
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Evicted   uint64 `json:"evicted"`
	// Terminal-state counters.
	Done     uint64 `json:"done"`
	Failed   uint64 `json:"failed"`
	TimedOut uint64 `json:"timedOut"`
	Canceled uint64 `json:"canceled"`
	// Recovered counts jobs restored from the write-ahead log at boot
	// (also included in Submitted and the per-state counters);
	// WALAppendErrors counts log appends that failed after the job was
	// admitted — non-zero means durability is degraded.
	Recovered       uint64 `json:"recovered"`
	WALAppendErrors uint64 `json:"walAppendErrors"`
	// Stage latency percentiles in microseconds over the recent
	// window: queue wait (submission → dispatch) and run time
	// (dispatch → completion).
	QueueWaitP50Micros float64 `json:"queueWaitP50Micros"`
	QueueWaitP90Micros float64 `json:"queueWaitP90Micros"`
	QueueWaitP99Micros float64 `json:"queueWaitP99Micros"`
	RunP50Micros       float64 `json:"runP50Micros"`
	RunP90Micros       float64 `json:"runP90Micros"`
	RunP99Micros       float64 `json:"runP99Micros"`
}

// Retry-After bounds: at least one second so clients never hot-loop,
// at most a minute so a drained queue is rediscovered promptly even
// after a pathological backlog estimate.
const (
	minRetryAfterSeconds = 1
	maxRetryAfterSeconds = 60
)

// RetryAfterSeconds estimates how long a rejected submitter should
// wait before retrying: the time the current backlog needs to drain,
// i.e. the recent median job run time × queue depth / runner count
// (the Prometheus identity rcaserve_job_run_seconds{quantile="0.5"} ×
// rcaserve_queue_depth / rcaserve_job_runners), rounded up and clamped
// to [1, 60] seconds. With no run-time observations yet (cold start)
// it falls back to the minimum — there is nothing to wait for.
func (m Metrics) RetryAfterSeconds() int {
	runSeconds := m.RunP50Micros / 1e6
	if runSeconds <= 0 || m.QueueDepth <= 0 {
		return minRetryAfterSeconds
	}
	runners := m.Runners
	if runners < 1 {
		runners = 1
	}
	secs := int(math.Ceil(runSeconds * float64(m.QueueDepth) / float64(runners)))
	if secs < minRetryAfterSeconds {
		return minRetryAfterSeconds
	}
	if secs > maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	return secs
}

// RetryAfterSeconds is the manager-level form of
// Metrics.RetryAfterSeconds for the 429 rejection path: it reads only
// the three inputs the estimate needs (run-time p50, queue depth,
// runner count) instead of snapshotting every counter and both
// latency rings — the rejection path runs hottest exactly when the
// service is most loaded.
func (m *Manager) RetryAfterSeconds() int {
	qs := m.runLat.QuantilesMicros(0.50)
	return Metrics{
		RunP50Micros: qs[0],
		QueueDepth:   int(m.depth.Load()),
		Runners:      m.opts.Runners,
	}.RetryAfterSeconds()
}

// Metrics returns a snapshot of the manager's aggregate state.
func (m *Manager) Metrics() Metrics {
	out := Metrics{
		QueueDepth:      int(m.depth.Load()),
		QueueCapacity:   m.opts.QueueCapacity,
		Running:         int(m.running.Load()),
		Runners:         m.opts.Runners,
		StoreSize:       int(m.store.size.Load()),
		StoreCapacity:   m.opts.StoreCapacity,
		Submitted:       m.submitted.Load(),
		Rejected:        m.rejected.Load(),
		Evicted:         m.store.evictions.Load(),
		Done:            m.done.Load(),
		Failed:          m.failed.Load(),
		TimedOut:        m.timedOut.Load(),
		Canceled:        m.canceled.Load(),
		Recovered:       m.recovered.Load(),
		WALAppendErrors: m.walErrs.Load(),
	}
	qs := m.waitLat.QuantilesMicros(0.50, 0.90, 0.99)
	out.QueueWaitP50Micros, out.QueueWaitP90Micros, out.QueueWaitP99Micros = qs[0], qs[1], qs[2]
	qs = m.runLat.QuantilesMicros(0.50, 0.90, 0.99)
	out.RunP50Micros, out.RunP90Micros, out.RunP99Micros = qs[0], qs[1], qs[2]
	return out
}
