// Package jobs is the asynchronous job queue and result store that
// turns a blocking executor into a submit/poll lifecycle.
//
// A Manager owns three pieces: an admission-controlled priority queue
// (queue.go), a pool of dispatcher goroutines that pull queued jobs
// and run them through the caller-supplied Runner, and a sharded
// in-memory result store with TTL and capacity eviction (store.go).
// Every job moves through the state machine
//
//	queued ──▶ running ──▶ done | failed | timeout | canceled
//	   └────────────────────────────────────────────▶ canceled
//
// with its queue-wait and run latency recorded, both per job (Status)
// and in aggregate (Metrics).
//
// The package is deliberately payload-agnostic: Submit takes an
// opaque payload and the Runner interprets it, so the same manager
// serves engine requests, whole-loop jobs or anything else without
// this package importing them. Error-to-state classification is
// likewise pluggable (Options.FailState) so callers can map their
// executor's timeout error to StateTimeout.
package jobs

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dspaddr/internal/faults"
	"dspaddr/internal/obs"
	"dspaddr/internal/stats"
	"dspaddr/internal/wal"
)

// State is a job's position in the lifecycle.
type State string

// The job states. Queued and Running are transient; the other four
// are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateTimeout  State = "timeout"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateTimeout, StateCanceled:
		return true
	}
	return false
}

// ValidState reports whether s names a real job state; useful for
// validating listing filters from the wire.
func ValidState(s State) bool {
	switch s {
	case StateQueued, StateRunning:
		return true
	}
	return s.Terminal()
}

// Errors beyond the store's lookup errors (ErrNotFound, ErrEvicted)
// and the queue's ErrQueueFull.
var (
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrShuttingDown is returned by Submit during a graceful drain:
	// the manager still finishes admitted work but accepts no more. It
	// wraps ErrClosed so errors.Is(err, ErrClosed) keeps matching both;
	// the serving layer distinguishes them to answer 503 + Retry-After
	// (come back after the restart) instead of a bare refusal.
	ErrShuttingDown = fmt.Errorf("jobs: shutting down: %w", ErrClosed)
	// ErrFinished is returned by Cancel for an already-terminal job.
	ErrFinished = errors.New("jobs: job already finished")
	// ErrShutdown is the failure reason recorded on jobs the manager
	// aborted because it was shutting down — distinguishable from a
	// client-requested cancel, so a poller (or a soak oracle) can tell
	// "the server stopped" from "someone canceled me".
	ErrShutdown = errors.New("jobs: aborted by shutdown")
)

// Runner executes one job payload. The context is canceled when the
// job is canceled or the manager shuts down; a Runner that honors it
// makes DELETE effective against running work. When the job was
// admitted with a trace ID (SubmitTraced), ContextTraceID recovers it
// from the Runner's context.
type Runner func(ctx context.Context, payload any) (any, error)

// traceIDKey keys the submitting request's trace ID in a runner
// context.
type traceIDKey struct{}

func withTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// ContextTraceID returns the trace ID the job was submitted with, ""
// when none.
func ContextTraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// Defaults for zero Options fields.
const (
	DefaultQueueCapacity = 1024
	DefaultStoreCapacity = 16384
	DefaultTTL           = 15 * time.Minute
	DefaultRunners       = 8
)

// Options configures a Manager.
type Options struct {
	// QueueCapacity bounds admitted-but-not-started jobs; a
	// submission that does not fit is rejected with ErrQueueFull.
	// 0 means DefaultQueueCapacity.
	QueueCapacity int
	// StoreCapacity bounds retained finished jobs; the oldest are
	// evicted first. 0 means DefaultStoreCapacity.
	StoreCapacity int
	// TTL is how long a finished job's status and result stay
	// fetchable. 0 means DefaultTTL.
	TTL time.Duration
	// Runners is the number of concurrent dispatcher goroutines —
	// the cap on jobs in StateRunning. 0 means DefaultRunners.
	Runners int
	// NodeTag, when non-empty, is embedded in every issued job ID
	// (j-<tag>-<prefix>-<seq> instead of j-<prefix>-<seq>) so a cluster
	// gateway can route an ID back to the node that owns it (NodeOf).
	// Must be non-empty alphanumeric — '-' would break ID parsing, so
	// New panics on one.
	NodeTag string
	// Run executes payloads; required.
	Run Runner
	// FailState optionally classifies a Runner error into a terminal
	// state; returning "" falls through to the default (canceled
	// contexts map to StateCanceled, deadline errors to StateTimeout,
	// everything else to StateFailed).
	FailState func(error) State
	// Faults is the opt-in chaos hook for soak builds: an armed
	// injector's ttl-div clause accelerates result-store expiry (the
	// effective TTL is Faults.TTL(TTL)). nil — the production default
	// — is free.
	Faults *faults.Injector
	// QueueWaitHist and RunHist, when non-nil, mirror the queue-wait
	// and run latency rings into native Prometheus histograms; nil is
	// one nil check per dispatch.
	QueueWaitHist *obs.Histogram
	RunHist       *obs.Histogram

	// WAL, when non-nil, makes every admission and terminal transition
	// durable: a submission is appended to the log before it is
	// queued (and before the caller gets its IDs back), and a finish
	// is appended before the terminal state becomes visible wherever
	// the transition ordering allows it. The manager takes ownership
	// and closes the log in Close. Requires all four codecs below.
	WAL *wal.Log
	// Recovered is the job set replayed from the WAL at boot (see
	// wal.Open): terminal jobs are restored straight into the result
	// store, still-queued ones are re-enqueued — above QueueCapacity
	// if need be, since they were admitted before the crash — ahead of
	// the dispatchers starting.
	Recovered []wal.JobState
	// The codecs translate between the manager's opaque payload/result
	// values and the WAL's durable bytes. Required when WAL is set
	// (New panics otherwise); unused without it.
	EncodePayload func(any) ([]byte, error)
	DecodePayload func([]byte) (any, error)
	EncodeResult  func(any) ([]byte, error)
	DecodeResult  func([]byte) (any, error)
}

func (o Options) withDefaults() Options {
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = DefaultQueueCapacity
	}
	if o.StoreCapacity <= 0 {
		o.StoreCapacity = DefaultStoreCapacity
	}
	if o.TTL <= 0 {
		o.TTL = DefaultTTL
	}
	if o.Faults != nil {
		o.TTL = o.Faults.TTL(o.TTL)
	}
	if o.Runners <= 0 {
		o.Runners = DefaultRunners
	}
	return o
}

// record is one job's mutable state. id, seq, priority, payload and
// submitted are immutable after creation; elem and expire belong to
// the store (guarded by its shard lock); everything else is guarded
// by mu.
type record struct {
	id        string
	seq       uint64
	priority  int
	payload   any
	submitted time.Time
	// traceID links the job back to the HTTP request that submitted
	// it ("" when the submitter carried no trace). Immutable.
	traceID string

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	result   any
	err      error
	cancel   context.CancelFunc // non-nil exactly while running

	// Store bookkeeping, guarded by the owning shard's lock.
	elem   *list.Element
	expire time.Time
}

// Status is a point-in-time snapshot of one job.
type Status struct {
	// ID is the job's opaque identifier.
	ID string
	// State is the lifecycle state at snapshot time.
	State State
	// Priority is the submission priority (higher runs first).
	Priority int
	// SubmittedAt, StartedAt and FinishedAt are the lifecycle
	// timestamps; StartedAt/FinishedAt are zero until reached.
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
	// QueueWait is the time from submission to dispatch — still
	// growing for a queued job.
	QueueWait time.Duration
	// RunTime is the time from dispatch to completion — still
	// growing for a running job, zero for one canceled in queue.
	RunTime time.Duration
	// Result is the Runner's return value; non-nil only in StateDone.
	Result any
	// Err is the failure; non-nil in the failed/timeout states, for
	// canceled jobs that had started running, and for jobs aborted by
	// shutdown (ErrShutdown).
	Err error
	// TraceID is the trace identifier of the submitting request, ""
	// when none was carried.
	TraceID string
}

// snapshot renders the record at time now.
func (r *record) snapshot(now time.Time) Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		ID:          r.id,
		State:       r.state,
		Priority:    r.priority,
		SubmittedAt: r.submitted,
		StartedAt:   r.started,
		FinishedAt:  r.finished,
		Result:      r.result,
		Err:         r.err,
		TraceID:     r.traceID,
	}
	switch {
	case !r.started.IsZero():
		st.QueueWait = r.started.Sub(r.submitted)
		if !r.finished.IsZero() {
			st.RunTime = r.finished.Sub(r.started)
		} else {
			st.RunTime = now.Sub(r.started)
		}
	case !r.finished.IsZero(): // canceled straight out of the queue
		st.QueueWait = r.finished.Sub(r.submitted)
	default:
		st.QueueWait = now.Sub(r.submitted)
	}
	return st
}

// Manager is the asynchronous job engine: bounded admission, priority
// dispatch, per-job status and a TTL'd result store. Create one with
// New and release it with Close. All methods are safe for concurrent
// use.
type Manager struct {
	opts  Options
	queue *queue
	store *store

	// Stage-latency rings feeding the Metrics percentiles.
	waitLat stats.LatencyRing
	runLat  stats.LatencyRing

	prefix string // random per-manager ID prefix
	// idFmt is the Sprintf format issuing IDs: "j-<prefix>-%08x", or
	// "j-<tag>-<prefix>-%08x" when Options.NodeTag names this node.
	idFmt   string
	seq     atomic.Uint64
	depth   atomic.Int64 // jobs in StateQueued
	running atomic.Int64

	submitted atomic.Uint64
	rejected  atomic.Uint64
	done      atomic.Uint64
	failed    atomic.Uint64
	timedOut  atomic.Uint64
	canceled  atomic.Uint64
	// recovered counts jobs restored from the WAL at boot (each also
	// counted into submitted and, when terminal, its state counter, so
	// the submitted == terminals + queued + running identity holds
	// across a restart). walErrs counts WAL appends that failed after
	// the job was already admitted — durability degraded, service up.
	recovered atomic.Uint64
	walErrs   atomic.Uint64

	// baseCtx parents every job context, so Close cancels all
	// running work with one call — including a job a dispatcher is
	// just now starting, which a walk over running records would
	// race past.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// closeMu orders submissions against Close: submitters hold the
	// read side across the closed-check and the queue push, so once
	// Close has held the write side, no new record can slip into the
	// queue after the drain (where it would sit queued forever with
	// the dispatchers gone — or block the submitter on a stale ready
	// token).
	closeMu   sync.RWMutex
	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}

	// draining closes before closed during a graceful Shutdown: it
	// stops admission (submitters see ErrClosed) while the dispatchers
	// keep working the backlog, so in-flight jobs finish instead of
	// being canceled the instant the listener stops.
	drainOnce sync.Once
	draining  chan struct{}
}

// New starts a manager with its dispatcher pool and TTL janitor. The
// caller must Close it when done. It panics if opts.Run is nil — a
// manager without an executor is a programming error, not a runtime
// condition.
func New(opts Options) *Manager {
	if opts.Run == nil {
		panic("jobs: Options.Run is required")
	}
	if opts.WAL != nil && (opts.EncodePayload == nil || opts.DecodePayload == nil ||
		opts.EncodeResult == nil || opts.DecodeResult == nil) {
		panic("jobs: Options.WAL requires the payload and result codecs")
	}
	if strings.ContainsRune(opts.NodeTag, '-') {
		panic("jobs: Options.NodeTag must not contain '-'")
	}
	opts = opts.withDefaults()
	// Recovered queued jobs re-enter above the admission bound (they
	// were admitted before the crash); the ready channel needs a slot
	// for each or the recovery pushes would block.
	extraReady := 0
	for i := range opts.Recovered {
		if !opts.Recovered[i].State.Terminal() {
			extraReady++
		}
	}
	var pfx [4]byte
	rand.Read(pfx[:]) //nolint:errcheck // crypto/rand never fails
	m := &Manager{
		opts:     opts,
		queue:    newQueue(opts.QueueCapacity, extraReady),
		store:    newStore(opts.StoreCapacity, opts.TTL),
		prefix:   hex.EncodeToString(pfx[:]),
		closed:   make(chan struct{}),
		draining: make(chan struct{}),
	}
	if opts.NodeTag != "" {
		m.idFmt = "j-" + opts.NodeTag + "-" + m.prefix + "-%08x"
	} else {
		m.idFmt = "j-" + m.prefix + "-%08x"
	}
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background())
	// Recovery runs before the dispatchers exist, so replayed jobs are
	// queued (and findable) before the first new submission can race
	// them.
	if len(opts.Recovered) > 0 {
		m.recover(opts.Recovered)
	}
	for i := 0; i < opts.Runners; i++ {
		m.wg.Add(1)
		go m.dispatch()
	}
	m.wg.Add(1)
	go m.janitor()
	return m
}

// recover restores WAL-replayed jobs: terminal ones go straight into
// the result store under their original IDs and expiries, live ones
// are re-enqueued in replay (= original submit) order. Every restored
// job counts into submitted and its state counter, so the aggregate
// identity a monitor checks (submitted == terminals + queued +
// running) survives the restart.
func (m *Manager) recover(states []wal.JobState) {
	now := time.Now()
	var requeue []*record
	for i := range states {
		js := &states[i]
		rec := &record{
			id:        js.ID,
			seq:       m.seq.Add(1),
			priority:  js.Priority,
			payload:   nil,
			submitted: js.SubmittedAt,
			traceID:   js.TraceID,
		}
		if js.State.Terminal() {
			expire := js.ExpireAt
			if expire.IsZero() {
				// A cancel logged without its finish (the process died in
				// between) has no recorded expiry; stamp a fresh TTL.
				expire = now.Add(m.opts.TTL)
			}
			if !expire.After(now) {
				continue // result already expired; nothing to restore
			}
			rec.state = recoveredState(js.State)
			rec.finished = js.FinishedAt
			if rec.finished.IsZero() {
				rec.finished = now
			}
			if js.Err != "" {
				rec.err = recoveredError(js.Err)
			}
			if js.State == wal.StateDone && len(js.Result) > 0 {
				if v, err := m.opts.DecodeResult(js.Result); err == nil {
					rec.result = v
				} else {
					m.walErrs.Add(1) // keep the state, drop the undecodable body
				}
			}
			m.store.put(rec)
			m.store.finish(rec, expire)
			m.submitted.Add(1)
			m.recovered.Add(1)
			switch rec.state {
			case StateDone:
				m.done.Add(1)
			case StateTimeout:
				m.timedOut.Add(1)
			case StateCanceled:
				m.canceled.Add(1)
			default:
				m.failed.Add(1)
			}
			continue
		}
		payload, err := m.opts.DecodePayload(js.Payload)
		if err != nil {
			// A durable submission whose payload no longer decodes cannot
			// run; fail it visibly (and durably) rather than drop it.
			rec.state = StateFailed
			rec.finished = now
			rec.err = fmt.Errorf("jobs: recovered payload undecodable: %w", err)
			m.store.put(rec)
			m.store.finish(rec, now.Add(m.opts.TTL))
			m.submitted.Add(1)
			m.recovered.Add(1)
			m.failed.Add(1)
			m.walFinish(m.buildFinish(rec.id, StateFailed, now, now.Add(m.opts.TTL), rec.err, nil))
			continue
		}
		rec.payload = payload
		rec.state = StateQueued
		requeue = append(requeue, rec)
	}
	if len(requeue) > 0 {
		m.queue.pushRecovered(requeue, m.store.put)
		m.depth.Add(int64(len(requeue)))
		m.submitted.Add(uint64(len(requeue)))
		m.recovered.Add(uint64(len(requeue)))
	}
}

// recoveredState maps a WAL terminal state onto the manager's.
func recoveredState(s wal.State) State {
	switch s {
	case wal.StateDone:
		return StateDone
	case wal.StateTimeout:
		return StateTimeout
	case wal.StateCanceled:
		return StateCanceled
	}
	return StateFailed
}

// recoveredError rehydrates a logged failure reason, mapping the
// shutdown sentinel's text back onto the sentinel so errors.Is keeps
// working across a restart.
func recoveredError(text string) error {
	if text == ErrShutdown.Error() {
		return ErrShutdown
	}
	return errors.New(text)
}

// Close stops accepting submissions, cancels running jobs, marks
// still-queued jobs canceled with ErrShutdown as the reason and waits
// for the dispatchers to drain. Idempotent.
func (m *Manager) Close() {
	m.drainOnce.Do(func() {
		m.closeMu.Lock()
		close(m.draining)
		m.closeMu.Unlock()
	})
	m.closeOnce.Do(func() {
		close(m.closed)
		m.baseCancel()
	})
	now := time.Now()
	// Drained records transition first, then their finish records go to
	// the WAL in one batch — one append (and at most one fsync) instead
	// of a per-job storm for a deep queue.
	var frs []wal.FinishRecord
	for _, rec := range m.queue.drain() {
		if m.abortQueued(rec, now, ErrShutdown) && m.opts.WAL != nil {
			frs = append(frs, m.buildFinish(rec.id, StateCanceled, now, now.Add(m.opts.TTL), ErrShutdown, nil))
		}
	}
	if len(frs) > 0 {
		m.walFinish(frs...)
	}
	m.wg.Wait()
	if m.opts.WAL != nil {
		m.opts.WAL.Close() //nolint:errcheck // final sync failure has no recourse here
	}
}

// Shutdown is the graceful form of Close: it stops admission
// immediately, then lets the dispatchers keep draining queued and
// running jobs until everything is terminal or ctx expires, and only
// then force-closes (canceling whatever is left, which is recorded
// with ErrShutdown / a canceled context as its reason). A process
// that calls Shutdown before exiting never leaves a job observable in
// a non-terminal state: every admitted job has resolved by the time
// Shutdown returns.
func (m *Manager) Shutdown(ctx context.Context) {
	m.drainOnce.Do(func() {
		m.closeMu.Lock()
		close(m.draining)
		m.closeMu.Unlock()
	})
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for m.depth.Load()+m.running.Load() > 0 {
		select {
		case <-ctx.Done():
			m.Close()
			return
		case <-m.closed: // concurrent Close wins
			m.wg.Wait()
			return
		case <-ticker.C:
		}
	}
	m.Close()
}

// NodeOf extracts the node tag from a job ID issued by a Manager with
// Options.NodeTag set ("j-<tag>-<prefix>-<seq>"). It returns "" for
// untagged IDs ("j-<prefix>-<seq>") and for strings that are not job
// IDs at all, so callers can treat "" uniformly as "no routing info".
func NodeOf(id string) string {
	parts := strings.Split(id, "-")
	if len(parts) == 4 && parts[0] == "j" && parts[1] != "" {
		return parts[1]
	}
	return ""
}

// Submit admits one job at the given priority (higher runs first) and
// returns its ID, or ErrQueueFull / ErrShuttingDown / ErrClosed.
func (m *Manager) Submit(payload any, priority int) (string, error) {
	ids, err := m.SubmitAll([]any{payload}, priority)
	if err != nil {
		return "", err
	}
	return ids[0], nil
}

// SubmitAll admits every payload or none: a batch that does not fit
// under the queue capacity is rejected whole with ErrQueueFull, so a
// caller never has to track a partially admitted batch. IDs are
// returned in payload order.
func (m *Manager) SubmitAll(payloads []any, priority int) ([]string, error) {
	return m.SubmitTraced(context.Background(), payloads, priority, "")
}

// SubmitTraced is SubmitAll with a trace ID stamped on every admitted
// record: it is surfaced in Status.TraceID and delivered to the
// Runner's context (ContextTraceID), linking the async execution back
// to the request that submitted it. The context scopes the WAL append
// (tracing; the append itself is not cancelable once started).
//
// With a WAL configured, admission is write-ahead: queue slots are
// reserved, the submit records are appended (and, under the always
// policy, fsynced), and only then do the jobs become visible — so an
// ID this method returns names a job that survives a crash.
func (m *Manager) SubmitTraced(ctx context.Context, payloads []any, priority int, traceID string) ([]string, error) {
	if len(payloads) == 0 {
		return nil, errors.New("jobs: empty submission")
	}
	m.closeMu.RLock()
	defer m.closeMu.RUnlock()
	select {
	case <-m.closed:
		return nil, ErrClosed
	default:
	}
	select {
	case <-m.draining: // graceful drain: still working, not admitting
		return nil, ErrShuttingDown
	default:
	}
	now := time.Now()
	recs := make([]*record, len(payloads))
	ids := make([]string, len(payloads))
	for i, p := range payloads {
		seq := m.seq.Add(1)
		recs[i] = &record{
			id:        fmt.Sprintf(m.idFmt, seq),
			seq:       seq,
			priority:  priority,
			payload:   p,
			submitted: now,
			traceID:   traceID,
			state:     StateQueued,
		}
		ids[i] = recs[i].id
	}
	// Two-phase admission: reserve the slots, make the batch durable,
	// then commit (which registers the records in the store, so a batch
	// that never commits is never visible to Get/List/metrics).
	if err := m.queue.reserve(len(recs)); err != nil {
		m.rejected.Add(1)
		return nil, err
	}
	if m.opts.WAL != nil {
		wrecs := make([]wal.SubmitRecord, len(recs))
		for i, r := range recs {
			b, err := m.opts.EncodePayload(r.payload)
			if err != nil {
				m.queue.release(len(recs))
				m.rejected.Add(1)
				return nil, fmt.Errorf("jobs: encode payload: %w", err)
			}
			wrecs[i] = wal.SubmitRecord{
				ID:          r.id,
				TraceID:     r.traceID,
				Priority:    r.priority,
				SubmittedAt: r.submitted,
				Payload:     b,
			}
		}
		if err := m.opts.WAL.AppendSubmit(ctx, wrecs); err != nil {
			m.queue.release(len(recs))
			m.rejected.Add(1)
			m.walErrs.Add(1)
			return nil, fmt.Errorf("jobs: wal append: %w", err)
		}
	}
	m.queue.commit(recs, m.store.put)
	m.depth.Add(int64(len(recs)))
	m.submitted.Add(uint64(len(recs)))
	return ids, nil
}

// QueueCapacity returns the effective admission bound (defaults
// applied).
func (m *Manager) QueueCapacity() int { return m.opts.QueueCapacity }

// Get returns the job's current status, ErrNotFound for an unknown ID
// or ErrEvicted for a finished job whose result has been dropped.
func (m *Manager) Get(id string) (Status, error) {
	now := time.Now()
	rec, err := m.store.get(id, now)
	if err != nil {
		return Status{}, err
	}
	return rec.snapshot(now), nil
}

// Cancel stops a job: a queued job turns canceled immediately, a
// running job has its context canceled (the state turns canceled once
// the Runner honors it — the returned Status may still say running).
// Terminal jobs return ErrFinished alongside their status.
func (m *Manager) Cancel(id string) (Status, error) {
	now := time.Now()
	rec, err := m.store.get(id, now)
	if err != nil {
		return Status{}, err
	}
	rec.mu.Lock()
	switch rec.state {
	case StateQueued:
		rec.mu.Unlock()
		m.finishCanceled(rec, now)
		return rec.snapshot(now), nil
	case StateRunning:
		rec.cancel()
		rec.mu.Unlock()
		// Log the cancel intent: if the process dies before the Runner
		// honors the canceled context, replay still knows this job was
		// canceled instead of re-running it as a zombie.
		if m.opts.WAL != nil {
			if err := m.opts.WAL.AppendCancel(context.Background(), id); err != nil {
				m.walErrs.Add(1)
			}
		}
		return rec.snapshot(now), nil
	default:
		rec.mu.Unlock()
		return rec.snapshot(now), ErrFinished
	}
}

// finishCanceled moves a queued record straight to canceled (Cancel
// on a queued job). The record stays in the heap until a dispatcher
// pops and skips it.
func (m *Manager) finishCanceled(rec *record, now time.Time) {
	m.finishAborted(rec, now, nil)
}

// finishAborted is finishCanceled with a recorded reason; the
// shutdown paths use it so a job killed by the server stopping says
// so instead of looking like a client cancel.
func (m *Manager) finishAborted(rec *record, now time.Time, reason error) {
	if m.abortQueued(rec, now, reason) && m.opts.WAL != nil {
		m.walFinish(m.buildFinish(rec.id, StateCanceled, now, now.Add(m.opts.TTL), reason, nil))
	}
}

// abortQueued makes the queued→canceled transition, reporting whether
// this call won it (a dispatcher may have started the job first — the
// transition, not the WAL append, decides the race, which is why the
// abort path logs after transitioning while the dispatch path logs
// before: the dispatcher is the unique owner of running→terminal).
func (m *Manager) abortQueued(rec *record, now time.Time, reason error) bool {
	rec.mu.Lock()
	if rec.state != StateQueued {
		rec.mu.Unlock()
		return false
	}
	rec.state = StateCanceled
	rec.finished = now
	rec.err = reason
	rec.mu.Unlock()
	m.depth.Add(-1)
	m.canceled.Add(1)
	m.store.finish(rec, now.Add(m.opts.TTL))
	return true
}

// buildFinish renders a terminal transition as a WAL record. Result
// encoding failures degrade to a result-less done record (counted in
// walErrs) — the job's outcome survives, its body does not.
func (m *Manager) buildFinish(id string, state State, finished, expire time.Time, reason error, result any) wal.FinishRecord {
	fr := wal.FinishRecord{
		ID:         id,
		State:      walState(state),
		FinishedAt: finished,
		ExpireAt:   expire,
	}
	if reason != nil {
		fr.Err = reason.Error()
	}
	if state == StateDone && result != nil {
		if b, err := m.opts.EncodeResult(result); err == nil {
			fr.Result = b
		} else {
			m.walErrs.Add(1)
		}
	}
	return fr
}

// walFinish appends finish records, counting (not propagating)
// failures: by the time a finish exists the job already ran, and
// refusing to surface its outcome over a log error would turn a
// durability degradation into an availability loss.
func (m *Manager) walFinish(frs ...wal.FinishRecord) {
	if m.opts.WAL == nil {
		return
	}
	if err := m.opts.WAL.AppendFinish(context.Background(), frs...); err != nil {
		m.walErrs.Add(1)
	}
}

// walState maps a terminal manager state onto the WAL's.
func walState(s State) wal.State {
	switch s {
	case StateDone:
		return wal.StateDone
	case StateTimeout:
		return wal.StateTimeout
	case StateCanceled:
		return wal.StateCanceled
	}
	return wal.StateFailed
}

// List returns a page of job statuses, newest submission first,
// optionally filtered by state (empty matches all). limit <= 0 means
// no limit. The second return is the total match count before
// paging.
func (m *Manager) List(state State, offset, limit int) ([]Status, int) {
	now := time.Now()
	recs := m.store.all()
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq > recs[j].seq })
	matches := make([]Status, 0, len(recs))
	for _, rec := range recs {
		st := rec.snapshot(now)
		if state == "" || st.State == state {
			matches = append(matches, st)
		}
	}
	total := len(matches)
	if offset >= total {
		return nil, total
	}
	matches = matches[offset:]
	if limit > 0 && limit < len(matches) {
		matches = matches[:limit]
	}
	return matches, total
}

// dispatch is one runner goroutine: block for a token, pop the best
// record, run it, record the outcome.
func (m *Manager) dispatch() {
	defer m.wg.Done()
	for {
		select {
		case <-m.closed:
			return
		case <-m.queue.ready:
		}
		rec := m.queue.pop()
		if rec == nil {
			continue // drained by Close
		}
		rec.mu.Lock()
		if rec.state != StateQueued { // canceled while waiting
			rec.mu.Unlock()
			continue
		}
		now := time.Now()
		rec.state = StateRunning
		rec.started = now
		ctx, cancel := context.WithCancel(m.baseCtx)
		rec.cancel = cancel
		payload := rec.payload
		rec.mu.Unlock()
		if rec.traceID != "" {
			ctx = withTraceID(ctx, rec.traceID)
		}

		// running rises before depth falls so the depth+running sum —
		// Shutdown's "work left" probe — never transiently reads zero
		// while a job is changing hands.
		m.running.Add(1)
		m.depth.Add(-1)
		m.waitLat.Observe(now.Sub(rec.submitted))
		m.opts.QueueWaitHist.Observe(now.Sub(rec.submitted))

		out, err := m.opts.Run(ctx, payload)
		cancel()
		finish := time.Now()
		state := StateDone
		if err != nil {
			state = m.classify(err)
		}
		expire := finish.Add(m.opts.TTL)
		// Write-ahead for the terminal transition too: the finish record
		// is durable (to the policy's degree) before the state becomes
		// observable. Safe without the record lock — the dispatcher is
		// the unique owner of the running→terminal transition.
		if m.opts.WAL != nil {
			m.walFinish(m.buildFinish(rec.id, state, finish, expire, err, out))
		}

		rec.mu.Lock()
		rec.finished = finish
		rec.cancel = nil
		rec.state = state
		if err != nil {
			rec.err = err
		} else {
			rec.result = out
		}
		rec.mu.Unlock()

		m.running.Add(-1)
		m.runLat.Observe(finish.Sub(now))
		m.opts.RunHist.Observe(finish.Sub(now))
		switch state {
		case StateDone:
			m.done.Add(1)
		case StateTimeout:
			m.timedOut.Add(1)
		case StateCanceled:
			m.canceled.Add(1)
		default:
			m.failed.Add(1)
		}
		m.store.finish(rec, expire)
	}
}

// classify maps a Runner error to a terminal state: the caller's
// FailState first, then the context sentinels, then StateFailed.
func (m *Manager) classify(err error) State {
	if m.opts.FailState != nil {
		if s := m.opts.FailState(err); s != "" {
			return s
		}
	}
	switch {
	case errors.Is(err, context.Canceled):
		return StateCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return StateTimeout
	}
	return StateFailed
}

// janitor periodically sweeps expired results so idle managers shed
// memory without waiting for lookups to trip the lazy expiry, and
// drives WAL checkpointing on the same cadence (an ineligible log
// costs a few comparisons per tick).
func (m *Manager) janitor() {
	defer m.wg.Done()
	interval := m.opts.TTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.closed:
			return
		case <-ticker.C:
			now := time.Now()
			m.store.sweep(now)
			if m.opts.WAL != nil {
				m.opts.WAL.Compact(now)
			}
		}
	}
}
