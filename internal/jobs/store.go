// Sharded in-memory result store with TTL and capacity eviction.
//
// The store tracks every job from submission to eviction. Live
// (queued/running) records are never evicted — they are bounded by
// the queue capacity plus the dispatcher count — but terminal records
// are only worth their result for so long: each shard keeps its
// finished records in completion order and evicts from the old end
// when the shard exceeds its share of the capacity, or when a record
// outlives the TTL (checked lazily on lookup and periodically by the
// manager's janitor).
//
// Eviction is distinguishable from "never existed": an evicted ID
// leaves a tombstone behind, so lookups can answer ErrEvicted (HTTP
// 410) instead of ErrNotFound (404). Tombstones are themselves
// bounded — a FIFO ring per shard — so a very old evicted ID
// eventually degrades to ErrNotFound rather than growing memory
// forever.

package jobs

import (
	"container/list"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Lookup errors.
var (
	// ErrNotFound reports an ID the store has never seen (or whose
	// tombstone has aged out).
	ErrNotFound = errors.New("jobs: job not found")
	// ErrEvicted reports a finished job whose result was dropped by
	// TTL or capacity eviction.
	ErrEvicted = errors.New("jobs: job result evicted")
)

// shardCount spreads the store over independently locked shards so
// status polling does not serialize behind result writes.
const shardCount = 16

// store is the sharded record map.
type store struct {
	ttl       time.Duration
	shardCap  int // terminal records retained per shard
	size      atomic.Int64
	evictions atomic.Uint64
	shards    [shardCount]shard
}

// shard is one lock domain of the store.
type shard struct {
	mu   sync.Mutex
	recs map[string]*record
	term *list.List // terminal records, oldest finish at the front

	// Bounded tombstones for evicted IDs: tombs is the membership
	// set, ring the FIFO overwrite order.
	tombs   map[string]struct{}
	ring    []string
	ringPos int
}

func newStore(capacity int, ttl time.Duration) *store {
	s := &store{ttl: ttl, shardCap: (capacity + shardCount - 1) / shardCount}
	if s.shardCap < 1 {
		s.shardCap = 1
	}
	tombCap := s.shardCap * 4
	if tombCap < 64 {
		tombCap = 64
	}
	for i := range s.shards {
		s.shards[i] = shard{
			recs:  make(map[string]*record),
			term:  list.New(),
			tombs: make(map[string]struct{}, tombCap),
			ring:  make([]string, tombCap),
		}
	}
	return s
}

func (s *store) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id)) //nolint:errcheck // fnv never fails
	return &s.shards[h.Sum32()%shardCount]
}

// put registers a fresh (queued) record.
func (s *store) put(rec *record) {
	sh := s.shardFor(rec.id)
	sh.mu.Lock()
	sh.recs[rec.id] = rec
	sh.mu.Unlock()
	s.size.Add(1)
}

// get returns the record for id, or ErrEvicted / ErrNotFound. A
// terminal record past its TTL is evicted on the spot, so expiry
// takes effect even between janitor sweeps.
func (s *store) get(id string, now time.Time) (*record, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.recs[id]
	if !ok {
		if _, dead := sh.tombs[id]; dead {
			return nil, ErrEvicted
		}
		return nil, ErrNotFound
	}
	if rec.elem != nil && now.After(rec.expire) {
		s.evictLocked(sh, rec)
		return nil, ErrEvicted
	}
	return rec, nil
}

// finish moves a record onto the shard's terminal list and applies
// capacity eviction. expire is the record's TTL deadline.
func (s *store) finish(rec *record, expire time.Time) {
	sh := s.shardFor(rec.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec.expire = expire
	rec.elem = sh.term.PushBack(rec)
	for sh.term.Len() > s.shardCap {
		s.evictLocked(sh, sh.term.Front().Value.(*record))
	}
}

// sweep evicts every terminal record past its TTL. The terminal lists
// are in (approximate) finish order, so each shard stops at the first
// live record.
func (s *store) sweep(now time.Time) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for e := sh.term.Front(); e != nil; e = sh.term.Front() {
			rec := e.Value.(*record)
			if !now.After(rec.expire) {
				break
			}
			s.evictLocked(sh, rec)
		}
		sh.mu.Unlock()
	}
}

// evictLocked drops a terminal record and leaves a tombstone; the
// shard lock must be held.
func (s *store) evictLocked(sh *shard, rec *record) {
	delete(sh.recs, rec.id)
	sh.term.Remove(rec.elem)
	rec.elem = nil
	if old := sh.ring[sh.ringPos]; old != "" {
		delete(sh.tombs, old)
	}
	sh.ring[sh.ringPos] = rec.id
	sh.tombs[rec.id] = struct{}{}
	sh.ringPos = (sh.ringPos + 1) % len(sh.ring)
	s.size.Add(-1)
	s.evictions.Add(1)
}

// all snapshots every record pointer; callers sort and filter.
func (s *store) all() []*record {
	out := make([]*record, 0, s.size.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, rec := range sh.recs {
			out = append(out, rec)
		}
		sh.mu.Unlock()
	}
	return out
}
