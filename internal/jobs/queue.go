// Admission-controlled priority queue.
//
// The queue is the system's only admission point: a submission either
// fits under the configured capacity — all of it, for multi-job
// submissions — or is rejected outright with ErrQueueFull, so a burst
// can never build an unbounded backlog. Inside the capacity bound,
// dispatch order is (priority descending, submission sequence
// ascending): urgent work overtakes bulk work, equal-priority work
// stays FIFO.
//
// Cancellation of queued work is lazy. A canceled record stays in the
// heap (still counted against capacity) until a dispatcher pops and
// skips it; this keeps Cancel O(1) instead of O(queue). The ready
// channel carries exactly one token per heap item, so dispatchers
// block on the channel — never spin — and pop only when an item is
// guaranteed to be present.

package jobs

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrQueueFull is returned by Submit and SubmitAll when admitting the
// submission would push the queue past its capacity. Multi-job
// submissions are admitted atomically: all jobs or none.
var ErrQueueFull = errors.New("jobs: queue full")

// queue is the bounded priority queue feeding the dispatchers.
type queue struct {
	mu    sync.Mutex
	cap   int
	heap  recHeap
	ready chan struct{} // one token per heap item
}

func newQueue(capacity int) *queue {
	return &queue{cap: capacity, ready: make(chan struct{}, capacity)}
}

// pushAll admits every record or none: if the batch does not fit
// under the capacity it returns ErrQueueFull without enqueueing
// anything. admit runs per record inside the critical section, after
// the capacity check — the manager registers records in its store
// there, so a rejected batch is never visible anywhere and an
// admitted record is always findable before a dispatcher can pop it.
// The token sends after the critical section never block — the heap
// holds at most cap items and ready has cap slots.
func (q *queue) pushAll(recs []*record, admit func(*record)) error {
	q.mu.Lock()
	if len(q.heap)+len(recs) > q.cap {
		q.mu.Unlock()
		return ErrQueueFull
	}
	for _, r := range recs {
		admit(r)
		heap.Push(&q.heap, r)
	}
	q.mu.Unlock()
	for range recs {
		q.ready <- struct{}{}
	}
	return nil
}

// pop removes the best (highest priority, then oldest) record, or nil
// if the heap is empty — possible when Close drained it first.
func (q *queue) pop() *record {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.heap) == 0 {
		return nil
	}
	return heap.Pop(&q.heap).(*record)
}

// drain empties the heap and returns the removed records; used by
// Close to mark still-queued work canceled.
func (q *queue) drain() []*record {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.heap
	q.heap = nil
	return out
}

// recHeap orders records by priority descending, then submission
// sequence ascending (FIFO within a priority band). priority and seq
// are immutable after creation, so heap operations need no record
// locks.
type recHeap []*record

func (h recHeap) Len() int { return len(h) }

func (h recHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}

func (h recHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *recHeap) Push(x any) { *h = append(*h, x.(*record)) }

func (h *recHeap) Pop() any {
	old := *h
	n := len(old)
	rec := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return rec
}
