// Admission-controlled priority queue.
//
// The queue is the system's only admission point: a submission either
// fits under the configured capacity — all of it, for multi-job
// submissions — or is rejected outright with ErrQueueFull, so a burst
// can never build an unbounded backlog. Inside the capacity bound,
// dispatch order is (priority descending, submission sequence
// ascending): urgent work overtakes bulk work, equal-priority work
// stays FIFO.
//
// Cancellation of queued work is lazy. A canceled record stays in the
// heap (still counted against capacity) until a dispatcher pops and
// skips it; this keeps Cancel O(1) instead of O(queue). The ready
// channel carries exactly one token per heap item, so dispatchers
// block on the channel — never spin — and pop only when an item is
// guaranteed to be present.

package jobs

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrQueueFull is returned by Submit and SubmitAll when admitting the
// submission would push the queue past its capacity. Multi-job
// submissions are admitted atomically: all jobs or none.
var ErrQueueFull = errors.New("jobs: queue full")

// queue is the bounded priority queue feeding the dispatchers.
type queue struct {
	mu       sync.Mutex
	cap      int
	reserved int // slots held by in-flight two-phase submissions
	heap     recHeap
	ready    chan struct{} // one token per heap item
}

// newQueue sizes the ready channel for capacity plus extra recovered
// records: WAL replay re-enqueues jobs above the admission bound (they
// were admitted before the crash), and every heap item needs a token
// slot for the sends to stay non-blocking.
func newQueue(capacity, extra int) *queue {
	return &queue{cap: capacity, ready: make(chan struct{}, capacity+extra)}
}

// Admission is two-phase so the manager can make a job durable
// between the capacity decision and its becoming runnable: reserve
// holds slots, then either commit (after the WAL append succeeded)
// publishes the records, or release (append failed) returns the
// slots. Without a WAL the manager calls reserve+commit back to back;
// the cost over the old single-step push is one extra lock hop on a
// path that already takes several.

// reserve claims n queue slots or rejects the whole batch with
// ErrQueueFull. Reserved slots count against capacity exactly like
// queued records, so concurrent submissions cannot overshoot the
// bound while one of them is writing the WAL.
func (q *queue) reserve(n int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.heap)+q.reserved+n > q.cap {
		return ErrQueueFull
	}
	q.reserved += n
	return nil
}

// commit converts reserved slots into queued records. admit runs per
// record inside the critical section — the manager registers records
// in its store there, so an admitted record is always findable before
// a dispatcher can pop it. The token sends after the critical section
// never block: the heap never exceeds cap (+ recovery extra) items.
func (q *queue) commit(recs []*record, admit func(*record)) {
	q.mu.Lock()
	q.reserved -= len(recs)
	for _, r := range recs {
		admit(r)
		heap.Push(&q.heap, r)
	}
	q.mu.Unlock()
	for range recs {
		q.ready <- struct{}{}
	}
}

// release returns reserved slots without enqueueing (the WAL append
// failed; the submission was never acknowledged).
func (q *queue) release(n int) {
	q.mu.Lock()
	q.reserved -= n
	q.mu.Unlock()
}

// pushRecovered enqueues WAL-replayed records, bypassing the capacity
// check: they were admitted (and acknowledged) before the crash, so
// bouncing them now would drop durable jobs. Only called from New,
// before the dispatchers start.
func (q *queue) pushRecovered(recs []*record, admit func(*record)) {
	q.mu.Lock()
	for _, r := range recs {
		admit(r)
		heap.Push(&q.heap, r)
	}
	q.mu.Unlock()
	for range recs {
		q.ready <- struct{}{}
	}
}

// pop removes the best (highest priority, then oldest) record, or nil
// if the heap is empty — possible when Close drained it first.
func (q *queue) pop() *record {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.heap) == 0 {
		return nil
	}
	return heap.Pop(&q.heap).(*record)
}

// drain empties the heap and returns the removed records; used by
// Close to mark still-queued work canceled.
func (q *queue) drain() []*record {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.heap
	q.heap = nil
	return out
}

// recHeap orders records by priority descending, then submission
// sequence ascending (FIFO within a priority band). priority and seq
// are immutable after creation, so heap operations need no record
// locks.
type recHeap []*record

func (h recHeap) Len() int { return len(h) }

func (h recHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}

func (h recHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *recHeap) Push(x any) { *h = append(*h, x.(*record)) }

func (h *recHeap) Pop() any {
	old := *h
	n := len(old)
	rec := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return rec
}
