package jobs

import "testing"

// TestRetryAfterSeconds pins the drain-rate estimate: median run time
// × depth / runners, rounded up, clamped to [1, 60], with a 1s cold
// floor when nothing has run yet.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		name string
		m    Metrics
		want int
	}{
		{"cold start", Metrics{QueueDepth: 50, Runners: 4}, 1},
		{"empty queue", Metrics{RunP50Micros: 2e6, Runners: 4}, 1},
		{"drains fast", Metrics{RunP50Micros: 100, QueueDepth: 1, Runners: 4}, 1},
		{"typical backlog", Metrics{RunP50Micros: 500_000, QueueDepth: 10, Runners: 2}, 3},
		{"rounds up", Metrics{RunP50Micros: 1e6, QueueDepth: 3, Runners: 2}, 2},
		{"clamped", Metrics{RunP50Micros: 2e6, QueueDepth: 100, Runners: 1}, 60},
		{"zero runners defends", Metrics{RunP50Micros: 1e6, QueueDepth: 2}, 2},
	}
	for _, c := range cases {
		if got := c.m.RetryAfterSeconds(); got != c.want {
			t.Errorf("%s: RetryAfterSeconds = %d, want %d", c.name, got, c.want)
		}
	}
}
