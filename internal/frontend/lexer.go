// Package frontend parses the mini-C loop language the tools accept and
// lowers it to model.LoopSpec. The language covers the loops the paper
// studies: a counted for-loop over one induction variable whose body is
// a sequence of statements over array references A[i+c], scalar
// variables and integer constants, e.g.
//
//	for (i = 2; i <= N; i++) {
//	    y[i] = c0*x[i+1] + c1*x[i] + c2*x[i-2];
//	    t = t + y[i-1];
//	}
//
// Array references are collected left-to-right into the loop's access
// pattern; scalar reads/writes are collected into a separate sequence
// that feeds the complementary offset-assignment optimizer.
package frontend

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokPunct // single punctuation: ( ) { } [ ] ; , = + - * /
	tokOp    // multi-char operators: ++ += <= < ==
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

type lexer struct {
	src    string
	off    int
	line   int
	tokens []token
}

// lex splits src into tokens. It reports unknown characters as errors.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == '\n':
			l.line++
			l.off++
		case c == ' ' || c == '\t' || c == '\r':
			l.off++
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			l.skipLineComment()
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			if err := l.skipBlockComment(); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexInt()
		default:
			if err := l.lexOperator(); err != nil {
				return nil, err
			}
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.off, line: l.line})
	return l.tokens, nil
}

func (l *lexer) skipLineComment() {
	for l.off < len(l.src) && l.src[l.off] != '\n' {
		l.off++
	}
}

func (l *lexer) skipBlockComment() error {
	start := l.line
	l.off += 2
	for l.off+1 < len(l.src) {
		if l.src[l.off] == '\n' {
			l.line++
		}
		if l.src[l.off] == '*' && l.src[l.off+1] == '/' {
			l.off += 2
			return nil
		}
		l.off++
	}
	return fmt.Errorf("frontend: line %d: unterminated block comment", start)
}

func (l *lexer) lexIdent() {
	start := l.off
	for l.off < len(l.src) && isIdentPart(rune(l.src[l.off])) {
		l.off++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.off], pos: start, line: l.line})
}

func (l *lexer) lexInt() {
	start := l.off
	for l.off < len(l.src) && l.src[l.off] >= '0' && l.src[l.off] <= '9' {
		l.off++
	}
	l.tokens = append(l.tokens, token{kind: tokInt, text: l.src[start:l.off], pos: start, line: l.line})
}

func (l *lexer) lexOperator() error {
	two := ""
	if l.off+1 < len(l.src) {
		two = l.src[l.off : l.off+2]
	}
	switch two {
	case "++", "+=", "<=", "==":
		l.tokens = append(l.tokens, token{kind: tokOp, text: two, pos: l.off, line: l.line})
		l.off += 2
		return nil
	}
	c := l.src[l.off]
	if strings.IndexByte("(){}[];,=+-*/<", c) >= 0 {
		l.tokens = append(l.tokens, token{kind: tokPunct, text: string(c), pos: l.off, line: l.line})
		l.off++
		return nil
	}
	return fmt.Errorf("frontend: line %d: unexpected character %q", l.line, c)
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
