package frontend

import (
	"fmt"
	"strconv"

	"dspaddr/internal/model"
)

// ScalarAccess is one read or write of a scalar variable, in source
// order. The sequence feeds the offset-assignment optimizer for scalar
// addressing (the complementary problem of Liao et al. and
// Leupers/Marwedel the paper cites).
type ScalarAccess struct {
	Name  string
	Write bool
}

// Program is the parse result: the lowered loop plus the scalar access
// sequence of its body.
type Program struct {
	Loop    model.LoopSpec
	Scalars []ScalarAccess
}

// Parse parses a mini-C loop. Symbolic constants in the loop bounds
// (e.g. the N of "i <= N") are resolved through bindings; a missing
// binding is an error. The induction variable may be used only as an
// array index term.
func Parse(src string, bindings map[string]int) (*Program, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens, bindings: bindings}
	prog, err := p.parseLoop()
	if err != nil {
		return nil, err
	}
	if err := prog.Loop.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	tokens   []token
	pos      int
	bindings map[string]int
	loopVar  string
	prog     Program
}

func (p *parser) cur() token  { return p.tokens[p.pos] }
func (p *parser) next() token { t := p.tokens[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("frontend: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if (t.kind != tokPunct && t.kind != tokOp) || t.text != s {
		return fmt.Errorf("frontend: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) expectIdent(want string) (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("frontend: line %d: expected identifier, got %q", t.line, t.text)
	}
	if want != "" && t.text != want {
		return "", fmt.Errorf("frontend: line %d: expected %q, got %q", t.line, want, t.text)
	}
	return t.text, nil
}

// constValue resolves an integer literal or bound symbolic constant,
// with optional unary minus.
func (p *parser) constValue() (int, error) {
	neg := false
	if p.cur().kind == tokPunct && p.cur().text == "-" {
		p.next()
		neg = true
	}
	t := p.next()
	var v int
	switch t.kind {
	case tokInt:
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return 0, fmt.Errorf("frontend: line %d: bad integer %q", t.line, t.text)
		}
		v = n
	case tokIdent:
		n, ok := p.bindings[t.text]
		if !ok {
			return 0, fmt.Errorf("frontend: line %d: unbound symbolic constant %q", t.line, t.text)
		}
		v = n
	default:
		return 0, fmt.Errorf("frontend: line %d: expected constant, got %q", t.line, t.text)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseLoop parses
//
//	for ( i = lo ; i <= hi ; step ) { body }
//
// where step is i++ or i += c, and the condition may use < or <=.
func (p *parser) parseLoop() (*Program, error) {
	if _, err := p.expectIdent("for"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	v, err := p.expectIdent("")
	if err != nil {
		return nil, err
	}
	p.loopVar = v
	p.prog.Loop.Var = v
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	if p.prog.Loop.From, err = p.constValue(); err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if _, err := p.expectIdent(v); err != nil {
		return nil, err
	}
	cmp := p.next()
	if cmp.text != "<=" && cmp.text != "<" {
		return nil, fmt.Errorf("frontend: line %d: expected < or <=, got %q", cmp.line, cmp.text)
	}
	hi, err := p.constValue()
	if err != nil {
		return nil, err
	}
	if cmp.text == "<" {
		hi--
	}
	p.prog.Loop.To = hi
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if _, err := p.expectIdent(v); err != nil {
		return nil, err
	}
	step := p.next()
	switch step.text {
	case "++":
		p.prog.Loop.Stride = 1
	case "+=":
		if p.prog.Loop.Stride, err = p.constValue(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("frontend: line %d: expected ++ or +=, got %q", step.line, step.text)
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !(p.cur().kind == tokPunct && p.cur().text == "}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated loop body")
		}
		if err := p.parseStatement(); err != nil {
			return nil, err
		}
	}
	p.next() // consume "}"
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input after loop: %q", p.cur().text)
	}
	return &p.prog, nil
}

// parseStatement parses either an assignment "ref = expr ;", a
// compound assignment "ref += expr ;", or a bare expression statement
// "expr ;".
func (p *parser) parseStatement() error {
	// Lookahead: ident followed by "=" / "+=" / "[" means a reference
	// starts the statement.
	if p.cur().kind == tokIdent {
		save := p.pos
		name := p.next().text
		switch {
		case p.cur().text == "[":
			// Array reference; may be an assignment target or the
			// start of an expression.
			off, err := p.parseIndex()
			if err != nil {
				return err
			}
			if p.cur().text == "=" || p.cur().text == "+=" {
				compound := p.next().text == "+="
				if compound {
					// x[i] += e reads then writes the element.
					p.recordArray(name, off, false)
				}
				if err := p.parseExpr(); err != nil {
					return err
				}
				p.recordArray(name, off, true)
				return p.expectPunct(";")
			}
			// Expression statement beginning with this access.
			p.recordArray(name, off, false)
			if err := p.continueExpr(); err != nil {
				return err
			}
			return p.expectPunct(";")
		case p.cur().text == "=" || p.cur().text == "+=":
			compound := p.next().text == "+="
			if compound {
				p.recordScalar(name, false)
			}
			if err := p.parseExpr(); err != nil {
				return err
			}
			p.recordScalar(name, true)
			return p.expectPunct(";")
		default:
			// Bare expression starting with a scalar.
			p.pos = save
			if err := p.parseExpr(); err != nil {
				return err
			}
			return p.expectPunct(";")
		}
	}
	if err := p.parseExpr(); err != nil {
		return err
	}
	return p.expectPunct(";")
}

// parseExpr parses term (("+"|"-"|"*"|"/") term)* recording accesses in
// source order. Precedence is irrelevant for access extraction, so the
// grammar is deliberately flat.
func (p *parser) parseExpr() error {
	if err := p.parseTerm(); err != nil {
		return err
	}
	return p.continueExpr()
}

func (p *parser) continueExpr() error {
	for {
		t := p.cur()
		if t.kind == tokPunct && (t.text == "+" || t.text == "-" || t.text == "*" || t.text == "/") {
			p.next()
			if err := p.parseTerm(); err != nil {
				return err
			}
			continue
		}
		return nil
	}
}

func (p *parser) parseTerm() error {
	t := p.cur()
	switch {
	case t.kind == tokPunct && t.text == "(":
		p.next()
		if err := p.parseExpr(); err != nil {
			return err
		}
		return p.expectPunct(")")
	case t.kind == tokPunct && t.text == "-":
		p.next()
		return p.parseTerm()
	case t.kind == tokInt:
		p.next()
		return nil
	case t.kind == tokIdent:
		name := p.next().text
		if p.cur().kind == tokPunct && p.cur().text == "[" {
			off, err := p.parseIndex()
			if err != nil {
				return err
			}
			p.recordArray(name, off, false)
			return nil
		}
		if name == p.loopVar {
			return nil // the induction variable itself, e.g. "t = t + i"
		}
		p.recordScalar(name, false)
		return nil
	default:
		return p.errf("unexpected token %q in expression", t.text)
	}
}

// parseIndex parses "[" index "]" where index is the induction
// variable with an optional ±constant, or a constant with the
// induction variable added ("[c+i]").
func (p *parser) parseIndex() (int, error) {
	if err := p.expectPunct("["); err != nil {
		return 0, err
	}
	var offset int
	t := p.cur()
	switch {
	case t.kind == tokIdent && t.text == p.loopVar:
		p.next()
		if p.cur().text == "+" || p.cur().text == "-" {
			sign := 1
			if p.next().text == "-" {
				sign = -1
			}
			c, err := p.constValue()
			if err != nil {
				return 0, err
			}
			offset = sign * c
		}
	default:
		c, err := p.constValue()
		if err != nil {
			return 0, err
		}
		if p.cur().text != "+" {
			return 0, p.errf("array index must involve the loop variable %q", p.loopVar)
		}
		p.next()
		if _, err := p.expectIdent(p.loopVar); err != nil {
			return 0, err
		}
		offset = c
	}
	if err := p.expectPunct("]"); err != nil {
		return 0, err
	}
	return offset, nil
}

func (p *parser) recordArray(name string, offset int, write bool) {
	p.prog.Loop.Accesses = append(p.prog.Loop.Accesses, model.Access{Array: name, Offset: offset, Write: write})
}

func (p *parser) recordScalar(name string, write bool) {
	p.prog.Scalars = append(p.prog.Scalars, ScalarAccess{Name: name, Write: write})
}
