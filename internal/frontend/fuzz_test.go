package frontend

import (
	"testing"
)

// FuzzParse feeds arbitrary source to the parser; it must never panic,
// and on success the lowered loop must validate. The seed corpus also
// runs under plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"for (i = 2; i <= N; i++) { A[i+1]; A[i]; }",
		"for (i = 0; i < 16; i += 4) { y[i] = x[i] - x[i-1]; }",
		"for (i = -3; i <= 3; i++) { s += a[i]*b[i]; }",
		"for (i = 0; i <= 3; i++) { w[i] += x[i]; }",
		"for (i = 0; i <= 3; i++) { y[i] = -(x[i+1]) / 2; }",
		"for (i",
		"for (i = 0; i <= 3; i++) { A[5]; }",
		"for (i = 0; i <= 3; i++) { /* unterminated",
		"}{][)(",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src, map[string]int{"N": 10})
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := prog.Loop.Validate(); err != nil {
			t.Fatalf("accepted loop fails validation: %v\nsource: %q", err, src)
		}
		for _, a := range prog.Loop.Accesses {
			if a.Array == "" {
				t.Fatalf("access without array name from %q", src)
			}
		}
	})
}
