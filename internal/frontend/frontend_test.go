package frontend

import (
	"reflect"
	"strings"
	"testing"

	"dspaddr/internal/model"
)

func mustParse(t *testing.T, src string, bindings map[string]int) *Program {
	t.Helper()
	prog, err := Parse(src, bindings)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return prog
}

func TestParsePaperExampleLoop(t *testing.T) {
	src := `
/* the example loop of Section 2 */
for (i = 2; i <= N; i++)
{
    A[i+1];  // a_1
    A[i];    // a_2
    A[i+2];  // a_3
    A[i-1];  // a_4
    A[i+1];  // a_5
    A[i];    // a_6
    A[i-2];  // a_7
}
`
	prog := mustParse(t, src, map[string]int{"N": 100})
	l := prog.Loop
	if l.Var != "i" || l.From != 2 || l.To != 100 || l.Stride != 1 {
		t.Fatalf("header = %+v", l)
	}
	pats, _ := l.Patterns()
	if len(pats) != 1 {
		t.Fatalf("patterns = %d", len(pats))
	}
	if !reflect.DeepEqual(pats[0].Offsets, model.PaperExample().Offsets) {
		t.Fatalf("offsets = %v", pats[0].Offsets)
	}
}

func TestParseAssignmentsAndScalars(t *testing.T) {
	src := `
for (i = 0; i <= 9; i++) {
    y[i] = c0*x[i+1] + c1*x[i] - c2*x[i-2];
    acc += y[i-1];
}
`
	prog := mustParse(t, src, nil)
	// Access order: reads of x in expression order, then the y[i]
	// write, then read y[i-1] (acc += is scalar read + write around it).
	var got []model.Access
	for _, a := range prog.Loop.Accesses {
		got = append(got, a)
	}
	want := []model.Access{
		{Array: "x", Offset: 1},
		{Array: "x", Offset: 0},
		{Array: "x", Offset: -2},
		{Array: "y", Offset: 0, Write: true},
		{Array: "y", Offset: -1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("accesses = %v, want %v", got, want)
	}
	wantScalars := []ScalarAccess{
		{Name: "c0", Write: false},
		{Name: "c1", Write: false},
		{Name: "c2", Write: false},
		{Name: "acc", Write: false},
		{Name: "acc", Write: true},
	}
	if !reflect.DeepEqual(prog.Scalars, wantScalars) {
		t.Fatalf("scalars = %v, want %v", prog.Scalars, wantScalars)
	}
}

func TestParseCompoundArrayAssignment(t *testing.T) {
	src := `for (i = 0; i <= 3; i++) { w[i] += x[i]; }`
	prog := mustParse(t, src, nil)
	want := []model.Access{
		{Array: "w", Offset: 0}, // read of w[i]
		{Array: "x", Offset: 0},
		{Array: "w", Offset: 0, Write: true},
	}
	if !reflect.DeepEqual(prog.Loop.Accesses, want) {
		t.Fatalf("accesses = %v, want %v", prog.Loop.Accesses, want)
	}
}

func TestParseStrideAndExclusiveBound(t *testing.T) {
	prog := mustParse(t, `for (i = 0; i < 16; i += 4) { A[i]; }`, nil)
	if prog.Loop.To != 15 || prog.Loop.Stride != 4 {
		t.Fatalf("loop = %+v", prog.Loop)
	}
	if prog.Loop.Iterations() != 4 {
		t.Fatalf("iterations = %d", prog.Loop.Iterations())
	}
}

func TestParseIndexForms(t *testing.T) {
	prog := mustParse(t, `for (i = 0; i <= 5; i++) { A[3+i]; A[i-0]; A[i+M]; }`, map[string]int{"M": 7})
	want := []int{3, 0, 7}
	for k, a := range prog.Loop.Accesses {
		if a.Offset != want[k] {
			t.Fatalf("offset[%d] = %d, want %d", k, a.Offset, want[k])
		}
	}
}

func TestParseParenthesesAndUnaryMinus(t *testing.T) {
	prog := mustParse(t, `for (i = 0; i <= 2; i++) { y[i] = -(x[i+1] - x[i-1]) / 2; }`, nil)
	want := []model.Access{
		{Array: "x", Offset: 1},
		{Array: "x", Offset: -1},
		{Array: "y", Offset: 0, Write: true},
	}
	if !reflect.DeepEqual(prog.Loop.Accesses, want) {
		t.Fatalf("accesses = %v", prog.Loop.Accesses)
	}
}

func TestParseInductionVariableInExpression(t *testing.T) {
	prog := mustParse(t, `for (i = 0; i <= 2; i++) { s = s + i; A[i]; }`, nil)
	if len(prog.Loop.Accesses) != 1 {
		t.Fatalf("accesses = %v", prog.Loop.Accesses)
	}
	if len(prog.Scalars) != 2 { // read s, write s
		t.Fatalf("scalars = %v", prog.Scalars)
	}
}

func TestParseNegativeFrom(t *testing.T) {
	prog := mustParse(t, `for (i = -4; i <= 4; i++) { A[i]; }`, nil)
	if prog.Loop.From != -4 {
		t.Fatalf("From = %d", prog.Loop.From)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
		bindings  map[string]int
	}{
		{"garbage", "bogus", nil},
		{"missing paren", "for i = 0; i <= 3; i++) { A[i]; }", nil},
		{"bad condition", "for (i = 0; i == 3; i++) { A[i]; }", nil},
		{"unbound symbol", "for (i = 0; i <= N; i++) { A[i]; }", nil},
		{"bad step", "for (i = 0; i <= 3; i--) { A[i]; }", nil},
		{"wrong loop var in cond", "for (i = 0; j <= 3; i++) { A[i]; }", nil},
		{"unterminated body", "for (i = 0; i <= 3; i++) { A[i];", nil},
		{"trailing input", "for (i = 0; i <= 3; i++) { A[i]; } junk", nil},
		{"index without loop var", "for (i = 0; i <= 3; i++) { A[5]; }", nil},
		{"index wrong var", "for (i = 0; i <= 3; i++) { A[j+1]; }", nil},
		{"missing semicolon", "for (i = 0; i <= 3; i++) { A[i] }", nil},
		{"empty body", "for (i = 0; i <= 3; i++) { }", nil},
		{"bad char", "for (i = 0; i <= 3; i++) { A[i] @ 2; }", nil},
		{"unterminated comment", "/* oops\nfor (i = 0; i <= 3; i++) { A[i]; }", nil},
		{"missing bracket", "for (i = 0; i <= 3; i++) { A[i; }", nil},
		{"stray close in expr", "for (i = 0; i <= 3; i++) { y[i] = (x[i]; }", nil},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.src, tc.bindings); err == nil {
			t.Errorf("%s: Parse accepted %q", tc.name, tc.src)
		}
	}
}

func TestParseErrorMentionsLine(t *testing.T) {
	src := "for (i = 0; i <= 3; i++) {\n  A[i];\n  A[j];\n}"
	_, err := Parse(src, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error should cite line 3: %v", err)
	}
}

func TestParseMultiArrayKernel(t *testing.T) {
	src := `
for (i = 0; i <= 63; i++) {
    y[i] = b0*x[i] + b1*x[i-1] + b2*x[i-2] - a1*y[i-1] - a2*y[i-2];
}
`
	prog := mustParse(t, src, nil)
	pats, _ := prog.Loop.Patterns()
	if len(pats) != 2 {
		t.Fatalf("patterns = %d", len(pats))
	}
	byName := map[string][]int{}
	for _, p := range pats {
		byName[p.Array] = p.Offsets
	}
	if !reflect.DeepEqual(byName["x"], []int{0, -1, -2}) {
		t.Fatalf("x offsets = %v", byName["x"])
	}
	// The y[i] write is recorded after the RHS reads y[i-1], y[i-2].
	if !reflect.DeepEqual(byName["y"], []int{-1, -2, 0}) {
		t.Fatalf("y offsets = %v", byName["y"])
	}
}
