package indexreg

import (
	"math/rand"
	"testing"

	"dspaddr/internal/model"
)

func agu(k, m int) model.AGUSpec { return model.AGUSpec{Registers: k, ModifyRange: m} }

func TestOptimizeCoversRepeatedLargeStride(t *testing.T) {
	// Alternating jumps of +5/-5 on one register: hopeless for M=1
	// (every transition costs) but a single index register holding 5
	// makes the whole pattern free.
	pat := model.NewPattern(0, 5, 0, 5, 0, 5)
	res, err := Optimize(pat, agu(1, 1), Options{IndexRegisters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseCost == 0 {
		t.Fatalf("base model should pay for the jumps, got 0")
	}
	if res.Cost != 0 {
		t.Fatalf("indexed cost = %d, want 0 (values %v)", res.Cost, res.Values)
	}
	if len(res.Values) != 1 || res.Values[0] != 5 {
		t.Fatalf("values = %v, want [5]", res.Values)
	}
}

func TestOptimizeTwoValuePattern(t *testing.T) {
	// Distances 7 and 13 dominate; two index registers cover both.
	pat := model.NewPattern(0, 7, 0, 13, 0, 7, 0, 13)
	res, err := Optimize(pat, agu(1, 1), Options{IndexRegisters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("cost = %d with values %v, want 0", res.Cost, res.Values)
	}
	if len(res.Values) != 2 {
		t.Fatalf("values = %v", res.Values)
	}
}

func TestOptimizeZeroIndexRegistersEqualsBase(t *testing.T) {
	pat := model.PaperExample()
	res, err := Optimize(pat, agu(1, 1), Options{IndexRegisters: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != res.BaseCost {
		t.Fatalf("cost %d != base %d with no index registers", res.Cost, res.BaseCost)
	}
	if len(res.Values) != 0 {
		t.Fatalf("values = %v", res.Values)
	}
}

func TestOptimizeNeverWorseThanBase(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(16)
		offs := make([]int, n)
		for i := range offs {
			offs[i] = rng.Intn(25) - 12
		}
		pat := model.Pattern{Array: "A", Stride: 1, Offsets: offs}
		spec := agu(1+rng.Intn(3), rng.Intn(2))
		opts := Options{
			IndexRegisters: rng.Intn(3),
			Wrap:           rng.Intn(2) == 0,
		}
		res, err := Optimize(pat, spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > res.BaseCost {
			t.Fatalf("indexed cost %d worse than base %d (pattern %v, %v, %d idx regs)",
				res.Cost, res.BaseCost, pat, spec, opts.IndexRegisters)
		}
		if len(res.Values) > opts.IndexRegisters {
			t.Fatalf("too many values: %v", res.Values)
		}
		if err := res.Assignment.Validate(pat); err != nil {
			t.Fatal(err)
		}
		if res.Assignment.Registers() > spec.Registers {
			t.Fatalf("used %d > K=%d registers", res.Assignment.Registers(), spec.Registers)
		}
		// The reported cost must match recomputation.
		if got := res.Assignment.CostIndexed(pat, spec.ModifyRange, res.Values, opts.Wrap); got != res.Cost {
			t.Fatalf("reported cost %d != recomputed %d", res.Cost, got)
		}
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(model.Pattern{}, agu(1, 1), Options{}); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if _, err := Optimize(model.PaperExample(), agu(0, 1), Options{}); err == nil {
		t.Fatal("bad AGU accepted")
	}
	if _, err := Optimize(model.PaperExample(), agu(1, 1), Options{IndexRegisters: -1}); err == nil {
		t.Fatal("negative index count accepted")
	}
}

func TestPickValuesFrequencyOrder(t *testing.T) {
	// Distances: 9 appears twice, 4 once. One slot must pick 9.
	pat := model.NewPattern(0, 9, 0, 4)
	a := model.Assignment{Paths: []model.Path{{0, 1, 2, 3}}}
	vals := pickValues(pat, a, 1, 1, false)
	if len(vals) != 1 || vals[0] != 9 {
		t.Fatalf("values = %v, want [9]", vals)
	}
	// Two slots pick both.
	vals = pickValues(pat, a, 1, 2, false)
	if len(vals) != 2 || vals[0] != 4 || vals[1] != 9 {
		t.Fatalf("values = %v, want [4 9]", vals)
	}
	// Wrap adds the loop-back distance 0+1-4 = -3.
	vals = pickValues(pat, a, 1, 3, true)
	if len(vals) != 3 {
		t.Fatalf("values = %v", vals)
	}
}

func TestTransitionCostIndexedModel(t *testing.T) {
	if model.TransitionCostIndexed(5, 1, []int{5}) != 0 {
		t.Fatal("matching value should be free")
	}
	if model.TransitionCostIndexed(-5, 1, []int{5}) != 0 {
		t.Fatal("negative distance should match by magnitude")
	}
	if model.TransitionCostIndexed(5, 1, []int{-5}) != 0 {
		t.Fatal("negative value should match by magnitude")
	}
	if model.TransitionCostIndexed(4, 1, []int{5}) != 1 {
		t.Fatal("non-matching distance should cost")
	}
	if model.TransitionCostIndexed(1, 1, nil) != 0 {
		t.Fatal("in-range distance should stay free")
	}
}

func TestIndexedCostMonotoneInValues(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		offs := make([]int, n)
		for i := range offs {
			offs[i] = rng.Intn(21) - 10
		}
		pat := model.Pattern{Array: "A", Stride: 1, Offsets: offs}
		var path model.Path
		for i := 0; i < n; i++ {
			path = append(path, i)
		}
		base := path.CostIndexed(pat, 1, nil, true)
		widened := path.CostIndexed(pat, 1, []int{3, 7}, true)
		if widened > base {
			t.Fatalf("adding free distances increased cost: %d > %d", widened, base)
		}
	}
}
