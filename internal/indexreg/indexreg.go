// Package indexreg extends the paper's AGU model with index (modify)
// registers, as found on real DSPs (TI C5x AR0-indexed modes, Motorola
// 56k Nx registers): besides immediate post-modifies within the range
// M, an address-register update whose distance matches ±(an index
// register's value) is also free. The paper's model is the special
// case of zero index registers.
//
// Choosing the index values and allocating address registers are
// mutually dependent, so Optimize alternates them: allocate under the
// current value set, then re-pick the values that cover the most
// residual unit-cost distances, until a fixpoint or the iteration cap.
// The best (assignment, values) pair seen — including the base model of
// iteration zero — is returned, so the result never loses to the
// paper's allocator.
package indexreg

import (
	"fmt"
	"sort"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
	"dspaddr/internal/pathcover"
)

// Options tunes Optimize.
type Options struct {
	// IndexRegisters is the number of AGU index registers available.
	IndexRegisters int
	// Wrap includes inter-iteration updates in the objective.
	Wrap bool
	// MaxIterations caps the allocate/re-pick alternation (default 4).
	MaxIterations int
	// CoverOptions tunes the phase-1 search.
	CoverOptions *pathcover.Options
}

// Result is the outcome of an indexed allocation.
type Result struct {
	// Values are the chosen index-register contents (absolute
	// distances), at most IndexRegisters of them.
	Values []int
	// Assignment maps accesses to address registers.
	Assignment model.Assignment
	// VirtualRegisters is the phase-1 K~ of the final iteration.
	VirtualRegisters int
	// Cost is the unit-cost computations per iteration under the
	// indexed model with Values.
	Cost int
	// BaseCost is the cost of the paper's base model (no index
	// registers) with the same pipeline — the comparison point.
	BaseCost int
	// Iterations is the number of refinement rounds executed.
	Iterations int
}

// Optimize allocates pat's accesses to spec.Registers address
// registers, additionally choosing values for the AGU's index
// registers.
func Optimize(pat model.Pattern, spec model.AGUSpec, opts Options) (*Result, error) {
	if err := pat.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.IndexRegisters < 0 {
		return nil, fmt.Errorf("indexreg: index register count must be non-negative, got %d", opts.IndexRegisters)
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 4
	}

	res := &Result{}
	var values []int
	bestCost := -1
	for iter := 0; iter <= maxIter; iter++ {
		res.Iterations = iter
		asg, ktilde, err := allocateIndexed(pat, spec, values, opts)
		if err != nil {
			return nil, err
		}
		cost := asg.CostIndexed(pat, spec.ModifyRange, values, opts.Wrap)
		if iter == 0 {
			res.BaseCost = cost // empty value set = the paper's model
		}
		if bestCost == -1 || cost < bestCost {
			bestCost = cost
			res.Cost = cost
			res.Values = append([]int(nil), values...)
			res.Assignment = asg.Clone()
			res.VirtualRegisters = ktilde
		}
		if cost == 0 || opts.IndexRegisters == 0 {
			break
		}
		next := pickValues(pat, asg, spec.ModifyRange, opts.IndexRegisters, opts.Wrap)
		if equalSets(next, values) {
			break
		}
		values = next
	}
	return res, nil
}

// allocateIndexed runs the paper's two phases under the indexed cost
// model.
func allocateIndexed(pat model.Pattern, spec model.AGUSpec, values []int, opts Options) (model.Assignment, int, error) {
	dg, err := distgraph.BuildIndexed(pat, spec.ModifyRange, values)
	if err != nil {
		return model.Assignment{}, 0, err
	}
	cover := pathcover.MinCover(dg, opts.Wrap, opts.CoverOptions)
	ktilde := cover.K()
	if ktilde <= spec.Registers {
		return cover.Assignment().Normalize(), ktilde, nil
	}
	paths := reduceGreedyIndexed(cover.Paths, pat, spec.ModifyRange, values, opts.Wrap, spec.Registers)
	a := model.Assignment{Paths: paths}.Normalize()
	if err := a.Validate(pat); err != nil {
		return model.Assignment{}, 0, fmt.Errorf("indexreg: merge produced invalid assignment: %w", err)
	}
	return a, ktilde, nil
}

// reduceGreedyIndexed is the paper's phase-2 greedy merge evaluated
// under the indexed cost model (the merge package's Strategy interface
// is fixed to the base model, so the indexed variant lives here).
func reduceGreedyIndexed(paths []model.Path, pat model.Pattern, m int, values []int, wrap bool, k int) []model.Path {
	ps := make([]model.Path, len(paths))
	for i, p := range paths {
		ps[i] = p.Clone()
	}
	for len(ps) > k && len(ps) > 1 {
		bi, bj := -1, -1
		bestCost, bestLen := 0, 0
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				merged := ps[i].Merge(ps[j])
				c := merged.CostIndexed(pat, m, values, wrap)
				l := len(merged)
				if bi == -1 || c < bestCost || (c == bestCost && l < bestLen) {
					bi, bj, bestCost, bestLen = i, j, c, l
				}
			}
		}
		merged := ps[bi].Merge(ps[bj])
		ps[bi] = merged
		ps = append(ps[:bj], ps[bj+1:]...)
	}
	return ps
}

// pickValues returns the index-register contents covering the most
// residual unit-cost transitions of the assignment: the n most
// frequent absolute distances beyond the modify range, ties broken
// toward smaller values.
func pickValues(pat model.Pattern, a model.Assignment, m, n int, wrap bool) []int {
	freq := map[int]int{}
	count := func(d int) {
		if model.TransitionCost(d, m) == 0 {
			return
		}
		if d < 0 {
			d = -d
		}
		freq[d]++
	}
	for _, p := range a.Paths {
		for k := 1; k < len(p); k++ {
			count(pat.Distance(p[k-1], p[k]))
		}
		if wrap && len(p) > 0 {
			count(pat.WrapDistance(p[len(p)-1], p[0]))
		}
	}
	dists := make([]int, 0, len(freq))
	for d := range freq {
		dists = append(dists, d)
	}
	sort.Slice(dists, func(i, j int) bool {
		if freq[dists[i]] != freq[dists[j]] {
			return freq[dists[i]] > freq[dists[j]]
		}
		return dists[i] < dists[j]
	})
	if len(dists) > n {
		dists = dists[:n]
	}
	sort.Ints(dists)
	return dists
}

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
