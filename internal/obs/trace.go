// Package obs is the service's zero-dependency observability layer:
// per-request span tracing, fixed-bucket Prometheus histograms and a
// lock-free ring of retained slow/error traces. Everything here is
// stdlib-only by design — the serving layer hand-renders its /metrics
// exposition and this package keeps it that way (see the companion
// rationale in docs/ARCHITECTURE.md).
//
// The tracing half is built for a hot path that must not notice it.
// A Trace owns a fixed-capacity span array recycled through a
// sync.Pool, so recording a span never allocates; every recording
// entry point is nil-safe, so instrumented code holds a possibly-nil
// *Trace (from FromContext) and records unconditionally — with no
// trace in the context the whole instrumentation collapses to a few
// nil checks and zero allocations.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpans caps the per-trace span storage. A trace that records more
// drops the excess and counts it (TraceSnapshot.DroppedSpans), so a
// pathological 1000-job batch degrades to a truncated trace instead
// of an allocation storm.
const MaxSpans = 128

// maxAttrs caps the numeric annotations of one span.
const maxAttrs = 4

// Attr is one numeric span annotation (node counts, shard indices,
// merge rounds). Keys must be static strings so recording stays
// allocation-free.
type Attr struct {
	Key   string
	Value int64
}

// Span is one recorded phase of a trace: a name, an offset from the
// trace start, a duration, an optional outcome label and up to
// maxAttrs numeric annotations.
type Span struct {
	Name    string
	Start   time.Duration // offset from the trace start
	Dur     time.Duration
	Outcome string
	attrs   [maxAttrs]Attr
	nattrs  int32
}

// Trace is a per-request (or per-async-job) span recorder with
// fixed-capacity, pool-recycled storage. Span slots are reserved with
// one atomic increment (concurrent recording from batch worker
// goroutines is expected); each reserved slot is then written
// lock-free by its holder. Snapshot and Release must only be called
// once every recording goroutine has finished — HTTP handlers
// guarantee that by joining their workers before returning.
type Trace struct {
	id    string
	start time.Time

	// n is the number of reservation attempts; it can race past
	// MaxSpans, so readers clamp. dropped counts the overflow.
	n       atomic.Int32
	dropped atomic.Int32
	spans   [MaxSpans]Span
}

var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// NewTrace draws a trace from the pool and starts its clock.
func NewTrace(id string) *Trace {
	t := tracePool.Get().(*Trace)
	t.id = id
	t.start = time.Now()
	t.n.Store(0)
	t.dropped.Store(0)
	return t
}

// Release returns the trace to the pool. Callers must not release a
// trace that another goroutine may still record into (an abandoned
// solve unwinding cooperatively); in that rare case skip Release and
// let the GC take the trace.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	tracePool.Put(t)
}

// ID returns the trace identifier ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Elapsed is the time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// SpanHandle addresses one reserved span slot; the zero handle (and
// every handle from a nil or full trace) is a no-op.
type SpanHandle struct {
	tr  *Trace
	t0  time.Time
	idx int32
}

// StartSpan reserves a span slot and starts its clock. Safe on a nil
// trace (returns a no-op handle without reading the clock).
func (t *Trace) StartSpan(name string) SpanHandle {
	if t == nil {
		return SpanHandle{idx: -1}
	}
	idx := t.n.Add(1) - 1
	if idx >= MaxSpans {
		t.dropped.Add(1)
		return SpanHandle{idx: -1}
	}
	now := time.Now()
	sp := &t.spans[idx]
	sp.Name = name
	sp.Start = now.Sub(t.start)
	sp.Dur = 0
	sp.Outcome = ""
	sp.nattrs = 0
	return SpanHandle{tr: t, t0: now, idx: idx}
}

// AddSpan records an already-completed interval (e.g. a queue wait
// measured before the trace reached the recording goroutine).
func (t *Trace) AddSpan(name string, start, end time.Time) {
	h := t.StartSpan(name)
	if h.idx < 0 {
		return
	}
	sp := &h.tr.spans[h.idx]
	sp.Start = start.Sub(t.start)
	sp.Dur = end.Sub(start)
}

// Attr attaches one numeric annotation (dropped past maxAttrs). The
// key must be a static string.
func (h SpanHandle) Attr(key string, v int64) SpanHandle {
	if h.idx < 0 {
		return h
	}
	sp := &h.tr.spans[h.idx]
	if int(sp.nattrs) < maxAttrs {
		sp.attrs[sp.nattrs] = Attr{Key: key, Value: v}
		sp.nattrs++
	}
	return h
}

// Note labels the span's outcome ("hit", "miss-leader", "aborted"…).
// The label must be a static string.
func (h SpanHandle) Note(outcome string) SpanHandle {
	if h.idx >= 0 {
		h.tr.spans[h.idx].Outcome = outcome
	}
	return h
}

// End stamps the span's duration.
func (h SpanHandle) End() {
	if h.idx >= 0 {
		h.tr.spans[h.idx].Dur = time.Since(h.t0)
	}
}

// ctxKey keys the trace in a context.
type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, nil when absent. The nil
// result is directly usable: every recording method no-ops on it.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// TraceSnapshot is the retained, JSON-ready form of a finished trace;
// building one is the only allocation the tracing path ever performs,
// and only for the traces worth keeping (slow or failed).
type TraceSnapshot struct {
	ID             string         `json:"traceId"`
	Route          string         `json:"route,omitempty"`
	Status         int            `json:"status,omitempty"`
	Error          string         `json:"error,omitempty"`
	StartedAt      time.Time      `json:"startedAt"`
	DurationMicros int64          `json:"durationMicros"`
	DroppedSpans   int            `json:"droppedSpans,omitempty"`
	Spans          []SpanSnapshot `json:"spans"`

	seq uint64 // retention order, assigned by TraceRing.Add
}

// SpanSnapshot is one span of a TraceSnapshot.
type SpanSnapshot struct {
	Name        string           `json:"name"`
	StartMicros int64            `json:"startMicros"`
	DurMicros   int64            `json:"durMicros"`
	Outcome     string           `json:"outcome,omitempty"`
	Attrs       map[string]int64 `json:"attrs,omitempty"`
}

// Snapshot materializes the trace for retention. The trace itself
// stays reusable (Release after snapshotting).
func (t *Trace) Snapshot(route string, status int, errText string, dur time.Duration) *TraceSnapshot {
	if t == nil {
		return nil
	}
	n := int(t.n.Load())
	if n > MaxSpans {
		n = MaxSpans
	}
	snap := &TraceSnapshot{
		ID:             t.id,
		Route:          route,
		Status:         status,
		Error:          errText,
		StartedAt:      t.start,
		DurationMicros: dur.Microseconds(),
		DroppedSpans:   int(t.dropped.Load()),
		Spans:          make([]SpanSnapshot, n),
	}
	for i := 0; i < n; i++ {
		sp := &t.spans[i]
		out := SpanSnapshot{
			Name:        sp.Name,
			StartMicros: sp.Start.Microseconds(),
			DurMicros:   sp.Dur.Microseconds(),
			Outcome:     sp.Outcome,
		}
		if sp.nattrs > 0 {
			out.Attrs = make(map[string]int64, sp.nattrs)
			for a := 0; a < int(sp.nattrs); a++ {
				out.Attrs[sp.attrs[a].Key] = sp.attrs[a].Value
			}
		}
		snap.Spans[i] = out
	}
	return snap
}
