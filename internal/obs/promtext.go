package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is a minimal reader for the Prometheus text exposition
// format (v0.0.4) — just enough to round-trip what rcaserve renders.
// It exists so the metrics tests can assert structural invariants
// (every family carries HELP/TYPE, buckets are monotone, _sum/_count
// are consistent) and so rcasoak can scrape /metrics and diff counter
// families into its report, all without a client-library dependency.

// Sample is one exposition sample line.
type Sample struct {
	Name   string // full sample name, e.g. rcaserve_job_run_seconds_bucket
	Labels map[string]string
	Value  float64
}

// Family groups the samples of one metric family with its metadata.
// For histogram/summary families the _bucket/_sum/_count samples are
// folded into the base-named family.
type Family struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | summary | "" when undeclared
	Samples []Sample
}

// ParseExposition reads a text exposition into families keyed by
// family name. Sample lines that precede (or lack) a HELP/TYPE
// declaration still produce a Family, with empty metadata — callers
// asserting hygiene can detect them.
func ParseExposition(r io.Reader) (map[string]*Family, error) {
	families := make(map[string]*Family)
	get := func(name string) *Family {
		f := families[name]
		if f == nil {
			f = &Family{Name: name}
			families[name] = f
		}
		return f
	}
	// declared maps a family name to its TYPE so suffixed histogram and
	// summary samples can be folded back into the base family.
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			switch fields[1] {
			case "HELP":
				f := get(fields[2])
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) == 4 {
					get(fields[2]).Type = fields[3]
				}
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyNameOf(s.Name, families)
		f := get(fam)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// familyNameOf resolves a sample name to its family: exact match, or
// the base name when a declared histogram/summary family owns the
// _bucket/_sum/_count suffix.
func familyNameOf(sample string, families map[string]*Family) string {
	if f := families[sample]; f != nil && f.Type != "" {
		return sample
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if f := families[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	return sample
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{}
	rest := line
	if i := strings.IndexAny(line, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else if line[i] == '{' {
		s.Name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return s, fmt.Errorf("unterminated labels in %q", line)
		}
		labels, err := parseLabels(line[i+1 : end])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = strings.TrimSpace(line[end+1:])
	} else {
		s.Name = line[:i]
		rest = strings.TrimSpace(line[i+1:])
	}
	// Value, optionally followed by a timestamp we ignore.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", rest)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label pair")
		}
		name := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i == len(rest) {
			return nil, fmt.Errorf("unterminated label value")
		}
		labels[name] = val.String()
		body = rest[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return labels, nil
}

// SumFamily adds up all sample values of a family (0 when absent).
// For histogram families only the _count samples are summed, making
// the result the total observation count.
func SumFamily(families map[string]*Family, name string) float64 {
	f := families[name]
	if f == nil {
		return 0
	}
	var total float64
	for _, s := range f.Samples {
		if f.Type == "histogram" || f.Type == "summary" {
			if !strings.HasSuffix(s.Name, "_count") {
				continue
			}
		}
		total += s.Value
	}
	return total
}
