package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bounds in seconds: 25µs → 10s,
// roughly logarithmic. The low end matters here — a warm cache hit is
// ~1.4µs and a full branch-and-bound solve tens of µs to ms, so the
// classic Prometheus 5ms floor would fold the entire engine into one
// bucket.
var DefBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram rendered in native
// Prometheus exposition (`_bucket`/`_sum`/`_count`). Buckets are
// plain atomic counters incremented non-cumulatively on the hot path;
// the cumulative `le` view is computed at scrape time. Observe on a
// nil histogram is a no-op, so optional hooks cost one nil check.
type Histogram struct {
	name   string
	help   string
	bounds []float64       // ascending upper bounds, seconds
	cells  []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// NewHistogram builds a histogram; nil bounds selects DefBuckets.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		cells:  make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration. Nil-safe, allocation-free.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.cells[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Expose renders the full exposition block for the histogram.
func (h *Histogram) Expose(w io.Writer) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	h.writeSamples(w, "")
}

// writeSamples renders the sample lines with an optional pre-rendered
// label prefix (`route="x",status="200"`), shared with HistogramVec.
func (h *Histogram) writeSamples(w io.Writer, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.cells[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
			h.name, labels, sep, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.cells[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", h.name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", h.name, formatSeconds(h.sum.Load()))
		fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", h.name, labels, formatSeconds(h.sum.Load()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", h.name, labels, h.count.Load())
	}
}

func formatSeconds(nanos int64) string {
	return strconv.FormatFloat(float64(nanos)/1e9, 'g', -1, 64)
}

// HistogramVec is a histogram family partitioned by label values
// (e.g. route+status). Children are created on first observation;
// the steady-state path is one RLock and a map probe.
type HistogramVec struct {
	name       string
	help       string
	labelNames []string
	bounds     []float64

	mu       sync.RWMutex
	children map[string]*Histogram // key: rendered label pairs
}

// NewHistogramVec builds an empty family; nil bounds = DefBuckets.
func NewHistogramVec(name, help string, labelNames []string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{
		name:       name,
		help:       help,
		labelNames: labelNames,
		bounds:     bounds,
		children:   make(map[string]*Histogram),
	}
}

// Observe records d against the child for the given label values.
func (v *HistogramVec) Observe(d time.Duration, labelValues ...string) {
	if v == nil {
		return
	}
	v.child(labelValues).Observe(d)
}

func (v *HistogramVec) child(labelValues []string) *Histogram {
	key := renderLabels(v.labelNames, labelValues)
	v.mu.RLock()
	h := v.children[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[key]; h == nil {
		h = &Histogram{name: v.name, bounds: v.bounds, cells: make([]atomic.Uint64, len(v.bounds)+1)}
		v.children[key] = h
	}
	return h
}

// Expose renders the family: one HELP/TYPE header, then every child
// in sorted label order for a stable exposition.
func (v *HistogramVec) Expose(w io.Writer) {
	if v == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name)
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v.mu.RLock()
		h := v.children[k]
		v.mu.RUnlock()
		h.writeSamples(w, k)
	}
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	name       string
	help       string
	labelNames []string

	mu       sync.RWMutex
	children map[string]*atomic.Uint64
}

// NewCounterVec builds an empty counter family.
func NewCounterVec(name, help string, labelNames []string) *CounterVec {
	return &CounterVec{
		name:       name,
		help:       help,
		labelNames: labelNames,
		children:   make(map[string]*atomic.Uint64),
	}
}

// Add increments the child for the given label values by n.
func (v *CounterVec) Add(n uint64, labelValues ...string) {
	if v == nil {
		return
	}
	key := renderLabels(v.labelNames, labelValues)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c == nil {
		v.mu.Lock()
		if c = v.children[key]; c == nil {
			c = new(atomic.Uint64)
			v.children[key] = c
		}
		v.mu.Unlock()
	}
	c.Add(n)
}

// Expose renders the family in sorted label order.
func (v *CounterVec) Expose(w io.Writer) {
	if v == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.name, v.help, v.name)
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v.mu.RLock()
		c := v.children[k]
		v.mu.RUnlock()
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, k, c.Load())
	}
}

// renderLabels joins label names and values into the exposition form
// `a="x",b="y"`. Missing values render as "".
func renderLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		if i < len(values) {
			b.WriteString(escapeLabel(values[i]))
		}
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
