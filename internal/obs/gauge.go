package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// GaugeVec is a gauge family partitioned by label values — the
// settable sibling of CounterVec, for state that moves both ways
// (e.g. per-node up/down in a cluster gateway). Children are created
// on first Set; the steady-state path is one RLock and a map probe.
type GaugeVec struct {
	name       string
	help       string
	labelNames []string

	mu       sync.RWMutex
	children map[string]*atomic.Int64
}

// NewGaugeVec builds an empty gauge family.
func NewGaugeVec(name, help string, labelNames []string) *GaugeVec {
	return &GaugeVec{
		name:       name,
		help:       help,
		labelNames: labelNames,
		children:   make(map[string]*atomic.Int64),
	}
}

// Set stores v as the child's current value. Nil-safe.
func (g *GaugeVec) Set(v int64, labelValues ...string) {
	if g == nil {
		return
	}
	key := renderLabels(g.labelNames, labelValues)
	g.mu.RLock()
	c := g.children[key]
	g.mu.RUnlock()
	if c == nil {
		g.mu.Lock()
		if c = g.children[key]; c == nil {
			c = new(atomic.Int64)
			g.children[key] = c
		}
		g.mu.Unlock()
	}
	c.Store(v)
}

// Expose renders the family in sorted label order.
func (g *GaugeVec) Expose(w io.Writer) {
	if g == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
	g.mu.RLock()
	keys := make([]string, 0, len(g.children))
	for k := range g.children {
		keys = append(keys, k)
	}
	g.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		g.mu.RLock()
		c := g.children[k]
		g.mu.RUnlock()
		fmt.Fprintf(w, "%s{%s} %d\n", g.name, k, c.Load())
	}
}
