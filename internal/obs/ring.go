package obs

import (
	"sort"
	"sync/atomic"
)

// TraceRing retains the last N captured trace snapshots. Writers are
// lock-free: a ticket from one atomic counter picks the slot, and the
// snapshot pointer is stored atomically, so a burst of slow requests
// never serializes on the debug surface. Readers copy out whatever
// pointers are present; a torn view across a concurrent write is
// acceptable (a debug endpoint, not an accounting one).
type TraceRing struct {
	slots []atomic.Pointer[TraceSnapshot]
	seq   atomic.Uint64
}

// DefaultRingSize is the retention depth when none is configured.
const DefaultRingSize = 256

// NewTraceRing builds a ring keeping the last n snapshots (n <= 0
// selects DefaultRingSize).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &TraceRing{slots: make([]atomic.Pointer[TraceSnapshot], n)}
}

// Add retains s, evicting the oldest snapshot once the ring is full.
// Nil-safe on both receiver and argument.
func (r *TraceRing) Add(s *TraceSnapshot) {
	if r == nil || s == nil {
		return
	}
	s.seq = r.seq.Add(1)
	r.slots[s.seq%uint64(len(r.slots))].Store(s)
}

// Len reports how many snapshots are currently retained.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.slots {
		if r.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Snapshots returns the retained traces, newest first.
func (r *TraceRing) Snapshots() []*TraceSnapshot {
	if r == nil {
		return nil
	}
	out := make([]*TraceSnapshot, 0, len(r.slots))
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out
}
