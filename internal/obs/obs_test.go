package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsFreeAndSafe(t *testing.T) {
	var tr *Trace
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on bare ctx = %v, want nil", got)
	}
	sp := tr.StartSpan("x")
	sp.Attr("n", 1).Note("ok")
	sp.End()
	tr.AddSpan("q", time.Now(), time.Now())
	if tr.ID() != "" || tr.Elapsed() != 0 {
		t.Fatal("nil trace accessors not zero")
	}
	if s := tr.Snapshot("r", 200, "", 0); s != nil {
		t.Fatalf("nil trace snapshot = %v", s)
	}
	tr.Release()

	// The whole nil-trace recording path must be allocation-free: this
	// is the contract that lets hooks live on the hot path.
	allocs := testing.AllocsPerRun(100, func() {
		h := tr.StartSpan("x")
		h.Attr("n", 1)
		h.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-trace span recording allocates %v/op", allocs)
	}
}

func TestTraceRecordsAndSnapshots(t *testing.T) {
	tr := NewTrace("t-1")
	sp := tr.StartSpan("solve")
	sp.Attr("nodes", 42).Attr("pruned", 7).Note("exact")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.AddSpan("queue", tr.start, tr.start.Add(500*time.Microsecond))

	snap := tr.Snapshot("/v1/allocate", 200, "", tr.Elapsed())
	tr.Release()
	if snap.ID != "t-1" || snap.Route != "/v1/allocate" || snap.Status != 200 {
		t.Fatalf("snapshot header: %+v", snap)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("span count %d, want 2", len(snap.Spans))
	}
	solve := snap.Spans[0]
	if solve.Name != "solve" || solve.Outcome != "exact" {
		t.Fatalf("solve span: %+v", solve)
	}
	if solve.Attrs["nodes"] != 42 || solve.Attrs["pruned"] != 7 {
		t.Fatalf("solve attrs: %v", solve.Attrs)
	}
	if solve.DurMicros < 900 {
		t.Fatalf("solve duration %dµs, want >= ~1ms", solve.DurMicros)
	}
	queue := snap.Spans[1]
	if queue.Name != "queue" || queue.DurMicros != 500 {
		t.Fatalf("queue span: %+v", queue)
	}
}

func TestTraceSpanOverflowCounted(t *testing.T) {
	tr := NewTrace("t-cap")
	for i := 0; i < MaxSpans+10; i++ {
		tr.StartSpan("s").End()
	}
	snap := tr.Snapshot("r", 200, "", 0)
	tr.Release()
	if len(snap.Spans) != MaxSpans {
		t.Fatalf("retained %d spans, want %d", len(snap.Spans), MaxSpans)
	}
	if snap.DroppedSpans != 10 {
		t.Fatalf("dropped %d, want 10", snap.DroppedSpans)
	}
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace("t-conc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				h := tr.StartSpan("w")
				h.Attr("i", int64(i))
				h.End()
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot("r", 200, "", 0)
	tr.Release()
	if len(snap.Spans) != 64 {
		t.Fatalf("got %d spans, want 64", len(snap.Spans))
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTrace("ctx-1")
	defer tr.Release()
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	h := NewHistogram("test_seconds", "test latencies.", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // <= 1ms
	h.Observe(5 * time.Millisecond)   // <= 10ms
	h.Observe(5 * time.Millisecond)
	h.Observe(2 * time.Second) // +Inf
	if h.Count() != 4 {
		t.Fatalf("count %d, want 4", h.Count())
	}

	var b strings.Builder
	h.Expose(&b)
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, b.String())
	}
	f := fams["test_seconds"]
	if f == nil || f.Type != "histogram" || f.Help == "" {
		t.Fatalf("family metadata: %+v", f)
	}
	wantCum := map[string]float64{"0.001": 1, "0.01": 3, "0.1": 3, "+Inf": 4}
	var sum, count float64
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if got, want := s.Value, wantCum[s.Labels["le"]]; got != want {
				t.Errorf("bucket le=%s: %v, want %v", s.Labels["le"], got, want)
			}
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		}
	}
	if count != 4 {
		t.Fatalf("_count %v, want 4", count)
	}
	wantSum := 0.0005 + 0.005 + 0.005 + 2
	if sum < wantSum-1e-9 || sum > wantSum+1e-9 {
		t.Fatalf("_sum %v, want %v", sum, wantSum)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewHistogram("x", "x", nil)
	allocs := testing.AllocsPerRun(100, func() { h.Observe(3 * time.Millisecond) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v/op", allocs)
	}
	var nilH *Histogram
	allocs = testing.AllocsPerRun(100, func() { nilH.Observe(time.Millisecond) })
	if allocs != 0 {
		t.Fatalf("nil Observe allocates %v/op", allocs)
	}
}

func TestHistogramVecAndCounterVec(t *testing.T) {
	hv := NewHistogramVec("lat_seconds", "latency.", []string{"route", "status"}, []float64{0.01})
	hv.Observe(time.Millisecond, "/v1/allocate", "200")
	hv.Observe(time.Second, "/v1/allocate", "200")
	hv.Observe(time.Millisecond, "/v1/batch", "422")

	cv := NewCounterVec("req_total", "requests.", []string{"route", "status"})
	cv.Add(1, "/v1/allocate", "200")
	cv.Add(2, "/v1/allocate", "200")
	cv.Add(1, "/metrics", "405")

	var b strings.Builder
	hv.Expose(&b)
	cv.Expose(&b)
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, b.String())
	}
	lat := fams["lat_seconds"]
	if lat == nil || lat.Type != "histogram" {
		t.Fatalf("lat family: %+v", lat)
	}
	counts := map[string]float64{}
	for _, s := range lat.Samples {
		if strings.HasSuffix(s.Name, "_count") {
			counts[s.Labels["route"]+"|"+s.Labels["status"]] = s.Value
		}
	}
	if counts["/v1/allocate|200"] != 2 || counts["/v1/batch|422"] != 1 {
		t.Fatalf("vec counts: %v", counts)
	}
	req := fams["req_total"]
	if req == nil || req.Type != "counter" {
		t.Fatalf("req family: %+v", req)
	}
	if got := SumFamily(fams, "req_total"); got != 4 {
		t.Fatalf("SumFamily(req_total) = %v, want 4", got)
	}
	if got := SumFamily(fams, "lat_seconds"); got != 3 {
		t.Fatalf("SumFamily(lat_seconds) = %v, want 3 (histogram counts)", got)
	}
}

func TestTraceRingEvictionAndOrder(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 7; i++ {
		r.Add(&TraceSnapshot{ID: string(rune('a' + i))})
	}
	snaps := r.Snapshots()
	if len(snaps) != 4 {
		t.Fatalf("retained %d, want 4", len(snaps))
	}
	// Newest first: g, f, e, d.
	want := []string{"g", "f", "e", "d"}
	for i, s := range snaps {
		if s.ID != want[i] {
			t.Fatalf("order %d: %s, want %s", i, s.ID, want[i])
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len %d, want 4", r.Len())
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(&TraceSnapshot{ID: "x"})
				r.Snapshots()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Fatalf("Len %d, want 8", r.Len())
	}
}

func TestParseExpositionLabelEscapes(t *testing.T) {
	in := `# HELP m help text
# TYPE m counter
m{path="a\"b\\c"} 3
bare 1.5
`
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	m := fams["m"]
	if m.Samples[0].Labels["path"] != `a"b\c` {
		t.Fatalf("unescaped label: %q", m.Samples[0].Labels["path"])
	}
	bare := fams["bare"]
	if bare == nil || bare.Type != "" || bare.Samples[0].Value != 1.5 {
		t.Fatalf("bare family: %+v", bare)
	}
}

func TestGaugeVecSetAndExposition(t *testing.T) {
	g := NewGaugeVec("test_node_up", "whether the node is up", []string{"node"})
	g.Set(1, "n1")
	g.Set(1, "n2")
	g.Set(0, "n1") // gauges move both ways
	var nilGauge *GaugeVec
	nilGauge.Set(5, "x") // nil-safe no-op

	var buf bytes.Buffer
	g.Expose(&buf)
	fams, err := ParseExposition(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	f := fams["test_node_up"]
	if f == nil || f.Type != "gauge" {
		t.Fatalf("family missing or mistyped: %+v", f)
	}
	got := map[string]float64{}
	for _, s := range f.Samples {
		got[s.Labels["node"]] = s.Value
	}
	if got["n1"] != 0 || got["n2"] != 1 {
		t.Fatalf("gauge values wrong: %v", got)
	}
}
