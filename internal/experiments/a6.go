package experiments

import (
	"fmt"
	"math/rand"
	"reflect"

	"dspaddr/internal/circular"
	"dspaddr/internal/stats"
)

// A6Row measures modulo (circular-buffer) addressing at one tap count:
// cycles and code words of the circular delay-line FIR versus the
// window-shifting implementation required without modulo addressing.
type A6Row struct {
	Taps                    int
	ShiftCycles, CircCycles int
	ShiftWords, CircWords   int
	SpeedImprovement        float64
	SizeImprovement         float64
	CyclesPerSampleShift    float64
	CyclesPerSampleCircular float64
}

// RunA6 sweeps the FIR tap count. Both implementations are verified
// sample-by-sample against the pure-Go reference before measuring.
func RunA6(tapCounts []int, nSamples int, seed int64) ([]A6Row, error) {
	rng := rand.New(rand.NewSource(seed))
	var rows []A6Row
	for _, t := range tapCounts {
		taps := make([]int, t)
		for i := range taps {
			taps[i] = rng.Intn(9) - 4
		}
		input := make([]int, nSamples)
		for i := range input {
			input[i] = rng.Intn(41) - 20
		}
		want := circular.Reference(taps, input)

		circ, err := circular.BuildCircularFIR(taps, nSamples)
		if err != nil {
			return nil, err
		}
		shift, err := circular.BuildShiftFIR(taps, nSamples)
		if err != nil {
			return nil, err
		}
		mc, yc, err := circ.Run(input)
		if err != nil {
			return nil, err
		}
		ms, ys, err := shift.Run(input)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(yc, want) || !reflect.DeepEqual(ys, want) {
			return nil, fmt.Errorf("experiments: A6 T=%d: implementation output diverges from reference", t)
		}
		rows = append(rows, A6Row{
			Taps:                    t,
			ShiftCycles:             ms.Cycles,
			CircCycles:              mc.Cycles,
			ShiftWords:              len(shift.Code),
			CircWords:               len(circ.Code),
			SpeedImprovement:        stats.PercentReduction(float64(ms.Cycles), float64(mc.Cycles)),
			SizeImprovement:         stats.PercentReduction(float64(len(shift.Code)), float64(len(circ.Code))),
			CyclesPerSampleShift:    float64(ms.Cycles) / float64(nSamples),
			CyclesPerSampleCircular: float64(mc.Cycles) / float64(nSamples),
		})
	}
	return rows, nil
}

// A6Table renders the modulo-addressing ablation.
func A6Table(rows []A6Row, nSamples int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("A6 — modulo addressing: circular delay-line FIR vs window shifting (%d samples, outputs verified)", nSamples),
		"taps", "shift cyc", "circ cyc", "speed %", "shift words", "circ words", "size %", "cyc/sample shift", "cyc/sample circ")
	for _, r := range rows {
		t.AddRowf(r.Taps, r.ShiftCycles, r.CircCycles, r.SpeedImprovement,
			r.ShiftWords, r.CircWords, r.SizeImprovement,
			r.CyclesPerSampleShift, r.CyclesPerSampleCircular)
	}
	return t
}
