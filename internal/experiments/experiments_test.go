package experiments

import (
	"strings"
	"testing"

	"dspaddr/internal/model"
	"dspaddr/internal/workload"
)

func TestFig1MatchesPaper(t *testing.T) {
	r, err := RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	if r.KTilde != 2 {
		t.Fatalf("K~ = %d, want 2", r.KTilde)
	}
	if len(r.Edges) != 11 {
		t.Fatalf("Figure 1 has %d edges, want 11", len(r.Edges))
	}
	// Spot-check paper-visible relations: a1->a2 and a4->a7 are
	// zero-cost; a2->a3 (distance 2) must be absent.
	has := func(u, v int) bool {
		for _, e := range r.Edges {
			if e[0] == u && e[1] == v {
				return true
			}
		}
		return false
	}
	if !has(1, 2) || !has(4, 7) || has(2, 3) {
		t.Fatalf("edge set wrong: %v", r.Edges)
	}
	if !strings.Contains(r.DOT, "digraph figure1") {
		t.Error("DOT output malformed")
	}
	if tbl := r.Table().String(); !strings.Contains(tbl, "K~=2") {
		t.Errorf("table missing K~:\n%s", tbl)
	}
}

func TestE2ReproducesPaperShape(t *testing.T) {
	p := DefaultE2Params()
	p.Trials = 30 // keep the test fast; the bench runs the full sweep
	r, err := RunE2(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != len(p.Ns)*len(p.Ms)*len(p.Ks) {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	// The paper's headline: about 40% average reduction. Demand the
	// qualitative band with the reduced trial count.
	if r.GrandReduction < 25 || r.GrandReduction > 60 {
		t.Fatalf("grand reduction %.1f%% outside the paper's ballpark", r.GrandReduction)
	}
	for _, c := range r.Cells {
		if c.MeanGreedy > c.MeanNaive {
			t.Fatalf("greedy (%.2f) worse than naive (%.2f) at N=%d M=%d K=%d",
				c.MeanGreedy, c.MeanNaive, c.N, c.M, c.K)
		}
		if c.MeanKTilde <= 0 {
			t.Fatalf("mean K~ = %f", c.MeanKTilde)
		}
	}
	tbl := r.Table().String()
	if !strings.Contains(tbl, "reduction %") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestE2Validation(t *testing.T) {
	p := DefaultE2Params()
	p.Trials = 0
	if _, err := RunE2(p); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestE2Deterministic(t *testing.T) {
	p := DefaultE2Params()
	p.Trials = 5
	p.Ns = []int{10}
	p.Ms = []int{1}
	p.Ks = []int{2}
	r1, err := RunE2(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunE2(p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.GrandReduction != r2.GrandReduction {
		t.Fatal("same seed must reproduce the same sweep")
	}
}

func TestE3ReproducesPaperShape(t *testing.T) {
	r, err := RunE3(DefaultE3Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(workload.KernelNames()) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.OptWords > row.NaiveWords {
			t.Fatalf("kernel %s: optimized code larger (%d > %d words)", row.Kernel, row.OptWords, row.NaiveWords)
		}
		if row.OptCycles >= row.NaiveCycles {
			t.Fatalf("kernel %s: optimized code not faster (%d >= %d cycles)", row.Kernel, row.OptCycles, row.NaiveCycles)
		}
	}
	// Paper shape: meaningful improvements, speed gains exceeding size
	// gains, bounded by the "up to 30% / 60%" flavour of the claim.
	if r.MeanSize < 10 || r.MaxSize < 25 {
		t.Fatalf("size improvements too small: mean %.1f max %.1f", r.MeanSize, r.MaxSize)
	}
	if r.MeanSpeed < 25 || r.MaxSpeed < 40 {
		t.Fatalf("speed improvements too small: mean %.1f max %.1f", r.MeanSpeed, r.MaxSpeed)
	}
	if r.MeanSpeed <= r.MeanSize {
		t.Fatalf("expected speed gains (%.1f%%) to exceed size gains (%.1f%%)", r.MeanSpeed, r.MeanSize)
	}
	if tbl := r.Table().String(); !strings.Contains(tbl, "conv5") {
		t.Errorf("table missing kernels:\n%s", tbl)
	}
}

func TestE3SelectedKernels(t *testing.T) {
	p := DefaultE3Params()
	p.Kernels = []string{"fir8", "stencil3"}
	r, err := RunE3(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	p.Kernels = []string{"nope"}
	if _, err := RunE3(p); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestE3FewRegistersStillCorrect(t *testing.T) {
	p := E3Params{Registers: 2, ModifyRange: 1}
	r, err := RunE3(p)
	if err != nil {
		t.Fatal(err)
	}
	// xcorr4 touches three arrays; RunE3 must bump its budget rather
	// than fail, and all rows must still verify (Verify runs inside).
	if len(r.Rows) != len(workload.KernelNames()) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestA1BoundsOrdering(t *testing.T) {
	rows, err := RunA1([]int{8, 14}, []int{1, 2}, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanLB > r.MeanExact || r.MeanExact > r.MeanGreedy {
			t.Fatalf("bound ordering violated: LB %.2f exact %.2f greedy %.2f (N=%d M=%d)",
				r.MeanLB, r.MeanExact, r.MeanGreedy, r.N, r.M)
		}
		if r.AllExact < 100 {
			t.Fatalf("small instances should all be proven exact, got %.0f%%", r.AllExact)
		}
	}
	if tbl := A1Table(rows).String(); !strings.Contains(tbl, "mean exact K~") {
		t.Errorf("A1 table malformed:\n%s", tbl)
	}
}

func TestA2StrategyOrdering(t *testing.T) {
	rows, err := RunA2([]int{8, 12, 20}, 2, 1, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The DP optimum is exact at every N: no strategy may beat it,
		// and every strategy's mean sits at or above it.
		for name, mean := range map[string]float64{
			"greedy": r.Greedy, "naive": r.Naive, "random": r.Random,
			"smallest-two": r.Smallest, "annealed": r.Annealed,
		} {
			if mean < r.Optimal-1e-9 {
				t.Fatalf("%s %.2f beats the exact optimum %.2f at N=%d", name, mean, r.Optimal, r.N)
			}
		}
		if r.Annealed > r.Greedy+1e-9 {
			t.Fatalf("annealed %.2f worse than its greedy start %.2f", r.Annealed, r.Greedy)
		}
		if r.Greedy > r.Naive {
			t.Fatalf("greedy %.2f worse than naive %.2f on average", r.Greedy, r.Naive)
		}
	}
	tbl := A2Table(rows, 2, 1).String()
	if !strings.Contains(tbl, "annealed") {
		t.Errorf("A2 table malformed:\n%s", tbl)
	}
}

func TestA3AmpleRegistersWrapAwareWins(t *testing.T) {
	// With K at least as large as every pattern's wrap-aware K~,
	// phase 2 never merges and the wrap-aware objective reaches zero
	// hardware cost — it must not lose to the intra-only objective.
	rows, err := RunA3(24, 1, 20, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(workload.KernelNames()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WrapAware > r.IntraOnly {
			t.Fatalf("%s: wrap-aware %.2f worse than intra-only %.2f despite ample registers",
				r.Workload, r.WrapAware, r.IntraOnly)
		}
	}
	if tbl := A3Table(rows, 24, 1).String(); !strings.Contains(tbl, "benefit %") {
		t.Errorf("A3 table malformed:\n%s", tbl)
	}
}

func TestA3TightRegistersMeasuresBothDirections(t *testing.T) {
	// Under a tight register budget the wrap-aware objective can lose:
	// phase 1 over-splits to keep wraps free and phase 2's forced
	// merging then pays more (fir8 is the canonical case — see
	// EXPERIMENTS.md). The run must still complete and report
	// consistent Benefit values.
	rows, err := RunA3(4, 1, 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	sawLoss := false
	for _, r := range rows {
		if r.IntraOnly > 0 {
			want := 100 * (r.IntraOnly - r.WrapAware) / r.IntraOnly
			if diff := r.Benefit - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s: Benefit %.2f inconsistent with costs", r.Workload, r.Benefit)
			}
		}
		if r.WrapAware > r.IntraOnly {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Log("no over-splitting loss observed at K=4 (acceptable, depends on seeds)")
	}
}

func TestA4HeuristicOrdering(t *testing.T) {
	rows, err := RunA4([]int{12, 24}, 6, 15, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TieBreak < r.Optimal-1e-9 || r.Liao < r.Optimal-1e-9 {
			t.Fatalf("heuristic beats optimal: %+v", r)
		}
		if r.Liao > r.FirstUse {
			t.Fatalf("Liao %.2f worse than first-use %.2f on average", r.Liao, r.FirstUse)
		}
	}
	if _, err := RunA4([]int{5}, 9, 1, 1); err == nil {
		t.Fatal("excessive variable count accepted")
	}
	if tbl := A4Table(rows).String(); !strings.Contains(tbl, "tie-break") {
		t.Errorf("A4 table malformed:\n%s", tbl)
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p2 := DefaultE2Params()
	if p2.Trials < 1 || len(p2.Ns) == 0 || len(p2.Ms) == 0 || len(p2.Ks) == 0 {
		t.Fatalf("bad E2 defaults: %+v", p2)
	}
	p3 := DefaultE3Params()
	if err := (model.AGUSpec{Registers: p3.Registers, ModifyRange: p3.ModifyRange}).Validate(); err != nil {
		t.Fatalf("bad E3 defaults: %v", err)
	}
}

func TestA5IndexRegistersHelp(t *testing.T) {
	rows, err := RunA5([]int{10, 20}, 2, 1, 15, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// More index registers never hurt (the optimizer keeps the
		// best configuration including the base model).
		if r.OneIdx > r.Base+1e-9 || r.TwoIdx > r.OneIdx+1e-9 {
			t.Fatalf("index registers hurt: base %.2f one %.2f two %.2f", r.Base, r.OneIdx, r.TwoIdx)
		}
	}
	// Clustered patterns have recurring large jumps, so the extension
	// must show a measurable aggregate win.
	total := 0.0
	for _, r := range rows {
		total += r.Red2
	}
	if total/float64(len(rows)) < 5 {
		t.Fatalf("mean reduction with 2 index registers only %.1f%%", total/float64(len(rows)))
	}
	if tbl := A5Table(rows, 2, 1).String(); !strings.Contains(tbl, "index reg") {
		t.Errorf("A5 table malformed:\n%s", tbl)
	}
}

func TestA6CircularBeatsShift(t *testing.T) {
	rows, err := RunA6([]int{2, 8, 16}, 24, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	prevSpeed := -1.0
	for _, r := range rows {
		if r.CircCycles >= r.ShiftCycles {
			t.Fatalf("T=%d: circular %d cycles not faster than shift %d", r.Taps, r.CircCycles, r.ShiftCycles)
		}
		if r.CircWords >= r.ShiftWords {
			t.Fatalf("T=%d: circular %d words not smaller than shift %d", r.Taps, r.CircWords, r.ShiftWords)
		}
		// The benefit grows with the window size (the shift overhead is
		// linear in T).
		if r.SpeedImprovement < prevSpeed {
			t.Fatalf("speed improvement not monotone in taps: %v", rows)
		}
		prevSpeed = r.SpeedImprovement
	}
	if tbl := A6Table(rows, 24).String(); !strings.Contains(tbl, "modulo addressing") {
		t.Errorf("A6 table malformed:\n%s", tbl)
	}
}
