package experiments

import (
	"fmt"
	"math/rand"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/merge"
	"dspaddr/internal/model"
	"dspaddr/internal/offsetassign"
	"dspaddr/internal/pathcover"
	"dspaddr/internal/stats"
	"dspaddr/internal/workload"
)

// A1Row summarizes phase-1 bound quality for one (N, M) point under
// the wrap-inclusive objective: the matching lower bound, the greedy
// upper bound and the branch-and-bound exact K~.
type A1Row struct {
	N, M                           int
	MeanLB, MeanGreedy, MeanExact  float64
	LBTight, GreedyTight, AllExact float64 // percent of instances
}

// RunA1 measures the phase-1 bounds on random patterns.
func RunA1(ns, ms []int, trials int, seed int64) ([]A1Row, error) {
	rng := rand.New(rand.NewSource(seed))
	var rows []A1Row
	for _, n := range ns {
		for _, m := range ms {
			var lb, ub, exact stats.Sample
			lbTight, ubTight, exactCnt := 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				pat, err := workload.RandomPattern(rng, workload.RandomParams{N: n, OffsetRange: 8})
				if err != nil {
					return nil, err
				}
				dg, err := distgraph.Build(pat, m)
				if err != nil {
					return nil, err
				}
				l := pathcover.LowerBound(dg)
				g := len(pathcover.GreedyCover(dg, true))
				c := pathcover.MinCover(dg, true, nil)
				lb.AddInt(l)
				ub.AddInt(g)
				exact.AddInt(c.K())
				if c.Exact {
					exactCnt++
				}
				if l == c.K() {
					lbTight++
				}
				if g == c.K() {
					ubTight++
				}
			}
			rows = append(rows, A1Row{
				N: n, M: m,
				MeanLB: lb.Mean(), MeanGreedy: ub.Mean(), MeanExact: exact.Mean(),
				LBTight:     100 * float64(lbTight) / float64(trials),
				GreedyTight: 100 * float64(ubTight) / float64(trials),
				AllExact:    100 * float64(exactCnt) / float64(trials),
			})
		}
	}
	return rows, nil
}

// A1Table renders the bound-quality ablation.
func A1Table(rows []A1Row) *stats.Table {
	t := stats.NewTable("A1 — phase-1 bound quality (wrap-inclusive objective)",
		"N", "M", "mean LB", "mean greedy", "mean exact K~", "LB tight %", "greedy tight %", "proven %")
	for _, r := range rows {
		t.AddRowf(r.N, r.M, r.MeanLB, r.MeanGreedy, r.MeanExact, r.LBTight, r.GreedyTight, r.AllExact)
	}
	return t
}

// A2Row compares merge strategies at one (N, K) point (M fixed by the
// caller): mean unit-cost computations after reduction.
type A2Row struct {
	N, K                                      int
	Greedy, Naive, Random, Smallest, Annealed float64
	// Optimal is the exact minimum (dynamic programming over register
	// tail profiles — merge.OptimalDP), available at every N.
	Optimal float64
}

// RunA2 measures the merge-strategy ablation against the exact
// optimum.
func RunA2(ns []int, k, m, trials int, seed int64) ([]A2Row, error) {
	rng := rand.New(rand.NewSource(seed))
	var rows []A2Row
	for _, n := range ns {
		var g, nv, rd, sm, an, op stats.Sample
		for trial := 0; trial < trials; trial++ {
			pat, err := workload.RandomPattern(rng, workload.RandomParams{N: n, OffsetRange: 8})
			if err != nil {
				return nil, err
			}
			dg, err := distgraph.Build(pat, m)
			if err != nil {
				return nil, err
			}
			cover := pathcover.MinCover(dg, false, nil)
			for _, s := range []struct {
				strat merge.Strategy
				dst   *stats.Sample
			}{
				{merge.Greedy{}, &g},
				{merge.Naive{}, &nv},
				{merge.Random{Rng: rand.New(rand.NewSource(seed + int64(trial)))}, &rd},
				{merge.SmallestTwo{}, &sm},
			} {
				a, err := merge.Reduce(s.strat, cover.Paths, pat, m, false, k)
				if err != nil {
					return nil, err
				}
				s.dst.AddInt(a.Cost(pat, m, false))
			}
			sa := merge.Anneal(cover.Paths, pat, m, false, k,
				rand.New(rand.NewSource(seed^int64(trial))), &merge.AnnealOptions{Steps: 3000})
			an.AddInt(sa.Cost(pat, m, false))
			_, cost := merge.OptimalDP(pat, m, k)
			op.AddInt(cost)
		}
		rows = append(rows, A2Row{
			N: n, K: k,
			Greedy: g.Mean(), Naive: nv.Mean(), Random: rd.Mean(),
			Smallest: sm.Mean(), Annealed: an.Mean(), Optimal: op.Mean(),
		})
	}
	return rows, nil
}

// A2Table renders the merge-strategy ablation.
func A2Table(rows []A2Row, k, m int) *stats.Table {
	t := stats.NewTable(fmt.Sprintf("A2 — merge strategies, mean cost after reduction to K=%d (M=%d)", k, m),
		"N", "greedy", "naive", "random", "smallest-two", "annealed", "optimal")
	for _, r := range rows {
		t.AddRowf(r.N, r.Greedy, r.Naive, r.Random, r.Smallest, r.Annealed, r.Optimal)
	}
	return t
}

// A3Row measures the inter-iteration modelling ablation for one
// workload: the wrap-inclusive cost (what the hardware executes) when
// the optimizer ignores wraps versus when it models them.
type A3Row struct {
	Workload             string
	IntraOnly, WrapAware float64
	Benefit              float64 // percent reduction from modelling wraps
}

// RunA3 compares the two objectives on random patterns (aggregated)
// and on every library kernel's array patterns.
func RunA3(k, m, trials int, seed int64) ([]A3Row, error) {
	rng := rand.New(rand.NewSource(seed))
	var rows []A3Row

	evalBoth := func(pat model.Pattern) (intra, wrap int, err error) {
		dg, err := distgraph.Build(pat, m)
		if err != nil {
			return 0, 0, err
		}
		for _, aware := range []bool{false, true} {
			cover := pathcover.MinCover(dg, aware, nil)
			a, err := merge.Reduce(merge.Greedy{}, cover.Paths, pat, m, aware, k)
			if err != nil {
				return 0, 0, err
			}
			cost := a.Cost(pat, m, true) // hardware metric
			if aware {
				wrap = cost
			} else {
				intra = cost
			}
		}
		return intra, wrap, nil
	}

	var ri, rw stats.Sample
	for trial := 0; trial < trials; trial++ {
		pat, err := workload.RandomPattern(rng, workload.RandomParams{N: 20, OffsetRange: 8})
		if err != nil {
			return nil, err
		}
		i, w, err := evalBoth(pat)
		if err != nil {
			return nil, err
		}
		ri.AddInt(i)
		rw.AddInt(w)
	}
	rows = append(rows, A3Row{
		Workload:  fmt.Sprintf("random (N=20, %d trials)", trials),
		IntraOnly: ri.Mean(), WrapAware: rw.Mean(),
		Benefit: stats.PercentReduction(ri.Mean(), rw.Mean()),
	})

	for _, kn := range workload.AllKernels() {
		pats, _ := kn.Loop.Patterns()
		sumI, sumW := 0, 0
		for _, p := range pats {
			i, w, err := evalBoth(p)
			if err != nil {
				return nil, err
			}
			sumI += i
			sumW += w
		}
		rows = append(rows, A3Row{
			Workload:  kn.Name,
			IntraOnly: float64(sumI), WrapAware: float64(sumW),
			Benefit: stats.PercentReduction(float64(sumI), float64(sumW)),
		})
	}
	return rows, nil
}

// A3Table renders the wrap-modelling ablation.
func A3Table(rows []A3Row, k, m int) *stats.Table {
	t := stats.NewTable(fmt.Sprintf("A3 — inter-iteration modelling, wrap-inclusive cost (K=%d, M=%d)", k, m),
		"workload", "intra-only objective", "wrap-aware objective", "benefit %")
	for _, r := range rows {
		t.AddRowf(r.Workload, r.IntraOnly, r.WrapAware, r.Benefit)
	}
	return t
}

// A4Row compares scalar offset-assignment heuristics at one sequence
// length.
type A4Row struct {
	Length, Vars                      int
	FirstUse, Liao, TieBreak, Optimal float64
}

// RunA4 measures SOA heuristics on random scalar access sequences; the
// optimum is computed exactly (variable counts are kept small).
func RunA4(lengths []int, nvars, trials int, seed int64) ([]A4Row, error) {
	if nvars > 8 {
		return nil, fmt.Errorf("experiments: A4 optimum infeasible beyond 8 variables, got %d", nvars)
	}
	rng := rand.New(rand.NewSource(seed))
	letters := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var rows []A4Row
	for _, n := range lengths {
		var fu, li, tb, op stats.Sample
		for trial := 0; trial < trials; trial++ {
			seq := make([]string, n)
			for i := range seq {
				seq[i] = letters[rng.Intn(nvars)]
			}
			fu.AddInt(offsetassign.FirstUse(seq).Cost(seq))
			li.AddInt(offsetassign.LiaoSOA(seq).Cost(seq))
			tb.AddInt(offsetassign.TieBreakSOA(seq).Cost(seq))
			_, c := offsetassign.OptimalSOA(seq)
			op.AddInt(c)
		}
		rows = append(rows, A4Row{
			Length: n, Vars: nvars,
			FirstUse: fu.Mean(), Liao: li.Mean(), TieBreak: tb.Mean(), Optimal: op.Mean(),
		})
	}
	return rows, nil
}

// A4Table renders the SOA ablation.
func A4Table(rows []A4Row) *stats.Table {
	t := stats.NewTable("A4 — scalar offset assignment (complementary work [4,5])",
		"sequence length", "vars", "first-use", "Liao", "tie-break", "optimal")
	for _, r := range rows {
		t.AddRowf(r.Length, r.Vars, r.FirstUse, r.Liao, r.TieBreak, r.Optimal)
	}
	return t
}
