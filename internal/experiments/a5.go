package experiments

import (
	"fmt"
	"math/rand"

	"dspaddr/internal/indexreg"
	"dspaddr/internal/model"
	"dspaddr/internal/stats"
	"dspaddr/internal/workload"
)

// A5Row measures the index-register extension at one sweep point: the
// mean cost of the paper's base AGU model versus the indexed model
// with 1 and 2 index registers.
type A5Row struct {
	N, K                 int
	Base, OneIdx, TwoIdx float64
	Red1, Red2           float64 // percent reductions vs. base
}

// RunA5 measures the benefit of AGU index (modify) registers — the
// extension beyond the paper's model — on random patterns with large
// strided jumps (the access shape index registers exist for).
func RunA5(ns []int, k, m, trials int, seed int64) ([]A5Row, error) {
	rng := rand.New(rand.NewSource(seed))
	var rows []A5Row
	for _, n := range ns {
		var base, one, two stats.Sample
		for trial := 0; trial < trials; trial++ {
			pat, err := workload.RandomPattern(rng, workload.RandomParams{
				N: n, OffsetRange: 16, Dist: workload.Clustered, Clusters: 3,
			})
			if err != nil {
				return nil, err
			}
			spec := model.AGUSpec{Registers: k, ModifyRange: m}
			for idx, dst := range map[int]*stats.Sample{0: &base, 1: &one, 2: &two} {
				res, err := indexreg.Optimize(pat, spec, indexreg.Options{IndexRegisters: idx})
				if err != nil {
					return nil, err
				}
				dst.AddInt(res.Cost)
			}
		}
		rows = append(rows, A5Row{
			N: n, K: k,
			Base: base.Mean(), OneIdx: one.Mean(), TwoIdx: two.Mean(),
			Red1: stats.PercentReduction(base.Mean(), one.Mean()),
			Red2: stats.PercentReduction(base.Mean(), two.Mean()),
		})
	}
	return rows, nil
}

// A5Table renders the index-register ablation.
func A5Table(rows []A5Row, k, m int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("A5 — index-register extension, mean cost on clustered patterns (K=%d, M=%d)", k, m),
		"N", "base model", "1 index reg", "2 index regs", "red. 1 %", "red. 2 %")
	for _, r := range rows {
		t.AddRowf(r.N, r.Base, r.OneIdx, r.TwoIdx, r.Red1, r.Red2)
	}
	return t
}
