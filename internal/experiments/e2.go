package experiments

import (
	"fmt"
	"math/rand"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/merge"
	"dspaddr/internal/pathcover"
	"dspaddr/internal/stats"
	"dspaddr/internal/workload"
)

// E2Params configures the Results-section statistical analysis:
// random access patterns swept over N, M and K, comparing the paper's
// greedy path merging against the naive (arbitrary-pair) baseline.
type E2Params struct {
	// Ns, Ms, Ks are the sweep axes (accesses, modify range,
	// registers).
	Ns, Ms, Ks []int
	// Trials is the number of random patterns per cell.
	Trials int
	// Seed makes the sweep reproducible.
	Seed int64
	// OffsetRange bounds the random offsets.
	OffsetRange int
	// Dist selects the random pattern distribution.
	Dist workload.Distribution
	// InterIteration switches the optimization objective to include
	// wrap transitions.
	InterIteration bool
}

// DefaultE2Params returns the sweep used in EXPERIMENTS.md: the
// parameter ranges the paper names ("a variety of parameters N, M and
// K") at laptop-friendly sizes.
func DefaultE2Params() E2Params {
	return E2Params{
		Ns:          []int{10, 20, 30, 50},
		Ms:          []int{1, 2},
		Ks:          []int{2, 4},
		Trials:      100,
		Seed:        1998,
		OffsetRange: 8,
		Dist:        workload.Uniform,
	}
}

// E2Cell is one (N, M, K) sweep point.
type E2Cell struct {
	N, M, K int
	// MeanKTilde is the average phase-1 register demand.
	MeanKTilde float64
	// MeanNaive and MeanGreedy are the average unit-cost computations
	// per iteration after reduction to K registers.
	MeanNaive, MeanGreedy float64
	// CINaive and CIGreedy are 95% confidence half-widths.
	CINaive, CIGreedy float64
	// Reduction is the relative improvement of greedy over naive in
	// percent.
	Reduction float64
}

// E2Result is the whole sweep.
type E2Result struct {
	Params E2Params
	Cells  []E2Cell
	// GrandReduction is the mean of the per-cell reductions — the
	// paper's "about 40 % on the average".
	GrandReduction float64
}

// RunE2 executes the sweep.
func RunE2(p E2Params) (*E2Result, error) {
	if p.Trials < 1 {
		return nil, fmt.Errorf("experiments: E2 needs at least one trial")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	res := &E2Result{Params: p}
	var reductions stats.Sample
	for _, n := range p.Ns {
		for _, m := range p.Ms {
			for _, k := range p.Ks {
				cell, err := runE2Cell(rng, p, n, m, k)
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, cell)
				reductions.Add(cell.Reduction)
			}
		}
	}
	res.GrandReduction = reductions.Mean()
	return res, nil
}

func runE2Cell(rng *rand.Rand, p E2Params, n, m, k int) (E2Cell, error) {
	var naiveCosts, greedyCosts, ktildes stats.Sample
	for trial := 0; trial < p.Trials; trial++ {
		pat, err := workload.RandomPattern(rng, workload.RandomParams{
			N: n, OffsetRange: p.OffsetRange, Dist: p.Dist,
		})
		if err != nil {
			return E2Cell{}, err
		}
		dg, err := distgraph.Build(pat, m)
		if err != nil {
			return E2Cell{}, err
		}
		cover := pathcover.MinCover(dg, p.InterIteration, nil)
		ktildes.AddInt(cover.K())

		naive, err := merge.Reduce(merge.Naive{}, cover.Paths, pat, m, p.InterIteration, k)
		if err != nil {
			return E2Cell{}, err
		}
		greedy, err := merge.Reduce(merge.Greedy{}, cover.Paths, pat, m, p.InterIteration, k)
		if err != nil {
			return E2Cell{}, err
		}
		naiveCosts.AddInt(naive.Cost(pat, m, p.InterIteration))
		greedyCosts.AddInt(greedy.Cost(pat, m, p.InterIteration))
	}
	return E2Cell{
		N: n, M: m, K: k,
		MeanKTilde: ktildes.Mean(),
		MeanNaive:  naiveCosts.Mean(),
		MeanGreedy: greedyCosts.Mean(),
		CINaive:    naiveCosts.CI95(),
		CIGreedy:   greedyCosts.CI95(),
		Reduction:  stats.PercentReduction(naiveCosts.Mean(), greedyCosts.Mean()),
	}, nil
}

// Table renders the sweep in the paper's style.
func (r *E2Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E2 — random patterns, greedy vs naive path merging (%d trials/cell, seed %d): grand average reduction %.1f%%",
			r.Params.Trials, r.Params.Seed, r.GrandReduction),
		"N", "M", "K", "mean K~", "naive cost", "greedy cost", "reduction %")
	for _, c := range r.Cells {
		t.AddRowf(c.N, c.M, c.K, c.MeanKTilde, c.MeanNaive, c.MeanGreedy, c.Reduction)
	}
	return t
}
