package experiments

import (
	"fmt"

	"dspaddr/internal/codegen"
	"dspaddr/internal/core"
	"dspaddr/internal/dspsim"
	"dspaddr/internal/model"
	"dspaddr/internal/stats"
	"dspaddr/internal/workload"
)

// E3Params configures the realistic-kernel experiment: code size and
// speed of AGU-optimized addressing versus the naive "regular C
// compiler" baseline (explicit pointer arithmetic before every access,
// no free post-modify).
type E3Params struct {
	// Registers is the AGU register count K.
	Registers int
	// ModifyRange is M.
	ModifyRange int
	// Kernels selects library kernels by name; nil means all.
	Kernels []string
}

// DefaultE3Params uses a 4-register, M=1 AGU — the ADSP/TI-generation
// configuration the paper targets.
func DefaultE3Params() E3Params {
	return E3Params{Registers: 4, ModifyRange: 1}
}

// E3Row is one kernel's measurement.
type E3Row struct {
	Kernel      string
	Arrays      int
	Accesses    int
	NaiveWords  int
	OptWords    int
	NaiveCycles int
	OptCycles   int
	// SizeImprovement and SpeedImprovement are percent reductions of
	// words and cycles.
	SizeImprovement  float64
	SpeedImprovement float64
}

// E3Result is the whole kernel table.
type E3Result struct {
	Params E3Params
	Rows   []E3Row
	// MeanSize and MeanSpeed are the average improvements; MaxSize and
	// MaxSpeed the best observed (the paper reports "up to" numbers).
	MeanSize, MeanSpeed, MaxSize, MaxSpeed float64
}

// RunE3 measures every requested kernel. Both program variants are
// verified against the source-level address trace before measuring —
// a run never reports numbers from incorrect code.
func RunE3(p E3Params) (*E3Result, error) {
	names := p.Kernels
	if names == nil {
		names = workload.KernelNames()
	}
	res := &E3Result{Params: p}
	var size, speed stats.Sample
	for _, name := range names {
		k, err := workload.KernelByName(name)
		if err != nil {
			return nil, err
		}
		row, err := runE3Kernel(k, p)
		if err != nil {
			return nil, fmt.Errorf("experiments: kernel %s: %w", name, err)
		}
		res.Rows = append(res.Rows, row)
		size.Add(row.SizeImprovement)
		speed.Add(row.SpeedImprovement)
	}
	res.MeanSize, res.MeanSpeed = size.Mean(), speed.Mean()
	res.MaxSize, res.MaxSpeed = size.Max(), speed.Max()
	return res, nil
}

func runE3Kernel(k *workload.Kernel, p E3Params) (E3Row, error) {
	pats, _ := k.Loop.Patterns()
	regs := p.Registers
	if regs < len(pats) {
		regs = len(pats) // every array needs one private register
	}
	alloc, err := core.AllocateLoop(k.Loop, core.Config{
		AGU:            model.AGUSpec{Registers: regs, ModifyRange: p.ModifyRange},
		InterIteration: true,
	})
	if err != nil {
		return E3Row{}, err
	}
	bases, words := codegen.AutoBases(k.Loop)
	opt, err := codegen.GenerateOptimized(alloc, bases, dspsim.ADD)
	if err != nil {
		return E3Row{}, err
	}
	if err := opt.Verify(words); err != nil {
		return E3Row{}, fmt.Errorf("optimized code failed verification: %w", err)
	}
	naive, err := codegen.GenerateNaive(k.Loop, bases, p.ModifyRange, dspsim.ADD)
	if err != nil {
		return E3Row{}, err
	}
	if err := naive.Verify(words); err != nil {
		return E3Row{}, fmt.Errorf("naive code failed verification: %w", err)
	}
	mo, err := opt.Run(words)
	if err != nil {
		return E3Row{}, err
	}
	mn, err := naive.Run(words)
	if err != nil {
		return E3Row{}, err
	}
	return E3Row{
		Kernel:           k.Name,
		Arrays:           len(pats),
		Accesses:         len(k.Loop.Accesses),
		NaiveWords:       naive.CodeWords(),
		OptWords:         opt.CodeWords(),
		NaiveCycles:      mn.Cycles,
		OptCycles:        mo.Cycles,
		SizeImprovement:  stats.PercentReduction(float64(naive.CodeWords()), float64(opt.CodeWords())),
		SpeedImprovement: stats.PercentReduction(float64(mn.Cycles), float64(mo.Cycles)),
	}, nil
}

// Table renders the kernel comparison.
func (r *E3Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E3 — DSP kernels, optimized vs naive compiler addressing (K=%d, M=%d): size mean %.1f%% / max %.1f%%, speed mean %.1f%% / max %.1f%%",
			r.Params.Registers, r.Params.ModifyRange, r.MeanSize, r.MaxSize, r.MeanSpeed, r.MaxSpeed),
		"kernel", "arrays", "accesses", "naive words", "opt words", "size %", "naive cycles", "opt cycles", "speed %")
	for _, row := range r.Rows {
		t.AddRowf(row.Kernel, row.Arrays, row.Accesses, row.NaiveWords, row.OptWords,
			row.SizeImprovement, row.NaiveCycles, row.OptCycles, row.SpeedImprovement)
	}
	return t
}
