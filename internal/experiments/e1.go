// Package experiments regenerates every table and figure of the
// paper's evaluation, plus the ablations DESIGN.md lists. Each
// experiment returns printable tables (internal/stats) so the CLI, the
// benchmarks and EXPERIMENTS.md all share one source of truth.
package experiments

import (
	"fmt"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
	"dspaddr/internal/pathcover"
	"dspaddr/internal/stats"
)

// Fig1Result reproduces Figure 1: the distance-graph model of the
// example loop of Section 2 under M = 1.
type Fig1Result struct {
	// Pattern is the example access pattern.
	Pattern model.Pattern
	// DOT is the Graphviz rendering of the graph.
	DOT string
	// Edges lists the zero-cost edges (1-based access indices).
	Edges [][2]int
	// KTilde is the minimum zero-cost path cover size (phase 1).
	KTilde int
	// Cover is the computed minimal cover.
	Cover []model.Path
}

// RunFig1 builds the Figure 1 graph and its minimal path cover.
func RunFig1() (*Fig1Result, error) {
	pat := model.PaperExample()
	dg, err := distgraph.Build(pat, 1)
	if err != nil {
		return nil, err
	}
	cover := pathcover.MinCover(dg, false, nil)
	res := &Fig1Result{
		Pattern: pat,
		DOT:     dg.DOT("figure1"),
		KTilde:  cover.K(),
		Cover:   cover.Paths,
	}
	for _, e := range dg.Edges() {
		res.Edges = append(res.Edges, [2]int{e[0] + 1, e[1] + 1})
	}
	return res, nil
}

// Table renders the edge list and cover as a table.
func (r *Fig1Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 1 — distance graph of %s (M=1): %d zero-cost edges, K~=%d", r.Pattern, len(r.Edges), r.KTilde),
		"edge", "from", "to", "distance")
	for i, e := range r.Edges {
		d := r.Pattern.Offsets[e[1]-1] - r.Pattern.Offsets[e[0]-1]
		t.AddRowf(fmt.Sprintf("e%d", i+1), fmt.Sprintf("a%d", e[0]), fmt.Sprintf("a%d", e[1]), d)
	}
	return t
}
