// Checkpoint/compaction: the pass that keeps the log bounded.
//
// A sealed segment becomes compactable once every job whose submit
// record lives in it is terminal (open == 0). Compaction then rewrites
// the segment keeping only records of unexpired jobs — a job's records
// are kept or dropped as a unit across all segments, so an unexpired
// finish never loses its submit — and deletes the segment outright
// when nothing survives. Rewrites go through a temp file, rename and
// directory fsync, so a crash mid-compaction leaves either the old or
// the new segment, never a half one. Each scan records the earliest
// expiry it kept, so segments are not rescanned until that horizon
// passes.

package wal

import (
	"context"
	"os"
	"time"
)

// Compact runs one checkpoint pass at the given time (injectable so
// tests can accelerate the clock). The job manager's janitor calls it
// on every sweep tick; an ineligible log costs a few comparisons.
func (l *Log) Compact(now time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	// Land any coalesced finish frames first: the scan below may delete
	// a segment whose jobs' terminal records would otherwise exist only
	// in memory.
	l.flushPendingLocked(context.Background())
	l.compactRuns.Add(1)
	nowN := now.UnixNano()

	// Prune expired jobs from the index first: a pruned entry is what
	// lets the per-segment scan drop their records.
	for id, e := range l.index {
		if e.terminal && e.expire <= nowN {
			delete(l.index, id)
		}
	}

	kept := l.sealed[:0]
	for _, seg := range l.sealed {
		if seg.open > 0 || (seg.nextCompact != 0 && seg.nextCompact > nowN) {
			kept = append(kept, seg)
			continue
		}
		if l.compactSegmentLocked(seg, nowN) {
			kept = append(kept, seg)
		}
	}
	// Zero the dropped tail so deleted segments don't leak.
	for i := len(kept); i < len(l.sealed); i++ {
		l.sealed[i] = nil
	}
	l.sealed = kept
}

// compactSegmentLocked scans one sealed segment, dropping records of
// jobs no longer in the index. It returns false when the segment was
// deleted. The log mutex is held throughout — a rewrite briefly
// stalls appends, which is acceptable for a pass that runs on janitor
// ticks, not the submit path.
func (l *Log) compactSegmentLocked(seg *segment, nowN int64) bool {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		// Unreadable sealed segment: leave it for replay to judge, and
		// back off so the janitor doesn't spin on it.
		seg.nextCompact = nowN + int64(l.opts.Retention)
		return true
	}
	out := make([]byte, 0, len(data))
	out = append(out, segMagic...)
	var dropped int
	var minExpire int64
	off := len(segMagic)
	end, _ := scanFrames(data, nil)
	for off < end {
		n := int(le32(data[off:off+4])) + frameHeaderBytes
		frame := data[off : off+n]
		rec, derr := decodeRecord(frame[frameHeaderBytes:])
		off += n
		if derr != nil {
			continue // unreachable: scanFrames bounded end at the first bad frame
		}
		e := l.index[recordJobID(rec)]
		if e == nil {
			dropped++
			continue
		}
		out = append(out, frame...)
		exp := e.expire
		if exp == 0 { // live job (a cancel record can precede its finish)
			exp = nowN + int64(l.opts.Retention)
		}
		if minExpire == 0 || exp < minExpire {
			minExpire = exp
		}
	}

	if len(out) <= len(segMagic) {
		if os.Remove(seg.path) != nil {
			seg.nextCompact = nowN + int64(l.opts.Retention)
			return true
		}
		if l.opts.Fsync != FsyncOff {
			syncDir(l.dir)
		}
		l.size.Add(-seg.size)
		l.segCount.Add(-1)
		delete(l.segOf, seg.seq)
		l.segDeletes.Add(1)
		l.recsDropped.Add(uint64(dropped))
		return false
	}

	if dropped > 0 {
		tmp := seg.path + ".tmp"
		if werr := writeFileSync(tmp, out, l.opts.Fsync != FsyncOff); werr != nil {
			os.Remove(tmp) //nolint:errcheck // best effort
			seg.nextCompact = nowN + int64(l.opts.Retention)
			return true
		}
		if rerr := os.Rename(tmp, seg.path); rerr != nil {
			os.Remove(tmp) //nolint:errcheck // best effort
			seg.nextCompact = nowN + int64(l.opts.Retention)
			return true
		}
		if l.opts.Fsync != FsyncOff {
			syncDir(l.dir)
		}
		l.size.Add(int64(len(out)) - seg.size)
		seg.size = int64(len(out))
		l.segRewrites.Add(1)
		l.recsDropped.Add(uint64(dropped))
	}
	seg.nextCompact = minExpire
	return true
}

// recordJobID extracts the job a record belongs to.
func recordJobID(rec record) string {
	switch rec.kind {
	case kindSubmit:
		return rec.submit.ID
	case kindCancel:
		return rec.id
	}
	return rec.finish.ID
}

// writeFileSync writes data to path, optionally fsyncing before close.
func writeFileSync(path string, data []byte, sync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
