// Binary record framing.
//
// Every record is one frame on disk:
//
//	[ length uint32 LE ][ crc32c(payload) uint32 LE ][ payload ]
//
// and every payload starts with a one-byte record kind followed by
// kind-specific fields (little-endian fixed-width integers,
// length-prefixed strings and byte slices). The CRC is Castagnoli —
// hardware-accelerated on the platforms this runs on — and covers the
// payload only; the length field is validated structurally (bounded
// by maxRecordBytes and by the bytes actually present in the
// segment), so a corrupted length can tear the tail of a segment but
// never drives an allocation or a read past it.
//
// Decoding is deliberately paranoid: every field read checks the
// remaining length, unknown kinds and trailing payload bytes are
// errors, and the only outcome of arbitrary input is (record, ok) or
// a decode error — never a panic. FuzzWALDecode holds the package to
// that.

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// frameHeaderBytes is the per-record framing overhead: length + CRC.
const frameHeaderBytes = 8

// maxRecordBytes bounds a single record's payload. A length prefix
// above it is treated as corruption, so a flipped high bit cannot ask
// the replayer to allocate gigabytes.
const maxRecordBytes = 16 << 20

// castagnoli is the CRC-32C table shared by encode and decode.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record kinds.
const (
	kindSubmit byte = 1
	kindCancel byte = 2
	kindFinish byte = 3
)

// State is a job's lifecycle state as the log records it. It mirrors
// the jobs package's states without importing it — the WAL is below
// the job manager in the dependency order.
type State uint8

// The recorded states. StateQueued marks a job whose submit record
// has no terminal record yet; the others come from finish records.
const (
	StateQueued State = iota + 1
	StateDone
	StateFailed
	StateTimeout
	StateCanceled
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s != StateQueued }

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateTimeout:
		return "timeout"
	case StateCanceled:
		return "canceled"
	}
	return fmt.Sprintf("wal.State(%d)", uint8(s))
}

// SubmitRecord is the durable form of one admitted job.
type SubmitRecord struct {
	ID          string
	TraceID     string
	Priority    int
	SubmittedAt time.Time
	// Payload is the caller-encoded job payload; the WAL treats it as
	// opaque bytes.
	Payload []byte
}

// FinishRecord is the durable form of one job reaching a terminal
// state.
type FinishRecord struct {
	ID         string
	State      State
	FinishedAt time.Time
	// ExpireAt is when the result stops being fetchable; replay skips
	// terminal jobs already past it.
	ExpireAt time.Time
	Err      string
	// Result is the caller-encoded result; set only for StateDone.
	Result []byte
}

// record is the decoded union of the three record kinds.
type record struct {
	kind   byte
	submit SubmitRecord // kindSubmit
	id     string       // kindCancel
	finish FinishRecord // kindFinish
}

// errBadRecord is the decode failure; replay treats it exactly like a
// CRC mismatch (truncate here).
var errBadRecord = errors.New("wal: malformed record")

// appendFrame appends the framed form of payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// appendSubmit appends a framed submit record to buf.
func appendSubmit(buf []byte, r SubmitRecord) []byte {
	p := make([]byte, 0, 1+2+len(r.ID)+2+len(r.TraceID)+4+8+4+len(r.Payload))
	p = append(p, kindSubmit)
	p = appendString16(p, r.ID)
	p = appendString16(p, r.TraceID)
	p = binary.LittleEndian.AppendUint32(p, uint32(int32(r.Priority)))
	p = binary.LittleEndian.AppendUint64(p, uint64(r.SubmittedAt.UnixNano()))
	p = appendBytes32(p, r.Payload)
	return appendFrame(buf, p)
}

// appendCancel appends a framed cancel record to buf.
func appendCancel(buf []byte, id string) []byte {
	p := make([]byte, 0, 1+2+len(id))
	p = append(p, kindCancel)
	p = appendString16(p, id)
	return appendFrame(buf, p)
}

// appendFinish appends a framed finish record to buf.
func appendFinish(buf []byte, r FinishRecord) []byte {
	p := make([]byte, 0, 1+2+len(r.ID)+1+8+8+4+len(r.Err)+4+len(r.Result))
	p = append(p, kindFinish)
	p = appendString16(p, r.ID)
	p = append(p, byte(r.State))
	p = binary.LittleEndian.AppendUint64(p, uint64(r.FinishedAt.UnixNano()))
	p = binary.LittleEndian.AppendUint64(p, uint64(r.ExpireAt.UnixNano()))
	p = appendBytes32(p, []byte(r.Err))
	p = appendBytes32(p, r.Result)
	return appendFrame(buf, p)
}

func appendString16(p []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16] // IDs and trace IDs are far shorter; never triggers
	}
	p = binary.LittleEndian.AppendUint16(p, uint16(len(s)))
	return append(p, s...)
}

func appendBytes32(p, b []byte) []byte {
	p = binary.LittleEndian.AppendUint32(p, uint32(len(b)))
	return append(p, b...)
}

// decodeRecord parses one CRC-validated payload. Trailing bytes after
// the last field are corruption, not forward compatibility — a
// version bump changes the segment magic instead.
func decodeRecord(p []byte) (record, error) {
	d := decoder{buf: p}
	kind, err := d.byte()
	if err != nil {
		return record{}, err
	}
	var rec record
	rec.kind = kind
	switch kind {
	case kindSubmit:
		if rec.submit.ID, err = d.string16(); err != nil {
			return record{}, err
		}
		if rec.submit.TraceID, err = d.string16(); err != nil {
			return record{}, err
		}
		pri, err := d.uint32()
		if err != nil {
			return record{}, err
		}
		rec.submit.Priority = int(int32(pri))
		if rec.submit.SubmittedAt, err = d.time(); err != nil {
			return record{}, err
		}
		if rec.submit.Payload, err = d.bytes32(); err != nil {
			return record{}, err
		}
	case kindCancel:
		if rec.id, err = d.string16(); err != nil {
			return record{}, err
		}
	case kindFinish:
		if rec.finish.ID, err = d.string16(); err != nil {
			return record{}, err
		}
		st, err := d.byte()
		if err != nil {
			return record{}, err
		}
		rec.finish.State = State(st)
		if !rec.finish.State.Terminal() || rec.finish.State > StateCanceled {
			return record{}, errBadRecord
		}
		if rec.finish.FinishedAt, err = d.time(); err != nil {
			return record{}, err
		}
		if rec.finish.ExpireAt, err = d.time(); err != nil {
			return record{}, err
		}
		errText, err := d.bytes32()
		if err != nil {
			return record{}, err
		}
		rec.finish.Err = string(errText)
		if rec.finish.Result, err = d.bytes32(); err != nil {
			return record{}, err
		}
	default:
		return record{}, errBadRecord
	}
	if len(d.buf) != d.off {
		return record{}, errBadRecord // trailing garbage inside a valid CRC
	}
	// A record without a job ID could never have been written; refuse
	// to fabricate one from a frame that happens to checksum.
	if rec.kind == kindSubmit && rec.submit.ID == "" ||
		rec.kind == kindCancel && rec.id == "" ||
		rec.kind == kindFinish && rec.finish.ID == "" {
		return record{}, errBadRecord
	}
	return rec, nil
}

// decoder is a bounds-checked cursor over one record payload.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || len(d.buf)-d.off < n {
		return nil, errBadRecord
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) byte() (byte, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) uint32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) uint64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) time() (time.Time, error) {
	v, err := d.uint64()
	if err != nil {
		return time.Time{}, err
	}
	if v == 0 {
		return time.Time{}, nil
	}
	return time.Unix(0, int64(v)), nil
}

func (d *decoder) string16() (string, error) {
	b, err := d.take(2)
	if err != nil {
		return "", err
	}
	s, err := d.take(int(binary.LittleEndian.Uint16(b)))
	if err != nil {
		return "", err
	}
	return string(s), nil
}

func (d *decoder) bytes32() ([]byte, error) {
	b, err := d.take(4)
	if err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxRecordBytes {
		return nil, errBadRecord
	}
	out, err := d.take(int(n))
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, nil
	}
	// Copy out of the segment read buffer so records outlive it.
	return append([]byte(nil), out...), nil
}
