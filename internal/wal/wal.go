// Package wal is the crash-safe write-ahead log under the async job
// manager: a directory of segmented, append-only files of CRC32-framed
// binary records (submit, cancel, finish) that lets a restarting
// process rebuild every job it ever acknowledged.
//
// The durability contract is write-before-acknowledge: an append
// returns only after the record bytes have reached the kernel via a
// single write(2), so a SIGKILL at any point loses at most work that
// was never acknowledged. What an append does NOT imply is fsync —
// that is the configurable policy:
//
//	always    fsync inside every append; survives power loss, slowest
//	interval  a background goroutine fsyncs dirty segments on a timer;
//	          survives process death (the page cache persists), loses
//	          at most one interval to power loss — the default
//	off       never fsync; still survives process death
//
// The contract is asymmetric by record type. Submit records are what
// the acknowledgement promises, so they always take the synchronous
// write. Finish records promise nothing to anyone — no caller waits
// on their durability, and a finish lost to a crash only means the
// job replays as unfinished and runs again, a window the interval
// fsync policy already concedes. Under interval and off they are
// therefore coalesced in user space and ride the next submit write,
// flusher tick, compaction pass or Close, halving the log's syscall
// rate and keeping completions out of submit's lock shadow. Cancel
// records stay synchronous even though they are also unacknowledged:
// their entire value is the crash window between the cancel request
// and the runner unwinding, which buffering would reopen.
//
// Segments rotate at a size threshold and are immutable once sealed.
// Recovery (Open) replays segments in order and tolerates arbitrary
// tail damage: the first torn or CRC-corrupted frame truncates the
// log at that point — the file is cut back to the last good frame and
// later segments are dropped — and replay never panics on any input
// (FuzzWALDecode holds it to that). A compaction pass (Compact, driven
// by the job manager's janitor) rewrites sealed segments whose jobs
// are all terminal, dropping records of expired jobs and deleting
// segments with nothing left, so the log stays bounded under steady
// traffic.
package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dspaddr/internal/faults"
	"dspaddr/internal/obs"
)

// segMagic opens every segment file; a version bump changes it, so a
// future format never mis-parses as this one.
var segMagic = []byte("RCAWAL01")

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("wal: log closed")

// Defaults for zero Options fields.
const (
	DefaultSegmentBytes  = 4 << 20
	DefaultFsyncInterval = 100 * time.Millisecond
	DefaultRetention     = 15 * time.Minute
)

// maxPendingBytes caps the coalesced finish-record buffer: past this,
// the buffering append flushes inline rather than letting a
// finish-heavy burst grow the buffer unboundedly between flush points.
const maxPendingBytes = 256 << 10

// FsyncPolicy selects when appended records are forced to stable
// storage. The zero value is FsyncInterval — the crash-safe,
// power-loss-bounded default.
type FsyncPolicy uint8

const (
	// FsyncInterval syncs dirty segments from a background goroutine
	// every Options.FsyncInterval.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs inside every append, before it returns.
	FsyncAlways
	// FsyncOff never syncs; process-crash safe, power-loss unsafe.
	FsyncOff
)

// ParseFsyncPolicy parses the flag form: always, interval or off.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	}
	return "interval"
}

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold; a segment that reaches
	// it is sealed and a fresh one opened. 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// Fsync is the durability policy (see the package comment).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval.
	// 0 means DefaultFsyncInterval.
	FsyncInterval time.Duration
	// Retention is the compaction horizon for jobs the log has no
	// recorded expiry for (canceled without a finish record, live at
	// replay); callers pass the job store's TTL. 0 means
	// DefaultRetention.
	Retention time.Duration
	// Faults is the opt-in chaos hook (wal-write-error and
	// wal-fsync-delay clauses); nil — the production default — is one
	// pointer compare per append.
	Faults *faults.Injector
	// AppendHist, FsyncHist and ReplayHist, when non-nil, record
	// append latency, fsync latency and replay duration; nil costs a
	// nil check.
	AppendHist *obs.Histogram
	FsyncHist  *obs.Histogram
	ReplayHist *obs.Histogram
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.Retention <= 0 {
		o.Retention = DefaultRetention
	}
	return o
}

// segment is the in-memory state of one on-disk segment file.
type segment struct {
	seq  uint64
	path string
	size int64
	// open counts live (non-terminal) jobs whose submit record lives
	// here; a sealed segment is compactable only at open == 0.
	open int
	// nextCompact is the earliest time (unixnano) a compaction scan
	// can drop anything from this segment — the minimum expiry seen on
	// the last scan. 0 means "not scanned yet".
	nextCompact int64
}

// jobEntry is the compaction index entry for one job: where its
// submit record lives and when (if terminal) its records expire.
type jobEntry struct {
	seg      uint64
	terminal bool
	expire   int64 // unixnano; 0 while live
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends serialize on one mutex (a single-writer log).
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	closed    bool
	active    *os.File
	activeSeq uint64
	sealed    []*segment          // ascending seq; excludes the active segment
	segOf     map[uint64]*segment // every segment incl. active
	index     map[string]*jobEntry
	buf       []byte // frame assembly scratch, guarded by mu
	// pending holds encoded finish frames awaiting coalesced flush
	// (interval/off policies only); their index effects are already
	// applied. pendingRecs counts the frames.
	pending     []byte
	pendingRecs int

	dirty    atomic.Bool // active segment has unsynced bytes
	size     atomic.Int64
	segCount atomic.Int64

	appends      atomic.Uint64 // records appended
	appendErrs   atomic.Uint64
	fsyncs       atomic.Uint64
	fsyncErrs    atomic.Uint64
	compactRuns  atomic.Uint64
	segRewrites  atomic.Uint64
	segDeletes   atomic.Uint64
	recsDropped  atomic.Uint64
	replayReport ReplayStats // fixed after Open

	flushStop chan struct{}
	flushWG   sync.WaitGroup
}

// AppendSubmit logs a batch of admitted jobs as one write. On return
// (without error) the records are in the kernel; the caller may
// acknowledge the submission.
func (l *Log) AppendSubmit(ctx context.Context, recs []SubmitRecord) error {
	if len(recs) == 0 {
		return nil
	}
	return l.append(ctx, len(recs), func(buf []byte) []byte {
		for i := range recs {
			buf = appendSubmit(buf, recs[i])
		}
		return buf
	}, func(seq uint64) {
		entries := make([]jobEntry, len(recs)) // one allocation per burst
		for i := range recs {
			entries[i].seg = seq
			l.index[recs[i].ID] = &entries[i]
		}
		l.segOf[seq].open += len(recs)
	})
}

// AppendCancel logs a cancellation request against a running job. The
// terminal state still arrives via AppendFinish once the runner
// unwinds; the cancel record only matters when the process dies in
// between — replay then resolves the job as canceled instead of
// re-running it.
func (l *Log) AppendCancel(ctx context.Context, id string) error {
	return l.append(ctx, 1, func(buf []byte) []byte {
		return appendCancel(buf, id)
	}, nil)
}

// AppendFinish logs terminal transitions. Under FsyncAlways they take
// the synchronous write path like everything else; under interval and
// off they are coalesced — buffered in user space and flushed with the
// next submit write, flusher tick, compaction pass or Close. See the
// package comment for why that asymmetry is sound: finish durability
// is never acknowledged, and a finish lost to a crash only re-runs
// the job, the same window the interval fsync policy already has.
func (l *Log) AppendFinish(ctx context.Context, recs ...FinishRecord) error {
	if len(recs) == 0 {
		return nil
	}
	build := func(buf []byte) []byte {
		for i := range recs {
			buf = appendFinish(buf, recs[i])
		}
		return buf
	}
	apply := func() {
		for i := range recs {
			e := l.index[recs[i].ID]
			if e == nil || e.terminal {
				continue
			}
			e.terminal = true
			e.expire = recs[i].ExpireAt.UnixNano()
			if seg := l.segOf[e.seg]; seg != nil {
				seg.open--
			}
		}
	}
	if l.opts.Fsync == FsyncAlways {
		return l.append(ctx, len(recs), build, func(uint64) { apply() })
	}
	return l.bufferTerminal(len(recs), build, apply)
}

// bufferTerminal queues encoded finish frames for a coalesced flush.
// The compaction-index effects apply immediately — they describe the
// job, not the record's on-disk position — so Compact and Stats see
// terminal transitions without waiting for the flush.
func (l *Log) bufferTerminal(n int, build func([]byte) []byte, apply func()) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.pending = build(l.pending)
	l.pendingRecs += n
	apply()
	if len(l.pending) >= maxPendingBytes {
		l.flushPendingLocked(context.Background())
	}
	return nil
}

// flushPendingLocked writes the coalesced finish frames with one
// write(2). Called with the log mutex held. On error the buffer is
// dropped, not retried: the records were never promised durable, and
// replay resolves their jobs as unfinished — the documented
// degradation, counted in appendErrs.
func (l *Log) flushPendingLocked(ctx context.Context) {
	if l.pendingRecs == 0 || l.active == nil {
		return
	}
	buf := append(l.buf[:0], l.pending...)
	_, err := l.writeLocked(ctx, buf, l.pendingRecs)
	l.recycleScratch(buf)
	if err != nil {
		l.appendErrs.Add(1)
	}
	l.pending = l.pending[:0]
	l.pendingRecs = 0
}

// append is the single write path: build the frames into the shared
// scratch buffer, write them with one write(2), update the compaction
// index, rotate and fsync per policy. apply (may be nil) runs after a
// successful write with the sequence of the segment the bytes landed
// in.
func (l *Log) append(ctx context.Context, n int, build func([]byte) []byte, apply func(seq uint64)) error {
	sp := obs.FromContext(ctx).StartSpan("wal.append")
	start := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		sp.Note("closed").End()
		return ErrClosed
	}
	if inj := l.opts.Faults; inj != nil {
		if err := inj.BeforeWALWrite(); err != nil {
			l.appendErrs.Add(1)
			l.mu.Unlock()
			sp.Note("fault").End()
			return err
		}
	}
	// Coalesced finish frames ride this write for free: prepend them to
	// the same buffer so one syscall covers both.
	flushN := l.pendingRecs
	buf := build(append(l.buf[:0], l.pending...))
	seq, err := l.writeLocked(ctx, buf, n+flushN)
	l.recycleScratch(buf)
	if flushN > 0 {
		// Success or failure, the pending frames were part of this write
		// attempt; on failure they are lost with it (see flushPendingLocked).
		l.pending = l.pending[:0]
		l.pendingRecs = 0
	}
	if err != nil {
		l.appendErrs.Add(1)
		l.mu.Unlock()
		sp.Note("error").End()
		return fmt.Errorf("wal: append: %w", err)
	}
	if apply != nil {
		apply(seq)
	}
	l.mu.Unlock()
	l.opts.AppendHist.Observe(time.Since(start))
	sp.Attr("records", int64(n)).Attr("bytes", int64(len(buf))).End()
	return nil
}

// writeLocked is the single write(2): it lands buf in the active
// segment, accounts n records, rolls a torn tail back by truncation,
// fsyncs per policy and rotates at the size threshold. It returns the
// sequence of the segment the bytes landed in. The log mutex is held.
func (l *Log) writeLocked(ctx context.Context, buf []byte, n int) (uint64, error) {
	wrote, err := l.active.Write(buf)
	if err != nil {
		// A short write leaves a torn frame at the tail; cut it back so
		// later appends don't land after garbage replay would discard.
		if wrote > 0 {
			end := l.segOf[l.activeSeq].size
			if terr := l.active.Truncate(end); terr != nil {
				// Rollback failed too: abandon this segment for a fresh one
				// so the log stays append-clean past the damage.
				l.size.Add(int64(wrote))
				l.segOf[l.activeSeq].size += int64(wrote)
				l.rotateLocked()
			}
		}
		return 0, err
	}
	seq := l.activeSeq
	seg := l.segOf[seq]
	seg.size += int64(wrote)
	l.size.Add(int64(wrote))
	l.appends.Add(uint64(n))
	if l.opts.Fsync == FsyncAlways {
		l.syncActiveLocked(ctx)
	} else {
		l.dirty.Store(true)
	}
	if seg.size >= l.opts.SegmentBytes {
		l.rotateLocked()
	}
	return seq, nil
}

// recycleScratch returns the frame-assembly buffer for reuse, letting
// batch-close spikes go to GC instead of pinning megabytes.
func (l *Log) recycleScratch(buf []byte) {
	if cap(buf) <= 1<<20 {
		l.buf = buf[:0]
	} else {
		l.buf = nil
	}
}

// syncActiveLocked fsyncs the active segment under the log mutex
// (FsyncAlways and rotation). The interval flusher uses syncFile
// outside the lock instead.
func (l *Log) syncActiveLocked(ctx context.Context) {
	if l.active == nil {
		return
	}
	sp := obs.FromContext(ctx).StartSpan("wal.fsync")
	if inj := l.opts.Faults; inj != nil {
		inj.WALFsyncDelay()
	}
	start := time.Now()
	err := l.active.Sync()
	l.opts.FsyncHist.Observe(time.Since(start))
	l.fsyncs.Add(1)
	if err != nil {
		l.fsyncErrs.Add(1)
		sp.Note("error")
	}
	l.dirty.Store(false)
	sp.End()
}

// flushLoop is the background goroutine for the buffering policies
// (interval and off): every interval it writes out coalesced finish
// frames, and — under FsyncInterval only — syncs the active segment if
// anything was appended since the last pass. The fsync runs outside
// the log mutex — concurrent appends are not stalled; their bytes are
// covered by the next pass.
func (l *Log) flushLoop() {
	defer l.flushWG.Done()
	ticker := time.NewTicker(l.opts.FsyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-ticker.C:
			l.mu.Lock()
			if !l.closed {
				l.flushPendingLocked(context.Background())
			}
			l.mu.Unlock()
			if l.opts.Fsync != FsyncInterval {
				continue // FsyncOff: the tick only drains the finish buffer
			}
			if !l.dirty.Swap(false) {
				continue
			}
			l.mu.Lock()
			f := l.active
			l.mu.Unlock()
			if f == nil {
				continue
			}
			if inj := l.opts.Faults; inj != nil {
				inj.WALFsyncDelay()
			}
			start := time.Now()
			err := f.Sync()
			l.opts.FsyncHist.Observe(time.Since(start))
			l.fsyncs.Add(1)
			// A rotation may close the file mid-sync; its seal path
			// already synced it, so that race is not an error.
			if err != nil && !errors.Is(err, os.ErrClosed) {
				l.fsyncErrs.Add(1)
			}
		}
	}
}

// rotateLocked seals the active segment (final fsync unless the
// policy is off, then close) and opens the next one. Failures to open
// a new segment leave the log closed for appends — better refuse
// durable writes than silently drop them.
func (l *Log) rotateLocked() {
	if l.active != nil {
		if l.opts.Fsync != FsyncOff {
			l.fsyncs.Add(1)
			if err := l.active.Sync(); err != nil {
				l.fsyncErrs.Add(1)
			}
		}
		l.active.Close()
		l.active = nil
		l.sealed = append(l.sealed, l.segOf[l.activeSeq])
	}
	if err := l.openSegmentLocked(l.activeSeq + 1); err != nil {
		l.closed = true
	}
}

// openSegmentLocked creates and activates segment seq.
func (l *Log) openSegmentLocked(seq uint64) error {
	path := filepath.Join(l.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.active = f
	l.activeSeq = seq
	seg := &segment{seq: seq, path: path, size: int64(len(segMagic))}
	l.segOf[seq] = seg
	l.size.Add(seg.size)
	l.segCount.Add(1)
	if l.opts.Fsync != FsyncOff {
		syncDir(l.dir)
	}
	return nil
}

// Close syncs (per policy) and closes the active segment and stops
// the background flusher. Appends after Close return ErrClosed.
// Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.flushPendingLocked(context.Background())
	l.closed = true
	f := l.active
	l.active = nil
	l.mu.Unlock()
	if l.flushStop != nil {
		close(l.flushStop)
		l.flushWG.Wait()
	}
	var err error
	if f != nil {
		if l.opts.Fsync != FsyncOff {
			l.fsyncs.Add(1)
			if serr := f.Sync(); serr != nil {
				l.fsyncErrs.Add(1)
			}
		}
		err = f.Close()
	}
	return err
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// segmentName renders the on-disk name for segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016x.log", seq) }

// syncDir fsyncs a directory so renames, creates and deletes are
// durable. Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // advisory
	d.Close()
}

// Stats is a point-in-time snapshot of the log's health, exported via
// /metrics and /v1/stats.
type Stats struct {
	Dir               string      `json:"dir"`
	FsyncPolicy       string      `json:"fsyncPolicy"`
	Segments          int64       `json:"segments"`
	SizeBytes         int64       `json:"sizeBytes"`
	Appends           uint64      `json:"appendedRecords"`
	AppendErrors      uint64      `json:"appendErrors"`
	Fsyncs            uint64      `json:"fsyncs"`
	FsyncErrors       uint64      `json:"fsyncErrors"`
	CompactRuns       uint64      `json:"compactRuns"`
	SegmentsRewritten uint64      `json:"segmentsRewritten"`
	SegmentsDeleted   uint64      `json:"segmentsDeleted"`
	RecordsDropped    uint64      `json:"recordsDropped"`
	Replay            ReplayStats `json:"replay"`
}

// Stats snapshots the log counters.
func (l *Log) Stats() Stats {
	return Stats{
		Dir:               l.dir,
		FsyncPolicy:       l.opts.Fsync.String(),
		Segments:          l.segCount.Load(),
		SizeBytes:         l.size.Load(),
		Appends:           l.appends.Load(),
		AppendErrors:      l.appendErrs.Load(),
		Fsyncs:            l.fsyncs.Load(),
		FsyncErrors:       l.fsyncErrs.Load(),
		CompactRuns:       l.compactRuns.Load(),
		SegmentsRewritten: l.segRewrites.Load(),
		SegmentsDeleted:   l.segDeletes.Load(),
		RecordsDropped:    l.recsDropped.Load(),
		Replay:            l.replayReport,
	}
}
