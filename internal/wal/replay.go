// Boot replay: Open scans the segment files in sequence order and
// reduces their records to per-job final states.
//
// Damage tolerance is prefix semantics, the strongest guarantee a
// truncating recovery can give: the replayed log is the longest clean
// prefix of what was written. The first bad frame — torn tail, CRC
// mismatch, oversized length, undecodable payload — truncates its
// segment at the last good frame and drops every later segment; no
// valid-looking frame after damage is trusted, because its ordering
// context is gone. Replay never panics on any input and never
// fabricates a job: a job exists only if a CRC-valid submit record
// with a non-empty ID says so.

package wal

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// JobState is one job's replayed final state, in submit order.
type JobState struct {
	ID          string
	TraceID     string
	Priority    int
	SubmittedAt time.Time
	// Payload is the caller-encoded submit payload.
	Payload []byte
	// State is StateQueued for jobs with no terminal record — the
	// manager re-enqueues those — or the recorded terminal state.
	State State
	// Err, Result, FinishedAt and ExpireAt come from the finish
	// record; all zero for replayed-as-queued jobs. A job canceled
	// without a finish record (the process died in between) has
	// StateCanceled with a zero FinishedAt/ExpireAt — the recovering
	// manager stamps its own.
	Err        string
	Result     []byte
	FinishedAt time.Time
	ExpireAt   time.Time
}

// ReplayStats summarizes one recovery pass.
type ReplayStats struct {
	// Segments is how many segment files were scanned (including any
	// truncated or dropped).
	Segments int `json:"segments"`
	// Records is how many valid records were applied.
	Records int `json:"records"`
	// Strays counts valid records that referenced no live job (a
	// finish for an unknown or already-terminal ID) — expected after
	// compaction drops an expired job's submit but not its finish.
	Strays int `json:"strays"`
	// TornBytes is how much of the first damaged segment was cut off.
	TornBytes int64 `json:"tornBytes"`
	// SegmentsDropped counts whole segments discarded after the first
	// bad frame (prefix semantics).
	SegmentsDropped int `json:"segmentsDropped"`
	// JobsRequeued and JobsTerminal partition the replayed jobs.
	JobsRequeued int `json:"jobsRequeued"`
	JobsTerminal int `json:"jobsTerminal"`
	// ElapsedMicros is the wall time of the replay scan.
	ElapsedMicros int64 `json:"elapsedMicros"`
}

// Replay is the result of Open's recovery pass.
type Replay struct {
	// Jobs holds every replayed job in submit order; the caller
	// re-enqueues the StateQueued ones and restores the rest into its
	// result store (skipping those past ExpireAt).
	Jobs []JobState
	ReplayStats
}

// replayJob accumulates one job's records during the scan.
type replayJob struct {
	state JobState
}

// Open opens (creating if needed) the log in dir, replays its
// segments and starts a fresh active segment. The returned Replay
// carries the recovered job states; the error is nil for any content
// of dir — damage is handled by truncation, not failure — and non-nil
// only for real I/O problems (permissions, a vanished directory).
func Open(dir string, opts Options) (*Log, *Replay, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:   dir,
		opts:  opts,
		segOf: make(map[uint64]*segment),
		index: make(map[string]*jobEntry),
	}
	start := time.Now()
	rep, maxSeq, err := l.replaySegments()
	if err != nil {
		return nil, nil, err
	}
	l.indexReplayed(rep, time.Now())
	rep.ElapsedMicros = time.Since(start).Microseconds()
	opts.ReplayHist.Observe(time.Since(start))
	l.replayReport = rep.ReplayStats

	l.mu.Lock()
	err = l.openSegmentLocked(maxSeq + 1)
	l.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	// The flusher runs for both buffering policies: under interval it
	// also fsyncs; under off it only drains the coalesced finish
	// buffer. FsyncAlways never buffers and needs no goroutine.
	if opts.Fsync != FsyncAlways {
		l.flushStop = make(chan struct{})
		l.flushWG.Add(1)
		go l.flushLoop()
	}
	return l, rep, nil
}

// replaySegments scans every segment file in sequence order, applies
// records until the first bad frame, truncates there and rebuilds the
// compaction index. It returns the highest segment sequence seen (0
// when the directory is empty).
func (l *Log) replaySegments() (*Replay, uint64, error) {
	names, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	type segFile struct {
		seq  uint64
		path string
	}
	var files []segFile
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		seq, ok := parseSegmentName(de.Name())
		if !ok {
			continue
		}
		files = append(files, segFile{seq: seq, path: filepath.Join(l.dir, de.Name())})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].seq < files[j].seq })

	rep := &Replay{}
	jobs := make(map[string]*replayJob)
	var order []string
	damaged := false
	var maxSeq uint64
	for _, sf := range files {
		maxSeq = sf.seq
		if damaged {
			// Prefix semantics: everything after the first bad frame is
			// untrusted. Remove the file.
			os.Remove(sf.path)
			rep.SegmentsDropped++
			continue
		}
		rep.Segments++
		data, err := os.ReadFile(sf.path)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: read segment: %w", err)
		}
		goodEnd := len(segMagic)
		clean := len(data) >= len(segMagic) && string(data[:len(segMagic)]) == string(segMagic)
		if !clean {
			goodEnd = 0
		} else {
			goodEnd, clean = scanFrames(data, func(rec record) {
				rep.Records++
				applyRecord(jobs, &order, rec, rep)
			})
		}
		if clean {
			l.adoptSegment(sf.seq, sf.path, int64(len(data)))
			continue
		}
		damaged = true
		rep.TornBytes += int64(len(data) - goodEnd)
		if goodEnd <= len(segMagic) {
			// Nothing good in the file at all; drop it.
			os.Remove(sf.path)
			rep.SegmentsDropped++
			continue
		}
		if err := os.Truncate(sf.path, int64(goodEnd)); err != nil {
			// Cannot cut the damage off; drop the whole segment and the
			// records we applied from it stay applied — they were valid.
			os.Remove(sf.path)
			rep.SegmentsDropped++
			continue
		}
		l.adoptSegment(sf.seq, sf.path, int64(goodEnd))
	}
	if (damaged || rep.SegmentsDropped > 0) && l.opts.Fsync != FsyncOff {
		syncDir(l.dir)
	}

	// Reduce to job states; order already holds first-submit order.
	rep.Jobs = make([]JobState, 0, len(order))
	for _, id := range order {
		j := jobs[id]
		rep.Jobs = append(rep.Jobs, j.state)
		if j.state.State.Terminal() {
			rep.JobsTerminal++
		} else {
			rep.JobsRequeued++
		}
	}
	return rep, maxSeq, nil
}

// adoptSegment registers a replayed segment as sealed and indexes the
// jobs submitted in it.
func (l *Log) adoptSegment(seq uint64, path string, size int64) {
	seg := &segment{seq: seq, path: path, size: size}
	l.segOf[seq] = seg
	l.sealed = append(l.sealed, seg)
	l.size.Add(size)
	l.segCount.Add(1)
}

// applyRecord folds one valid record into the per-job reduction.
func applyRecord(jobs map[string]*replayJob, order *[]string, rec record, rep *Replay) {
	switch rec.kind {
	case kindSubmit:
		if _, dup := jobs[rec.submit.ID]; dup {
			rep.Strays++ // duplicate submit; first one wins
			return
		}
		jobs[rec.submit.ID] = &replayJob{
			state: JobState{
				ID:          rec.submit.ID,
				TraceID:     rec.submit.TraceID,
				Priority:    rec.submit.Priority,
				SubmittedAt: rec.submit.SubmittedAt,
				Payload:     rec.submit.Payload,
				State:       StateQueued,
			},
		}
		*order = append(*order, rec.submit.ID)
	case kindCancel:
		j := jobs[rec.id]
		if j == nil || j.state.State.Terminal() {
			rep.Strays++
			return
		}
		j.state.State = StateCanceled
	case kindFinish:
		j := jobs[rec.finish.ID]
		if j == nil || (j.state.State.Terminal() && j.state.State != StateCanceled) {
			rep.Strays++
			return
		}
		if j.state.State == StateCanceled && !j.state.FinishedAt.IsZero() {
			rep.Strays++ // already finished by an earlier finish record
			return
		}
		j.state.State = rec.finish.State
		j.state.Err = rec.finish.Err
		j.state.Result = rec.finish.Result
		j.state.FinishedAt = rec.finish.FinishedAt
		j.state.ExpireAt = rec.finish.ExpireAt
	}
}

// indexReplayed rebuilds the compaction index from the replayed jobs
// (called once from Open, before the log accepts appends).
func (l *Log) indexReplayed(rep *Replay, now time.Time) {
	for i := range rep.Jobs {
		js := &rep.Jobs[i]
		e := &jobEntry{}
		if js.State.Terminal() {
			e.terminal = true
			exp := js.ExpireAt
			if exp.IsZero() {
				exp = now.Add(l.opts.Retention)
			}
			e.expire = exp.UnixNano()
		}
		l.index[js.ID] = e
	}
	// Submit-segment attribution: replay does not track which segment
	// each submit came from (a compacted log interleaves them), so
	// live jobs conservatively pin the oldest sealed segment — open
	// counts exist to keep live submits from being compacted away, and
	// pinning the oldest achieves that for every older-or-equal write.
	if len(l.sealed) > 0 {
		oldest := l.sealed[0]
		for i := range rep.Jobs {
			if !rep.Jobs[i].State.Terminal() {
				l.index[rep.Jobs[i].ID].seg = oldest.seq
				oldest.open++
			}
		}
	}
}

// scanFrames iterates the frames after the segment magic, calling fn
// for each valid record. It returns the offset of the first bad frame
// and false, or len(data) and true for a clean segment.
func scanFrames(data []byte, fn func(record)) (int, bool) {
	off := len(segMagic)
	for off < len(data) {
		if len(data)-off < frameHeaderBytes {
			return off, false // torn frame header
		}
		n := int(le32(data[off : off+4]))
		if n == 0 || n > maxRecordBytes || len(data)-off-frameHeaderBytes < n {
			return off, false // corrupt or torn length
		}
		payload := data[off+frameHeaderBytes : off+frameHeaderBytes+n]
		if crc32.Checksum(payload, castagnoli) != le32(data[off+4:off+8]) {
			return off, false
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return off, false
		}
		if fn != nil {
			fn(rec)
		}
		off += frameHeaderBytes + n
	}
	return off, true
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// parseSegmentName recovers the sequence from "wal-%016x.log".
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hexpart) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}
