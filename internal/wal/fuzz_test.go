package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzWALDecode holds the recovery path to its two hard promises:
// arbitrary segment bytes never panic replay, and replay never
// fabricates a job (every returned job has a non-empty ID and came
// from a CRC-valid submit record). The fuzz input is written as a
// segment file and run through the full Open path — decode, frame
// scan, truncation and re-open — not just decodeRecord.
func FuzzWALDecode(f *testing.F) {
	seedTime := time.Unix(1700000000, 0)
	// Seed a valid segment, then mutations the replayer must survive:
	// truncated frames, flipped CRC bits, oversized length prefixes.
	var valid []byte
	valid = append(valid, segMagic...)
	valid = appendSubmit(valid, SubmitRecord{ID: "j-1", TraceID: "t", Priority: 3, SubmittedAt: seedTime, Payload: []byte("p")})
	valid = appendCancel(valid, "j-1")
	valid = appendFinish(valid, FinishRecord{ID: "j-1", State: StateCanceled, FinishedAt: seedTime, ExpireAt: seedTime.Add(time.Hour)})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(segMagic)+5] ^= 0x80 // CRC bit flip
	f.Add(flipped)
	oversized := append([]byte(nil), segMagic...)
	oversized = append(oversized, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0) // 2GiB length prefix
	f.Add(oversized)
	f.Add([]byte(segMagic))
	f.Add([]byte("not a wal segment at all"))
	f.Add([]byte{})
	// A frame with a valid CRC over a payload with an empty job ID —
	// the fabrication case the decoder must reject.
	emptyID := append([]byte(nil), segMagic...)
	emptyID = appendFrame(emptyID, []byte{kindCancel, 0, 0})
	f.Add(emptyID)

	f.Fuzz(func(t *testing.T, data []byte) {
		// decodeRecord directly: arbitrary payloads either decode to a
		// record with a job ID or error; never panic.
		if rec, err := decodeRecord(data); err == nil {
			if recordJobID(rec) == "" {
				t.Fatalf("decodeRecord fabricated a record with no job ID: %+v", rec)
			}
		}

		// Full replay path over the same bytes as a segment file.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rep, err := Open(dir, Options{Fsync: FsyncOff})
		if err != nil {
			t.Fatalf("Open on fuzz input: %v", err)
		}
		for _, j := range rep.Jobs {
			if j.ID == "" {
				t.Fatalf("replay fabricated a job with no ID: %+v", j)
			}
		}
		if rep.JobsRequeued+rep.JobsTerminal != len(rep.Jobs) {
			t.Fatalf("replay counters inconsistent: %d + %d != %d",
				rep.JobsRequeued, rep.JobsTerminal, len(rep.Jobs))
		}
		// The truncated log must be stable: a second replay sees the
		// same jobs with no further damage.
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, rep2, err := Open(dir, Options{Fsync: FsyncOff})
		if err != nil {
			t.Fatalf("re-Open after truncation: %v", err)
		}
		defer l2.Close()
		if rep2.TornBytes != 0 || rep2.SegmentsDropped != 0 {
			t.Fatalf("second replay found new damage: torn=%d dropped=%d",
				rep2.TornBytes, rep2.SegmentsDropped)
		}
		if len(rep2.Jobs) != len(rep.Jobs) {
			t.Fatalf("second replay job count changed: %d -> %d", len(rep.Jobs), len(rep2.Jobs))
		}
	})
}
