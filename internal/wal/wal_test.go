package wal

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dspaddr/internal/faults"
)

var ctx = context.Background()

// t0 is a fixed submit time; UnixNano round-trips exactly.
var t0 = time.Unix(1700000000, 123456789)

func sub(id string, pri int, payload string) SubmitRecord {
	return SubmitRecord{ID: id, TraceID: "tr-" + id, Priority: pri, SubmittedAt: t0, Payload: []byte(payload)}
}

func fin(id string, st State, expire time.Time, errText, result string) FinishRecord {
	var res []byte
	if result != "" {
		res = []byte(result)
	}
	return FinishRecord{ID: id, State: st, FinishedAt: t0.Add(time.Second), ExpireAt: expire, Err: errText, Result: res}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Replay) {
	t.Helper()
	l, rep, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, rep
}

// jobByID finds one replayed job.
func jobByID(t *testing.T, rep *Replay, id string) JobState {
	t.Helper()
	for _, j := range rep.Jobs {
		if j.ID == id {
			return j
		}
	}
	t.Fatalf("job %s not replayed (have %d jobs)", id, len(rep.Jobs))
	return JobState{}
}

// segmentPaths lists the on-disk segment files in sequence order.
func segmentPaths(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range ents {
		if _, ok := parseSegmentName(de.Name()); ok {
			out = append(out, filepath.Join(dir, de.Name()))
		}
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	expire := t0.Add(time.Hour)
	var buf []byte
	buf = appendSubmit(buf, sub("j-1", 7, `{"x":1}`))
	buf = appendCancel(buf, "j-1")
	buf = appendFinish(buf, fin("j-1", StateDone, expire, "", `{"ok":true}`))
	data := append(append([]byte{}, segMagic...), buf...)

	var recs []record
	end, clean := scanFrames(data, func(r record) { recs = append(recs, r) })
	if !clean || end != len(data) {
		t.Fatalf("scanFrames = (%d, %v), want (%d, true)", end, clean, len(data))
	}
	if len(recs) != 3 {
		t.Fatalf("decoded %d records, want 3", len(recs))
	}
	s := recs[0].submit
	if s.ID != "j-1" || s.TraceID != "tr-j-1" || s.Priority != 7 ||
		!s.SubmittedAt.Equal(t0) || string(s.Payload) != `{"x":1}` {
		t.Errorf("submit round-trip mismatch: %+v", s)
	}
	if recs[1].id != "j-1" {
		t.Errorf("cancel round-trip mismatch: %+v", recs[1])
	}
	f := recs[2].finish
	if f.ID != "j-1" || f.State != StateDone || !f.ExpireAt.Equal(expire) ||
		f.Err != "" || string(f.Result) != `{"ok":true}` {
		t.Errorf("finish round-trip mismatch: %+v", f)
	}
}

func TestNegativePriorityRoundTrip(t *testing.T) {
	var buf []byte
	buf = appendSubmit(buf, sub("j-neg", -42, "p"))
	data := append(append([]byte{}, segMagic...), buf...)
	var got record
	if _, clean := scanFrames(data, func(r record) { got = r }); !clean {
		t.Fatal("scanFrames rejected a valid frame")
	}
	if got.submit.Priority != -42 {
		t.Errorf("priority = %d, want -42", got.submit.Priority)
	}
}

// TestReplayTable is the recovery-semantics table the WAL contract
// hangs on: each case damages (or doesn't) a written log in a
// specific way and asserts the exact post-replay job states.
func TestReplayTable(t *testing.T) {
	expire := t0.Add(time.Hour)
	// write populates a fresh log: j-done finished done, j-fail failed,
	// j-cancel canceled without a finish record, j-live still queued.
	write := func(t *testing.T, dir string) {
		l, rep := mustOpen(t, dir, Options{Fsync: FsyncOff})
		if len(rep.Jobs) != 0 {
			t.Fatalf("fresh dir replayed %d jobs", len(rep.Jobs))
		}
		if err := l.AppendSubmit(ctx, []SubmitRecord{
			sub("j-done", 1, "pd"), sub("j-fail", 2, "pf"),
			sub("j-cancel", 3, "pc"), sub("j-live", 4, "pl"),
		}); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendFinish(ctx, fin("j-done", StateDone, expire, "", "rd")); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendFinish(ctx, fin("j-fail", StateFailed, expire, "boom", "")); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendCancel(ctx, "j-cancel"); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name string
		// damage mutates the closed log directory before reopening.
		damage func(t *testing.T, dir string)
		// After reopen: the expected per-job states ("" = job gone),
		// plus torn-byte expectations.
		want     map[string]State
		wantTorn bool
	}{
		{
			name:   "clean shutdown",
			damage: func(t *testing.T, dir string) {},
			want: map[string]State{
				"j-done": StateDone, "j-fail": StateFailed,
				"j-cancel": StateCanceled, "j-live": StateQueued,
			},
		},
		{
			name: "kill mid-append: torn frame at the tail",
			damage: func(t *testing.T, dir string) {
				// A crash mid-write leaves a partial frame: a length
				// prefix promising more bytes than exist.
				segs := segmentPaths(t, dir)
				f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xaa, 0xbb}); err != nil {
					t.Fatal(err)
				}
			},
			want: map[string]State{
				"j-done": StateDone, "j-fail": StateFailed,
				"j-cancel": StateCanceled, "j-live": StateQueued,
			},
			wantTorn: true,
		},
		{
			name: "kill mid-fsync: tail cut inside the last frame",
			damage: func(t *testing.T, dir string) {
				// Only a prefix of the final write hit the disk: cut the
				// file mid-frame. The cancel record (written last) is
				// lost, so j-cancel replays as queued again.
				segs := segmentPaths(t, dir)
				fi, err := os.Stat(segs[0])
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(segs[0], fi.Size()-5); err != nil {
					t.Fatal(err)
				}
			},
			want: map[string]State{
				"j-done": StateDone, "j-fail": StateFailed,
				"j-cancel": StateQueued, "j-live": StateQueued,
			},
			wantTorn: true,
		},
		{
			name: "flipped CRC bit mid-segment drops the suffix",
			damage: func(t *testing.T, dir string) {
				// Corrupt one byte inside the j-done finish record's
				// payload: every record from there on is discarded
				// (prefix semantics), so only the four submits survive.
				segs := segmentPaths(t, dir)
				data, err := os.ReadFile(segs[0])
				if err != nil {
					t.Fatal(err)
				}
				// The first finish frame starts after the 4-submit batch;
				// find it by scanning frame headers.
				off := len(segMagic)
				for i := 0; i < 4; i++ { // skip the four submit frames
					off += frameHeaderBytes + int(le32(data[off:off+4]))
				}
				data[off+frameHeaderBytes+3] ^= 0x40
				if err := os.WriteFile(segs[0], data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: map[string]State{
				"j-done": StateQueued, "j-fail": StateQueued,
				"j-cancel": StateQueued, "j-live": StateQueued,
			},
			wantTorn: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			write(t, dir)
			tc.damage(t, dir)
			_, rep := mustOpen(t, dir, Options{Fsync: FsyncOff})
			if len(rep.Jobs) != len(tc.want) {
				t.Fatalf("replayed %d jobs, want %d (%+v)", len(rep.Jobs), len(tc.want), rep.Jobs)
			}
			for id, want := range tc.want {
				if got := jobByID(t, rep, id).State; got != want {
					t.Errorf("job %s replayed as %s, want %s", id, got, want)
				}
			}
			if tc.wantTorn && rep.TornBytes == 0 {
				t.Error("expected torn bytes, got none")
			}
			if !tc.wantTorn && rep.TornBytes != 0 {
				t.Errorf("unexpected torn bytes: %d", rep.TornBytes)
			}
			// Terminal payload fidelity, for cases that kept j-done.
			if tc.want["j-done"] == StateDone {
				j := jobByID(t, rep, "j-done")
				if string(j.Result) != "rd" || !j.ExpireAt.Equal(expire) {
					t.Errorf("j-done result/expiry mismatch: %+v", j)
				}
			}
			if tc.want["j-fail"] == StateFailed {
				if j := jobByID(t, rep, "j-fail"); j.Err != "boom" {
					t.Errorf("j-fail error = %q, want boom", j.Err)
				}
			}
			// Requeued jobs keep their payloads.
			if j := jobByID(t, rep, "j-live"); string(j.Payload) != "pl" || j.Priority != 4 {
				t.Errorf("j-live payload/priority mismatch: %+v", j)
			}
		})
	}
}

// TestReplayCorruptedMiddleSegment forces three segments and corrupts
// the middle one: the first segment and the clean prefix of the
// second survive; the rest of the second and all of the third are
// dropped, and a second replay of the truncated log is stable.
func TestReplayCorruptedMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	// Tiny rotation threshold: every submit batch seals a segment.
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff, SegmentBytes: 1})
	for _, id := range []string{"j-a", "j-b", "j-c"} {
		if err := l.AppendSubmit(ctx, []SubmitRecord{sub(id, 0, "p-"+id)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentPaths(t, dir)
	if len(segs) < 3 {
		t.Fatalf("wanted >= 3 segments, got %d", len(segs))
	}
	// Flip a payload bit in the second segment's only frame.
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+frameHeaderBytes+2] ^= 0x01
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rep := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if len(rep.Jobs) != 1 || rep.Jobs[0].ID != "j-a" {
		t.Fatalf("replayed %+v, want exactly j-a", rep.Jobs)
	}
	if rep.SegmentsDropped == 0 {
		t.Error("expected dropped segments after middle corruption")
	}
	if rep.TornBytes == 0 {
		t.Error("expected torn bytes after middle corruption")
	}

	// The truncated log must replay identically a second time.
	l3, rep3, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(rep3.Jobs) != 1 || rep3.Jobs[0].ID != "j-a" || rep3.TornBytes != 0 {
		t.Fatalf("second replay unstable: %+v torn=%d", rep3.Jobs, rep3.TornBytes)
	}
}

// TestCompaction drives the checkpoint pass with an accelerated
// clock: terminal jobs past their expiry are dropped, fully-expired
// segments deleted, live jobs never touched.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff, SegmentBytes: 1})
	now := t0
	expireSoon := now.Add(time.Minute)
	expireLate := now.Add(time.Hour)

	// Segment 1: j-old, finished, expires soon.
	// Segment 2: j-keep (expires late) and j-live (never finished).
	if err := l.AppendSubmit(ctx, []SubmitRecord{sub("j-old", 0, "po")}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSubmit(ctx, []SubmitRecord{sub("j-keep", 0, "pk"), sub("j-live", 0, "pl")}); err != nil {
		t.Fatal(err)
	}
	// Finishes land in later segments (tiny threshold rotates every append).
	if err := l.AppendFinish(ctx, fin("j-old", StateDone, expireSoon, "", "ro")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendFinish(ctx, fin("j-keep", StateDone, expireLate, "", "rk")); err != nil {
		t.Fatal(err)
	}

	// Nothing is expired yet: compaction must drop nothing — though the
	// pass does land the coalesced finish frames on disk, which is why
	// the size baseline for the shrink check is taken after it.
	l.Compact(now.Add(time.Second))
	if st := l.Stats(); st.RecordsDropped != 0 || st.SegmentsDeleted != 0 {
		t.Fatalf("early compaction dropped records: %+v", st)
	}
	before := l.Stats()

	// Past j-old's expiry: its submit and finish records go; j-keep
	// and j-live survive in full.
	l.Compact(now.Add(2 * time.Minute))
	st := l.Stats()
	if st.RecordsDropped != 2 {
		t.Errorf("dropped %d records, want 2 (j-old submit + finish)", st.RecordsDropped)
	}
	if st.SegmentsDeleted == 0 {
		t.Errorf("expected deleted segments, stats %+v", st)
	}
	if st.SizeBytes >= before.SizeBytes {
		t.Errorf("log did not shrink: %d -> %d bytes", before.SizeBytes, st.SizeBytes)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The compacted log replays to exactly the surviving jobs.
	_, rep := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if len(rep.Jobs) != 2 {
		t.Fatalf("replayed %d jobs after compaction, want 2 (%+v)", len(rep.Jobs), rep.Jobs)
	}
	if j := jobByID(t, rep, "j-keep"); j.State != StateDone || string(j.Result) != "rk" {
		t.Errorf("j-keep mismatch: %+v", j)
	}
	if j := jobByID(t, rep, "j-live"); j.State != StateQueued {
		t.Errorf("j-live replayed as %s, want queued", j.State)
	}
}

// TestCompactionSkipsOpenSegments pins the safety rule: a segment
// holding a live job's submit is never rewritten, even when another
// job in it expired.
func TestCompactionSkipsOpenSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff, SegmentBytes: 1})
	if err := l.AppendSubmit(ctx, []SubmitRecord{sub("j-live", 0, "pl"), sub("j-exp", 0, "pe")}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendFinish(ctx, fin("j-exp", StateDone, t0.Add(time.Minute), "", "re")); err != nil {
		t.Fatal(err)
	}
	l.Compact(t0.Add(time.Hour))
	if st := l.Stats(); st.RecordsDropped != 1 {
		// Only j-exp's finish record (in its own sealed segment) may
		// go; the shared submit segment is pinned by j-live.
		t.Errorf("dropped %d records, want 1: %+v", st.RecordsDropped, st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if j := jobByID(t, rep, "j-live"); j.State != StateQueued || string(j.Payload) != "pl" {
		t.Errorf("j-live damaged by compaction: %+v", j)
	}
}

// TestFsyncPolicies exercises the three policies end to end and the
// fsync counters they should move.
func TestFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy FsyncPolicy
		// minFsyncs after one append (+ Close) — interval counted after
		// a sleep beyond the interval.
		minFsyncs uint64
	}{
		{FsyncAlways, 1},
		{FsyncInterval, 1},
		{FsyncOff, 0},
	} {
		t.Run(tc.policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := mustOpen(t, dir, Options{Fsync: tc.policy, FsyncInterval: 5 * time.Millisecond})
			if err := l.AppendSubmit(ctx, []SubmitRecord{sub("j-1", 0, "p")}); err != nil {
				t.Fatal(err)
			}
			if tc.policy == FsyncInterval {
				deadline := time.Now().Add(2 * time.Second)
				for l.Stats().Fsyncs == 0 && time.Now().Before(deadline) {
					time.Sleep(2 * time.Millisecond)
				}
			}
			if got := l.Stats().Fsyncs; got < tc.minFsyncs {
				t.Errorf("fsyncs = %d, want >= %d", got, tc.minFsyncs)
			}
			if tc.policy == FsyncOff {
				if got := l.Stats().Fsyncs; got != 0 {
					t.Errorf("fsyncs = %d under off policy", got)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if err := l.AppendSubmit(ctx, []SubmitRecord{sub("j-2", 0, "p")}); !errors.Is(err, ErrClosed) {
				t.Errorf("append after Close = %v, want ErrClosed", err)
			}
			_, rep := mustOpen(t, dir, Options{Fsync: FsyncOff})
			if len(rep.Jobs) != 1 || rep.Jobs[0].ID != "j-1" {
				t.Errorf("replay after %s policy: %+v", tc.policy, rep.Jobs)
			}
		})
	}
}

// TestInjectedWriteError verifies an armed wal-write-error clause
// fails the append without corrupting the log.
func TestInjectedWriteError(t *testing.T) {
	inj, err := faults.Parse("wal-write-error=2")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff, Faults: inj})
	if err := l.AppendSubmit(ctx, []SubmitRecord{sub("j-1", 0, "p")}); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := l.AppendSubmit(ctx, []SubmitRecord{sub("j-2", 0, "p")}); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("second append = %v, want injected error", err)
	}
	if st := l.Stats(); st.AppendErrors != 1 {
		t.Errorf("append errors = %d, want 1", st.AppendErrors)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if len(rep.Jobs) != 1 || rep.Jobs[0].ID != "j-1" {
		t.Errorf("failed append leaked into the log: %+v", rep.Jobs)
	}
}

// TestReplayStraysAfterCompactionShape: a finish record whose submit
// was dropped (as compaction can produce for expired jobs) is counted
// as a stray, not resurrected as a job.
func TestReplayStrays(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if err := l.AppendFinish(ctx, fin("j-ghost", StateDone, t0.Add(time.Hour), "", "r")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCancel(ctx, "j-ghost2"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if len(rep.Jobs) != 0 {
		t.Fatalf("strays fabricated jobs: %+v", rep.Jobs)
	}
	if rep.Strays != 2 {
		t.Errorf("strays = %d, want 2", rep.Strays)
	}
}

// TestSegmentNameRoundTrip pins the on-disk naming scheme.
func TestSegmentNameRoundTrip(t *testing.T) {
	for _, seq := range []uint64{1, 255, 1 << 40} {
		name := segmentName(seq)
		got, ok := parseSegmentName(name)
		if !ok || got != seq {
			t.Errorf("parseSegmentName(%q) = (%d, %v), want (%d, true)", name, got, ok, seq)
		}
	}
	for _, bad := range []string{"wal-.log", "wal-xyz.log", "other.log", "wal-0123.log", "wal-0000000000000001.tmp"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Errorf("parseSegmentName(%q) accepted", bad)
		}
	}
}

// TestLargePayloadRotation: appends far beyond the segment threshold
// rotate cleanly and replay whole.
func TestLargePayloadRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff, SegmentBytes: 4 << 10})
	payload := strings.Repeat("x", 3<<10)
	for i := 0; i < 8; i++ {
		id := string(rune('a'+i)) + "-job"
		if err := l.AppendSubmit(ctx, []SubmitRecord{sub(id, i, payload)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Stats().Segments; got < 4 {
		t.Errorf("segments = %d, want rotation to have produced several", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if len(rep.Jobs) != 8 {
		t.Fatalf("replayed %d jobs, want 8", len(rep.Jobs))
	}
	for _, j := range rep.Jobs {
		if !bytes.Equal(j.Payload, []byte(payload)) {
			t.Fatalf("payload damaged for %s", j.ID)
		}
	}
}
