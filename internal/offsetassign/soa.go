// Package offsetassign implements the scalar-variable counterpart the
// paper cites as complementary work: simple offset assignment (SOA,
// Liao et al., PLDI 1995) and its generalization to k address
// registers (GOA, Leupers/Marwedel, ICCAD 1996).
//
// A DSP addresses its scalar variables through an address register with
// free post-increment/decrement by 1. Given the access sequence of a
// basic block, SOA chooses the memory layout (a linear order of the
// variables) minimizing the number of accesses whose predecessor is not
// a memory neighbour — each such access costs one explicit
// address-register load. The problem reduces to maximum-weight path
// cover of the access graph; Liao's heuristic picks edges greedily by
// weight, and the Leupers/Marwedel variant adds a tie-break that
// prefers the edge losing the least adjacent weight.
package offsetassign

import (
	"fmt"
	"sort"
)

// Layout is a memory order of scalar variables.
type Layout struct {
	Order []string
	pos   map[string]int
}

// NewLayout builds a layout from a variable order.
func NewLayout(order []string) Layout {
	pos := make(map[string]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	return Layout{Order: append([]string(nil), order...), pos: pos}
}

// Cost counts the unit-cost address computations of the access
// sequence under this layout: a transition between two different
// variables costs 1 unless they are memory neighbours (|Δpos| == 1,
// covered by free post-increment/decrement). Transitions to the same
// variable are free. Variables missing from the layout make Cost
// panic — layouts must cover the sequence.
func (l Layout) Cost(seq []string) int {
	cost := 0
	for k := 1; k < len(seq); k++ {
		a, b := seq[k-1], seq[k]
		if a == b {
			continue
		}
		pa, oka := l.pos[a]
		pb, okb := l.pos[b]
		if !oka || !okb {
			panic(fmt.Sprintf("offsetassign: layout misses variable %q or %q", a, b))
		}
		d := pa - pb
		if d != 1 && d != -1 {
			cost++
		}
	}
	return cost
}

// Variables returns the distinct variables of a sequence in
// first-appearance order.
func Variables(seq []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range seq {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// FirstUse is the naive baseline: variables laid out in first-use
// order (what a declaration-order compiler does).
func FirstUse(seq []string) Layout {
	return NewLayout(Variables(seq))
}

// edge is an undirected access-graph edge with its adjacency weight.
type edge struct {
	u, v   string
	weight int
}

// accessGraph builds the weighted access graph: weight(a,b) counts the
// adjacent occurrences of a,b (a != b) in the sequence.
func accessGraph(seq []string) []edge {
	w := map[[2]string]int{}
	for k := 1; k < len(seq); k++ {
		a, b := seq[k-1], seq[k]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		w[[2]string{a, b}]++
	}
	edges := make([]edge, 0, len(w))
	for key, weight := range w {
		edges = append(edges, edge{u: key[0], v: key[1], weight: weight})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].weight != edges[j].weight {
			return edges[i].weight > edges[j].weight
		}
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	return edges
}

// LiaoSOA runs Liao's greedy heuristic: scan edges by descending
// weight, accept an edge when both endpoints still have memory degree
// < 2 and it closes no cycle, then stitch the resulting paths into one
// layout.
func LiaoSOA(seq []string) Layout {
	return greedySOA(seq, false)
}

// TieBreakSOA runs the Leupers/Marwedel variant: among equal-weight
// edges, prefer the one whose endpoints carry the least remaining
// adjacent weight (losing it hurts least later).
func TieBreakSOA(seq []string) Layout {
	return greedySOA(seq, true)
}

func greedySOA(seq []string, tieBreak bool) Layout {
	vars := Variables(seq)
	edges := accessGraph(seq)

	if tieBreak {
		// Total incident weight per variable.
		incident := map[string]int{}
		for _, e := range edges {
			incident[e.u] += e.weight
			incident[e.v] += e.weight
		}
		sort.SliceStable(edges, func(i, j int) bool {
			if edges[i].weight != edges[j].weight {
				return edges[i].weight > edges[j].weight
			}
			ti := incident[edges[i].u] + incident[edges[i].v] - 2*edges[i].weight
			tj := incident[edges[j].u] + incident[edges[j].v] - 2*edges[j].weight
			return ti < tj
		})
	}

	degree := map[string]int{}
	next := map[string]string{} // path adjacency (undirected, two slots)
	prev := map[string]string{}
	find := newUnionFind(vars)
	for _, e := range edges {
		if degree[e.u] >= 2 || degree[e.v] >= 2 {
			continue
		}
		if find.root(e.u) == find.root(e.v) {
			continue // would close a cycle
		}
		find.union(e.u, e.v)
		degree[e.u]++
		degree[e.v]++
		// Attach on whichever side is free.
		if _, ok := next[e.u]; !ok {
			next[e.u] = e.v
		} else {
			prev[e.u] = e.v
		}
		if _, ok := prev[e.v]; !ok {
			prev[e.v] = e.u
		} else {
			next[e.v] = e.u
		}
	}

	// Walk each path from an endpoint (degree < 2), concatenating.
	var order []string
	visited := map[string]bool{}
	for _, start := range vars {
		if visited[start] || degree[start] >= 2 {
			continue
		}
		cur, from := start, ""
		for cur != "" && !visited[cur] {
			visited[cur] = true
			order = append(order, cur)
			n1, n2 := next[cur], prev[cur]
			switch {
			case n1 != "" && n1 != from && !visited[n1]:
				from, cur = cur, n1
			case n2 != "" && n2 != from && !visited[n2]:
				from, cur = cur, n2
			default:
				cur = ""
			}
		}
	}
	// Isolated or cycle-remnant variables (shouldn't occur, but be
	// safe): append any not yet placed.
	for _, v := range vars {
		if !visited[v] {
			order = append(order, v)
		}
	}
	return NewLayout(order)
}

// OptimalSOA finds the minimum-cost layout by trying all permutations;
// it is feasible only for small variable counts and serves as the
// oracle in tests and the A4 ablation.
func OptimalSOA(seq []string) (Layout, int) {
	vars := Variables(seq)
	best := append([]string(nil), vars...)
	bestCost := NewLayout(vars).Cost(seq)
	perm := append([]string(nil), vars...)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			if c := NewLayout(perm).Cost(seq); c < bestCost {
				bestCost = c
				copy(best, perm)
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return NewLayout(best), bestCost
}

type unionFind struct {
	parent map[string]string
}

func newUnionFind(items []string) *unionFind {
	uf := &unionFind{parent: make(map[string]string, len(items))}
	for _, it := range items {
		uf.parent[it] = it
	}
	return uf
}

func (uf *unionFind) root(x string) string {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b string) {
	uf.parent[uf.root(a)] = uf.root(b)
}
