package offsetassign

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func seqFromBytes(raw []byte) []string {
	letters := []string{"a", "b", "c", "d", "e", "f", "g"}
	if len(raw) == 0 {
		raw = []byte{0}
	}
	if len(raw) > 40 {
		raw = raw[:40]
	}
	seq := make([]string, len(raw))
	for i, b := range raw {
		seq[i] = letters[int(b)%len(letters)]
	}
	return seq
}

// Property (quick): every heuristic layout is a permutation of the
// sequence's variables, and its cost is bounded by the number of
// variable-changing transitions.
func TestQuickLayoutInvariants(t *testing.T) {
	f := func(raw []byte) bool {
		seq := seqFromBytes(raw)
		vars := Variables(seq)
		maxCost := 0
		for k := 1; k < len(seq); k++ {
			if seq[k] != seq[k-1] {
				maxCost++
			}
		}
		for _, l := range []Layout{FirstUse(seq), LiaoSOA(seq), TieBreakSOA(seq)} {
			if len(l.Order) != len(vars) {
				return false
			}
			seen := map[string]bool{}
			for _, v := range l.Order {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
			c := l.Cost(seq)
			if c < 0 || c > maxCost {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(121))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): GOA's cost is monotone non-increasing in the
// register count and its groups partition the variables.
func TestQuickGOAInvariants(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		seq := seqFromBytes(raw)
		k1 := 1 + int(kRaw%3)
		r1, err := GOA(seq, k1)
		if err != nil {
			return false
		}
		r2, err := GOA(seq, k1+1)
		if err != nil {
			return false
		}
		if r2.Cost > r1.Cost {
			return false
		}
		seen := map[string]bool{}
		for _, g := range r1.Groups {
			for _, v := range g.Order {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return len(seen) == len(Variables(seq))
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(122))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
