package offsetassign

import (
	"fmt"
)

// GOAResult is a general offset assignment: a partition of the
// variables over k address registers, each group with its own layout.
type GOAResult struct {
	// Groups[r] is the layout served by address register r.
	Groups []Layout
	// Cost is the summed SOA cost of the per-register subsequences.
	Cost int
}

// GOA partitions the variables of the access sequence over k address
// registers and lays each group out with the tie-break SOA heuristic,
// minimizing the total unit-cost address computations. The heuristic
// starts from everything on one register and repeatedly moves the
// variable whose relocation reduces total cost the most (steepest
// descent), mirroring the variable-partitioning strategy of
// Leupers/Marwedel's GOA.
func GOA(seq []string, k int) (GOAResult, error) {
	if k < 1 {
		return GOAResult{}, fmt.Errorf("offsetassign: need at least one address register, got %d", k)
	}
	vars := Variables(seq)
	group := make(map[string]int, len(vars))
	for _, v := range vars {
		group[v] = 0
	}

	total := func() int {
		c := 0
		for r := 0; r < k; r++ {
			c += groupCost(seq, group, r)
		}
		return c
	}

	cur := total()
	improved := true
	for improved {
		improved = false
		bestVar, bestGroup, bestCost := "", -1, cur
		for _, v := range vars {
			origin := group[v]
			for r := 0; r < k; r++ {
				if r == origin {
					continue
				}
				group[v] = r
				if c := total(); c < bestCost {
					bestVar, bestGroup, bestCost = v, r, c
				}
			}
			group[v] = origin
		}
		if bestGroup >= 0 {
			group[bestVar] = bestGroup
			cur = bestCost
			improved = true
		}
	}

	res := GOAResult{Cost: cur}
	for r := 0; r < k; r++ {
		res.Groups = append(res.Groups, TieBreakSOA(subSequence(seq, group, r)))
	}
	return res, nil
}

// groupCost evaluates register r's subsequence under the tie-break SOA
// layout.
func groupCost(seq []string, group map[string]int, r int) int {
	sub := subSequence(seq, group, r)
	if len(sub) == 0 {
		return 0
	}
	return TieBreakSOA(sub).Cost(sub)
}

// subSequence filters the access sequence to the variables of group r.
func subSequence(seq []string, group map[string]int, r int) []string {
	var out []string
	for _, v := range seq {
		if group[v] == r {
			out = append(out, v)
		}
	}
	return out
}
