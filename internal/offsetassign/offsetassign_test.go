package offsetassign

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func seqOf(s string) []string {
	return strings.Split(s, "")
}

func TestLayoutCost(t *testing.T) {
	l := NewLayout([]string{"a", "b", "c", "d"})
	// a->b neighbours (free), b->d distance 2 (cost), d->d same (free),
	// d->c neighbours (free), c->a distance 2 (cost).
	if got := l.Cost([]string{"a", "b", "d", "d", "c", "a"}); got != 2 {
		t.Fatalf("Cost = %d, want 2", got)
	}
	if got := l.Cost([]string{"a"}); got != 0 {
		t.Fatalf("single access cost = %d", got)
	}
	if got := l.Cost(nil); got != 0 {
		t.Fatalf("empty cost = %d", got)
	}
}

func TestLayoutCostPanicsOnMissingVariable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLayout([]string{"a"}).Cost([]string{"a", "z"})
}

func TestVariablesFirstAppearance(t *testing.T) {
	got := Variables(seqOf("cabcab"))
	if !reflect.DeepEqual(got, []string{"c", "a", "b"}) {
		t.Fatalf("Variables = %v", got)
	}
}

func TestFirstUseBaseline(t *testing.T) {
	l := FirstUse(seqOf("bca"))
	if !reflect.DeepEqual(l.Order, []string{"b", "c", "a"}) {
		t.Fatalf("FirstUse = %v", l.Order)
	}
}

// The classic SOA example from Liao et al.: access sequence
// a b c d a d a c (after Figure examples in the literature). The
// optimal layout saves the heavy (a,d) and (a,c) adjacencies.
func TestLiaoKnownExample(t *testing.T) {
	seq := seqOf("abcdadac")
	liao := LiaoSOA(seq)
	_, opt := OptimalSOA(seq)
	if got := liao.Cost(seq); got > opt+1 {
		t.Fatalf("Liao cost %d too far above optimum %d", got, opt)
	}
	naive := FirstUse(seq).Cost(seq)
	if got := liao.Cost(seq); got > naive {
		t.Fatalf("Liao cost %d worse than first-use %d", got, naive)
	}
}

func TestLayoutsCoverAllVariables(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	letters := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for trial := 0; trial < 100; trial++ {
		nv := 1 + rng.Intn(8)
		n := 1 + rng.Intn(30)
		seq := make([]string, n)
		for i := range seq {
			seq[i] = letters[rng.Intn(nv)]
		}
		vars := Variables(seq)
		for _, l := range []Layout{FirstUse(seq), LiaoSOA(seq), TieBreakSOA(seq)} {
			if len(l.Order) != len(vars) {
				t.Fatalf("layout %v does not cover %v", l.Order, vars)
			}
			seen := map[string]bool{}
			for _, v := range l.Order {
				if seen[v] {
					t.Fatalf("duplicate %q in layout %v", v, l.Order)
				}
				seen[v] = true
			}
			l.Cost(seq) // must not panic
		}
	}
}

func TestHeuristicsNeverBeatOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	letters := []string{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 80; trial++ {
		nv := 2 + rng.Intn(5) // up to 6 variables: 720 permutations
		n := 2 + rng.Intn(24)
		seq := make([]string, n)
		for i := range seq {
			seq[i] = letters[rng.Intn(nv)]
		}
		_, opt := OptimalSOA(seq)
		for name, l := range map[string]Layout{
			"liao":      LiaoSOA(seq),
			"tie-break": TieBreakSOA(seq),
			"first-use": FirstUse(seq),
		} {
			if c := l.Cost(seq); c < opt {
				t.Fatalf("%s cost %d beats optimum %d for %v", name, c, opt, seq)
			}
		}
	}
}

func TestTieBreakAtLeastAsGoodOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	letters := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	liaoTotal, tieTotal, naiveTotal := 0, 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 10 + rng.Intn(40)
		seq := make([]string, n)
		for i := range seq {
			seq[i] = letters[rng.Intn(len(letters))]
		}
		liaoTotal += LiaoSOA(seq).Cost(seq)
		tieTotal += TieBreakSOA(seq).Cost(seq)
		naiveTotal += FirstUse(seq).Cost(seq)
	}
	if tieTotal > liaoTotal {
		t.Fatalf("tie-break total %d worse than Liao %d", tieTotal, liaoTotal)
	}
	if liaoTotal >= naiveTotal {
		t.Fatalf("Liao total %d not better than first-use %d", liaoTotal, naiveTotal)
	}
}

func TestOptimalSOASmall(t *testing.T) {
	// Two variables always admit a zero-cost layout.
	seq := seqOf("ababab")
	_, cost := OptimalSOA(seq)
	if cost != 0 {
		t.Fatalf("two-variable optimum = %d, want 0", cost)
	}
	// Three variables in a strict triangle access a-b-c-a-b-c...
	// cannot all be pairwise adjacent: at least one transition per
	// round trip costs.
	seq = seqOf("abcabc")
	_, cost = OptimalSOA(seq)
	if cost == 0 {
		t.Fatal("triangle sequence cannot be zero-cost")
	}
}

func TestGOAReducesCostWithMoreRegisters(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	letters := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(20)
		seq := make([]string, n)
		for i := range seq {
			seq[i] = letters[rng.Intn(len(letters))]
		}
		prev := -1
		for k := 1; k <= 4; k++ {
			res, err := GOA(seq, k)
			if err != nil {
				t.Fatal(err)
			}
			if prev >= 0 && res.Cost > prev {
				t.Fatalf("GOA cost rose from %d to %d at k=%d", prev, res.Cost, k)
			}
			prev = res.Cost
			// Groups must partition the variables.
			seen := map[string]bool{}
			for _, g := range res.Groups {
				for _, v := range g.Order {
					if seen[v] {
						t.Fatalf("variable %q in two groups", v)
					}
					seen[v] = true
				}
			}
			for _, v := range Variables(seq) {
				if !seen[v] {
					t.Fatalf("variable %q unassigned", v)
				}
			}
		}
	}
}

func TestGOAOneRegisterMatchesSOA(t *testing.T) {
	seq := seqOf("abcdadacbdbc")
	res, err := GOA(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := TieBreakSOA(seq).Cost(seq)
	if res.Cost != want {
		t.Fatalf("GOA k=1 cost %d, SOA cost %d", res.Cost, want)
	}
}

func TestGOAValidation(t *testing.T) {
	if _, err := GOA(seqOf("ab"), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestGOAEnoughRegistersZeroCost(t *testing.T) {
	// With one register per variable every subsequence is a single
	// variable: zero cost.
	seq := seqOf("abcabc")
	res, err := GOA(seq, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("GOA with k=#vars cost = %d, want 0", res.Cost)
	}
}
