package codegen

import (
	"fmt"

	"dspaddr/internal/dspsim"
	"dspaddr/internal/indexreg"
	"dspaddr/internal/model"
)

// GenerateIndexed lowers an indexed allocation (address registers plus
// index-register values, from indexreg.Optimize) of a single-array
// loop to simulator code. Updates within the modify range ride along
// as immediate post-modifies, updates matching ±(an index value) as
// index post-modifies, and only the remainder pays an explicit ADAR.
func GenerateIndexed(loop model.LoopSpec, res *indexreg.Result, modifyRange int, dataOp dspsim.Opcode) (*Program, error) {
	if !dataOp.IsMemAccess() {
		return nil, fmt.Errorf("codegen: data op %v is not a memory access", dataOp)
	}
	if err := loop.Validate(); err != nil {
		return nil, err
	}
	pats, _ := loop.Patterns()
	if len(pats) != 1 {
		return nil, fmt.Errorf("codegen: indexed generation handles single-array loops, got %d arrays", len(pats))
	}
	pat := pats[0]
	iters := loop.Iterations()
	if iters < 1 {
		return nil, fmt.Errorf("codegen: loop executes no iterations")
	}
	if err := res.Assignment.Validate(pat); err != nil {
		return nil, err
	}

	bases, _ := AutoBases(loop)
	base := bases[pat.Array]
	p := &Program{
		Registers:      res.Assignment.Registers(),
		IndexRegisters: len(res.Values),
		ModifyRange:    modifyRange,
		Loop:           loop,
		Bases:          bases,
	}

	// Preamble: index values, then per-register start addresses.
	for ir, v := range res.Values {
		p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.LDIR, Reg: ir, Imm: v})
	}
	for r, path := range res.Assignment.Paths {
		p.Code = append(p.Code, dspsim.Instruction{
			Op: dspsim.LDAR, Reg: r, Imm: base + loop.From + pat.Offsets[path[0]],
		})
	}
	p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.LDCTR, Imm: iters})
	p.BodyStart = len(p.Code)

	// Per-access step table in program order.
	type step struct {
		reg    int
		mod    int
		idxReg int
		idxNeg bool
		extra  int // explicit ADAR distance, 0 if none
	}
	steps := make([]step, pat.N())
	for r, path := range res.Assignment.Paths {
		for k, acc := range path {
			var dist int
			if k+1 < len(path) {
				dist = pat.Distance(acc, path[k+1])
			} else {
				dist = pat.WrapDistance(acc, path[0])
			}
			st := step{reg: r}
			abs := dist
			if abs < 0 {
				abs = -abs
			}
			switch {
			case model.TransitionCost(dist, modifyRange) == 0:
				st.mod = dist
			case indexOf(res.Values, abs) >= 0:
				st.idxReg = indexOf(res.Values, abs) + 1
				st.idxNeg = dist < 0
			default:
				st.extra = dist
			}
			steps[acc] = st
		}
	}
	for acc, st := range steps {
		p.Code = append(p.Code, dspsim.Instruction{
			Op: accessOp(loop.Accesses[acc], dataOp), Reg: st.reg, Mod: st.mod, IdxReg: st.idxReg, IdxNeg: st.idxNeg,
		})
		if st.extra != 0 {
			p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.ADAR, Reg: st.reg, Imm: st.extra})
		}
	}
	p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.DBNZ, Imm: p.BodyStart})
	p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.HALT})
	return p, nil
}

func indexOf(values []int, v int) int {
	for i, x := range values {
		if x == v {
			return i
		}
	}
	return -1
}
