package codegen

import (
	"math/rand"
	"testing"

	"dspaddr/internal/core"
	"dspaddr/internal/dspsim"
	"dspaddr/internal/model"
)

func paperLoop() model.LoopSpec {
	return model.LoopSpec{
		Var: "i", From: 2, To: 20, Stride: 1,
		Accesses: []model.Access{
			{Array: "A", Offset: 1}, {Array: "A", Offset: 0}, {Array: "A", Offset: 2},
			{Array: "A", Offset: -1}, {Array: "A", Offset: 1}, {Array: "A", Offset: 0},
			{Array: "A", Offset: -2},
		},
	}
}

func multiLoop() model.LoopSpec {
	return model.LoopSpec{
		Var: "i", From: 0, To: 15, Stride: 1,
		Accesses: []model.Access{
			{Array: "x", Offset: 0}, {Array: "h", Offset: 3}, {Array: "x", Offset: 1},
			{Array: "h", Offset: 2}, {Array: "x", Offset: 2}, {Array: "h", Offset: 1},
			{Array: "y", Offset: 0},
		},
	}
}

func allocate(t *testing.T, loop model.LoopSpec, k, m int) *core.LoopResult {
	t.Helper()
	res, err := core.AllocateLoop(loop, core.Config{AGU: model.AGUSpec{Registers: k, ModifyRange: m}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAutoBases(t *testing.T) {
	loop := multiLoop()
	bases, words := AutoBases(loop)
	if len(bases) != 3 {
		t.Fatalf("bases = %v", bases)
	}
	// Every expected address must fall inside [0, words).
	for _, addr := range ExpectedTrace(loop, bases) {
		if addr < 0 || addr >= words {
			t.Fatalf("address %d outside [0,%d)", addr, words)
		}
	}
	// Arrays must not overlap: regions are disjoint by construction;
	// check distinct addresses across arrays for the same index.
	if bases["x"] == bases["h"] || bases["h"] == bases["y"] {
		t.Fatalf("suspicious bases %v", bases)
	}
}

func TestOptimizedPaperLoopVerifies(t *testing.T) {
	loop := paperLoop()
	bases, words := AutoBases(loop)
	for _, k := range []int{1, 2, 4} {
		alloc := allocate(t, loop, k, 1)
		prog, err := GenerateOptimized(alloc, bases, dspsim.ADD)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if err := prog.Verify(words); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
	}
}

func TestNaivePaperLoopVerifies(t *testing.T) {
	loop := paperLoop()
	bases, words := AutoBases(loop)
	prog, err := GenerateNaive(loop, bases, 1, dspsim.ADD)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Verify(words); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizedBeatsNaive(t *testing.T) {
	loop := paperLoop()
	bases, words := AutoBases(loop)
	alloc := allocate(t, loop, 2, 1)
	opt, err := GenerateOptimized(alloc, bases, dspsim.ADD)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := GenerateNaive(loop, bases, 1, dspsim.ADD)
	if err != nil {
		t.Fatal(err)
	}
	if opt.CodeWords() >= naive.CodeWords() {
		t.Fatalf("optimized %d words, naive %d words", opt.CodeWords(), naive.CodeWords())
	}
	mo, err := opt.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	mn, err := naive.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	if mo.Cycles >= mn.Cycles {
		t.Fatalf("optimized %d cycles, naive %d cycles", mo.Cycles, mn.Cycles)
	}
}

func TestMultiArrayLoopVerifies(t *testing.T) {
	loop := multiLoop()
	bases, words := AutoBases(loop)
	for _, k := range []int{3, 4, 6} {
		alloc := allocate(t, loop, k, 1)
		prog, err := GenerateOptimized(alloc, bases, dspsim.ADD)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if err := prog.Verify(words); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
	}
	naive, err := GenerateNaive(loop, bases, 1, dspsim.ADD)
	if err != nil {
		t.Fatal(err)
	}
	if err := naive.Verify(words); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateValidation(t *testing.T) {
	loop := paperLoop()
	bases, _ := AutoBases(loop)
	alloc := allocate(t, loop, 2, 1)
	if _, err := GenerateOptimized(alloc, bases, dspsim.NOP); err == nil {
		t.Fatal("non-memory data op accepted")
	}
	if _, err := GenerateOptimized(alloc, map[string]int{}, dspsim.ADD); err == nil {
		t.Fatal("missing base accepted")
	}
	if _, err := GenerateNaive(loop, map[string]int{}, 1, dspsim.ADD); err == nil {
		t.Fatal("missing base accepted in naive")
	}
	if _, err := GenerateNaive(loop, bases, 1, dspsim.LDAR); err == nil {
		t.Fatal("non-memory data op accepted in naive")
	}
	empty := model.LoopSpec{Var: "i", From: 5, To: 4, Stride: 1, Accesses: loop.Accesses}
	if _, err := GenerateNaive(empty, bases, 1, dspsim.ADD); err == nil {
		t.Fatal("zero-iteration loop accepted")
	}
}

func TestUnitCostVisibleInBodySize(t *testing.T) {
	loop := paperLoop()
	bases, _ := AutoBases(loop)
	// With one register the merged path pays unit costs; each appears
	// as an ADAR in the body, so body words = accesses + unit costs.
	alloc := allocate(t, loop, 1, 1)
	prog, err := GenerateOptimized(alloc, bases, dspsim.ADD)
	if err != nil {
		t.Fatal(err)
	}
	pat := alloc.Arrays[0].Result.Pattern
	wrapCost := alloc.Arrays[0].Result.Assignment.Cost(pat, 1, true)
	// Body = one data op per access, one ADAR per wrap-inclusive unit
	// cost, plus the closing DBNZ.
	if got, want := prog.BodyWords(), len(loop.Accesses)+wrapCost+1; got != want {
		t.Fatalf("body words = %d, want %d (accesses + wrap-inclusive cost + DBNZ)", got, want)
	}
}

func TestExpectedTrace(t *testing.T) {
	loop := model.LoopSpec{
		Var: "i", From: 1, To: 3, Stride: 2,
		Accesses: []model.Access{{Array: "A", Offset: 0}, {Array: "A", Offset: 1}},
	}
	bases := map[string]int{"A": 10}
	got := ExpectedTrace(loop, bases)
	want := []int{11, 12, 13, 14}
	if len(got) != len(want) {
		t.Fatalf("trace = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
}

// Property: for random loops and budgets, optimized and naive programs
// both reproduce the exact source address trace, and in aggregate the
// optimized code is smaller and faster. (Per-instance the optimized
// preamble's extra LDARs can outweigh the body savings on tiny loops,
// so size/speed are asserted over the whole sample.)
func TestRandomLoopsOptimizedVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	arrays := []string{"A", "B", "C"}
	var optWords, naiveWords, optCycles, naiveCycles int
	for trial := 0; trial < 40; trial++ {
		nArr := 1 + rng.Intn(3)
		nAcc := nArr + rng.Intn(10)
		accs := make([]model.Access, nAcc)
		for i := range accs {
			accs[i] = model.Access{
				Array:  arrays[rng.Intn(nArr)],
				Offset: rng.Intn(11) - 5,
			}
		}
		// Ensure every chosen array appears at least once.
		for a := 0; a < nArr; a++ {
			accs[a%nAcc].Array = arrays[a]
		}
		loop := model.LoopSpec{
			Var: "i", From: rng.Intn(4), Stride: 1 + rng.Intn(2),
			Accesses: accs,
		}
		loop.To = loop.From + (3+rng.Intn(10))*loop.Stride
		used := map[string]bool{}
		for _, a := range accs {
			used[a.Array] = true
		}
		k := len(used) + rng.Intn(3)
		m := 1 + rng.Intn(2)

		bases, words := AutoBases(loop)
		alloc := allocate(t, loop, k, m)
		opt, err := GenerateOptimized(alloc, bases, dspsim.ADD)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := opt.Verify(words); err != nil {
			t.Fatalf("trial %d optimized: %v (loop %+v)", trial, err, loop)
		}
		naive, err := GenerateNaive(loop, bases, m, dspsim.ADD)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := naive.Verify(words); err != nil {
			t.Fatalf("trial %d naive: %v (loop %+v)", trial, err, loop)
		}
		mo, err := opt.Run(words)
		if err != nil {
			t.Fatal(err)
		}
		mn, err := naive.Run(words)
		if err != nil {
			t.Fatal(err)
		}
		optWords += opt.CodeWords()
		naiveWords += naive.CodeWords()
		optCycles += mo.Cycles
		naiveCycles += mn.Cycles
	}
	if optWords >= naiveWords {
		t.Fatalf("aggregate optimized code %d words >= naive %d", optWords, naiveWords)
	}
	if optCycles >= naiveCycles {
		t.Fatalf("aggregate optimized %d cycles >= naive %d", optCycles, naiveCycles)
	}
}

func TestWritesEmitStores(t *testing.T) {
	loop := model.LoopSpec{
		Var: "i", From: 1, To: 10, Stride: 1,
		Accesses: []model.Access{
			{Array: "x", Offset: 0},
			{Array: "x", Offset: -1},
			{Array: "y", Offset: 0, Write: true},
		},
	}
	bases, words := AutoBases(loop)
	alloc := allocate(t, loop, 3, 1)
	opt, err := GenerateOptimized(alloc, bases, dspsim.ADD)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := GenerateNaive(loop, bases, 1, dspsim.ADD)
	if err != nil {
		t.Fatal(err)
	}
	for name, prog := range map[string]*Program{"optimized": opt, "naive": naive} {
		sts := 0
		for _, in := range prog.Code {
			if in.Op == dspsim.ST {
				sts++
			}
		}
		if sts != 1 {
			t.Fatalf("%s: %d ST instructions, want 1:\n%s", name, sts, dspsim.Disassemble(prog.Code))
		}
		// Verify now also checks the read/write direction of every
		// trace event.
		if err := prog.Verify(words); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestVerifyCatchesWrongDirection(t *testing.T) {
	loop := model.LoopSpec{
		Var: "i", From: 0, To: 5, Stride: 1,
		Accesses: []model.Access{{Array: "A", Offset: 0, Write: true}},
	}
	bases, words := AutoBases(loop)
	alloc := allocate(t, loop, 1, 1)
	prog, err := GenerateOptimized(alloc, bases, dspsim.ADD)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the store into a load; Verify must notice.
	for i, in := range prog.Code {
		if in.Op == dspsim.ST {
			prog.Code[i].Op = dspsim.LD
		}
	}
	if err := prog.Verify(words); err == nil {
		t.Fatal("Verify accepted a load where the source stores")
	}
}
