// Package codegen lowers address-register allocations to programs for
// the dspsim machine. Two generators matter for the paper's
// experiments:
//
//   - GenerateOptimized emits the loop with the allocator's register
//     assignment: in-range address updates ride along as free
//     post-modifies, only out-of-range updates pay an explicit ADAR.
//   - GenerateNaive models the "regular C compiler" baseline of the
//     paper's Results section: one address register per array and an
//     explicit pointer-arithmetic instruction for every non-zero
//     address update — the AGU's free post-modify is never exploited.
//
// Both generators produce verifiable programs: Program.Verify runs the
// code on the simulator and checks the observed address trace against
// the loop's source-level access sequence.
package codegen

import (
	"fmt"

	"dspaddr/internal/agu"
	"dspaddr/internal/core"
	"dspaddr/internal/dspsim"
	"dspaddr/internal/model"
)

// Program is generated code plus enough metadata to execute and verify
// it.
type Program struct {
	// Code is the instruction stream (preamble, body, loop, HALT).
	Code []dspsim.Instruction
	// BodyStart indexes the first body instruction (the DBNZ target).
	BodyStart int
	// Registers is the number of address registers the code uses.
	Registers int
	// IndexRegisters is the number of index (modify) registers the
	// code uses (zero for the paper's base AGU model).
	IndexRegisters int
	// ModifyRange is the M the code was generated for.
	ModifyRange int
	// Loop is the source loop.
	Loop model.LoopSpec
	// Bases maps each array to its data-memory base address.
	Bases map[string]int
}

// CodeWords returns the program size in instruction words — the
// code-size metric of experiment E3.
func (p *Program) CodeWords() int { return len(p.Code) }

// BodyWords returns the loop-body size in words (everything from
// BodyStart up to and including the DBNZ).
func (p *Program) BodyWords() int { return len(p.Code) - p.BodyStart - 1 }

// AutoBases lays the loop's arrays out back-to-back in data memory,
// each shifted so that every touched address is non-negative. It
// returns the base map and the total memory words needed.
func AutoBases(loop model.LoopSpec) (map[string]int, int) {
	pats, _ := loop.Patterns()
	bases := make(map[string]int, len(pats))
	cursor := 0
	for _, pat := range pats {
		minOff, maxOff := pat.OffsetSpan()
		lo := loop.From + minOff
		hi := loop.To + maxOff
		bases[pat.Array] = cursor - lo
		cursor += hi - lo + 1
	}
	if cursor < 1 {
		cursor = 1
	}
	return bases, cursor
}

// GenerateOptimized emits the loop using the allocator's assignment.
// The dataOp (LD/ADD/MUL) is used for every access; pass dspsim.ADD
// for a MAC-style kernel body.
func GenerateOptimized(alloc *core.LoopResult, bases map[string]int, dataOp dspsim.Opcode) (*Program, error) {
	if !dataOp.IsMemAccess() {
		return nil, fmt.Errorf("codegen: data op %v is not a memory access", dataOp)
	}
	loop := alloc.Loop
	iters := loop.Iterations()
	if iters < 1 {
		return nil, fmt.Errorf("codegen: loop executes no iterations")
	}

	scheds := make([]arraySched, len(alloc.Arrays))
	spec := model.AGUSpec{Registers: alloc.RegistersUsed, ModifyRange: modifyRangeOf(alloc)}
	for ai, aa := range alloc.Arrays {
		base, ok := bases[aa.Result.Pattern.Array]
		if !ok {
			return nil, fmt.Errorf("codegen: no base address for array %q", aa.Result.Pattern.Array)
		}
		localSpec := model.AGUSpec{
			Registers:   aa.Result.Assignment.Registers(),
			ModifyRange: aa.Result.Config.AGU.ModifyRange,
		}
		sched, err := agu.Build(aa.Result.Pattern, aa.Result.Assignment, localSpec, base, loop.From)
		if err != nil {
			return nil, err
		}
		pos := make(map[int]int, len(aa.LoopAccess))
		for k, li := range aa.LoopAccess {
			pos[li] = k
		}
		scheds[ai] = arraySched{sched: sched, globals: aa.GlobalRegisters, patPos: pos}
	}

	p := &Program{
		Registers:   alloc.RegistersUsed,
		ModifyRange: spec.ModifyRange,
		Loop:        loop,
		Bases:       bases,
	}
	for _, as := range scheds {
		for _, in := range as.sched.Preamble {
			p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.LDAR, Reg: as.globals[in.Reg], Imm: in.Value})
		}
	}
	p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.LDCTR, Imm: iters})
	p.BodyStart = len(p.Code)

	for li, acc := range loop.Accesses {
		as, k := findAccess(scheds, li)
		if as == nil {
			return nil, fmt.Errorf("codegen: loop access %d not covered by allocation", li)
		}
		st := as.sched.Steps[k]
		p.Code = append(p.Code, dspsim.Instruction{
			Op:  accessOp(acc, dataOp),
			Reg: as.globals[st.Reg],
			Mod: st.PostModify,
		})
		for _, ex := range st.Extra {
			p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.ADAR, Reg: as.globals[ex.Reg], Imm: ex.Value})
		}
	}
	p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.DBNZ, Imm: p.BodyStart})
	p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.HALT})
	return p, nil
}

// arraySched couples one array's AGU schedule with its global register
// numbering and the loop-access back-map.
type arraySched struct {
	sched   *agu.Schedule
	globals []int
	patPos  map[int]int // loop access index -> pattern position
}

func findAccess(scheds []arraySched, li int) (*arraySched, int) {
	for i := range scheds {
		if k, ok := scheds[i].patPos[li]; ok {
			return &scheds[i], k
		}
	}
	return nil, 0
}

func modifyRangeOf(alloc *core.LoopResult) int {
	if len(alloc.Arrays) == 0 {
		return 0
	}
	return alloc.Arrays[0].Result.Config.AGU.ModifyRange
}

// GenerateNaive emits the baseline code a non-optimizing compiler
// would produce: one dedicated address register per array, with an
// explicit ADAR before using the register whenever the next access
// sits at a different offset, and no use of free post-modify. The
// generated code is address-exact, just slower and bigger.
func GenerateNaive(loop model.LoopSpec, bases map[string]int, modifyRange int, dataOp dspsim.Opcode) (*Program, error) {
	if !dataOp.IsMemAccess() {
		return nil, fmt.Errorf("codegen: data op %v is not a memory access", dataOp)
	}
	if err := loop.Validate(); err != nil {
		return nil, err
	}
	iters := loop.Iterations()
	if iters < 1 {
		return nil, fmt.Errorf("codegen: loop executes no iterations")
	}
	pats, back := loop.Patterns()

	// Per-array register and per-access deltas. The register cycles
	// through the array's offsets; the move before access k is the
	// offset delta from the register's previous position (the wrap
	// delta for the first access, folding the stride advance).
	type arrayState struct {
		reg    int
		patPos map[int]int
		pat    model.Pattern
	}
	states := make([]arrayState, len(pats))
	p := &Program{
		Registers:   len(pats),
		ModifyRange: modifyRange,
		Loop:        loop,
		Bases:       bases,
	}
	for ai, pat := range pats {
		base, ok := bases[pat.Array]
		if !ok {
			return nil, fmt.Errorf("codegen: no base address for array %q", pat.Array)
		}
		pos := make(map[int]int, len(back[ai]))
		for k, li := range back[ai] {
			pos[li] = k
		}
		states[ai] = arrayState{reg: ai, patPos: pos, pat: pat}
		p.Code = append(p.Code, dspsim.Instruction{
			Op: dspsim.LDAR, Reg: ai, Imm: base + loop.From + pat.Offsets[0],
		})
	}
	p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.LDCTR, Imm: iters})
	p.BodyStart = len(p.Code)

	for li, acc := range loop.Accesses {
		var st *arrayState
		var k int
		for i := range states {
			if kk, ok := states[i].patPos[li]; ok {
				st, k = &states[i], kk
				break
			}
		}
		if st == nil {
			return nil, fmt.Errorf("codegen: loop access %d has no array state", li)
		}
		// Move the pointer from its previous position if needed. For
		// k == 0 the preamble (first iteration) and the end-of-body
		// wrap move (subsequent iterations) already positioned it.
		if k > 0 {
			if delta := st.pat.Distance(k-1, k); delta != 0 {
				p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.ADAR, Reg: st.reg, Imm: delta})
			}
		}
		p.Code = append(p.Code, dspsim.Instruction{Op: accessOp(acc, dataOp), Reg: st.reg})
	}
	// Wrap moves: advance every array register to its first offset of
	// the next iteration.
	for ai := range states {
		pat := states[ai].pat
		if delta := pat.WrapDistance(pat.N()-1, 0); delta != 0 {
			p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.ADAR, Reg: ai, Imm: delta})
		}
	}
	p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.DBNZ, Imm: p.BodyStart})
	p.Code = append(p.Code, dspsim.Instruction{Op: dspsim.HALT})
	return p, nil
}

// ExpectedTrace returns the source-level address sequence of the loop:
// iteration-major, program order within an iteration.
func ExpectedTrace(loop model.LoopSpec, bases map[string]int) []int {
	var out []int
	for v := loop.From; v <= loop.To; v += loop.Stride {
		for _, a := range loop.Accesses {
			out = append(out, bases[a.Array]+v+a.Offset)
		}
	}
	return out
}

// Run executes the program on a fresh machine with the given data
// memory size and returns the machine for inspection.
func (p *Program) Run(memWords int) (*dspsim.Machine, error) {
	m, err := dspsim.New(dspsim.Config{
		AddressRegisters: maxInt(p.Registers, 1),
		IndexRegisters:   p.IndexRegisters,
		ModifyRange:      p.ModifyRange,
		MemWords:         memWords,
	})
	if err != nil {
		return nil, err
	}
	budget := 64 + 16*len(p.Code)*maxInt(p.Loop.Iterations(), 1)
	if err := m.Run(p.Code, budget); err != nil {
		return nil, err
	}
	return m, nil
}

// accessOp selects the data operation for an access: stores become ST,
// reads use the caller's dataOp.
func accessOp(acc model.Access, dataOp dspsim.Opcode) dspsim.Opcode {
	if acc.Write {
		return dspsim.ST
	}
	return dataOp
}

// Verify runs the program and checks its memory-access trace — both
// the addresses and the read/write direction — against the source
// loop.
func (p *Program) Verify(memWords int) error {
	m, err := p.Run(memWords)
	if err != nil {
		return err
	}
	want := ExpectedTrace(p.Loop, p.Bases)
	got := m.Trace
	if len(got) != len(want) {
		return fmt.Errorf("codegen: trace has %d accesses, want %d", len(got), len(want))
	}
	nAcc := len(p.Loop.Accesses)
	for i := range want {
		if got[i].Addr != want[i] {
			return fmt.Errorf("codegen: access %d touched address %d, want %d", i, got[i].Addr, want[i])
		}
		if wantWrite := p.Loop.Accesses[i%nAcc].Write; got[i].Write != wantWrite {
			return fmt.Errorf("codegen: access %d write=%v, source says %v", i, got[i].Write, wantWrite)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
