package codegen

import (
	"math/rand"
	"testing"

	"dspaddr/internal/dspsim"
	"dspaddr/internal/indexreg"
	"dspaddr/internal/model"
)

func indexedLoop(offsets []int, from, to int) model.LoopSpec {
	accs := make([]model.Access, len(offsets))
	for i, d := range offsets {
		accs[i] = model.Access{Array: "A", Offset: d}
	}
	return model.LoopSpec{Var: "i", From: from, To: to, Stride: 1, Accesses: accs}
}

func TestGenerateIndexedJumpPattern(t *testing.T) {
	// Jumps of ±5 dominate; one index register makes them free.
	loop := indexedLoop([]int{0, 5, 0, 5}, 0, 19)
	pats, _ := loop.Patterns()
	res, err := indexreg.Optimize(pats[0], model.AGUSpec{Registers: 1, ModifyRange: 1},
		indexreg.Options{IndexRegisters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("indexed cost = %d", res.Cost)
	}
	prog, err := GenerateIndexed(loop, res, 1, dspsim.ADD)
	if err != nil {
		t.Fatal(err)
	}
	_, words := AutoBases(loop)
	if err := prog.Verify(words); err != nil {
		t.Fatal(err)
	}
	// The body's explicit ADARs are exactly the wrap-inclusive indexed
	// cost (the optimizer's intra-only objective was zero, but the
	// hardware still performs the loop-back update of -4).
	adar := 0
	for _, in := range prog.Code[prog.BodyStart:] {
		if in.Op == dspsim.ADAR {
			adar++
		}
	}
	pat := pats[0]
	want := res.Assignment.CostIndexed(pat, 1, res.Values, true)
	if adar != want {
		t.Fatalf("body has %d ADARs, wrap-inclusive cost is %d:\n%s", adar, want, dspsim.Disassemble(prog.Code))
	}
	// All four jump transitions must ride on the index register.
	irMods := 0
	for _, in := range prog.Code[prog.BodyStart:] {
		if in.IdxReg > 0 {
			irMods++
		}
	}
	if irMods != 3 {
		t.Fatalf("expected 3 index-register post-modifies, got %d", irMods)
	}
}

func TestGenerateIndexedBeatsBaseModel(t *testing.T) {
	loop := indexedLoop([]int{0, 7, 0, 13, 0, 7, 0, 13}, 0, 15)
	pats, _ := loop.Patterns()
	spec := model.AGUSpec{Registers: 2, ModifyRange: 1}
	res, err := indexreg.Optimize(pats[0], spec, indexreg.Options{IndexRegisters: 2, Wrap: true})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := GenerateIndexed(loop, res, 1, dspsim.ADD)
	if err != nil {
		t.Fatal(err)
	}
	_, words := AutoBases(loop)
	if err := prog.Verify(words); err != nil {
		t.Fatal(err)
	}
	mi, err := prog.Run(words)
	if err != nil {
		t.Fatal(err)
	}

	// The base-model allocation of the same loop pays explicit ADARs.
	baseRes, err := indexreg.Optimize(pats[0], spec, indexreg.Options{IndexRegisters: 0, Wrap: true})
	if err != nil {
		t.Fatal(err)
	}
	baseProg, err := GenerateIndexed(loop, baseRes, 1, dspsim.ADD)
	if err != nil {
		t.Fatal(err)
	}
	if err := baseProg.Verify(words); err != nil {
		t.Fatal(err)
	}
	mb, err := baseProg.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	if mi.Cycles >= mb.Cycles {
		t.Fatalf("indexed %d cycles not faster than base %d", mi.Cycles, mb.Cycles)
	}
}

func TestGenerateIndexedValidation(t *testing.T) {
	loop := indexedLoop([]int{0, 5}, 0, 9)
	pats, _ := loop.Patterns()
	res, err := indexreg.Optimize(pats[0], model.AGUSpec{Registers: 1, ModifyRange: 1},
		indexreg.Options{IndexRegisters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateIndexed(loop, res, 1, dspsim.NOP); err == nil {
		t.Fatal("non-memory data op accepted")
	}
	multi := loop
	multi.Accesses = append(multi.Accesses, model.Access{Array: "B", Offset: 0})
	if _, err := GenerateIndexed(multi, res, 1, dspsim.ADD); err == nil {
		t.Fatal("multi-array loop accepted")
	}
	empty := loop
	empty.To = empty.From - 1
	if _, err := GenerateIndexed(empty, res, 1, dspsim.ADD); err == nil {
		t.Fatal("zero-iteration loop accepted")
	}
}

// Property: indexed code reproduces the exact source trace for random
// patterns, register budgets and index-register counts.
func TestGenerateIndexedRandomLoopsVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		offs := make([]int, n)
		for i := range offs {
			offs[i] = rng.Intn(31) - 15
		}
		loop := indexedLoop(offs, rng.Intn(3), 10+rng.Intn(10))
		pats, _ := loop.Patterns()
		spec := model.AGUSpec{Registers: 1 + rng.Intn(3), ModifyRange: rng.Intn(2)}
		res, err := indexreg.Optimize(pats[0], spec, indexreg.Options{
			IndexRegisters: rng.Intn(3),
			Wrap:           rng.Intn(2) == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := GenerateIndexed(loop, res, spec.ModifyRange, dspsim.ADD)
		if err != nil {
			t.Fatal(err)
		}
		_, words := AutoBases(loop)
		if err := prog.Verify(words); err != nil {
			t.Fatalf("trial %d: %v (offsets %v, values %v)", trial, err, offs, res.Values)
		}
	}
}
