// Package deadline carries a per-request latency budget across
// process hops. The budget travels as a single header holding the
// milliseconds remaining; every hop computes the residue from its own
// context deadline at send time, so the decrement per hop is exactly
// the time that hop consumed — no clock exchange between processes is
// needed, only each process's monotonic view of its own elapsed time.
//
// The contract:
//
//   - An edge (rcagate, or rcaserve hit directly) parses Header from
//     the request, attaches a context deadline, and from then on the
//     budget is just ctx.Deadline().
//   - A forwarding hop writes Header on the outgoing request from the
//     remaining budget (floor 1ms — a non-positive budget should have
//     been rejected before forwarding).
//   - Work downstream of the context (engine solves, WAL appends) is
//     cancelled by the ordinary ctx plumbing the moment the budget is
//     spent; no component needs to know the header exists.
package deadline

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// Header is the wire carrier of the remaining budget in integral
// milliseconds.
const Header = "X-Deadline-Ms"

// MaxBudget caps the accepted budget so a hostile or buggy client
// cannot pin a context deadline absurdly far out (the engine's own
// JobTimeout still applies underneath regardless).
const MaxBudget = 10 * time.Minute

// FromHeader extracts the budget from h. ok is false when the header
// is absent or unparseable (malformed budgets are ignored, not
// errors: the request simply runs without one). A present,
// non-positive budget returns ok=true with d<=0 — the caller should
// reject with 504 rather than start work it must immediately abandon.
func FromHeader(h http.Header) (d time.Duration, ok bool) {
	raw := h.Get(Header)
	if raw == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, false
	}
	d = time.Duration(ms) * time.Millisecond
	if d > MaxBudget {
		d = MaxBudget
	}
	return d, true
}

// With attaches the budget to ctx as a context deadline. The returned
// context is ctx unchanged when d is non-positive (callers reject
// those before starting work).
func With(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, time.Now().Add(d))
}

// SetHeader writes the remaining budget of ctx onto h for the next
// hop. When ctx carries no deadline the header is left untouched —
// absence of a budget propagates as absence. An exhausted budget is
// clamped to 1ms: by the time a forwarder consults it the decision to
// forward was already made, and a zero header would be dropped as
// malformed by the next hop.
func SetHeader(ctx context.Context, h http.Header) {
	at, ok := ctx.Deadline()
	if !ok {
		return
	}
	ms := time.Until(at).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	h.Set(Header, strconv.FormatInt(ms, 10))
}
