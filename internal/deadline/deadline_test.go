package deadline

import (
	"context"
	"net/http"
	"strconv"
	"testing"
	"time"
)

func TestFromHeader(t *testing.T) {
	cases := []struct {
		raw    string
		want   time.Duration
		wantOK bool
	}{
		{"", 0, false},
		{"abc", 0, false},
		{"12.5", 0, false},
		{"250", 250 * time.Millisecond, true},
		{"0", 0, true},
		{"-40", -40 * time.Millisecond, true},
		{strconv.FormatInt((time.Hour).Milliseconds(), 10), MaxBudget, true},
	}
	for _, c := range cases {
		h := http.Header{}
		if c.raw != "" {
			h.Set(Header, c.raw)
		}
		d, ok := FromHeader(h)
		if ok != c.wantOK || d != c.want {
			t.Errorf("FromHeader(%q) = (%v, %v), want (%v, %v)", c.raw, d, ok, c.want, c.wantOK)
		}
	}
}

func TestWithAttachesDeadline(t *testing.T) {
	ctx, cancel := With(context.Background(), 100*time.Millisecond)
	defer cancel()
	at, ok := ctx.Deadline()
	if !ok {
		t.Fatal("no deadline attached")
	}
	if until := time.Until(at); until <= 0 || until > 100*time.Millisecond {
		t.Fatalf("deadline %v out of range", until)
	}

	// Non-positive budgets leave ctx untouched.
	ctx2, cancel2 := With(context.Background(), 0)
	defer cancel2()
	if _, ok := ctx2.Deadline(); ok {
		t.Fatal("zero budget must not attach a deadline")
	}
}

func TestSetHeaderDecrementsPerHop(t *testing.T) {
	ctx, cancel := With(context.Background(), 200*time.Millisecond)
	defer cancel()
	time.Sleep(20 * time.Millisecond) // the "hop" consumes budget

	h := http.Header{}
	SetHeader(ctx, h)
	d, ok := FromHeader(h)
	if !ok {
		t.Fatal("header not set from deadline ctx")
	}
	if d <= 0 || d > 180*time.Millisecond {
		t.Fatalf("forwarded budget %v should reflect the consumed hop time", d)
	}
}

func TestSetHeaderAbsentWithoutDeadline(t *testing.T) {
	h := http.Header{}
	SetHeader(context.Background(), h)
	if h.Get(Header) != "" {
		t.Fatal("header set despite no ctx deadline")
	}
}

func TestSetHeaderClampsExhaustedBudget(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	h := http.Header{}
	SetHeader(ctx, h)
	if h.Get(Header) != "1" {
		t.Fatalf("exhausted budget forwarded as %q, want clamp to 1", h.Get(Header))
	}
}

func TestBudgetCancelsDerivedWork(t *testing.T) {
	ctx, cancel := With(context.Background(), 30*time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("budget never fired the context")
	}
	if ctx.Err() != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", ctx.Err())
	}
}
