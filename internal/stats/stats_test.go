package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !approx(s.Mean(), 5) {
		t.Fatalf("Mean = %g", s.Mean())
	}
	// Unbiased variance of the classic example is 32/7.
	if !approx(s.Var(), 32.0/7.0) {
		t.Fatalf("Var = %g", s.Var())
	}
	if !approx(s.Min(), 2) || !approx(s.Max(), 9) {
		t.Fatalf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	if !approx(s.Sum(), 40) {
		t.Fatalf("Sum = %g", s.Sum())
	}
}

func TestSampleAddInt(t *testing.T) {
	var s Sample
	s.AddInt(3)
	s.AddInt(5)
	if !approx(s.Mean(), 4) {
		t.Fatalf("Mean = %g", s.Mean())
	}
}

func TestQuantileAndMedian(t *testing.T) {
	var s Sample
	for _, x := range []float64{3, 1, 2} {
		s.Add(x)
	}
	if !approx(s.Median(), 2) {
		t.Fatalf("Median = %g", s.Median())
	}
	if !approx(s.Quantile(0), 1) || !approx(s.Quantile(1), 3) {
		t.Fatal("extreme quantiles wrong")
	}
	if !approx(s.Quantile(0.25), 1.5) {
		t.Fatalf("Q1 = %g", s.Quantile(0.25))
	}
	if !approx(s.Quantile(-1), 1) || !approx(s.Quantile(2), 3) {
		t.Fatal("clamped quantiles wrong")
	}
	var empty Sample
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	var single Sample
	single.Add(42)
	if !approx(single.Quantile(0.5), 42) {
		t.Fatal("single-element quantile wrong")
	}
}

func TestCI95(t *testing.T) {
	var s Sample
	s.Add(1)
	if s.CI95() != 0 {
		t.Fatal("CI95 of single observation should be 0")
	}
	s.Add(3)
	want := 1.96 * s.StdDev() / math.Sqrt(2)
	if !approx(s.CI95(), want) {
		t.Fatalf("CI95 = %g, want %g", s.CI95(), want)
	}
}

func TestValuesCopies(t *testing.T) {
	var s Sample
	s.Add(1)
	v := s.Values()
	v[0] = 99
	if !approx(s.Mean(), 1) {
		t.Fatal("Values leaked internal storage")
	}
}

func TestPercentReduction(t *testing.T) {
	if !approx(PercentReduction(10, 6), 40) {
		t.Fatalf("PercentReduction = %g", PercentReduction(10, 6))
	}
	if PercentReduction(0, 5) != 0 {
		t.Fatal("zero base should yield 0")
	}
	if !approx(PercentReduction(4, 6), -50) {
		t.Fatal("regression should be negative")
	}
}

func TestSpeedup(t *testing.T) {
	if !approx(Speedup(10, 5), 2) {
		t.Fatal("Speedup wrong")
	}
	if !math.IsInf(Speedup(3, 0), 1) {
		t.Fatal("Speedup with zero opt should be +Inf")
	}
	if !approx(Speedup(0, 0), 1) {
		t.Fatal("Speedup 0/0 should be 1")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1.5, 2.5, 9.9, -3, 12}
	h := Histogram(xs, 0, 10, 5)
	if h[0] != 3 { // 0, 0.5, 1.5 and clamped -3 -> bin 0? -3 clamps to 0: 4 total
		// recompute: bins of width 2: [0,2):0,0.5,1.5,-3(clamped) = 4
	}
	want := []int{4, 1, 0, 0, 2} // [0,2):4, [2,4):1, [8,10):9.9 and clamped 12
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", h, want)
		}
	}
	if got := Histogram(xs, 0, 0, 3); got[0] != 0 {
		t.Fatal("degenerate range should count nothing")
	}
	if got := Histogram(xs, 0, 1, 0); len(got) != 0 {
		t.Fatal("zero bins should return empty")
	}
}

func TestSampleMeanMatchesManualComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Sample
	sum := 0.0
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		s.Add(x)
		sum += x
	}
	if !approx(s.Mean(), sum/1000) {
		t.Fatal("mean mismatch")
	}
	// ~99.99% of the mass lies within 4 sigma; CI95 should be small.
	if s.CI95() > 1 {
		t.Fatalf("CI95 unexpectedly large: %g", s.CI95())
	}
}

func TestTableString(t *testing.T) {
	tb := NewTable("T1: demo", "kernel", "naive", "opt", "reduction")
	tb.AddRowf("fir", 10, 6, 40.0)
	tb.AddRow("iir", "8", "8", "0.00")
	out := tb.String()
	if !strings.Contains(out, "T1: demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "kernel") || !strings.Contains(out, "40.00") {
		t.Errorf("missing cells in:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	tb.AddRow("x", "y", "overflow")
	out := tb.String()
	if strings.Contains(out, "overflow") {
		t.Error("over-wide row should be truncated")
	}
	if !strings.Contains(out, "only") {
		t.Error("short row should be padded")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("My title", "x", "y")
	tb.AddRowf(1, 2)
	md := tb.Markdown()
	for _, want := range []string{"**My title**", "| x | y |", "|---|---|", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
