package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text result tables in the style used by
// EXPERIMENTS.md: a header row, a rule, and left-aligned first column
// with right-aligned numeric columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row of pre-formatted cells. Short rows are padded
// with empty cells; long rows are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with %v, floats with two
// decimals.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.2f", x)
		case float32:
			cells[i] = fmt.Sprintf("%.2f", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	total += 2 * (len(widths) - 1)
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.headers)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}
