// Package stats provides the small descriptive-statistics and
// text-table substrate used by every experiment harness: sample
// summaries (mean, standard deviation, median, confidence intervals),
// histograms, and aligned plain-text table rendering for the
// paper-style result tables.
package stats

import (
	"math"
	"sort"
)

// Sample accumulates float64 observations and answers descriptive
// queries. The zero value is an empty sample ready to use.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddInt appends an integer observation.
func (s *Sample) AddInt(x int) { s.Add(float64(x)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	total := 0.0
	for _, x := range s.xs {
		total += x
	}
	return total
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.xs))
}

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Sample) Var() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	min := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	max := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation
// between order statistics, or 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// CI95 returns the half-width of the normal-approximation 95 %
// confidence interval of the mean (1.96 * stderr), or 0 with fewer than
// two observations.
func (s *Sample) CI95() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(len(s.xs)))
}

// Values returns a copy of the raw observations.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.xs...) }

// PercentReduction returns 100*(base-opt)/base, the improvement of opt
// over base; it returns 0 when base is 0 (no cost to reduce).
func PercentReduction(base, opt float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - opt) / base
}

// Speedup returns base/opt, treating opt==0 as a speedup of +Inf when
// base>0 and 1 when both are zero.
func Speedup(base, opt float64) float64 {
	if opt == 0 {
		if base == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return base / opt
}

// Histogram counts observations into uniform-width bins over [lo, hi).
// Observations outside the range are clamped into the end bins.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	counts := make([]int, bins)
	if bins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}
