// LatencyRing: the bounded ring of recent duration observations
// behind every serving-layer percentile estimate (engine solve
// latency, job queue wait, job run time). One implementation here
// instead of a copy per collector.

package stats

import (
	"sync"
	"time"
)

// LatencyWindow is how many recent observations a LatencyRing
// retains; older ones are overwritten in place.
const LatencyWindow = 4096

// LatencyRing is a concurrency-safe fixed-size ring of recent
// latency observations. The zero value is ready to use. Observe is
// O(1) and cheap enough for hot paths; QuantilesMicros sorts a copy
// of the window and is meant for snapshot/export paths.
type LatencyRing struct {
	mu  sync.Mutex
	buf [LatencyWindow]time.Duration
	n   int // total observed; ring position is n % LatencyWindow
}

// Observe records one latency.
func (r *LatencyRing) Observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.n%LatencyWindow] = d
	r.n++
	r.mu.Unlock()
}

// QuantilesMicros estimates the given quantiles (in [0,1]) over the
// retained window, in microseconds. With no observations every
// estimate is 0.
func (r *LatencyRing) QuantilesMicros(qs ...float64) []float64 {
	r.mu.Lock()
	n := r.n
	if n > LatencyWindow {
		n = LatencyWindow
	}
	var sample Sample
	for i := 0; i < n; i++ {
		sample.Add(float64(r.buf[i]) / float64(time.Microsecond))
	}
	r.mu.Unlock()

	out := make([]float64, len(qs))
	if sample.N() == 0 {
		return out
	}
	for i, q := range qs {
		out[i] = sample.Quantile(q)
	}
	return out
}
