// The gateway HTTP surface: the full rcaserve /v1 API terminated at
// one address and routed over the fleet by ring position.
//
// Routing:
//
//	POST /v1/allocate      by the job's engine.RouteKey; idempotent
//	                       (pure compute), so a transport failure
//	                       retries once on the next up replica.
//	POST /v1/batch         split per job by route key into per-node
//	                       sub-batches, results stitched back in
//	                       request order.
//	POST /v1/jobs          the whole submission routes by a combined
//	                       digest of its jobs (atomic all-or-none
//	                       admission is preserved); never retried —
//	                       a died connection may already have
//	                       admitted the batch.
//	GET  /v1/jobs          fan-out to every up node, merged newest-
//	                       first by submission time.
//	GET/DELETE /v1/jobs/{id}  by the ID's node tag (jobs.NodeOf) —
//	                       ownership follows the admitting node, not
//	                       the ring, so rehashes never orphan a job.
//	GET  /v1/stats         fleet aggregate + per-node raw stats.
//	GET  /metrics          gateway families + node families summed
//	                       across the fleet by sample identity.
//	GET  /healthz          200 while any node is up.
//	GET  /v1/cluster       ring + member health introspection.
//
// Status passthrough: a node's complete HTTP response — including a
// draining node's 503 and its Retry-After — is copied to the client
// verbatim. The gateway synthesizes its own 503 (Retry-After: 1) only
// when every replica for a key is down or unreachable.

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dspaddr/internal/deadline"
	"dspaddr/internal/engine"
	"dspaddr/internal/jobs"
	"dspaddr/internal/model"
	"dspaddr/internal/obs"
)

// maxBodyBytes mirrors the node-side request cap.
const maxBodyBytes = 1 << 20

// Node-side list bounds, mirrored for the fan-out window.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// Options configures a Gateway.
type Options struct {
	// Fleet is the member set (required). The gateway takes ownership:
	// Close stops its health checker.
	Fleet *Fleet
	// Version is the build identity for /healthz and /v1/stats.
	Version string
	// ForwardTimeout bounds one forwarded exchange (0 = 30s).
	ForwardTimeout time.Duration
	// Hedge tunes hedged reads on idempotent GETs (zero values =
	// defaults; set Hedge.Disabled to turn hedging off). Breaker
	// tuning lives on the Fleet's FleetOptions.
	Hedge HedgeOptions
	// Logger receives forward failures and node transitions; nil
	// discards.
	Logger *slog.Logger
}

// Gateway is the thin routing layer. Create with New, serve
// Handler(), release with Close.
type Gateway struct {
	fleet    *Fleet
	fwd      *forwarder
	version  string
	started  time.Time
	requests atomic.Uint64
	logger   *slog.Logger

	httpReqs    *obs.CounterVec
	httpHist    *obs.HistogramVec
	fwdReqs     *obs.CounterVec
	fwdHist     *obs.HistogramVec
	retries     *obs.CounterVec
	nodeUp      *obs.GaugeVec
	transitions *obs.CounterVec

	breakerState       *obs.GaugeVec
	breakerTransitions *obs.CounterVec
	hedges             *obs.CounterVec
	hedgeWins          *obs.CounterVec
	hedgesInFlight     atomic.Int64
	deadlineExpired    atomic.Uint64
}

// New wires the gateway and starts the fleet's health checker.
func New(opts Options) (*Gateway, error) {
	if opts.Fleet == nil {
		return nil, fmt.Errorf("cluster: Options.Fleet is required")
	}
	if opts.Version == "" {
		opts.Version = "unknown"
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	g := &Gateway{
		fleet:   opts.Fleet,
		version: opts.Version,
		started: time.Now(),
		logger:  logger,
		httpReqs: obs.NewCounterVec("rcagate_http_route_requests_total",
			"Gateway HTTP requests served, by route and status.", []string{"route", "status"}),
		httpHist: obs.NewHistogramVec("rcagate_http_request_duration_seconds",
			"Gateway HTTP handler latency, by route and status.", []string{"route", "status"}, nil),
		fwdReqs: obs.NewCounterVec("rcagate_forward_requests_total",
			"Requests forwarded to nodes, by node and status (status 0 = transport failure).", []string{"node", "status"}),
		fwdHist: obs.NewHistogramVec("rcagate_forward_duration_seconds",
			"Forwarded exchange latency, by node.", []string{"node"}, nil),
		retries: obs.NewCounterVec("rcagate_forward_retries_total",
			"Idempotent forwards retried on the next replica, by node tried.", []string{"node"}),
		nodeUp: obs.NewGaugeVec("rcagate_node_up",
			"Whether the node is currently marked up (1) or down (0).", []string{"node"}),
		transitions: obs.NewCounterVec("rcagate_node_transitions_total",
			"Node health transitions, by node and direction.", []string{"node", "to"}),
		breakerState: obs.NewGaugeVec("rcagate_breaker_state",
			"Per-node circuit breaker position: 0 closed, 1 open, 2 half-open.", []string{"node"}),
		breakerTransitions: obs.NewCounterVec("rcagate_breaker_transitions_total",
			"Circuit breaker state changes, by node and destination state.", []string{"node", "to"}),
		hedges: obs.NewCounterVec("rcagate_hedges_total",
			"Hedge requests launched for idempotent reads, by node.", []string{"node"}),
		hedgeWins: obs.NewCounterVec("rcagate_hedge_wins_total",
			"Hedged reads decided, by which request answered first.", []string{"winner"}),
	}
	// The fleet calls back on every transition; seed the gauge so
	// every member exports a sample from the first scrape.
	g.fleet.opts.OnTransition = func(m *Member, up bool) {
		v := int64(0)
		dir := "down"
		if up {
			v, dir = 1, "up"
		}
		g.nodeUp.Set(v, m.Name)
		g.transitions.Add(1, m.Name, dir)
		g.logger.Warn("node transition", "node", m.Name, "up", up)
	}
	g.fleet.opts.OnBreakerTransition = func(m *Member, to BreakerState) {
		g.breakerState.Set(int64(to), m.Name)
		g.breakerTransitions.Add(1, m.Name, to.String())
		g.logger.Warn("breaker transition", "node", m.Name, "to", to.String())
	}
	for _, m := range g.fleet.Members() {
		g.nodeUp.Set(1, m.Name)
		g.breakerState.Set(int64(BreakerClosed), m.Name)
	}
	g.fwd = newForwarder(g.fleet, opts.ForwardTimeout, opts.Hedge,
		func(m *Member, status int, dur time.Duration, retry bool) {
			g.fwdReqs.Add(1, m.Name, strconv.Itoa(status))
			g.fwdHist.Observe(dur, m.Name)
			if retry {
				g.retries.Add(1, m.Name)
			}
		},
		func(ev hedgeEvent, m *Member) {
			switch ev {
			case hedgeLaunched:
				g.hedges.Add(1, m.Name)
				g.hedgesInFlight.Add(1)
			case hedgeSettled:
				g.hedgesInFlight.Add(-1)
			case hedgeWinPrimary:
				g.hedgeWins.Add(1, "primary")
			case hedgeWinHedge:
				g.hedgeWins.Add(1, "hedge")
			}
		})
	g.fleet.Start()
	return g, nil
}

// HedgesInFlight reports hedge requests currently outstanding — the
// leak oracle for hedged reads: it must return to zero once traffic
// stops (a stuck loser would pin it, and its goroutine and socket,
// forever).
func (g *Gateway) HedgesInFlight() int64 { return g.hedgesInFlight.Load() }

// Close stops the health checker and releases pooled connections.
func (g *Gateway) Close() {
	g.fleet.Stop()
	g.fwd.close()
}

// Handler returns the gateway routing table wrapped in the
// instrumentation middleware.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/allocate", g.handleAllocate)
	mux.HandleFunc("/v1/batch", g.handleBatch)
	mux.HandleFunc("/v1/jobs", g.handleJobsCollection)
	mux.HandleFunc("/v1/jobs/", g.handleJobByID)
	mux.HandleFunc("/v1/stats", g.handleStats)
	mux.HandleFunc("/v1/cluster", g.handleCluster)
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/healthz", g.handleHealthz)
	return g.instrument(mux)
}

// instrument adopts or generates the request's trace ID, normalizes
// it onto the INCOMING headers (so every forwarded hop carries the
// gateway's ID — the node honors a well-formed X-Request-Id instead
// of regenerating), echoes it to the client, attaches the client's
// deadline budget (X-Deadline-Ms) as a context deadline — answering
// 504 outright when the budget arrives already spent — and counts
// the request.
func (g *Gateway) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = fmt.Sprintf("g-%016x", rand.Uint64())
		}
		r.Header.Set("X-Request-Id", id)
		w.Header().Set("X-Request-Id", id)
		budget, hasBudget := deadline.FromHeader(r.Header)
		if hasBudget && budget > 0 {
			ctx, cancel := deadline.With(r.Context(), budget)
			defer cancel()
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		if hasBudget && budget <= 0 {
			g.deadlineExpired.Add(1)
			writeError(sw, http.StatusGatewayTimeout, "deadline budget already spent")
		} else {
			next.ServeHTTP(sw, r)
		}
		dur := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		route := routeOf(r.URL.Path)
		statusText := strconv.Itoa(status)
		g.requests.Add(1)
		g.httpReqs.Add(1, route, statusText)
		g.httpHist.Observe(dur, route, statusText)
		if status >= http.StatusInternalServerError {
			g.logger.Warn("gateway request failed",
				"traceId", id, "route", route, "status", status, "durMs", dur.Milliseconds())
		}
	})
}

// statusWriter captures the response status for labeling.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// validRequestID mirrors the node's bound on echoed IDs.
func validRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= ' ' || c > '~' || c == '"' {
			return false
		}
	}
	return true
}

// routeOf bounds the by-route label set.
func routeOf(path string) string {
	switch path {
	case "/v1/allocate", "/v1/batch", "/v1/jobs", "/v1/stats", "/v1/cluster",
		"/metrics", "/healthz":
		return path
	}
	if strings.HasPrefix(path, "/v1/jobs/") {
		return "/v1/jobs/{id}"
	}
	return "other"
}

// ---- wire mirrors ---------------------------------------------------
//
// The gateway decodes just enough of the node wire shapes to validate
// and route; the ORIGINAL body bytes are what gets forwarded, so the
// owning node remains the source of truth for semantics. The mirrors
// match cmd/rcaserve field for field and are decoded strictly, so the
// gateway rejects exactly what a node would reject.

type patternWire struct {
	Array   string `json:"array,omitempty"`
	Stride  int    `json:"stride,omitempty"`
	Offsets []int  `json:"offsets"`
}

type aguWire struct {
	Registers   int `json:"registers"`
	ModifyRange int `json:"modifyRange"`
}

type jobWire struct {
	Pattern  *patternWire   `json:"pattern,omitempty"`
	Loop     string         `json:"loop,omitempty"`
	Bindings map[string]int `json:"bindings,omitempty"`
	AGU      aguWire        `json:"agu"`
	Wrap     bool           `json:"wrap,omitempty"`
	Strategy string         `json:"strategy,omitempty"`
}

type batchWire struct {
	Jobs []json.RawMessage `json:"jobs"`
}

type submitWire struct {
	jobWire
	Jobs     []jobWire `json:"jobs,omitempty"`
	Priority int       `json:"priority,omitempty"`
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone — nothing left to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// readBody buffers the capped request body.
func readBody(r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
}

// decodeStrict mirrors the node's decodeBody: unknown fields and
// trailing garbage are errors.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(any)); !errors.Is(err, io.EOF) {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// ---- routing keys ---------------------------------------------------

// routeKeyOf places one job on the ring. Pattern jobs use the
// engine's canonical routing digest, so translated twins land on (and
// warm) one node's cache. Loop jobs are digested textually — source,
// bindings, parameters — which is stricter than the node-side
// equivalence (two differently-written loops with equal access
// patterns route apart) but never splits a repeated campaign.
func routeKeyOf(j *jobWire) uint64 {
	if j.Pattern != nil {
		stride := j.Pattern.Stride
		if stride == 0 {
			stride = 1
		}
		return engine.RouteKey(engine.Request{
			Pattern: model.Pattern{
				Array:   j.Pattern.Array,
				Stride:  stride,
				Offsets: j.Pattern.Offsets,
			},
			AGU:            model.AGUSpec{Registers: j.AGU.Registers, ModifyRange: j.AGU.ModifyRange},
			InterIteration: j.Wrap,
			Strategy:       j.Strategy,
		})
	}
	h := hashString(j.Loop)
	if len(j.Bindings) > 0 {
		names := make([]string, 0, len(j.Bindings))
		for k := range j.Bindings {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			h = mix64(h ^ hashString(k) ^ mix64(uint64(int64(j.Bindings[k]))))
		}
	}
	h = mix64(h ^ uint64(int64(j.AGU.Registers))<<32 ^ uint64(int64(j.AGU.ModifyRange)))
	if j.Wrap {
		h = mix64(h ^ 0x77726170) // "wrap"
	}
	strat := j.Strategy
	if strat == "greedy" {
		strat = "" // same solve, same route (mirrors the cache key)
	}
	if strat != "" {
		h = mix64(h ^ hashString(strat))
	}
	return h
}

// combinedKey folds a whole submission into one key so atomic
// admission is preserved: every job of one POST /v1/jobs lands on one
// node. Single-job submissions share their key with the identical
// /v1/allocate request, co-locating a campaign's sync and async
// halves.
func combinedKey(entries []jobWire) uint64 {
	if len(entries) == 1 {
		return routeKeyOf(&entries[0])
	}
	h := uint64(0x636c7573746572) // "cluster"
	for i := range entries {
		h = mix64(h ^ routeKeyOf(&entries[i]))
	}
	return h
}

// ---- response passthrough -------------------------------------------

// copyResponse writes a node's buffered response to the client
// verbatim: status, body, Content-Type — and Retry-After, so node
// back-pressure (429 queue-full, 503 draining) reaches the client
// with the NODE's timing, never a gateway-synthesized one.
func copyResponse(w http.ResponseWriter, resp *nodeResponse) {
	if ct := resp.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body) //nolint:errcheck // client gone — nothing left to do
}

// writeUnavailable is the gateway's own 503: every replica for the
// key was down or unreachable. Retry-After is short — mark-down plus
// rehash happens within the health-check window.
func (g *Gateway) writeUnavailable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "no node available: %v", err)
}

// writeForwardError classifies a failed forward for the client: a
// spent deadline budget is the CLIENT's 504 (the fleet did nothing
// wrong), a vanished client gets nothing (the write would land on a
// closed connection), and anything else is the fleet-level 503.
func (g *Gateway) writeForwardError(w http.ResponseWriter, r *http.Request, err error) {
	if ctxErr := r.Context().Err(); ctxErr != nil {
		if errors.Is(ctxErr, context.DeadlineExceeded) {
			g.deadlineExpired.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline budget spent: %v", err)
		}
		return
	}
	g.writeUnavailable(w, err)
}

// ---- /v1/allocate ----------------------------------------------------

func (g *Gateway) handleAllocate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var job jobWire
	if err := decodeStrict(body, &job); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Pure compute is idempotent: retry once on the next replica.
	resp, err := g.fwd.routed(r.Context(), routeKeyOf(&job), http.MethodPost, "/v1/allocate", body, r.Header, true)
	if err != nil {
		g.writeForwardError(w, r, err)
		return
	}
	copyResponse(w, resp)
}

// ---- /v1/batch -------------------------------------------------------

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var batch batchWire
	if err := decodeStrict(body, &batch); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(batch.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	// Route every job; group request indices by destination node.
	type group struct {
		member  *Member
		indices []int
	}
	groups := map[string]*group{}
	order := []string{}
	for i, raw := range batch.Jobs {
		var job jobWire
		if err := decodeStrict(raw, &job); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: job %d: %v", i, err)
			return
		}
		m := g.fleet.FirstRoutable(routeKeyOf(&job))
		if m == nil {
			g.writeUnavailable(w, ErrAllReplicasDown)
			return
		}
		gr := groups[m.Name]
		if gr == nil {
			gr = &group{member: m}
			groups[m.Name] = gr
			order = append(order, m.Name)
		}
		gr.indices = append(gr.indices, i)
	}

	// Single destination: the whole batch forwards unchanged, and the
	// node's answer (including its elapsed time) is the client's.
	if len(groups) == 1 {
		resp, err := g.fwd.do(r.Context(), groups[order[0]].member, http.MethodPost, "/v1/batch", body, r.Header, false)
		if err != nil {
			g.writeUnavailable(w, err)
			return
		}
		copyResponse(w, resp)
		return
	}

	// Fan the sub-batches out concurrently, stitch results back into
	// request order. A node that fails mid-flight yields inline
	// per-job errors — batch semantics stay "200 once the body
	// parses", exactly like node-local per-job failures.
	start := time.Now()
	results := make([]json.RawMessage, len(batch.Jobs))
	var wg sync.WaitGroup
	for _, name := range order {
		gr := groups[name]
		wg.Add(1)
		go func(gr *group) {
			defer wg.Done()
			sub := batchWire{Jobs: make([]json.RawMessage, len(gr.indices))}
			for i, idx := range gr.indices {
				sub.Jobs[i] = batch.Jobs[idx]
			}
			payload, err := json.Marshal(sub)
			if err != nil {
				g.fillBatchErrors(results, gr.indices, fmt.Sprintf("encode sub-batch: %v", err))
				return
			}
			resp, err := g.fwd.do(r.Context(), gr.member, http.MethodPost, "/v1/batch", payload, r.Header, false)
			if err != nil {
				g.fillBatchErrors(results, gr.indices, fmt.Sprintf("node %s unreachable: %v", gr.member.Name, err))
				return
			}
			if resp.status != http.StatusOK {
				g.fillBatchErrors(results, gr.indices, fmt.Sprintf("node %s answered %d", gr.member.Name, resp.status))
				return
			}
			var out struct {
				Results []json.RawMessage `json:"results"`
			}
			if err := json.Unmarshal(resp.body, &out); err != nil || len(out.Results) != len(gr.indices) {
				g.fillBatchErrors(results, gr.indices, fmt.Sprintf("node %s answered malformed batch response", gr.member.Name))
				return
			}
			for i, idx := range gr.indices {
				results[idx] = out.Results[i]
			}
		}(gr)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, struct {
		Results       []json.RawMessage `json:"results"`
		ElapsedMicros int64             `json:"elapsedMicros"`
	}{results, time.Since(start).Microseconds()})
}

// fillBatchErrors stamps an inline error result on each index.
func (g *Gateway) fillBatchErrors(results []json.RawMessage, indices []int, msg string) {
	raw, _ := json.Marshal(struct { //nolint:errcheck // marshal of a string cannot fail
		Error string `json:"error"`
	}{msg})
	for _, idx := range indices {
		results[idx] = raw
	}
}

// ---- /v1/jobs --------------------------------------------------------

func (g *Gateway) handleJobsCollection(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		g.handleJobSubmit(w, r)
	case http.MethodGet:
		g.handleJobList(w, r)
	default:
		writeError(w, http.StatusMethodNotAllowed, "POST or GET only")
	}
}

func (g *Gateway) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var sub submitWire
	if err := decodeStrict(body, &sub); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	single := sub.Pattern != nil || sub.Loop != ""
	if single && len(sub.Jobs) > 0 {
		writeError(w, http.StatusBadRequest, "body mixes an inline job with a jobs array; pick one form")
		return
	}
	entries := sub.Jobs
	if single {
		entries = []jobWire{sub.jobWire}
	}
	if len(entries) == 0 {
		writeError(w, http.StatusBadRequest, "submission has no jobs")
		return
	}
	m := g.fleet.FirstRoutable(combinedKey(entries))
	if m == nil {
		g.writeUnavailable(w, ErrAllReplicasDown)
		return
	}
	// Submission is NOT idempotent: once bytes left for the node the
	// batch may be admitted, so a transport failure is surfaced as a
	// 503 for the client to decide — never silently retried, and
	// never hedged.
	resp, err := g.fwd.do(r.Context(), m, http.MethodPost, "/v1/jobs", body, r.Header, false)
	if err != nil {
		if r.Context().Err() != nil {
			g.writeForwardError(w, r, err)
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"node %s unreachable mid-submit (admission unknown): %v", m.Name, err)
		return
	}
	copyResponse(w, resp)
}

// handleJobList fans GET /v1/jobs out to every up node and merges the
// pages newest-first by submission time (each node lists its own jobs
// newest-first; the gateway merge keeps that global order).
func (g *Gateway) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := q.Get("state")
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil || offset < 0 {
		writeError(w, http.StatusBadRequest, "bad offset")
		return
	}
	limit, err := queryInt(q.Get("limit"), defaultListLimit)
	if err != nil || limit <= 0 {
		writeError(w, http.StatusBadRequest, "bad limit")
		return
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}
	// Each node must return its full window up to offset+limit so the
	// merged slice is exact (a job at global offset 40 may be any
	// node's 0th).
	window := offset + limit
	if window > maxListLimit {
		window = maxListLimit
	}
	path := fmt.Sprintf("/v1/jobs?offset=0&limit=%d", window)
	if state != "" {
		path += "&state=" + urlQueryEscape(state)
	}

	type nodePage struct {
		jobs  []json.RawMessage
		total int
		err   error
	}
	up := g.upMembers()
	if len(up) == 0 {
		g.writeUnavailable(w, ErrAllReplicasDown)
		return
	}
	pages := make([]nodePage, len(up))
	var wg sync.WaitGroup
	for i, m := range up {
		wg.Add(1)
		go func(i int, m *Member) {
			defer wg.Done()
			resp, err := g.fwd.do(r.Context(), m, http.MethodGet, path, nil, r.Header, false)
			if err != nil {
				pages[i].err = err
				return
			}
			if resp.status != http.StatusOK {
				// A node that rejects the query (bad state value) speaks
				// for the fleet: the parameters are uniform.
				pages[i].err = fmt.Errorf("node %s answered %d", m.Name, resp.status)
				if resp.status == http.StatusBadRequest {
					pages[i].err = errBadListQuery
				}
				return
			}
			var out struct {
				Jobs  []json.RawMessage `json:"jobs"`
				Total int               `json:"total"`
			}
			if err := json.Unmarshal(resp.body, &out); err != nil {
				pages[i].err = err
				return
			}
			pages[i].jobs, pages[i].total = out.Jobs, out.Total
		}(i, m)
	}
	wg.Wait()

	type entry struct {
		raw         json.RawMessage
		submittedAt time.Time
		id          string
	}
	var merged []entry
	total := 0
	answered := 0
	for i := range pages {
		if pages[i].err == errBadListQuery {
			writeError(w, http.StatusBadRequest, "unknown state %q", state)
			return
		}
		if pages[i].err != nil {
			continue
		}
		answered++
		total += pages[i].total
		for _, raw := range pages[i].jobs {
			var probe struct {
				ID          string    `json:"id"`
				SubmittedAt time.Time `json:"submittedAt"`
			}
			if err := json.Unmarshal(raw, &probe); err != nil {
				continue
			}
			merged = append(merged, entry{raw: raw, submittedAt: probe.SubmittedAt, id: probe.ID})
		}
	}
	if answered == 0 {
		g.writeUnavailable(w, ErrAllReplicasDown)
		return
	}
	sort.Slice(merged, func(a, b int) bool {
		if !merged[a].submittedAt.Equal(merged[b].submittedAt) {
			return merged[a].submittedAt.After(merged[b].submittedAt)
		}
		return merged[a].id > merged[b].id
	})
	if offset > len(merged) {
		merged = nil
	} else {
		merged = merged[offset:]
	}
	if len(merged) > limit {
		merged = merged[:limit]
	}
	out := make([]json.RawMessage, len(merged))
	for i := range merged {
		out[i] = merged[i].raw
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs   []json.RawMessage `json:"jobs"`
		Total  int               `json:"total"`
		Offset int               `json:"offset"`
		Limit  int               `json:"limit"`
	}{out, total, offset, limit})
}

// errBadListQuery marks a node-side 400 on the list fan-out.
var errBadListQuery = errors.New("cluster: bad list query")

// handleJobByID routes GET/DELETE /v1/jobs/{id} by the ID's node tag:
// the job lives exactly where it was admitted, whatever the ring says
// now — so a rehash after a mark-down never orphans existing jobs.
func (g *Gateway) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodDelete {
		writeError(w, http.StatusMethodNotAllowed, "GET or DELETE only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "no such resource")
		return
	}
	tag := jobs.NodeOf(id)
	if tag == "" {
		writeError(w, http.StatusNotFound, "job %s not found (no node tag)", id)
		return
	}
	m := g.fleet.Member(tag)
	if m == nil {
		writeError(w, http.StatusNotFound, "job %s not found (unknown node %q)", id, tag)
		return
	}
	if !m.Up() {
		// The job's state lives only on its owner; it may return (WAL
		// replay) — tell the client to retry rather than lying 404.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "job %s: owning node %s is down", id, tag)
		return
	}
	var resp *nodeResponse
	var err error
	if r.Method == http.MethodGet {
		// Status polls are idempotent and latency-sensitive: hedge a
		// second copy to the SAME owner after the hedge delay (the job
		// is single-homed, so another member would answer an honest but
		// wrong 404). DELETE mutates — never hedged.
		resp, err = g.fwd.hedged(r.Context(), m, http.MethodGet, "/v1/jobs/"+id, r.Header)
	} else {
		resp, err = g.fwd.do(r.Context(), m, r.Method, "/v1/jobs/"+id, nil, r.Header, false)
	}
	if err != nil {
		if r.Context().Err() != nil {
			g.writeForwardError(w, r, err)
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "job %s: owning node %s unreachable: %v", id, tag, err)
		return
	}
	copyResponse(w, resp)
}

// ---- /v1/stats -------------------------------------------------------

// nodeStatsSubset is the slice of a node's /v1/stats the fleet
// aggregate sums (field names match cmd/rcaserve's statsJSON).
type nodeStatsSubset struct {
	Jobs        uint64 `json:"jobs"`
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	Deduped     uint64 `json:"deduped"`
	Errors      uint64 `json:"errors"`
	Timeouts    uint64 `json:"timeouts"`
	AsyncJobs   struct {
		Submitted uint64 `json:"submitted"`
		Rejected  uint64 `json:"rejected"`
		Done      uint64 `json:"done"`
		Failed    uint64 `json:"failed"`
		TimedOut  uint64 `json:"timedOut"`
		Canceled  uint64 `json:"canceled"`
		Recovered uint64 `json:"recovered"`
		Depth     int    `json:"queueDepth"`
		Running   int    `json:"running"`
	} `json:"asyncJobs"`
}

// fleetStatsJSON is the summed cross-node view.
type fleetStatsJSON struct {
	Nodes          int     `json:"nodes"`
	UpNodes        int     `json:"upNodes"`
	Jobs           uint64  `json:"jobs"`
	CacheHits      uint64  `json:"cacheHits"`
	CacheMisses    uint64  `json:"cacheMisses"`
	Deduped        uint64  `json:"deduped"`
	Errors         uint64  `json:"errors"`
	Timeouts       uint64  `json:"timeouts"`
	HitRate        float64 `json:"hitRate"`
	AsyncSubmitted uint64  `json:"asyncSubmitted"`
	AsyncDone      uint64  `json:"asyncDone"`
	AsyncFailed    uint64  `json:"asyncFailed"`
	AsyncTimedOut  uint64  `json:"asyncTimedOut"`
	AsyncCanceled  uint64  `json:"asyncCanceled"`
	AsyncRecovered uint64  `json:"asyncRecovered"`
	AsyncQueued    int     `json:"asyncQueued"`
	AsyncRunning   int     `json:"asyncRunning"`
}

// gatewayStatsJSON is the gateway's own corner of /v1/stats.
type gatewayStatsJSON struct {
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	HTTPRequests  uint64  `json:"httpRequests"`
	// Breakers maps node name to circuit position ("closed", "open",
	// "half-open").
	Breakers map[string]string `json:"breakers"`
	// HedgesInFlight is the current count of outstanding hedge
	// requests (leak oracle: zero at rest).
	HedgesInFlight int64 `json:"hedgesInFlight"`
	// DeadlineExpired counts requests answered 504 because their
	// X-Deadline-Ms budget ran out at or inside the gateway.
	DeadlineExpired uint64 `json:"deadlineExpired"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	up := g.upMembers()
	perNode := make([]json.RawMessage, len(up))
	var wg sync.WaitGroup
	for i, m := range up {
		wg.Add(1)
		go func(i int, m *Member) {
			defer wg.Done()
			resp, err := g.fwd.hedged(r.Context(), m, http.MethodGet, "/v1/stats", r.Header)
			if err == nil && resp.status == http.StatusOK {
				perNode[i] = resp.body
			}
		}(i, m)
	}
	wg.Wait()

	fleet := fleetStatsJSON{Nodes: len(g.fleet.Members()), UpNodes: g.fleet.UpCount()}
	nodes := make(map[string]json.RawMessage, len(up))
	for i, m := range up {
		if perNode[i] == nil {
			continue
		}
		nodes[m.Name] = perNode[i]
		var s nodeStatsSubset
		if err := json.Unmarshal(perNode[i], &s); err != nil {
			continue
		}
		fleet.Jobs += s.Jobs
		fleet.CacheHits += s.CacheHits
		fleet.CacheMisses += s.CacheMisses
		fleet.Deduped += s.Deduped
		fleet.Errors += s.Errors
		fleet.Timeouts += s.Timeouts
		fleet.AsyncSubmitted += s.AsyncJobs.Submitted
		fleet.AsyncDone += s.AsyncJobs.Done
		fleet.AsyncFailed += s.AsyncJobs.Failed
		fleet.AsyncTimedOut += s.AsyncJobs.TimedOut
		fleet.AsyncCanceled += s.AsyncJobs.Canceled
		fleet.AsyncRecovered += s.AsyncJobs.Recovered
		fleet.AsyncQueued += s.AsyncJobs.Depth
		fleet.AsyncRunning += s.AsyncJobs.Running
	}
	if looked := fleet.CacheHits + fleet.CacheMisses; looked > 0 {
		fleet.HitRate = float64(fleet.CacheHits) / float64(looked)
	}
	breakers := make(map[string]string, len(g.fleet.Members()))
	for _, m := range g.fleet.Members() {
		breakers[m.Name] = m.BreakerState().String()
	}
	writeJSON(w, http.StatusOK, struct {
		Fleet   fleetStatsJSON             `json:"fleet"`
		Nodes   map[string]json.RawMessage `json:"nodes"`
		Gateway gatewayStatsJSON           `json:"gateway"`
	}{
		Fleet: fleet,
		Nodes: nodes,
		Gateway: gatewayStatsJSON{
			Version:         g.version,
			UptimeSeconds:   time.Since(g.started).Seconds(),
			HTTPRequests:    g.requests.Load(),
			Breakers:        breakers,
			HedgesInFlight:  g.hedgesInFlight.Load(),
			DeadlineExpired: g.deadlineExpired.Load(),
		},
	})
}

// ---- /metrics --------------------------------------------------------

// handleMetrics renders the gateway's own families followed by the
// node families summed across the fleet: samples with identical name
// and label set add up (counters and histogram buckets aggregate
// correctly; summed gauges read as fleet totals).
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.httpReqs.Expose(w)
	g.httpHist.Expose(w)
	g.fwdReqs.Expose(w)
	g.fwdHist.Expose(w)
	g.retries.Expose(w)
	g.nodeUp.Expose(w)
	g.transitions.Expose(w)
	g.breakerState.Expose(w)
	g.breakerTransitions.Expose(w)
	g.hedges.Expose(w)
	g.hedgeWins.Expose(w)
	fmt.Fprintf(w, "# HELP rcagate_nodes Configured fleet size.\n# TYPE rcagate_nodes gauge\nrcagate_nodes %d\n", len(g.fleet.Members()))
	fmt.Fprintf(w, "# HELP rcagate_nodes_up Nodes currently marked up.\n# TYPE rcagate_nodes_up gauge\nrcagate_nodes_up %d\n", g.fleet.UpCount())
	fmt.Fprintf(w, "# HELP rcagate_uptime_seconds Gateway process uptime.\n# TYPE rcagate_uptime_seconds gauge\nrcagate_uptime_seconds %g\n", time.Since(g.started).Seconds())
	fmt.Fprintf(w, "# HELP rcagate_hedges_in_flight Hedge requests currently outstanding.\n# TYPE rcagate_hedges_in_flight gauge\nrcagate_hedges_in_flight %d\n", g.hedgesInFlight.Load())
	fmt.Fprintf(w, "# HELP rcagate_deadline_expired_total Requests answered 504 for a spent deadline budget.\n# TYPE rcagate_deadline_expired_total counter\nrcagate_deadline_expired_total %d\n", g.deadlineExpired.Load())

	up := g.upMembers()
	scrapes := make([]map[string]*obs.Family, len(up))
	var wg sync.WaitGroup
	for i, m := range up {
		wg.Add(1)
		go func(i int, m *Member) {
			defer wg.Done()
			resp, err := g.fwd.hedged(r.Context(), m, http.MethodGet, "/metrics", r.Header)
			if err != nil || resp.status != http.StatusOK {
				return
			}
			fams, err := obs.ParseExposition(strings.NewReader(string(resp.body)))
			if err != nil {
				g.logger.Warn("unparseable node exposition", "node", m.Name, "err", err)
				return
			}
			scrapes[i] = fams
		}(i, m)
	}
	wg.Wait()
	writeAggregated(w, scrapes)
}

// writeAggregated merges the scraped families and renders them.
func writeAggregated(w io.Writer, scrapes []map[string]*obs.Family) {
	type key struct {
		sample string
		labels string
	}
	merged := map[string]*obs.Family{}
	order := map[string][]key{}
	values := map[string]map[key]float64{}
	for _, fams := range scrapes {
		if fams == nil {
			continue
		}
		for name, f := range fams {
			mf := merged[name]
			if mf == nil {
				mf = &obs.Family{Name: name, Help: f.Help, Type: f.Type}
				merged[name] = mf
				values[name] = map[key]float64{}
			}
			for _, s := range f.Samples {
				k := key{sample: s.Name, labels: renderSortedLabels(s.Labels)}
				if _, seen := values[name][k]; !seen {
					order[name] = append(order[name], k)
				}
				values[name][k] += s.Value
			}
		}
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := merged[name]
		fmt.Fprintf(w, "# HELP %s %s\n", name, f.Help)
		if f.Type != "" {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, f.Type)
		}
		for _, k := range order[name] {
			v := values[name][k]
			if k.labels == "" {
				fmt.Fprintf(w, "%s %s\n", k.sample, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				fmt.Fprintf(w, "%s{%s} %s\n", k.sample, k.labels, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
	}
}

// renderSortedLabels renders a label map deterministically.
func renderSortedLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(labels))
	for k := range labels {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// ---- /healthz and /v1/cluster ---------------------------------------

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "GET or HEAD only")
		return
	}
	up, total := g.fleet.UpCount(), len(g.fleet.Members())
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if up == 0 {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded\nrcagate %s\nnodes 0/%d\n", g.version, total)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok\nrcagate %s\nnodes %d/%d\n", g.version, up, total)
}

// clusterJSON is the GET /v1/cluster introspection body.
type clusterJSON struct {
	Nodes []clusterNodeJSON `json:"nodes"`
	// RingPoints is the total vnode count across members.
	RingPoints int `json:"ringPoints"`
}

type clusterNodeJSON struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	Up    bool   `json:"up"`
	Fails int    `json:"consecutiveFailures"`
	// DownSince is when the node was marked down; absent while up.
	DownSince *time.Time `json:"downSince,omitempty"`
	// Breaker is the node's circuit position, with its rolling outcome
	// window occupancy.
	Breaker        string `json:"breaker"`
	BreakerSamples int    `json:"breakerSamples"`
	BreakerFailed  int    `json:"breakerFailed"`
}

func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	out := clusterJSON{RingPoints: g.fleet.Ring().Size()}
	for _, m := range g.fleet.Members() {
		n := clusterNodeJSON{Name: m.Name, URL: m.URL, Up: m.Up(), Fails: m.Fails()}
		if ds := m.DownSince(); !ds.IsZero() {
			n.DownSince = &ds
		}
		n.Breaker = m.BreakerState().String()
		n.BreakerSamples, n.BreakerFailed = m.BreakerWindow()
		out.Nodes = append(out.Nodes, n)
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- small helpers ---------------------------------------------------

func (g *Gateway) upMembers() []*Member {
	out := make([]*Member, 0, len(g.fleet.Members()))
	for _, m := range g.fleet.Members() {
		if m.Up() {
			out = append(out, m)
		}
	}
	return out
}

func queryInt(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}

func urlQueryEscape(s string) string {
	// Job states are lowercase words; escape defensively anyway.
	return strings.NewReplacer("&", "%26", "=", "%3D", "#", "%23", " ", "%20", "+", "%2B").Replace(s)
}
