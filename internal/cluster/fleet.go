// Static-config membership with active health checking.
//
// The member list is fixed at construction (operator config); only
// liveness changes at runtime. A background checker probes every
// member's /healthz each interval; FailThreshold consecutive failures
// mark a member down, one success marks it back up. The forwarding
// layer also reports its transport outcomes into the same counters
// (passive checking), so a crashed node is usually down after the
// first failed forward plus one failed probe rather than only after
// the probe loop notices on its own.

package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Health-check defaults (FleetOptions zero values).
const (
	DefaultProbeInterval = 500 * time.Millisecond
	DefaultProbeTimeout  = time.Second
	DefaultFailThreshold = 2
)

// Member is one node of the fleet. Name and URL are immutable; the
// liveness state is owned by the fleet's health machinery.
type Member struct {
	// Name is the node identity — it must equal the node's -node-id so
	// job-ID tags (jobs.NodeOf) resolve back to this member.
	Name string
	// URL is the node's base URL, e.g. "http://127.0.0.1:8081".
	URL string

	up    atomic.Bool
	fails atomic.Int32 // consecutive failures since the last success
	// downSince records when the member was last marked down (unix
	// nanos), 0 while up. Informational (the /v1/cluster surface).
	downSince atomic.Int64

	// brk is this member's circuit breaker, built by NewFleet. It is
	// orthogonal to up/down liveness: the prober owns liveness, the
	// breaker owns routability of live-but-slow members.
	brk *breaker
}

// Up reports current liveness.
func (m *Member) Up() bool { return m.up.Load() }

// Fails returns the consecutive-failure count.
func (m *Member) Fails() int { return int(m.fails.Load()) }

// DownSince returns when the member was marked down (zero time while
// up).
func (m *Member) DownSince() time.Time {
	ns := m.downSince.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// BreakerState reports the member's circuit position (closed for a
// member without a breaker, e.g. one built by a bare Member literal
// in tests).
func (m *Member) BreakerState() BreakerState {
	if m.brk == nil {
		return BreakerClosed
	}
	st, _, _ := m.brk.snapshot()
	return st
}

// BreakerWindow reports the rolling outcome window: how many samples
// it holds and how many of them were failures.
func (m *Member) BreakerWindow() (samples, failed int) {
	if m.brk == nil {
		return 0, 0
	}
	_, samples, failed = m.brk.snapshot()
	return samples, failed
}

// FleetOptions configures membership and health checking.
type FleetOptions struct {
	// VirtualNodes per member on the ring (0 = DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval is the health-check cadence (0 = 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (0 = 1s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive failures (probe or
	// forward) mark a member down (0 = 2).
	FailThreshold int
	// ProbeClient issues the probes; nil builds a minimal dedicated
	// client so probes never queue behind forwarded traffic.
	ProbeClient *http.Client
	// OnTransition, when non-nil, is called after every mark-down and
	// mark-up (concurrently; must be cheap). The gateway points it at
	// its metrics.
	OnTransition func(m *Member, up bool)
	// Breaker tunes the per-member circuit breakers (zero values =
	// defaults; set Breaker.Disabled to turn them off).
	Breaker BreakerOptions
	// OnBreakerTransition, when non-nil, is called on every breaker
	// state change (concurrently, possibly under the breaker's lock;
	// must be cheap and non-reentrant).
	OnBreakerTransition func(m *Member, to BreakerState)
}

// Fleet is the member set plus ring plus health checker.
type Fleet struct {
	members []*Member
	byName  map[string]*Member
	ring    *Ring
	opts    FleetOptions
	probe   *http.Client

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// ParseMembers parses the -nodes flag grammar:
// "name1=http://host:port,name2=http://host:port". Names must be the
// nodes' -node-id values.
func ParseMembers(spec string) ([]Member, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty node list")
	}
	var out []Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rawURL, ok := strings.Cut(part, "=")
		if !ok || name == "" || rawURL == "" {
			return nil, fmt.Errorf("cluster: bad node entry %q (want name=url)", part)
		}
		u, err := url.Parse(rawURL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad node URL %q", rawURL)
		}
		out = append(out, Member{Name: name, URL: strings.TrimRight(rawURL, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty node list")
	}
	return out, nil
}

// NewFleet builds the fleet and its ring. Members start up — the
// static config is trusted until a probe or forward says otherwise —
// and the first probe round runs immediately on Start. The caller
// must Stop the fleet to release the checker.
func NewFleet(members []Member, opts FleetOptions) (*Fleet, error) {
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = DefaultProbeInterval
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = DefaultProbeTimeout
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = DefaultFailThreshold
	}
	names := make([]string, len(members))
	for i := range members {
		names[i] = members[i].Name
	}
	ring, err := NewRing(names, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		members: make([]*Member, len(members)),
		byName:  make(map[string]*Member, len(members)),
		ring:    ring,
		opts:    opts,
		probe:   opts.ProbeClient,
		stop:    make(chan struct{}),
	}
	if f.probe == nil {
		f.probe = &http.Client{
			Timeout: opts.ProbeTimeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 1,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	for i := range members {
		m := &Member{Name: members[i].Name, URL: members[i].URL}
		m.up.Store(true)
		// The hook is read through f.opts at fire time, so a gateway
		// that installs OnBreakerTransition after NewFleet still hears
		// every transition.
		m.brk = newBreaker(opts.Breaker, func(to BreakerState) {
			if f.opts.OnBreakerTransition != nil {
				f.opts.OnBreakerTransition(m, to)
			}
		})
		f.members[i] = m
		f.byName[m.Name] = m
	}
	return f, nil
}

// Ring exposes the underlying hash ring (read-only).
func (f *Fleet) Ring() *Ring { return f.ring }

// Members returns the member set in config order.
func (f *Fleet) Members() []*Member { return f.members }

// Member resolves a name (a job-ID tag) to its member, nil if
// unknown.
func (f *Fleet) Member(name string) *Member { return f.byName[name] }

// UpCount returns how many members are currently up.
func (f *Fleet) UpCount() int {
	n := 0
	for _, m := range f.members {
		if m.Up() {
			n++
		}
	}
	return n
}

// Replicas returns the members in ring preference order for the key:
// the owner first, then its successors. Liveness is not filtered here
// — callers walk the sequence skipping down members, which IS the
// deterministic rehash (a downed owner's keys land on its successor).
func (f *Fleet) Replicas(key uint64) []*Member {
	seq := f.ring.Sequence(key)
	out := make([]*Member, len(seq))
	for i, idx := range seq {
		out[i] = f.members[idx]
	}
	return out
}

// FirstUp returns the first up member of the key's replica sequence,
// nil when every replica is down (the fleet-level 503 case).
func (f *Fleet) FirstUp(key uint64) *Member {
	for _, m := range f.Replicas(key) {
		if m.Up() {
			return m
		}
	}
	return nil
}

// FirstRoutable is FirstUp with the circuit breakers consulted: the
// first up member whose breaker admits a request now. When every up
// member's breaker refuses, routing fails OPEN — the first up member
// is returned regardless, because an all-open breaker set must
// degrade to plain liveness routing, never synthesize a fleet outage
// the nodes themselves aren't having. Returns nil only when every
// replica is down.
func (f *Fleet) FirstRoutable(key uint64) *Member {
	now := time.Now()
	var fallback *Member
	for _, m := range f.Replicas(key) {
		if !m.Up() {
			continue
		}
		if fallback == nil {
			fallback = m
		}
		if m.brk.allow(now) {
			return m
		}
	}
	return fallback
}

// ReportSuccess resets the member's failure run and marks it up.
// Called by probes and by the forwarder on every completed exchange.
func (f *Fleet) ReportSuccess(m *Member) {
	m.fails.Store(0)
	if m.up.CompareAndSwap(false, true) {
		m.downSince.Store(0)
		if f.opts.OnTransition != nil {
			f.opts.OnTransition(m, true)
		}
	}
}

// ReportFailure counts one failed exchange and marks the member down
// once the run reaches the threshold.
func (f *Fleet) ReportFailure(m *Member) {
	if int(m.fails.Add(1)) < f.opts.FailThreshold {
		return
	}
	if m.up.CompareAndSwap(true, false) {
		m.downSince.Store(time.Now().UnixNano())
		if f.opts.OnTransition != nil {
			f.opts.OnTransition(m, false)
		}
	}
}

// Start launches the health checker: one probe round immediately,
// then one per interval until Stop.
func (f *Fleet) Start() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.probeAll()
		t := time.NewTicker(f.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				f.probeAll()
			}
		}
	}()
}

// Stop halts the checker and waits for in-flight probes.
func (f *Fleet) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// probeAll probes every member concurrently and applies the results.
func (f *Fleet) probeAll() {
	var wg sync.WaitGroup
	for _, m := range f.members {
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			if f.probeOne(m) {
				f.ReportSuccess(m)
			} else {
				f.ReportFailure(m)
			}
		}(m)
	}
	wg.Wait()
}

// probeOne is one GET /healthz; any 200 is healthy.
func (f *Fleet) probeOne(m *Member) bool {
	req, err := http.NewRequest(http.MethodGet, m.URL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := f.probe.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	return resp.StatusCode == http.StatusOK
}
