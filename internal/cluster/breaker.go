// Per-node circuit breakers: the gray-failure guard the health prober
// cannot be. A node that is slow-but-alive keeps answering /healthz
// inside the probe timeout, so the fleet keeps it "up" while every
// forwarded request eats hundreds of milliseconds. The breaker watches
// what the prober cannot: the rolling outcome window of real forwarded
// traffic — error rate AND a latency quantile — and ejects the node
// from routing the moment either crosses its threshold.
//
// State machine:
//
//	closed ──(window trips: err-rate ≥ ErrRate or
//	          latency quantile ≥ LatencyThreshold)──▶ open
//	open ──(OpenFor elapsed)──▶ half-open
//	half-open ──(CloseAfter consecutive fast successes)──▶ closed
//	half-open ──(any failure or slow success)──▶ open (timer restarts)
//
// Half-open admits a trickle: at most one routed request per
// HalfOpenEvery, so a still-sick node sees O(4/s) probes instead of
// its full key range. Routing fails OPEN overall — when every up
// replica's breaker refuses, the forwarder ignores breakers rather
// than synthesize an outage the nodes themselves aren't having.
//
// A slow SUCCESS counts against a half-open breaker: recovery means
// fast answers, not just 2xx ones — otherwise a node still serving
// 300ms responses would flap closed/open for the duration of its
// gray period.

package cluster

import (
	"sort"
	"sync"
	"time"
)

// BreakerState is the circuit position. The numeric values are the
// rcagate_breaker_state gauge encoding.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker defaults (BreakerOptions zero values).
const (
	DefaultBreakerWindow           = 32
	DefaultBreakerMinSamples       = 8
	DefaultBreakerErrRate          = 0.5
	DefaultBreakerLatencyQuantile  = 0.9
	DefaultBreakerLatencyThreshold = 250 * time.Millisecond
	DefaultBreakerOpenFor          = 2 * time.Second
	DefaultBreakerHalfOpenEvery    = 250 * time.Millisecond
	DefaultBreakerCloseAfter       = 3
)

// BreakerOptions tunes the per-node circuit breakers.
type BreakerOptions struct {
	// Disabled turns the breakers off entirely: every Allow admits,
	// nothing ever trips.
	Disabled bool
	// Window is the rolling outcome-ring size per node (0 = 32).
	Window int
	// MinSamples gates tripping: fewer outcomes in the window than
	// this and the breaker stays closed regardless (0 = 8).
	MinSamples int
	// ErrRate trips the breaker when the window's failure fraction
	// reaches it (0 = 0.5). Failure = transport error or 5xx.
	ErrRate float64
	// LatencyQuantile and LatencyThreshold trip the breaker when the
	// window's duration quantile reaches the threshold — the
	// slow-not-dead signal (0 = q0.9 at 250ms). Threshold < 0 disables
	// the latency trip.
	LatencyQuantile  float64
	LatencyThreshold time.Duration
	// OpenFor is how long an open breaker refuses before half-opening
	// (0 = 2s).
	OpenFor time.Duration
	// HalfOpenEvery is the half-open trickle: at most one routed
	// request admitted per interval (0 = 250ms).
	HalfOpenEvery time.Duration
	// CloseAfter is how many consecutive fast successes close a
	// half-open breaker (0 = 3).
	CloseAfter int
}

// withDefaults fills zero fields.
func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Window <= 0 {
		o.Window = DefaultBreakerWindow
	}
	if o.MinSamples <= 0 {
		o.MinSamples = DefaultBreakerMinSamples
	}
	if o.ErrRate <= 0 {
		o.ErrRate = DefaultBreakerErrRate
	}
	if o.LatencyQuantile <= 0 {
		o.LatencyQuantile = DefaultBreakerLatencyQuantile
	}
	if o.LatencyThreshold == 0 {
		o.LatencyThreshold = DefaultBreakerLatencyThreshold
	}
	if o.OpenFor <= 0 {
		o.OpenFor = DefaultBreakerOpenFor
	}
	if o.HalfOpenEvery <= 0 {
		o.HalfOpenEvery = DefaultBreakerHalfOpenEvery
	}
	if o.CloseAfter <= 0 {
		o.CloseAfter = DefaultBreakerCloseAfter
	}
	return o
}

// breaker is one member's circuit. All state sits behind one mutex;
// the hot path (closed-state allow) is a lock, a compare and an
// unlock, and record is a ring push plus a bounded-window evaluation.
type breaker struct {
	opts BreakerOptions
	// onTransition fires (outside the breaker's own critical section
	// is NOT guaranteed — keep it cheap and non-reentrant) on every
	// state change. Set once at construction.
	onTransition func(to BreakerState)

	mu       sync.Mutex
	state    BreakerState
	openedAt time.Time // valid while open
	// lastProbe is the last half-open admission (zero right after the
	// open→half-open flip so the first probe goes immediately).
	lastProbe time.Time
	// successes counts consecutive fast successes while half-open.
	successes int

	// rolling outcome ring (closed state only).
	durs  []time.Duration
	fails []bool
	n     int // total recorded (ring index = n % Window)

	// scratch for the quantile sort, reused under mu.
	sorted []time.Duration
}

func newBreaker(opts BreakerOptions, onTransition func(BreakerState)) *breaker {
	opts = opts.withDefaults()
	return &breaker{
		opts:         opts,
		onTransition: onTransition,
		durs:         make([]time.Duration, opts.Window),
		fails:        make([]bool, opts.Window),
		sorted:       make([]time.Duration, 0, opts.Window),
	}
}

// transition flips state and notifies.
func (b *breaker) transition(to BreakerState) {
	b.state = to
	if b.onTransition != nil {
		b.onTransition(to)
	}
}

// allow reports whether a routed request may go to this member now.
// closed always admits; open admits nothing until OpenFor has elapsed
// (then flips to half-open); half-open admits the trickle — at most
// one request per HalfOpenEvery.
func (b *breaker) allow(now time.Time) bool {
	if b == nil || b.opts.Disabled {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.opts.OpenFor {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.successes = 0
		b.lastProbe = now
		return true
	default: // half-open
		if now.Sub(b.lastProbe) < b.opts.HalfOpenEvery {
			return false
		}
		b.lastProbe = now
		return true
	}
}

// record feeds one forwarded outcome (ok = complete response with
// status < 500) into the breaker. In the closed state it lands in the
// rolling window and may trip the circuit; half-open it drives the
// close/reopen decision; open it is a stale in-flight straggler and
// is dropped.
func (b *breaker) record(ok bool, dur time.Duration, now time.Time) {
	if b == nil || b.opts.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		return
	case BreakerHalfOpen:
		fastOK := ok && (b.opts.LatencyThreshold < 0 || dur <= b.opts.LatencyThreshold)
		if !fastOK {
			b.transition(BreakerOpen)
			b.openedAt = now
			return
		}
		if b.successes++; b.successes >= b.opts.CloseAfter {
			b.transition(BreakerClosed)
			b.n = 0 // forget the sick window
		}
		return
	}
	// Closed: push into the ring, then evaluate.
	idx := b.n % b.opts.Window
	b.durs[idx], b.fails[idx] = dur, !ok
	b.n++
	samples := b.n
	if samples > b.opts.Window {
		samples = b.opts.Window
	}
	if samples < b.opts.MinSamples {
		return
	}
	failed := 0
	for i := 0; i < samples; i++ {
		if b.fails[i] {
			failed++
		}
	}
	trip := float64(failed)/float64(samples) >= b.opts.ErrRate
	if !trip && b.opts.LatencyThreshold >= 0 {
		b.sorted = append(b.sorted[:0], b.durs[:samples]...)
		sort.Slice(b.sorted, func(i, j int) bool { return b.sorted[i] < b.sorted[j] })
		qi := int(float64(samples) * b.opts.LatencyQuantile)
		if qi >= samples {
			qi = samples - 1
		}
		trip = b.sorted[qi] >= b.opts.LatencyThreshold
	}
	if trip {
		b.transition(BreakerOpen)
		b.openedAt = now
	}
}

// snapshot returns the current state and window occupancy for the
// introspection surfaces.
func (b *breaker) snapshot() (state BreakerState, samples, failed int) {
	if b == nil {
		return BreakerClosed, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	samples = b.n
	if samples > b.opts.Window {
		samples = b.opts.Window
	}
	for i := 0; i < samples; i++ {
		if b.fails[i] {
			failed++
		}
	}
	return b.state, samples, failed
}
