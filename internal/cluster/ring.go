// Package cluster is the multi-node subsystem behind cmd/rcagate: a
// consistent-hash ring of rcaserve nodes, static-config membership
// with active health checking, and an HTTP forwarding layer with
// bounded per-node connection pools.
//
// Requests are placed on the ring by the engine's canonical routing
// digest (engine.RouteKey), so two requests the result cache would
// answer from one entry land on one node and reuse its warm cache.
// Membership is a fixed operator-supplied list; liveness is dynamic —
// a health checker probes every node's /healthz and marks nodes down
// after a configurable run of failures, at which point their key
// range deterministically rehashes to the ring successor (lookups
// simply skip down nodes in ring order), and back up on the first
// successful probe.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the vnode count per member when
// FleetOptions.VirtualNodes is zero. 128 points per node keeps the
// load skew across members within ~15% (asserted by the seeded
// distribution test) while the full ring stays small enough to walk.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring: every member contributes
// vnodes points derived only from its name, so the ring is identical
// across gateway restarts and across gateways — a key routes to the
// same owner everywhere, forever, unless membership itself changes.
// Removing one member moves only the keys it owned (its points
// vanish; every other point is untouched).
type Ring struct {
	names  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int32
}

// NewRing builds the ring over the member names. Names must be unique
// and non-empty; vnodes <= 0 selects DefaultVirtualNodes.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(names))
	r := &Ring{
		names:  append([]string(nil), names...),
		points: make([]ringPoint, 0, len(names)*vnodes),
	}
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", name)
		}
		seen[name] = true
		base := hashString(name)
		for v := 0; v < vnodes; v++ {
			// Each vnode point re-mixes the name hash with the vnode
			// index through the full-avalanche finalizer, so points are
			// spread independently rather than clustered per member.
			ph := mix64(base ^ mix64(uint64(v)*0x9e3779b97f4a7c15+0xc2b2ae3d27d4eb4f))
			r.points = append(r.points, ringPoint{hash: ph, node: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A 64-bit point collision is vanishingly unlikely; break the
		// tie by node index so the sort (and thus ownership) stays
		// deterministic regardless.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Nodes returns the member names in construction order.
func (r *Ring) Nodes() []string { return r.names }

// Size returns the total point count.
func (r *Ring) Size() int { return len(r.points) }

// Owner returns the index (into Nodes) of the member owning the key:
// the node of the first ring point at or clockwise after the key.
func (r *Ring) Owner(key uint64) int {
	return int(r.points[r.successor(key)].node)
}

// successor finds the first point index with hash >= key, wrapping.
func (r *Ring) successor(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Sequence returns every member index in ring order starting at the
// key's owner, each exactly once — the replica preference order. A
// caller skipping down members over this sequence implements the
// deterministic rehash: the first up entry is the effective owner.
func (r *Ring) Sequence(key uint64) []int {
	out := make([]int, 0, len(r.names))
	seen := make([]bool, len(r.names))
	start := r.successor(key)
	for i := 0; i < len(r.points) && len(out) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, int(p.node))
		}
	}
	return out
}

// mix64 is the splitmix64 finalizer (same full-avalanche mixer the
// engine's canonical key digest uses).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString folds a string through FNV-1a and the finalizer.
func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}
