package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeNode is a scriptable stand-in for one rcaserve process.
type fakeNode struct {
	name string
	srv  *httptest.Server

	mu        sync.Mutex
	allocates int
	submits   int
	lastReqID string
	// handler overrides the default scripted behavior when non-nil.
	handler func(w http.ResponseWriter, r *http.Request) bool
}

func newFakeNode(name string) *fakeNode {
	n := &fakeNode{name: name}
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		n.lastReqID = r.Header.Get("X-Request-Id")
		h := n.handler
		n.mu.Unlock()
		if h != nil && h(w, r) {
			return
		}
		switch {
		case r.URL.Path == "/healthz":
			fmt.Fprintf(w, "ok\nrcaserve test\nnode %s\n", name)
		case r.URL.Path == "/v1/allocate":
			n.mu.Lock()
			n.allocates++
			n.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"results":[],"node":%q}`, name)
		case r.URL.Path == "/v1/batch":
			var in struct {
				Jobs []json.RawMessage `json:"jobs"`
			}
			body, _ := io.ReadAll(r.Body)
			json.Unmarshal(body, &in) //nolint:errcheck // scripted test node
			results := make([]string, len(in.Jobs))
			for i := range results {
				results[i] = fmt.Sprintf(`{"node":%q}`, name)
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"results":[%s],"elapsedMicros":1}`, strings.Join(results, ","))
		case r.URL.Path == "/v1/jobs" && r.Method == http.MethodPost:
			n.mu.Lock()
			n.submits++
			n.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"id":"j-%s-abcd0123-00000001"}`, name)
		case strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
			id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"id":%q,"state":"done","node":%q}`, id, name)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	return n
}

func (n *fakeNode) counts() (allocates, submits int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.allocates, n.submits
}

func (n *fakeNode) requestID() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastReqID
}

// newTestGateway stands a gateway in front of the fake nodes. Probes
// are slowed to a crawl so tests control liveness by hand.
func newTestGateway(t *testing.T, nodes ...*fakeNode) (*Gateway, *httptest.Server) {
	t.Helper()
	members := make([]Member, len(nodes))
	for i, n := range nodes {
		members[i] = Member{Name: n.name, URL: n.srv.URL}
	}
	fleet, err := NewFleet(members, FleetOptions{
		ProbeInterval: time.Hour, // hand-driven liveness
		FailThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := New(Options{Fleet: fleet, Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(func() { srv.Close(); gw.Close() })
	return gw, srv
}

const allocBody = `{"pattern":{"offsets":[1,0,2,-1,1,0,-2]},"agu":{"registers":1,"modifyRange":1}}`

// TestGatewayAllocateStickiness asserts one campaign always lands on
// one node: 20 identical requests, exactly one node sees them all.
func TestGatewayAllocateStickiness(t *testing.T) {
	a, b, c := newFakeNode("n1"), newFakeNode("n2"), newFakeNode("n3")
	defer a.srv.Close()
	defer b.srv.Close()
	defer c.srv.Close()
	_, srv := newTestGateway(t, a, b, c)

	for i := 0; i < 20; i++ {
		resp, err := http.Post(srv.URL+"/v1/allocate", "application/json", strings.NewReader(allocBody))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("allocate %d: status %d", i, resp.StatusCode)
		}
	}
	counts := []int{}
	hot := 0
	for _, n := range []*fakeNode{a, b, c} {
		al, _ := n.counts()
		counts = append(counts, al)
		if al > 0 {
			hot++
		}
	}
	if hot != 1 {
		t.Fatalf("identical campaign spread over %d nodes: %v", hot, counts)
	}
}

// TestGatewayRequestIDForwarded asserts the trace-ID satellite: a
// client-supplied X-Request-Id rides the hop to the node verbatim and
// is echoed back; a missing one is generated and still forwarded.
func TestGatewayRequestIDForwarded(t *testing.T) {
	a := newFakeNode("n1")
	defer a.srv.Close()
	_, srv := newTestGateway(t, a)

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/allocate", strings.NewReader(allocBody))
	req.Header.Set("X-Request-Id", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()
	if got := a.requestID(); got != "trace-me-42" {
		t.Fatalf("node saw X-Request-Id %q, want trace-me-42", got)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-42" {
		t.Fatalf("client echo %q, want trace-me-42", got)
	}

	resp, err = http.Post(srv.URL+"/v1/allocate", "application/json", strings.NewReader(allocBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()
	gen := resp.Header.Get("X-Request-Id")
	if !strings.HasPrefix(gen, "g-") {
		t.Fatalf("generated ID %q should carry the gateway prefix", gen)
	}
	if a.requestID() != gen {
		t.Fatalf("node saw %q, gateway echoed %q", a.requestID(), gen)
	}
}

// TestGatewayRetryAfterPassthrough asserts the back-pressure
// satellite: a node's 503 (draining) with its own Retry-After reaches
// the client byte-identical — never replaced by a gateway value.
func TestGatewayRetryAfterPassthrough(t *testing.T) {
	a := newFakeNode("n1")
	defer a.srv.Close()
	a.handler = func(w http.ResponseWriter, r *http.Request) bool {
		if r.URL.Path == "/v1/jobs" && r.Method == http.MethodPost {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"server is draining; retry shortly"}`)
			return true
		}
		return false
	}
	_, srv := newTestGateway(t, a)

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(allocBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After %q, want the node's own \"7\"", ra)
	}
	if !strings.Contains(string(body), "draining") {
		t.Fatalf("node body not passed through: %s", body)
	}
}

// TestGatewayAllReplicasDown asserts the fleet-level 503: with every
// member down the gateway answers its own 503 + Retry-After 1 for
// allocate, submit and by-ID lookups.
func TestGatewayAllReplicasDown(t *testing.T) {
	a := newFakeNode("n1")
	defer a.srv.Close()
	gw, srv := newTestGateway(t, a)
	gw.fleet.Stop() // halt probes so hand-set liveness sticks
	gw.fleet.Member("n1").up.Store(false)

	for _, probe := range []struct {
		method, path, body string
	}{
		{http.MethodPost, "/v1/allocate", allocBody},
		{http.MethodPost, "/v1/jobs", allocBody},
		{http.MethodGet, "/v1/jobs/j-n1-abcd0123-00000001", ""},
		{http.MethodGet, "/v1/jobs", ""},
	} {
		var rd io.Reader
		if probe.body != "" {
			rd = strings.NewReader(probe.body)
		}
		req, _ := http.NewRequest(probe.method, srv.URL+probe.path, rd)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s: status %d, want 503", probe.method, probe.path, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Fatalf("%s %s: Retry-After %q, want 1", probe.method, probe.path, ra)
		}
	}
}

// TestGatewayIdempotentRetry asserts a dead node's allocate fails
// over: the owner is unreachable (transport error), the request lands
// on the next up replica, and the dead node's failure run starts.
func TestGatewayIdempotentRetry(t *testing.T) {
	a, b, c := newFakeNode("n1"), newFakeNode("n2"), newFakeNode("n3")
	defer b.srv.Close()
	defer c.srv.Close()
	a.srv.Close() // n1 is dead but still marked up

	gw, srv := newTestGateway(t, a, b, c)
	_ = gw

	// Fire enough distinct campaigns that at least one routes to n1.
	ok := 0
	for i := 0; i < 12; i++ {
		body := fmt.Sprintf(`{"pattern":{"offsets":[%d,0,2]},"agu":{"registers":1,"modifyRange":1}}`, i)
		resp, err := http.Post(srv.URL+"/v1/allocate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			ok++
		}
	}
	if ok != 12 {
		t.Fatalf("only %d/12 allocates survived one dead node", ok)
	}
	if f := gw.fleet.Member("n1").Fails(); f == 0 {
		t.Fatal("dead node accumulated no failure reports")
	}
}

// TestGatewayJobByIDTagRouting asserts ID ownership: an ID tagged n2
// reaches n2 whatever the ring thinks, an untagged or unknown-tag ID
// is 404, and a down owner is 503 (never a lying 404).
func TestGatewayJobByIDTagRouting(t *testing.T) {
	a, b := newFakeNode("n1"), newFakeNode("n2")
	defer a.srv.Close()
	defer b.srv.Close()
	gw, srv := newTestGateway(t, a, b)

	resp, err := http.Get(srv.URL + "/v1/jobs/j-n2-abcd0123-00000007")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"node":"n2"`) {
		t.Fatalf("tagged lookup: status %d body %s", resp.StatusCode, body)
	}

	for _, id := range []string{"j-abcd0123-00000007", "j-nX-abcd0123-00000007"} {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("lookup %s: status %d, want 404", id, resp.StatusCode)
		}
	}

	gw.fleet.Stop() // halt probes so hand-set liveness sticks
	gw.fleet.Member("n2").up.Store(false)
	resp, err = http.Get(srv.URL + "/v1/jobs/j-n2-abcd0123-00000007")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("down owner: status %d, want 503", resp.StatusCode)
	}
}

// TestGatewayBatchStitch asserts the split/stitch path: a mixed batch
// answers 200 with one result per job in request order, each from the
// node its key routes to.
func TestGatewayBatchStitch(t *testing.T) {
	a, b, c := newFakeNode("n1"), newFakeNode("n2"), newFakeNode("n3")
	defer a.srv.Close()
	defer b.srv.Close()
	defer c.srv.Close()
	gw, srv := newTestGateway(t, a, b, c)

	jobs := make([]string, 9)
	for i := range jobs {
		jobs[i] = fmt.Sprintf(`{"pattern":{"offsets":[%d,1]},"agu":{"registers":1,"modifyRange":1}}`, i)
	}
	body := `{"jobs":[` + strings.Join(jobs, ",") + `]}`
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d body %s", resp.StatusCode, raw)
	}
	var out struct {
		Results []struct {
			Node string `json:"node"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(out.Results), len(jobs))
	}
	// Every result names the node its job's key routes to.
	for i, res := range out.Results {
		var job jobWire
		if err := json.Unmarshal([]byte(jobs[i]), &job); err != nil {
			t.Fatal(err)
		}
		want := gw.fleet.Replicas(routeKeyOf(&job))[0].Name
		if res.Node != want {
			t.Fatalf("job %d answered by %s, ring owner is %s", i, res.Node, want)
		}
	}
}

// TestGatewayStatsAggregation asserts /v1/stats sums the fleet and
// nests each node's raw stats.
func TestGatewayStatsAggregation(t *testing.T) {
	mk := func(name string, jobs int) *fakeNode {
		n := newFakeNode(name)
		n.handler = func(w http.ResponseWriter, r *http.Request) bool {
			if r.URL.Path == "/v1/stats" {
				w.Header().Set("Content-Type", "application/json")
				fmt.Fprintf(w, `{"jobs":%d,"cacheHits":10,"cacheMisses":10,"asyncJobs":{"submitted":%d,"done":1}}`, jobs, jobs)
				return true
			}
			return false
		}
		return n
	}
	a, b := mk("n1", 3), mk("n2", 5)
	defer a.srv.Close()
	defer b.srv.Close()
	_, srv := newTestGateway(t, a, b)

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out struct {
		Fleet struct {
			Nodes          int     `json:"nodes"`
			UpNodes        int     `json:"upNodes"`
			Jobs           uint64  `json:"jobs"`
			HitRate        float64 `json:"hitRate"`
			AsyncSubmitted uint64  `json:"asyncSubmitted"`
		} `json:"fleet"`
		Nodes   map[string]json.RawMessage `json:"nodes"`
		Gateway struct {
			Version string `json:"version"`
		} `json:"gateway"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad stats body: %v\n%s", err, raw)
	}
	if out.Fleet.Nodes != 2 || out.Fleet.UpNodes != 2 || out.Fleet.Jobs != 8 || out.Fleet.AsyncSubmitted != 8 {
		t.Fatalf("fleet sums wrong: %+v", out.Fleet)
	}
	if out.Fleet.HitRate != 0.5 {
		t.Fatalf("hitRate %v, want 0.5", out.Fleet.HitRate)
	}
	if len(out.Nodes) != 2 || out.Gateway.Version != "test" {
		t.Fatalf("stats shape wrong: %s", raw)
	}
}

// TestGatewayMetricsAggregation asserts /metrics carries the gateway
// families plus node families summed by sample identity.
func TestGatewayMetricsAggregation(t *testing.T) {
	mk := func(name string, reqs int) *fakeNode {
		n := newFakeNode(name)
		n.handler = func(w http.ResponseWriter, r *http.Request) bool {
			if r.URL.Path == "/metrics" {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				fmt.Fprintf(w, "# HELP rcaserve_http_requests_total Total HTTP requests.\n# TYPE rcaserve_http_requests_total counter\nrcaserve_http_requests_total %d\n", reqs)
				fmt.Fprintf(w, "# HELP rcaserve_queue_depth Queue depth.\n# TYPE rcaserve_queue_depth gauge\nrcaserve_queue_depth{shard=\"0\"} %d\n", reqs)
				return true
			}
			return false
		}
		return n
	}
	a, b := mk("n1", 3), mk("n2", 4)
	defer a.srv.Close()
	defer b.srv.Close()
	_, srv := newTestGateway(t, a, b)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	if !strings.Contains(text, "rcaserve_http_requests_total 7") {
		t.Fatalf("counter not summed across nodes:\n%s", text)
	}
	if !strings.Contains(text, `rcaserve_queue_depth{shard="0"} 7`) {
		t.Fatalf("labeled gauge not summed:\n%s", text)
	}
	for _, fam := range []string{"rcagate_nodes_up 2", "rcagate_node_up{node=\"n1\"} 1", "rcagate_http_route_requests_total"} {
		if !strings.Contains(text, fam) {
			t.Fatalf("missing gateway family %q:\n%s", fam, text)
		}
	}
}

// TestGatewayListMerge asserts GET /v1/jobs merges node pages
// newest-first and sums totals.
func TestGatewayListMerge(t *testing.T) {
	mk := func(name string, stamps ...string) *fakeNode {
		n := newFakeNode(name)
		n.handler = func(w http.ResponseWriter, r *http.Request) bool {
			if r.URL.Path == "/v1/jobs" && r.Method == http.MethodGet {
				entries := make([]string, len(stamps))
				for i, s := range stamps {
					entries[i] = fmt.Sprintf(`{"id":"j-%s-abcd0123-%08d","state":"done","submittedAt":%q}`, name, i, s)
				}
				w.Header().Set("Content-Type", "application/json")
				fmt.Fprintf(w, `{"jobs":[%s],"total":%d,"offset":0,"limit":100}`, strings.Join(entries, ","), len(stamps))
				return true
			}
			return false
		}
		return n
	}
	// n1's jobs are newest and oldest; n2's sits in between.
	a := mk("n1", "2026-08-07T10:00:03Z", "2026-08-07T10:00:01Z")
	b := mk("n2", "2026-08-07T10:00:02Z")
	defer a.srv.Close()
	defer b.srv.Close()
	_, srv := newTestGateway(t, a, b)

	resp, err := http.Get(srv.URL + "/v1/jobs?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
		Total int `json:"total"`
		Limit int `json:"limit"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad list body: %v\n%s", err, raw)
	}
	if out.Total != 3 || out.Limit != 2 || len(out.Jobs) != 2 {
		t.Fatalf("merged window wrong: %s", raw)
	}
	if !strings.HasPrefix(out.Jobs[0].ID, "j-n1-") || !strings.HasPrefix(out.Jobs[1].ID, "j-n2-") {
		t.Fatalf("merge order wrong: %s", raw)
	}
}

// TestGatewayHealthzAndCluster smoke-tests the introspection surface.
func TestGatewayHealthzAndCluster(t *testing.T) {
	a, b := newFakeNode("n1"), newFakeNode("n2")
	defer a.srv.Close()
	defer b.srv.Close()
	gw, srv := newTestGateway(t, a, b)

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "nodes 2/2") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	gw.fleet.Stop() // halt probes so hand-set liveness sticks
	gw.fleet.Member("n1").up.Store(false)
	gw.fleet.Member("n2").up.Store(false)
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-down healthz: %d, want 503", resp.StatusCode)
	}
	gw.fleet.Member("n1").up.Store(true)

	resp, err = http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out clusterJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Nodes) != 2 || out.RingPoints != 2*DefaultVirtualNodes {
		t.Fatalf("cluster introspection wrong: %s", raw)
	}
	var sawDown bool
	for _, n := range out.Nodes {
		if n.Name == "n2" && !n.Up && n.DownSince == nil {
			// down via direct store (no transition) — DownSince may be
			// absent; liveness is what matters here.
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatalf("n2 should report down: %s", raw)
	}
}

// TestRouteKeyLoopJobs asserts loop-source submissions route
// deterministically and bindings participate in the key.
func TestRouteKeyLoopJobs(t *testing.T) {
	j1 := jobWire{Loop: "for (i=0; i<N; i++) a[i] = a[i+1];", Bindings: map[string]int{"N": 64}}
	j2 := jobWire{Loop: "for (i=0; i<N; i++) a[i] = a[i+1];", Bindings: map[string]int{"N": 64}}
	if routeKeyOf(&j1) != routeKeyOf(&j2) {
		t.Fatal("identical loop jobs route apart")
	}
	j2.Bindings["N"] = 65
	if routeKeyOf(&j1) == routeKeyOf(&j2) {
		t.Fatal("binding change did not change the route")
	}
	// Default strategy spellings share a route.
	g1 := jobWire{Loop: "x", Strategy: ""}
	g2 := jobWire{Loop: "x", Strategy: "greedy"}
	if routeKeyOf(&g1) != routeKeyOf(&g2) {
		t.Fatal(`"" and "greedy" should share a route`)
	}
}
