package cluster

import (
	"testing"
	"time"
)

// Breaker tests drive the state machine with a synthetic clock: allow
// and record take explicit times, so no test here sleeps.

func TestBreakerTripsOnErrorRate(t *testing.T) {
	var transitions []BreakerState
	b := newBreaker(BreakerOptions{
		Window: 8, MinSamples: 4, ErrRate: 0.5,
		LatencyThreshold: -1, // latency trip off: isolate the error path
	}, func(to BreakerState) { transitions = append(transitions, to) })
	now := time.Now()
	if !b.allow(now) {
		t.Fatal("closed breaker refused a request")
	}
	b.record(true, time.Millisecond, now)
	b.record(true, time.Millisecond, now)
	b.record(false, time.Millisecond, now)
	if st, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("tripped below MinSamples: %v", st)
	}
	b.record(false, time.Millisecond, now)
	if st, samples, failed := b.snapshot(); st != BreakerOpen || samples != 4 || failed != 2 {
		t.Fatalf("state %v window %d/%d, want open at 2/4 failures", st, failed, samples)
	}
	if b.allow(now) {
		t.Fatal("open breaker admitted a request")
	}
	if len(transitions) != 1 || transitions[0] != BreakerOpen {
		t.Fatalf("transitions %v, want [open]", transitions)
	}
}

// TestBreakerTripsOnLatencyQuantile is the gray-failure case proper:
// every response is a 200, every response is slow, and the breaker
// must trip anyway — this is exactly the signal the health prober
// cannot see.
func TestBreakerTripsOnLatencyQuantile(t *testing.T) {
	b := newBreaker(BreakerOptions{
		Window: 8, MinSamples: 8, ErrRate: 0.99,
		LatencyQuantile: 0.5, LatencyThreshold: 100 * time.Millisecond,
	}, nil)
	now := time.Now()
	for i := 0; i < 8; i++ {
		b.record(true, 300*time.Millisecond, now)
	}
	if st, _, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("state %v, want open on all-success slow window", st)
	}
}

func TestBreakerFastWindowStaysClosed(t *testing.T) {
	b := newBreaker(BreakerOptions{Window: 8, MinSamples: 4}, nil)
	now := time.Now()
	for i := 0; i < 64; i++ {
		b.record(true, 5*time.Millisecond, now)
	}
	if st, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("healthy traffic tripped the breaker: %v", st)
	}
}

// TestBreakerHalfOpenTrickleAndClose pins the half-open contract: no
// admission before OpenFor, then EXACTLY one admission per
// HalfOpenEvery, and CloseAfter consecutive fast successes close the
// circuit with the sick window forgotten.
func TestBreakerHalfOpenTrickleAndClose(t *testing.T) {
	opts := BreakerOptions{
		Window: 8, MinSamples: 2, ErrRate: 0.5,
		LatencyThreshold: 100 * time.Millisecond,
		OpenFor:          time.Second, HalfOpenEvery: 100 * time.Millisecond,
		CloseAfter: 2,
	}
	b := newBreaker(opts, nil)
	now := time.Now()
	b.record(false, time.Millisecond, now)
	b.record(false, time.Millisecond, now)
	if st, _, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("state %v, want open", st)
	}
	if b.allow(now.Add(999 * time.Millisecond)) {
		t.Fatal("admitted before OpenFor elapsed")
	}
	probeAt := now.Add(1100 * time.Millisecond)
	if !b.allow(probeAt) {
		t.Fatal("no probe admitted after OpenFor elapsed")
	}
	if st, _, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatal("first post-OpenFor allow should flip to half-open")
	}
	// Exactly the trickle: every allow inside HalfOpenEvery refuses.
	admitted := 1
	for i := 1; i <= 30; i++ {
		if b.allow(probeAt.Add(time.Duration(i) * 10 * time.Millisecond)) {
			admitted++
		}
	}
	// 300ms of asking at 10ms intervals with a 100ms trickle: the
	// initial admission plus the 100/200/300ms replenishments.
	if admitted != 4 {
		t.Fatalf("half-open admitted %d over 300ms, want exactly 4 (1 + 3 trickle slots)", admitted)
	}
	// CloseAfter fast successes close the circuit.
	b.record(true, time.Millisecond, probeAt)
	if st, _, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatal("closed before CloseAfter successes")
	}
	b.record(true, time.Millisecond, probeAt)
	st, samples, _ := b.snapshot()
	if st != BreakerClosed {
		t.Fatalf("state %v, want closed after %d fast successes", st, opts.CloseAfter)
	}
	if samples != 0 {
		t.Fatalf("sick window survived the close: %d samples", samples)
	}
}

// TestBreakerSlowSuccessReopens pins the no-flap rule: a half-open
// probe that succeeds SLOWLY reopens the circuit — recovery means
// fast answers, or a still-gray node would oscillate closed/open.
func TestBreakerSlowSuccessReopens(t *testing.T) {
	opts := BreakerOptions{
		Window: 8, MinSamples: 2, ErrRate: 0.5,
		LatencyThreshold: 100 * time.Millisecond, OpenFor: time.Second,
	}
	b := newBreaker(opts, nil)
	now := time.Now()
	b.record(false, time.Millisecond, now)
	b.record(false, time.Millisecond, now)
	probeAt := now.Add(1100 * time.Millisecond)
	if !b.allow(probeAt) {
		t.Fatal("no half-open probe admitted")
	}
	b.record(true, 300*time.Millisecond, probeAt) // a 200, but slow
	if st, _, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("state %v, want reopened on slow success", st)
	}
	// And the OpenFor timer restarted from the reopen.
	if b.allow(probeAt.Add(999 * time.Millisecond)) {
		t.Fatal("reopened breaker admitted before a fresh OpenFor")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerOptions{Disabled: true, MinSamples: 1, Window: 2}, nil)
	now := time.Now()
	for i := 0; i < 10; i++ {
		b.record(false, time.Second, now)
		if !b.allow(now) {
			t.Fatal("disabled breaker refused")
		}
	}
	var nilB *breaker
	if !nilB.allow(now) {
		t.Fatal("nil breaker refused")
	}
	nilB.record(false, 0, now) // must not panic
}

// TestFleetRoutingStableUnderFlappingProbes is the oscillation guard:
// passive health reports that flap below FailThreshold must neither
// bounce liveness nor bounce routing while the owner's breaker is
// open — every request routes steadily to the next replica.
func TestFleetRoutingStableUnderFlappingProbes(t *testing.T) {
	fleet, err := NewFleet([]Member{
		{Name: "n1", URL: "http://127.0.0.1:1"},
		{Name: "n2", URL: "http://127.0.0.1:2"},
	}, FleetOptions{
		ProbeInterval: time.Hour, FailThreshold: 3,
		Breaker: BreakerOptions{Window: 4, MinSamples: 2, ErrRate: 0.5, OpenFor: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(42)
	owner := fleet.Replicas(key)[0]
	var other *Member
	for _, m := range fleet.Members() {
		if m != owner {
			other = m
		}
	}
	// Trip the owner's breaker (OpenFor: an hour — it stays open).
	now := time.Now()
	owner.brk.record(false, time.Millisecond, now)
	owner.brk.record(false, time.Millisecond, now)
	if owner.BreakerState() != BreakerOpen {
		t.Fatal("owner breaker did not open")
	}
	// Flap the passive health below the mark-down threshold.
	for i := 0; i < 50; i++ {
		fleet.ReportFailure(owner)
		if m := fleet.FirstRoutable(key); m != other {
			t.Fatalf("iteration %d: routed to %s, want steady %s", i, m.Name, other.Name)
		}
		fleet.ReportSuccess(owner)
		if m := fleet.FirstRoutable(key); m != other {
			t.Fatalf("iteration %d (post-success): routed to %s, want steady %s", i, m.Name, other.Name)
		}
	}
	if !owner.Up() {
		t.Fatal("sub-threshold flapping marked the owner down")
	}
	// ReportSuccess resets the failure run but must NOT close the
	// breaker — only half-open probes do that.
	if owner.BreakerState() != BreakerOpen {
		t.Fatal("probe success closed the breaker out of band")
	}
}

// TestFirstRoutableFailsOpen: when every up member's breaker refuses,
// routing degrades to plain liveness — the gateway must never
// synthesize an outage the nodes themselves aren't having.
func TestFirstRoutableFailsOpen(t *testing.T) {
	fleet, err := NewFleet([]Member{
		{Name: "n1", URL: "http://127.0.0.1:1"},
		{Name: "n2", URL: "http://127.0.0.1:2"},
	}, FleetOptions{
		ProbeInterval: time.Hour,
		Breaker:       BreakerOptions{Window: 4, MinSamples: 2, ErrRate: 0.5, OpenFor: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for _, m := range fleet.Members() {
		m.brk.record(false, time.Millisecond, now)
		m.brk.record(false, time.Millisecond, now)
		if m.BreakerState() != BreakerOpen {
			t.Fatalf("%s breaker did not open", m.Name)
		}
	}
	key := uint64(42)
	m := fleet.FirstRoutable(key)
	if m == nil {
		t.Fatal("all-open breakers synthesized an outage")
	}
	if want := fleet.Replicas(key)[0]; m != want {
		t.Fatalf("fail-open routed to %s, want the ring owner %s", m.Name, want.Name)
	}
	// With the owner actually down, fail-open lands on the successor.
	fleet.Replicas(key)[0].up.Store(false)
	if m := fleet.FirstRoutable(key); m != fleet.Replicas(key)[1] {
		t.Fatal("fail-open ignored liveness")
	}
}

func TestRetryBackoffJitterBounds(t *testing.T) {
	for attempt := 1; attempt <= 6; attempt++ {
		base := retryBackoffBase << (attempt - 1)
		if base > retryBackoffCap {
			base = retryBackoffCap
		}
		for i := 0; i < 200; i++ {
			d := retryBackoff(attempt)
			if d < base/2 || d >= base {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, base/2, base)
			}
		}
	}
}

func TestRetryAfterOf(t *testing.T) {
	mk := func(ra string) *nodeResponse {
		h := make(map[string][]string)
		if ra != "" {
			h["Retry-After"] = []string{ra}
		}
		return &nodeResponse{header: h}
	}
	cases := []struct {
		ra   string
		want time.Duration
	}{
		{"", 0},
		{"0", 0},
		{"garbage", 0},
		{"-3", 0},
		{"1", retryAfterCap}, // 1s capped to keep the hop bounded
		{"30", retryAfterCap},
	}
	for _, c := range cases {
		if got := retryAfterOf(mk(c.ra)); got != c.want {
			t.Errorf("retryAfterOf(%q) = %v, want %v", c.ra, got, c.want)
		}
	}
}
