package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("n1=http://127.0.0.1:8081, n2=http://127.0.0.1:8082/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Name != "n1" || ms[1].URL != "http://127.0.0.1:8082" {
		t.Fatalf("parsed %+v", ms)
	}
	for _, bad := range []string{"", "n1", "n1=", "=http://x", "n1=not a url", "n1=hostonly"} {
		if _, err := ParseMembers(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestFleetHealthStateMachine drives the mark-down / mark-up cycle
// through real probes: a healthy node stays up, goes down after
// FailThreshold consecutive probe failures, and returns on the first
// success.
func TestFleetHealthStateMachine(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && healthy.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer node.Close()

	transitions := make(chan bool, 16)
	f, err := NewFleet([]Member{{Name: "n1", URL: node.URL}}, FleetOptions{
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailThreshold: 2,
		OnTransition:  func(m *Member, up bool) { transitions <- up },
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	m := f.Member("n1")
	if m == nil || !m.Up() {
		t.Fatal("member should start up")
	}

	healthy.Store(false)
	select {
	case up := <-transitions:
		if up {
			t.Fatal("first transition should be a mark-down")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no mark-down within 5s")
	}
	if m.Up() {
		t.Fatal("member still up after mark-down transition")
	}
	if m.DownSince().IsZero() {
		t.Fatal("downSince not recorded")
	}
	if f.UpCount() != 0 {
		t.Fatalf("UpCount = %d, want 0", f.UpCount())
	}

	healthy.Store(true)
	select {
	case up := <-transitions:
		if !up {
			t.Fatal("expected a mark-up")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no mark-up within 5s")
	}
	if !m.Up() || !m.DownSince().IsZero() {
		t.Fatal("member not restored after mark-up")
	}
}

// TestFleetPassiveReporting asserts forwarder-style failure reports
// alone mark a node down, and one success resets the run.
func TestFleetPassiveReporting(t *testing.T) {
	f, err := NewFleet([]Member{{Name: "a", URL: "http://127.0.0.1:1"}}, FleetOptions{FailThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := f.Member("a")
	f.ReportFailure(m)
	f.ReportFailure(m)
	if !m.Up() {
		t.Fatal("down before threshold")
	}
	f.ReportSuccess(m) // resets the run
	f.ReportFailure(m)
	f.ReportFailure(m)
	if !m.Up() {
		t.Fatal("success did not reset the failure run")
	}
	f.ReportFailure(m)
	if m.Up() {
		t.Fatal("still up at threshold")
	}
	f.ReportSuccess(m)
	if !m.Up() {
		t.Fatal("one success should mark up")
	}
}

// TestFleetRehashToSuccessor asserts FirstUp walks the ring sequence:
// with the owner down, its keys land on the ring successor, and with
// everyone down FirstUp reports nil.
func TestFleetRehashToSuccessor(t *testing.T) {
	f, err := NewFleet([]Member{
		{Name: "n1", URL: "http://127.0.0.1:1"},
		{Name: "n2", URL: "http://127.0.0.1:2"},
		{Name: "n3", URL: "http://127.0.0.1:3"},
	}, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(0xdeadbeefcafef00d)
	owner := f.FirstUp(key)
	if owner == nil {
		t.Fatal("no owner with all up")
	}
	seq := f.Replicas(key)
	if seq[0] != owner {
		t.Fatal("FirstUp should be the sequence head with all up")
	}
	owner.up.Store(false)
	next := f.FirstUp(key)
	if next == nil || next != seq[1] {
		t.Fatalf("downed owner's key should rehash to the ring successor %s, got %v", seq[1].Name, next)
	}
	for _, m := range f.Members() {
		m.up.Store(false)
	}
	if f.FirstUp(key) != nil {
		t.Fatal("FirstUp with all down should be nil")
	}
}
