package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dspaddr/internal/deadline"
)

// newHedgeGateway stands a gateway with a fixed hedge delay in front
// of the fake nodes (newTestGateway runs hedging at defaults, where
// an empty latency window arms the hedge at MaxDelay — effectively
// never in a fast test).
func newHedgeGateway(t *testing.T, hedge HedgeOptions, nodes ...*fakeNode) (*Gateway, *httptest.Server) {
	t.Helper()
	members := make([]Member, len(nodes))
	for i, n := range nodes {
		members[i] = Member{Name: n.name, URL: n.srv.URL}
	}
	fleet, err := NewFleet(members, FleetOptions{
		ProbeInterval: time.Hour,
		FailThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := New(Options{Fleet: fleet, Version: "test", Hedge: hedge})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(func() { srv.Close(); gw.Close() })
	return gw, srv
}

// TestGatewayDeadlineHeaderDecrementsPerHop asserts the budget rides
// the hop: the node sees an X-Deadline-Ms no larger than the client's
// and still positive, because the gateway recomputes it from the
// remaining context budget at send time.
func TestGatewayDeadlineHeaderDecrementsPerHop(t *testing.T) {
	a := newFakeNode("n1")
	defer a.srv.Close()
	var seen atomic.Value
	a.handler = func(w http.ResponseWriter, r *http.Request) bool {
		if r.URL.Path == "/v1/allocate" {
			seen.Store(r.Header.Get(deadline.Header))
		}
		return false
	}
	_, srv := newTestGateway(t, a)

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/allocate", strings.NewReader(allocBody))
	req.Header.Set(deadline.Header, "5000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	raw, _ := seen.Load().(string)
	ms, err := strconv.Atoi(raw)
	if err != nil {
		t.Fatalf("node saw %s %q, want an integer", deadline.Header, raw)
	}
	if ms <= 0 || ms > 5000 {
		t.Fatalf("forwarded budget %dms, want in (0, 5000]", ms)
	}
}

// TestGatewaySpentBudgetIs504 asserts a request arriving with no
// budget left is answered 504 at the edge — the node is never asked
// to do work the client has already given up on.
func TestGatewaySpentBudgetIs504(t *testing.T) {
	a := newFakeNode("n1")
	defer a.srv.Close()
	gw, srv := newTestGateway(t, a)

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/allocate", strings.NewReader(allocBody))
	req.Header.Set(deadline.Header, "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if al, _ := a.counts(); al != 0 {
		t.Fatal("a spent budget still reached the node")
	}
	if got := gw.deadlineExpired.Load(); got != 1 {
		t.Fatalf("deadlineExpired = %d, want 1", got)
	}
}

// TestGatewayDeadlineExpiresMidFlight: the budget runs out while the
// node is still working — the gateway answers 504 (not 503), the
// in-flight hop is canceled, and the node is NOT penalized in health
// accounting (it did nothing wrong).
func TestGatewayDeadlineExpiresMidFlight(t *testing.T) {
	a := newFakeNode("n1")
	defer a.srv.Close()
	canceled := make(chan struct{}, 1)
	a.handler = func(w http.ResponseWriter, r *http.Request) bool {
		if r.URL.Path != "/v1/allocate" {
			return false
		}
		// Drain the body like a real node would: only then does the
		// server's background read detect a dropped peer and cancel
		// the request context.
		io.Copy(io.Discard, r.Body) //nolint:errcheck // drain
		select {
		case <-r.Context().Done():
			canceled <- struct{}{}
		case <-time.After(5 * time.Second):
		}
		return true
	}
	gw, srv := newTestGateway(t, a)

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/allocate", strings.NewReader(allocBody))
	req.Header.Set(deadline.Header, "80")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("504 took %v — the budget did not bound the hop", elapsed)
	}
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("node-side handler never saw the cancellation")
	}
	if f := gw.fleet.Member("n1").Fails(); f != 0 {
		t.Fatalf("deadline expiry charged the node %d health failures", f)
	}
}

// TestGatewayClientDisconnectCancelsUpstream is the satellite fix
// proper: a client that walks away mid-request must cancel the
// forwarded hop, so the node-side work actually stops instead of
// running to completion for nobody.
func TestGatewayClientDisconnectCancelsUpstream(t *testing.T) {
	a := newFakeNode("n1")
	defer a.srv.Close()
	started := make(chan struct{}, 1)
	canceled := make(chan struct{}, 1)
	a.handler = func(w http.ResponseWriter, r *http.Request) bool {
		if r.URL.Path != "/v1/allocate" {
			return false
		}
		io.Copy(io.Discard, r.Body) //nolint:errcheck // drain — see above
		started <- struct{}{}
		select {
		case <-r.Context().Done():
			canceled <- struct{}{}
		case <-time.After(5 * time.Second):
		}
		return true
	}
	gw, srv := newTestGateway(t, a)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/allocate", strings.NewReader(allocBody))
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("request never reached the node")
	}
	cancel() // the client hangs up
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("node-side handler kept running after the client disconnected")
	}
	if err := <-errCh; err == nil {
		t.Fatal("canceled client request returned a response")
	}
	// The node is innocent: the aborted hop must stay out of health
	// and breaker accounting.
	if f := gw.fleet.Member("n1").Fails(); f != 0 {
		t.Fatalf("client disconnect charged the node %d health failures", f)
	}
	if samples, failed := gw.fleet.Member("n1").BreakerWindow(); failed != 0 {
		t.Fatalf("client disconnect fed the breaker %d/%d failures", failed, samples)
	}
}

// TestGatewayHedgeDuplicateSuppression: the primary GET is stuck, the
// hedge answers — the client gets EXACTLY one response (the hedge's),
// the loser is canceled, and the in-flight hedge gauge drains to zero
// (the leak oracle).
func TestGatewayHedgeDuplicateSuppression(t *testing.T) {
	a := newFakeNode("n1")
	defer a.srv.Close()
	var calls atomic.Int32
	loserCanceled := make(chan struct{}, 1)
	a.handler = func(w http.ResponseWriter, r *http.Request) bool {
		if !strings.HasPrefix(r.URL.Path, "/v1/jobs/") || r.Method != http.MethodGet {
			return false
		}
		if calls.Add(1) == 1 {
			// The gray request: stuck until canceled.
			select {
			case <-r.Context().Done():
				loserCanceled <- struct{}{}
			case <-time.After(5 * time.Second):
			}
			return true
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"j-n1-abcd0123-00000001","state":"done","answeredBy":"hedge"}`)
		return true
	}
	gw, srv := newHedgeGateway(t, HedgeOptions{FixedDelay: 20 * time.Millisecond}, a)

	resp, err := http.Get(srv.URL + "/v1/jobs/j-n1-abcd0123-00000001")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s, want 200", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"answeredBy":"hedge"`) {
		t.Fatalf("winning body not the hedge's: %s", body)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("node saw %d GETs, want exactly 2 (primary + hedge)", n)
	}
	select {
	case <-loserCanceled:
	case <-time.After(2 * time.Second):
		t.Fatal("losing request was never canceled")
	}
	waitZeroHedges(t, gw)
}

// TestGatewayHedgeBothComplete: both the primary and the hedge finish
// with full responses — the client still gets exactly one, and
// nothing leaks.
func TestGatewayHedgeBothComplete(t *testing.T) {
	a := newFakeNode("n1")
	defer a.srv.Close()
	var calls atomic.Int32
	a.handler = func(w http.ResponseWriter, r *http.Request) bool {
		if !strings.HasPrefix(r.URL.Path, "/v1/jobs/") || r.Method != http.MethodGet {
			return false
		}
		calls.Add(1)
		time.Sleep(40 * time.Millisecond) // both requests overlap
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"j-n1-abcd0123-00000001","state":"done"}`)
		return true
	}
	gw, srv := newHedgeGateway(t, HedgeOptions{FixedDelay: 5 * time.Millisecond}, a)

	resp, err := http.Get(srv.URL + "/v1/jobs/j-n1-abcd0123-00000001")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"state":"done"`) {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("node saw %d GETs, want 2", n)
	}
	waitZeroHedges(t, gw)
	// The scoreboard recorded exactly one decided hedge race.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `rcagate_hedges_total{node="n1"} 1`) {
		t.Fatalf("hedge launch not counted:\n%s", metrics)
	}
}

// TestGatewayHedgeNeverOnMutatingRoutes: DELETE goes out exactly once
// even when slow enough that a GET would have hedged.
func TestGatewayHedgeNeverOnMutatingRoutes(t *testing.T) {
	a := newFakeNode("n1")
	defer a.srv.Close()
	var deletes atomic.Int32
	a.handler = func(w http.ResponseWriter, r *http.Request) bool {
		if !strings.HasPrefix(r.URL.Path, "/v1/jobs/") || r.Method != http.MethodDelete {
			return false
		}
		deletes.Add(1)
		time.Sleep(60 * time.Millisecond)
		w.WriteHeader(http.StatusNoContent)
		return true
	}
	_, srv := newHedgeGateway(t, HedgeOptions{FixedDelay: 5 * time.Millisecond}, a)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/j-n1-abcd0123-00000001", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status %d, want 204", resp.StatusCode)
	}
	if n := deletes.Load(); n != 1 {
		t.Fatalf("DELETE went out %d times, want exactly 1", n)
	}
}

// waitZeroHedges polls the in-flight hedge gauge back to zero: a
// stuck loser would pin it (and its goroutine and socket) forever.
func waitZeroHedges(t *testing.T, gw *Gateway) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if gw.HedgesInFlight() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("hedges in flight stuck at %d", gw.HedgesInFlight())
}

// TestGatewayRetryHonorsRetryAfter: an idempotent 503 retries on the
// next replica only after honoring the node's Retry-After (capped) —
// and when the retry also answers 503, that LAST node answer is what
// the client sees.
func TestGatewayRetryHonorsRetryAfter(t *testing.T) {
	mk := func(name string, hits *atomic.Int32) *fakeNode {
		n := newFakeNode(name)
		n.handler = func(w http.ResponseWriter, r *http.Request) bool {
			if r.URL.Path != "/v1/allocate" {
				return false
			}
			hits.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining"}`)
			return true
		}
		return n
	}
	var hitsA, hitsB atomic.Int32
	a, b := mk("n1", &hitsA), mk("n2", &hitsB)
	defer a.srv.Close()
	defer b.srv.Close()
	_, srv := newTestGateway(t, a, b)

	start := time.Now()
	resp, err := http.Post(srv.URL+"/v1/allocate", "application/json", strings.NewReader(allocBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want the node's 503 passed through", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want the node's own \"1\"", ra)
	}
	if got := hitsA.Load() + hitsB.Load(); got != 2 {
		t.Fatalf("%d attempts total, want exactly 2 (primary + one retry)", got)
	}
	// The retry waited the capped Retry-After (500ms), not the bare
	// jittered backoff (< 20ms at attempt 1).
	if elapsed < retryAfterCap {
		t.Fatalf("retry after %v, want >= %v (the honored Retry-After)", elapsed, retryAfterCap)
	}
}
