// The HTTP forwarding client: one shared transport with bounded
// per-node connection pools, a per-attempt timeout, breaker-aware
// replica selection, jittered-backoff retries for idempotent
// requests, and quantile-delayed hedges for idempotent reads.
//
// Failure policy: only transport-level failures (dial, reset, body
// read, timeout) count against a member's health and are retried —
// any complete HTTP response, whatever its status, is the node
// SPEAKING, and is passed through to the client verbatim (so a
// draining node's 503 + Retry-After reaches the client unchanged).
// The one exception: an idempotent request answered 503 retries once
// on the next replica after honoring the node's Retry-After — and
// when no better answer arrives, the original 503 is still what the
// client sees. Non-idempotent requests (job submission) are never
// retried: the first attempt may have been admitted before the
// connection died, and a blind retry would double-submit.
//
// An attempt that dies because the ORIGIN went away — client
// disconnect, hedge-loser cancellation, spent deadline budget — is
// not the node's failure: it stays out of health and breaker
// accounting and is never retried.

package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dspaddr/internal/deadline"
	"dspaddr/internal/stats"
)

// Forwarding defaults.
const (
	// DefaultForwardTimeout bounds one forwarded exchange; generous
	// because a node-side solve may legitimately run to the node's own
	// per-job deadline (5s default) and batches run many.
	DefaultForwardTimeout = 30 * time.Second
	// maxIdlePerNode and maxConnsPerNode bound each node's connection
	// pool: enough parallelism for a busy gateway, a hard cap so one
	// slow node cannot accumulate unbounded sockets.
	maxIdlePerNode  = 32
	maxConnsPerNode = 128
	// maxNodeResponseBytes caps a buffered node response; /metrics and
	// job results are the largest bodies and stay far below this.
	maxNodeResponseBytes = 64 << 20
)

// Retry pacing: a retry waits a jittered exponential backoff, or the
// upstream's own Retry-After when the previous answer named one
// (capped so a node's "come back in a second" cannot stall the
// gateway hop that long).
const (
	retryBackoffBase = 15 * time.Millisecond
	retryBackoffCap  = 250 * time.Millisecond
	retryAfterCap    = 500 * time.Millisecond
)

// Hedge defaults (HedgeOptions zero values).
const (
	DefaultHedgeQuantile = 0.95
	DefaultHedgeMinDelay = 10 * time.Millisecond
	DefaultHedgeMaxDelay = time.Second
	// hedgeDelayRecompute bounds how often the quantile is re-derived
	// from the latency ring (sorting the window per request would not
	// survive the bench gate).
	hedgeDelayRecompute = 100 * time.Millisecond
)

// HedgeOptions tunes hedged reads: after the configured quantile of
// recent forward latency elapses with no answer, a second identical
// request goes out and the first complete response wins. Hedges go to
// the SAME member on a fresh exchange — job state is single-homed, so
// a ring successor would answer an honest-but-wrong 404; what a hedge
// defuses is a slow connection or a stuck accept queue, not a lost
// node (breakers and health checks own those).
type HedgeOptions struct {
	// Disabled turns hedging off; reads degrade to single requests.
	Disabled bool
	// Quantile of the recent forward-latency window that arms the
	// hedge timer (0 = 0.95).
	Quantile float64
	// MinDelay/MaxDelay clamp the derived delay (0 = 10ms / 1s). With
	// an empty latency window the delay is MaxDelay.
	MinDelay time.Duration
	MaxDelay time.Duration
	// FixedDelay, when positive, bypasses the quantile entirely.
	FixedDelay time.Duration
}

func (o HedgeOptions) withDefaults() HedgeOptions {
	if o.Quantile <= 0 || o.Quantile >= 1 {
		o.Quantile = DefaultHedgeQuantile
	}
	if o.MinDelay <= 0 {
		o.MinDelay = DefaultHedgeMinDelay
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = DefaultHedgeMaxDelay
	}
	return o
}

// Hedge lifecycle events reported through onHedge.
type hedgeEvent int

const (
	hedgeLaunched   hedgeEvent = iota // second request fired
	hedgeSettled                      // the hedge request finished (won, lost or canceled)
	hedgeWinPrimary                   // primary answered first
	hedgeWinHedge                     // hedge answered first
)

// ErrAllReplicasDown reports that every replica in the key's sequence
// was down (or unreachable on this attempt) — the only condition the
// gateway answers with its own synthesized 503.
var ErrAllReplicasDown = errors.New("cluster: all replicas down")

// nodeResponse is one buffered node answer.
type nodeResponse struct {
	status int
	header http.Header
	body   []byte
	member *Member // who answered
}

// forwarder issues node requests over the shared pooled transport.
type forwarder struct {
	fleet   *Fleet
	client  *http.Client
	timeout time.Duration
	hedge   HedgeOptions

	// hedgeLat is the recent forward-latency window the hedge delay is
	// derived from; the derived value is cached in hedgeDelayNs and
	// refreshed at most every hedgeDelayRecompute.
	hedgeLat     stats.LatencyRing
	hedgeDelayNs atomic.Int64
	hedgeDelayAt atomic.Int64 // unix nanos of the last recompute

	// onForward reports every attempt for metrics: the member, the
	// status (0 on transport error), elapsed time and whether this
	// attempt was a retry. nil-safe. Attempts aborted by origin
	// cancellation are not reported.
	onForward func(m *Member, status int, dur time.Duration, retry bool)
	// onHedge reports hedge lifecycle events for metrics. nil-safe.
	onHedge func(ev hedgeEvent, m *Member)
}

// newForwarder builds the client around the fleet.
func newForwarder(fleet *Fleet, timeout time.Duration, hedge HedgeOptions, onForward func(*Member, int, time.Duration, bool), onHedge func(hedgeEvent, *Member)) *forwarder {
	if timeout <= 0 {
		timeout = DefaultForwardTimeout
	}
	return &forwarder{
		fleet: fleet,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: maxIdlePerNode,
				MaxConnsPerHost:     maxConnsPerNode,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		timeout:   timeout,
		hedge:     hedge.withDefaults(),
		onForward: onForward,
		onHedge:   onHedge,
	}
}

// close releases idle pooled connections.
func (fw *forwarder) close() {
	if t, ok := fw.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// do issues one request to one member and buffers the response. The
// X-Request-Id and Content-Type headers of hdr are forwarded, so the
// gateway's trace ID rides the hop, and the remaining deadline budget
// of ctx (when the origin supplied one) rides as X-Deadline-Ms —
// computed at send time, so the decrement per hop is exactly the time
// this hop consumed. Transport failures are reported to the fleet and
// the member's breaker (passive health) and returned — unless the
// ORIGIN context died first, in which case the node is innocent and
// nothing is recorded. Complete responses are reported as successes
// to the fleet whatever their status; the breaker counts 5xx answers
// as failures and everything else, with its latency, as signal.
func (fw *forwarder) do(ctx context.Context, m *Member, method, pathAndQuery string, body []byte, hdr http.Header, retry bool) (*nodeResponse, error) {
	origin := ctx
	ctx, cancel := context.WithTimeout(ctx, fw.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, m.URL+pathAndQuery, rd)
	if err != nil {
		return nil, fmt.Errorf("cluster: build request: %w", err)
	}
	if hdr != nil {
		if id := hdr.Get("X-Request-Id"); id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		if ct := hdr.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
	}
	deadline.SetHeader(origin, req.Header)
	start := time.Now()
	resp, err := fw.client.Do(req)
	if err != nil {
		if origin.Err() != nil {
			return nil, err
		}
		dur := time.Since(start)
		fw.fleet.ReportFailure(m)
		m.brk.record(false, dur, time.Now())
		if fw.onForward != nil {
			fw.onForward(m, 0, dur, retry)
		}
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxNodeResponseBytes))
	dur := time.Since(start)
	if err != nil {
		if origin.Err() != nil {
			return nil, err
		}
		fw.fleet.ReportFailure(m)
		m.brk.record(false, dur, time.Now())
		if fw.onForward != nil {
			fw.onForward(m, 0, dur, retry)
		}
		return nil, err
	}
	fw.fleet.ReportSuccess(m)
	m.brk.record(resp.StatusCode < http.StatusInternalServerError, dur, time.Now())
	fw.hedgeLat.Observe(dur)
	if fw.onForward != nil {
		fw.onForward(m, resp.StatusCode, dur, retry)
	}
	return &nodeResponse{status: resp.StatusCode, header: resp.Header, body: buf, member: m}, nil
}

// routed forwards to the key's replica sequence. Selection walks the
// up members with an admitting breaker first, then — failing open —
// the up members whose breakers refused, so an all-open breaker set
// degrades to plain liveness routing instead of synthesizing an
// outage. On a transport error, an idempotent request gets exactly
// one more attempt on the next candidate after a jittered backoff; an
// idempotent 503 likewise retries after honoring the node's
// Retry-After, falling back to the original 503 when nothing better
// answers. Returns ErrAllReplicasDown when no up replica exists (or
// the attempts exhausted them).
func (fw *forwarder) routed(ctx context.Context, key uint64, method, pathAndQuery string, body []byte, hdr http.Header, idempotent bool) (*nodeResponse, error) {
	attempts := 1
	if idempotent {
		attempts = 2
	}
	now := time.Now()
	var candidates, refused []*Member
	for _, m := range fw.fleet.Replicas(key) {
		if !m.Up() {
			continue
		}
		if m.brk.allow(now) {
			candidates = append(candidates, m)
		} else {
			refused = append(refused, m)
		}
	}
	candidates = append(candidates, refused...)

	tried := 0
	var lastErr error
	var last503 *nodeResponse
	for _, m := range candidates {
		if tried > 0 {
			wait := retryBackoff(tried)
			if last503 != nil {
				if ra := retryAfterOf(last503); ra > 0 {
					wait = ra
				}
			}
			if err := sleepCtx(ctx, wait); err != nil {
				break
			}
		}
		resp, err := fw.do(ctx, m, method, pathAndQuery, body, hdr, tried > 0)
		if err == nil {
			if resp.status == http.StatusServiceUnavailable && idempotent && tried+1 < attempts {
				last503 = resp
				tried++
				continue
			}
			return resp, nil
		}
		if ctx.Err() != nil {
			// The origin went away (disconnect or spent budget): stop.
			return nil, err
		}
		lastErr = err
		if tried++; tried >= attempts {
			lastErr = fmt.Errorf("last attempt %s: %v", m.Name, err)
			break
		}
	}
	if last503 != nil {
		// Every retry slot burned and the best answer remains the
		// node's own 503 — pass it through with the NODE's timing.
		return last503, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w (%v)", ErrAllReplicasDown, lastErr)
	}
	return nil, ErrAllReplicasDown
}

// hedged issues an idempotent read to m with a hedge: if the delay
// derived from recent forward latency elapses without an answer, a
// second identical request races the first and the first COMPLETE
// response wins; the loser's context is canceled and its outcome is
// kept out of health accounting. Bodies are nil by construction —
// hedging is for GETs only.
func (fw *forwarder) hedged(ctx context.Context, m *Member, method, pathAndQuery string, hdr http.Header) (*nodeResponse, error) {
	delay := fw.hedgeDelay()
	if delay <= 0 {
		return fw.do(ctx, m, method, pathAndQuery, nil, hdr, false)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		resp  *nodeResponse
		err   error
		hedge bool
	}
	ch := make(chan outcome, 2)
	launch := func(isHedge bool) {
		go func() {
			resp, err := fw.do(hctx, m, method, pathAndQuery, nil, hdr, isHedge)
			if isHedge && fw.onHedge != nil {
				fw.onHedge(hedgeSettled, m)
			}
			ch <- outcome{resp, err, isHedge}
		}()
	}
	launch(false)
	outstanding := 1
	hedgeFired := false
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedgeFired {
				hedgeFired = true
				outstanding++
				if fw.onHedge != nil {
					fw.onHedge(hedgeLaunched, m)
				}
				launch(true)
			}
		case out := <-ch:
			outstanding--
			if out.err == nil {
				if hedgeFired && fw.onHedge != nil {
					if out.hedge {
						fw.onHedge(hedgeWinHedge, m)
					} else {
						fw.onHedge(hedgeWinPrimary, m)
					}
				}
				// The deferred cancel unwinds the loser; its aborted
				// attempt sees the origin cancellation and stays out of
				// health accounting.
				return out.resp, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if !hedgeFired && ctx.Err() == nil {
				// The primary failed before the timer armed the hedge:
				// fire it now as the (idempotent) retry instead of
				// giving up with a request still owed.
				hedgeFired = true
				outstanding++
				if fw.onHedge != nil {
					fw.onHedge(hedgeLaunched, m)
				}
				launch(true)
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		}
	}
}

// hedgeDelay derives the current hedge-arm delay: the configured
// quantile of the recent forward-latency window, clamped, cached
// between recomputes. Zero means "don't hedge".
func (fw *forwarder) hedgeDelay() time.Duration {
	if fw.hedge.Disabled {
		return 0
	}
	if fw.hedge.FixedDelay > 0 {
		return fw.hedge.FixedDelay
	}
	now := time.Now().UnixNano()
	if last := fw.hedgeDelayAt.Load(); now-last < int64(hedgeDelayRecompute) {
		if cached := fw.hedgeDelayNs.Load(); cached > 0 {
			return time.Duration(cached)
		}
	}
	fw.hedgeDelayAt.Store(now)
	q := fw.hedgeLat.QuantilesMicros(fw.hedge.Quantile)
	d := time.Duration(q[0]) * time.Microsecond
	if d <= 0 {
		d = fw.hedge.MaxDelay // empty window: hedge late, not eagerly
	}
	if d < fw.hedge.MinDelay {
		d = fw.hedge.MinDelay
	}
	if d > fw.hedge.MaxDelay {
		d = fw.hedge.MaxDelay
	}
	fw.hedgeDelayNs.Store(int64(d))
	return d
}

// retryBackoff is the jittered exponential wait before retry number
// `attempt` (1-based): uniformly in [base·2ⁿ⁻¹/2, base·2ⁿ⁻¹), capped.
func retryBackoff(attempt int) time.Duration {
	d := retryBackoffBase << (attempt - 1)
	if d > retryBackoffCap {
		d = retryBackoffCap
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(half)))
}

// retryAfterOf parses a node 503's Retry-After (whole seconds per the
// node contract), capped to keep the gateway hop bounded. Zero when
// absent or malformed.
func retryAfterOf(resp *nodeResponse) time.Duration {
	ra := resp.header.Get("Retry-After")
	if ra == "" {
		return 0
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > retryAfterCap {
		d = retryAfterCap
	}
	return d
}

// sleepCtx waits d or until ctx dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
