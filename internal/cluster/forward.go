// The HTTP forwarding client: one shared transport with bounded
// per-node connection pools, a per-attempt timeout, and a single
// retry on the next up replica for idempotent requests.
//
// Failure policy: only transport-level failures (dial, reset, body
// read, timeout) count against a member's health and are retried —
// any complete HTTP response, whatever its status, is the node
// SPEAKING, and is passed through to the client verbatim (so a
// draining node's 503 + Retry-After reaches the client unchanged).
// Non-idempotent requests (job submission) are never retried: the
// first attempt may have been admitted before the connection died,
// and a blind retry would double-submit.

package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Forwarding defaults.
const (
	// DefaultForwardTimeout bounds one forwarded exchange; generous
	// because a node-side solve may legitimately run to the node's own
	// per-job deadline (5s default) and batches run many.
	DefaultForwardTimeout = 30 * time.Second
	// maxIdlePerNode and maxConnsPerNode bound each node's connection
	// pool: enough parallelism for a busy gateway, a hard cap so one
	// slow node cannot accumulate unbounded sockets.
	maxIdlePerNode  = 32
	maxConnsPerNode = 128
	// maxNodeResponseBytes caps a buffered node response; /metrics and
	// job results are the largest bodies and stay far below this.
	maxNodeResponseBytes = 64 << 20
)

// ErrAllReplicasDown reports that every replica in the key's sequence
// was down (or unreachable on this attempt) — the only condition the
// gateway answers with its own synthesized 503.
var ErrAllReplicasDown = errors.New("cluster: all replicas down")

// nodeResponse is one buffered node answer.
type nodeResponse struct {
	status int
	header http.Header
	body   []byte
	member *Member // who answered
}

// forwarder issues node requests over the shared pooled transport.
type forwarder struct {
	fleet   *Fleet
	client  *http.Client
	timeout time.Duration

	// onForward reports every attempt for metrics: the member, the
	// status (0 on transport error), elapsed time and whether this
	// attempt was a retry. nil-safe.
	onForward func(m *Member, status int, dur time.Duration, retry bool)
}

// newForwarder builds the client around the fleet.
func newForwarder(fleet *Fleet, timeout time.Duration, onForward func(*Member, int, time.Duration, bool)) *forwarder {
	if timeout <= 0 {
		timeout = DefaultForwardTimeout
	}
	return &forwarder{
		fleet: fleet,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: maxIdlePerNode,
				MaxConnsPerHost:     maxConnsPerNode,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		timeout:   timeout,
		onForward: onForward,
	}
}

// close releases idle pooled connections.
func (fw *forwarder) close() {
	if t, ok := fw.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// do issues one request to one member and buffers the response. The
// X-Request-Id and Content-Type headers of hdr are forwarded, so the
// gateway's trace ID rides the hop. Transport failures are reported
// to the fleet (passive health) and returned; complete responses are
// reported as successes whatever their status.
func (fw *forwarder) do(ctx context.Context, m *Member, method, pathAndQuery string, body []byte, hdr http.Header, retry bool) (*nodeResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, fw.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, m.URL+pathAndQuery, rd)
	if err != nil {
		return nil, fmt.Errorf("cluster: build request: %w", err)
	}
	if hdr != nil {
		if id := hdr.Get("X-Request-Id"); id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		if ct := hdr.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
	}
	start := time.Now()
	resp, err := fw.client.Do(req)
	if err != nil {
		fw.fleet.ReportFailure(m)
		if fw.onForward != nil {
			fw.onForward(m, 0, time.Since(start), retry)
		}
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxNodeResponseBytes))
	dur := time.Since(start)
	if err != nil {
		fw.fleet.ReportFailure(m)
		if fw.onForward != nil {
			fw.onForward(m, 0, dur, retry)
		}
		return nil, err
	}
	fw.fleet.ReportSuccess(m)
	if fw.onForward != nil {
		fw.onForward(m, resp.StatusCode, dur, retry)
	}
	return &nodeResponse{status: resp.StatusCode, header: resp.Header, body: buf, member: m}, nil
}

// routed forwards to the key's replica sequence: the first up member
// gets the request; on a transport error and when idempotent is set,
// exactly one more attempt goes to the next up replica. Returns
// ErrAllReplicasDown when no up replica exists (or the attempts
// exhausted them).
func (fw *forwarder) routed(ctx context.Context, key uint64, method, pathAndQuery string, body []byte, hdr http.Header, idempotent bool) (*nodeResponse, error) {
	attempts := 1
	if idempotent {
		attempts = 2
	}
	tried := 0
	var lastErr error
	for _, m := range fw.fleet.Replicas(key) {
		if !m.Up() {
			continue
		}
		resp, err := fw.do(ctx, m, method, pathAndQuery, body, hdr, tried > 0)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if tried++; tried >= attempts {
			return nil, fmt.Errorf("%w (last attempt %s: %v)", ErrAllReplicasDown, m.Name, err)
		}
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w (last: %v)", ErrAllReplicasDown, lastErr)
	}
	return nil, ErrAllReplicasDown
}
