package cluster

import (
	"fmt"
	"testing"
)

// keyStream yields a deterministic pseudo-random key sequence so the
// distribution numbers below are identical on every run and platform.
func keyStream(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	x := seed
	for i := range out {
		x += 0x9e3779b97f4a7c15
		out[i] = mix64(x)
	}
	return out
}

// TestRingDistribution asserts the load skew bound the package doc
// promises: at the default 128 vnodes, the most and least loaded of 3
// nodes stay within 15% of each other over a large seeded key set.
func TestRingDistribution(t *testing.T) {
	names := []string{"n1", "n2", "n3"}
	r, err := NewRing(names, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(names))
	keys := keyStream(42, 200_000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	minC, maxC := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	t.Logf("counts=%v skew=%.1f%%", counts, 100*float64(maxC-minC)/float64(minC))
	if minC == 0 {
		t.Fatalf("a node owns no keys: %v", counts)
	}
	if float64(maxC) > float64(minC)*1.15 {
		t.Fatalf("load skew exceeds 15%%: min=%d max=%d (%v)", minC, maxC, counts)
	}
}

// TestRingDeterminism asserts the restart property: two rings built
// from the same names agree on every owner (construction has no
// hidden per-process state), and the replica sequence starts at the
// owner.
func TestRingDeterminism(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta"}
	r1, err := NewRing(names, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(names, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keyStream(7, 20_000) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("owner diverged for key %#x: %d vs %d", k, r1.Owner(k), r2.Owner(k))
		}
		seq := r1.Sequence(k)
		if len(seq) != len(names) {
			t.Fatalf("sequence for %#x has %d entries, want %d", k, len(seq), len(names))
		}
		if seq[0] != r1.Owner(k) {
			t.Fatalf("sequence for %#x starts at %d, owner is %d", k, seq[0], r1.Owner(k))
		}
		distinct := map[int]bool{}
		for _, n := range seq {
			distinct[n] = true
		}
		if len(distinct) != len(names) {
			t.Fatalf("sequence for %#x repeats nodes: %v", k, seq)
		}
	}
}

// TestRingMinimalMovement asserts the consistent-hashing contract:
// removing one member moves ONLY the keys that member owned — every
// key owned by a surviving member keeps its owner. This is why a
// mark-down (which skips the downed member over Sequence) disturbs no
// warm cache on the survivors.
func TestRingMinimalMovement(t *testing.T) {
	names := []string{"n1", "n2", "n3", "n4"}
	full, err := NewRing(names, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	removed := 2 // drop "n3"
	survivors := []string{"n1", "n2", "n4"}
	small, err := NewRing(surviv(survivors), DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	moved, kept := 0, 0
	for _, k := range keyStream(99, 100_000) {
		before := full.Owner(k)
		after := small.Owner(k)
		if before == removed {
			moved++
			continue // this key HAD to move
		}
		kept++
		// Survivor indices shift down past the removed slot.
		want := before
		if before > removed {
			want--
		}
		if after != want {
			t.Fatalf("key %#x moved from surviving node %s to %s",
				k, names[before], survivors[after])
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved=%d kept=%d", moved, kept)
	}
	t.Logf("moved=%d (%.1f%%) kept=%d", moved, 100*float64(moved)/float64(moved+kept), kept)
}

// surviv copies a name slice (guards against NewRing aliasing).
func surviv(names []string) []string { return append([]string(nil), names...) }

// TestRingSkipDownMatchesRemoval asserts that the runtime rehash
// (skipping a down member over Sequence) sends each of its keys to
// exactly the node a ring WITHOUT that member would choose.
func TestRingSkipDownMatchesRemoval(t *testing.T) {
	names := []string{"n1", "n2", "n3"}
	full, err := NewRing(names, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	down := 1 // "n2" is down
	small, err := NewRing([]string{"n1", "n3"}, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keyStream(5, 50_000) {
		var eff int = -1
		for _, n := range full.Sequence(k) {
			if n != down {
				eff = n
				break
			}
		}
		want := small.Owner(k) // 0 -> n1, 1 -> n3
		wantFull := 0
		if want == 1 {
			wantFull = 2
		}
		if eff != wantFull {
			t.Fatalf("key %#x: skip-down routed to %s, removal ring says %s",
				k, names[eff], names[wantFull])
		}
	}
}

// TestNewRingValidation covers the constructor's error paths.
func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 8); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Fatal("duplicate name accepted")
	}
	r, err := NewRing([]string{"solo"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != DefaultVirtualNodes {
		t.Fatalf("vnodes=0 gave %d points, want %d", r.Size(), DefaultVirtualNodes)
	}
	if got := fmt.Sprint(r.Nodes()); got != "[solo]" {
		t.Fatalf("Nodes() = %s", got)
	}
}
