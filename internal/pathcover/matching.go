// Package pathcover implements phase 1 of the paper's allocator: cover
// the distance graph with the minimum number K~ of node-disjoint paths,
// so that all array addresses are computed by zero-cost post-modify
// operations only.
//
// Without inter-iteration (wrap) constraints the distance graph is a
// DAG and the minimum path cover is computed exactly in polynomial time
// via König's theorem: minCover = N - maxMatching of the bipartite
// out/in-copy graph (the bound technique of Araujo et al. [2]). With
// wrap constraints the matching value remains a lower bound, a greedy
// cover provides an upper bound, and a branch-and-bound search (per the
// companion ASP-DAC'98 paper [3]) closes the gap.
package pathcover

// bipartite is an adjacency-list bipartite graph with nLeft left nodes
// and nRight right nodes used by the Hopcroft-Karp matcher.
type bipartite struct {
	nLeft, nRight int
	adj           [][]int // adj[u] lists right neighbours of left node u
}

// hopcroftKarp returns a maximum matching as matchL (left -> right or
// -1) and matchR (right -> left or -1), plus its cardinality. It runs
// in O(E * sqrt(V)).
func hopcroftKarp(g bipartite) (matchL, matchR []int, size int) {
	const inf = int(^uint(0) >> 1)
	matchL = make([]int, g.nLeft)
	matchR = make([]int, g.nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, g.nLeft)
	queue := make([]int, 0, g.nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < g.nLeft; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range g.adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range g.adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < g.nLeft; u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return matchL, matchR, size
}
