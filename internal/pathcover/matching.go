// Package pathcover implements phase 1 of the paper's allocator: cover
// the distance graph with the minimum number K~ of node-disjoint paths,
// so that all array addresses are computed by zero-cost post-modify
// operations only.
//
// Without inter-iteration (wrap) constraints the distance graph is a
// DAG and the minimum path cover is computed exactly in polynomial time
// via König's theorem: minCover = N - maxMatching of the bipartite
// out/in-copy graph (the bound technique of Araujo et al. [2]). With
// wrap constraints the matching value remains a lower bound, a greedy
// cover provides an upper bound, and a branch-and-bound search (per the
// companion ASP-DAC'98 paper [3]) closes the gap.
package pathcover

import "dspaddr/internal/graph"

// bipartite is an adjacency-list bipartite graph with nLeft left nodes
// and nRight right nodes used by the Hopcroft-Karp matcher. Adjacency
// is expressed as edge slices (targets are the right nodes) so the
// distance graph's own adjacency storage can be aliased directly
// instead of copied per solve.
type bipartite struct {
	nLeft, nRight int
	adj           [][]graph.Edge // adj[u] lists right neighbours of left node u via Edge.To
}

// matcher carries the Hopcroft-Karp working state. Its backing slices
// are reusable across runs (see matchScratch); methods replace the
// former closure-based implementation so a solve performs no closure
// allocations.
type matcher struct {
	g              bipartite
	matchL, matchR []int
	dist           []int
	queue          []int
}

const matchInf = int(^uint(0) >> 1)

// run computes a maximum matching, returning matchL (left -> right or
// -1) and matchR (right -> left or -1) plus its cardinality, in
// O(E * sqrt(V)). The returned slices alias the matcher's scratch and
// are valid until its next run.
func (mt *matcher) run(g bipartite) (matchL, matchR []int, size int) {
	mt.g = g
	mt.matchL = resizeInts(mt.matchL, g.nLeft)
	mt.matchR = resizeInts(mt.matchR, g.nRight)
	mt.dist = resizeInts(mt.dist, g.nLeft)
	if cap(mt.queue) < g.nLeft {
		mt.queue = make([]int, 0, g.nLeft)
	}
	for i := range mt.matchL {
		mt.matchL[i] = -1
	}
	for i := range mt.matchR {
		mt.matchR[i] = -1
	}
	for mt.bfs() {
		for u := 0; u < g.nLeft; u++ {
			if mt.matchL[u] == -1 && mt.dfs(u) {
				size++
			}
		}
	}
	return mt.matchL, mt.matchR, size
}

func (mt *matcher) bfs() bool {
	mt.queue = mt.queue[:0]
	for u := 0; u < mt.g.nLeft; u++ {
		if mt.matchL[u] == -1 {
			mt.dist[u] = 0
			mt.queue = append(mt.queue, u)
		} else {
			mt.dist[u] = matchInf
		}
	}
	found := false
	for qi := 0; qi < len(mt.queue); qi++ {
		u := mt.queue[qi]
		for _, e := range mt.g.adj[u] {
			w := mt.matchR[e.To]
			if w == -1 {
				found = true
			} else if mt.dist[w] == matchInf {
				mt.dist[w] = mt.dist[u] + 1
				mt.queue = append(mt.queue, w)
			}
		}
	}
	return found
}

func (mt *matcher) dfs(u int) bool {
	for _, e := range mt.g.adj[u] {
		w := mt.matchR[e.To]
		if w == -1 || (mt.dist[w] == mt.dist[u]+1 && mt.dfs(w)) {
			mt.matchL[u] = e.To
			mt.matchR[e.To] = u
			return true
		}
	}
	mt.dist[u] = matchInf
	return false
}

// hopcroftKarp is the transient-scratch form of matcher.run for
// callers outside the solver hot path.
func hopcroftKarp(g bipartite) (matchL, matchR []int, size int) {
	var mt matcher
	return mt.run(g)
}

// resizeInts returns a length-n int slice, reusing buf's backing array
// when it is large enough.
func resizeInts(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int, n)
}
