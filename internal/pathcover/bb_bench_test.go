package pathcover

import (
	"fmt"
	"math/rand"
	"testing"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
)

// BenchmarkBBPlace measures the branch-and-bound search loop alone —
// scratch construction amortized away — and demonstrates that place()
// runs allocation-free (0 allocs/op after the first iteration warms
// the pooled buffers).
func BenchmarkBBPlace(b *testing.B) {
	for _, n := range []int{10, 20, 30} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			offs := make([]int, n)
			for i := range offs {
				offs[i] = rng.Intn(17) - 8
			}
			pat := model.Pattern{Array: "A", Stride: 1, Offsets: offs}
			dg, err := distgraph.Build(pat, 1)
			if err != nil {
				b.Fatal(err)
			}
			s := newBBSearch(dg, DefaultNodeBudget)
			s.run() // warm the pooled buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.reset()
				s.run()
			}
		})
	}
}

// BenchmarkBBPlaceVsReference pits the zero-alloc search against the
// retained map-per-node reference on the same graphs, end to end
// (construction included) as MinCover runs it.
func BenchmarkBBPlaceVsReference(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	offs := make([]int, 20)
	for i := range offs {
		offs[i] = rng.Intn(17) - 8
	}
	pat := model.Pattern{Array: "A", Stride: 1, Offsets: offs}
	dg, err := distgraph.Build(pat, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rewrite", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MinCover(dg, true, nil)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			minCoverReference(dg, true, nil)
		}
	})
}
