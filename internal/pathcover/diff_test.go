package pathcover

import (
	"math/rand"
	"reflect"
	"testing"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
)

// diffPattern generates a random pattern for the differential search
// tests: stride and modify range varied, offsets within a small spread
// so zero-cost structure is non-trivial.
func diffPattern(rng *rand.Rand, maxN int) (model.Pattern, int) {
	n := 2 + rng.Intn(maxN-1)
	spread := 2 + rng.Intn(8)
	offs := make([]int, n)
	for i := range offs {
		offs[i] = rng.Intn(2*spread+1) - spread
	}
	pat := model.Pattern{Array: "A", Stride: 1 + rng.Intn(3), Offsets: offs}
	return pat, rng.Intn(3)
}

// coversEqual compares every observable field of two covers.
func coversEqual(a, b Cover) bool {
	if len(a.Paths) != len(b.Paths) || a.ZeroCost != b.ZeroCost || a.Exact != b.Exact || a.Nodes != b.Nodes {
		return false
	}
	for i := range a.Paths {
		if !reflect.DeepEqual([]int(a.Paths[i]), []int(b.Paths[i])) {
			return false
		}
	}
	return true
}

// Differential property: the zero-alloc branch-and-bound explores the
// identical tree to the retained reference search — byte-identical
// cover, same exactness flag, same node count — for both objectives.
func TestDiffMinCoverMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3998))
	for trial := 0; trial < 250; trial++ {
		pat, m := diffPattern(rng, 14)
		dg, err := distgraph.Build(pat, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, wrap := range []bool{false, true} {
			got := MinCover(dg, wrap, nil)
			want := minCoverReference(dg, wrap, nil)
			if !coversEqual(got, want) {
				t.Fatalf("trial %d (pat=%v M=%d wrap=%v):\nrewrite   %+v\nreference %+v",
					trial, pat, m, wrap, got, want)
			}
		}
	}
}

// Differential property under a truncating node budget: both searches
// must give up at the same state and report the same best-so-far, on
// patterns up to N=64.
func TestDiffMinCoverMatchesReferenceTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(3999))
	for trial := 0; trial < 60; trial++ {
		pat, m := diffPattern(rng, 64)
		dg, err := distgraph.Build(pat, m)
		if err != nil {
			t.Fatal(err)
		}
		opts := &Options{NodeBudget: 1 + rng.Intn(20_000)}
		got := MinCover(dg, true, opts)
		want := minCoverReference(dg, true, opts)
		if !coversEqual(got, want) {
			t.Fatalf("trial %d (N=%d M=%d budget=%d):\nrewrite   %+v\nreference %+v",
				trial, pat.N(), m, opts.NodeBudget, got, want)
		}
	}
}

// The DAG objective now reports its work: one node per access.
func TestMinCoverDAGPopulatesNodes(t *testing.T) {
	pat := model.PaperExample()
	dg := distgraph.MustBuild(pat, 1)
	c := MinCover(dg, false, nil)
	if c.Nodes != pat.N() {
		t.Fatalf("wrap=false Nodes = %d, want %d", c.Nodes, pat.N())
	}
	if w := MinCover(dg, true, nil); w.Nodes == 0 {
		t.Fatal("wrap=true Nodes = 0, want search effort recorded")
	}
}

// The search scratch is fully restored between runs: repeating the
// same search yields the same result and performs no allocation once
// the pooled buffers are warm.
func TestPlaceZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pat, _ := diffPattern(rng, 14)
	dg, err := distgraph.Build(pat, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := newBBSearch(dg, DefaultNodeBudget)
	s.run() // warm the pooled buffers
	firstNodes, firstBest := s.nodes, s.best
	allocs := testing.AllocsPerRun(20, func() {
		s.reset()
		s.run()
	})
	if allocs != 0 {
		t.Fatalf("place() allocated %.1f times per search, want 0", allocs)
	}
	if s.nodes != firstNodes || s.best != firstBest {
		t.Fatalf("rerun diverged: nodes %d→%d best %d→%d", firstNodes, s.nodes, firstBest, s.best)
	}
}
