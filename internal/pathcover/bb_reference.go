// Reference branch-and-bound search, retained verbatim from before the
// zero-allocation rewrite: it allocates a dedup map per search node and
// clones the open path set on every improvement. The differential tests
// assert the rewritten search in bb.go explores the identical tree
// (same cover, same exactness, same node count).

package pathcover

import (
	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
)

// minCoverReference mirrors MinCover on top of the reference search.
func minCoverReference(dg *distgraph.Graph, wrap bool, opts *Options) Cover {
	if !wrap {
		return Cover{Paths: sortPaths(MinCoverDAG(dg)), ZeroCost: true, Exact: true, Nodes: dg.N()}
	}
	budget := DefaultNodeBudget
	if opts != nil && opts.NodeBudget > 0 {
		budget = opts.NodeBudget
	}

	lb := LowerBound(dg)
	s := &refBBSearch{dg: dg, n: dg.N(), budget: budget, best: int(^uint(0) >> 1)}

	if greedy := GreedyCover(dg, true); coverZeroCost(dg, greedy, true) {
		s.best = len(greedy)
		s.bestPaths = clonePaths(greedy)
		if s.best == lb {
			return Cover{Paths: sortPaths(s.bestPaths), ZeroCost: true, Exact: true, Nodes: dg.N()}
		}
	}

	s.run()

	if s.bestPaths == nil {
		// No zero-cost cover exists; fall back to the intra-iteration
		// optimum. The search completing within budget proves
		// infeasibility.
		return Cover{
			Paths:    sortPaths(MinCoverDAG(dg)),
			ZeroCost: false,
			Exact:    !s.exhausted,
			Nodes:    s.nodes,
		}
	}
	return Cover{
		Paths:    sortPaths(s.bestPaths),
		ZeroCost: true,
		Exact:    !s.exhausted || s.best == lb,
		Nodes:    s.nodes,
	}
}

// refBBSearch is the pre-rewrite search state.
type refBBSearch struct {
	dg        *distgraph.Graph
	n         int
	budget    int
	nodes     int
	exhausted bool
	best      int
	bestPaths []model.Path
	open      []model.Path
	badWrap   []bool
	numBad    int
}

func (s *refBBSearch) run() {
	s.open = s.open[:0]
	s.badWrap = s.badWrap[:0]
	s.numBad = 0
	s.place(0)
}

func (s *refBBSearch) place(i int) {
	if s.exhausted {
		return
	}
	s.nodes++
	if s.nodes > s.budget {
		s.exhausted = true
		return
	}
	if len(s.open) >= s.best {
		return // cannot improve: path count never decreases
	}
	remaining := s.n - i
	if s.numBad > remaining {
		return // each bad-wrap path needs at least one future access
	}
	if i == s.n {
		if s.numBad == 0 {
			s.best = len(s.open)
			s.bestPaths = clonePaths(s.open)
		}
		return
	}

	// A bad-wrap path whose tail has no future zero-cost successor can
	// never be repaired; prune the whole branch.
	for pi, p := range s.open {
		if s.badWrap[pi] && !s.hasFutureSuccessor(p[len(p)-1], i) {
			return
		}
	}

	// Branch 1: append access i to each compatible open path, skipping
	// symmetric duplicates (paths with identical tail and head offsets
	// are interchangeable).
	type sig struct{ tail, head int }
	tried := make(map[sig]bool)
	for pi := range s.open {
		p := s.open[pi]
		tail, head := p[len(p)-1], p[0]
		if !s.dg.ZeroIntra(tail, i) {
			continue
		}
		key := sig{s.dg.Pattern.Offsets[tail], s.dg.Pattern.Offsets[head]}
		if tried[key] {
			continue
		}
		tried[key] = true

		wasBad := s.badWrap[pi]
		nowBad := !s.dg.ZeroWrap(i, head)
		s.open[pi] = append(p, i)
		s.badWrap[pi] = nowBad
		s.numBad += boolDelta(wasBad, nowBad)

		s.place(i + 1)

		s.open[pi] = p
		s.badWrap[pi] = wasBad
		s.numBad -= boolDelta(wasBad, nowBad)
	}

	// Branch 2: open a new path at access i.
	newBad := !s.dg.ZeroWrap(i, i) // singleton wrap distance is the stride
	s.open = append(s.open, model.Path{i})
	s.badWrap = append(s.badWrap, newBad)
	if newBad {
		s.numBad++
	}

	s.place(i + 1)

	s.open = s.open[:len(s.open)-1]
	s.badWrap = s.badWrap[:len(s.badWrap)-1]
	if newBad {
		s.numBad--
	}
}

// hasFutureSuccessor reports whether tail has any zero-cost successor
// with index >= i.
func (s *refBBSearch) hasFutureSuccessor(tail, i int) bool {
	succ := s.dg.Intra.Out(tail)
	// Successors are sorted ascending; the largest decides.
	return len(succ) > 0 && succ[len(succ)-1].To >= i
}
