// Per-worker solve scratch for phase 1. A Scratch owns every reusable
// workspace the cover computations need — the Hopcroft-Karp matcher
// state, the bipartite adjacency headers, the flat DAG-cover path
// store and the branch-and-bound search state — so a worker serving a
// stream of requests stops paying a dozen heap allocations per solve.
//
// A Scratch is not safe for concurrent use. Covers produced through a
// Scratch may alias its buffers and are valid only until its next use;
// callers that retain paths must clone them (Cover.Assignment already
// does).

package pathcover

import (
	"context"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/graph"
	"dspaddr/internal/model"
	"dspaddr/internal/obs"
)

// Scratch is the reusable phase-1 workspace. The zero value is ready
// to use.
type Scratch struct {
	match    matcher
	adj      [][]graph.Edge
	dagFlat  []int
	dagPaths []model.Path
	bb       bbSearch
}

// bipartite is fillBipartite with the scratch's reusable header
// storage.
func (sc *Scratch) bipartite(dg *distgraph.Graph) bipartite {
	n := dg.N()
	if cap(sc.adj) >= n {
		sc.adj = sc.adj[:n]
	} else {
		sc.adj = make([][]graph.Edge, n)
	}
	return fillBipartite(sc.adj, dg)
}

// lowerBound is LowerBound through the scratch-backed matcher.
func (sc *Scratch) lowerBound(dg *distgraph.Graph) int {
	_, _, size := sc.match.run(sc.bipartite(dg))
	return dg.N() - size
}

// MinCoverCtx is MinCover with cooperative cancellation and an
// optional reusable scratch. The branch-and-bound search checks ctx at
// node-expansion granularity (every few hundred explored states) and
// abandons the solve with ctx's error when it fires, so a canceled or
// timed-out request releases its worker instead of occupying it until
// the full search completes. A nil scratch uses a transient one.
//
// On success the returned cover is byte-identical to MinCover's for
// the same inputs — the cancellation checks never alter the explored
// tree or the node counts.
//
// When ctx carries an obs.Trace, the computation records a "cover"
// span with node/prune/path counts and an exact/truncated outcome;
// without one the extra cost is a nil check.
func MinCoverCtx(ctx context.Context, dg *distgraph.Graph, wrap bool, opts *Options, sc *Scratch) (Cover, error) {
	sp := obs.FromContext(ctx).StartSpan("cover")
	c, err := minCoverCtx(ctx, dg, wrap, opts, sc)
	if err != nil {
		sp.Note("aborted").End()
		return c, err
	}
	sp.Attr("nodes", int64(c.Nodes)).Attr("pruned", int64(c.Pruned)).Attr("paths", int64(len(c.Paths)))
	if c.Exact {
		sp.Note("exact")
	} else {
		sp.Note("truncated")
	}
	sp.End()
	return c, err
}

func minCoverCtx(ctx context.Context, dg *distgraph.Graph, wrap bool, opts *Options, sc *Scratch) (Cover, error) {
	if err := ctx.Err(); err != nil {
		return Cover{}, err
	}
	if sc == nil {
		sc = &Scratch{}
	}
	if !wrap {
		// Nodes counts one unit of search effort per access so the DAG
		// case reports work comparably with the wrap search instead of
		// a constant 0.
		return Cover{Paths: sortPaths(sc.minCoverDAG(dg)), ZeroCost: true, Exact: true, Nodes: dg.N()}, nil
	}
	budget := DefaultNodeBudget
	if opts != nil && opts.NodeBudget > 0 {
		budget = opts.NodeBudget
	}

	lb := sc.lowerBound(dg)

	// The greedy seed often already meets the matching lower bound;
	// checking it before constructing the search skips the search
	// initialization entirely on that fast path.
	var seed []model.Path
	if greedy := GreedyCover(dg, true); coverZeroCost(dg, greedy, true) {
		seed = greedy
		if len(greedy) == lb {
			return Cover{Paths: sortPaths(seed), ZeroCost: true, Exact: true, Nodes: dg.N()}, nil
		}
	}

	s := &sc.bb
	s.init(dg, budget, ctx.Done())
	if seed != nil {
		s.best = len(seed)
	}
	s.run()
	if s.aborted {
		return Cover{}, ctx.Err()
	}

	best := s.bestCover()
	if best == nil {
		best = seed // the search did not improve on the greedy seed
	}
	if best == nil {
		// No zero-cost cover exists; fall back to the intra-iteration
		// optimum. The search completing within budget proves
		// infeasibility.
		return Cover{
			Paths:    sortPaths(sc.minCoverDAG(dg)),
			ZeroCost: false,
			Exact:    !s.exhausted,
			Nodes:    s.nodes,
			Pruned:   s.pruned,
		}, nil
	}
	return Cover{
		Paths:    sortPaths(best),
		ZeroCost: true,
		Exact:    !s.exhausted || s.best == lb,
		Nodes:    s.nodes,
		Pruned:   s.pruned,
	}, nil
}
