package pathcover

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/graph"
	"dspaddr/internal/model"
)

// bruteMinZeroCover exhaustively partitions the accesses into
// zero-cost increasing subsequences and returns the minimum path
// count, or -1 if no zero-cost partition exists (possible only with
// wrap and stride > M). It is the reference oracle for the search.
func bruteMinZeroCover(dg *distgraph.Graph, wrap bool) int {
	n := dg.N()
	best := -1
	var open []model.Path
	var rec func(i int)
	rec = func(i int) {
		if best != -1 && len(open) >= best {
			return
		}
		if i == n {
			if wrap {
				for _, p := range open {
					if !dg.ZeroWrap(p[len(p)-1], p[0]) {
						return
					}
				}
			}
			if best == -1 || len(open) < best {
				best = len(open)
			}
			return
		}
		for pi := range open {
			tail := open[pi][len(open[pi])-1]
			if !dg.ZeroIntra(tail, i) {
				continue
			}
			open[pi] = append(open[pi], i)
			rec(i + 1)
			open[pi] = open[pi][:len(open[pi])-1]
		}
		open = append(open, model.Path{i})
		rec(i + 1)
		open = open[:len(open)-1]
	}
	rec(0)
	return best
}

func randomPattern(rng *rand.Rand, n, offsetRange, stride int) model.Pattern {
	offs := make([]int, n)
	for i := range offs {
		offs[i] = rng.Intn(2*offsetRange+1) - offsetRange
	}
	return model.Pattern{Array: "A", Stride: stride, Offsets: offs}
}

func validateCover(t *testing.T, dg *distgraph.Graph, paths []model.Path) {
	t.Helper()
	a := model.Assignment{Paths: paths}
	if err := a.Validate(dg.Pattern); err != nil {
		t.Fatalf("cover is not a valid partition: %v", err)
	}
}

func TestMinCoverDAGPaperExample(t *testing.T) {
	dg := distgraph.MustBuild(model.PaperExample(), 1)
	paths := MinCoverDAG(dg)
	validateCover(t, dg, paths)
	// The paper's example admits a two-register zero-cost allocation
	// intra-iteration, e.g. (a1,a3,a5,a6) and (a2,a4,a7); one register
	// is impossible because (a2,a3) has distance 2 > M.
	if len(paths) != 2 {
		t.Fatalf("K~ = %d, want 2 (paths %v)", len(paths), paths)
	}
	if !coverZeroCost(dg, paths, false) {
		t.Fatal("matching cover must be zero-cost intra-iteration")
	}
	if lb := LowerBound(dg); lb != 2 {
		t.Fatalf("LowerBound = %d, want 2", lb)
	}
}

func TestMinCoverDAGMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(8)
		pat := randomPattern(rng, n, 4, 1)
		m := rng.Intn(3)
		dg := distgraph.MustBuild(pat, m)
		paths := MinCoverDAG(dg)
		validateCover(t, dg, paths)
		if !coverZeroCost(dg, paths, false) {
			t.Fatalf("cover not zero-cost: %v (pattern %v M=%d)", paths, pat, m)
		}
		want := bruteMinZeroCover(dg, false)
		if len(paths) != want {
			t.Fatalf("MinCoverDAG = %d paths, brute force = %d (pattern %v M=%d)", len(paths), want, pat, m)
		}
		if lb := LowerBound(dg); lb != want {
			t.Fatalf("LowerBound = %d, want %d", lb, want)
		}
	}
}

func TestGreedyCoverProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(12)
		stride := 1 + rng.Intn(2)
		pat := randomPattern(rng, n, 5, stride)
		m := rng.Intn(3)
		dg := distgraph.MustBuild(pat, m)
		for _, wrap := range []bool{false, true} {
			paths := GreedyCover(dg, wrap)
			validateCover(t, dg, paths)
			// Greedy never violates intra-iteration zero cost.
			if !coverZeroCost(dg, paths, false) {
				t.Fatalf("greedy cover has intra cost (pattern %v M=%d wrap=%v)", pat, m, wrap)
			}
			// Greedy is an upper bound on the exact answer.
			if exact := bruteMinZeroCover(dg, wrap); exact != -1 && len(paths) < exact {
				t.Fatalf("greedy %d beat exact %d", len(paths), exact)
			}
		}
	}
}

func TestGreedyCoverWrapInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(12)
		pat := randomPattern(rng, n, 5, 1)
		m := rng.Intn(3)
		dg := distgraph.MustBuild(pat, m)
		// With stride <= M every singleton is wrap-zero, so the greedy
		// wrap cover must be fully zero-cost.
		if pat.Stride > m {
			continue
		}
		paths := GreedyCover(dg, true)
		if !coverZeroCost(dg, paths, true) {
			t.Fatalf("greedy wrap cover not zero-cost (pattern %v M=%d): %v", pat, m, paths)
		}
	}
}

func TestMinCoverNoWrapIsExact(t *testing.T) {
	dg := distgraph.MustBuild(model.PaperExample(), 1)
	c := MinCover(dg, false, nil)
	if !c.Exact || !c.ZeroCost {
		t.Fatalf("no-wrap MinCover should be exact zero-cost: %+v", c)
	}
	if c.K() != 2 {
		t.Fatalf("K~ = %d, want 2", c.K())
	}
	validateCover(t, dg, c.Paths)
	if err := c.Assignment().Validate(dg.Pattern); err != nil {
		t.Fatalf("Assignment invalid: %v", err)
	}
}

func TestMinCoverWrapMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(9)
		stride := 1 + rng.Intn(3)
		pat := randomPattern(rng, n, 4, stride)
		m := rng.Intn(3)
		dg := distgraph.MustBuild(pat, m)
		c := MinCover(dg, true, nil)
		validateCover(t, dg, c.Paths)
		want := bruteMinZeroCover(dg, true)
		if want == -1 {
			if c.ZeroCost {
				t.Fatalf("MinCover claims zero-cost but brute force says infeasible (pattern %v M=%d)", pat, m)
			}
			continue
		}
		if !c.ZeroCost {
			t.Fatalf("MinCover found no zero-cost cover but brute force found %d (pattern %v M=%d)", want, pat, m)
		}
		if !c.Exact {
			t.Fatalf("small instance should be exact (pattern %v M=%d)", pat, m)
		}
		if c.K() != want {
			t.Fatalf("MinCover K~ = %d, brute force = %d (pattern %v M=%d)", c.K(), want, pat, m)
		}
		if !coverZeroCost(dg, c.Paths, true) {
			t.Fatalf("claimed zero-cost cover is not (pattern %v M=%d)", pat, m)
		}
	}
}

func TestMinCoverWrapPaperExample(t *testing.T) {
	dg := distgraph.MustBuild(model.PaperExample(), 1)
	c := MinCover(dg, true, nil)
	want := bruteMinZeroCover(dg, true)
	if c.K() != want || !c.ZeroCost || !c.Exact {
		t.Fatalf("wrap MinCover = %+v, brute force K~ = %d", c, want)
	}
	// Wrap constraints can only increase the register demand.
	if c.K() < 2 {
		t.Fatalf("wrap K~ = %d below intra K~ = 2", c.K())
	}
}

func TestMinCoverInfeasibleWrap(t *testing.T) {
	// Stride far above M and offsets spread so that no zero-cost wrap
	// exists: every path's wrap distance is offset(head)+stride-offset(tail)
	// with stride=9, offsets in {0,5}: possible wraps 9, 4, 14 — all > 1.
	pat := model.Pattern{Array: "A", Stride: 9, Offsets: []int{0, 5}}
	dg := distgraph.MustBuild(pat, 1)
	if got := bruteMinZeroCover(dg, true); got != -1 {
		t.Fatalf("expected infeasible, brute force found %d", got)
	}
	c := MinCover(dg, true, nil)
	if c.ZeroCost {
		t.Fatal("MinCover should report infeasibility via ZeroCost=false")
	}
	if !c.Exact {
		t.Fatal("completed search should prove infeasibility")
	}
	validateCover(t, dg, c.Paths)
}

func TestMinCoverNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	pat := randomPattern(rng, 24, 6, 2)
	dg := distgraph.MustBuild(pat, 1)
	// A budget of 1 forces immediate truncation; the result must still
	// be a valid cover (greedy or fallback).
	c := MinCover(dg, true, &Options{NodeBudget: 1})
	validateCover(t, dg, c.Paths)
	full := MinCover(dg, true, nil)
	validateCover(t, dg, full.Paths)
	if full.ZeroCost && c.ZeroCost && full.K() > c.K() {
		t.Fatalf("full search (%d) worse than truncated (%d)", full.K(), c.K())
	}
}

func TestMinCoverLargePatternTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 5; trial++ {
		pat := randomPattern(rng, 50, 8, 1)
		dg := distgraph.MustBuild(pat, 1)
		c := MinCover(dg, true, nil)
		validateCover(t, dg, c.Paths)
		if c.ZeroCost && c.K() < LowerBound(dg) {
			t.Fatalf("K~ %d below lower bound %d", c.K(), LowerBound(dg))
		}
	}
}

func TestHopcroftKarpKnownCases(t *testing.T) {
	edges := func(targets ...int) []graph.Edge {
		out := make([]graph.Edge, len(targets))
		for i, v := range targets {
			out[i] = graph.Edge{To: v}
		}
		return out
	}
	// Perfect matching on K_{3,3}.
	g := bipartite{nLeft: 3, nRight: 3, adj: [][]graph.Edge{edges(0, 1, 2), edges(0, 1, 2), edges(0, 1, 2)}}
	if _, _, size := hopcroftKarp(g); size != 3 {
		t.Fatalf("K33 matching = %d, want 3", size)
	}
	// Augmenting-path case: naive greedy (0-0, then 1 stuck) would find 1.
	g = bipartite{nLeft: 2, nRight: 2, adj: [][]graph.Edge{edges(0, 1), edges(0)}}
	matchL, matchR, size := hopcroftKarp(g)
	if size != 2 {
		t.Fatalf("matching = %d, want 2", size)
	}
	if matchL[1] != 0 || matchR[1] != 0 {
		t.Fatalf("expected 1-0 and 0-1: matchL=%v matchR=%v", matchL, matchR)
	}
	// Empty graph.
	g = bipartite{nLeft: 2, nRight: 2, adj: [][]graph.Edge{edges(), edges()}}
	if _, _, size := hopcroftKarp(g); size != 0 {
		t.Fatal("empty graph should have empty matching")
	}
}

func TestSingleAccessPattern(t *testing.T) {
	pat := model.NewPattern(3)
	dg := distgraph.MustBuild(pat, 1)
	c := MinCover(dg, false, nil)
	if c.K() != 1 {
		t.Fatalf("single access K~ = %d", c.K())
	}
	cw := MinCover(dg, true, nil)
	if cw.K() != 1 || !cw.ZeroCost {
		t.Fatalf("single access wrap cover = %+v", cw)
	}
}

func TestMonotoneDecreasingPattern(t *testing.T) {
	// Offsets descending by 1: a single register post-decrementing
	// covers everything intra-iteration.
	pat := model.NewPattern(5, 4, 3, 2, 1, 0)
	dg := distgraph.MustBuild(pat, 1)
	c := MinCover(dg, false, nil)
	if c.K() != 1 {
		t.Fatalf("descending pattern K~ = %d, want 1", c.K())
	}
	// With wrap: tail 0 -> head 5 next iteration distance 5+1-0 = 6;
	// single path is not wrap-zero, more registers are needed.
	cw := MinCover(dg, true, nil)
	if cw.ZeroCost && cw.K() == 1 {
		t.Fatal("wrap cover of descending pattern cannot be one register")
	}
}

// TestMinCoverCtxCancellation checks the cooperative-cancellation
// contract of MinCoverCtx: a pre-canceled context aborts before any
// work, and a context canceled mid-search unwinds with its error
// instead of running the full branch-and-bound.
func TestMinCoverCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	offs := make([]int, 24)
	for i := range offs {
		offs[i] = rng.Intn(7) - 3
	}
	pat := model.Pattern{Array: "A", Stride: 9, Offsets: offs}
	dg := distgraph.MustBuild(pat, 2)

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MinCoverCtx(pre, dg, true, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: err = %v, want context.Canceled", err)
	}

	mid, cancelMid := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancelMid()
	}()
	start := time.Now()
	_, err := MinCoverCtx(mid, dg, true, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-search cancel: err = %v, want context.Canceled", err)
	}
	// The uncancelled search exhausts its 2M-node budget (tens of
	// milliseconds); the canceled one must unwind within the ctx poll
	// granularity of a few hundred nodes.
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("canceled search took %v, want prompt unwind", d)
	}

	// A Background context must leave results byte-identical to
	// MinCover (the check never alters the explored tree).
	got, err := MinCoverCtx(context.Background(), dg, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := MinCover(dg, true, nil); !coversEqual(got, want) {
		t.Fatalf("ctx search diverged from MinCover:\nctx  %+v\nplain %+v", got, want)
	}
}
