package pathcover

import (
	"dspaddr/internal/distgraph"
	"dspaddr/internal/graph"
	"dspaddr/internal/model"
)

// Cover is the result of a phase-1 computation: a partition of the
// pattern's accesses into register subsequences ("paths").
type Cover struct {
	// Paths partitions the accesses; Paths[r] is register r's
	// subsequence, sorted by first access.
	Paths []model.Path
	// ZeroCost reports whether every path is zero-cost under the mode
	// the cover was computed for (with or without wrap transitions).
	ZeroCost bool
	// Exact reports whether the path count is proven minimal among
	// zero-cost covers (false when the branch-and-bound search was
	// truncated by its node budget).
	Exact bool
	// Nodes counts the search effort spent: branch-and-bound states
	// explored for the wrap objective, or one unit per access for the
	// polynomial DAG case (and for a greedy seed that already meets
	// the lower bound), so work counters stay comparable across modes.
	Nodes int
	// Pruned counts branch-and-bound subtrees cut by the bound, the
	// bad-wrap feasibility count and the reachability prune (0 for the
	// polynomial DAG case and the greedy fast path).
	Pruned int
}

// K returns the number of paths, the paper's K~ when the cover is a
// minimal zero-cost cover.
func (c Cover) K() int { return len(c.Paths) }

// Assignment converts the cover to a model.Assignment.
func (c Cover) Assignment() model.Assignment {
	a := model.Assignment{Paths: make([]model.Path, len(c.Paths))}
	for i, p := range c.Paths {
		a.Paths[i] = p.Clone()
	}
	return a
}

// LowerBound returns a lower bound on the number of paths of any
// zero-cost cover: N minus the maximum matching of the bipartite
// out/in-copy graph of the intra-iteration distance graph (exact for
// the no-wrap case by König's theorem, a relaxation otherwise). This is
// the bound technique the paper adopts from Araujo et al. [2].
func LowerBound(dg *distgraph.Graph) int {
	n := dg.N()
	_, _, size := hopcroftKarp(intraBipartite(dg))
	return n - size
}

// fillBipartite views the intra-iteration distance graph as the
// bipartite out/in-copy graph of the matcher, writing the adjacency
// headers into adj (which must have length dg.N()). The headers alias
// the digraph's own edge storage; nothing is copied.
func fillBipartite(adj [][]graph.Edge, dg *distgraph.Graph) bipartite {
	n := dg.N()
	for u := 0; u < n; u++ {
		adj[u] = dg.Intra.Out(u)
	}
	return bipartite{nLeft: n, nRight: n, adj: adj}
}

// intraBipartite is fillBipartite with transient header storage.
func intraBipartite(dg *distgraph.Graph) bipartite {
	return fillBipartite(make([][]graph.Edge, dg.N()), dg)
}

// MinCoverDAG computes an exact minimum path cover of the
// intra-iteration distance graph (wrap transitions ignored) via maximum
// bipartite matching. The result is always zero-cost intra-iteration
// and its size equals LowerBound(dg).
func MinCoverDAG(dg *distgraph.Graph) []model.Path {
	var sc Scratch
	return clonePaths(sc.minCoverDAG(dg))
}

// minCoverDAG is the scratch-backed core of MinCoverDAG: the matcher
// state, the bipartite adjacency headers and the path store (one flat
// index array plus headers) are all drawn from the scratch, so a warm
// solve performs no allocation here. The returned paths are valid
// until the scratch's next use.
func (sc *Scratch) minCoverDAG(dg *distgraph.Graph) []model.Path {
	n := dg.N()
	matchL, matchR, _ := sc.match.run(sc.bipartite(dg))

	sc.dagFlat = sc.dagFlat[:0]
	if cap(sc.dagFlat) < n {
		sc.dagFlat = make([]int, 0, n)
	}
	sc.dagPaths = sc.dagPaths[:0]
	for v := 0; v < n; v++ {
		if matchR[v] != -1 {
			continue // v has a predecessor in its path
		}
		start := len(sc.dagFlat)
		sc.dagFlat = append(sc.dagFlat, v)
		for u := v; matchL[u] != -1; u = matchL[u] {
			sc.dagFlat = append(sc.dagFlat, matchL[u])
		}
		sc.dagPaths = append(sc.dagPaths, model.Path(sc.dagFlat[start:len(sc.dagFlat):len(sc.dagFlat)]))
	}
	return sc.dagPaths
}

// GreedyCover computes a heuristic zero-cost cover by scanning the
// accesses in program order and appending each to a compatible open
// path (smallest absolute post-modify distance wins; ties favour the
// oldest path), opening a new path when none fits. With wrap set, an
// append is only allowed if the path's loop-back transition stays
// zero-cost, so the result is a zero-cost cover whenever one is reached
// greedily. The path count is the upper bound used to seed the
// branch-and-bound search.
func GreedyCover(dg *distgraph.Graph, wrap bool) []model.Path {
	n := dg.N()
	var paths []model.Path
	for i := 0; i < n; i++ {
		best := -1
		bestDist := 0
		for pi, p := range paths {
			tail := p[len(p)-1]
			if !dg.ZeroIntra(tail, i) {
				continue
			}
			if wrap && !dg.ZeroWrap(i, p[0]) {
				continue
			}
			d := dg.Pattern.Distance(tail, i)
			if d < 0 {
				d = -d
			}
			if best == -1 || d < bestDist {
				best, bestDist = pi, d
			}
		}
		if best >= 0 {
			paths[best] = append(paths[best], i)
		} else {
			paths = append(paths, model.Path{i})
		}
	}
	return paths
}

// coverZeroCost reports whether all paths are zero-cost in the given
// mode.
func coverZeroCost(dg *distgraph.Graph, paths []model.Path, wrap bool) bool {
	for _, p := range paths {
		if !dg.PathIsZeroCost(p, wrap) {
			return false
		}
	}
	return true
}
