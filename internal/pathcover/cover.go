package pathcover

import (
	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
)

// Cover is the result of a phase-1 computation: a partition of the
// pattern's accesses into register subsequences ("paths").
type Cover struct {
	// Paths partitions the accesses; Paths[r] is register r's
	// subsequence, sorted by first access.
	Paths []model.Path
	// ZeroCost reports whether every path is zero-cost under the mode
	// the cover was computed for (with or without wrap transitions).
	ZeroCost bool
	// Exact reports whether the path count is proven minimal among
	// zero-cost covers (false when the branch-and-bound search was
	// truncated by its node budget).
	Exact bool
	// Nodes counts the search effort spent: branch-and-bound states
	// explored for the wrap objective, or one unit per access for the
	// polynomial DAG case (and for a greedy seed that already meets
	// the lower bound), so work counters stay comparable across modes.
	Nodes int
}

// K returns the number of paths, the paper's K~ when the cover is a
// minimal zero-cost cover.
func (c Cover) K() int { return len(c.Paths) }

// Assignment converts the cover to a model.Assignment.
func (c Cover) Assignment() model.Assignment {
	a := model.Assignment{Paths: make([]model.Path, len(c.Paths))}
	for i, p := range c.Paths {
		a.Paths[i] = p.Clone()
	}
	return a
}

// LowerBound returns a lower bound on the number of paths of any
// zero-cost cover: N minus the maximum matching of the bipartite
// out/in-copy graph of the intra-iteration distance graph (exact for
// the no-wrap case by König's theorem, a relaxation otherwise). This is
// the bound technique the paper adopts from Araujo et al. [2].
func LowerBound(dg *distgraph.Graph) int {
	n := dg.N()
	_, _, size := hopcroftKarp(intraBipartite(dg))
	return n - size
}

func intraBipartite(dg *distgraph.Graph) bipartite {
	n := dg.N()
	b := bipartite{nLeft: n, nRight: n, adj: make([][]int, n)}
	for u := 0; u < n; u++ {
		b.adj[u] = dg.Intra.Successors(u)
	}
	return b
}

// MinCoverDAG computes an exact minimum path cover of the
// intra-iteration distance graph (wrap transitions ignored) via maximum
// bipartite matching. The result is always zero-cost intra-iteration
// and its size equals LowerBound(dg).
func MinCoverDAG(dg *distgraph.Graph) []model.Path {
	n := dg.N()
	matchL, matchR, _ := hopcroftKarp(intraBipartite(dg))
	var paths []model.Path
	for v := 0; v < n; v++ {
		if matchR[v] != -1 {
			continue // v has a predecessor in its path
		}
		p := model.Path{v}
		for u := v; matchL[u] != -1; u = matchL[u] {
			p = append(p, matchL[u])
		}
		paths = append(paths, p)
	}
	return paths
}

// GreedyCover computes a heuristic zero-cost cover by scanning the
// accesses in program order and appending each to a compatible open
// path (smallest absolute post-modify distance wins; ties favour the
// oldest path), opening a new path when none fits. With wrap set, an
// append is only allowed if the path's loop-back transition stays
// zero-cost, so the result is a zero-cost cover whenever one is reached
// greedily. The path count is the upper bound used to seed the
// branch-and-bound search.
func GreedyCover(dg *distgraph.Graph, wrap bool) []model.Path {
	n := dg.N()
	var paths []model.Path
	for i := 0; i < n; i++ {
		best := -1
		bestDist := 0
		for pi, p := range paths {
			tail := p[len(p)-1]
			if !dg.ZeroIntra(tail, i) {
				continue
			}
			if wrap && !dg.ZeroWrap(i, p[0]) {
				continue
			}
			d := dg.Pattern.Distance(tail, i)
			if d < 0 {
				d = -d
			}
			if best == -1 || d < bestDist {
				best, bestDist = pi, d
			}
		}
		if best >= 0 {
			paths[best] = append(paths[best], i)
		} else {
			paths = append(paths, model.Path{i})
		}
	}
	return paths
}

// coverZeroCost reports whether all paths are zero-cost in the given
// mode.
func coverZeroCost(dg *distgraph.Graph, paths []model.Path, wrap bool) bool {
	for _, p := range paths {
		if !dg.PathIsZeroCost(p, wrap) {
			return false
		}
	}
	return true
}
