package pathcover

import (
	"sort"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
)

// Options tunes the branch-and-bound search of MinCover.
type Options struct {
	// NodeBudget caps the number of explored search states; when the
	// budget is exhausted the best cover found so far is returned with
	// Exact=false. Zero selects DefaultNodeBudget.
	NodeBudget int
}

// DefaultNodeBudget is the branch-and-bound state cap used when
// Options.NodeBudget is zero. Patterns of the sizes the paper studies
// (N up to ~50) complete far below this limit.
const DefaultNodeBudget = 2_000_000

// MinCover computes phase 1 of the paper's allocator: a cover of the
// distance graph by the minimum number K~ of node-disjoint zero-cost
// paths.
//
// With wrap=false the problem is a minimum path cover of a DAG, solved
// exactly in polynomial time via maximum matching. With wrap=true the
// loop-back transition of every path must also be zero-cost; MinCover
// then runs a branch-and-bound search seeded with the matching lower
// bound and the greedy upper bound, mirroring the procedure of the
// companion ASP-DAC'98 paper. If no zero-cost cover exists at all
// (possible only when the loop stride exceeds the modify range), the
// returned cover is the intra-iteration optimum with ZeroCost=false.
//
// The search allocates all scratch state up front and runs place()
// allocation-free: the per-node symmetric-duplicate dedup uses a flat
// offset-pair array with generation stamps and an undo log instead of
// a map, new paths draw from per-depth pooled buffers, and improved
// covers are recorded into a reusable flat store. See bb_reference.go
// for the retained pre-rewrite search the differential tests compare
// against.
func MinCover(dg *distgraph.Graph, wrap bool, opts *Options) Cover {
	if !wrap {
		// Nodes counts one unit of search effort per access so the DAG
		// case reports work comparably with the wrap search instead of
		// a constant 0.
		return Cover{Paths: sortPaths(MinCoverDAG(dg)), ZeroCost: true, Exact: true, Nodes: dg.N()}
	}
	budget := DefaultNodeBudget
	if opts != nil && opts.NodeBudget > 0 {
		budget = opts.NodeBudget
	}

	lb := LowerBound(dg)

	// The greedy seed often already meets the matching lower bound;
	// checking it before constructing the search skips the scratch
	// allocation entirely on that fast path.
	var seed []model.Path
	if greedy := GreedyCover(dg, true); coverZeroCost(dg, greedy, true) {
		seed = greedy
		if len(greedy) == lb {
			return Cover{Paths: sortPaths(seed), ZeroCost: true, Exact: true, Nodes: dg.N()}
		}
	}

	s := newBBSearch(dg, budget)
	if seed != nil {
		s.best = len(seed)
	}
	s.run()

	best := s.bestCover()
	if best == nil {
		best = seed // the search did not improve on the greedy seed
	}
	if best == nil {
		// No zero-cost cover exists; fall back to the intra-iteration
		// optimum. The search completing within budget proves
		// infeasibility.
		return Cover{
			Paths:    sortPaths(MinCoverDAG(dg)),
			ZeroCost: false,
			Exact:    !s.exhausted,
			Nodes:    s.nodes,
		}
	}
	return Cover{
		Paths:    sortPaths(best),
		ZeroCost: true,
		Exact:    !s.exhausted || s.best == lb,
		Nodes:    s.nodes,
	}
}

// bbSearch carries the branch-and-bound state: accesses are placed in
// program order, each either appended to an open path (keeping all
// intra transitions zero-cost) or opening a new path; a leaf is
// feasible when every path's wrap transition is zero-cost.
//
// All scratch storage is allocated by newBBSearch and reused, so the
// recursive place() performs no allocation (asserted by
// TestPlaceZeroAlloc).
type bbSearch struct {
	dg        *distgraph.Graph
	n         int
	budget    int
	nodes     int
	exhausted bool
	best      int
	open      []model.Path
	// badWrap tracks, per open path, whether its current (tail, head)
	// wrap transition costs; such paths need at least one more access.
	badWrap []bool
	numBad  int

	// offID maps each access to a dense id of its offset value; the
	// symmetric-duplicate scratch below is keyed on (tail id, head id).
	offID  []int
	numOff int
	// tried is the flat offset-pair dedup scratch. An entry equal to
	// the current node's generation means "already tried here"; stamps
	// from other nodes never collide because every place() call draws
	// a fresh generation, and the undo log restores overwritten
	// ancestor stamps on exit.
	tried []uint64
	gen   uint64
	undo  []triedUndo
	// lastSucc[v] memoizes the largest zero-cost successor of v (-1 if
	// none), making the bad-wrap reachability prune O(1) per open path
	// with no edge-list walk.
	lastSucc []int
	// pathBuf pools one reusable path buffer per open-path slot; the
	// buffer backing a slot survives backtracking, so opening a path
	// at a previously visited depth costs no allocation.
	pathBuf []model.Path
	// bestFlat/bestLens store the best cover found as one flat index
	// array plus per-path lengths, overwritten in place on every
	// improvement.
	bestFlat []int
	bestLens []int
	haveBest bool
}

// triedUndo records one overwritten dedup stamp for restoration.
type triedUndo struct {
	key  int
	prev uint64
}

// newBBSearch allocates the search plus all scratch state for dg.
func newBBSearch(dg *distgraph.Graph, budget int) *bbSearch {
	n := dg.N()
	s := &bbSearch{dg: dg, n: n, budget: budget, best: int(^uint(0) >> 1)}
	ids := make(map[int]int, n)
	s.offID = make([]int, n)
	for i, d := range dg.Pattern.Offsets {
		id, ok := ids[d]
		if !ok {
			id = len(ids)
			ids[d] = id
		}
		s.offID[i] = id
	}
	s.numOff = len(ids)
	s.tried = make([]uint64, s.numOff*s.numOff)
	s.undo = make([]triedUndo, 0, 2*n)
	s.lastSucc = make([]int, n)
	for v := 0; v < n; v++ {
		succ := dg.Intra.Out(v)
		if len(succ) == 0 {
			s.lastSucc[v] = -1
		} else {
			s.lastSucc[v] = succ[len(succ)-1].To
		}
	}
	s.open = make([]model.Path, 0, n)
	s.badWrap = make([]bool, 0, n)
	s.pathBuf = make([]model.Path, n)
	s.bestFlat = make([]int, 0, n)
	s.bestLens = make([]int, 0, n)
	return s
}

func (s *bbSearch) run() {
	s.open = s.open[:0]
	s.badWrap = s.badWrap[:0]
	s.numBad = 0
	s.place(0)
}

// reset rewinds the search outcome so run() can be repeated on the
// same graph with all scratch storage warm (used by the zero-alloc
// test and benchmark).
func (s *bbSearch) reset() {
	s.nodes = 0
	s.exhausted = false
	s.best = int(^uint(0) >> 1)
	s.haveBest = false
}

func (s *bbSearch) place(i int) {
	if s.exhausted {
		return
	}
	s.nodes++
	if s.nodes > s.budget {
		s.exhausted = true
		return
	}
	if len(s.open) >= s.best {
		return // cannot improve: path count never decreases
	}
	remaining := s.n - i
	if s.numBad > remaining {
		return // each bad-wrap path needs at least one future access
	}
	if i == s.n {
		if s.numBad == 0 {
			s.best = len(s.open)
			s.saveBest()
		}
		return
	}

	// A bad-wrap path whose tail has no future zero-cost successor can
	// never be repaired; prune the whole branch.
	for pi, p := range s.open {
		if s.badWrap[pi] && s.lastSucc[p[len(p)-1]] < i {
			return
		}
	}

	// Branch 1: append access i to each compatible open path, skipping
	// symmetric duplicates (paths with identical tail and head offsets
	// are interchangeable).
	s.gen++
	gen := s.gen
	undoBase := len(s.undo)
	for pi := range s.open {
		p := s.open[pi]
		tail, head := p[len(p)-1], p[0]
		if !s.dg.ZeroIntra(tail, i) {
			continue
		}
		key := s.offID[tail]*s.numOff + s.offID[head]
		if s.tried[key] == gen {
			continue
		}
		s.undo = append(s.undo, triedUndo{key: key, prev: s.tried[key]})
		s.tried[key] = gen

		wasBad := s.badWrap[pi]
		nowBad := !s.dg.ZeroWrap(i, head)
		s.open[pi] = append(p, i)
		s.badWrap[pi] = nowBad
		s.numBad += boolDelta(wasBad, nowBad)

		s.place(i + 1)

		s.open[pi] = p
		s.badWrap[pi] = wasBad
		s.numBad -= boolDelta(wasBad, nowBad)
	}
	// Restore overwritten stamps so ancestor nodes still see theirs.
	for u := len(s.undo) - 1; u >= undoBase; u-- {
		s.tried[s.undo[u].key] = s.undo[u].prev
	}
	s.undo = s.undo[:undoBase]

	// Branch 2: open a new path at access i.
	newBad := !s.dg.ZeroWrap(i, i) // singleton wrap distance is the stride
	d := len(s.open)
	buf := s.pathBuf[d]
	if cap(buf) < s.n {
		buf = make(model.Path, 0, s.n)
		s.pathBuf[d] = buf
	}
	s.open = append(s.open, append(buf[:0], i))
	s.badWrap = append(s.badWrap, newBad)
	if newBad {
		s.numBad++
	}

	s.place(i + 1)

	s.open = s.open[:len(s.open)-1]
	s.badWrap = s.badWrap[:len(s.badWrap)-1]
	if newBad {
		s.numBad--
	}
}

// saveBest records the current open paths into the flat best store
// without allocating.
func (s *bbSearch) saveBest() {
	s.bestFlat = s.bestFlat[:0]
	s.bestLens = s.bestLens[:0]
	for _, p := range s.open {
		s.bestFlat = append(s.bestFlat, p...)
		s.bestLens = append(s.bestLens, len(p))
	}
	s.haveBest = true
}

// bestCover materializes the recorded best cover, nil if the search
// never improved on its seed.
func (s *bbSearch) bestCover() []model.Path {
	if !s.haveBest {
		return nil
	}
	out := make([]model.Path, len(s.bestLens))
	off := 0
	for i, l := range s.bestLens {
		out[i] = append(model.Path(nil), s.bestFlat[off:off+l]...)
		off += l
	}
	return out
}

func boolDelta(was, now bool) int {
	switch {
	case !was && now:
		return 1
	case was && !now:
		return -1
	default:
		return 0
	}
}

func clonePaths(paths []model.Path) []model.Path {
	out := make([]model.Path, len(paths))
	for i, p := range paths {
		out[i] = p.Clone()
	}
	return out
}

func sortPaths(paths []model.Path) []model.Path {
	sort.Slice(paths, func(i, j int) bool { return paths[i][0] < paths[j][0] })
	return paths
}
