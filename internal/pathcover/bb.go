package pathcover

import (
	"sort"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
)

// Options tunes the branch-and-bound search of MinCover.
type Options struct {
	// NodeBudget caps the number of explored search states; when the
	// budget is exhausted the best cover found so far is returned with
	// Exact=false. Zero selects DefaultNodeBudget.
	NodeBudget int
}

// DefaultNodeBudget is the branch-and-bound state cap used when
// Options.NodeBudget is zero. Patterns of the sizes the paper studies
// (N up to ~50) complete far below this limit.
const DefaultNodeBudget = 2_000_000

// MinCover computes phase 1 of the paper's allocator: a cover of the
// distance graph by the minimum number K~ of node-disjoint zero-cost
// paths.
//
// With wrap=false the problem is a minimum path cover of a DAG, solved
// exactly in polynomial time via maximum matching. With wrap=true the
// loop-back transition of every path must also be zero-cost; MinCover
// then runs a branch-and-bound search seeded with the matching lower
// bound and the greedy upper bound, mirroring the procedure of the
// companion ASP-DAC'98 paper. If no zero-cost cover exists at all
// (possible only when the loop stride exceeds the modify range), the
// returned cover is the intra-iteration optimum with ZeroCost=false.
func MinCover(dg *distgraph.Graph, wrap bool, opts *Options) Cover {
	if !wrap {
		paths := sortPaths(MinCoverDAG(dg))
		return Cover{Paths: paths, ZeroCost: true, Exact: true}
	}
	budget := DefaultNodeBudget
	if opts != nil && opts.NodeBudget > 0 {
		budget = opts.NodeBudget
	}

	lb := LowerBound(dg)
	s := &bbSearch{dg: dg, n: dg.N(), budget: budget, best: int(^uint(0) >> 1)}

	if greedy := GreedyCover(dg, true); coverZeroCost(dg, greedy, true) {
		s.best = len(greedy)
		s.bestPaths = clonePaths(greedy)
		if s.best == lb {
			return Cover{Paths: sortPaths(s.bestPaths), ZeroCost: true, Exact: true}
		}
	}

	s.run()

	if s.bestPaths == nil {
		// No zero-cost cover exists; fall back to the intra-iteration
		// optimum. The search completing within budget proves
		// infeasibility.
		return Cover{
			Paths:    sortPaths(MinCoverDAG(dg)),
			ZeroCost: false,
			Exact:    !s.exhausted,
			Nodes:    s.nodes,
		}
	}
	return Cover{
		Paths:    sortPaths(s.bestPaths),
		ZeroCost: true,
		Exact:    !s.exhausted || s.best == lb,
		Nodes:    s.nodes,
	}
}

// bbSearch carries the branch-and-bound state: accesses are placed in
// program order, each either appended to an open path (keeping all
// intra transitions zero-cost) or opening a new path; a leaf is
// feasible when every path's wrap transition is zero-cost.
type bbSearch struct {
	dg        *distgraph.Graph
	n         int
	budget    int
	nodes     int
	exhausted bool
	best      int
	bestPaths []model.Path
	open      []model.Path
	// badWrap tracks, per open path, whether its current (tail, head)
	// wrap transition costs; such paths need at least one more access.
	badWrap []bool
	numBad  int
}

func (s *bbSearch) run() {
	s.open = s.open[:0]
	s.badWrap = s.badWrap[:0]
	s.numBad = 0
	s.place(0)
}

func (s *bbSearch) place(i int) {
	if s.exhausted {
		return
	}
	s.nodes++
	if s.nodes > s.budget {
		s.exhausted = true
		return
	}
	if len(s.open) >= s.best {
		return // cannot improve: path count never decreases
	}
	remaining := s.n - i
	if s.numBad > remaining {
		return // each bad-wrap path needs at least one future access
	}
	if i == s.n {
		if s.numBad == 0 {
			s.best = len(s.open)
			s.bestPaths = clonePaths(s.open)
		}
		return
	}

	// A bad-wrap path whose tail has no future zero-cost successor can
	// never be repaired; prune the whole branch.
	for pi, p := range s.open {
		if s.badWrap[pi] && !s.hasFutureSuccessor(p[len(p)-1], i) {
			return
		}
	}

	// Branch 1: append access i to each compatible open path, skipping
	// symmetric duplicates (paths with identical tail and head offsets
	// are interchangeable).
	type sig struct{ tail, head int }
	tried := make(map[sig]bool)
	for pi := range s.open {
		p := s.open[pi]
		tail, head := p[len(p)-1], p[0]
		if !s.dg.ZeroIntra(tail, i) {
			continue
		}
		key := sig{s.dg.Pattern.Offsets[tail], s.dg.Pattern.Offsets[head]}
		if tried[key] {
			continue
		}
		tried[key] = true

		wasBad := s.badWrap[pi]
		nowBad := !s.dg.ZeroWrap(i, head)
		s.open[pi] = append(p, i)
		s.badWrap[pi] = nowBad
		s.numBad += boolDelta(wasBad, nowBad)

		s.place(i + 1)

		s.open[pi] = p
		s.badWrap[pi] = wasBad
		s.numBad -= boolDelta(wasBad, nowBad)
	}

	// Branch 2: open a new path at access i.
	newBad := !s.dg.ZeroWrap(i, i) // singleton wrap distance is the stride
	s.open = append(s.open, model.Path{i})
	s.badWrap = append(s.badWrap, newBad)
	if newBad {
		s.numBad++
	}

	s.place(i + 1)

	s.open = s.open[:len(s.open)-1]
	s.badWrap = s.badWrap[:len(s.badWrap)-1]
	if newBad {
		s.numBad--
	}
}

// hasFutureSuccessor reports whether tail has any zero-cost successor
// with index >= i.
func (s *bbSearch) hasFutureSuccessor(tail, i int) bool {
	succ := s.dg.Intra.Out(tail)
	// Successors are sorted ascending; the largest decides.
	return len(succ) > 0 && succ[len(succ)-1].To >= i
}

func boolDelta(was, now bool) int {
	switch {
	case !was && now:
		return 1
	case was && !now:
		return -1
	default:
		return 0
	}
}

func clonePaths(paths []model.Path) []model.Path {
	out := make([]model.Path, len(paths))
	for i, p := range paths {
		out[i] = p.Clone()
	}
	return out
}

func sortPaths(paths []model.Path) []model.Path {
	sort.Slice(paths, func(i, j int) bool { return paths[i][0] < paths[j][0] })
	return paths
}
