package pathcover

import (
	"context"
	"slices"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
)

// Options tunes the branch-and-bound search of MinCover.
type Options struct {
	// NodeBudget caps the number of explored search states; when the
	// budget is exhausted the best cover found so far is returned with
	// Exact=false. Zero selects DefaultNodeBudget.
	NodeBudget int
}

// DefaultNodeBudget is the branch-and-bound state cap used when
// Options.NodeBudget is zero. Patterns of the sizes the paper studies
// (N up to ~50) complete far below this limit.
const DefaultNodeBudget = 2_000_000

// MinCover computes phase 1 of the paper's allocator: a cover of the
// distance graph by the minimum number K~ of node-disjoint zero-cost
// paths.
//
// With wrap=false the problem is a minimum path cover of a DAG, solved
// exactly in polynomial time via maximum matching. With wrap=true the
// loop-back transition of every path must also be zero-cost; MinCover
// then runs a branch-and-bound search seeded with the matching lower
// bound and the greedy upper bound, mirroring the procedure of the
// companion ASP-DAC'98 paper. If no zero-cost cover exists at all
// (possible only when the loop stride exceeds the modify range), the
// returned cover is the intra-iteration optimum with ZeroCost=false.
//
// The search allocates all scratch state up front and runs place()
// allocation-free: the per-node symmetric-duplicate dedup uses a flat
// offset-pair array with generation stamps and an undo log instead of
// a map, new paths draw from per-depth pooled buffers, and improved
// covers are recorded into a reusable flat store. See bb_reference.go
// for the retained pre-rewrite search the differential tests compare
// against. MinCoverCtx (scratch.go) is the same computation with
// cooperative cancellation and a reusable cross-solve scratch.
func MinCover(dg *distgraph.Graph, wrap bool, opts *Options) Cover {
	c, _ := MinCoverCtx(context.Background(), dg, wrap, opts, nil)
	return c
}

// bbSearch carries the branch-and-bound state: accesses are placed in
// program order, each either appended to an open path (keeping all
// intra transitions zero-cost) or opening a new path; a leaf is
// feasible when every path's wrap transition is zero-cost.
//
// All scratch storage is allocated by newBBSearch and reused, so the
// recursive place() performs no allocation (asserted by
// TestPlaceZeroAlloc).
type bbSearch struct {
	dg        *distgraph.Graph
	n         int
	budget    int
	nodes     int
	pruned    int
	exhausted bool
	best      int
	// ctxDone, when non-nil, is polled every ctxCheckMask+1 explored
	// nodes; a fired channel sets aborted and unwinds the search
	// without touching the explored-tree bookkeeping.
	ctxDone <-chan struct{}
	aborted bool
	open    []model.Path
	// badWrap tracks, per open path, whether its current (tail, head)
	// wrap transition costs; such paths need at least one more access.
	badWrap []bool
	numBad  int

	// offID maps each access to a dense id of its offset value; the
	// symmetric-duplicate scratch below is keyed on (tail id, head id).
	// offIDs is the persistent offset→id map, cleared (not dropped)
	// between graphs so reuse stays allocation-free once warm.
	offID  []int
	offIDs map[int]int
	numOff int
	// tried is the flat offset-pair dedup scratch. An entry equal to
	// the current node's generation means "already tried here"; stamps
	// from other nodes never collide because every place() call draws
	// a fresh generation, and the undo log restores overwritten
	// ancestor stamps on exit.
	tried []uint64
	gen   uint64
	undo  []triedUndo
	// lastSucc[v] memoizes the largest zero-cost successor of v (-1 if
	// none), making the bad-wrap reachability prune O(1) per open path
	// with no edge-list walk.
	lastSucc []int
	// pathBuf pools one reusable path buffer per open-path slot; the
	// buffer backing a slot survives backtracking, so opening a path
	// at a previously visited depth costs no allocation.
	pathBuf []model.Path
	// bestFlat/bestLens store the best cover found as one flat index
	// array plus per-path lengths, overwritten in place on every
	// improvement.
	bestFlat []int
	bestLens []int
	haveBest bool
}

// triedUndo records one overwritten dedup stamp for restoration.
type triedUndo struct {
	key  int
	prev uint64
}

// newBBSearch allocates a search initialized for dg.
func newBBSearch(dg *distgraph.Graph, budget int) *bbSearch {
	s := &bbSearch{}
	s.init(dg, budget, nil)
	return s
}

// init (re)targets the search at dg, reusing every scratch buffer a
// previous graph left behind. The dedup stamps are deliberately not
// zeroed: the generation counter keeps increasing across graphs, so
// stale stamps can never equal a fresh generation.
func (s *bbSearch) init(dg *distgraph.Graph, budget int, ctxDone <-chan struct{}) {
	n := dg.N()
	s.dg, s.n, s.budget = dg, n, budget
	s.ctxDone = ctxDone
	s.aborted = false
	s.reset()
	if s.offIDs == nil {
		s.offIDs = make(map[int]int, n)
	} else {
		clear(s.offIDs)
	}
	s.offID = resizeInts(s.offID, n)
	for i, d := range dg.Pattern.Offsets {
		id, ok := s.offIDs[d]
		if !ok {
			id = len(s.offIDs)
			s.offIDs[d] = id
		}
		s.offID[i] = id
	}
	s.numOff = len(s.offIDs)
	if need := s.numOff * s.numOff; cap(s.tried) >= need {
		s.tried = s.tried[:need]
	} else {
		s.tried = make([]uint64, need)
		s.gen = 0
	}
	if cap(s.undo) < 2*n {
		s.undo = make([]triedUndo, 0, 2*n)
	}
	s.undo = s.undo[:0]
	s.lastSucc = resizeInts(s.lastSucc, n)
	for v := 0; v < n; v++ {
		succ := dg.Intra.Out(v)
		if len(succ) == 0 {
			s.lastSucc[v] = -1
		} else {
			s.lastSucc[v] = succ[len(succ)-1].To
		}
	}
	if cap(s.open) < n {
		s.open = make([]model.Path, 0, n)
	}
	if cap(s.badWrap) < n {
		s.badWrap = make([]bool, 0, n)
	}
	if cap(s.pathBuf) >= n {
		s.pathBuf = s.pathBuf[:n]
	} else {
		old := s.pathBuf
		s.pathBuf = make([]model.Path, n)
		copy(s.pathBuf, old)
	}
	if cap(s.bestFlat) < n {
		s.bestFlat = make([]int, 0, n)
	}
	if cap(s.bestLens) < n {
		s.bestLens = make([]int, 0, n)
	}
}

func (s *bbSearch) run() {
	s.open = s.open[:0]
	s.badWrap = s.badWrap[:0]
	s.numBad = 0
	s.place(0)
}

// reset rewinds the search outcome so run() can be repeated on the
// same graph with all scratch storage warm (used by the zero-alloc
// test and benchmark).
func (s *bbSearch) reset() {
	s.nodes = 0
	s.pruned = 0
	s.exhausted = false
	s.best = int(^uint(0) >> 1)
	s.haveBest = false
}

// ctxCheckMask throttles cancellation polling to every 256 explored
// nodes: frequent enough that a canceled solve unwinds in microseconds,
// cheap enough to vanish in the per-node work.
const ctxCheckMask = 255

func (s *bbSearch) place(i int) {
	if s.exhausted || s.aborted {
		return
	}
	s.nodes++
	if s.nodes > s.budget {
		s.exhausted = true
		return
	}
	if s.ctxDone != nil && s.nodes&ctxCheckMask == 0 {
		select {
		case <-s.ctxDone:
			s.aborted = true
			return
		default:
		}
	}
	if len(s.open) >= s.best {
		s.pruned++
		return // cannot improve: path count never decreases
	}
	remaining := s.n - i
	if s.numBad > remaining {
		s.pruned++
		return // each bad-wrap path needs at least one future access
	}
	if i == s.n {
		if s.numBad == 0 {
			s.best = len(s.open)
			s.saveBest()
		}
		return
	}

	// A bad-wrap path whose tail has no future zero-cost successor can
	// never be repaired; prune the whole branch.
	for pi, p := range s.open {
		if s.badWrap[pi] && s.lastSucc[p[len(p)-1]] < i {
			s.pruned++
			return
		}
	}

	// Branch 1: append access i to each compatible open path, skipping
	// symmetric duplicates (paths with identical tail and head offsets
	// are interchangeable).
	s.gen++
	gen := s.gen
	undoBase := len(s.undo)
	for pi := range s.open {
		p := s.open[pi]
		tail, head := p[len(p)-1], p[0]
		if !s.dg.ZeroIntra(tail, i) {
			continue
		}
		key := s.offID[tail]*s.numOff + s.offID[head]
		if s.tried[key] == gen {
			continue
		}
		s.undo = append(s.undo, triedUndo{key: key, prev: s.tried[key]})
		s.tried[key] = gen

		wasBad := s.badWrap[pi]
		nowBad := !s.dg.ZeroWrap(i, head)
		s.open[pi] = append(p, i)
		s.badWrap[pi] = nowBad
		s.numBad += boolDelta(wasBad, nowBad)

		s.place(i + 1)

		s.open[pi] = p
		s.badWrap[pi] = wasBad
		s.numBad -= boolDelta(wasBad, nowBad)
	}
	// Restore overwritten stamps so ancestor nodes still see theirs.
	for u := len(s.undo) - 1; u >= undoBase; u-- {
		s.tried[s.undo[u].key] = s.undo[u].prev
	}
	s.undo = s.undo[:undoBase]

	// Branch 2: open a new path at access i.
	newBad := !s.dg.ZeroWrap(i, i) // singleton wrap distance is the stride
	d := len(s.open)
	buf := s.pathBuf[d]
	if cap(buf) < s.n {
		buf = make(model.Path, 0, s.n)
		s.pathBuf[d] = buf
	}
	s.open = append(s.open, append(buf[:0], i))
	s.badWrap = append(s.badWrap, newBad)
	if newBad {
		s.numBad++
	}

	s.place(i + 1)

	s.open = s.open[:len(s.open)-1]
	s.badWrap = s.badWrap[:len(s.badWrap)-1]
	if newBad {
		s.numBad--
	}
}

// saveBest records the current open paths into the flat best store
// without allocating.
func (s *bbSearch) saveBest() {
	s.bestFlat = s.bestFlat[:0]
	s.bestLens = s.bestLens[:0]
	for _, p := range s.open {
		s.bestFlat = append(s.bestFlat, p...)
		s.bestLens = append(s.bestLens, len(p))
	}
	s.haveBest = true
}

// bestCover materializes the recorded best cover, nil if the search
// never improved on its seed.
func (s *bbSearch) bestCover() []model.Path {
	if !s.haveBest {
		return nil
	}
	out := make([]model.Path, len(s.bestLens))
	off := 0
	for i, l := range s.bestLens {
		out[i] = append(model.Path(nil), s.bestFlat[off:off+l]...)
		off += l
	}
	return out
}

func boolDelta(was, now bool) int {
	switch {
	case !was && now:
		return 1
	case was && !now:
		return -1
	default:
		return 0
	}
}

func clonePaths(paths []model.Path) []model.Path {
	out := make([]model.Path, len(paths))
	for i, p := range paths {
		out[i] = p.Clone()
	}
	return out
}

func sortPaths(paths []model.Path) []model.Path {
	// Disjoint paths have distinct first elements, so this unstable
	// sort is deterministic; slices.SortFunc avoids the interface
	// boxing sort.Slice would pay per call.
	slices.SortFunc(paths, func(a, b model.Path) int { return a[0] - b[0] })
	return paths
}
