package pathcover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
)

// patternFromBytes derives a small pattern from raw fuzz bytes.
func patternFromBytes(raw []byte, stride int) model.Pattern {
	if len(raw) == 0 {
		raw = []byte{0}
	}
	if len(raw) > 14 {
		raw = raw[:14]
	}
	offs := make([]int, len(raw))
	for i, b := range raw {
		offs[i] = int(b%17) - 8
	}
	return model.Pattern{Array: "A", Stride: stride, Offsets: offs}
}

// Property (quick): the matching-based cover is always a valid
// partition, zero-cost intra-iteration, and exactly as large as the
// lower bound.
func TestQuickMinCoverDAGInvariants(t *testing.T) {
	f := func(raw []byte, m uint8) bool {
		pat := patternFromBytes(raw, 1)
		dg, err := distgraph.Build(pat, int(m%4))
		if err != nil {
			return false
		}
		paths := MinCoverDAG(dg)
		a := model.Assignment{Paths: paths}
		if err := a.Validate(pat); err != nil {
			return false
		}
		if !coverZeroCost(dg, paths, false) {
			return false
		}
		return len(paths) == LowerBound(dg)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(111))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): the branch-and-bound cover respects the matching
// lower bound and is a valid partition, for both objectives.
func TestQuickMinCoverBounds(t *testing.T) {
	f := func(raw []byte, m, strideRaw uint8) bool {
		pat := patternFromBytes(raw, 1+int(strideRaw%3))
		dg, err := distgraph.Build(pat, int(m%3))
		if err != nil {
			return false
		}
		lb := LowerBound(dg)
		for _, wrap := range []bool{false, true} {
			c := MinCover(dg, wrap, nil)
			if err := c.Assignment().Validate(pat); err != nil {
				return false
			}
			if c.ZeroCost && c.K() < lb {
				return false // a zero-cost cover can never beat the relaxation
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(112))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): greedy covers never use more paths than accesses
// and never fewer than the exact optimum.
func TestQuickGreedyCoverBounds(t *testing.T) {
	f := func(raw []byte, m uint8) bool {
		pat := patternFromBytes(raw, 1)
		dg, err := distgraph.Build(pat, int(m%3))
		if err != nil {
			return false
		}
		g := GreedyCover(dg, false)
		if len(g) > pat.N() {
			return false
		}
		return len(g) >= LowerBound(dg)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(113))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
