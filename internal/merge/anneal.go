package merge

import (
	"math"
	"math/rand"

	"dspaddr/internal/model"
)

// AnnealOptions tunes the simulated-annealing allocator.
type AnnealOptions struct {
	// Steps is the number of proposed moves (default 20000).
	Steps int
	// StartTemp and EndTemp bound the geometric cooling schedule
	// (defaults 2.0 and 0.01).
	StartTemp, EndTemp float64
}

func (o *AnnealOptions) withDefaults() AnnealOptions {
	out := AnnealOptions{Steps: 20000, StartTemp: 2.0, EndTemp: 0.01}
	if o != nil {
		if o.Steps > 0 {
			out.Steps = o.Steps
		}
		if o.StartTemp > 0 {
			out.StartTemp = o.StartTemp
		}
		if o.EndTemp > 0 {
			out.EndTemp = o.EndTemp
		}
	}
	return out
}

// Anneal searches the space of register labelings (one register index
// per access) by simulated annealing, starting from the greedy merge
// result. It is an upper-quality reference point for the merge-strategy
// ablation: slower than the paper's heuristic but able to escape its
// local optima. The returned assignment uses at most k registers.
func Anneal(paths []model.Path, pat model.Pattern, m int, wrap bool, k int, rng *rand.Rand, opts *AnnealOptions) model.Assignment {
	o := opts.withDefaults()
	n := pat.N()
	if k > n {
		k = n
	}

	start := Greedy{}.Reduce(paths, pat, m, wrap, k)
	reg := model.Assignment{Paths: start}.RegisterOf(n)

	cost := func(labels []int) int {
		return labelCost(labels, pat, m, wrap, k)
	}
	cur := cost(reg)
	best := append([]int(nil), reg...)
	bestCost := cur

	if n > 0 && k > 1 {
		decay := math.Pow(o.EndTemp/o.StartTemp, 1/float64(o.Steps))
		temp := o.StartTemp
		for step := 0; step < o.Steps; step++ {
			i := rng.Intn(n)
			old := reg[i]
			next := rng.Intn(k - 1)
			if next >= old {
				next++
			}
			reg[i] = next
			c := cost(reg)
			if c <= cur || rng.Float64() < math.Exp(float64(cur-c)/temp) {
				cur = c
				if c < bestCost {
					bestCost = c
					copy(best, reg)
				}
			} else {
				reg[i] = old
			}
			temp *= decay
		}
	}
	return labelsToAssignment(best, n)
}

// labelCost evaluates the total unit-cost computations of a labeling.
func labelCost(labels []int, pat model.Pattern, m int, wrap bool, k int) int {
	tails := make([]int, k)
	heads := make([]int, k)
	for r := range tails {
		tails[r] = -1
		heads[r] = -1
	}
	total := 0
	for i, r := range labels {
		if tails[r] >= 0 {
			total += model.TransitionCost(pat.Distance(tails[r], i), m)
		} else {
			heads[r] = i
		}
		tails[r] = i
	}
	if wrap {
		for r := range tails {
			if tails[r] >= 0 {
				total += model.TransitionCost(pat.WrapDistance(tails[r], heads[r]), m)
			}
		}
	}
	return total
}

func labelsToAssignment(labels []int, n int) model.Assignment {
	byReg := map[int]model.Path{}
	var order []int
	for i := 0; i < n; i++ {
		r := labels[i]
		if _, ok := byReg[r]; !ok {
			order = append(order, r)
		}
		byReg[r] = append(byReg[r], i)
	}
	a := model.Assignment{}
	for _, r := range order {
		a.Paths = append(a.Paths, byReg[r])
	}
	return a.Normalize()
}
