package merge

import (
	"math/rand"
	"reflect"
	"testing"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
	"dspaddr/internal/pathcover"
)

// diffCase generates a random pattern and its phase-1 cover, the merge
// input. Patterns go up to N=64 with varied modify range, register
// budget, stride and offset spread.
func diffCase(rng *rand.Rand) (paths []model.Path, pat model.Pattern, m, k int, wrap bool) {
	n := 2 + rng.Intn(63)
	spread := 3 + rng.Intn(30)
	offs := make([]int, n)
	for i := range offs {
		offs[i] = rng.Intn(2*spread+1) - spread
	}
	pat = model.Pattern{Array: "A", Stride: 1 + rng.Intn(3), Offsets: offs}
	m = rng.Intn(4)
	k = 1 + rng.Intn(6)
	wrap = rng.Intn(2) == 0
	dg, err := distgraph.Build(pat, m)
	if err != nil {
		panic(err)
	}
	return pathcover.MinCoverDAG(dg), pat, m, k, wrap
}

// samePaths reports whether two path lists are byte-identical:
// same order, same indices.
func samePaths(a, b []model.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual([]int(a[i]), []int(b[i])) {
			return false
		}
	}
	return true
}

// Differential property: the incremental Greedy produces byte-identical
// assignments to the retained reference implementation.
func TestDiffGreedyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1998))
	for trial := 0; trial < 400; trial++ {
		paths, pat, m, k, wrap := diffCase(rng)
		got := Greedy{}.Reduce(paths, pat, m, wrap, k)
		want := referenceGreedy(paths, pat, m, wrap, k)
		if !samePaths(got, want) {
			t.Fatalf("trial %d (N=%d M=%d K=%d wrap=%v):\nincremental %v\nreference   %v",
				trial, pat.N(), m, k, wrap, got, want)
		}
	}
}

// Differential property: the incremental SmallestTwo matches its
// reference.
func TestDiffSmallestTwoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1999))
	for trial := 0; trial < 400; trial++ {
		paths, pat, m, k, wrap := diffCase(rng)
		got := SmallestTwo{}.Reduce(paths, pat, m, wrap, k)
		want := referenceSmallestTwo(paths, pat, m, wrap, k)
		if !samePaths(got, want) {
			t.Fatalf("trial %d (N=%d M=%d K=%d wrap=%v):\nincremental %v\nreference   %v",
				trial, pat.N(), m, k, wrap, got, want)
		}
	}
}

// Differential property: Random's scratch-buffer reuse did not change
// its pair selection — same seed, same result.
func TestDiffRandomMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2000))
	for trial := 0; trial < 400; trial++ {
		paths, pat, m, k, wrap := diffCase(rng)
		seed := rng.Int63()
		got := Random{Rng: rand.New(rand.NewSource(seed))}.Reduce(paths, pat, m, wrap, k)
		want := referenceRandom(rand.New(rand.NewSource(seed)), paths, pat, m, wrap, k)
		if !samePaths(got, want) {
			t.Fatalf("trial %d (N=%d M=%d K=%d wrap=%v seed=%d):\nscratch   %v\nreference %v",
				trial, pat.N(), m, k, wrap, seed, got, want)
		}
	}
}

// Strategies must not mutate their input paths (the Strategy contract);
// the scratch recycling makes this worth pinning down on large random
// inputs too (merge_test.go covers the paper example).
func TestStrategiesDoNotMutateInputRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2001))
	for trial := 0; trial < 50; trial++ {
		paths, pat, m, k, wrap := diffCase(rng)
		snapshot := clonePaths(paths)
		for _, s := range []Strategy{Greedy{}, Naive{}, SmallestTwo{}, Random{Rng: rand.New(rand.NewSource(7))}} {
			s.Reduce(paths, pat, m, wrap, k)
			if !samePaths(paths, snapshot) {
				t.Fatalf("trial %d: %s mutated its input", trial, s.Name())
			}
		}
	}
}

// All strategies treat a register budget below 1 as 1 instead of
// panicking or returning an over-budget partition.
func TestReduceGuardsNonPositiveK(t *testing.T) {
	pat := model.PaperExample()
	dg := distgraph.MustBuild(pat, 1)
	paths := pathcover.MinCoverDAG(dg)
	for _, s := range []Strategy{Greedy{}, Naive{}, SmallestTwo{}, Random{Rng: rand.New(rand.NewSource(1))}} {
		for _, k := range []int{0, -3} {
			out := s.Reduce(paths, pat, 1, false, k)
			if len(out) != 1 {
				t.Fatalf("%s with k=%d left %d paths, want 1", s.Name(), k, len(out))
			}
			a := model.Assignment{Paths: out}.Normalize()
			if err := a.Validate(pat); err != nil {
				t.Fatalf("%s with k=%d: %v", s.Name(), k, err)
			}
		}
	}
}
