// Package merge implements phase 2 of the paper's allocator: when the
// zero-cost cover needs more virtual registers K~ than the AGU has
// physical registers K, pairs of paths are merged — order-preservingly —
// until only K remain. The paper's heuristic always merges the pair
// whose merged path has minimal cost C(P_i ⊕ P_j); the paper's baseline
// ("naive") merges arbitrary pairs. Additional strategies (random,
// smallest-two, exhaustive optimal, simulated annealing) support the
// ablation experiments.
//
// Greedy is incremental: pair costs are computed once up front with
// the allocation-free model.Path.MergeCost, kept in a
// lazily-invalidated min-heap, and only the pairs involving the merged
// path are re-evaluated after each round — O(R²) cost evaluations
// amortized instead of the reference implementation's O(rounds·R²)
// with a materialized merged path per evaluation (see reference.go).
// SmallestTwo and Random keep their reference selection logic (an
// O(R) scan per round needs no index) but commit merges through a
// recycled scratch buffer. All strategies produce byte-identical
// assignments to their references; the differential tests in
// diff_test.go enforce that.
package merge

import (
	"context"
	"fmt"
	"math/rand"

	"dspaddr/internal/model"
	"dspaddr/internal/obs"
)

// Strategy reduces a path set to at most k paths. Implementations must
// return a valid partition and must not mutate the input paths. A
// register budget k below 1 is treated as 1 by every strategy.
type Strategy interface {
	// Name identifies the strategy in reports and tables.
	Name() string
	// Reduce merges paths until at most k remain.
	Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path
}

// pairItem is one candidate merge in the incremental heap: slots i < j
// with the cost and combined length of their merge, stamped with the
// slot versions it was computed against. An item whose stamped version
// lags a slot's current version is stale and discarded on extraction
// (lazy invalidation), so the heap never needs random-access deletes.
type pairItem struct {
	cost   int
	length int
	i, j   int
	vi, vj uint32
}

// less orders candidates exactly as the reference scan does: lower
// cost, then smaller combined length, then the lexicographically
// smallest pair. Slot order equals current-index order because merges
// keep the merged path in the lower slot and only tombstone the upper,
// preserving the relative order of survivors.
func (a pairItem) less(b pairItem) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.length != b.length {
		return a.length < b.length
	}
	if a.i != b.i {
		return a.i < b.i
	}
	return a.j < b.j
}

// lesser is the ordering constraint of minHeap.
type lesser[T any] interface{ less(T) bool }

// minHeap is a hand-rolled generic binary min-heap. It is concrete
// per element type (no container/heap interface boxing), so pushes
// and pops on the merge hot path stay allocation-free once the
// backing array has grown.
type minHeap[T lesser[T]] []T

func (h *minHeap[T]) push(it T) {
	*h = append(*h, it)
	s := *h
	for c := len(s) - 1; c > 0; {
		p := (c - 1) / 2
		if !s[c].less(s[p]) {
			break
		}
		s[c], s[p] = s[p], s[c]
		c = p
	}
}

func (h *minHeap[T]) pop() T {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	for p := 0; ; {
		c := 2*p + 1
		if c >= len(s) {
			break
		}
		if c+1 < len(s) && s[c+1].less(s[c]) {
			c++
		}
		if !s[c].less(s[p]) {
			break
		}
		s[p], s[c] = s[c], s[p]
		p = c
	}
	return top
}

// heapify establishes the heap invariant over an unordered item slice
// in O(n), cheaper than n pushes for the initial all-pairs load.
func heapify[T lesser[T]](s minHeap[T]) {
	for p := len(s)/2 - 1; p >= 0; p-- {
		for c := 2*p + 1; c < len(s); {
			if c+1 < len(s) && s[c+1].less(s[c]) {
				c++
			}
			q := (c - 1) / 2
			if !s[c].less(s[q]) {
				break
			}
			s[q], s[c] = s[c], s[q]
			c = 2*c + 1
		}
	}
}

// Scratch is the reusable phase-2 workspace of the incremental
// strategies: slot headers and bookkeeping arrays, one path buffer per
// slot (each with capacity for the fully merged path, so MergeInto
// never grows mid-reduction) and the pair-cost heap's backing array.
// A worker serving a stream of requests reuses one Scratch across
// solves; the zero value is ready to use. Not safe for concurrent use.
// Reduced paths are always copied out of the scratch before being
// returned, so results never alias it.
type Scratch struct {
	state mergeState
	bufs  []model.Path
	heap  minHeap[pairItem]
}

// mergeState is the shared slot bookkeeping of the incremental
// strategies: paths live in stable slots, a merge folds the higher
// slot into the lower one (recycling the lower slot's old backing as
// the next scratch buffer) and bumps the lower slot's version so stale
// heap entries self-invalidate.
type mergeState struct {
	ps      []model.Path
	alive   []bool
	version []uint32
	live    int
	scratch model.Path
}

// init loads the input paths into the scratch's slot buffers. Every
// buffer is (re)grown to hold the total access count once, so all
// later MergeInto calls recycle in place.
func (sc *Scratch) init(paths []model.Path) *mergeState {
	r := len(paths)
	total := 0
	for _, p := range paths {
		total += len(p)
	}
	if cap(sc.bufs) >= r+1 {
		sc.bufs = sc.bufs[:r+1]
	} else {
		old := sc.bufs
		sc.bufs = make([]model.Path, r+1)
		copy(sc.bufs, old)
	}
	for i := range sc.bufs {
		if cap(sc.bufs[i]) < total {
			sc.bufs[i] = make(model.Path, 0, total)
		}
	}

	st := &sc.state
	if cap(st.ps) >= r {
		st.ps = st.ps[:r]
		st.alive = st.alive[:r]
		st.version = st.version[:r]
	} else {
		st.ps = make([]model.Path, r)
		st.alive = make([]bool, r)
		st.version = make([]uint32, r)
	}
	for i, p := range paths {
		st.ps[i] = append(sc.bufs[i][:0], p...)
		st.alive[i] = true
		st.version[i] = 0
	}
	st.live = r
	st.scratch = sc.bufs[r]
	return st
}

// reclaim gathers the slot buffers (rotated among ps and scratch by
// the merges) back into the scratch for the next reduction.
func (sc *Scratch) reclaim() {
	st := &sc.state
	for i, p := range st.ps {
		sc.bufs[i] = p[:0]
	}
	sc.bufs[len(st.ps)] = st.scratch[:0]
}

// merge commits the merge of slots i < j into slot i.
func (st *mergeState) merge(i, j int) {
	merged := st.ps[i].MergeInto(st.ps[j], st.scratch)
	st.scratch = st.ps[i]
	st.ps[i] = merged
	st.alive[j] = false
	st.version[i]++
	st.live--
}

// result copies the surviving paths — in slot order, which equals the
// order the reference's splice-based list would have — out of the
// scratch buffers into fresh storage owned by the caller.
func (st *mergeState) result() []model.Path {
	out := make([]model.Path, 0, st.live)
	for i, p := range st.ps {
		if st.alive[i] {
			out = append(out, p.Clone())
		}
	}
	return out
}

// Greedy is the paper's phase-2 heuristic: merge the pair with minimal
// merged-path cost each round (ties: smaller combined length, then
// lower pair index). This implementation is incremental: all pair
// costs are computed once, and after each merge only the pairs
// involving the merged path are re-evaluated.
type Greedy struct{}

// Name implements Strategy.
func (Greedy) Name() string { return "greedy" }

// Reduce implements Strategy.
func (Greedy) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	out, _ := greedyReduce(context.Background(), paths, pat, m, wrap, k, nil)
	return out
}

// greedyReduce is the incremental greedy reduction behind
// Greedy.Reduce and ReduceContext: identical selection logic, with all
// working storage drawn from sc (nil for a transient scratch) and a
// cancellation check per merge round. On cancellation it returns ctx's
// error; the partial reduction is discarded.
func greedyReduce(ctx context.Context, paths []model.Path, pat model.Pattern, m int, wrap bool, k int, sc *Scratch) ([]model.Path, error) {
	if k < 1 {
		k = 1
	}
	if sc == nil {
		sc = &Scratch{}
	}
	st := sc.init(paths)
	defer sc.reclaim()
	if st.live <= k || st.live <= 1 {
		return st.result(), nil
	}
	r := len(st.ps)
	h := sc.heap[:0]
	if need := r * (r - 1) / 2; cap(h) < need {
		h = make(minHeap[pairItem], 0, need)
	}
	for i := 0; i < r; i++ {
		if err := ctx.Err(); err != nil {
			sc.heap = h
			return nil, err
		}
		for j := i + 1; j < r; j++ {
			h = append(h, pairItem{
				cost:   st.ps[i].MergeCost(st.ps[j], pat, m, wrap),
				length: len(st.ps[i]) + len(st.ps[j]),
				i:      i,
				j:      j,
			})
		}
	}
	heapify(h)
	for st.live > k && st.live > 1 {
		if err := ctx.Err(); err != nil {
			sc.heap = h
			return nil, err
		}
		var it pairItem
		for {
			it = h.pop()
			if st.alive[it.i] && st.alive[it.j] &&
				st.version[it.i] == it.vi && st.version[it.j] == it.vj {
				break
			}
		}
		st.merge(it.i, it.j)
		for s := 0; s < r; s++ {
			if s == it.i || !st.alive[s] {
				continue
			}
			lo, hi := s, it.i
			if lo > hi {
				lo, hi = hi, lo
			}
			h.push(pairItem{
				cost:   st.ps[lo].MergeCost(st.ps[hi], pat, m, wrap),
				length: len(st.ps[lo]) + len(st.ps[hi]),
				i:      lo,
				j:      hi,
				vi:     st.version[lo],
				vj:     st.version[hi],
			})
		}
	}
	sc.heap = h
	return st.result(), nil
}

// Naive is the paper's comparison baseline: repetitively merge two
// arbitrary paths until the register constraint is met. This
// deterministic variant always merges the first two paths.
type Naive struct{}

// Name implements Strategy.
func (Naive) Name() string { return "naive" }

// Reduce implements Strategy.
func (Naive) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	if k < 1 {
		k = 1
	}
	var sc Scratch
	st := sc.init(paths)
	for st.live > k && st.live > 1 {
		second := 1
		for !st.alive[second] {
			second++
		}
		st.merge(0, second)
	}
	return st.result()
}

// Random merges uniformly random pairs; it models the paper's
// "arbitrary" baseline without positional bias. The RNG must be
// non-nil; experiments pass seeded sources for reproducibility.
type Random struct {
	Rng *rand.Rand
}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Reduce implements Strategy. The pair selection (and therefore the
// RNG consumption) is identical to the reference; only the merged
// path's storage changed, to one scratch buffer recycled across
// rounds.
func (r Random) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	if k < 1 {
		k = 1
	}
	ps := clonePaths(paths)
	var scratch model.Path
	for len(ps) > k && len(ps) > 1 {
		i := r.Rng.Intn(len(ps))
		j := r.Rng.Intn(len(ps) - 1)
		if j >= i {
			j++
		}
		if i > j {
			i, j = j, i
		}
		merged := ps[i].MergeInto(ps[j], scratch)
		scratch = ps[i]
		ps[i] = merged
		ps = append(ps[:j], ps[j+1:]...)
	}
	return ps
}

// SmallestTwo merges the two shortest paths each round — a length-only
// heuristic that ignores address distances; it isolates how much of
// the greedy strategy's win comes from cost awareness. The O(R) scan
// per round beats any heap bookkeeping at realistic path counts (the
// package benchmarks confirmed a heap variant was a pessimization),
// so only the merged path's storage changed from the reference: one
// scratch buffer recycled across rounds instead of an allocation per
// merge.
type SmallestTwo struct{}

// Name implements Strategy.
func (SmallestTwo) Name() string { return "smallest-two" }

// Reduce implements Strategy.
func (SmallestTwo) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	if k < 1 {
		k = 1
	}
	ps := clonePaths(paths)
	var scratch model.Path
	for len(ps) > k && len(ps) > 1 {
		i1, i2 := -1, -1
		for i, p := range ps {
			switch {
			case i1 == -1 || len(p) < len(ps[i1]):
				i2 = i1
				i1 = i
			case i2 == -1 || len(p) < len(ps[i2]):
				i2 = i
			}
		}
		if i1 > i2 {
			i1, i2 = i2, i1
		}
		merged := ps[i1].MergeInto(ps[i2], scratch)
		scratch = ps[i1]
		ps[i1] = merged
		ps = append(ps[:i2], ps[i2+1:]...)
	}
	return ps
}

// Reduce runs the strategy and wraps the result in an Assignment.
func Reduce(s Strategy, paths []model.Path, pat model.Pattern, m int, wrap bool, k int) (model.Assignment, error) {
	return ReduceContext(context.Background(), s, paths, pat, m, wrap, k, nil)
}

// ReduceContext is Reduce with cooperative cancellation and an
// optional reusable scratch. The default (greedy) strategy checks ctx
// once per merge round and abandons the reduction with ctx's error
// when it fires; the other strategies complete regardless (their
// reductions are short — the ablation-only exhaustive search is never
// on the serving path). A nil scratch uses a transient one. On success
// the assignment is byte-identical to Reduce's for the same inputs.
//
// When ctx carries an obs.Trace, a "merge" span is recorded with the
// input path count, the number of merge rounds committed and the
// register constraint; without one the extra cost is a nil check.
func ReduceContext(ctx context.Context, s Strategy, paths []model.Path, pat model.Pattern, m int, wrap bool, k int, sc *Scratch) (model.Assignment, error) {
	if k < 1 {
		return model.Assignment{}, fmt.Errorf("merge: register constraint must be at least 1, got %d", k)
	}
	sp := obs.FromContext(ctx).StartSpan("merge")
	var out []model.Path
	if _, greedy := s.(Greedy); greedy {
		var err error
		out, err = greedyReduce(ctx, paths, pat, m, wrap, k, sc)
		if err != nil {
			sp.Note("aborted").End()
			return model.Assignment{}, err
		}
	} else {
		out = s.Reduce(paths, pat, m, wrap, k)
	}
	a := model.Assignment{Paths: out}.Normalize()
	if err := a.Validate(pat); err != nil {
		sp.Note("error").End()
		return model.Assignment{}, fmt.Errorf("merge: strategy %q produced invalid assignment: %w", s.Name(), err)
	}
	if a.Registers() > k {
		sp.Note("error").End()
		return model.Assignment{}, fmt.Errorf("merge: strategy %q left %d paths, constraint is %d", s.Name(), a.Registers(), k)
	}
	sp.Attr("paths", int64(len(paths))).
		Attr("rounds", int64(len(paths)-a.Registers())).
		Attr("k", int64(k)).
		End()
	return a, nil
}

func clonePaths(paths []model.Path) []model.Path {
	out := make([]model.Path, len(paths))
	for i, p := range paths {
		out[i] = p.Clone()
	}
	return out
}
