// Package merge implements phase 2 of the paper's allocator: when the
// zero-cost cover needs more virtual registers K~ than the AGU has
// physical registers K, pairs of paths are merged — order-preservingly —
// until only K remain. The paper's heuristic always merges the pair
// whose merged path has minimal cost C(P_i ⊕ P_j); the paper's baseline
// ("naive") merges arbitrary pairs. Additional strategies (random,
// smallest-two, exhaustive optimal, simulated annealing) support the
// ablation experiments.
//
// Greedy is incremental: pair costs are computed once up front with
// the allocation-free model.Path.MergeCost, kept in a
// lazily-invalidated min-heap, and only the pairs involving the merged
// path are re-evaluated after each round — O(R²) cost evaluations
// amortized instead of the reference implementation's O(rounds·R²)
// with a materialized merged path per evaluation (see reference.go).
// SmallestTwo and Random keep their reference selection logic (an
// O(R) scan per round needs no index) but commit merges through a
// recycled scratch buffer. All strategies produce byte-identical
// assignments to their references; the differential tests in
// diff_test.go enforce that.
package merge

import (
	"fmt"
	"math/rand"

	"dspaddr/internal/model"
)

// Strategy reduces a path set to at most k paths. Implementations must
// return a valid partition and must not mutate the input paths. A
// register budget k below 1 is treated as 1 by every strategy.
type Strategy interface {
	// Name identifies the strategy in reports and tables.
	Name() string
	// Reduce merges paths until at most k remain.
	Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path
}

// pairItem is one candidate merge in the incremental heap: slots i < j
// with the cost and combined length of their merge, stamped with the
// slot versions it was computed against. An item whose stamped version
// lags a slot's current version is stale and discarded on extraction
// (lazy invalidation), so the heap never needs random-access deletes.
type pairItem struct {
	cost   int
	length int
	i, j   int
	vi, vj uint32
}

// less orders candidates exactly as the reference scan does: lower
// cost, then smaller combined length, then the lexicographically
// smallest pair. Slot order equals current-index order because merges
// keep the merged path in the lower slot and only tombstone the upper,
// preserving the relative order of survivors.
func (a pairItem) less(b pairItem) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.length != b.length {
		return a.length < b.length
	}
	if a.i != b.i {
		return a.i < b.i
	}
	return a.j < b.j
}

// lesser is the ordering constraint of minHeap.
type lesser[T any] interface{ less(T) bool }

// minHeap is a hand-rolled generic binary min-heap. It is concrete
// per element type (no container/heap interface boxing), so pushes
// and pops on the merge hot path stay allocation-free once the
// backing array has grown.
type minHeap[T lesser[T]] []T

func (h *minHeap[T]) push(it T) {
	*h = append(*h, it)
	s := *h
	for c := len(s) - 1; c > 0; {
		p := (c - 1) / 2
		if !s[c].less(s[p]) {
			break
		}
		s[c], s[p] = s[p], s[c]
		c = p
	}
}

func (h *minHeap[T]) pop() T {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	for p := 0; ; {
		c := 2*p + 1
		if c >= len(s) {
			break
		}
		if c+1 < len(s) && s[c+1].less(s[c]) {
			c++
		}
		if !s[c].less(s[p]) {
			break
		}
		s[p], s[c] = s[c], s[p]
		p = c
	}
	return top
}

// heapify establishes the heap invariant over an unordered item slice
// in O(n), cheaper than n pushes for the initial all-pairs load.
func heapify[T lesser[T]](s minHeap[T]) {
	for p := len(s)/2 - 1; p >= 0; p-- {
		for c := 2*p + 1; c < len(s); {
			if c+1 < len(s) && s[c+1].less(s[c]) {
				c++
			}
			q := (c - 1) / 2
			if !s[c].less(s[q]) {
				break
			}
			s[q], s[c] = s[c], s[q]
			c = 2*c + 1
		}
	}
}

// mergeState is the shared slot bookkeeping of the incremental
// strategies: paths live in stable slots, a merge folds the higher
// slot into the lower one (recycling the lower slot's old backing as
// the next scratch buffer) and bumps the lower slot's version so stale
// heap entries self-invalidate.
type mergeState struct {
	ps      []model.Path
	alive   []bool
	version []uint32
	live    int
	scratch model.Path
}

func newMergeState(paths []model.Path) *mergeState {
	return &mergeState{
		ps:      clonePaths(paths),
		alive:   allTrue(len(paths)),
		version: make([]uint32, len(paths)),
		live:    len(paths),
	}
}

// merge commits the merge of slots i < j into slot i.
func (st *mergeState) merge(i, j int) {
	merged := st.ps[i].MergeInto(st.ps[j], st.scratch)
	st.scratch = st.ps[i]
	st.ps[i] = merged
	st.alive[j] = false
	st.version[i]++
	st.live--
}

// result collects the surviving paths in slot order, which equals the
// order the reference's splice-based list would have.
func (st *mergeState) result() []model.Path {
	out := make([]model.Path, 0, st.live)
	for i, p := range st.ps {
		if st.alive[i] {
			out = append(out, p)
		}
	}
	return out
}

func allTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

// Greedy is the paper's phase-2 heuristic: merge the pair with minimal
// merged-path cost each round (ties: smaller combined length, then
// lower pair index). This implementation is incremental: all pair
// costs are computed once, and after each merge only the pairs
// involving the merged path are re-evaluated.
type Greedy struct{}

// Name implements Strategy.
func (Greedy) Name() string { return "greedy" }

// Reduce implements Strategy.
func (Greedy) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	if k < 1 {
		k = 1
	}
	st := newMergeState(paths)
	if st.live <= k || st.live <= 1 {
		return st.result()
	}
	r := len(st.ps)
	h := make(minHeap[pairItem], 0, r*(r-1)/2)
	for i := 0; i < r; i++ {
		for j := i + 1; j < r; j++ {
			h = append(h, pairItem{
				cost:   st.ps[i].MergeCost(st.ps[j], pat, m, wrap),
				length: len(st.ps[i]) + len(st.ps[j]),
				i:      i,
				j:      j,
			})
		}
	}
	heapify(h)
	for st.live > k && st.live > 1 {
		var it pairItem
		for {
			it = h.pop()
			if st.alive[it.i] && st.alive[it.j] &&
				st.version[it.i] == it.vi && st.version[it.j] == it.vj {
				break
			}
		}
		st.merge(it.i, it.j)
		for s := 0; s < r; s++ {
			if s == it.i || !st.alive[s] {
				continue
			}
			lo, hi := s, it.i
			if lo > hi {
				lo, hi = hi, lo
			}
			h.push(pairItem{
				cost:   st.ps[lo].MergeCost(st.ps[hi], pat, m, wrap),
				length: len(st.ps[lo]) + len(st.ps[hi]),
				i:      lo,
				j:      hi,
				vi:     st.version[lo],
				vj:     st.version[hi],
			})
		}
	}
	return st.result()
}

// Naive is the paper's comparison baseline: repetitively merge two
// arbitrary paths until the register constraint is met. This
// deterministic variant always merges the first two paths.
type Naive struct{}

// Name implements Strategy.
func (Naive) Name() string { return "naive" }

// Reduce implements Strategy.
func (Naive) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	if k < 1 {
		k = 1
	}
	st := newMergeState(paths)
	for st.live > k && st.live > 1 {
		second := 1
		for !st.alive[second] {
			second++
		}
		st.merge(0, second)
	}
	return st.result()
}

// Random merges uniformly random pairs; it models the paper's
// "arbitrary" baseline without positional bias. The RNG must be
// non-nil; experiments pass seeded sources for reproducibility.
type Random struct {
	Rng *rand.Rand
}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Reduce implements Strategy. The pair selection (and therefore the
// RNG consumption) is identical to the reference; only the merged
// path's storage changed, to one scratch buffer recycled across
// rounds.
func (r Random) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	if k < 1 {
		k = 1
	}
	ps := clonePaths(paths)
	var scratch model.Path
	for len(ps) > k && len(ps) > 1 {
		i := r.Rng.Intn(len(ps))
		j := r.Rng.Intn(len(ps) - 1)
		if j >= i {
			j++
		}
		if i > j {
			i, j = j, i
		}
		merged := ps[i].MergeInto(ps[j], scratch)
		scratch = ps[i]
		ps[i] = merged
		ps = append(ps[:j], ps[j+1:]...)
	}
	return ps
}

// SmallestTwo merges the two shortest paths each round — a length-only
// heuristic that ignores address distances; it isolates how much of
// the greedy strategy's win comes from cost awareness. The O(R) scan
// per round beats any heap bookkeeping at realistic path counts (the
// package benchmarks confirmed a heap variant was a pessimization),
// so only the merged path's storage changed from the reference: one
// scratch buffer recycled across rounds instead of an allocation per
// merge.
type SmallestTwo struct{}

// Name implements Strategy.
func (SmallestTwo) Name() string { return "smallest-two" }

// Reduce implements Strategy.
func (SmallestTwo) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	if k < 1 {
		k = 1
	}
	ps := clonePaths(paths)
	var scratch model.Path
	for len(ps) > k && len(ps) > 1 {
		i1, i2 := -1, -1
		for i, p := range ps {
			switch {
			case i1 == -1 || len(p) < len(ps[i1]):
				i2 = i1
				i1 = i
			case i2 == -1 || len(p) < len(ps[i2]):
				i2 = i
			}
		}
		if i1 > i2 {
			i1, i2 = i2, i1
		}
		merged := ps[i1].MergeInto(ps[i2], scratch)
		scratch = ps[i1]
		ps[i1] = merged
		ps = append(ps[:i2], ps[i2+1:]...)
	}
	return ps
}

// Reduce runs the strategy and wraps the result in an Assignment.
func Reduce(s Strategy, paths []model.Path, pat model.Pattern, m int, wrap bool, k int) (model.Assignment, error) {
	if k < 1 {
		return model.Assignment{}, fmt.Errorf("merge: register constraint must be at least 1, got %d", k)
	}
	out := s.Reduce(paths, pat, m, wrap, k)
	a := model.Assignment{Paths: out}.Normalize()
	if err := a.Validate(pat); err != nil {
		return model.Assignment{}, fmt.Errorf("merge: strategy %q produced invalid assignment: %w", s.Name(), err)
	}
	if a.Registers() > k {
		return model.Assignment{}, fmt.Errorf("merge: strategy %q left %d paths, constraint is %d", s.Name(), a.Registers(), k)
	}
	return a, nil
}

func clonePaths(paths []model.Path) []model.Path {
	out := make([]model.Path, len(paths))
	for i, p := range paths {
		out[i] = p.Clone()
	}
	return out
}
