// Package merge implements phase 2 of the paper's allocator: when the
// zero-cost cover needs more virtual registers K~ than the AGU has
// physical registers K, pairs of paths are merged — order-preservingly —
// until only K remain. The paper's heuristic always merges the pair
// whose merged path has minimal cost C(P_i ⊕ P_j); the paper's baseline
// ("naive") merges arbitrary pairs. Additional strategies (random,
// smallest-two, exhaustive optimal, simulated annealing) support the
// ablation experiments.
package merge

import (
	"fmt"
	"math/rand"

	"dspaddr/internal/model"
)

// Strategy reduces a path set to at most k paths. Implementations must
// return a valid partition and must not mutate the input paths.
type Strategy interface {
	// Name identifies the strategy in reports and tables.
	Name() string
	// Reduce merges paths until at most k remain.
	Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path
}

// Greedy is the paper's phase-2 heuristic: each round, evaluate
// C(P_i ⊕ P_j) for every pair and merge the minimum-cost pair. Ties are
// broken by smaller combined length, then by lower pair index, making
// the result deterministic.
type Greedy struct{}

// Name implements Strategy.
func (Greedy) Name() string { return "greedy" }

// Reduce implements Strategy.
func (Greedy) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	ps := clonePaths(paths)
	for len(ps) > k && len(ps) > 1 {
		bi, bj := -1, -1
		bestCost, bestLen := 0, 0
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				merged := ps[i].Merge(ps[j])
				c := merged.Cost(pat, m, wrap)
				l := len(merged)
				if bi == -1 || c < bestCost || (c == bestCost && l < bestLen) {
					bi, bj, bestCost, bestLen = i, j, c, l
				}
			}
		}
		ps = mergeAt(ps, bi, bj)
	}
	return ps
}

// Naive is the paper's comparison baseline: repetitively merge two
// arbitrary paths until the register constraint is met. This
// deterministic variant always merges the first two paths.
type Naive struct{}

// Name implements Strategy.
func (Naive) Name() string { return "naive" }

// Reduce implements Strategy.
func (Naive) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	ps := clonePaths(paths)
	for len(ps) > k && len(ps) > 1 {
		ps = mergeAt(ps, 0, 1)
	}
	return ps
}

// Random merges uniformly random pairs; it models the paper's
// "arbitrary" baseline without positional bias. The RNG must be
// non-nil; experiments pass seeded sources for reproducibility.
type Random struct {
	Rng *rand.Rand
}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Reduce implements Strategy.
func (r Random) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	ps := clonePaths(paths)
	for len(ps) > k && len(ps) > 1 {
		i := r.Rng.Intn(len(ps))
		j := r.Rng.Intn(len(ps) - 1)
		if j >= i {
			j++
		}
		if i > j {
			i, j = j, i
		}
		ps = mergeAt(ps, i, j)
	}
	return ps
}

// SmallestTwo merges the two shortest paths each round — a length-only
// heuristic that ignores address distances; it isolates how much of the
// greedy strategy's win comes from cost awareness.
type SmallestTwo struct{}

// Name implements Strategy.
func (SmallestTwo) Name() string { return "smallest-two" }

// Reduce implements Strategy.
func (SmallestTwo) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	ps := clonePaths(paths)
	for len(ps) > k && len(ps) > 1 {
		i1, i2 := -1, -1
		for i, p := range ps {
			switch {
			case i1 == -1 || len(p) < len(ps[i1]):
				i2 = i1
				i1 = i
			case i2 == -1 || len(p) < len(ps[i2]):
				i2 = i
			}
		}
		if i1 > i2 {
			i1, i2 = i2, i1
		}
		ps = mergeAt(ps, i1, i2)
	}
	return ps
}

// Reduce runs the strategy and wraps the result in an Assignment.
func Reduce(s Strategy, paths []model.Path, pat model.Pattern, m int, wrap bool, k int) (model.Assignment, error) {
	if k < 1 {
		return model.Assignment{}, fmt.Errorf("merge: register constraint must be at least 1, got %d", k)
	}
	out := s.Reduce(paths, pat, m, wrap, k)
	a := model.Assignment{Paths: out}.Normalize()
	if err := a.Validate(pat); err != nil {
		return model.Assignment{}, fmt.Errorf("merge: strategy %q produced invalid assignment: %w", s.Name(), err)
	}
	if a.Registers() > k {
		return model.Assignment{}, fmt.Errorf("merge: strategy %q left %d paths, constraint is %d", s.Name(), a.Registers(), k)
	}
	return a, nil
}

// mergeAt replaces paths i and j (i<j) with their order-preserving
// merge.
func mergeAt(ps []model.Path, i, j int) []model.Path {
	merged := ps[i].Merge(ps[j])
	ps[i] = merged
	ps = append(ps[:j], ps[j+1:]...)
	return ps
}

func clonePaths(paths []model.Path) []model.Path {
	out := make([]model.Path, len(paths))
	for i, p := range paths {
		out[i] = p.Clone()
	}
	return out
}
