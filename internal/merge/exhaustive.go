package merge

import (
	"dspaddr/internal/model"
)

// ExhaustiveOptimal computes a minimum-cost assignment of the pattern's
// accesses to at most k registers by exhaustive search with
// cost-bounded pruning and register-symmetry breaking. It is
// exponential in N and intended as the optimality oracle for small
// instances in tests and the merge-strategy ablation (A2). The returned
// cost is the exact optimum.
func ExhaustiveOptimal(pat model.Pattern, m int, wrap bool, k int) (model.Assignment, int) {
	n := pat.N()
	if k > n {
		k = n
	}
	s := exhaustiveState{
		pat: pat, m: m, wrap: wrap, k: k, n: n,
		reg:      make([]int, n),
		tails:    make([]int, 0, k),
		heads:    make([]int, 0, k),
		bestCost: 1 << 30,
	}
	s.place(0, 0)
	a := model.Assignment{Paths: make([]model.Path, 0, k)}
	byReg := make(map[int]model.Path)
	order := []int{}
	for i, r := range s.bestReg {
		if _, ok := byReg[r]; !ok {
			order = append(order, r)
		}
		byReg[r] = append(byReg[r], i)
	}
	for _, r := range order {
		a.Paths = append(a.Paths, byReg[r])
	}
	return a.Normalize(), s.bestCost
}

type exhaustiveState struct {
	pat          model.Pattern
	m, k, n      int
	wrap         bool
	reg          []int
	tails, heads []int // per used register: current tail / first access
	bestCost     int
	bestReg      []int
}

// place assigns access i to a register; cost carries the accumulated
// intra-iteration cost of the partial assignment.
func (s *exhaustiveState) place(i, cost int) {
	if cost >= s.bestCost {
		return
	}
	if i == s.n {
		total := cost
		if s.wrap {
			for r := range s.tails {
				total += model.TransitionCost(s.pat.WrapDistance(s.tails[r], s.heads[r]), s.m)
			}
		}
		if total < s.bestCost {
			s.bestCost = total
			s.bestReg = append([]int(nil), s.reg...)
		}
		return
	}
	used := len(s.tails)
	// Existing registers.
	for r := 0; r < used; r++ {
		prevTail := s.tails[r]
		step := model.TransitionCost(s.pat.Distance(prevTail, i), s.m)
		s.reg[i] = r
		s.tails[r] = i
		s.place(i+1, cost+step)
		s.tails[r] = prevTail
	}
	// A fresh register (symmetry-broken: always the next unused index).
	if used < s.k {
		s.reg[i] = used
		s.tails = append(s.tails, i)
		s.heads = append(s.heads, i)
		s.place(i+1, cost)
		s.tails = s.tails[:used]
		s.heads = s.heads[:used]
	}
}
