// Reference implementations of the merge strategies, retained verbatim
// from before the incremental rewrite. They re-evaluate every pair cost
// from scratch each round and materialize a merged path per evaluation
// — O(rounds·R²·L) cost evaluations with per-pair allocations — which
// makes them slow but obviously correct. The differential tests assert
// that the incremental strategies produce byte-identical assignments,
// and the package benchmarks quantify the speedup against them.

package merge

import (
	"math/rand"

	"dspaddr/internal/model"
)

// referenceGreedy is the pre-incremental Greedy.Reduce: each round,
// evaluate C(P_i ⊕ P_j) for every pair by building the merged path,
// and merge the minimum-cost pair (ties: smaller combined length, then
// lower pair index).
func referenceGreedy(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	if k < 1 {
		k = 1
	}
	ps := clonePaths(paths)
	for len(ps) > k && len(ps) > 1 {
		bi, bj := -1, -1
		bestCost, bestLen := 0, 0
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				merged := ps[i].Merge(ps[j])
				c := merged.Cost(pat, m, wrap)
				l := len(merged)
				if bi == -1 || c < bestCost || (c == bestCost && l < bestLen) {
					bi, bj, bestCost, bestLen = i, j, c, l
				}
			}
		}
		ps = mergeAt(ps, bi, bj)
	}
	return ps
}

// referenceSmallestTwo is the pre-incremental SmallestTwo.Reduce: scan
// for the two shortest paths each round and merge them.
func referenceSmallestTwo(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	if k < 1 {
		k = 1
	}
	ps := clonePaths(paths)
	for len(ps) > k && len(ps) > 1 {
		i1, i2 := -1, -1
		for i, p := range ps {
			switch {
			case i1 == -1 || len(p) < len(ps[i1]):
				i2 = i1
				i1 = i
			case i2 == -1 || len(p) < len(ps[i2]):
				i2 = i
			}
		}
		if i1 > i2 {
			i1, i2 = i2, i1
		}
		ps = mergeAt(ps, i1, i2)
	}
	return ps
}

// referenceRandom is the pre-scratch-reuse Random.Reduce: merge
// uniformly random pairs, allocating a fresh merged path per round.
func referenceRandom(rng *rand.Rand, paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	if k < 1 {
		k = 1
	}
	ps := clonePaths(paths)
	for len(ps) > k && len(ps) > 1 {
		i := rng.Intn(len(ps))
		j := rng.Intn(len(ps) - 1)
		if j >= i {
			j++
		}
		if i > j {
			i, j = j, i
		}
		ps = mergeAt(ps, i, j)
	}
	return ps
}

// mergeAt replaces paths i and j (i<j) with their order-preserving
// merge, allocating the merged path. The incremental strategies use
// recycled scratch buffers instead; mergeAt remains the reference
// commit step.
func mergeAt(ps []model.Path, i, j int) []model.Path {
	merged := ps[i].Merge(ps[j])
	ps[i] = merged
	ps = append(ps[:j], ps[j+1:]...)
	return ps
}
