package merge

import (
	"testing"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
	"dspaddr/internal/pathcover"
	"dspaddr/internal/workload"
)

// largeMergeInput builds a pattern whose zero-cost cover has ~48
// singleton paths: offsets spread far beyond the modify range leave no
// zero-cost intra edges, so phase 2 has maximal merging work.
func largeMergeInput(tb testing.TB) ([]model.Path, model.Pattern) {
	tb.Helper()
	pat := workload.WideMergePattern()
	dg, err := distgraph.Build(pat, 1)
	if err != nil {
		tb.Fatal(err)
	}
	paths := pathcover.MinCoverDAG(dg)
	if len(paths) < 40 {
		tb.Fatalf("expected a large cover, got %d paths", len(paths))
	}
	return paths, pat
}

// BenchmarkGreedyIncrementalVsReference quantifies the incremental
// rewrite on a 48-path merge down to 4 registers: the reference
// re-evaluates all pairs each round and materializes a merged path per
// evaluation; the incremental strategy computes each pair cost once
// (amortized) with no materialization.
func BenchmarkGreedyIncrementalVsReference(b *testing.B) {
	paths, pat := largeMergeInput(b)
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := (Greedy{}).Reduce(paths, pat, 1, false, 4); len(out) != 4 {
				b.Fatalf("left %d paths", len(out))
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := referenceGreedy(paths, pat, 1, false, 4); len(out) != 4 {
				b.Fatalf("left %d paths", len(out))
			}
		}
	})
}

// BenchmarkSmallestTwoScratchVsReference does the same for the
// length-only heuristic, whose only change is the recycled merge
// scratch buffer (a heap-based variant measured slower than the O(R)
// scan and was dropped).
func BenchmarkSmallestTwoScratchVsReference(b *testing.B) {
	paths, pat := largeMergeInput(b)
	b.Run("scratch-reuse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			SmallestTwo{}.Reduce(paths, pat, 1, false, 4)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			referenceSmallestTwo(paths, pat, 1, false, 4)
		}
	})
}
