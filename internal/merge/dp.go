package merge

import (
	"sort"

	"dspaddr/internal/model"
)

// OptimalDP computes an exact minimum-cost assignment of the pattern's
// accesses to at most k registers for the intra-iteration objective,
// by dynamic programming over register tail profiles: after placing a
// prefix of the accesses, the only state that matters is the multiset
// of offsets the busy registers currently point at. The state space is
// O(D^k) for D distinct offsets — polynomial for fixed k — so unlike
// ExhaustiveOptimal it scales to the pattern sizes of the paper's
// sweeps (N = 50 and beyond). Wrap transitions are not part of the
// objective (tracking per-register heads would square the state
// space); use ExhaustiveOptimal for small wrap-aware instances.
func OptimalDP(pat model.Pattern, m, k int) (model.Assignment, int) {
	n := pat.N()
	if k > n {
		k = n
	}

	type decision struct {
		prev   string
		tail   int  // replaced tail offset (valid when !opened)
		opened bool // access opened a fresh register
	}
	// cost[stateKey] after placing accesses [0, i); decisions[i] maps
	// the state reached after placing access i to how it was reached.
	cost := map[string]int{encodeTails(nil): 0}
	decisions := make([]map[string]decision, n)

	tailsOf := decodeTails
	for i := 0; i < n; i++ {
		d := pat.Offsets[i]
		next := map[string]int{}
		decisions[i] = map[string]decision{}
		for key, c := range cost {
			tails := tailsOf(key)
			// Option 1: extend a busy register (distinct tails only —
			// registers with equal tails are interchangeable).
			seen := map[int]bool{}
			for _, t := range tails {
				if seen[t] {
					continue
				}
				seen[t] = true
				nc := c + model.TransitionCost(d-t, m)
				nk := encodeTails(replaceTail(tails, t, d))
				if old, ok := next[nk]; !ok || nc < old {
					next[nk] = nc
					decisions[i][nk] = decision{prev: key, tail: t}
				}
			}
			// Option 2: open a fresh register.
			if len(tails) < k {
				nk := encodeTails(append(append([]int(nil), tails...), d))
				if old, ok := next[nk]; !ok || c < old {
					next[nk] = c
					decisions[i][nk] = decision{prev: key, opened: true}
				}
			}
		}
		cost = next
	}

	// Best final state.
	bestKey, bestCost := "", -1
	for key, c := range cost {
		if bestCost == -1 || c < bestCost || (c == bestCost && key < bestKey) {
			bestKey, bestCost = key, c
		}
	}
	if bestCost == -1 {
		return model.Assignment{}, 0 // empty pattern
	}

	// Walk the decisions backwards, then replay forwards to attach
	// accesses to concrete registers.
	type step struct {
		tail   int
		opened bool
	}
	steps := make([]step, n)
	key := bestKey
	for i := n - 1; i >= 0; i-- {
		dec := decisions[i][key]
		steps[i] = step{tail: dec.tail, opened: dec.opened}
		key = dec.prev
	}
	var paths []model.Path
	tailOfReg := []int{}
	for i := 0; i < n; i++ {
		if steps[i].opened {
			paths = append(paths, model.Path{i})
			tailOfReg = append(tailOfReg, pat.Offsets[i])
			continue
		}
		placed := false
		for r, t := range tailOfReg {
			if t == steps[i].tail {
				paths[r] = append(paths[r], i)
				tailOfReg[r] = pat.Offsets[i]
				placed = true
				break
			}
		}
		if !placed {
			// Unreachable for a consistent decision table; keep the
			// assignment total anyway.
			paths = append(paths, model.Path{i})
			tailOfReg = append(tailOfReg, pat.Offsets[i])
		}
	}
	return model.Assignment{Paths: paths}.Normalize(), bestCost
}

// encodeTails canonically encodes a tail multiset (order-insensitive).
func encodeTails(tails []int) string {
	s := append([]int(nil), tails...)
	sort.Ints(s)
	buf := make([]byte, 0, 2*len(s))
	for _, t := range s {
		v := uint16(int16(t))
		buf = append(buf, byte(v>>8), byte(v))
	}
	return string(buf)
}

func decodeTails(key string) []int {
	out := make([]int, 0, len(key)/2)
	for i := 0; i+1 < len(key); i += 2 {
		out = append(out, int(int16(uint16(key[i])<<8|uint16(key[i+1]))))
	}
	return out
}

// replaceTail returns tails with one occurrence of old replaced by new.
func replaceTail(tails []int, old, new int) []int {
	out := append([]int(nil), tails...)
	for i, t := range out {
		if t == old {
			out[i] = new
			break
		}
	}
	return out
}

// Optimal is a Strategy backed by OptimalDP: it ignores the incoming
// path set and produces the exact minimum-cost partition for the
// intra-iteration objective. With wrap set (which the DP does not
// model) it falls back to the paper's greedy heuristic.
type Optimal struct{}

// Name implements Strategy.
func (Optimal) Name() string { return "optimal" }

// Reduce implements Strategy.
func (Optimal) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	if wrap {
		return Greedy{}.Reduce(paths, pat, m, wrap, k)
	}
	a, _ := OptimalDP(pat, m, k)
	return a.Paths
}
