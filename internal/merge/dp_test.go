package merge

import (
	"math/rand"
	"testing"

	"dspaddr/internal/model"
)

func TestOptimalDPMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(9)
		pat := randomPattern(rng, n, 5, 1)
		m := rng.Intn(3)
		k := 1 + rng.Intn(3)
		a, got := OptimalDP(pat, m, k)
		_, want := ExhaustiveOptimal(pat, m, false, k)
		if got != want {
			t.Fatalf("DP cost %d != exhaustive %d (pattern %v M=%d K=%d)", got, want, pat, m, k)
		}
		if err := a.Validate(pat); err != nil {
			t.Fatalf("DP assignment invalid: %v", err)
		}
		if a.Cost(pat, m, false) != got {
			t.Fatalf("DP assignment cost %d != reported %d", a.Cost(pat, m, false), got)
		}
		limit := k
		if n < k {
			limit = n
		}
		if a.Registers() > limit {
			t.Fatalf("DP used %d registers, limit %d", a.Registers(), limit)
		}
	}
}

func TestOptimalDPScalesToSweepSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	for _, n := range []int{50, 100} {
		pat := randomPattern(rng, n, 8, 1)
		a, cost := OptimalDP(pat, 1, 4)
		if err := a.Validate(pat); err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		// Optimal can never lose to the two-phase heuristic.
		paths := initialCover(t, pat, 1, false)
		h, err := Reduce(Greedy{}, paths, pat, 1, false, 4)
		if err != nil {
			t.Fatal(err)
		}
		if cost > h.Cost(pat, 1, false) {
			t.Fatalf("N=%d: DP %d worse than heuristic %d", n, cost, h.Cost(pat, 1, false))
		}
	}
}

func TestOptimalDPPaperExample(t *testing.T) {
	pat := model.PaperExample()
	_, cost2 := OptimalDP(pat, 1, 2)
	if cost2 != 0 {
		t.Fatalf("K=2 optimal = %d, want 0 (the paper's zero-cost allocation)", cost2)
	}
	_, cost1 := OptimalDP(pat, 1, 1)
	if cost1 == 0 {
		t.Fatal("K=1 cannot be zero-cost (a2->a3 distance 2)")
	}
}

func TestOptimalDPDegenerate(t *testing.T) {
	a, cost := OptimalDP(model.NewPattern(3), 1, 4)
	if cost != 0 || a.Registers() != 1 {
		t.Fatalf("single access: cost %d registers %d", cost, a.Registers())
	}
	empty, cost := OptimalDP(model.Pattern{Stride: 1}, 1, 2)
	if cost != 0 || empty.Registers() != 0 {
		t.Fatalf("empty pattern: cost %d registers %d", cost, empty.Registers())
	}
}

func TestEncodeDecodeTails(t *testing.T) {
	for _, tails := range [][]int{nil, {0}, {-5, 3, 3}, {100, -100}} {
		got := decodeTails(encodeTails(tails))
		if len(got) != len(tails) {
			t.Fatalf("round trip length %d != %d", len(got), len(tails))
		}
		// decode returns the sorted canonical form.
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("decoded tails unsorted: %v", got)
			}
		}
	}
	// Encoding must be order-insensitive.
	if encodeTails([]int{2, -1}) != encodeTails([]int{-1, 2}) {
		t.Fatal("encoding not canonical")
	}
}

func TestOptimalStrategy(t *testing.T) {
	pat := model.PaperExample()
	paths := initialCover(t, pat, 1, false)
	a, err := Reduce(Optimal{}, paths, pat, 1, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, want := OptimalDP(pat, 1, 1)
	if got := a.Cost(pat, 1, false); got != want {
		t.Fatalf("optimal strategy cost %d, DP %d", got, want)
	}
	if (Optimal{}).Name() != "optimal" {
		t.Fatal("name wrong")
	}
	// Wrap falls back to greedy and must still be valid.
	aw, err := Reduce(Optimal{}, paths, pat, 1, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if aw.Registers() != 1 {
		t.Fatalf("wrap fallback registers = %d", aw.Registers())
	}
}
