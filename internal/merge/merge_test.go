package merge

import (
	"math/rand"
	"testing"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
	"dspaddr/internal/pathcover"
)

func randomPattern(rng *rand.Rand, n, offsetRange, stride int) model.Pattern {
	offs := make([]int, n)
	for i := range offs {
		offs[i] = rng.Intn(2*offsetRange+1) - offsetRange
	}
	return model.Pattern{Array: "A", Stride: stride, Offsets: offs}
}

func initialCover(t *testing.T, pat model.Pattern, m int, wrap bool) []model.Path {
	t.Helper()
	dg, err := distgraph.Build(pat, m)
	if err != nil {
		t.Fatal(err)
	}
	return pathcover.MinCover(dg, wrap, nil).Paths
}

func TestGreedyReducesPaperExampleToOneRegister(t *testing.T) {
	pat := model.PaperExample()
	paths := initialCover(t, pat, 1, false)
	if len(paths) != 2 {
		t.Fatalf("initial K~ = %d, want 2", len(paths))
	}
	a, err := Reduce(Greedy{}, paths, pat, 1, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Registers() != 1 {
		t.Fatalf("registers = %d, want 1", a.Registers())
	}
	// Merging two zero-cost paths incurs at least one unit cost (paper
	// Section 3.2) and the merged path must contain all seven accesses.
	cost := a.Cost(pat, 1, false)
	if cost < 1 {
		t.Fatalf("merged cost = %d, expected >= 1", cost)
	}
	if len(a.Paths[0]) != 7 {
		t.Fatalf("merged path length = %d", len(a.Paths[0]))
	}
	// The exhaustive optimum for K=1 is the full program-order walk —
	// greedy with one register can't beat it.
	_, opt := ExhaustiveOptimal(pat, 1, false, 1)
	if cost != opt {
		t.Fatalf("greedy K=1 cost %d != optimal %d (single register has one layout)", cost, opt)
	}
}

func TestAllStrategiesProduceValidAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	strategies := []Strategy{Greedy{}, Naive{}, SmallestTwo{}, Random{Rng: rand.New(rand.NewSource(99))}}
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(14)
		pat := randomPattern(rng, n, 5, 1)
		m := rng.Intn(3)
		wrap := rng.Intn(2) == 0
		paths := initialCover(t, pat, m, wrap)
		k := 1 + rng.Intn(4)
		for _, s := range strategies {
			a, err := Reduce(s, paths, pat, m, wrap, k)
			if err != nil {
				t.Fatalf("strategy %s: %v (pattern %v M=%d K=%d)", s.Name(), err, pat, m, k)
			}
			if a.Registers() > k {
				t.Fatalf("strategy %s used %d > %d registers", s.Name(), a.Registers(), k)
			}
		}
	}
}

func TestStrategiesDoNotMutateInput(t *testing.T) {
	pat := model.PaperExample()
	paths := initialCover(t, pat, 1, false)
	snapshot := make([]model.Path, len(paths))
	for i, p := range paths {
		snapshot[i] = p.Clone()
	}
	for _, s := range []Strategy{Greedy{}, Naive{}, SmallestTwo{}, Random{Rng: rand.New(rand.NewSource(1))}} {
		s.Reduce(paths, pat, 1, false, 1)
		for i := range paths {
			if len(paths[i]) != len(snapshot[i]) {
				t.Fatalf("strategy %s mutated input paths", s.Name())
			}
			for j := range paths[i] {
				if paths[i][j] != snapshot[i][j] {
					t.Fatalf("strategy %s mutated input paths", s.Name())
				}
			}
		}
	}
}

func TestReduceNoOpWhenWithinConstraint(t *testing.T) {
	pat := model.PaperExample()
	paths := initialCover(t, pat, 1, false)
	a, err := Reduce(Greedy{}, paths, pat, 1, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Registers() != len(paths) {
		t.Fatalf("registers = %d, want unchanged %d", a.Registers(), len(paths))
	}
	if a.Cost(pat, 1, false) != 0 {
		t.Fatal("unchanged zero-cost cover should stay zero-cost")
	}
}

func TestReduceRejectsBadConstraint(t *testing.T) {
	pat := model.PaperExample()
	paths := initialCover(t, pat, 1, false)
	if _, err := Reduce(Greedy{}, paths, pat, 1, false, 0); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestGreedyNeverWorseThanOptimalReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(8)
		pat := randomPattern(rng, n, 4, 1)
		m := rng.Intn(2)
		wrap := rng.Intn(2) == 0
		k := 1 + rng.Intn(3)
		paths := initialCover(t, pat, m, wrap)
		a, err := Reduce(Greedy{}, paths, pat, m, wrap, k)
		if err != nil {
			t.Fatal(err)
		}
		_, opt := ExhaustiveOptimal(pat, m, wrap, k)
		if got := a.Cost(pat, m, wrap); got < opt {
			t.Fatalf("greedy cost %d beat claimed optimum %d (pattern %v M=%d K=%d wrap=%v)", got, opt, pat, m, k, wrap)
		}
	}
}

func TestExhaustiveOptimalProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		pat := randomPattern(rng, n, 4, 1)
		m := rng.Intn(3)
		wrap := rng.Intn(2) == 0
		k := 1 + rng.Intn(3)
		a, cost := ExhaustiveOptimal(pat, m, wrap, k)
		if err := a.Validate(pat); err != nil {
			t.Fatalf("optimal assignment invalid: %v", err)
		}
		if got := a.Cost(pat, m, wrap); got != cost {
			t.Fatalf("reported cost %d != assignment cost %d", cost, got)
		}
		want := k
		if n < k {
			want = n
		}
		if a.Registers() > want {
			t.Fatalf("optimal used %d registers, constraint %d", a.Registers(), want)
		}
	}
}

func TestExhaustiveOptimalKnownCase(t *testing.T) {
	// Pattern 0, 10, 0, 10 with M=1: two registers can pin one to
	// offset 0 and one to 10 at zero intra cost; one register pays for
	// every transition (3 unit costs).
	pat := model.NewPattern(0, 10, 0, 10)
	_, cost2 := ExhaustiveOptimal(pat, 1, false, 2)
	if cost2 != 0 {
		t.Fatalf("K=2 optimal cost = %d, want 0", cost2)
	}
	_, cost1 := ExhaustiveOptimal(pat, 1, false, 1)
	if cost1 != 3 {
		t.Fatalf("K=1 optimal cost = %d, want 3", cost1)
	}
}

func TestGreedyBeatsNaiveOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	greedyTotal, naiveTotal := 0, 0
	for trial := 0; trial < 200; trial++ {
		n := 8 + rng.Intn(12)
		pat := randomPattern(rng, n, 6, 1)
		m := 1
		k := 2
		paths := initialCover(t, pat, m, false)
		ag, err := Reduce(Greedy{}, paths, pat, m, false, k)
		if err != nil {
			t.Fatal(err)
		}
		an, err := Reduce(Naive{}, paths, pat, m, false, k)
		if err != nil {
			t.Fatal(err)
		}
		greedyTotal += ag.Cost(pat, m, false)
		naiveTotal += an.Cost(pat, m, false)
	}
	if greedyTotal > naiveTotal {
		t.Fatalf("greedy total %d worse than naive total %d over 200 random patterns", greedyTotal, naiveTotal)
	}
	// The paper reports ~40%% average improvement; demand at least a
	// clearly measurable one here (>10%%) to pin the qualitative shape.
	if float64(naiveTotal-greedyTotal) < 0.10*float64(naiveTotal) {
		t.Fatalf("improvement too small: naive %d vs greedy %d", naiveTotal, greedyTotal)
	}
}

func TestAnnealNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(10)
		pat := randomPattern(rng, n, 5, 1)
		m := 1
		k := 2
		wrap := trial%2 == 0
		paths := initialCover(t, pat, m, wrap)
		greedy, err := Reduce(Greedy{}, paths, pat, m, wrap, k)
		if err != nil {
			t.Fatal(err)
		}
		sa := Anneal(paths, pat, m, wrap, k, rand.New(rand.NewSource(int64(trial))), &AnnealOptions{Steps: 4000})
		if err := sa.Validate(pat); err != nil {
			t.Fatalf("anneal invalid: %v", err)
		}
		if sa.Registers() > k {
			t.Fatalf("anneal used %d registers", sa.Registers())
		}
		if sa.Cost(pat, m, wrap) > greedy.Cost(pat, m, wrap) {
			t.Fatalf("anneal %d worse than its greedy start %d", sa.Cost(pat, m, wrap), greedy.Cost(pat, m, wrap))
		}
	}
}

func TestAnnealDefaultsAndDegenerate(t *testing.T) {
	pat := model.NewPattern(0)
	paths := []model.Path{{0}}
	a := Anneal(paths, pat, 1, false, 1, rand.New(rand.NewSource(1)), nil)
	if err := a.Validate(pat); err != nil {
		t.Fatal(err)
	}
	if a.Registers() != 1 {
		t.Fatalf("registers = %d", a.Registers())
	}
}

func TestLabelCost(t *testing.T) {
	pat := model.NewPattern(0, 5, 1)
	// Register 0 takes accesses 0 and 2 (distance 1, free with M=1);
	// register 1 takes access 1.
	labels := []int{0, 1, 0}
	if got := labelCost(labels, pat, 1, false, 2); got != 0 {
		t.Fatalf("labelCost = %d, want 0", got)
	}
	// All on one register: 0->5 costs, 5->1 costs.
	labels = []int{0, 0, 0}
	if got := labelCost(labels, pat, 1, false, 1); got != 2 {
		t.Fatalf("labelCost = %d, want 2", got)
	}
	// Wrap adds the loop-back: tail 1 (offset 1) -> head 0 (offset 0):
	// 0+1-1 = 0, free.
	if got := labelCost(labels, pat, 1, true, 1); got != 2 {
		t.Fatalf("wrap labelCost = %d, want 2", got)
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[string]Strategy{
		"greedy":       Greedy{},
		"naive":        Naive{},
		"random":       Random{},
		"smallest-two": SmallestTwo{},
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

// badStrategy deliberately violates the Strategy contract so that
// Reduce's defensive validation is exercised.
type badStrategy struct{ mode string }

func (b badStrategy) Name() string { return "bad-" + b.mode }

func (b badStrategy) Reduce(paths []model.Path, pat model.Pattern, m int, wrap bool, k int) []model.Path {
	switch b.mode {
	case "drop":
		return paths[:1] // loses accesses
	case "dup":
		out := clonePaths(paths)
		out[0] = append(out[0], out[0][0]) // duplicates an access
		return out
	case "over":
		return clonePaths(paths) // ignores the register constraint
	default:
		return nil
	}
}

func TestReduceRejectsMisbehavingStrategies(t *testing.T) {
	pat := model.PaperExample()
	paths := initialCover(t, pat, 1, false)
	if len(paths) < 2 {
		t.Fatal("fixture needs at least two paths")
	}
	for _, mode := range []string{"drop", "dup", "nil"} {
		if _, err := Reduce(badStrategy{mode}, paths, pat, 1, false, 1); err == nil {
			t.Errorf("mode %s: invalid strategy output accepted", mode)
		}
	}
	// A strategy that ignores the constraint must be caught too.
	if _, err := Reduce(badStrategy{"over"}, paths, pat, 1, false, 1); err == nil {
		t.Error("over-budget strategy output accepted")
	}
}
