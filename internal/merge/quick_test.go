package merge

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/model"
	"dspaddr/internal/pathcover"
)

// Property (quick): every strategy produces a valid partition within
// the register budget, and the merged cost never drops below the
// initial cover's cost (merging cannot create free transitions that
// were not free before — the zero-cost cover is the floor).
func TestQuickStrategyInvariants(t *testing.T) {
	f := func(raw []byte, mRaw, kRaw uint8) bool {
		if len(raw) == 0 {
			raw = []byte{1}
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		offs := make([]int, len(raw))
		for i, b := range raw {
			offs[i] = int(b%15) - 7
		}
		pat := model.Pattern{Array: "A", Stride: 1, Offsets: offs}
		m := int(mRaw % 3)
		k := 1 + int(kRaw%4)
		dg, err := distgraph.Build(pat, m)
		if err != nil {
			return false
		}
		cover := pathcover.MinCover(dg, false, nil)
		baseCost := model.Assignment{Paths: cover.Paths}.Cost(pat, m, false)
		for _, s := range []Strategy{Greedy{}, Naive{}, SmallestTwo{}, Random{Rng: rand.New(rand.NewSource(1))}} {
			a, err := Reduce(s, cover.Paths, pat, m, false, k)
			if err != nil {
				return false
			}
			if a.Registers() > k {
				return false
			}
			if a.Cost(pat, m, false) < baseCost {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(131))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): merging exactly two zero-cost paths costs at least
// one unit — the paper's Section 3.2 observation.
func TestQuickMergeIncursCost(t *testing.T) {
	f := func(raw []byte, mRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		offs := make([]int, len(raw))
		for i, b := range raw {
			offs[i] = int(b%15) - 7
		}
		pat := model.Pattern{Array: "A", Stride: 1, Offsets: offs}
		m := int(mRaw % 3)
		dg, err := distgraph.Build(pat, m)
		if err != nil {
			return false
		}
		cover := pathcover.MinCover(dg, false, nil)
		if cover.K() < 2 {
			return true // nothing to merge
		}
		a, err := Reduce(Greedy{}, cover.Paths, pat, m, false, cover.K()-1)
		if err != nil {
			return false
		}
		// K~ is minimal, so one fewer register cannot stay zero-cost.
		return a.Cost(pat, m, false) >= 1
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(132))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
