// Package core implements the paper's primary contribution: the
// register-constrained address register allocator for array accesses in
// DSP program loops (Basu, Leupers, Marwedel, DATE 1998).
//
// Allocation proceeds in the paper's two phases. Phase 1 covers the
// pattern's distance graph with the minimum number K~ of zero-cost
// paths (package pathcover). If K~ exceeds the AGU's physical register
// count K, phase 2 merges path pairs — by default the pair minimizing
// the merged path cost C(P_i ⊕ P_j) — until K paths remain (package
// merge). The result maps every array access to an address register and
// reports the number of unit-cost address computations per loop
// iteration.
package core

import (
	"context"
	"fmt"
	"strings"

	"dspaddr/internal/distgraph"
	"dspaddr/internal/merge"
	"dspaddr/internal/model"
	"dspaddr/internal/obs"
	"dspaddr/internal/pathcover"
)

// Config controls an allocation.
type Config struct {
	// AGU describes the target's address generation unit: the register
	// constraint K and modify range M.
	AGU model.AGUSpec
	// InterIteration includes each register's loop-back update in the
	// zero-cost definition of phase 1 and in the cost objective of
	// phase 2. With it disabled the allocator optimizes the paper's
	// intra-iteration objective; the generated code still performs the
	// wrap updates, they are just not part of the objective.
	InterIteration bool
	// Strategy selects the phase-2 merge heuristic; nil means the
	// paper's greedy minimum-pair-cost strategy.
	Strategy merge.Strategy
	// CoverOptions tunes the phase-1 branch-and-bound search.
	CoverOptions *pathcover.Options
}

func (c Config) withDefaults() Config {
	if c.Strategy == nil {
		c.Strategy = merge.Greedy{}
	}
	return c
}

// Result is the outcome of allocating one access pattern.
type Result struct {
	// Pattern is the allocated access pattern.
	Pattern model.Pattern
	// Config echoes the configuration used.
	Config Config
	// VirtualRegisters is K~, the phase-1 minimum number of registers
	// for an all-zero-cost addressing scheme.
	VirtualRegisters int
	// CoverZeroCost reports whether phase 1 found a fully zero-cost
	// cover under the configured objective (it can be false only with
	// InterIteration set and loop stride exceeding the modify range).
	CoverZeroCost bool
	// CoverExact reports whether K~ is proven minimal.
	CoverExact bool
	// Assignment maps accesses to the K (or fewer) physical registers.
	Assignment model.Assignment
	// Cost is the number of unit-cost address computations per loop
	// iteration under the configured objective.
	Cost int
	// Merged reports whether phase 2 had to merge paths (K~ > K).
	Merged bool
}

// Solver runs the two-phase allocator with a private set of reusable
// workspaces: the distance graph's adjacency storage, the phase-1
// matcher and branch-and-bound scratch, and the phase-2 merge buffers.
// A solver serving a stream of requests (one per engine worker) stops
// rebuilding its model objects from heap on every solve; results never
// alias the scratch. A Solver is not safe for concurrent use — give
// each worker its own.
type Solver struct {
	dg    distgraph.Graph
	cover pathcover.Scratch
	merge merge.Scratch
}

// NewSolver returns a ready solver; its workspaces grow lazily to the
// largest request seen.
func NewSolver() *Solver { return &Solver{} }

// Allocate runs the two-phase allocator on a single-array access
// pattern. The solve is cooperatively cancelable: the phase-1
// branch-and-bound checks ctx at node-expansion granularity and the
// phase-2 greedy merge once per round, so a canceled ctx aborts with
// its error instead of running the solve to completion.
func (s *Solver) Allocate(ctx context.Context, pat model.Pattern, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := pat.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.AGU.Validate(); err != nil {
		return nil, err
	}
	tr := obs.FromContext(ctx)
	sp := tr.StartSpan("graph.build")
	if err := s.dg.Rebuild(pat, cfg.AGU.ModifyRange); err != nil {
		sp.Note("error").End()
		return nil, err
	}
	sp.Attr("accesses", int64(s.dg.N())).End()

	cover, err := pathcover.MinCoverCtx(ctx, &s.dg, cfg.InterIteration, cfg.CoverOptions, &s.cover)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Pattern:          pat,
		Config:           cfg,
		VirtualRegisters: cover.K(),
		CoverZeroCost:    cover.ZeroCost,
		CoverExact:       cover.Exact,
	}

	k := cfg.AGU.Registers
	if cover.K() <= k {
		res.Assignment = cover.Assignment().Normalize()
	} else {
		a, err := merge.ReduceContext(ctx, cfg.Strategy, cover.Paths, pat, cfg.AGU.ModifyRange, cfg.InterIteration, k, &s.merge)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			return nil, fmt.Errorf("core: phase 2 failed: %w", err)
		}
		res.Assignment = a
		res.Merged = true
	}
	sp = tr.StartSpan("assign.commit")
	res.Cost = res.Assignment.Cost(pat, cfg.AGU.ModifyRange, cfg.InterIteration)
	sp.Attr("cost", int64(res.Cost)).Attr("registers", int64(res.Assignment.Registers())).End()
	return res, nil
}

// Allocate runs the two-phase allocator on a single-array access
// pattern with a transient solver.
func Allocate(pat model.Pattern, cfg Config) (*Result, error) {
	return AllocateContext(context.Background(), pat, cfg)
}

// AllocateContext is Allocate with cooperative cancellation (see
// Solver.Allocate).
func AllocateContext(ctx context.Context, pat model.Pattern, cfg Config) (*Result, error) {
	return NewSolver().Allocate(ctx, pat, cfg)
}

// Report renders a human-readable allocation report.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pattern:   %s\n", r.Pattern)
	fmt.Fprintf(&b, "AGU:       %s\n", r.Config.AGU)
	objective := "intra-iteration"
	if r.Config.InterIteration {
		objective = "inter-iteration (wrap included)"
	}
	fmt.Fprintf(&b, "objective: %s\n", objective)
	exact := ""
	if !r.CoverExact {
		exact = " (bound, search truncated)"
	}
	fmt.Fprintf(&b, "phase 1:   K~ = %d virtual registers%s, zero-cost=%v\n", r.VirtualRegisters, exact, r.CoverZeroCost)
	if r.Merged {
		fmt.Fprintf(&b, "phase 2:   merged down to %d registers\n", r.Assignment.Registers())
	} else {
		fmt.Fprintf(&b, "phase 2:   not needed (K~ <= K)\n")
	}
	fmt.Fprintf(&b, "result:    %s\n", r.Assignment)
	fmt.Fprintf(&b, "cost:      %d unit-cost address computation(s) per iteration\n", r.Cost)
	return b.String()
}
